//! # rxl — umbrella crate
//!
//! Re-exports every crate of the RXL / Implicit Sequence Number (ISN)
//! reproduction so examples and downstream users can depend on a single
//! crate. See the individual crates for detailed documentation:
//!
//! * [`gf256`] — GF(2^8) arithmetic substrate.
//! * [`crc`] — CRC engines and the ISN (implicit sequence number) CRC.
//! * [`fec`] — shortened Reed–Solomon FEC with the CXL 3-way interleaved layout.
//! * [`flit`] — CXL/RXL flit formats and transaction-message packing.
//! * [`link`] — link layer: channel error models, retry, ACK handling.
//! * [`switch`] — stateless switching devices that drop uncorrectable flits.
//! * [`transport`] — endpoint transaction layer for CXL and RXL.
//! * [`sim`] — discrete-event simulator and Monte-Carlo harness for one
//!   host–device path.
//! * [`fabric`] — fabric-scale simulator: whole topologies (leaf–spine,
//!   fat-tree, ring) of concurrent sessions over shared switches, with a
//!   sharded Monte-Carlo driver and an analytic FIT cross-check.
//! * [`chaos`] — fault injection & scenario engine: time-varying per-link
//!   channels (Gilbert–Elliott, BER schedules, link flaps), switch
//!   drain/fail timelines, and a sharded scenario Monte-Carlo with
//!   per-epoch failure reports.
//! * [`load`] — open-loop traffic generation & latency telemetry: arrival
//!   processes (fixed-rate, Poisson-like, bursty on/off), session traffic
//!   matrices (uniform, permutation, hotspot, incast), HDR-style latency
//!   histograms, and offered-load sweeps with saturation-knee detection.
//! * [`telemetry`] — windowed SLO telemetry over the fabric engine's
//!   zero-cost probe seam: per-window latency/availability series,
//!   error-budget burn-rate accounting with multi-window alerts, bounded
//!   incident traces (JSONL / Chrome tracing), and chaos-scenario incident
//!   replays.
//! * [`analysis`] — closed-form reliability / bandwidth / hardware models.
//! * [`core`] — the high-level protocol-stack API (CXL vs RXL).

pub use rxl_analysis as analysis;
pub use rxl_chaos as chaos;
pub use rxl_core as core;
pub use rxl_crc as crc;
pub use rxl_fabric as fabric;
pub use rxl_fec as fec;
pub use rxl_flit as flit;
pub use rxl_gf256 as gf256;
pub use rxl_link as link;
pub use rxl_load as load;
pub use rxl_sim as sim;
pub use rxl_switch as switch;
pub use rxl_telemetry as telemetry;
pub use rxl_transport as transport;

/// Convenience prelude bringing the most commonly used types into scope.
pub mod prelude {
    pub use rxl_analysis::reliability::ReliabilityModel;
    pub use rxl_chaos::{ChaosMonteCarlo, GilbertElliott, Scenario};
    pub use rxl_core::{
        CxlStack, FabricSimOptions, FabricSpec, LoadSweepSpec, ProtocolKind, RxlStack, StackConfig,
        StormSpec,
    };
    pub use rxl_crc::{Crc64, IsnCrc64};
    pub use rxl_fabric::{
        FabricConfig, FabricMonteCarlo, FabricTopology, FabricWorkload, FitCrosscheck,
    };
    pub use rxl_fec::InterleavedFec;
    pub use rxl_flit::{Flit256, FlitHeader, Message};
    pub use rxl_link::{ChannelErrorModel, LinkConfig};
    pub use rxl_load::{
        ArrivalProcess, LatencyHistogram, LatencyStats, LoadSweep, LoadSweepConfig, TrafficMatrix,
    };
    pub use rxl_sim::{MonteCarlo, SimConfig, Topology};
    pub use rxl_telemetry::{IncidentReplay, SloProbe, SloSpec, WindowedTelemetry};
}
