//! Session-level traffic matrices.
//!
//! A fabric's sessions are fixed host–device pairs; what a traffic matrix
//! shapes is how the offered load distributes across them. Each shape maps
//! an offered-load fraction into per-session, per-direction rate multipliers
//! (fractions of line rate — see `crate::arrival` for units) plus the
//! address-level [`TrafficPattern`] the generated request streams use.

use rxl_fabric::FabricTopology;
use rxl_sim::TrafficPattern;

/// Per-session offered rates, as fractions of line rate.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct SessionLoad {
    /// Host → device offered rate.
    pub downstream: f64,
    /// Device → host offered rate.
    pub upstream: f64,
}

/// How offered load distributes over a fabric's sessions.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum TrafficMatrix {
    /// Every session offers the full load symmetrically in both directions —
    /// the shape of `FabricWorkload::symmetric`, paced.
    Uniform,
    /// One-way permutation traffic: every host streams to its device at the
    /// offered rate; devices send nothing but acknowledgements.
    Permutation,
    /// The first `hot_sessions` sessions offer `boost ×` the load (clamped
    /// to line rate), the rest offer the base load; hot sessions also use
    /// the address-contended [`TrafficPattern::Hotspot`] request stream.
    Hotspot {
        /// Number of boosted sessions (clamped to the session count).
        hot_sessions: usize,
        /// Rate multiplier for the hot sessions (≥ 1).
        boost: f64,
    },
    /// Incast onto one leaf: only the sessions whose *device* attaches to
    /// switch `leaf` are loaded (downstream-only), so every loaded stream
    /// converges on that switch's endpoint links.
    Incast {
        /// Switch index the loaded devices attach to.
        leaf: usize,
    },
}

impl TrafficMatrix {
    /// Per-session rates at the given offered-load fraction, in session
    /// order. Rates are clamped to line rate (1.0).
    pub fn session_loads(&self, topology: &FabricTopology, offered: f64) -> Vec<SessionLoad> {
        assert!(
            offered > 0.0 && offered <= 1.0,
            "offered load must be a fraction of line rate in (0, 1]"
        );
        let sessions = topology.sessions.len();
        match *self {
            TrafficMatrix::Uniform => vec![
                SessionLoad {
                    downstream: offered,
                    upstream: offered,
                };
                sessions
            ],
            TrafficMatrix::Permutation => vec![
                SessionLoad {
                    downstream: offered,
                    upstream: 0.0,
                };
                sessions
            ],
            TrafficMatrix::Hotspot {
                hot_sessions,
                boost,
            } => {
                assert!(boost >= 1.0, "hotspot boost must be at least 1");
                let hot = hot_sessions.min(sessions);
                (0..sessions)
                    .map(|s| {
                        let rate = if s < hot {
                            (offered * boost).min(1.0)
                        } else {
                            offered
                        };
                        SessionLoad {
                            downstream: rate,
                            upstream: rate,
                        }
                    })
                    .collect()
            }
            TrafficMatrix::Incast { leaf } => {
                assert!(leaf < topology.switches.len(), "incast switch out of range");
                let loads: Vec<SessionLoad> = topology
                    .sessions
                    .iter()
                    .map(|session| {
                        if topology.endpoints[session.device].switch == leaf {
                            SessionLoad {
                                downstream: offered,
                                upstream: 0.0,
                            }
                        } else {
                            SessionLoad::default()
                        }
                    })
                    .collect();
                assert!(
                    loads.iter().any(|l| l.downstream > 0.0),
                    "no session's device attaches to switch {leaf}"
                );
                loads
            }
        }
    }

    /// The address-level request pattern session `s` uses (`cqids` command
    /// queues): hotspot sessions contend on the shared hot lines, everything
    /// else streams ordered data.
    pub fn request_pattern(&self, s: usize, cqids: u16) -> TrafficPattern {
        match *self {
            TrafficMatrix::Hotspot { hot_sessions, .. } if s < hot_sessions => {
                TrafficPattern::Hotspot {
                    cqids,
                    hot_fraction: 0.75,
                }
            }
            _ => TrafficPattern::DataStream { cqids },
        }
    }

    /// Short label for reports.
    pub fn label(&self) -> String {
        match *self {
            TrafficMatrix::Uniform => "uniform".to_string(),
            TrafficMatrix::Permutation => "permutation".to_string(),
            TrafficMatrix::Hotspot {
                hot_sessions,
                boost,
            } => format!("hotspot_{hot_sessions}x{boost:.0}"),
            TrafficMatrix::Incast { leaf } => format!("incast_sw{leaf}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_and_permutation_shapes() {
        let t = FabricTopology::leaf_spine(2, 1, 2);
        let u = TrafficMatrix::Uniform.session_loads(&t, 0.3);
        assert_eq!(u.len(), 4);
        assert!(u.iter().all(|l| l.downstream == 0.3 && l.upstream == 0.3));
        let p = TrafficMatrix::Permutation.session_loads(&t, 0.3);
        assert!(p.iter().all(|l| l.downstream == 0.3 && l.upstream == 0.0));
    }

    #[test]
    fn hotspot_boosts_the_first_k_sessions() {
        let t = FabricTopology::leaf_spine(2, 1, 2);
        let m = TrafficMatrix::Hotspot {
            hot_sessions: 1,
            boost: 3.0,
        };
        let loads = m.session_loads(&t, 0.2);
        assert!((loads[0].downstream - 0.6).abs() < 1e-12);
        assert!((loads[1].downstream - 0.2).abs() < 1e-12);
        // Boost clamps at line rate.
        let clamped = m.session_loads(&t, 0.5);
        assert_eq!(clamped[0].downstream, 1.0);
        // Hot sessions use the contended pattern, cold ones stream data.
        assert!(matches!(
            m.request_pattern(0, 8),
            TrafficPattern::Hotspot { .. }
        ));
        assert!(matches!(
            m.request_pattern(1, 8),
            TrafficPattern::DataStream { .. }
        ));
    }

    #[test]
    fn incast_loads_only_the_target_leaf_devices() {
        // leaf_spine(2, 1, 2): session k of leaf l has its device on leaf
        // (l + 1) % 2, so sessions 0..2 (hosts on leaf 0) target leaf 1.
        let t = FabricTopology::leaf_spine(2, 1, 2);
        let loads = TrafficMatrix::Incast { leaf: 1 }.session_loads(&t, 0.4);
        let loaded: Vec<usize> = loads
            .iter()
            .enumerate()
            .filter(|(_, l)| l.downstream > 0.0)
            .map(|(s, _)| s)
            .collect();
        assert_eq!(loaded.len(), 2);
        for s in loaded {
            assert_eq!(t.endpoints[t.sessions[s].device].switch, 1);
        }
        assert!(loads.iter().all(|l| l.upstream == 0.0));
    }

    #[test]
    #[should_panic(expected = "no session's device")]
    fn incast_on_a_deviceless_switch_is_rejected() {
        // Spine switches (index ≥ leaves) carry no endpoints.
        let t = FabricTopology::leaf_spine(2, 1, 1);
        let _ = TrafficMatrix::Incast { leaf: 2 }.session_loads(&t, 0.4);
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(TrafficMatrix::Uniform.label(), "uniform");
        assert_eq!(
            TrafficMatrix::Hotspot {
                hot_sessions: 2,
                boost: 4.0
            }
            .label(),
            "hotspot_2x4"
        );
        assert_eq!(TrafficMatrix::Incast { leaf: 3 }.label(), "incast_sw3");
    }
}
