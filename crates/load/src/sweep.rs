//! The offered-load sweep driver: latency-vs-load curves with saturation
//! knee detection.
//!
//! A [`LoadSweep`] runs one topology × protocol configuration over a ladder
//! of offered loads. Each ladder point shards its Monte-Carlo trials across
//! rayon workers with the workspace's SplitMix64 per-trial seeding
//! ([`rxl_sim::trial_seed`]): every trial builds its own workload, arrival
//! schedule and paced [`FabricSim`] from that seed alone, and per-trial
//! [`LatencyHistogram`]s are merged in trial order — so the whole sweep
//! report is bit-identical for any worker-thread count (pinned by
//! `tests/load_latency.rs`).

use std::fmt;

use rayon::prelude::*;

use rand::rngs::StdRng;
use rand::SeedableRng;
use rxl_fabric::{
    FabricConfig, FabricSim, FabricTopology, FabricWorkload, InjectionPacing, NullProbe, Probe,
    RoutingTable,
};
use rxl_flit::MESSAGES_PER_FLIT;
use rxl_sim::{request_stream, response_stream, trial_seed};
use rxl_transport::FailureCounts;

use crate::arrival::ArrivalProcess;
use crate::matrix::TrafficMatrix;
use crate::telemetry::{LatencyHistogram, LatencyStats};

/// Salt separating the arrival-schedule RNG stream from the engine's
/// channel RNG (both derive from the same per-trial seed).
const ARRIVAL_SALT: u64 = 0xA11A_170A_D5EE_D000;

/// Workload shape and ladder of a load sweep.
#[derive(Clone, Debug, PartialEq)]
pub struct LoadSweepConfig {
    /// Offered-load ladder, ascending fractions of line rate in `(0, 1]`.
    pub loads: Vec<f64>,
    /// Messages per loaded session per direction.
    pub messages_per_session: usize,
    /// Command queues per stream.
    pub cqids: u16,
    /// Monte-Carlo trials per ladder point.
    pub trials: u64,
    /// How load distributes over sessions.
    pub matrix: TrafficMatrix,
    /// Line-rate arrival-process template; each stream runs it scaled by
    /// that stream's offered fraction (see [`ArrivalProcess::scaled`]).
    pub arrival: ArrivalProcess,
}

impl Default for LoadSweepConfig {
    fn default() -> Self {
        LoadSweepConfig {
            loads: vec![0.05, 0.10, 0.15, 0.20, 0.30, 0.50, 0.80],
            messages_per_session: 600,
            cqids: 8,
            trials: 4,
            matrix: TrafficMatrix::Uniform,
            arrival: ArrivalProcess::fixed(1.0),
        }
    }
}

/// One point of the latency-vs-load curve, aggregated over its trials.
#[derive(Clone, Debug)]
pub struct LoadPoint {
    /// Offered load (fraction of line rate) this point ran at.
    pub offered_load: f64,
    /// Fabric-wide offered message rate (messages per slot, both
    /// directions of every session summed).
    pub offered_msgs_per_slot: f64,
    /// Messages injected across all trials.
    pub injected_messages: u64,
    /// Messages whose injection→delivery latency was recorded.
    pub delivered_messages: u64,
    /// Duplicate deliveries that found no live timestamp.
    pub untracked_deliveries: u64,
    /// Simulated slots summed over trials.
    pub slots: u64,
    /// Pooled delivered throughput: `delivered_messages / slots`.
    pub delivered_per_slot: f64,
    /// `delivered_per_slot / offered_msgs_per_slot`, capped at 1.0 — a run
    /// spans one fewer inter-arrival gap than it has cohorts, so an
    /// uncapped light-load ratio lands marginally above 1. 1.0 while the
    /// fabric keeps up, collapsing past saturation (drain time dominates).
    pub efficiency: f64,
    /// Trials that drained before their slot limit.
    pub drained_trials: u64,
    /// Trials run.
    pub trials: u64,
    /// Failure-audit counts summed over trials.
    pub failures: FailureCounts,
    /// Merged latency histogram (both directions, all trials).
    pub histogram: LatencyHistogram,
    /// Summary statistics of [`Self::histogram`].
    pub stats: LatencyStats,
}

/// The full latency-vs-offered-load curve of one sweep.
#[derive(Clone, Debug)]
pub struct LoadSweepReport {
    /// Topology label.
    pub topology: String,
    /// Protocol variant name.
    pub protocol: &'static str,
    /// Traffic-matrix label.
    pub matrix: String,
    /// Arrival-process label.
    pub arrival: &'static str,
    /// Sessions driven.
    pub sessions: usize,
    /// One point per ladder load, in ladder order.
    pub points: Vec<LoadPoint>,
    /// Index into [`Self::points`] of the detected saturation knee, if the
    /// ladder crossed one (see [`detect_knee`]).
    pub knee: Option<usize>,
}

impl LoadSweepReport {
    /// Offered load at the detected knee.
    pub fn knee_load(&self) -> Option<f64> {
        self.knee.map(|i| self.points[i].offered_load)
    }
}

impl fmt::Display for LoadSweepReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "== latency vs offered load: {} · {} · {} matrix · {} arrivals · {} sessions ==",
            self.topology, self.protocol, self.matrix, self.arrival, self.sessions
        )?;
        writeln!(
            f,
            "{:>6} | {:>9} | {:>11} | {:>5} | {:>6} | {:>6} | {:>6} | {:>7} | {:>7} | {:>8}",
            "load", "offered/s", "delivered/s", "eff", "p50", "p90", "p99", "p99.9", "max", "mean"
        )?;
        writeln!(f, "{}", "-".repeat(96))?;
        for (i, p) in self.points.iter().enumerate() {
            let marker = if self.knee == Some(i) {
                "  ← knee"
            } else {
                ""
            };
            writeln!(
                f,
                "{:>6.2} | {:>9.2} | {:>11.2} | {:>5.2} | {:>6} | {:>6} | {:>6} | {:>7} | {:>7} | {:>8.1}{}",
                p.offered_load,
                p.offered_msgs_per_slot,
                p.delivered_per_slot,
                p.efficiency,
                p.stats.p50,
                p.stats.p90,
                p.stats.p99,
                p.stats.p999,
                p.stats.max,
                p.stats.mean,
                marker
            )?;
        }
        match self.knee {
            Some(i) => writeln!(
                f,
                "saturation knee at offered load {:.2} (latencies in flit slots)",
                self.points[i].offered_load
            ),
            None => writeln!(f, "no saturation knee inside the ladder"),
        }
    }
}

/// One trial's contribution to a ladder point.
struct TrialOutcome {
    hist: LatencyHistogram,
    injected: u64,
    delivered: u64,
    untracked: u64,
    slots: u64,
    drained: bool,
    failures: FailureCounts,
}

/// An offered-load sweep over one topology and protocol configuration.
#[derive(Clone, Debug)]
pub struct LoadSweep {
    topology: FabricTopology,
    config: FabricConfig,
    sweep: LoadSweepConfig,
}

impl LoadSweep {
    /// Creates a sweep. `config.max_slots` becomes the *post-arrival drain
    /// budget*: each trial's hard slot limit is its last scheduled arrival
    /// plus this budget, so slow ladder points get the horizon they need.
    pub fn new(topology: FabricTopology, config: FabricConfig, sweep: LoadSweepConfig) -> Self {
        topology.validate();
        assert!(!sweep.loads.is_empty(), "the load ladder must not be empty");
        assert!(
            sweep.loads.iter().all(|&l| l > 0.0 && l <= 1.0),
            "loads must be fractions of line rate in (0, 1]"
        );
        assert!(
            sweep.loads.windows(2).all(|w| w[0] < w[1]),
            "the load ladder must be strictly ascending"
        );
        assert!(sweep.trials > 0 && sweep.messages_per_session > 0);
        LoadSweep {
            topology,
            config,
            sweep,
        }
    }

    /// The topology under test.
    pub fn topology(&self) -> &FabricTopology {
        &self.topology
    }

    /// The per-trial engine configuration.
    pub fn config(&self) -> &FabricConfig {
        &self.config
    }

    /// The sweep shape.
    pub fn sweep_config(&self) -> &LoadSweepConfig {
        &self.sweep
    }

    /// Runs the ladder and returns the latency-vs-load curve. Bit-identical
    /// for any worker-thread count (see the module docs).
    pub fn run(&self) -> LoadSweepReport {
        self.run_probed(|_| NullProbe).0
    }

    /// Like [`Self::run`], but every trial carries a lifecycle-event
    /// [`Probe`] built by `probe_for_trial` from the trial's *global* index
    /// (`ladder_point * trials + trial` — the same index that seeds the
    /// trial). The probes come back grouped per ladder point, in trial
    /// order inside each point, so consumers can merge per-trial state
    /// deterministically — the same thread-count-independence contract as
    /// the report itself. Probes observe and never perturb, so
    /// `run_probed(..).0` is bit-identical to [`Self::run`]. This is the
    /// seam the spatial-metrics layer (`rxl_telemetry::metrics`) uses to
    /// attribute a latency knee to the saturated links behind it.
    pub fn run_probed<P, F>(&self, probe_for_trial: F) -> (LoadSweepReport, Vec<Vec<P>>)
    where
        P: Probe + Send,
        F: Fn(u64) -> P + Sync,
    {
        let routing = RoutingTable::new(&self.topology);
        let mut points = Vec::with_capacity(self.sweep.loads.len());
        let mut point_probes = Vec::with_capacity(self.sweep.loads.len());
        for (pi, &load) in self.sweep.loads.iter().enumerate() {
            let session_loads = self.sweep.matrix.session_loads(&self.topology, load);
            let offered_msgs_per_slot: f64 = session_loads
                .iter()
                .map(|l| (l.downstream + l.upstream) * MESSAGES_PER_FLIT as f64)
                .sum();

            let (outcomes, probes): (Vec<TrialOutcome>, Vec<P>) = (0..self.sweep.trials)
                .into_par_iter()
                .map(|trial| {
                    let global = pi as u64 * self.sweep.trials + trial;
                    self.run_trial(&routing, &session_loads, global, probe_for_trial(global))
                })
                .collect::<Vec<_>>()
                .into_iter()
                .unzip();
            point_probes.push(probes);

            let mut point = LoadPoint {
                offered_load: load,
                offered_msgs_per_slot,
                injected_messages: 0,
                delivered_messages: 0,
                untracked_deliveries: 0,
                slots: 0,
                delivered_per_slot: 0.0,
                efficiency: 0.0,
                drained_trials: 0,
                trials: self.sweep.trials,
                failures: FailureCounts::default(),
                histogram: LatencyHistogram::new(),
                stats: LatencyStats::default(),
            };
            for o in outcomes {
                point.injected_messages += o.injected;
                point.delivered_messages += o.delivered;
                point.untracked_deliveries += o.untracked;
                point.slots += o.slots;
                point.drained_trials += u64::from(o.drained);
                point.failures.merge(&o.failures);
                point.histogram.merge(&o.hist);
            }
            point.delivered_per_slot = if point.slots > 0 {
                point.delivered_messages as f64 / point.slots as f64
            } else {
                0.0
            };
            point.efficiency = if offered_msgs_per_slot > 0.0 {
                (point.delivered_per_slot / offered_msgs_per_slot).min(1.0)
            } else {
                0.0
            };
            point.stats = LatencyStats::from_histogram(&point.histogram);
            points.push(point);
        }

        let knee = detect_knee(&points);
        (
            LoadSweepReport {
                topology: self.topology.name.clone(),
                protocol: self.config.variant.name(),
                matrix: self.sweep.matrix.label(),
                arrival: self.sweep.arrival.label(),
                sessions: self.topology.sessions.len(),
                points,
                knee,
            },
            point_probes,
        )
    }

    /// One paced, telemetry-enabled trial. Everything (workload content,
    /// arrival schedule, channel errors) derives from `(config.seed,
    /// global_trial)` alone; the probe observes without perturbing.
    fn run_trial<P: Probe>(
        &self,
        routing: &RoutingTable,
        session_loads: &[crate::matrix::SessionLoad],
        global_trial: u64,
        probe: P,
    ) -> (TrialOutcome, P) {
        let engine_seed = trial_seed(self.config.seed, global_trial);
        let mut arrival_rng =
            StdRng::seed_from_u64(trial_seed(self.config.seed ^ ARRIVAL_SALT, global_trial));

        let n = self.sweep.messages_per_session;
        let mut workload = FabricWorkload {
            downstream: Vec::with_capacity(session_loads.len()),
            upstream: Vec::with_capacity(session_loads.len()),
        };
        let mut pacing = InjectionPacing::default();
        // Streams are built and scheduled in a fixed order (downstream then
        // upstream, session-ascending inside each) so the arrival RNG draw
        // sequence is deterministic.
        for (s, sl) in session_loads.iter().enumerate() {
            let (msgs, slots) = if sl.downstream > 0.0 {
                let msgs = request_stream(
                    n,
                    self.sweep.matrix.request_pattern(s, self.sweep.cqids),
                    engine_seed ^ (0x10AD_0000 + s as u64),
                );
                let slots = self
                    .sweep
                    .arrival
                    .scaled(sl.downstream)
                    .schedule(msgs.len(), &mut arrival_rng);
                (msgs, slots)
            } else {
                (Vec::new(), Vec::new())
            };
            workload.downstream.push(msgs);
            pacing.downstream.push(slots);
        }
        for (s, sl) in session_loads.iter().enumerate() {
            let (msgs, slots) = if sl.upstream > 0.0 {
                let msgs =
                    response_stream(n, self.sweep.cqids, engine_seed ^ (0x10AD_8000 + s as u64));
                let slots = self
                    .sweep
                    .arrival
                    .scaled(sl.upstream)
                    .schedule(msgs.len(), &mut arrival_rng);
                (msgs, slots)
            } else {
                (Vec::new(), Vec::new())
            };
            workload.upstream.push(msgs);
            pacing.upstream.push(slots);
        }

        let horizon = pacing
            .downstream
            .iter()
            .chain(&pacing.upstream)
            .filter_map(|s| s.last().copied())
            .max()
            .unwrap_or(0);
        let config = FabricConfig {
            seed: engine_seed,
            max_slots: horizon.saturating_add(self.config.max_slots),
            ..self.config
        };

        let mut sim = FabricSim::with_probe(&self.topology, routing, config, probe);
        sim.enable_latency_telemetry();
        sim.begin_paced(&workload, &pacing);
        let _ = sim.step(u64::MAX);
        let (report, probe) = sim.finish_with_probe();
        let samples = report.latency.as_ref().expect("telemetry was enabled");
        let mut hist = LatencyHistogram::new();
        hist.record_samples(samples);
        (
            TrialOutcome {
                injected: workload.total_messages() as u64,
                delivered: samples.len() as u64,
                untracked: samples.untracked,
                slots: report.slots,
                drained: report.drained,
                failures: report.total_failures(),
                hist,
            },
            probe,
        )
    }
}

/// Finds the saturation knee of a ladder: the first point whose tail
/// latency has blown past twice the lightest-load p99, or whose delivered
/// throughput has fallen below 75% of the ladder's best efficiency —
/// whichever the ladder hits first. `None` if the whole ladder stays below
/// both thresholds (the fabric never saturated).
pub fn detect_knee(points: &[LoadPoint]) -> Option<usize> {
    let first = points.first()?;
    let base_p99 = first.stats.p99.max(1);
    let best_eff = points.iter().map(|p| p.efficiency).fold(0.0, f64::max);
    points
        .iter()
        .position(|p| p.stats.p99 >= 2 * base_p99 || p.efficiency < 0.75 * best_eff)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rxl_link::{ChannelErrorModel, ProtocolVariant};

    fn small_sweep(loads: Vec<f64>) -> LoadSweep {
        LoadSweep::new(
            FabricTopology::leaf_spine(2, 1, 2),
            FabricConfig::new(ProtocolVariant::Rxl).with_channel(ChannelErrorModel::ideal()),
            LoadSweepConfig {
                loads,
                messages_per_session: 300,
                trials: 2,
                ..LoadSweepConfig::default()
            },
        )
    }

    #[test]
    fn sweep_produces_a_point_per_load_and_times_every_message() {
        let sweep = small_sweep(vec![0.05, 0.5]);
        let report = sweep.run();
        assert_eq!(report.points.len(), 2);
        for p in &report.points {
            assert_eq!(p.trials, 2);
            assert_eq!(p.drained_trials, 2);
            assert_eq!(p.injected_messages, p.delivered_messages);
            assert_eq!(p.untracked_deliveries, 0);
            assert!(p.failures.is_clean());
            assert_eq!(p.histogram.count(), p.delivered_messages);
            assert!(p.stats.p50 > 0);
        }
        // Heavier load ⇒ heavier tail on the shared trunk.
        assert!(report.points[1].stats.p99 > report.points[0].stats.p99);
        assert!(report.to_string().contains("latency vs offered load"));
    }

    #[test]
    fn ladder_must_be_ascending_fractions() {
        let result = std::panic::catch_unwind(|| small_sweep(vec![0.5, 0.2]));
        assert!(result.is_err());
        let result = std::panic::catch_unwind(|| small_sweep(vec![0.2, 1.5]));
        assert!(result.is_err());
    }

    /// Minimal-adaptive routing must buy real tail latency on a congested
    /// fabric: under the hotspot matrix the deterministic DOR table funnels
    /// the boosted sessions' two-hop routes through the same x-trunks, while
    /// the adaptive VC drains onto the less-occupied minimal alternative —
    /// strictly lower p99 at the same offered load and VC budget.
    #[test]
    fn adaptive_routing_lowers_hotspot_tail_latency() {
        let run = |adaptive: bool| {
            LoadSweep::new(
                FabricTopology::torus(4, 4, 1),
                FabricConfig::new(ProtocolVariant::Rxl)
                    .with_channel(ChannelErrorModel::ideal())
                    .with_seed(0xADA7)
                    .with_vc_count(3)
                    .with_adaptive(adaptive),
                LoadSweepConfig {
                    loads: vec![0.25],
                    messages_per_session: 300,
                    trials: 2,
                    matrix: TrafficMatrix::Hotspot {
                        hot_sessions: 4,
                        boost: 3.0,
                    },
                    ..LoadSweepConfig::default()
                },
            )
            .run()
        };
        let deterministic = run(false);
        let adaptive = run(true);
        let (det, ada) = (&deterministic.points[0], &adaptive.points[0]);
        assert_eq!(det.drained_trials, det.trials);
        assert_eq!(ada.drained_trials, ada.trials);
        assert!(det.failures.is_clean() && ada.failures.is_clean());
        assert!(
            ada.stats.p99 < det.stats.p99,
            "adaptive p99 {} must beat deterministic p99 {}",
            ada.stats.p99,
            det.stats.p99
        );
    }

    #[test]
    fn knee_detection_finds_the_blow_up() {
        // leaf_spine(2,1,2): 4 session-streams share each trunk direction,
        // so the trunk saturates near load 0.25; a ladder crossing it must
        // report a knee at or after the crossing.
        let report = small_sweep(vec![0.05, 0.10, 0.20, 0.40, 0.80]).run();
        let knee = report.knee.expect("ladder crosses saturation");
        assert!(
            report.points[knee].offered_load >= 0.2,
            "knee at {} is below the capacity crossing",
            report.points[knee].offered_load
        );
        assert!(report.knee_load().unwrap() >= 0.2);
        // And a ladder entirely below the knee reports none.
        let calm = small_sweep(vec![0.02, 0.05]).run();
        assert_eq!(calm.knee, None);
    }
}
