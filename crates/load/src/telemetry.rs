//! Latency telemetry aggregation: an HDR-style log-bucketed histogram and
//! the summary statistics the sweep reports print.
//!
//! The fabric engine emits raw slot-denominated latency samples
//! ([`rxl_fabric::LatencySamples`]); Monte-Carlo shards fold them into
//! [`Histogram`]s, which merge exactly (elementwise counter addition), so a
//! sharded sweep aggregates bit-identically for any worker-thread count.

use std::fmt;

use rxl_fabric::LatencySamples;

/// An HDR-style log-bucketed histogram of `u64` values.
///
/// Every power-of-two range `[2^k, 2^(k+1))` is split into `2^SUB_BITS`
/// linear sub-buckets, so any recorded value lands in a bucket whose width
/// is at most `2^-SUB_BITS` (12.5% at the default `SUB_BITS = 3`) of its
/// magnitude; values below `2^SUB_BITS` get one exact bucket each. The
/// bucket layout covers **all** of `u64` — recording 0 or `u64::MAX` is
/// total, no clamping, no panics.
///
/// `record` is integer-only (a `leading_zeros`, a shift, a mask — no
/// floats) and touches a fixed-size array: no allocation ever. `BUCKETS`
/// must equal `(64 − SUB_BITS + 1) × 2^SUB_BITS`, checked at compile time;
/// use the [`LatencyHistogram`] alias unless you need a custom resolution.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Histogram<const SUB_BITS: u32, const BUCKETS: usize> {
    counts: [u64; BUCKETS],
    total: u64,
    sum: u128,
    min: u64,
    max: u64,
}

/// The workspace's standard latency histogram: 12.5% worst-case bucket
/// width over the full `u64` range, 496 buckets, ~4 KiB.
pub type LatencyHistogram = Histogram<3, 496>;

impl<const SUB_BITS: u32, const BUCKETS: usize> Default for Histogram<SUB_BITS, BUCKETS> {
    fn default() -> Self {
        Self::new()
    }
}

impl<const SUB_BITS: u32, const BUCKETS: usize> Histogram<SUB_BITS, BUCKETS> {
    /// Compile-time layout check: `BUCKETS` must cover u64 exactly.
    const LAYOUT_OK: () = assert!(
        BUCKETS == (64 - SUB_BITS as usize + 1) << SUB_BITS,
        "BUCKETS must equal (64 - SUB_BITS + 1) * 2^SUB_BITS"
    );

    /// An empty histogram.
    pub fn new() -> Self {
        #[allow(clippy::let_unit_value)]
        let () = Self::LAYOUT_OK;
        Histogram {
            counts: [0; BUCKETS],
            total: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// The bucket index of `value` — a `leading_zeros`, a shift and a mask.
    #[inline]
    pub fn index_of(value: u64) -> usize {
        if value < (1 << SUB_BITS) {
            value as usize
        } else {
            let msb = 63 - value.leading_zeros();
            let group = (msb - SUB_BITS + 1) as usize;
            let offset = ((value >> (msb - SUB_BITS)) & ((1 << SUB_BITS) - 1)) as usize;
            (group << SUB_BITS) + offset
        }
    }

    /// The smallest value that lands in bucket `index` (the inverse of
    /// [`Self::index_of`] up to bucket resolution).
    pub fn bucket_low(index: usize) -> u64 {
        assert!(index < BUCKETS, "bucket index out of range");
        let group = index >> SUB_BITS;
        if group == 0 {
            index as u64
        } else {
            let offset = (index & ((1 << SUB_BITS) - 1)) as u64;
            let msb = group as u32 + SUB_BITS - 1;
            (1u64 << msb) + (offset << (msb - SUB_BITS))
        }
    }

    /// Records one value. Total over all of `u64`; never panics, never
    /// allocates.
    #[inline]
    pub fn record(&mut self, value: u64) {
        self.counts[Self::index_of(value)] += 1;
        self.total += 1;
        self.sum += value as u128;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Folds both directions of a trial's [`LatencySamples`] in.
    pub fn record_samples(&mut self, samples: &LatencySamples) {
        for &s in samples.downstream.iter().chain(&samples.upstream) {
            self.record(s);
        }
    }

    /// Merges `other` in. `merge` is exact: merging two histograms equals
    /// recording the concatenation of their input streams (elementwise
    /// counter addition — pinned by a property test).
    pub fn merge(&mut self, other: &Self) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// `true` if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Exact smallest recorded value (0 when empty).
    pub fn min(&self) -> u64 {
        if self.total == 0 {
            0
        } else {
            self.min
        }
    }

    /// Exact largest recorded value (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Exact mean of the recorded values (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum as f64 / self.total as f64
        }
    }

    /// Number of recorded values above `threshold`, at bucket resolution:
    /// every value in a strictly higher bucket counts, values sharing
    /// `threshold`'s bucket do not. SLO accounting ("deliveries slower than
    /// the objective") divides this by [`Self::count`]; the ≤12.5% bucket
    /// width is far below the burn-rate thresholds it feeds.
    pub fn count_above(&self, threshold: u64) -> u64 {
        self.counts[Self::index_of(threshold) + 1..].iter().sum()
    }

    /// The value at quantile `q ∈ [0, 1]`: the lower bound of the bucket
    /// holding the `ceil(q·n)`-th smallest recorded value, clamped into the
    /// exact `[min, max]` envelope. Monotone non-decreasing in `q` (pinned
    /// by a property test); 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.total as f64).ceil() as u64).clamp(1, self.total);
        if rank == self.total {
            return self.max;
        }
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Self::bucket_low(i).clamp(self.min, self.max);
            }
        }
        self.max
    }
}

/// Summary statistics of one latency distribution, in flit slots.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct LatencyStats {
    /// Number of samples.
    pub count: u64,
    /// Exact mean latency (slots).
    pub mean: f64,
    /// Median (bucket-resolution, slots).
    pub p50: u64,
    /// 90th percentile (slots).
    pub p90: u64,
    /// 99th percentile (slots).
    pub p99: u64,
    /// 99.9th percentile (slots).
    pub p999: u64,
    /// Exact maximum (slots).
    pub max: u64,
}

impl LatencyStats {
    /// Summarises a histogram.
    pub fn from_histogram<const S: u32, const B: usize>(h: &Histogram<S, B>) -> Self {
        LatencyStats {
            count: h.count(),
            mean: h.mean(),
            p50: h.quantile(0.50),
            p90: h.quantile(0.90),
            p99: h.quantile(0.99),
            p999: h.quantile(0.999),
            max: h.max(),
        }
    }
}

impl fmt::Display for LatencyStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.1} p50={} p90={} p99={} p99.9={} max={} slots",
            self.count, self.mean, self.p50, self.p90, self.p99, self.p999, self.max
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_below_the_sub_bucket_threshold() {
        let mut h = LatencyHistogram::new();
        for v in 0..8u64 {
            h.record(v);
            assert_eq!(LatencyHistogram::index_of(v), v as usize);
            assert_eq!(LatencyHistogram::bucket_low(v as usize), v);
        }
        assert_eq!(h.count(), 8);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 7);
        assert!((h.mean() - 3.5).abs() < 1e-12);
    }

    #[test]
    fn extremes_are_total() {
        let mut h = LatencyHistogram::new();
        h.record(0);
        h.record(u64::MAX);
        assert_eq!(h.count(), 2);
        assert_eq!(h.max(), u64::MAX);
        assert_eq!(LatencyHistogram::index_of(u64::MAX), 495);
    }

    #[test]
    fn quantiles_of_a_known_stream() {
        let mut h = LatencyHistogram::new();
        for v in 1..=100u64 {
            h.record(v);
        }
        // Bucket resolution is 12.5%, so pin with tolerance.
        let p50 = h.quantile(0.5);
        assert!((44..=50).contains(&p50), "p50 = {p50}");
        let p99 = h.quantile(0.99);
        assert!((88..=99).contains(&p99), "p99 = {p99}");
        assert_eq!(h.quantile(1.0), 100);
        assert_eq!(h.quantile(0.0), 1);
    }

    #[test]
    fn count_above_matches_the_bucket_layout() {
        let mut h = LatencyHistogram::new();
        for v in [1u64, 2, 3, 100, 200, 4000] {
            h.record(v);
        }
        // Thresholds below the sub-bucket limit are exact.
        assert_eq!(h.count_above(2), 4);
        assert_eq!(h.count_above(0), 6);
        // Everything above the maximum counts nothing, even at u64::MAX.
        assert_eq!(h.count_above(4000), 0);
        assert_eq!(h.count_above(u64::MAX), 0);
        // A threshold between populated buckets counts exactly the tail.
        assert_eq!(h.count_above(1000), 1);
        assert_eq!(LatencyHistogram::new().count_above(0), 0);
    }

    #[test]
    fn empty_histogram_is_well_defined() {
        let h = LatencyHistogram::new();
        assert!(h.is_empty());
        assert_eq!(h.quantile(0.99), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
        let stats = LatencyStats::from_histogram(&h);
        assert_eq!(stats.count, 0);
    }

    #[test]
    fn merge_equals_concatenated_recording() {
        let (mut a, mut b, mut both) = (
            LatencyHistogram::new(),
            LatencyHistogram::new(),
            LatencyHistogram::new(),
        );
        for v in [3u64, 17, 900, 12_345, 3] {
            a.record(v);
            both.record(v);
        }
        for v in [0u64, 5_000_000, 17] {
            b.record(v);
            both.record(v);
        }
        a.merge(&b);
        assert_eq!(a, both);
    }

    #[test]
    fn display_mentions_the_tail() {
        let mut h = LatencyHistogram::new();
        for v in [4u64, 5, 6, 900] {
            h.record(v);
        }
        let s = LatencyStats::from_histogram(&h).to_string();
        assert!(s.contains("p99"), "{s}");
        assert!(s.contains("max=900"), "{s}");
    }
}
