//! Open-loop arrival processes.
//!
//! An [`ArrivalProcess`] turns a per-stream rate into the slot-denominated
//! arrival schedule an [`rxl_fabric::InjectionPacing`] carries. Rates are
//! expressed as a **fraction of line rate**: the schedulable unit is a
//! flit-sized cohort of [`MESSAGES_PER_FLIT`] messages (a transmitter that
//! dribbled single messages would emit one nearly-empty flit per message and
//! saturate the wire at 1/15 of the knob — real hosts fill flits), so rate
//! `r` means a cohort arrives every `1/r` slots on average and the stream
//! offers `r × MESSAGES_PER_FLIT` messages per slot.
//!
//! # RNG-draw-order invariant
//!
//! Arrival sampling follows the same discipline as the `rxl_link::Channel`
//! contract, so schedules are reproducible bit-for-bit from a trial seed
//! regardless of worker-thread count:
//!
//! * all randomness comes from the `rng` argument of
//!   [`ArrivalProcess::schedule`], and only during that call — no internal
//!   RNGs, no draws in constructors;
//! * the *number* of draws is a deterministic function of the process
//!   parameters and the cohort count — [`ArrivalProcess::Fixed`] draws
//!   **nothing**, [`ArrivalProcess::Poisson`] draws **exactly one `f64` per
//!   cohort**, and [`ArrivalProcess::OnOff`] draws **one `f64` per cohort
//!   plus one `f64` per dwell segment it advances through**;
//! * a decision whose outcome is deterministic must not consume a draw: a
//!   fixed-rate schedule and a rate-1 Poisson stream draw nothing they do
//!   not need, and an `OnOff` process with `mean_off == 0` never draws for
//!   the skipped off state.
//!
//! The schedule is computed *before* the trial starts, from an RNG that is
//! separate from the fabric engine's channel RNG — pacing therefore never
//! perturbs the engine's own draw order (see the `FabricSim` type docs).

use rand::rngs::StdRng;
use rand::Rng;
use rxl_flit::MESSAGES_PER_FLIT;

/// The shape of a stream's cohort arrival process. See the module docs for
/// the rate units and the RNG-draw-order contract.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ArrivalProcess {
    /// Deterministic fixed-rate arrivals: cohort `b` arrives at slot
    /// `floor(b / rate)`. Zero RNG draws — the schedule every latency
    /// acceptance test pins is exactly reproducible with no seed at all.
    Fixed {
        /// Cohorts per slot (fraction of line rate), in `(0, 1]`.
        rate: f64,
    },
    /// Memoryless arrivals: cohort inter-arrival gaps are geometric with
    /// mean `1/rate` slots (the discrete-time analogue of a Poisson
    /// process). Exactly one draw per cohort.
    Poisson {
        /// Mean cohorts per slot (fraction of line rate), in `(0, 1]`.
        rate: f64,
    },
    /// A bursty two-state on/off modulated process (an MMPP-2): the stream
    /// alternates geometric-dwell ON and OFF periods and emits Poisson-like
    /// arrivals at `rate_on` (resp. `rate_off`, typically 0) while in each
    /// state. One draw per cohort plus one per dwell transition.
    OnOff {
        /// Mean cohorts per slot while ON, in `(0, 1]`.
        rate_on: f64,
        /// Mean cohorts per slot while OFF, in `[0, 1]` (0 ⇒ silent).
        rate_off: f64,
        /// Mean ON-dwell length in slots (geometric, ≥ 1 slot).
        mean_on: f64,
        /// Mean OFF-dwell length in slots (geometric, ≥ 1 slot).
        mean_off: f64,
    },
}

impl ArrivalProcess {
    /// Deterministic fixed-rate arrivals at `rate` cohorts per slot.
    pub fn fixed(rate: f64) -> Self {
        assert!(rate > 0.0 && rate <= 1.0, "rate must be in (0, 1]");
        ArrivalProcess::Fixed { rate }
    }

    /// Poisson-like (geometric inter-arrival) arrivals at a mean of `rate`
    /// cohorts per slot.
    pub fn poisson(rate: f64) -> Self {
        assert!(rate > 0.0 && rate <= 1.0, "rate must be in (0, 1]");
        ArrivalProcess::Poisson { rate }
    }

    /// Bursty on/off arrivals: `rate_on` while ON, `rate_off` while OFF,
    /// with geometric dwells of the given means (slots).
    pub fn on_off(rate_on: f64, rate_off: f64, mean_on: f64, mean_off: f64) -> Self {
        assert!(rate_on > 0.0 && rate_on <= 1.0, "rate_on must be in (0, 1]");
        assert!(
            (0.0..=1.0).contains(&rate_off),
            "rate_off must be in [0, 1]"
        );
        assert!(
            mean_on >= 1.0 && mean_off >= 1.0,
            "mean dwells must be at least one slot"
        );
        ArrivalProcess::OnOff {
            rate_on,
            rate_off,
            mean_on,
            mean_off,
        }
    }

    /// The long-run mean cohort rate (fraction of line rate).
    pub fn mean_rate(&self) -> f64 {
        match *self {
            ArrivalProcess::Fixed { rate } | ArrivalProcess::Poisson { rate } => rate,
            ArrivalProcess::OnOff {
                rate_on,
                rate_off,
                mean_on,
                mean_off,
            } => (rate_on * mean_on + rate_off * mean_off) / (mean_on + mean_off),
        }
    }

    /// The same process shape with every rate multiplied by `factor`
    /// (clamped into `(0, 1]`); dwell means are untouched. The load-sweep
    /// ladder scales a unit-rate template this way.
    pub fn scaled(&self, factor: f64) -> Self {
        assert!(
            factor > 0.0 && factor.is_finite(),
            "factor must be positive"
        );
        let clamp = |r: f64| (r * factor).min(1.0);
        match *self {
            ArrivalProcess::Fixed { rate } => ArrivalProcess::Fixed { rate: clamp(rate) },
            ArrivalProcess::Poisson { rate } => ArrivalProcess::Poisson { rate: clamp(rate) },
            ArrivalProcess::OnOff {
                rate_on,
                rate_off,
                mean_on,
                mean_off,
            } => ArrivalProcess::OnOff {
                rate_on: clamp(rate_on),
                rate_off: (rate_off * factor).min(1.0),
                mean_on,
                mean_off,
            },
        }
    }

    /// Short label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            ArrivalProcess::Fixed { .. } => "fixed",
            ArrivalProcess::Poisson { .. } => "poisson",
            ArrivalProcess::OnOff { .. } => "on_off",
        }
    }

    /// Generates the arrival slot of every one of `messages` messages,
    /// non-decreasing, grouped in flit-sized cohorts (see the module docs).
    /// Draw counts per variant are part of the contract documented above.
    pub fn schedule(&self, messages: usize, rng: &mut StdRng) -> Vec<u64> {
        let cohorts = messages.div_ceil(MESSAGES_PER_FLIT);
        let cohort_slots = self.cohort_slots(cohorts, rng);
        let mut out = Vec::with_capacity(messages);
        for (b, &slot) in cohort_slots.iter().enumerate() {
            let n = (messages - b * MESSAGES_PER_FLIT).min(MESSAGES_PER_FLIT);
            out.extend(std::iter::repeat_n(slot, n));
        }
        out
    }

    /// Arrival slot of each of `cohorts` cohorts.
    fn cohort_slots(&self, cohorts: usize, rng: &mut StdRng) -> Vec<u64> {
        match *self {
            ArrivalProcess::Fixed { rate } => {
                (0..cohorts).map(|b| (b as f64 / rate) as u64).collect()
            }
            ArrivalProcess::Poisson { rate } => {
                let mut t = 0u64;
                let mut out = Vec::with_capacity(cohorts);
                for b in 0..cohorts {
                    if b > 0 {
                        t = t.saturating_add(geometric_gap(rate, rng));
                    }
                    out.push(t);
                }
                out
            }
            ArrivalProcess::OnOff {
                rate_on,
                rate_off,
                mean_on,
                mean_off,
            } => {
                // Walk dwell segments; inside a segment arrivals are
                // Poisson-like at the segment's rate. A zero-rate segment
                // emits nothing and costs no arrival draws (only its dwell
                // draw); a zero-length mean is forced to ≥ 1 slot by the
                // constructor, so the walk always advances.
                let mut out = Vec::with_capacity(cohorts);
                let mut t = 0u64;
                let mut on = true;
                let mut segment_end = geometric_dwell(mean_on, rng);
                let mut pending_gap: Option<u64> = None;
                while out.len() < cohorts {
                    let rate = if on { rate_on } else { rate_off };
                    if rate <= 0.0 {
                        // Silent segment: skip to its end (no draws).
                        t = t.max(segment_end);
                    } else {
                        let gap = match pending_gap.take() {
                            Some(g) => g,
                            None => {
                                if out.is_empty() && t == 0 {
                                    0 // first cohort of the stream arrives at once
                                } else {
                                    geometric_gap(rate, rng)
                                }
                            }
                        };
                        let arrival = t.saturating_add(gap);
                        if arrival < segment_end {
                            t = arrival;
                            out.push(t);
                            continue;
                        }
                        // The gap crosses the dwell boundary: carry the
                        // remainder into the next segment (memorylessness
                        // makes the carried remainder distribution-exact
                        // only for equal rates; for the usual rate_off = 0
                        // it simply delays the burst restart, which is the
                        // behaviour we model).
                        pending_gap = Some(arrival - segment_end);
                        t = segment_end;
                    }
                    on = !on;
                    let mean = if on { mean_on } else { mean_off };
                    segment_end = t.saturating_add(geometric_dwell(mean, rng));
                }
                out
            }
        }
    }
}

/// A geometric inter-arrival gap with mean `1/rate` slots (≥ 1): the
/// discrete-time Bernoulli-process analogue of an exponential gap. Exactly
/// one draw — except at rate ≥ 1, where the gap is deterministically 1 and
/// nothing is drawn.
fn geometric_gap(rate: f64, rng: &mut StdRng) -> u64 {
    debug_assert!(rate > 0.0 && rate <= 1.0);
    if rate >= 1.0 {
        return 1;
    }
    let u: f64 = rng.random::<f64>().max(f64::MIN_POSITIVE);
    let g = (u.ln() / (1.0 - rate).ln()).floor();
    1 + if g < 0.0 {
        0
    } else if g > u64::MAX as f64 {
        u64::MAX - 1
    } else {
        g as u64
    }
}

/// A geometric dwell length with the given mean (≥ 1 slot). Exactly one
/// draw — except at mean ≤ 1, where the dwell is deterministically 1 slot.
fn geometric_dwell(mean: f64, rng: &mut StdRng) -> u64 {
    debug_assert!(mean >= 1.0);
    if mean <= 1.0 {
        return 1;
    }
    geometric_gap(1.0 / mean, rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn fixed_draws_nothing_and_is_exact() {
        let mut rng = StdRng::seed_from_u64(1);
        let before = rng.clone().random::<u64>();
        let slots = ArrivalProcess::fixed(0.25).schedule(45, &mut rng);
        assert_eq!(rng.random::<u64>(), before, "fixed must not draw");
        // 45 messages = 3 cohorts at slots 0, 4, 8, 15 messages each.
        assert_eq!(slots.len(), 45);
        assert_eq!(&slots[..3], &[0, 0, 0]);
        assert_eq!(slots[14], 0);
        assert_eq!(slots[15], 4);
        assert_eq!(slots[44], 8);
    }

    #[test]
    fn poisson_draws_one_per_cohort_and_matches_the_mean() {
        let mut rng = StdRng::seed_from_u64(2);
        let cohorts = 4_000;
        let slots = ArrivalProcess::poisson(0.1).schedule(cohorts * MESSAGES_PER_FLIT, &mut rng);
        assert!(slots.windows(2).all(|w| w[0] <= w[1]));
        let span = *slots.last().unwrap() as f64;
        let mean_gap = span / (cohorts - 1) as f64;
        assert!(
            (mean_gap - 10.0).abs() < 1.0,
            "mean inter-arrival ≈ 10 slots, got {mean_gap}"
        );
        // Draw-count contract: exactly cohorts − 1 draws (the first cohort
        // arrives at slot 0 without a draw).
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let _ = ArrivalProcess::poisson(0.1).schedule(10 * MESSAGES_PER_FLIT, &mut a);
        for _ in 0..9 {
            let _: f64 = b.random();
        }
        assert_eq!(a.random::<u64>(), b.random::<u64>());
    }

    #[test]
    fn on_off_bursts_cluster_arrivals() {
        let mut rng = StdRng::seed_from_u64(3);
        // Bursty: full line rate for ~200-slot bursts, silent ~1800 slots.
        let p = ArrivalProcess::on_off(1.0, 0.0, 200.0, 1_800.0);
        assert!((p.mean_rate() - 0.1).abs() < 1e-12);
        let slots = ArrivalProcess::schedule(&p, 600 * MESSAGES_PER_FLIT, &mut rng);
        assert!(slots.windows(2).all(|w| w[0] <= w[1]));
        // Burstiness: the fraction of unit gaps must far exceed the 10%
        // a smooth process at the same mean rate would produce.
        let cohort_gaps: Vec<u64> = slots
            .chunks_exact(MESSAGES_PER_FLIT)
            .map(|c| c[0])
            .collect::<Vec<_>>()
            .windows(2)
            .map(|w| w[1] - w[0])
            .collect();
        let unit = cohort_gaps.iter().filter(|&&g| g <= 1).count() as f64;
        assert!(
            unit / cohort_gaps.len() as f64 > 0.5,
            "bursts must emit back-to-back cohorts"
        );
        assert!(
            cohort_gaps.iter().any(|&g| g > 500),
            "off dwells must leave long silent gaps"
        );
    }

    #[test]
    fn schedules_are_reproducible_per_seed() {
        for p in [
            ArrivalProcess::poisson(0.3),
            ArrivalProcess::on_off(0.8, 0.05, 50.0, 150.0),
        ] {
            let a = p.schedule(300, &mut StdRng::seed_from_u64(11));
            let b = p.schedule(300, &mut StdRng::seed_from_u64(11));
            let c = p.schedule(300, &mut StdRng::seed_from_u64(12));
            assert_eq!(a, b);
            assert_ne!(a, c, "{p:?} must actually use the seed");
        }
    }

    #[test]
    fn scaling_scales_the_mean_rate() {
        let p = ArrivalProcess::poisson(0.5).scaled(0.5);
        assert!((p.mean_rate() - 0.25).abs() < 1e-12);
        let f = ArrivalProcess::fixed(0.8).scaled(10.0);
        assert_eq!(f.mean_rate(), 1.0, "scaling clamps at line rate");
        let oo = ArrivalProcess::on_off(0.6, 0.0, 10.0, 30.0).scaled(0.5);
        assert!((oo.mean_rate() - 0.075).abs() < 1e-12);
    }

    #[test]
    fn labels_are_distinct() {
        let labels = [
            ArrivalProcess::fixed(0.1).label(),
            ArrivalProcess::poisson(0.1).label(),
            ArrivalProcess::on_off(0.5, 0.0, 10.0, 10.0).label(),
        ];
        assert_eq!(
            labels
                .iter()
                .collect::<std::collections::HashSet<_>>()
                .len(),
            3
        );
    }
}
