//! Request-scale fanout workloads for the open-system serving mode.
//!
//! A *request* is what a user experiences: one logical operation that fans
//! out into `k` shard messages across `k` sessions and completes only when
//! the **slowest** shard completes. Message-level percentiles systematically
//! understate that experience — at fanout `k` the request p99 samples the
//! max of `k` message latencies, so the message-level tail is amplified
//! (the classic "tail at scale" effect) even at fixed per-message load.
//!
//! A [`RequestGenerator`] maps an open-loop request arrival process into:
//!
//! * a [`FabricWorkload`] + [`InjectionPacing`] pair driving the engine
//!   (each shard rides its own session's flit-cohort arrival stream,
//!   downstream-only — see [`RequestGenerator::build`] for why the
//!   schedule is per-session rather than per-request), and
//! * a [`RequestMap`] recording, for each request, exactly which message
//!   spans (`(dst, key)` identities — see [`rxl_fabric::message_key`])
//!   belong to it — the join table the request probe in `rxl-telemetry`
//!   uses to fold engine delivery events back into request completions.
//!
//! Generation follows the workspace's RNG discipline: all randomness comes
//! from the caller's `rng` during [`RequestGenerator::build`] (one shared
//! arrival-schedule realization; shard placement is deterministic), so a
//! trial's request workload is bit-identical for a given seed regardless
//! of worker thread count.

use rand::rngs::StdRng;
use rxl_fabric::{message_key, FabricTopology, FabricWorkload, InjectionPacing};
use rxl_sim::{request_stream, TrafficPattern};

use crate::arrival::ArrivalProcess;

/// Seed salt separating per-session shard message streams from the other
/// stream families (`0x10AD_*` in the load sweep, `0x5E55_*` in the
/// symmetric workload).
const SHARD_STREAM_SALT: u64 = 0xFA17_0000;

/// How a request's `k` shards are spread over the topology's sessions.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FanoutShape {
    /// Shards round-robin over every session: request `r` uses sessions
    /// `(r·k + j) mod S` — each request touches `k` distinct sessions when
    /// `k ≤ S`, and load spreads evenly in the long run.
    Uniform,
    /// One shard per leaf switch (a sharded index: every leaf holds one
    /// shard replica group). Shard `j` goes to leaf group `j mod G`, and
    /// rotates over that group's sessions across requests.
    PerLeafShard,
    /// Every shard lands on a session whose *device* attaches to `leaf` —
    /// the request-level analogue of
    /// [`TrafficMatrix::Incast`](crate::TrafficMatrix::Incast): all shard
    /// traffic funnels through the target leaf's uplink.
    Incast {
        /// Leaf switch index the shard devices attach to.
        leaf: usize,
    },
}

impl FanoutShape {
    /// The sessions this shape places shards on, ascending. For
    /// [`FanoutShape::Incast`] this matches the session set
    /// `TrafficMatrix::Incast` loads (device attached to the target leaf);
    /// the other shapes use every session.
    pub fn loaded_sessions(&self, topology: &FabricTopology) -> Vec<usize> {
        match *self {
            FanoutShape::Uniform | FanoutShape::PerLeafShard => {
                (0..topology.session_count()).collect()
            }
            FanoutShape::Incast { leaf } => (0..topology.session_count())
                .filter(|&s| {
                    let device = topology.sessions[s].device;
                    topology.endpoints[device].switch == leaf
                })
                .collect(),
        }
    }

    /// Short label for reports.
    pub fn label(&self) -> String {
        match *self {
            FanoutShape::Uniform => "uniform".to_string(),
            FanoutShape::PerLeafShard => "per_leaf_shard".to_string(),
            FanoutShape::Incast { leaf } => format!("incast_leaf{leaf}"),
        }
    }
}

/// One shard of a request: the message span it rides on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShardRef {
    /// Session carrying the shard message.
    pub session: usize,
    /// Destination endpoint (the session's device; shards are
    /// downstream-only).
    pub dst: usize,
    /// Engine message key — `(dst, key)` is the workspace's message-span
    /// identity.
    pub key: u64,
}

/// One request: its arrival slot and the shard spans it fans out into. The
/// request is complete when **every** shard has been delivered; its
/// completion slot is the max of its shard delivery slots (see
/// [`request_completion_slot`]).
#[derive(Clone, Debug)]
pub struct RequestSpec {
    /// Slot the request was dispatched: the earliest release slot among its
    /// shard messages (shards on other sessions may release a few slots
    /// later, riding their own stream's cohort schedule).
    pub arrival_slot: u64,
    /// The `fanout` shard spans, in shard order.
    pub shards: Vec<ShardRef>,
}

/// The request→shard join table for one trial, in request-arrival order.
#[derive(Clone, Debug)]
pub struct RequestMap {
    /// Shards per request.
    pub fanout: usize,
    /// Fanout-shape label (for reports).
    pub shape: String,
    /// Every request of the trial, in dispatch (request-index) order.
    /// Arrival slots are approximately ascending; per-session shard release
    /// slots are exactly non-decreasing.
    pub requests: Vec<RequestSpec>,
    /// The sessions shards were placed on, ascending.
    pub loaded_sessions: Vec<usize>,
}

impl RequestMap {
    /// Total shard messages across all requests.
    pub fn total_messages(&self) -> usize {
        self.requests.iter().map(|r| r.shards.len()).sum()
    }

    /// Latest request arrival slot (0 for an empty map). Arrival slots are
    /// only approximately ascending in request order, so this scans.
    pub fn last_arrival(&self) -> u64 {
        self.requests
            .iter()
            .map(|r| r.arrival_slot)
            .max()
            .unwrap_or(0)
    }
}

/// The completion slot of a request given its shard delivery slots: the
/// **max** (a request is as slow as its slowest shard). `None` while any
/// shard is outstanding (callers pass only completed cohorts).
pub fn request_completion_slot(shard_deliver_slots: &[u64]) -> Option<u64> {
    shard_deliver_slots.iter().copied().max()
}

/// Open-loop generator mapping request arrivals into fanout cohorts of
/// message spans.
#[derive(Clone, Debug)]
pub struct RequestGenerator {
    /// Shards per request (`k`).
    pub fanout: usize,
    /// Requests per trial.
    pub requests: usize,
    /// Shard placement shape.
    pub shape: FanoutShape,
    /// Arrival process *template*, normally unit-rate
    /// (`ArrivalProcess::poisson(1.0)`): [`RequestGenerator::build`] scales
    /// it to the caller's `offered_load` and paces every loaded session's
    /// **message** stream with one shared realization of it, so the
    /// per-session message load (and its flit-cohort burst structure) is
    /// identical at every fanout — the fanout ladder's "fixed per-message
    /// load" axis.
    pub arrival: ArrivalProcess,
    /// Command-queue spread of the shard messages.
    pub cqids: u16,
}

impl RequestGenerator {
    /// Sessions of request `r`'s shards, in shard order. Deterministic (no
    /// RNG): placement is part of the workload's identity, not its noise.
    fn shard_sessions(&self, r: usize, loaded: &[usize], groups: &[Vec<usize>]) -> Vec<usize> {
        (0..self.fanout)
            .map(|j| match self.shape {
                FanoutShape::Uniform | FanoutShape::Incast { .. } => {
                    loaded[(r * self.fanout + j) % loaded.len()]
                }
                FanoutShape::PerLeafShard => {
                    let group = &groups[j % groups.len()];
                    group[(r + j / groups.len()) % group.len()]
                }
            })
            .collect()
    }

    /// Builds one trial's workload: shard message streams, the pacing that
    /// releases each shard on its session's message-stream schedule, and
    /// the request→shard join table. `offered_load` is the per-session
    /// message load fraction; `seed` derives the shard message content;
    /// `rng` drives the arrival schedule (the only randomness — one
    /// [`ArrivalProcess::schedule`] call sized to the busiest session).
    ///
    /// The schedule is denominated in **messages per session**, not
    /// requests: a request-level schedule would change every session's
    /// burst shape as fanout varies (partial flit cohorts at low fanout,
    /// full ones at high), confounding the fanout ladder's "fixed
    /// per-message load" axis. Instead every loaded session's stream is
    /// paced by the same flit-cohort realization — full flits at every
    /// fanout — and a request groups the next message of each of its `k`
    /// sessions, arriving at the earliest of those release slots and
    /// completing at the max of their deliveries. Because the grouping is
    /// consecutive (request `r` takes per-session cursor positions that
    /// nest as `k` doubles), the request-latency distribution is
    /// stochastically non-decreasing in fanout by construction — the
    /// tail-at-scale effect the request sweep's fanout ladder measures.
    pub fn build(
        &self,
        topology: &FabricTopology,
        offered_load: f64,
        seed: u64,
        rng: &mut StdRng,
    ) -> (FabricWorkload, InjectionPacing, RequestMap) {
        assert!(self.fanout >= 1, "a request needs at least one shard");
        assert!(self.requests >= 1, "a trial needs at least one request");
        assert!(
            offered_load > 0.0 && offered_load <= 1.0,
            "offered load must be a fraction of line rate in (0, 1]"
        );
        let loaded = self.shape.loaded_sessions(topology);
        assert!(!loaded.is_empty(), "the fanout shape loads no session");

        // Leaf groups for the per-leaf-shard shape: loaded sessions grouped
        // by the switch their device attaches to, ascending by switch.
        let groups: Vec<Vec<usize>> = {
            let mut switches: Vec<usize> = loaded
                .iter()
                .map(|&s| topology.endpoints[topology.sessions[s].device].switch)
                .collect();
            switches.sort_unstable();
            switches.dedup();
            switches
                .iter()
                .map(|&sw| {
                    loaded
                        .iter()
                        .copied()
                        .filter(|&s| topology.endpoints[topology.sessions[s].device].switch == sw)
                        .collect()
                })
                .collect()
        };

        // Pass 1 — deterministic shard placement, counting messages per
        // session so the per-session streams can be generated in one shot.
        let placements: Vec<Vec<usize>> = (0..self.requests)
            .map(|r| self.shard_sessions(r, &loaded, &groups))
            .collect();
        let mut per_session = vec![0usize; topology.session_count()];
        for p in &placements {
            for &s in p {
                per_session[s] += 1;
            }
        }

        // One shared message-arrival schedule realization at the offered
        // per-message load, indexed by each session's own cursor (see the
        // method docs): a request dispatches all its shards at once, so
        // every loaded session's stream sees the *same* flit-cohort slots —
        // full flits at every fanout — and request latency isolates
        // fabric-side skew (queueing, trunk contention) rather than
        // generator-side drift between independent per-session schedules.
        // Draw count: exactly one `schedule` call sized to the busiest
        // session, a prefix-consistent function of the message count.
        let scaled = self.arrival.scaled(offered_load);
        let n_max = per_session.iter().copied().max().unwrap_or(0);
        let template = if n_max == 0 {
            Vec::new()
        } else {
            scaled.schedule(n_max, rng)
        };

        // Per-session shard message streams (content identity only; arrival
        // timing rides the pacing below).
        let streams: Vec<Vec<rxl_flit::Message>> = per_session
            .iter()
            .enumerate()
            .map(|(s, &n)| {
                if n == 0 {
                    Vec::new()
                } else {
                    request_stream(
                        n,
                        TrafficPattern::DataStream { cqids: self.cqids },
                        seed ^ (SHARD_STREAM_SALT + s as u64),
                    )
                }
            })
            .collect();

        // Pass 2 — walk requests arrival-ascending, consuming each
        // session's stream in order so per-stream pacing slots are
        // non-decreasing.
        let mut workload = FabricWorkload {
            downstream: vec![Vec::new(); topology.session_count()],
            upstream: vec![Vec::new(); topology.session_count()],
        };
        let mut pacing = InjectionPacing {
            downstream: vec![Vec::new(); topology.session_count()],
            upstream: vec![Vec::new(); topology.session_count()],
        };
        let mut cursor = vec![0usize; topology.session_count()];
        let mut requests = Vec::with_capacity(self.requests);
        for placement in &placements {
            let mut arrival_slot = u64::MAX;
            let mut shards = Vec::with_capacity(placement.len());
            for &s in placement {
                let slot = template[cursor[s]];
                let msg = streams[s][cursor[s]];
                cursor[s] += 1;
                workload.downstream[s].push(msg);
                pacing.downstream[s].push(slot);
                arrival_slot = arrival_slot.min(slot);
                shards.push(ShardRef {
                    session: s,
                    dst: topology.sessions[s].device,
                    key: message_key(&msg),
                });
            }
            requests.push(RequestSpec {
                arrival_slot,
                shards,
            });
        }
        // Streams were sized exactly; reclaim nothing.
        debug_assert!(streams.iter().zip(&cursor).all(|(st, &c)| st.len() == c));

        (
            workload,
            pacing,
            RequestMap {
                fanout: self.fanout,
                shape: self.shape.label(),
                requests,
                loaded_sessions: loaded,
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn generator(fanout: usize, shape: FanoutShape) -> RequestGenerator {
        RequestGenerator {
            fanout,
            requests: 40,
            shape,
            arrival: ArrivalProcess::fixed(1.0),
            cqids: 8,
        }
    }

    #[test]
    fn uniform_fanout_spreads_distinct_sessions_per_request() {
        let t = FabricTopology::leaf_spine(2, 1, 2);
        let (workload, pacing, map) =
            generator(4, FanoutShape::Uniform).build(&t, 0.2, 7, &mut StdRng::seed_from_u64(1));
        assert_eq!(map.requests.len(), 40);
        assert_eq!(map.total_messages(), 160);
        assert_eq!(workload.total_messages(), 160);
        for req in &map.requests {
            let mut sessions: Vec<usize> = req.shards.iter().map(|s| s.session).collect();
            sessions.sort_unstable();
            sessions.dedup();
            assert_eq!(sessions.len(), 4, "k ≤ S shards land on distinct sessions");
        }
        // Pacing slots are per-stream non-decreasing and request-aligned.
        for s in 0..t.session_count() {
            assert!(pacing.downstream[s].windows(2).all(|w| w[0] <= w[1]));
            assert!(pacing.upstream[s].is_empty());
            assert!(workload.upstream[s].is_empty());
        }
    }

    #[test]
    fn incast_shape_matches_the_incast_matrix_session_set() {
        let t = FabricTopology::leaf_spine(2, 1, 2);
        let shape = FanoutShape::Incast { leaf: 1 };
        let loaded = shape.loaded_sessions(&t);
        let matrix_loaded: Vec<usize> = crate::TrafficMatrix::Incast { leaf: 1 }
            .session_loads(&t, 0.4)
            .iter()
            .enumerate()
            .filter(|(_, l)| l.downstream > 0.0)
            .map(|(s, _)| s)
            .collect();
        assert_eq!(loaded, matrix_loaded);
        let (workload, _, map) =
            shape_build(&t, generator(2, shape), 0.3, &mut StdRng::seed_from_u64(2));
        for req in &map.requests {
            for shard in &req.shards {
                assert_eq!(t.endpoints[shard.dst].switch, 1);
            }
        }
        for s in 0..t.session_count() {
            if !loaded.contains(&s) {
                assert!(workload.downstream[s].is_empty());
            }
        }
    }

    fn shape_build(
        t: &FabricTopology,
        g: RequestGenerator,
        load: f64,
        rng: &mut StdRng,
    ) -> (FabricWorkload, InjectionPacing, RequestMap) {
        g.build(t, load, 11, rng)
    }

    #[test]
    fn per_leaf_shard_places_one_shard_per_leaf() {
        let t = FabricTopology::leaf_spine(2, 1, 2);
        let (_, _, map) = generator(2, FanoutShape::PerLeafShard).build(
            &t,
            0.2,
            5,
            &mut StdRng::seed_from_u64(3),
        );
        for req in &map.requests {
            let mut leaves: Vec<usize> = req
                .shards
                .iter()
                .map(|s| t.endpoints[s.dst].switch)
                .collect();
            leaves.sort_unstable();
            leaves.dedup();
            assert_eq!(leaves.len(), 2, "one shard per leaf: {req:?}");
        }
    }

    #[test]
    fn span_identities_are_unique_and_streams_are_fanout_invariant() {
        let t = FabricTopology::leaf_spine(2, 1, 2);
        let mut ids = std::collections::HashSet::new();
        let (_, _, map) =
            generator(3, FanoutShape::Uniform).build(&t, 0.2, 9, &mut StdRng::seed_from_u64(4));
        for req in &map.requests {
            for sh in &req.shards {
                assert!(ids.insert((sh.dst, sh.key)), "duplicate span id {sh:?}");
            }
        }
        // Fixed per-message load: each session's paced message stream at
        // fanout 1 is a prefix of its stream at fanout 4 (same request
        // count ⇒ 4× the messages per session) — the wire sees the same
        // arrival process, only the request grouping changes.
        let mut g1 = generator(1, FanoutShape::Uniform);
        let mut g4 = generator(4, FanoutShape::Uniform);
        g1.arrival = ArrivalProcess::poisson(1.0);
        g4.arrival = ArrivalProcess::poisson(1.0);
        let (w1, p1, _) = g1.build(&t, 0.2, 9, &mut StdRng::seed_from_u64(5));
        let (w4, p4, _) = g4.build(&t, 0.2, 9, &mut StdRng::seed_from_u64(5));
        for s in 0..t.session_count() {
            let n = p1.downstream[s].len();
            assert!(n > 0 && p4.downstream[s].len() == 4 * n);
            assert_eq!(p1.downstream[s], p4.downstream[s][..n]);
            assert_eq!(w1.downstream[s], w4.downstream[s][..n]);
        }
    }

    #[test]
    fn completion_is_the_max_of_shard_completions() {
        assert_eq!(request_completion_slot(&[]), None);
        assert_eq!(request_completion_slot(&[42]), Some(42));
        assert_eq!(request_completion_slot(&[10, 99, 11]), Some(99));
    }
}
