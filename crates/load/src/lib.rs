//! # rxl-load — open-loop traffic generation & latency telemetry
//!
//! The fabric simulator (`rxl-fabric`) and the chaos engine (`rxl-chaos`)
//! answer *does it fail?*; this crate answers *how fast is it under load?*.
//! Instead of draining a pre-built message vector greedily, it paces
//! injection into the fabric through open-loop arrival processes, times
//! every message from injection to delivery, and sweeps an offered-load
//! ladder into latency-vs-load curves with a detected saturation knee — the
//! serving-scale axis (tail latency, incast, bursty arrivals, saturation)
//! the reliability experiments alone cannot see.
//!
//! * [`arrival`] — [`ArrivalProcess`]: deterministic fixed-rate,
//!   Poisson-like geometric inter-arrivals, and bursty on/off (MMPP-2)
//!   cohort schedules, under the same RNG-draw-order discipline as
//!   `rxl_link::Channel` (documented draw counts, bit-identical schedules
//!   for a given seed regardless of thread count);
//! * [`matrix`] — [`TrafficMatrix`]: uniform, permutation, hotspot-k and
//!   incast session load shapes;
//! * [`telemetry`] — [`Histogram`], an HDR-style log-bucketed latency
//!   histogram (integer-only record, exact merge) plus [`LatencyStats`]
//!   summaries;
//! * [`request`] — [`RequestGenerator`]: request-scale fanout workloads
//!   for the open-system serving mode (a request fans out into `k` shard
//!   messages and completes at the max of its parts);
//! * [`sweep`] — [`LoadSweep`]: the offered-load ladder driver, sharded
//!   Monte-Carlo per point, knee detection, printable reports.
//!
//! # Example: find the saturation knee of a leaf–spine pod
//!
//! ```
//! use rxl_load::{ArrivalProcess, LoadSweep, LoadSweepConfig, TrafficMatrix};
//! use rxl_fabric::{FabricConfig, FabricTopology};
//! use rxl_link::{ChannelErrorModel, ProtocolVariant};
//!
//! let sweep = LoadSweep::new(
//!     FabricTopology::leaf_spine(2, 1, 2),
//!     FabricConfig::new(ProtocolVariant::Rxl).with_channel(ChannelErrorModel::ideal()),
//!     LoadSweepConfig {
//!         loads: vec![0.05, 0.2, 0.6],
//!         messages_per_session: 150,
//!         trials: 1,
//!         matrix: TrafficMatrix::Uniform,
//!         arrival: ArrivalProcess::fixed(1.0),
//!         ..LoadSweepConfig::default()
//!     },
//! );
//! let report = sweep.run();
//! assert_eq!(report.points.len(), 3);
//! // Tail latency grows monotonically toward (and past) the knee.
//! assert!(report.points[2].stats.p99 >= report.points[0].stats.p99);
//! ```

pub mod arrival;
pub mod matrix;
pub mod request;
pub mod sweep;
pub mod telemetry;

pub use arrival::ArrivalProcess;
pub use matrix::{SessionLoad, TrafficMatrix};
pub use request::{
    request_completion_slot, FanoutShape, RequestGenerator, RequestMap, RequestSpec, ShardRef,
};
pub use sweep::{detect_knee, LoadPoint, LoadSweep, LoadSweepConfig, LoadSweepReport};
pub use telemetry::{Histogram, LatencyHistogram, LatencyStats};
