//! Coverage for the paced-injection path of the fabric engine.
//!
//! Two contracts anchor the subsystem:
//!
//! 1. **The greedy path is untouched.** With `offered_load` unset the slot
//!    loop takes the pre-pacing path byte for byte — the workspace-level
//!    `tests/fabric_golden_digest.rs` pins that against digests captured
//!    *before* this subsystem existed. Here we additionally pin that the
//!    greedy path is deterministic and that `run()` ≡ `begin`/`step`/
//!    `finish` with pacing disabled.
//! 2. **Saturation convergence.** Paced injection at full line rate must
//!    converge to the greedy throughput the `fabric_throughput` bench
//!    measures: the whole point of the `offered_load` knob is that 1.0
//!    means "as fast as the wire" — if a saturating paced run took
//!    materially longer than the greedy run, offered load would not be a
//!    fraction of the line rate.

use rxl_fabric::{FabricConfig, FabricSim, FabricTopology, FabricWorkload, RoutingTable};
use rxl_link::{ChannelErrorModel, ProtocolVariant};

fn topology() -> FabricTopology {
    FabricTopology::leaf_spine(2, 1, 2)
}

#[test]
fn greedy_run_equals_begin_step_finish_and_is_deterministic() {
    let t = topology();
    let routing = RoutingTable::new(&t);
    let config = FabricConfig::new(ProtocolVariant::CxlPiggyback)
        .with_channel(ChannelErrorModel::random(1e-4))
        .with_seed(0x90_1D);
    assert_eq!(config.offered_load, None, "default must stay greedy");
    let workload = FabricWorkload::symmetric(t.session_count(), 400, 8, 7);

    let via_run = FabricSim::new(&t, &routing, config).run(&workload);
    let mut sim = FabricSim::new(&t, &routing, config);
    sim.begin(&workload);
    let _ = sim.step(u64::MAX);
    let via_steps = sim.finish();
    assert_eq!(
        format!("{via_run:?}"),
        format!("{via_steps:?}"),
        "run() and begin/step/finish must agree exactly on the greedy path"
    );
}

#[test]
fn saturating_pace_converges_to_greedy_throughput() {
    let t = topology();
    let routing = RoutingTable::new(&t);
    let base = FabricConfig::new(ProtocolVariant::Rxl).with_channel(ChannelErrorModel::ideal());
    let workload = FabricWorkload::symmetric(t.session_count(), 600, 8, 3);

    let greedy = FabricSim::new(&t, &routing, base).run(&workload);
    assert!(greedy.drained);

    let paced = FabricSim::new(&t, &routing, base.with_offered_load(1.0)).run(&workload);
    assert!(paced.drained);
    assert_eq!(
        paced.total_failures().clean_deliveries,
        greedy.total_failures().clean_deliveries
    );
    // Throughput (messages per slot) within 10% of greedy: at line rate the
    // endpoints never starve, so pacing adds only the initial arrival skew.
    let rate =
        |r: &rxl_fabric::FabricReport| r.total_failures().clean_deliveries as f64 / r.slots as f64;
    let ratio = rate(&paced) / rate(&greedy);
    assert!(
        (0.9..=1.05).contains(&ratio),
        "paced-at-saturation throughput must match greedy: ratio {ratio} \
         (paced {} slots, greedy {} slots)",
        paced.slots,
        greedy.slots
    );
}

#[test]
fn sub_saturation_pace_tracks_the_offered_rate() {
    // At 10% of line rate the delivered rate must sit within the arrival
    // envelope: offered = 0.1 × 15 messages/slot/stream.
    let t = topology();
    let routing = RoutingTable::new(&t);
    let config = FabricConfig::new(ProtocolVariant::Rxl)
        .with_channel(ChannelErrorModel::ideal())
        .with_offered_load(0.1);
    let workload = FabricWorkload::symmetric(t.session_count(), 300, 8, 5);
    let report = FabricSim::new(&t, &routing, config).run(&workload);
    assert!(report.drained);
    assert!(report.total_failures().is_clean());
    // 8 streams × 300 messages at 1.5 messages/slot/stream: the arrival
    // horizon alone is (300/15 − 1) cohorts × 10 slots = 190 slots.
    assert!(
        report.slots >= 190,
        "paced run must span the arrival horizon, got {}",
        report.slots
    );
    let delivered_per_slot = report.total_failures().clean_deliveries as f64 / report.slots as f64;
    let offered = 8.0 * 0.1 * 15.0;
    assert!(
        delivered_per_slot <= offered * 1.05,
        "delivered rate {delivered_per_slot} exceeds offered {offered}"
    );
    assert!(
        delivered_per_slot >= offered * 0.75,
        "delivered rate {delivered_per_slot} far below offered {offered}"
    );
}
