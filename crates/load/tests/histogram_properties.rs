//! Property tests for the HDR-style log-bucketed [`LatencyHistogram`].
//!
//! The histogram is the measurement instrument of every latency claim in
//! this repository, so its structural invariants are pinned exhaustively:
//!
//! * **Totality** — recording any `u64` (0 and `u64::MAX` included) never
//!   panics and lands in a valid bucket.
//! * **Power-of-two cover** — bucket boundaries tile `u64` exactly: bucket
//!   lower bounds are non-decreasing, `index_of(bucket_low(i)) == i`, and
//!   every value's bucket lower bound is ≤ the value with relative error
//!   bounded by the sub-bucket resolution (12.5%).
//! * **Quantile monotonicity** — `quantile(q)` is non-decreasing in `q` and
//!   stays inside the exact `[min, max]` envelope.
//! * **Merge exactness** — `merge(a, b)` equals recording the concatenated
//!   stream, field for field.

use proptest::prelude::*;

use rxl_load::LatencyHistogram;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Record is total and self-consistent for arbitrary values.
    #[test]
    fn record_is_total_and_buckets_are_consistent(values in proptest::collection::vec(any::<u64>(), 1..200)) {
        let mut h = LatencyHistogram::new();
        for &v in &values {
            h.record(v);
            let idx = LatencyHistogram::index_of(v);
            prop_assert!(idx < 496);
            let low = LatencyHistogram::bucket_low(idx);
            prop_assert!(low <= v, "bucket_low {low} > value {v}");
            // Sub-bucket resolution: the bucket's width is at most
            // 2^-3 = 12.5% of the value's magnitude (exact below 8).
            if v >= 8 {
                prop_assert!(v - low <= v / 8, "bucket too wide for {v}: low {low}");
            } else {
                prop_assert_eq!(low, v);
            }
            prop_assert_eq!(LatencyHistogram::index_of(low), idx,
                "bucket_low must be a fixed point of index_of");
        }
        prop_assert_eq!(h.count(), values.len() as u64);
        prop_assert_eq!(h.max(), *values.iter().max().unwrap());
        prop_assert_eq!(h.min(), *values.iter().min().unwrap());
        let mean = values.iter().map(|&v| v as f64).sum::<f64>() / values.len() as f64;
        prop_assert!((h.mean() - mean).abs() <= mean.abs() * 1e-9 + 1e-9);
    }

    /// Bucket lower bounds tile u64: strictly increasing across indices,
    /// starting at 0 — together with the fixed-point property above this is
    /// the exact power-of-two cover of the value space.
    #[test]
    fn bucket_boundaries_are_strictly_increasing(_dummy in 0u8..1) {
        prop_assert_eq!(LatencyHistogram::bucket_low(0), 0);
        let mut prev = 0u64;
        for i in 1..496usize {
            let low = LatencyHistogram::bucket_low(i);
            prop_assert!(low > prev, "bucket {i}: {low} ≤ {prev}");
            prev = low;
        }
        // The top bucket holds u64::MAX.
        prop_assert_eq!(LatencyHistogram::index_of(u64::MAX), 495);
    }

    /// Quantiles are monotone non-decreasing in q and bounded by [min, max].
    #[test]
    fn quantiles_are_monotone_in_q(values in proptest::collection::vec(any::<u64>(), 1..150)) {
        let mut h = LatencyHistogram::new();
        for &v in &values {
            h.record(v);
        }
        let qs = [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999, 1.0];
        let mut prev = 0u64;
        for &q in &qs {
            let x = h.quantile(q);
            prop_assert!(x >= prev, "quantile({q}) = {x} < {prev}");
            prop_assert!(x >= h.min() && x <= h.max());
            prev = x;
        }
        prop_assert_eq!(h.quantile(1.0), h.max());
    }

    /// merge(a, b) == record(a ++ b), field for field (PartialEq covers
    /// counts, total, sum, min and max).
    #[test]
    fn merge_equals_concatenated_recording(
        a in proptest::collection::vec(any::<u64>(), 0..100),
        b in proptest::collection::vec(any::<u64>(), 0..100),
    ) {
        let mut ha = LatencyHistogram::new();
        let mut hb = LatencyHistogram::new();
        let mut hc = LatencyHistogram::new();
        for &v in &a {
            ha.record(v);
            hc.record(v);
        }
        for &v in &b {
            hb.record(v);
            hc.record(v);
        }
        ha.merge(&hb);
        prop_assert_eq!(&ha, &hc);
        // Merge is also symmetric.
        let mut hd = LatencyHistogram::new();
        let mut he = LatencyHistogram::new();
        for &v in &b { hd.record(v); }
        for &v in &a { he.record(v); }
        hd.merge(&he);
        prop_assert_eq!(&hd, &hc);
    }
}

#[test]
fn zero_and_max_do_not_panic() {
    let mut h = LatencyHistogram::new();
    h.record(0);
    h.record(u64::MAX);
    h.record(1);
    assert_eq!(h.count(), 3);
    assert_eq!(h.quantile(1.0), u64::MAX);
    assert_eq!(h.min(), 0);
}
