//! Property tests for the request-fanout workload generator.
//!
//! * **Completion is the max** — a request completes when its slowest
//!   shard completes, for any set of shard delivery slots.
//! * **Streams are fanout-invariant** — at a fixed per-message load the
//!   per-session paced message stream does not depend on the fanout, only
//!   the grouping of messages into requests does (the fanout ladder's
//!   "fixed per-message load" contract).
//! * **Join-table integrity** — every generated span identity is unique,
//!   every request has exactly `fanout` shards, and per-session pacing
//!   slots are non-decreasing.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

use rxl_fabric::FabricTopology;
use rxl_load::{request_completion_slot, ArrivalProcess, FanoutShape, RequestGenerator};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// request_completion_slot == max over the shard delivery slots, for
    /// any slot values (0 and u64::MAX included); None only when empty.
    #[test]
    fn completion_slot_is_the_max_of_shard_slots(
        slots in proptest::collection::vec(any::<u64>(), 0..24)
    ) {
        let expect = slots.iter().copied().max();
        prop_assert_eq!(request_completion_slot(&slots), expect);
        // Order-independence: any permutation (here: reversal) agrees.
        let mut rev = slots.clone();
        rev.reverse();
        prop_assert_eq!(request_completion_slot(&rev), expect);
    }

    /// At a fixed per-message load, each session's paced (slot, message)
    /// stream at fanout 1 is a prefix of its stream at fanout `k` with the
    /// same request count — the wire traffic is fanout-invariant.
    #[test]
    fn per_session_streams_are_fanout_invariant(
        k in 1usize..=8,
        requests in 16usize..80,
        load_pct in 5u32..60,
        seed in any::<u64>(),
    ) {
        let t = FabricTopology::leaf_spine(2, 1, 2);
        let load = load_pct as f64 / 100.0;
        let build = |fanout: usize| {
            RequestGenerator {
                fanout,
                requests,
                shape: FanoutShape::Uniform,
                arrival: ArrivalProcess::poisson(1.0),
                cqids: 8,
            }
            .build(&t, load, seed, &mut StdRng::seed_from_u64(seed ^ 0xA12))
        };
        let (w1, p1, m1) = build(1);
        let (wk, pk, mk) = build(k);
        prop_assert_eq!(m1.total_messages() * k, mk.total_messages());
        for s in 0..t.session_count() {
            let n = p1.downstream[s].len();
            prop_assert!(pk.downstream[s].len() >= n);
            prop_assert_eq!(&p1.downstream[s][..], &pk.downstream[s][..n]);
            prop_assert_eq!(&w1.downstream[s][..], &wk.downstream[s][..n]);
            // Pacing slots never regress within a stream.
            prop_assert!(pk.downstream[s].windows(2).all(|w| w[0] <= w[1]));
        }
    }

    /// The request→shard join table is exact: unique span identities,
    /// `fanout` shards per request, arrivals at the earliest shard release.
    #[test]
    fn join_table_is_exact(
        k in 1usize..=4,
        requests in 8usize..40,
        seed in any::<u64>(),
    ) {
        let t = FabricTopology::leaf_spine(2, 1, 2);
        let (_, pacing, map) = RequestGenerator {
            fanout: k,
            requests,
            shape: FanoutShape::Uniform,
            arrival: ArrivalProcess::poisson(1.0),
            cqids: 8,
        }
        .build(&t, 0.2, seed, &mut StdRng::seed_from_u64(seed));
        prop_assert_eq!(map.requests.len(), requests);
        prop_assert_eq!(map.fanout, k);
        let mut ids = std::collections::HashSet::new();
        let mut cursor = vec![0usize; t.session_count()];
        for req in &map.requests {
            prop_assert_eq!(req.shards.len(), k);
            let mut earliest = u64::MAX;
            for sh in &req.shards {
                prop_assert!(ids.insert((sh.dst, sh.key)));
                earliest = earliest.min(pacing.downstream[sh.session][cursor[sh.session]]);
                cursor[sh.session] += 1;
            }
            prop_assert_eq!(req.arrival_slot, earliest);
        }
        prop_assert!(map.last_arrival() >= map.requests[0].arrival_slot);
    }
}
