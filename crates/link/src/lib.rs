//! # rxl-link — Link layer for the CXL/RXL reproduction
//!
//! This crate implements the link-layer machinery Section 4 and Section 6 of
//! the paper reason about:
//!
//! * [`channel`] — bit-error channel models (i.i.d. BER plus a DFE-style
//!   burst-propagation model) used to corrupt wire flits in flight,
//! * [`seq`] — wrap-aware 10-bit sequence-number arithmetic,
//! * [`retry`] — the transmit replay buffer and go-back-N bookkeeping,
//! * [`ack`] — ACK scheduling: coalescing level and piggybacking policy,
//! * [`variant`] — the three protocol variants evaluated in the paper:
//!   CXL with ACK piggybacking, CXL with standalone ACK flits, and RXL,
//! * [`tx`] / [`rx`] — transmit and receive state machines for one direction
//!   of a link, faithful to the failure semantics of Fig. 4 (the baseline CXL
//!   receiver cannot check the sequence of ACK-carrying flits and forwards
//!   them blindly; the RXL receiver validates every flit via the ISN ECRC),
//! * [`endpoint`] — a convenience pairing of a TX and an RX that wires local
//!   ACK/NACK feedback together, as a full-duplex port would,
//! * [`stats`] — link-layer counters used by the experiments.

pub mod ack;
pub mod channel;
pub mod credit;
pub mod endpoint;
pub mod retry;
pub mod rx;
pub mod seq;
pub mod stats;
pub mod tx;
pub mod variant;

pub use ack::{AckPolicy, AckScheduler};
pub use channel::{
    clamp_ber, geometric_failures, BurstModel, Channel, ChannelErrorModel, ErrorPrediction,
    EventCursor, MAX_BER,
};
pub use credit::CreditCounter;
pub use endpoint::LinkEndpoint;
pub use retry::ReplayBuffer;
pub use rx::{LinkRx, RxResult};
pub use seq::{seq_add, seq_distance, seq_next, SEQ_MASK, SEQ_SPACE};
pub use stats::LinkStats;
pub use tx::{LinkTx, TxEmission};
pub use variant::{LinkConfig, ProtocolVariant};
