//! The receive side of one link direction.
//!
//! [`LinkRx`] is where the paper's central reliability difference lives:
//!
//! * the **baseline CXL** receiver can verify a flit's position in the stream
//!   only when the flit's FSN field carries its own sequence number. When the
//!   field carries a piggybacked ACK instead, the receiver must forward the
//!   flit after a data-integrity check alone — so a silently dropped
//!   predecessor goes unnoticed until a later FSN-carrying flit arrives
//!   (Fig. 4), by which time mis-ordered messages have already escaped to the
//!   transaction layer;
//! * the **RXL** receiver validates every flit against its expected sequence
//!   number through the ISN ECRC, so a drop is caught on the very next flit
//!   and nothing out of order is ever forwarded.

use rxl_flit::{CxlFlitCodec, FlitHeader, FlitType, Message, ReplayCmd, RxlFlitCodec, WireFlit};

use crate::ack::{AckPolicy, AckScheduler};
use crate::seq::{seq_add, seq_next};
use crate::stats::LinkStats;
use crate::variant::{LinkConfig, ProtocolVariant};

/// Everything the receiver decided about one arriving wire flit.
#[derive(Clone, Debug, Default)]
pub struct RxResult {
    /// `true` if the link layer accepted the flit (payload forwarded, or a
    /// control flit consumed).
    pub accepted: bool,
    /// Transaction messages forwarded to the upper layer by this flit.
    pub delivered: Vec<Message>,
    /// Header of the forwarded flit, if one was forwarded.
    pub delivered_header: Option<FlitHeader>,
    /// `true` if the flit's position in the sequence was actually verified
    /// before forwarding (always true for RXL; false for ACK-carrying flits
    /// in baseline CXL).
    pub sequence_checked: bool,
    /// Acknowledgement number extracted from the peer's flit, to be passed to
    /// the co-located transmitter.
    pub peer_ack: Option<u16>,
    /// Go-back-N NACK extracted from the peer's flit, to be passed to the
    /// co-located transmitter.
    pub peer_nack: Option<u16>,
    /// The receiver wants to acknowledge this sequence number to the peer.
    pub send_ack: Option<u16>,
    /// The receiver wants to request a retry after this sequence number.
    pub send_nack: Option<u16>,
    /// `true` if the flit was rejected (FEC uncorrectable, CRC/ECRC mismatch,
    /// or explicit sequence mismatch).
    pub rejected: bool,
}

enum Codec {
    Cxl(CxlFlitCodec),
    Rxl(RxlFlitCodec),
}

/// The receive state machine for one link direction.
pub struct LinkRx {
    config: LinkConfig,
    codec: Codec,
    /// Count-based expected sequence number of the next protocol flit.
    expected_seq: u16,
    /// Last sequence number that was explicitly verified (CXL only).
    last_verified_fsn: Option<u16>,
    /// `true` while waiting for a requested go-back-N replay to arrive.
    awaiting_replay: bool,
    acks: AckScheduler,
    stats: LinkStats,
}

impl LinkRx {
    /// Creates a receiver with the given configuration.
    pub fn new(config: LinkConfig) -> Self {
        let codec = match config.variant {
            ProtocolVariant::Rxl => Codec::Rxl(RxlFlitCodec::new()),
            _ => Codec::Cxl(CxlFlitCodec::new()),
        };
        let policy = if config.variant.piggybacks_acks() {
            AckPolicy::Piggyback
        } else {
            AckPolicy::Standalone
        };
        LinkRx {
            codec,
            expected_seq: 0,
            last_verified_fsn: None,
            awaiting_replay: false,
            acks: AckScheduler::new(policy, config.ack_coalescing),
            stats: LinkStats::default(),
            config,
        }
    }

    /// The link configuration.
    pub fn config(&self) -> &LinkConfig {
        &self.config
    }

    /// Accumulated receive-side statistics.
    pub fn stats(&self) -> &LinkStats {
        &self.stats
    }

    /// The sequence number the receiver expects next.
    pub fn expected_seq(&self) -> u16 {
        self.expected_seq
    }

    /// `true` while the receiver is discarding flits waiting for a replay.
    pub fn awaiting_replay(&self) -> bool {
        self.awaiting_replay
    }

    /// Takes whatever acknowledgement is pending even if the coalescing
    /// threshold has not been reached — the delayed-ACK flush used when the
    /// link would otherwise go idle with unacknowledged flits outstanding.
    pub fn flush_ack(&mut self) -> Option<u16> {
        self.acks.flush()
    }

    /// Processes one arriving wire flit.
    pub fn receive(&mut self, wire: &WireFlit) -> RxResult {
        match self.config.variant {
            ProtocolVariant::Rxl => self.receive_rxl(wire),
            _ => self.receive_cxl(wire),
        }
    }

    /// Processes one arriving flit that is *known clean*: the wire image the
    /// peer put on the link was bit-identical to `encode(flit, tx_seq)` and
    /// no traversal corrupted it, so decoding is pure overhead. This is the
    /// receiver half of the fabric engine's known-clean fast path; it must
    /// (and does) reproduce [`Self::receive`]'s exact accept/reject
    /// decisions, statistics and state transitions for such a wire:
    ///
    /// * FEC always accepts a clean codeword with zero corrections;
    /// * the CXL link CRC always verifies (it has no sequence component);
    /// * the RXL ISN ECRC verifies **iff** `tx_seq` equals the receiver's
    ///   expected sequence — the defining property of the ISN construction
    ///   (a 10-bit sequence folded into a CRC-64 can never collide across
    ///   distinct sequence numbers, see `rxl-crc`'s ISN docs) — and control
    ///   flits verify against their fixed binding to sequence 0.
    pub fn receive_trusted(&mut self, flit: &rxl_flit::Flit256, tx_seq: u16) -> RxResult {
        match self.config.variant {
            ProtocolVariant::Rxl => self.receive_trusted_rxl(flit, tx_seq),
            _ => self.dispatch_cxl(flit),
        }
    }

    // ----- baseline CXL ---------------------------------------------------

    fn receive_cxl(&mut self, wire: &WireFlit) -> RxResult {
        let Codec::Cxl(codec) = &self.codec else {
            unreachable!("CXL receive with RXL codec")
        };
        let decode = codec.decode(wire);
        let mut result = RxResult::default();

        if !decode.fec.accepted() || !decode.crc_ok {
            // Data-integrity failure at the endpoint: discard and request a
            // retry from the last sequence number we can vouch for.
            self.stats.flits_rejected += 1;
            result.rejected = true;
            if !self.awaiting_replay {
                let last_good = self.nack_reference();
                result.send_nack = Some(last_good);
                self.stats.nacks_sent += 1;
                self.expected_seq = seq_next(last_good);
                self.awaiting_replay = true;
            } else {
                self.stats.flits_discarded_in_replay += 1;
            }
            return result;
        }

        let flit = decode.flit.expect("accepted CXL flit carries contents");
        self.dispatch_cxl(&flit)
    }

    /// The integrity-independent tail of [`Self::receive_cxl`]: everything
    /// the baseline receiver does once FEC and CRC have passed (or are known
    /// to pass, on the trusted fast path). All decisions below depend only
    /// on header bits and receiver state, never on wire bytes.
    fn dispatch_cxl(&mut self, flit: &rxl_flit::Flit256) -> RxResult {
        let mut result = RxResult::default();
        match flit.header.flit_type {
            FlitType::LinkControl => {
                result.accepted = true;
                result.peer_nack = Some(flit.header.fsn);
                return result;
            }
            FlitType::StandaloneAck => {
                result.accepted = true;
                result.peer_ack = Some(flit.header.fsn);
                return result;
            }
            FlitType::Idle => {
                result.accepted = true;
                return result;
            }
            FlitType::Protocol => {}
        }

        match flit.header.replay_cmd {
            ReplayCmd::Ack => {
                // The paper's blind spot: the flit's own sequence number is
                // not visible, so the receiver can only check data integrity
                // (already done) and must forward the flit.
                result.peer_ack = Some(flit.header.fsn);
                result.sequence_checked = false;
                self.stats.unchecked_sequence_accepts += 1;
                self.accept_and_forward(flit.header, &flit.payload, &mut result);
            }
            ReplayCmd::SeqNum => {
                if flit.header.fsn == self.expected_seq {
                    self.last_verified_fsn = Some(flit.header.fsn);
                    self.awaiting_replay = false;
                    result.sequence_checked = true;
                    self.accept_and_forward(flit.header, &flit.payload, &mut result);
                } else if self.awaiting_replay {
                    // Discard silently until the replay reaches the expected
                    // sequence number.
                    self.stats.flits_discarded_in_replay += 1;
                    result.rejected = true;
                } else {
                    // Explicit sequence mismatch: a drop is finally visible.
                    self.stats.explicit_sequence_mismatches += 1;
                    self.stats.flits_rejected += 1;
                    result.rejected = true;
                    let last_good = self.nack_reference();
                    result.send_nack = Some(last_good);
                    self.stats.nacks_sent += 1;
                    self.expected_seq = seq_next(last_good);
                    self.awaiting_replay = true;
                }
            }
            ReplayCmd::NackGoBackN | ReplayCmd::NackSingleRetry => {
                // NACK information piggybacked on a protocol flit.
                result.peer_nack = Some(flit.header.fsn);
                result.accepted = true;
            }
        }
        result
    }

    /// The sequence number a CXL NACK refers to: the last *verified* FSN if
    /// one exists, otherwise one before the count-based expectation.
    fn nack_reference(&self) -> u16 {
        self.last_verified_fsn
            .unwrap_or_else(|| seq_add(self.expected_seq, -1))
    }

    // ----- RXL --------------------------------------------------------------

    fn receive_rxl(&mut self, wire: &WireFlit) -> RxResult {
        let Codec::Rxl(codec) = &self.codec else {
            unreachable!("RXL receive with CXL codec")
        };
        let decode = codec.decode(wire, self.expected_seq);
        let mut result = RxResult::default();

        if !decode.fec.accepted() {
            self.stats.flits_rejected += 1;
            result.rejected = true;
            if !self.awaiting_replay {
                let last_good = seq_add(self.expected_seq, -1);
                result.send_nack = Some(last_good);
                self.stats.nacks_sent += 1;
                self.awaiting_replay = true;
            } else {
                self.stats.flits_discarded_in_replay += 1;
            }
            return result;
        }

        let flit = decode
            .flit
            .as_ref()
            .expect("FEC-accepted flit has contents");

        // Control flits live outside the transport sequence space and are
        // bound to sequence 0 by the transmitter.
        if matches!(
            flit.header.flit_type,
            FlitType::LinkControl | FlitType::StandaloneAck | FlitType::Idle
        ) {
            if codec.verify_flit(flit, decode.crc, 0) {
                result.accepted = true;
                match flit.header.flit_type {
                    FlitType::LinkControl => result.peer_nack = Some(flit.header.fsn),
                    FlitType::StandaloneAck => result.peer_ack = Some(flit.header.fsn),
                    _ => {}
                }
            } else {
                self.stats.flits_rejected += 1;
                result.rejected = true;
            }
            return result;
        }

        if decode.ecrc_ok {
            // Data intact *and* sequence as expected: forward.
            self.awaiting_replay = false;
            result.sequence_checked = true;
            if flit.header.replay_cmd == ReplayCmd::Ack {
                result.peer_ack = Some(flit.header.fsn);
            }
            let header = flit.header;
            let payload = flit.payload;
            self.accept_and_forward(header, &payload, &mut result);
        } else {
            // Either the payload is corrupted or (at least) one flit before
            // this one was dropped. Both trigger the same response: retry.
            self.stats.ecrc_rejections += 1;
            self.stats.flits_rejected += 1;
            result.rejected = true;
            if !self.awaiting_replay {
                let last_good = seq_add(self.expected_seq, -1);
                result.send_nack = Some(last_good);
                self.stats.nacks_sent += 1;
                self.awaiting_replay = true;
            } else {
                self.stats.flits_discarded_in_replay += 1;
            }
        }
        result
    }

    /// The RXL receiver's decision for a *known-clean* arrival bound to
    /// `tx_seq` (see [`Self::receive_trusted`]): the FEC accepts, and the
    /// ISN ECRC outcome is exactly `tx_seq == expected_seq` for protocol
    /// flits (always-verifying for control flits, which the transmitter
    /// binds to sequence 0). Mirrors [`Self::receive_rxl`] branch for
    /// branch.
    fn receive_trusted_rxl(&mut self, flit: &rxl_flit::Flit256, tx_seq: u16) -> RxResult {
        let mut result = RxResult::default();

        if matches!(
            flit.header.flit_type,
            FlitType::LinkControl | FlitType::StandaloneAck | FlitType::Idle
        ) {
            debug_assert_eq!(tx_seq, 0, "control flits are bound to sequence 0");
            result.accepted = true;
            match flit.header.flit_type {
                FlitType::LinkControl => result.peer_nack = Some(flit.header.fsn),
                FlitType::StandaloneAck => result.peer_ack = Some(flit.header.fsn),
                _ => {}
            }
            return result;
        }

        if tx_seq == self.expected_seq {
            // Data intact *and* sequence as expected: forward.
            self.awaiting_replay = false;
            result.sequence_checked = true;
            if flit.header.replay_cmd == ReplayCmd::Ack {
                result.peer_ack = Some(flit.header.fsn);
            }
            self.accept_and_forward(flit.header, &flit.payload, &mut result);
        } else {
            // A clean flit with the wrong sequence: (at least) one flit
            // before this one was dropped, and the ECRC would have exposed
            // it. Same response as the decode path: retry.
            self.stats.ecrc_rejections += 1;
            self.stats.flits_rejected += 1;
            result.rejected = true;
            if !self.awaiting_replay {
                let last_good = seq_add(self.expected_seq, -1);
                result.send_nack = Some(last_good);
                self.stats.nacks_sent += 1;
                self.awaiting_replay = true;
            } else {
                self.stats.flits_discarded_in_replay += 1;
            }
        }
        result
    }

    // ----- shared ----------------------------------------------------------

    fn accept_and_forward(
        &mut self,
        header: FlitHeader,
        payload: &[u8; rxl_flit::FLIT_PAYLOAD_LEN],
        result: &mut RxResult,
    ) {
        result.accepted = true;
        result.delivered_header = Some(header);
        result.delivered = rxl_flit::unpack_messages(payload).unwrap_or_default();
        self.stats.flits_accepted += 1;

        let accepted_seq = self.expected_seq;
        self.expected_seq = seq_next(self.expected_seq);
        self.acks.record_accepted(accepted_seq);
        if let Some(ack) = self.acks.take_due_ack() {
            result.send_ack = Some(ack);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tx::{LinkTx, TxEmission};
    use rxl_flit::{Flit256, MemOp};

    fn config(variant: ProtocolVariant) -> LinkConfig {
        LinkConfig::cxl3_x16(variant)
    }

    fn protocol_wire(tx: &mut LinkTx, tag: u16) -> (Box<WireFlit>, u16) {
        tx.enqueue_messages([Message::request(MemOp::RdCurr, tag as u64 * 64, 1, tag)]);
        let emission = tx.emit(0.0);
        match &emission {
            TxEmission::Protocol { seq, .. } => (
                Box::new(tx.encode_emission(&emission).expect("protocol wire")),
                *seq,
            ),
            other => panic!("expected protocol flit, got {other:?}"),
        }
    }

    #[test]
    fn in_order_flits_are_forwarded_by_both_variants() {
        for variant in [
            ProtocolVariant::CxlPiggyback,
            ProtocolVariant::CxlStandaloneAck,
            ProtocolVariant::Rxl,
        ] {
            let mut tx = LinkTx::new(config(variant));
            let mut rx = LinkRx::new(config(variant));
            for tag in 0..5u16 {
                let (wire, _) = protocol_wire(&mut tx, tag);
                let out = rx.receive(&wire);
                assert!(out.accepted, "{variant:?} tag {tag}");
                assert_eq!(out.delivered.len(), 1);
                assert_eq!(out.delivered[0].tag(), tag);
                assert!(!out.rejected);
            }
            assert_eq!(rx.expected_seq(), 5);
            assert_eq!(rx.stats().flits_accepted, 5);
        }
    }

    #[test]
    fn cxl_forwards_ack_carrying_flit_despite_a_drop() {
        // Reproduces Fig. 4: flit #1 is dropped; flit #2 carries an ACK so the
        // baseline receiver forwards it without any sequence check.
        let variant = ProtocolVariant::CxlPiggyback;
        let mut tx = LinkTx::new(config(variant));
        let mut rx = LinkRx::new(config(variant));

        let (w0, _) = protocol_wire(&mut tx, 0);
        assert!(rx.receive(&w0).accepted);

        let (_w1_dropped, _) = protocol_wire(&mut tx, 1);

        // Flit #2 piggybacks an acknowledgement (FSN field = AckNum).
        tx.queue_ack(100);
        let (w2, _) = protocol_wire(&mut tx, 2);
        let out = rx.receive(&w2);
        assert!(
            out.accepted,
            "CXL cannot detect the gap on an ACK-carrying flit"
        );
        assert!(!out.sequence_checked);
        assert_eq!(out.peer_ack, Some(100));
        assert_eq!(out.delivered[0].tag(), 2);
        assert_eq!(rx.stats().unchecked_sequence_accepts, 1);

        // Flit #3 carries its own FSN (= 3) and finally exposes the gap.
        let (w3, _) = protocol_wire(&mut tx, 3);
        let out = rx.receive(&w3);
        assert!(out.rejected);
        assert_eq!(
            out.send_nack,
            Some(0),
            "NACK references the last verified FSN"
        );
        assert!(rx.awaiting_replay());
        assert_eq!(rx.stats().explicit_sequence_mismatches, 1);
    }

    #[test]
    fn rxl_detects_the_drop_on_the_very_next_flit() {
        let variant = ProtocolVariant::Rxl;
        let mut tx = LinkTx::new(config(variant));
        let mut rx = LinkRx::new(config(variant));

        let (w0, _) = protocol_wire(&mut tx, 0);
        assert!(rx.receive(&w0).accepted);

        let (_w1_dropped, _) = protocol_wire(&mut tx, 1);

        tx.queue_ack(100);
        let (w2, _) = protocol_wire(&mut tx, 2);
        let out = rx.receive(&w2);
        assert!(!out.accepted, "RXL must reject the out-of-sequence flit");
        assert!(out.rejected);
        assert_eq!(out.send_nack, Some(0));
        assert!(out.delivered.is_empty());
        assert_eq!(rx.stats().ecrc_rejections, 1);
        // Nothing was forwarded, so the expected sequence is still 1.
        assert_eq!(rx.expected_seq(), 1);
    }

    #[test]
    fn rxl_recovers_in_order_after_a_replay() {
        let variant = ProtocolVariant::Rxl;
        let mut tx = LinkTx::new(config(variant));
        let mut rx = LinkRx::new(config(variant));

        // Send 0, drop 1, send 2 → NACK(0) → replay 1, 2 → all delivered once,
        // in order.
        let (w0, _) = protocol_wire(&mut tx, 10);
        assert!(rx.receive(&w0).accepted);
        let (_w1, _) = protocol_wire(&mut tx, 11);
        let (w2, _) = protocol_wire(&mut tx, 12);
        let out = rx.receive(&w2);
        let nack = out.send_nack.expect("drop must trigger a NACK");
        tx.handle_peer_nack(nack, 100.0);

        let mut delivered_tags = vec![10u16];
        loop {
            let emission = tx.emit(101.0);
            match &emission {
                TxEmission::Protocol { .. } => {
                    let wire = tx.encode_emission(&emission).unwrap();
                    let out = rx.receive(&wire);
                    if out.accepted {
                        delivered_tags.extend(out.delivered.iter().map(|m| m.tag()));
                    }
                }
                TxEmission::Idle => break,
                _ => {}
            }
        }
        assert_eq!(delivered_tags, vec![10, 11, 12]);
        assert_eq!(rx.expected_seq(), 3);
    }

    #[test]
    fn corrupted_flit_is_rejected_and_nacked_once() {
        let variant = ProtocolVariant::Rxl;
        let mut tx = LinkTx::new(config(variant));
        let mut rx = LinkRx::new(config(variant));
        let (w0, _) = protocol_wire(&mut tx, 0);
        assert!(rx.receive(&w0).accepted);

        let (w1, _) = protocol_wire(&mut tx, 1);
        let mut corrupted = *w1;
        // Massive corruption that overwhelms the FEC (same-way equal flips).
        corrupted[0] ^= 0x55;
        corrupted[3] ^= 0x55;
        let out = rx.receive(&corrupted);
        assert!(out.rejected);
        assert_eq!(out.send_nack, Some(0));
        // A second bad flit while awaiting replay does not NACK again.
        let (w2, _) = protocol_wire(&mut tx, 2);
        let out2 = rx.receive(&w2);
        assert!(out2.rejected);
        assert_eq!(out2.send_nack, None);
        assert_eq!(rx.stats().nacks_sent, 1);
        assert_eq!(rx.stats().flits_discarded_in_replay, 1);
    }

    #[test]
    fn control_flits_are_consumed_not_forwarded() {
        for variant in [ProtocolVariant::CxlPiggyback, ProtocolVariant::Rxl] {
            let mut tx = LinkTx::new(config(variant));
            let mut rx = LinkRx::new(config(variant));
            tx.queue_nack(5);
            let emission = tx.emit(0.0);
            let nack_wire = match &emission {
                TxEmission::Nack { .. } => tx.encode_emission(&emission).unwrap(),
                other => panic!("expected NACK, got {other:?}"),
            };
            let out = rx.receive(&nack_wire);
            assert!(out.accepted);
            assert_eq!(out.peer_nack, Some(5));
            assert!(out.delivered.is_empty());

            tx.queue_ack(9);
            let emission = tx.emit(1.0);
            let ack_wire = match &emission {
                TxEmission::StandaloneAck { .. } => tx.encode_emission(&emission).unwrap(),
                other => panic!("expected standalone ACK, got {other:?}"),
            };
            let out = rx.receive(&ack_wire);
            assert!(out.accepted);
            assert_eq!(out.peer_ack, Some(9));
            // Control flits never advance the protocol sequence.
            assert_eq!(rx.expected_seq(), 0);
        }
    }

    #[test]
    fn acks_are_scheduled_at_the_coalescing_level() {
        let mut cfg = config(ProtocolVariant::Rxl);
        cfg.ack_coalescing = 3;
        let mut tx = LinkTx::new(cfg);
        let mut rx = LinkRx::new(cfg);
        let mut acks = Vec::new();
        for tag in 0..9u16 {
            let (wire, _) = protocol_wire(&mut tx, tag);
            let out = rx.receive(&wire);
            if let Some(a) = out.send_ack {
                acks.push(a);
            }
        }
        assert_eq!(acks, vec![2, 5, 8]);
    }

    #[test]
    fn cxl_idle_flits_are_accepted_without_side_effects() {
        let mut rx = LinkRx::new(config(ProtocolVariant::CxlPiggyback));
        let codec = CxlFlitCodec::new();
        let wire = codec.encode(&Flit256::idle());
        let out = rx.receive(&wire);
        assert!(out.accepted);
        assert!(out.delivered.is_empty());
        assert_eq!(rx.expected_seq(), 0);
    }
}
