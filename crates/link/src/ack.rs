//! Acknowledgement scheduling: coalescing and piggybacking.
//!
//! Section 2.4.2 / 7.2.2 of the paper: acknowledgements can be coalesced
//! (one cumulative ACK per `N` accepted flits) and either piggybacked on
//! protocol flits travelling in the reverse direction or sent as standalone
//! ACK flits. The coalescing level determines both the fraction of flits that
//! hide their own sequence number in baseline CXL (`p_coalescing`) and the
//! bandwidth cost of the standalone-ACK alternative.

/// How acknowledgements reach the peer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AckPolicy {
    /// Attach the pending ACK to the next outgoing protocol flit.
    Piggyback,
    /// Emit a dedicated ACK flit for every pending acknowledgement.
    Standalone,
}

/// Tracks accepted flits and decides when an acknowledgement is due.
#[derive(Clone, Debug)]
pub struct AckScheduler {
    policy: AckPolicy,
    coalescing: u32,
    accepted_since_ack: u32,
    /// Highest accepted sequence number not yet acknowledged.
    pending_ack: Option<u16>,
}

impl AckScheduler {
    /// Creates a scheduler acknowledging once every `coalescing` flits.
    pub fn new(policy: AckPolicy, coalescing: u32) -> Self {
        assert!(coalescing >= 1, "coalescing level must be at least 1");
        AckScheduler {
            policy,
            coalescing,
            accepted_since_ack: 0,
            pending_ack: None,
        }
    }

    /// The acknowledgement policy.
    pub fn policy(&self) -> AckPolicy {
        self.policy
    }

    /// The coalescing level.
    pub fn coalescing(&self) -> u32 {
        self.coalescing
    }

    /// Records that the receive side accepted the flit with sequence `seq`.
    pub fn record_accepted(&mut self, seq: u16) {
        self.pending_ack = Some(seq);
        self.accepted_since_ack += 1;
    }

    /// `true` if enough flits have accumulated that an ACK should be emitted.
    pub fn ack_due(&self) -> bool {
        self.pending_ack.is_some() && self.accepted_since_ack >= self.coalescing
    }

    /// The cumulative acknowledgement that *would* be sent right now.
    pub fn pending(&self) -> Option<u16> {
        self.pending_ack
    }

    /// Takes the due acknowledgement, resetting the coalescing counter.
    /// Returns `None` if no ACK is due yet.
    pub fn take_due_ack(&mut self) -> Option<u16> {
        if !self.ack_due() {
            return None;
        }
        self.accepted_since_ack = 0;
        self.pending_ack.take()
    }

    /// Takes whatever acknowledgement is pending regardless of coalescing
    /// (used when flushing, e.g. before an idle period).
    pub fn flush(&mut self) -> Option<u16> {
        self.accepted_since_ack = 0;
        self.pending_ack.take()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coalescing_counts_accepted_flits() {
        let mut s = AckScheduler::new(AckPolicy::Piggyback, 3);
        assert!(!s.ack_due());
        s.record_accepted(0);
        s.record_accepted(1);
        assert!(!s.ack_due());
        assert_eq!(s.take_due_ack(), None);
        s.record_accepted(2);
        assert!(s.ack_due());
        assert_eq!(s.take_due_ack(), Some(2));
        assert!(!s.ack_due());
        assert_eq!(s.pending(), None);
    }

    #[test]
    fn ack_is_cumulative_to_the_latest_sequence() {
        let mut s = AckScheduler::new(AckPolicy::Standalone, 2);
        s.record_accepted(10);
        s.record_accepted(11);
        assert_eq!(s.take_due_ack(), Some(11));
    }

    #[test]
    fn flush_returns_partial_acknowledgements() {
        let mut s = AckScheduler::new(AckPolicy::Piggyback, 10);
        s.record_accepted(7);
        assert!(!s.ack_due());
        assert_eq!(s.flush(), Some(7));
        assert_eq!(s.flush(), None);
    }

    #[test]
    fn coalescing_of_one_acks_every_flit() {
        let mut s = AckScheduler::new(AckPolicy::Standalone, 1);
        s.record_accepted(5);
        assert!(s.ack_due());
        assert_eq!(s.take_due_ack(), Some(5));
        s.record_accepted(6);
        assert_eq!(s.take_due_ack(), Some(6));
    }

    #[test]
    fn accessors() {
        let s = AckScheduler::new(AckPolicy::Piggyback, 4);
        assert_eq!(s.policy(), AckPolicy::Piggyback);
        assert_eq!(s.coalescing(), 4);
    }

    #[test]
    #[should_panic]
    fn zero_coalescing_is_rejected() {
        let _ = AckScheduler::new(AckPolicy::Piggyback, 0);
    }
}
