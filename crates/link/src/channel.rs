//! Bit-error channel models.
//!
//! The paper's reliability analysis assumes independent bit errors at a
//! configurable BER (10⁻⁶ for CXL 3.0), optionally extended with DFE error
//! propagation that turns a first symbol error into a short burst
//! (Section 2.2). [`ChannelErrorModel`] corrupts wire-level byte buffers
//! accordingly; it is the only place physical-layer behaviour enters the
//! simulation, which is what makes the laptop-scale reproduction of the
//! paper's hardware testbed sound (see DESIGN.md, substitution table).

use rand::{Rng, RngCore};

/// Highest effective BER any scaling helper will produce: the asserted
/// invariant everywhere in this workspace is `ber ∈ [0, 1)`, so scaling
/// saturates just below 1 instead of crossing it.
pub const MAX_BER: f64 = 0.999_999;

/// Clamps a (possibly scaled) bit-error rate into the valid `[0, MAX_BER]`
/// range. Negative and NaN inputs clamp to `0.0` (an ideal channel), values
/// at or above 1 clamp to [`MAX_BER`].
pub fn clamp_ber(ber: f64) -> f64 {
    if ber.is_nan() || ber <= 0.0 {
        0.0
    } else {
        ber.min(MAX_BER)
    }
}

/// A wire-corruption process a simulated link traversal runs each flit
/// through.
///
/// [`ChannelErrorModel`] is the stationary implementation the paper's
/// analysis assumes; time-varying implementations (bursty Gilbert–Elliott
/// states, piecewise BER schedules, flapping links — see the `rxl-chaos`
/// crate) model the non-stationary regimes real fabrics fail in. The fabric
/// engine keeps the stationary model on a monomorphised zero-cost path and
/// dispatches through `dyn Channel` only for links a scenario has overridden.
///
/// # RNG-draw-order invariant
///
/// The fabric engine owns a **single** RNG per trial and visits links in a
/// fixed order, drawing *only when a flit is actually present* (see the
/// `FabricSim` type docs in `rxl-fabric`). Every `Channel` implementation
/// must preserve that contract from the inside:
///
/// * all randomness must come from the `rng` argument of [`Channel::corrupt`],
///   and only during that call — no internal RNGs, no draws in constructors;
/// * the *number* of draws must be a deterministic function of the channel's
///   own state, `now_ns`, and the buffer contents — never of global state or
///   wall-clock time;
/// * a decision whose outcome is deterministic must not consume a draw: a
///   zero-probability state transition or a zero-BER segment must draw
///   nothing, exactly as [`ChannelErrorModel::apply`] draws nothing at
///   BER 0. This is what makes an all-good schedule *bit-identical* to
///   [`ChannelErrorModel::ideal`] — same bytes out **and** same RNG stream
///   afterwards — which the golden-digest regression relies on.
pub trait Channel {
    /// Corrupts `data` in place for one traversal at simulated time
    /// `now_ns`, drawing any randomness from `rng`. Returns the number of
    /// bits flipped.
    fn corrupt(&mut self, data: &mut [u8], now_ns: f64, rng: &mut dyn RngCore) -> usize;
}

impl Channel for ChannelErrorModel {
    fn corrupt(&mut self, data: &mut [u8], _now_ns: f64, rng: &mut dyn RngCore) -> usize {
        self.apply(data, rng)
    }
}

/// DFE-style burst extension: once a bit error occurs, each following bit is
/// also flipped with probability `continue_prob`, producing geometric bursts.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BurstModel {
    /// Probability that an error burst continues into the next bit.
    pub continue_prob: f64,
}

impl BurstModel {
    /// A moderate DFE propagation model (mean burst length 1 / (1 - p) ≈ 2).
    pub fn dfe_default() -> Self {
        BurstModel { continue_prob: 0.5 }
    }
}

/// An additive bit-error channel.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ChannelErrorModel {
    /// Probability that any given transmitted bit starts an error event.
    pub ber: f64,
    /// Optional burst extension applied after each initial bit error.
    pub burst: Option<BurstModel>,
}

impl ChannelErrorModel {
    /// A perfect channel (no errors).
    pub fn ideal() -> Self {
        ChannelErrorModel {
            ber: 0.0,
            burst: None,
        }
    }

    /// A random-error channel with the given BER and no burst extension.
    pub fn random(ber: f64) -> Self {
        assert!((0.0..1.0).contains(&ber), "BER must be in [0, 1)");
        ChannelErrorModel { ber, burst: None }
    }

    /// The CXL 3.0 operating point: BER 10⁻⁶ with DFE burst propagation.
    pub fn cxl3() -> Self {
        ChannelErrorModel {
            ber: 1e-6,
            burst: Some(BurstModel::dfe_default()),
        }
    }

    /// Same error statistics but with the BER scaled by `factor`; used to
    /// accelerate Monte-Carlo experiments (and by `rxl-chaos` BER storms)
    /// while keeping the burst shape. The result is clamped into the
    /// asserted `[0, 1)` range via [`clamp_ber`], so arbitrarily large
    /// acceleration factors saturate at [`MAX_BER`] instead of producing an
    /// invalid probability (and non-finite or negative factors clamp to an
    /// ideal channel rather than an invalid one).
    pub fn scaled(&self, factor: f64) -> Self {
        ChannelErrorModel {
            ber: clamp_ber(self.ber * factor),
            burst: self.burst,
        }
    }

    /// Corrupts `data` in place; returns the number of bits flipped.
    ///
    /// Error *starts* are sampled with geometric gap sampling so the cost is
    /// proportional to the number of errors, not the number of bits — at
    /// BER 10⁻⁶ and 2048-bit flits the vast majority of flits are untouched.
    pub fn apply<R: Rng + ?Sized>(&self, data: &mut [u8], rng: &mut R) -> usize {
        if self.ber <= 0.0 || data.is_empty() {
            return 0;
        }
        let total_bits = data.len() * 8;
        let mut flipped = 0usize;
        let mut pos = 0usize;
        loop {
            // Geometric gap to the next error start.
            let gap = sample_geometric(self.ber, rng);
            pos = match pos.checked_add(gap) {
                Some(p) => p,
                None => break,
            };
            if pos >= total_bits {
                break;
            }
            // Flip the starting bit, then optionally extend the burst.
            data[pos / 8] ^= 1 << (pos % 8);
            flipped += 1;
            if let Some(burst) = self.burst {
                let mut next = pos + 1;
                while next < total_bits && rng.random_bool(burst.continue_prob) {
                    data[next / 8] ^= 1 << (next % 8);
                    flipped += 1;
                    next += 1;
                }
                pos = next;
            } else {
                pos += 1;
            }
        }
        flipped
    }

    /// Probability that a buffer of `bits` transmitted bits experiences at
    /// least one error event (ignores burst extension; matches Eqn (1) of the
    /// paper for error-start statistics).
    pub fn unit_error_probability(&self, bits: usize) -> f64 {
        1.0 - (1.0 - self.ber).powi(bits as i32)
    }
}

/// Samples the number of error-free bits before the next error
/// (geometric distribution with success probability `p`).
fn sample_geometric<R: Rng + ?Sized>(p: f64, rng: &mut R) -> usize {
    debug_assert!(p > 0.0);
    let u: f64 = rng.random::<f64>().max(f64::MIN_POSITIVE);
    if p >= 1.0 {
        return 0;
    }
    // floor(ln(U) / ln(1 - p)) is the standard inverse-CDF sample.
    let g = (u.ln() / (1.0 - p).ln()).floor();
    if g < 0.0 {
        0
    } else if g > usize::MAX as f64 {
        usize::MAX
    } else {
        g as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn ideal_channel_never_corrupts() {
        let mut rng = StdRng::seed_from_u64(1);
        let ch = ChannelErrorModel::ideal();
        let mut data = vec![0xAB; 256];
        let orig = data.clone();
        assert_eq!(ch.apply(&mut data, &mut rng), 0);
        assert_eq!(data, orig);
    }

    #[test]
    fn high_ber_corrupts_roughly_the_expected_number_of_bits() {
        let mut rng = StdRng::seed_from_u64(2);
        let ch = ChannelErrorModel::random(0.01);
        let mut total = 0usize;
        let trials = 200;
        for _ in 0..trials {
            let mut data = vec![0u8; 256];
            total += ch.apply(&mut data, &mut rng);
        }
        let expected = 0.01 * 2048.0 * trials as f64;
        let measured = total as f64;
        assert!(
            (measured - expected).abs() < expected * 0.2,
            "measured {measured}, expected ≈ {expected}"
        );
    }

    #[test]
    fn flip_count_matches_popcount_difference() {
        let mut rng = StdRng::seed_from_u64(3);
        let ch = ChannelErrorModel::random(0.005);
        let mut data = vec![0u8; 512];
        let flipped = ch.apply(&mut data, &mut rng);
        let ones: usize = data.iter().map(|b| b.count_ones() as usize).sum();
        assert_eq!(flipped, ones);
    }

    #[test]
    fn burst_model_produces_longer_bursts() {
        let mut rng = StdRng::seed_from_u64(4);
        let bursty = ChannelErrorModel {
            ber: 0.002,
            burst: Some(BurstModel { continue_prob: 0.8 }),
        };
        let plain = ChannelErrorModel::random(0.002);
        let mut bursty_bits = 0;
        let mut plain_bits = 0;
        for _ in 0..300 {
            let mut a = vec![0u8; 256];
            let mut b = vec![0u8; 256];
            bursty_bits += bursty.apply(&mut a, &mut rng);
            plain_bits += plain.apply(&mut b, &mut rng);
        }
        assert!(
            bursty_bits > plain_bits * 2,
            "burst extension should multiply flipped bits: {bursty_bits} vs {plain_bits}"
        );
    }

    #[test]
    fn unit_error_probability_matches_the_paper_eqn_1() {
        // FER = 1 − (1 − BER)^2048 ≈ 2.0e-3 at BER 1e-6.
        let ch = ChannelErrorModel::random(1e-6);
        let fer = ch.unit_error_probability(2048);
        assert!((fer - 2.046e-3).abs() < 5e-5, "fer = {fer}");
    }

    #[test]
    fn scaled_keeps_burst_configuration() {
        let base = ChannelErrorModel::cxl3();
        let fast = base.scaled(1000.0);
        assert!((fast.ber - 1e-3).abs() < 1e-12);
        assert_eq!(fast.burst, base.burst);
        // Scaling cannot exceed probability 1.
        assert!(base.scaled(1e9).ber < 1.0);
    }

    #[test]
    #[should_panic]
    fn invalid_ber_is_rejected() {
        let _ = ChannelErrorModel::random(1.5);
    }

    #[test]
    fn scaling_clamps_into_the_valid_ber_range() {
        let base = ChannelErrorModel::cxl3();
        // Any scaled result must stay constructible via the asserting
        // constructor, i.e. inside [0, 1).
        for factor in [0.0, 1.0, 1e6, 1e9, 1e30, f64::INFINITY] {
            let scaled = base.scaled(factor);
            assert!(
                (0.0..1.0).contains(&scaled.ber),
                "factor {factor}: ber {} escaped [0, 1)",
                scaled.ber
            );
            let _ = ChannelErrorModel::random(scaled.ber);
        }
        assert_eq!(base.scaled(f64::INFINITY).ber, MAX_BER);
        // Degenerate factors clamp to an ideal channel, not a negative or
        // NaN probability.
        assert_eq!(base.scaled(-5.0).ber, 0.0);
        assert_eq!(base.scaled(f64::NAN).ber, 0.0);
        assert_eq!(clamp_ber(2.0), MAX_BER);
        assert_eq!(clamp_ber(0.25), 0.25);
    }

    #[test]
    fn channel_trait_matches_apply_for_the_stationary_model() {
        let mut a = StdRng::seed_from_u64(9);
        let mut b = StdRng::seed_from_u64(9);
        let model = ChannelErrorModel::random(0.01);
        let mut dynamic = model;
        let mut data_a = vec![0u8; 128];
        let mut data_b = vec![0u8; 128];
        let flipped_a = model.apply(&mut data_a, &mut a);
        let flipped_b = Channel::corrupt(&mut dynamic, &mut data_b, 123.0, &mut b);
        assert_eq!(flipped_a, flipped_b);
        assert_eq!(data_a, data_b);
        // Same draws consumed: the streams stay in lockstep afterwards.
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
