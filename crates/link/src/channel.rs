//! Bit-error channel models.
//!
//! The paper's reliability analysis assumes independent bit errors at a
//! configurable BER (10⁻⁶ for CXL 3.0), optionally extended with DFE error
//! propagation that turns a first symbol error into a short burst
//! (Section 2.2). [`ChannelErrorModel`] corrupts wire-level byte buffers
//! accordingly; it is the only place physical-layer behaviour enters the
//! simulation, which is what makes the laptop-scale reproduction of the
//! paper's hardware testbed sound (see DESIGN.md, substitution table).
//!
//! # Event-jump sampling
//!
//! At realistic BERs almost every flit traversal is error-free, so paying
//! one RNG draw per traversal just to conclude "no error" dominates quiet
//! links. [`Channel::next_error_slot`] inverts the loop: the channel samples
//! the *traversal index of its next error event* directly (a geometric /
//! exponential jump), and the engine-side [`EventCursor`] caches that
//! prediction so traversals strictly before it cost **zero draws and zero
//! `corrupt` calls**. When the predicted traversal arrives,
//! [`Channel::corrupt_at_event`] applies corruption *conditioned on at least
//! one error* (a truncated-geometric first bit), which keeps the per-dirty-
//! flit statistics identical to the per-traversal Bernoulli process the jump
//! replaced.

use rand::{Rng, RngCore};

/// Highest effective BER any scaling helper will produce: the asserted
/// invariant everywhere in this workspace is `ber ∈ [0, 1)`, so scaling
/// saturates just below 1 instead of crossing it.
pub const MAX_BER: f64 = 0.999_999;

/// Clamps a (possibly scaled) bit-error rate into the valid `[0, MAX_BER]`
/// range. Negative and NaN inputs clamp to `0.0` (an ideal channel), values
/// at or above 1 clamp to [`MAX_BER`].
pub fn clamp_ber(ber: f64) -> f64 {
    if ber.is_nan() || ber <= 0.0 {
        0.0
    } else {
        ber.min(MAX_BER)
    }
}

/// A channel's forecast of its next error event, returned by
/// [`Channel::next_error_slot`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ErrorPrediction {
    /// Absolute traversal index (on the caller's `now_slot` clock) of the
    /// next traversal that experiences at least one error. `u64::MAX` means
    /// "never" — the channel cannot err under its current parameters.
    pub slot: u64,
    /// Simulation time at which this prediction stops being valid and must
    /// be discarded and resampled — [`f64::INFINITY`] for stationary
    /// channels, the next piecewise boundary for time-varying ones.
    /// Discard-and-resample is distribution-exact because the underlying
    /// per-traversal error process is memoryless.
    pub expires_ns: f64,
}

impl ErrorPrediction {
    /// A prediction that never fires (and never expires).
    pub fn never() -> Self {
        ErrorPrediction {
            slot: u64::MAX,
            expires_ns: f64::INFINITY,
        }
    }

    /// A permanently valid prediction for traversal `slot`.
    pub fn at(slot: u64) -> Self {
        ErrorPrediction {
            slot,
            expires_ns: f64::INFINITY,
        }
    }

    /// A prediction for traversal `slot` that must be resampled once
    /// simulation time reaches `expires_ns`.
    pub fn until(slot: u64, expires_ns: f64) -> Self {
        ErrorPrediction { slot, expires_ns }
    }
}

/// A wire-corruption process a simulated link traversal runs each flit
/// through.
///
/// [`ChannelErrorModel`] is the stationary implementation the paper's
/// analysis assumes; time-varying implementations (bursty Gilbert–Elliott
/// states, piecewise BER schedules, flapping links — see the `rxl-chaos`
/// crate) model the non-stationary regimes real fabrics fail in. The fabric
/// engine keeps the stationary model on a monomorphised zero-cost path and
/// dispatches through `dyn Channel` only for links a scenario has overridden.
///
/// # RNG-draw-order invariant (event-jump shape)
///
/// The fabric engine owns a **single** RNG per trial and visits links in a
/// fixed order (see the `FabricSim` type docs in `rxl-fabric`). Since the
/// skip-ahead rework, the engine does *not* call into the channel on every
/// traversal: it keeps one [`EventCursor`] per link, asks the channel for
/// its [`Channel::next_error_slot`] prediction, and touches the RNG again
/// only at the predicted error traversal (or when a prediction expires at a
/// piecewise boundary). Every implementation must uphold:
///
/// * all randomness comes from the `rng` argument of the trait's methods,
///   and only during those calls — no internal RNGs, no draws in
///   constructors;
/// * the *number* of draws is a deterministic function of the channel's own
///   state and the call's arguments — never of global state or wall-clock
///   time;
/// * a decision whose outcome is deterministic must not consume a draw: a
///   channel that cannot err under its current parameters (zero BER, a
///   pinned Gilbert–Elliott state, an all-ideal schedule) returns
///   [`ErrorPrediction::never`] **without drawing**, exactly as
///   [`ChannelErrorModel::apply`] draws nothing at BER 0. This keeps every
///   ideal-channel configuration *bit-identical* to
///   [`ChannelErrorModel::ideal`] — same bytes out **and** same RNG stream
///   afterwards — which the golden-digest regression relies on.
///
/// Predictions are sampled lazily per link in the engine's fixed link-visit
/// order, so trials remain byte-for-byte reproducible per seed and
/// independent of worker-thread count; the contract's *shape* (draws at
/// event-sampling points rather than one per traversal) was re-pinned by
/// the golden digest when skip-ahead landed — see
/// `tests/fabric_golden_digest.rs`.
pub trait Channel {
    /// Corrupts `data` in place for one traversal at simulated time
    /// `now_ns`, drawing any randomness from `rng`. Returns the number of
    /// bits flipped.
    ///
    /// This is the legacy per-traversal entry point: implementations decide
    /// *whether* an error occurs as well as where. Skip-ahead callers use
    /// [`Self::next_error_slot`] + [`Self::corrupt_at_event`] instead; this
    /// method remains for direct per-flit use (the single-path `rxl-sim`
    /// simulator) and as the fallback the default `corrupt_at_event`
    /// delegates to.
    fn corrupt(&mut self, data: &mut [u8], now_ns: f64, rng: &mut dyn RngCore) -> usize;

    /// Samples the traversal index of the channel's next error event, given
    /// that traversal `now_slot` (at simulated time `now_ns`, carrying
    /// `bits` bits) is about to happen. `prediction.slot == now_slot` means
    /// "this very traversal errs"; `u64::MAX` means the channel cannot err.
    ///
    /// The default implementation predicts an event at every traversal
    /// without drawing, which makes [`EventCursor::advance`] call
    /// [`Self::corrupt_at_event`] (and thus, by *its* default,
    /// [`Self::corrupt`]) once per traversal — exactly the legacy
    /// per-traversal behaviour, so third-party implementations keep working
    /// unchanged under a skip-ahead engine.
    fn next_error_slot(
        &mut self,
        now_slot: u64,
        _now_ns: f64,
        _bits: u64,
        _rng: &mut dyn RngCore,
    ) -> ErrorPrediction {
        ErrorPrediction::at(now_slot)
    }

    /// Corrupts `data` in place for a traversal [`Self::next_error_slot`]
    /// predicted as an error event. Implementations that sample real event
    /// jumps must condition on "at least one error" here (see
    /// [`ChannelErrorModel::apply_conditioned`]); the default delegates to
    /// the unconditional [`Self::corrupt`], matching the default
    /// `next_error_slot`'s every-traversal prediction.
    fn corrupt_at_event(&mut self, data: &mut [u8], now_ns: f64, rng: &mut dyn RngCore) -> usize {
        self.corrupt(data, now_ns, rng)
    }
}

impl Channel for ChannelErrorModel {
    fn corrupt(&mut self, data: &mut [u8], _now_ns: f64, rng: &mut dyn RngCore) -> usize {
        self.apply(data, rng)
    }

    fn next_error_slot(
        &mut self,
        now_slot: u64,
        _now_ns: f64,
        bits: u64,
        rng: &mut dyn RngCore,
    ) -> ErrorPrediction {
        let p_flit = self.unit_error_probability(bits as usize);
        if p_flit <= 0.0 {
            return ErrorPrediction::never();
        }
        ErrorPrediction::at(now_slot.saturating_add(geometric_failures(p_flit, rng)))
    }

    fn corrupt_at_event(&mut self, data: &mut [u8], _now_ns: f64, rng: &mut dyn RngCore) -> usize {
        self.apply_conditioned(data, rng)
    }
}

/// DFE-style burst extension: once a bit error occurs, each following bit is
/// also flipped with probability `continue_prob`, producing geometric bursts.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BurstModel {
    /// Probability that an error burst continues into the next bit.
    pub continue_prob: f64,
}

impl BurstModel {
    /// A moderate DFE propagation model (mean burst length 1 / (1 - p) ≈ 2).
    pub fn dfe_default() -> Self {
        BurstModel { continue_prob: 0.5 }
    }
}

/// An additive bit-error channel.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ChannelErrorModel {
    /// Probability that any given transmitted bit starts an error event.
    pub ber: f64,
    /// Optional burst extension applied after each initial bit error.
    pub burst: Option<BurstModel>,
}

impl ChannelErrorModel {
    /// A perfect channel (no errors).
    pub fn ideal() -> Self {
        ChannelErrorModel {
            ber: 0.0,
            burst: None,
        }
    }

    /// A random-error channel with the given BER and no burst extension.
    pub fn random(ber: f64) -> Self {
        assert!((0.0..1.0).contains(&ber), "BER must be in [0, 1)");
        ChannelErrorModel { ber, burst: None }
    }

    /// The CXL 3.0 operating point: BER 10⁻⁶ with DFE burst propagation.
    pub fn cxl3() -> Self {
        ChannelErrorModel {
            ber: 1e-6,
            burst: Some(BurstModel::dfe_default()),
        }
    }

    /// Same error statistics but with the BER scaled by `factor`; used to
    /// accelerate Monte-Carlo experiments (and by `rxl-chaos` BER storms)
    /// while keeping the burst shape. The result is clamped into the
    /// asserted `[0, 1)` range via [`clamp_ber`], so arbitrarily large
    /// acceleration factors saturate at [`MAX_BER`] instead of producing an
    /// invalid probability (and non-finite or negative factors clamp to an
    /// ideal channel rather than an invalid one).
    pub fn scaled(&self, factor: f64) -> Self {
        ChannelErrorModel {
            ber: clamp_ber(self.ber * factor),
            burst: self.burst,
        }
    }

    /// Corrupts `data` in place; returns the number of bits flipped.
    ///
    /// Error *starts* are sampled with geometric gap sampling so the cost is
    /// proportional to the number of errors, not the number of bits — at
    /// BER 10⁻⁶ and 2048-bit flits the vast majority of flits are untouched.
    pub fn apply<R: Rng + ?Sized>(&self, data: &mut [u8], rng: &mut R) -> usize {
        if self.ber <= 0.0 || data.is_empty() {
            return 0;
        }
        let total_bits = (data.len() * 8) as u64;
        // Geometric gap to the first error start; usually past the buffer.
        let first = geometric_failures(self.ber, rng);
        if first >= total_bits {
            return 0;
        }
        self.corrupt_from(data, first, rng)
    }

    /// Corrupts `data` in place *conditioned on at least one error event*:
    /// the first error bit follows the truncated geometric distribution
    /// `P(first = j) = (1 − ber)ʲ · ber / p_unit` over `j < bits`, then
    /// burst extension and further (unconditional) geometric error starts
    /// proceed exactly as in [`Self::apply`]. Always flips at least one bit.
    ///
    /// This is the [`Channel::corrupt_at_event`] half of event-jump
    /// sampling: the event jump already decided *that* this traversal errs
    /// (with probability `p_unit` per traversal), so sampling the within-
    /// flit pattern from the conditional distribution reproduces the
    /// per-traversal statistics of [`Self::apply`] without re-rolling the
    /// "does anything happen" Bernoulli.
    pub fn apply_conditioned<R: Rng + ?Sized>(&self, data: &mut [u8], rng: &mut R) -> usize {
        if self.ber <= 0.0 || data.is_empty() {
            return 0;
        }
        let total_bits = (data.len() * 8) as u64;
        let p_unit = self.unit_error_probability(data.len() * 8);
        // Inverse-CDF sample of the truncated geometric: smallest j with
        // 1 − (1−ber)^(j+1) > u·p_unit. The min() guards the fp edge where
        // rounding lands exactly on total_bits.
        let u: f64 = rng.random::<f64>();
        let j = (f64::ln_1p(-u * p_unit) / f64::ln_1p(-self.ber)).floor();
        let first = if j.is_finite() && j > 0.0 {
            (j as u64).min(total_bits - 1)
        } else {
            0
        };
        self.corrupt_from(data, first, rng)
    }

    /// The shared tail of [`Self::apply`] and [`Self::apply_conditioned`]:
    /// flips `first_bit` (which must be in range), extends its burst, and
    /// continues with unconditional geometric error starts to the end of the
    /// buffer. The draw sequence from `first_bit` on is identical between
    /// the two entry points, so conditioning only changes how the first bit
    /// was chosen.
    fn corrupt_from<R: Rng + ?Sized>(&self, data: &mut [u8], first_bit: u64, rng: &mut R) -> usize {
        let total_bits = (data.len() * 8) as u64;
        debug_assert!(first_bit < total_bits);
        let mut flipped = 0usize;
        let mut pos = first_bit;
        loop {
            // Flip the starting bit, then optionally extend the burst.
            data[(pos / 8) as usize] ^= 1 << (pos % 8);
            flipped += 1;
            if let Some(burst) = self.burst {
                let mut next = pos + 1;
                while next < total_bits && rng.random_bool(burst.continue_prob) {
                    data[(next / 8) as usize] ^= 1 << (next % 8);
                    flipped += 1;
                    next += 1;
                }
                pos = next;
            } else {
                pos += 1;
            }
            // Geometric gap to the next error start.
            let gap = geometric_failures(self.ber, rng);
            pos = match pos.checked_add(gap) {
                Some(p) => p,
                None => break,
            };
            if pos >= total_bits {
                break;
            }
        }
        flipped
    }

    /// Probability that a buffer of `bits` transmitted bits experiences at
    /// least one error event (ignores burst extension; matches Eqn (1) of the
    /// paper for error-start statistics).
    ///
    /// Computed as `−expm1(bits · ln1p(−ber))`, which is exact for any
    /// `bits` that fits in an `f64` mantissa product — the naive
    /// `1 − (1 − ber)^bits` form loses all precision at small BERs and the
    /// earlier `powi(bits as i32)` truncated (and could wrap) bit counts
    /// beyond `i32::MAX`.
    pub fn unit_error_probability(&self, bits: usize) -> f64 {
        if self.ber <= 0.0 || bits == 0 {
            return 0.0;
        }
        if self.ber >= 1.0 {
            return 1.0;
        }
        -f64::exp_m1(bits as f64 * f64::ln_1p(-self.ber))
    }
}

/// Samples the number of independent failures (probability `p` each) before
/// the first success — the geometric jump shared by every event-jump
/// sampler in the workspace: intra-flit error-start gaps and whole-flit
/// skip-ahead here, Gilbert–Elliott state-dwell lengths in `rxl-chaos`.
///
/// Degenerate probabilities cost **no draw** (the outcome is
/// deterministic, per the [`Channel`] draw-order rules): `p ≤ 0` (or NaN)
/// returns `u64::MAX` ("never"), `p ≥ 1` returns 0 ("immediately"). For
/// `p ∈ (0, 1)` one uniform draw is inverted through the geometric CDF,
/// `floor(ln U / ln(1 − p))`, clamping to `u64::MAX` when the jump
/// overflows — at `p` near [`MAX_BER`] the result is almost surely 0, at
/// `p` near 0 the mean jump `1/p` grows without bound. Below
/// `p ≈ 2⁻⁵³` the naive `ln(1 − p)` denominator rounds to zero; the
/// sampler switches to `ln_1p(−p)` there (and only there — the naive form
/// is kept bit-for-bit where it is sound, because `ChannelErrorModel::apply`
/// results at the paper's BERs are pinned by golden values).
pub fn geometric_failures<R: Rng + ?Sized>(p: f64, rng: &mut R) -> u64 {
    if p.is_nan() || p <= 0.0 {
        return u64::MAX;
    }
    if p >= 1.0 {
        return 0;
    }
    let u: f64 = rng.random::<f64>().max(f64::MIN_POSITIVE);
    // floor(ln(U) / ln(1 - p)) is the standard inverse-CDF sample.
    let mut denom = (1.0 - p).ln();
    if denom == 0.0 {
        denom = f64::ln_1p(-p);
    }
    let g = (u.ln() / denom).floor();
    if g < 0.0 {
        0
    } else if g >= u64::MAX as f64 {
        u64::MAX
    } else {
        g as u64
    }
}

/// Engine-side skip-ahead state for one link: a traversal counter plus the
/// cached [`ErrorPrediction`] of the link's channel. The cursor is indexed
/// by *traversal count*, not wall-clock slot — an endpoint attachment link
/// can be traversed twice in one slot (injection and delivery), and
/// slot-indexing would silently halve its effective error rate.
///
/// [`EventCursor::advance`] is the only way traversals happen: it
/// pre-increments the counter, resamples the prediction when it is absent,
/// expired (`now_ns` reached `expires_ns`), or was sampled for a different
/// flit size, and calls [`Channel::corrupt_at_event`] exactly at predicted
/// traversals. Quiet traversals — the overwhelming majority at realistic
/// BERs — return without touching the RNG or the flit.
#[derive(Clone, Copy, Debug)]
pub struct EventCursor {
    /// Traversals advanced so far; the first traversal is index 1, so 0 is
    /// free to serve as the "unsampled" sentinel for `at`.
    traversals: u64,
    /// Absolute traversal index of the predicted next error; 0 = unsampled.
    at: u64,
    /// Expiry of the cached prediction (simulation nanoseconds).
    expires_ns: f64,
    /// Flit size (bits) the prediction was sampled for.
    bits: u64,
}

impl Default for EventCursor {
    fn default() -> Self {
        Self::new()
    }
}

impl EventCursor {
    /// A cursor with no traversals and no cached prediction.
    pub fn new() -> Self {
        EventCursor {
            traversals: 0,
            at: 0,
            expires_ns: f64::INFINITY,
            bits: 0,
        }
    }

    /// Discards the cached prediction (the traversal counter keeps
    /// counting). Call when the link's channel is replaced or reset: the
    /// next [`Self::advance`] resamples from the new channel.
    pub fn reset(&mut self) {
        self.at = 0;
        self.expires_ns = f64::INFINITY;
        self.bits = 0;
    }

    /// Traversals advanced so far.
    pub fn traversals(&self) -> u64 {
        self.traversals
    }

    /// Runs one traversal of `data` over `channel` at simulated time
    /// `now_ns`; returns the number of bits flipped. Traversals before the
    /// cached predicted error cost zero RNG draws and zero channel calls.
    pub fn advance<C: Channel + ?Sized>(
        &mut self,
        channel: &mut C,
        data: &mut [u8],
        now_ns: f64,
        rng: &mut dyn RngCore,
    ) -> usize {
        if self.step(channel, (data.len() * 8) as u64, now_ns, rng) {
            self.corrupt_event(channel, data, now_ns, rng)
        } else {
            0
        }
    }

    /// Advances one traversal of a `bits`-bit flit *without touching any
    /// flit bytes*: returns `true` iff this traversal is the predicted error
    /// event, performing only the prediction-(re)sampling draws `advance`
    /// would. On a hit the caller MUST follow up with exactly one
    /// [`Self::corrupt_event`] call before the next `step` — the split
    /// exists so engines that keep flits in an un-materialised "known clean"
    /// form can encode wire bytes lazily, only when a traversal actually
    /// corrupts them, while preserving `advance`'s RNG draw order exactly.
    pub fn step<C: Channel + ?Sized>(
        &mut self,
        channel: &mut C,
        bits: u64,
        now_ns: f64,
        rng: &mut dyn RngCore,
    ) -> bool {
        self.traversals += 1;
        let t = self.traversals;
        if self.at == 0 || now_ns >= self.expires_ns || bits != self.bits {
            let p = channel.next_error_slot(t, now_ns, bits, rng);
            // A slot in the past means "errs now": clamp so the sentinel
            // and the fire comparison below stay simple.
            self.at = p.slot.max(t);
            self.expires_ns = p.expires_ns;
            self.bits = bits;
        }
        t >= self.at
    }

    /// Performs the error event [`Self::step`] just predicted: corrupts
    /// `data` through the channel and samples the next event. Returns the
    /// number of bits flipped. Must be called exactly once after each
    /// `step` that returned `true`, with a `data` of the same bit length.
    pub fn corrupt_event<C: Channel + ?Sized>(
        &mut self,
        channel: &mut C,
        data: &mut [u8],
        now_ns: f64,
        rng: &mut dyn RngCore,
    ) -> usize {
        debug_assert_eq!((data.len() * 8) as u64, self.bits);
        let t = self.traversals;
        let flipped = channel.corrupt_at_event(data, now_ns, rng);
        let next = channel.next_error_slot(t.saturating_add(1), now_ns, self.bits, rng);
        self.at = next.slot.max(t.saturating_add(1));
        self.expires_ns = next.expires_ns;
        flipped
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn ideal_channel_never_corrupts() {
        let mut rng = StdRng::seed_from_u64(1);
        let ch = ChannelErrorModel::ideal();
        let mut data = vec![0xAB; 256];
        let orig = data.clone();
        assert_eq!(ch.apply(&mut data, &mut rng), 0);
        assert_eq!(data, orig);
    }

    #[test]
    fn high_ber_corrupts_roughly_the_expected_number_of_bits() {
        let mut rng = StdRng::seed_from_u64(2);
        let ch = ChannelErrorModel::random(0.01);
        let mut total = 0usize;
        let trials = 200;
        for _ in 0..trials {
            let mut data = vec![0u8; 256];
            total += ch.apply(&mut data, &mut rng);
        }
        let expected = 0.01 * 2048.0 * trials as f64;
        let measured = total as f64;
        assert!(
            (measured - expected).abs() < expected * 0.2,
            "measured {measured}, expected ≈ {expected}"
        );
    }

    #[test]
    fn flip_count_matches_popcount_difference() {
        let mut rng = StdRng::seed_from_u64(3);
        let ch = ChannelErrorModel::random(0.005);
        let mut data = vec![0u8; 512];
        let flipped = ch.apply(&mut data, &mut rng);
        let ones: usize = data.iter().map(|b| b.count_ones() as usize).sum();
        assert_eq!(flipped, ones);
    }

    #[test]
    fn burst_model_produces_longer_bursts() {
        let mut rng = StdRng::seed_from_u64(4);
        let bursty = ChannelErrorModel {
            ber: 0.002,
            burst: Some(BurstModel { continue_prob: 0.8 }),
        };
        let plain = ChannelErrorModel::random(0.002);
        let mut bursty_bits = 0;
        let mut plain_bits = 0;
        for _ in 0..300 {
            let mut a = vec![0u8; 256];
            let mut b = vec![0u8; 256];
            bursty_bits += bursty.apply(&mut a, &mut rng);
            plain_bits += plain.apply(&mut b, &mut rng);
        }
        assert!(
            bursty_bits > plain_bits * 2,
            "burst extension should multiply flipped bits: {bursty_bits} vs {plain_bits}"
        );
    }

    #[test]
    fn unit_error_probability_matches_the_paper_eqn_1() {
        // FER = 1 − (1 − BER)^2048 ≈ 2.0e-3 at BER 1e-6.
        let ch = ChannelErrorModel::random(1e-6);
        let fer = ch.unit_error_probability(2048);
        assert!((fer - 2.046e-3).abs() < 5e-5, "fer = {fer}");
    }

    #[test]
    fn unit_error_probability_survives_huge_bit_counts() {
        // 4e9 bits does not fit in an i32; the old powi(bits as i32) form
        // would have wrapped the exponent. The expm1/ln1p closed form gives
        // 1 − (1 − 1e-12)^(4e9) = 1 − exp(4e9 · ln(1 − 1e-12)) ≈ 3.992e-3.
        let ch = ChannelErrorModel::random(1e-12);
        let bits = 4_000_000_000usize;
        assert!(bits > i32::MAX as usize);
        let p = ch.unit_error_probability(bits);
        let reference = -f64::exp_m1(bits as f64 * f64::ln_1p(-1e-12));
        assert!((p - reference).abs() < 1e-15, "p = {p}");
        assert!((p - 3.992e-3).abs() < 1e-5, "p = {p}");
        // Small-bit agreement with the naive closed form stays tight.
        let small = ChannelErrorModel::random(1e-6);
        let naive = 1.0 - (1.0 - 1e-6f64).powi(2048);
        assert!((small.unit_error_probability(2048) - naive).abs() < 1e-12);
        // Degenerate inputs.
        assert_eq!(ch.unit_error_probability(0), 0.0);
        assert_eq!(ChannelErrorModel::ideal().unit_error_probability(2048), 0.0);
    }

    #[test]
    fn scaled_keeps_burst_configuration() {
        let base = ChannelErrorModel::cxl3();
        let fast = base.scaled(1000.0);
        assert!((fast.ber - 1e-3).abs() < 1e-12);
        assert_eq!(fast.burst, base.burst);
        // Scaling cannot exceed probability 1.
        assert!(base.scaled(1e9).ber < 1.0);
    }

    #[test]
    #[should_panic]
    fn invalid_ber_is_rejected() {
        let _ = ChannelErrorModel::random(1.5);
    }

    #[test]
    fn scaling_clamps_into_the_valid_ber_range() {
        let base = ChannelErrorModel::cxl3();
        // Any scaled result must stay constructible via the asserting
        // constructor, i.e. inside [0, 1).
        for factor in [0.0, 1.0, 1e6, 1e9, 1e30, f64::INFINITY] {
            let scaled = base.scaled(factor);
            assert!(
                (0.0..1.0).contains(&scaled.ber),
                "factor {factor}: ber {} escaped [0, 1)",
                scaled.ber
            );
            let _ = ChannelErrorModel::random(scaled.ber);
        }
        assert_eq!(base.scaled(f64::INFINITY).ber, MAX_BER);
        // Degenerate factors clamp to an ideal channel, not a negative or
        // NaN probability.
        assert_eq!(base.scaled(-5.0).ber, 0.0);
        assert_eq!(base.scaled(f64::NAN).ber, 0.0);
        assert_eq!(clamp_ber(2.0), MAX_BER);
        assert_eq!(clamp_ber(0.25), 0.25);
    }

    #[test]
    fn channel_trait_matches_apply_for_the_stationary_model() {
        let mut a = StdRng::seed_from_u64(9);
        let mut b = StdRng::seed_from_u64(9);
        let model = ChannelErrorModel::random(0.01);
        let mut dynamic = model;
        let mut data_a = vec![0u8; 128];
        let mut data_b = vec![0u8; 128];
        let flipped_a = model.apply(&mut data_a, &mut a);
        let flipped_b = Channel::corrupt(&mut dynamic, &mut data_b, 123.0, &mut b);
        assert_eq!(flipped_a, flipped_b);
        assert_eq!(data_a, data_b);
        // Same draws consumed: the streams stay in lockstep afterwards.
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn degenerate_probabilities_sample_without_drawing() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut twin = StdRng::seed_from_u64(11);
        assert_eq!(geometric_failures(0.0, &mut rng), u64::MAX);
        assert_eq!(geometric_failures(-1.0, &mut rng), u64::MAX);
        assert_eq!(geometric_failures(f64::NAN, &mut rng), u64::MAX);
        assert_eq!(geometric_failures(1.0, &mut rng), 0);
        assert_eq!(geometric_failures(2.0, &mut rng), 0);
        // No draw happened: the stream is still in lockstep with its twin.
        assert_eq!(rng.next_u64(), twin.next_u64());
    }

    proptest! {
        /// The shared sampler at extreme probabilities: near-zero p must
        /// produce huge (mean 1/p) but finite, non-panicking jumps; p near
        /// MAX_BER must produce (almost always) zero jumps; and every
        /// in-range p consumes exactly one draw.
        #[test]
        fn geometric_sampler_extremes(seed in 0u64..512, tiny_exp in 9i32..300, big_steps in 0u64..1_000_000) {
            let tiny = 10f64.powi(-tiny_exp);
            let p_big = MAX_BER - big_steps as f64 * 1e-12;
            let mut rng = StdRng::seed_from_u64(seed);
            let g_tiny = geometric_failures(tiny, &mut rng);
            // Mean 1/tiny ≥ 1e9; a jump below 100 has probability < 1e-7
            // per draw — rule out only the pathological zero to stay
            // deterministic across the strategy space.
            prop_assert!(g_tiny >= 1, "tiny p {tiny} jumped only {g_tiny}");
            let g_big = geometric_failures(p_big, &mut rng);
            prop_assert!(g_big <= 2, "p {p_big} jumped {g_big}");
            // Exactly one draw per in-range sample: twin stream proof.
            let mut a = StdRng::seed_from_u64(seed ^ 0xDEAD);
            let mut b = StdRng::seed_from_u64(seed ^ 0xDEAD);
            let _ = geometric_failures(tiny, &mut a);
            let _ = b.random::<f64>();
            prop_assert_eq!(a.next_u64(), b.next_u64());
        }

        /// Jump composition is exact: skipping ahead with the whole-flit
        /// probability and then conditioning within the flit yields the
        /// same mean error-start count per traversal as per-flit Bernoulli.
        #[test]
        fn conditioned_corruption_always_flips(seed in 0u64..256, ber_steps in 1u32..5000) {
            let ber = ber_steps as f64 * 1e-4;
            let ch = ChannelErrorModel::random(ber);
            let mut rng = StdRng::seed_from_u64(seed);
            let mut data = vec![0u8; 32];
            let flipped = ch.apply_conditioned(&mut data, &mut rng);
            prop_assert!(flipped >= 1, "conditioned corruption must err");
            let ones: usize = data.iter().map(|b| b.count_ones() as usize).sum();
            prop_assert_eq!(flipped, ones);
        }
    }

    #[test]
    fn conditioned_first_bit_is_truncated_geometric() {
        // With n=16 bits and high BER the truncation matters: the mean of
        // the conditional first-error position must match the closed form
        // sum_{j<n} j·q^j·p / p_unit, not the unconditional 1/p − 1.
        let ber = 0.1f64;
        let n_bits = 16usize;
        let ch = ChannelErrorModel::random(ber);
        let p_unit = ch.unit_error_probability(n_bits);
        let expected: f64 = (0..n_bits)
            .map(|j| j as f64 * (1.0 - ber).powi(j as i32) * ber / p_unit)
            .sum();
        let mut rng = StdRng::seed_from_u64(77);
        let trials = 200_000;
        let mut sum = 0.0;
        for _ in 0..trials {
            let mut data = [0u8; 2];
            ch.apply_conditioned(&mut data, &mut rng);
            let first = (0..n_bits)
                .find(|&b| data[b / 8] & (1 << (b % 8)) != 0)
                .expect("at least one flip") as f64;
            sum += first;
        }
        let mean = sum / trials as f64;
        assert!(
            (mean - expected).abs() < 0.05,
            "mean first bit {mean}, expected {expected}"
        );
    }

    #[test]
    fn event_cursor_matches_per_flit_bernoulli_statistics() {
        // Error-traversal frequency under skip-ahead must match the
        // per-traversal Bernoulli probability p_unit.
        let ch = ChannelErrorModel::random(2e-3);
        let p_unit = ch.unit_error_probability(64 * 8);
        let traversals = 100_000u64;
        let mut skip = ch;
        let mut cursor = EventCursor::new();
        let mut rng = StdRng::seed_from_u64(21);
        let mut dirty = 0u64;
        for s in 0..traversals {
            let mut data = [0u8; 64];
            if cursor.advance(&mut skip, &mut data, s as f64, &mut rng) > 0 {
                dirty += 1;
            }
        }
        let expected = p_unit * traversals as f64;
        let sigma = (traversals as f64 * p_unit * (1.0 - p_unit)).sqrt();
        assert!(
            (dirty as f64 - expected).abs() < 4.0 * sigma,
            "dirty {dirty}, expected {expected} ± {sigma}"
        );
    }

    #[test]
    fn event_cursor_is_draw_free_on_an_ideal_channel() {
        let mut ch = ChannelErrorModel::ideal();
        let mut cursor = EventCursor::new();
        let mut rng = StdRng::seed_from_u64(5);
        let mut twin = StdRng::seed_from_u64(5);
        for s in 0..10_000u64 {
            let mut data = [0xA5u8; 64];
            assert_eq!(cursor.advance(&mut ch, &mut data, s as f64, &mut rng), 0);
            assert!(data.iter().all(|&b| b == 0xA5));
        }
        // Ten thousand quiet traversals: not one draw.
        assert_eq!(rng.next_u64(), twin.next_u64());
    }

    #[test]
    fn event_cursor_runs_legacy_channels_per_traversal() {
        // A channel that only implements `corrupt` (the legacy trait
        // surface) must behave bit-identically under the cursor to calling
        // `corrupt` once per traversal.
        struct Legacy(ChannelErrorModel);
        impl Channel for Legacy {
            fn corrupt(&mut self, data: &mut [u8], _now_ns: f64, rng: &mut dyn RngCore) -> usize {
                self.0.apply(data, rng)
            }
        }
        let model = ChannelErrorModel::random(0.01);
        let mut via_cursor = Legacy(model);
        let mut cursor = EventCursor::new();
        let mut direct = Legacy(model);
        let mut a = StdRng::seed_from_u64(13);
        let mut b = StdRng::seed_from_u64(13);
        for s in 0..2_000u64 {
            let mut da = [0u8; 64];
            let mut db = [0u8; 64];
            let fa = cursor.advance(&mut via_cursor, &mut da, s as f64, &mut a);
            let fb = direct.corrupt(&mut db, s as f64, &mut b);
            assert_eq!(fa, fb, "slot {s}");
            assert_eq!(da, db, "slot {s}");
        }
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn event_cursor_reset_resamples_from_the_new_channel() {
        let mut cursor = EventCursor::new();
        let mut noisy = ChannelErrorModel::random(0.5);
        let mut rng = StdRng::seed_from_u64(3);
        let mut data = [0u8; 8];
        // Drive a few traversals on a noisy channel, then reset and swap in
        // an ideal one: no further flips, no further draws.
        for s in 0..32u64 {
            let mut d = [0u8; 8];
            let _ = cursor.advance(&mut noisy, &mut d, s as f64, &mut rng);
        }
        cursor.reset();
        let mut ideal = ChannelErrorModel::ideal();
        let mut twin = rng.clone();
        for s in 32..64u64 {
            assert_eq!(cursor.advance(&mut ideal, &mut data, s as f64, &mut rng), 0);
        }
        assert_eq!(rng.next_u64(), twin.next_u64());
        assert_eq!(cursor.traversals(), 64);
    }
}
