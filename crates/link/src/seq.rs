//! Wrap-aware arithmetic on the 10-bit flit sequence number space.
//!
//! All sequence comparisons in the link layer must tolerate wrap-around at
//! 1024. The helpers here assume the usual sliding-window invariant: the
//! distance between any two live sequence numbers is less than half the
//! sequence space.

/// Number of distinct sequence numbers (2^10).
pub const SEQ_SPACE: u16 = 1 << 10;
/// Mask selecting the valid sequence bits.
pub const SEQ_MASK: u16 = SEQ_SPACE - 1;

/// Adds a (possibly negative) offset to a sequence number, wrapping.
pub fn seq_add(seq: u16, offset: i32) -> u16 {
    let s = seq as i32 + offset;
    (s.rem_euclid(SEQ_SPACE as i32)) as u16
}

/// The next sequence number after `seq`.
pub fn seq_next(seq: u16) -> u16 {
    (seq + 1) & SEQ_MASK
}

/// Forward distance from `from` to `to` (how many increments reach `to`).
pub fn seq_distance(from: u16, to: u16) -> u16 {
    (to.wrapping_sub(from)) & SEQ_MASK
}

/// `true` if `a` is at or after `b` within a window of half the sequence
/// space (standard go-back-N comparison).
pub fn seq_ge(a: u16, b: u16) -> bool {
    seq_distance(b, a) < SEQ_SPACE / 2
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn next_wraps_at_the_top() {
        assert_eq!(seq_next(0), 1);
        assert_eq!(seq_next(1022), 1023);
        assert_eq!(seq_next(1023), 0);
    }

    #[test]
    fn add_handles_negative_offsets() {
        assert_eq!(seq_add(0, -1), 1023);
        assert_eq!(seq_add(5, -10), 1019);
        assert_eq!(seq_add(1020, 10), 6);
        assert_eq!(seq_add(7, 0), 7);
    }

    #[test]
    fn distance_is_forward_modular() {
        assert_eq!(seq_distance(0, 5), 5);
        assert_eq!(seq_distance(1020, 3), 7);
        assert_eq!(seq_distance(5, 5), 0);
        assert_eq!(seq_distance(5, 4), 1023);
    }

    #[test]
    fn ge_respects_the_window() {
        assert!(seq_ge(5, 5));
        assert!(seq_ge(6, 5));
        assert!(seq_ge(3, 1020)); // wrapped ahead
        assert!(!seq_ge(1020, 3));
        assert!(!seq_ge(5, 6));
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn distance_inverts_add(seq in 0u16..SEQ_SPACE, k in 0u16..SEQ_SPACE) {
                let later = seq_add(seq, k as i32);
                prop_assert_eq!(seq_distance(seq, later), k);
            }

            #[test]
            fn next_is_add_one(seq in 0u16..SEQ_SPACE) {
                prop_assert_eq!(seq_next(seq), seq_add(seq, 1));
            }
        }
    }
}
