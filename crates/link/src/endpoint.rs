//! A full-duplex link endpoint: one transmitter plus one receiver, with the
//! local ACK/NACK feedback paths wired together.
//!
//! The simulator (`rxl-sim`) owns two [`LinkEndpoint`]s per link (one per
//! node) and moves wire flits between them through channel error models and,
//! in switched topologies, through `rxl-switch` devices.

use rxl_flit::{Flit256, Message, WireFlit};

use crate::rx::{LinkRx, RxResult};
use crate::stats::LinkStats;
use crate::tx::{LinkTx, TxEmission};
use crate::variant::LinkConfig;

/// A paired transmitter and receiver sharing one link configuration.
pub struct LinkEndpoint {
    tx: LinkTx,
    rx: LinkRx,
}

impl LinkEndpoint {
    /// Creates an endpoint with the given configuration.
    pub fn new(config: LinkConfig) -> Self {
        LinkEndpoint {
            tx: LinkTx::new(config),
            rx: LinkRx::new(config),
        }
    }

    /// The link configuration.
    pub fn config(&self) -> &LinkConfig {
        self.tx.config()
    }

    /// Queues transaction messages for transmission to the peer.
    pub fn enqueue_messages<I: IntoIterator<Item = Message>>(&mut self, msgs: I) {
        self.tx.enqueue_messages(msgs);
    }

    /// Number of messages waiting to be flitized.
    pub fn backlog(&self) -> usize {
        self.tx.backlog()
    }

    /// `true` when the endpoint neither holds pending work nor awaits ACKs.
    pub fn is_quiescent(&self) -> bool {
        self.tx.is_quiescent()
    }

    /// Produces the next wire emission for this endpoint's transmit slot.
    ///
    /// If the transmitter has nothing to send but the receiver is sitting on
    /// a below-threshold coalesced acknowledgement, the acknowledgement is
    /// flushed (delayed-ACK behaviour) so the peer's replay buffer drains.
    pub fn emit(&mut self, now_ns: f64) -> TxEmission {
        let emission = self.tx.emit(now_ns);
        if emission.is_idle() {
            if let Some(ack) = self.rx.flush_ack() {
                self.tx.queue_ack(ack);
                return self.tx.emit(now_ns);
            }
        }
        emission
    }

    /// Processes one arriving wire flit, wiring the receiver's feedback
    /// (extracted peer ACK/NACK, generated local ACK/NACK) into the local
    /// transmitter. Returns the receive result so the caller can forward
    /// delivered messages to its transaction layer.
    pub fn receive(&mut self, wire: &WireFlit, now_ns: f64) -> RxResult {
        let result = self.rx.receive(wire);
        if let Some(ack) = result.peer_ack {
            self.tx.handle_peer_ack(ack, now_ns);
        }
        if let Some(nack) = result.peer_nack {
            self.tx.handle_peer_nack(nack, now_ns);
        }
        if let Some(ack) = result.send_ack {
            self.tx.queue_ack(ack);
        }
        if let Some(nack) = result.send_nack {
            self.tx.queue_nack(nack);
        }
        result
    }

    /// Like [`Self::receive`], but for a flit that is *known clean*: the
    /// arriving wire image is bit-identical to `encode(flit, tx_seq)`, so
    /// the FEC/CRC decode is skipped entirely (see
    /// [`LinkRx::receive_trusted`]). Feedback wiring is identical.
    pub fn receive_trusted(&mut self, flit: &Flit256, tx_seq: u16, now_ns: f64) -> RxResult {
        let result = self.rx.receive_trusted(flit, tx_seq);
        if let Some(ack) = result.peer_ack {
            self.tx.handle_peer_ack(ack, now_ns);
        }
        if let Some(nack) = result.peer_nack {
            self.tx.handle_peer_nack(nack, now_ns);
        }
        if let Some(ack) = result.send_ack {
            self.tx.queue_ack(ack);
        }
        if let Some(nack) = result.send_nack {
            self.tx.queue_nack(nack);
        }
        result
    }

    /// Materialises the wire bytes of an emission produced by
    /// [`Self::emit`] — see [`LinkTx::encode_emission`].
    pub fn encode_emission(&self, emission: &TxEmission) -> Option<WireFlit> {
        self.tx.encode_emission(emission)
    }

    /// Combined transmit + receive statistics for this endpoint.
    pub fn stats(&self) -> LinkStats {
        let mut s = *self.tx.stats();
        s.merge(self.rx.stats());
        s
    }

    /// Access to the transmit state machine.
    pub fn tx(&self) -> &LinkTx {
        &self.tx
    }

    /// Access to the receive state machine.
    pub fn rx(&self) -> &LinkRx {
        &self.rx
    }

    /// Mutable access to the transmit state machine (used by tests and by
    /// the simulator's workload injection).
    pub fn tx_mut(&mut self) -> &mut LinkTx {
        &mut self.tx
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::variant::{LinkConfig, ProtocolVariant};
    use rxl_flit::{MemOp, Message};

    /// Drives two endpoints over a lossless full-duplex link until both are
    /// quiescent, returning the messages delivered at each side.
    fn run_duplex(
        a: &mut LinkEndpoint,
        b: &mut LinkEndpoint,
        max_slots: usize,
    ) -> (Vec<Message>, Vec<Message>) {
        let mut at_a = Vec::new();
        let mut at_b = Vec::new();
        let mut now = 0.0;
        for _ in 0..max_slots {
            now += 2.0;
            let ea = a.emit(now);
            let eb = b.emit(now);
            if let Some(wire) = a.encode_emission(&ea) {
                at_b.extend(b.receive(&wire, now).delivered);
            }
            if let Some(wire) = b.encode_emission(&eb) {
                at_a.extend(a.receive(&wire, now).delivered);
            }
            if ea.is_idle() && eb.is_idle() && a.is_quiescent() && b.is_quiescent() {
                break;
            }
        }
        (at_a, at_b)
    }

    #[test]
    fn bidirectional_traffic_is_delivered_in_order() {
        for variant in [
            ProtocolVariant::CxlPiggyback,
            ProtocolVariant::CxlStandaloneAck,
            ProtocolVariant::Rxl,
        ] {
            let cfg = LinkConfig::cxl3_x16(variant);
            let mut a = LinkEndpoint::new(cfg);
            let mut b = LinkEndpoint::new(cfg);
            let downstream: Vec<Message> = (0..50)
                .map(|i| Message::request(MemOp::RdCurr, i as u64 * 64, 1, i as u16))
                .collect();
            let upstream: Vec<Message> =
                (0..30).map(|i| Message::response_ok(1, i as u16)).collect();
            a.enqueue_messages(downstream.clone());
            b.enqueue_messages(upstream.clone());

            let (at_a, at_b) = run_duplex(&mut a, &mut b, 10_000);
            assert_eq!(at_b, downstream, "{variant:?} downstream");
            assert_eq!(at_a, upstream, "{variant:?} upstream");
        }
    }

    #[test]
    fn acknowledgements_eventually_drain_the_replay_buffers() {
        let cfg = LinkConfig::cxl3_x16(ProtocolVariant::Rxl);
        let mut a = LinkEndpoint::new(cfg);
        let mut b = LinkEndpoint::new(cfg);
        a.enqueue_messages((0..100).map(|i| Message::response_ok(0, i as u16)));
        let _ = run_duplex(&mut a, &mut b, 20_000);
        assert_eq!(a.tx().in_flight(), 0, "all flits must be acknowledged");
        assert!(a.is_quiescent());
    }

    #[test]
    fn stats_are_aggregated_across_tx_and_rx() {
        let cfg = LinkConfig::cxl3_x16(ProtocolVariant::Rxl);
        let mut a = LinkEndpoint::new(cfg);
        let mut b = LinkEndpoint::new(cfg);
        a.enqueue_messages((0..10).map(|i| Message::response_ok(0, i as u16)));
        let _ = run_duplex(&mut a, &mut b, 5_000);
        assert!(a.stats().flits_sent >= 1);
        assert!(b.stats().flits_accepted >= 1);
        assert!(b.stats().acks_sent >= 1);
    }
}
