//! The transmit replay buffer.
//!
//! Every transmitted protocol flit is retained until the peer acknowledges it
//! so it can be retransmitted on a NACK (go-back-N) or on a single-flit retry
//! request. The buffer is indexed by sequence number and enforces the
//! sliding-window invariant that at most half the sequence space is in flight.

use std::collections::VecDeque;

use rxl_flit::Flit256;

use crate::seq::{seq_distance, seq_next, SEQ_SPACE};

/// One retained flit awaiting acknowledgement.
#[derive(Clone, Debug)]
struct ReplayEntry {
    seq: u16,
    flit: Flit256,
}

/// A sequence-indexed replay buffer.
#[derive(Clone, Debug)]
pub struct ReplayBuffer {
    entries: VecDeque<ReplayEntry>,
    capacity: usize,
}

impl ReplayBuffer {
    /// Creates a buffer holding at most `capacity` unacknowledged flits.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 1);
        assert!(
            capacity < (SEQ_SPACE / 2) as usize,
            "replay capacity must stay below half the sequence space"
        );
        ReplayBuffer {
            entries: VecDeque::with_capacity(capacity),
            capacity,
        }
    }

    /// Number of unacknowledged flits currently retained.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` if no flits are outstanding.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// `true` if the buffer cannot accept another flit.
    pub fn is_full(&self) -> bool {
        self.entries.len() >= self.capacity
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The sequence number of the oldest unacknowledged flit, if any.
    pub fn oldest_seq(&self) -> Option<u16> {
        self.entries.front().map(|e| e.seq)
    }

    /// Retains a newly transmitted flit. Panics if the buffer is full or the
    /// sequence number does not directly follow the previously pushed one.
    pub fn push(&mut self, seq: u16, flit: Flit256) {
        assert!(!self.is_full(), "replay buffer overflow");
        if let Some(back) = self.entries.back() {
            assert_eq!(
                seq,
                seq_next(back.seq),
                "flits must be pushed in sequence order"
            );
        }
        self.entries.push_back(ReplayEntry { seq, flit });
    }

    /// Releases every flit up to and including `ack_seq` (cumulative ACK).
    /// Returns the number of flits released. Acknowledgements for sequence
    /// numbers not currently held are ignored (stale or duplicate ACKs).
    pub fn ack_up_to(&mut self, ack_seq: u16) -> usize {
        let Some(oldest) = self.oldest_seq() else {
            return 0;
        };
        // How many entries does the cumulative ACK cover?
        let span = seq_distance(oldest, ack_seq) as usize + 1;
        if span > self.entries.len() {
            // ACK is outside the window: either stale (before oldest) or
            // bogus; ignore it.
            if seq_distance(ack_seq, oldest) < (SEQ_SPACE / 2) {
                return 0;
            }
            return 0;
        }
        for _ in 0..span {
            self.entries.pop_front();
        }
        span
    }

    /// Returns clones of all retained flits starting at `from_seq`, in order,
    /// for a go-back-N retransmission. Returns an empty vector if `from_seq`
    /// is not retained.
    pub fn replay_from(&self, from_seq: u16) -> Vec<(u16, Flit256)> {
        let Some(oldest) = self.oldest_seq() else {
            return Vec::new();
        };
        let skip = seq_distance(oldest, from_seq) as usize;
        if skip >= self.entries.len() {
            return Vec::new();
        }
        self.entries
            .iter()
            .skip(skip)
            .map(|e| (e.seq, e.flit.clone()))
            .collect()
    }

    /// Returns a clone of the single retained flit with sequence `seq`, if
    /// present (selective / single-flit retry).
    pub fn get(&self, seq: u16) -> Option<Flit256> {
        let oldest = self.oldest_seq()?;
        let idx = seq_distance(oldest, seq) as usize;
        self.entries.get(idx).and_then(|e| {
            if e.seq == seq {
                Some(e.flit.clone())
            } else {
                None
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rxl_flit::FlitHeader;

    fn flit(tag: u16) -> Flit256 {
        let mut f = Flit256::new(FlitHeader::with_seq(tag));
        f.payload[0] = tag as u8;
        f
    }

    #[test]
    fn push_and_cumulative_ack() {
        let mut buf = ReplayBuffer::new(8);
        for s in 0..5u16 {
            buf.push(s, flit(s));
        }
        assert_eq!(buf.len(), 5);
        assert_eq!(buf.oldest_seq(), Some(0));
        assert_eq!(buf.ack_up_to(2), 3);
        assert_eq!(buf.len(), 2);
        assert_eq!(buf.oldest_seq(), Some(3));
        assert_eq!(buf.ack_up_to(4), 2);
        assert!(buf.is_empty());
    }

    #[test]
    fn stale_and_out_of_window_acks_are_ignored() {
        let mut buf = ReplayBuffer::new(8);
        for s in 10..14u16 {
            buf.push(s, flit(s));
        }
        // ACK for something already released.
        assert_eq!(buf.ack_up_to(5), 0);
        assert_eq!(buf.len(), 4);
        // ACK far beyond what is held.
        assert_eq!(buf.ack_up_to(200), 0);
        assert_eq!(buf.len(), 4);
    }

    #[test]
    fn replay_from_returns_the_tail_in_order() {
        let mut buf = ReplayBuffer::new(8);
        for s in 0..6u16 {
            buf.push(s, flit(s));
        }
        let replay = buf.replay_from(3);
        assert_eq!(replay.len(), 3);
        assert_eq!(replay[0].0, 3);
        assert_eq!(replay[2].0, 5);
        assert_eq!(replay[0].1.payload[0], 3);
        assert!(buf.replay_from(9).is_empty());
        assert!(ReplayBuffer::new(4).replay_from(0).is_empty());
    }

    #[test]
    fn single_flit_lookup() {
        let mut buf = ReplayBuffer::new(8);
        for s in 100..104u16 {
            buf.push(s, flit(s));
        }
        assert_eq!(buf.get(102).unwrap().payload[0], 102);
        assert!(buf.get(99).is_none());
        assert!(buf.get(104).is_none());
    }

    #[test]
    fn wrap_around_sequences_work() {
        let mut buf = ReplayBuffer::new(8);
        for i in 0..6u16 {
            let s = (1021 + i) & crate::seq::SEQ_MASK;
            buf.push(s, flit(i));
        }
        assert_eq!(buf.oldest_seq(), Some(1021));
        // ACK across the wrap point.
        assert_eq!(buf.ack_up_to(0), 4); // releases 1021,1022,1023,0
        assert_eq!(buf.oldest_seq(), Some(1));
        let replay = buf.replay_from(1);
        assert_eq!(replay.len(), 2);
    }

    #[test]
    fn capacity_is_enforced() {
        let mut buf = ReplayBuffer::new(2);
        buf.push(0, flit(0));
        buf.push(1, flit(1));
        assert!(buf.is_full());
    }

    #[test]
    #[should_panic]
    fn overflow_panics() {
        let mut buf = ReplayBuffer::new(1);
        buf.push(0, flit(0));
        buf.push(1, flit(1));
    }

    #[test]
    #[should_panic]
    fn out_of_order_push_panics() {
        let mut buf = ReplayBuffer::new(4);
        buf.push(0, flit(0));
        buf.push(2, flit(2));
    }
}
