//! Link-layer statistics counters.

/// Counters accumulated by one link direction (a TX/RX pair).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LinkStats {
    /// Protocol flits transmitted for the first time.
    pub flits_sent: u64,
    /// Flits retransmitted due to NACKs / retries.
    pub flits_retransmitted: u64,
    /// Standalone ACK flits transmitted (no payload).
    pub standalone_acks_sent: u64,
    /// Idle flits emitted when nothing was pending.
    pub idle_flits_sent: u64,
    /// Flits received and accepted by the link layer.
    pub flits_accepted: u64,
    /// Flits received but rejected (FEC uncorrectable or CRC mismatch).
    pub flits_rejected: u64,
    /// Flits discarded while waiting for a go-back-N replay to reach the
    /// expected sequence number.
    pub flits_discarded_in_replay: u64,
    /// NACKs emitted by the receive side.
    pub nacks_sent: u64,
    /// Acknowledgements emitted (piggybacked or standalone).
    pub acks_sent: u64,
    /// Flits accepted whose own sequence number could not be checked because
    /// the FSN field carried an acknowledgement (baseline CXL blind spot).
    pub unchecked_sequence_accepts: u64,
    /// Sequence mismatches detected via the explicit FSN field.
    pub explicit_sequence_mismatches: u64,
    /// Sequence-or-data mismatches detected via the ISN ECRC.
    pub ecrc_rejections: u64,
}

impl LinkStats {
    /// Merges another counter set into this one.
    pub fn merge(&mut self, other: &LinkStats) {
        self.flits_sent += other.flits_sent;
        self.flits_retransmitted += other.flits_retransmitted;
        self.standalone_acks_sent += other.standalone_acks_sent;
        self.idle_flits_sent += other.idle_flits_sent;
        self.flits_accepted += other.flits_accepted;
        self.flits_rejected += other.flits_rejected;
        self.flits_discarded_in_replay += other.flits_discarded_in_replay;
        self.nacks_sent += other.nacks_sent;
        self.acks_sent += other.acks_sent;
        self.unchecked_sequence_accepts += other.unchecked_sequence_accepts;
        self.explicit_sequence_mismatches += other.explicit_sequence_mismatches;
        self.ecrc_rejections += other.ecrc_rejections;
    }

    /// Total flits put on the wire (payload, retransmissions, ACKs, idles).
    pub fn total_wire_flits(&self) -> u64 {
        self.flits_sent
            + self.flits_retransmitted
            + self.standalone_acks_sent
            + self.idle_flits_sent
    }

    /// Fraction of wire flits that were not first-time payload flits —
    /// a direct estimate of the bandwidth loss of Section 7.2.
    pub fn bandwidth_overhead(&self) -> f64 {
        let total = self.total_wire_flits();
        if total == 0 {
            return 0.0;
        }
        1.0 - self.flits_sent as f64 / total as f64
    }

    /// Protocol flits transmitted in total (first transmissions plus
    /// retransmissions) — the exposure denominator of per-flit failure rates.
    pub fn protocol_flits_transmitted(&self) -> u64 {
        self.flits_sent + self.flits_retransmitted
    }

    /// Acknowledgements that rode inside protocol flits rather than in
    /// standalone ACK flits.
    pub fn piggybacked_acks(&self) -> u64 {
        self.acks_sent - self.standalone_acks_sent
    }

    /// Measured fraction of first-transmission protocol flits whose FSN
    /// field carried a piggybacked acknowledgement instead of a sequence
    /// number — the empirical counterpart of the paper's `p_coalescing`.
    /// (Both counters are accumulated at first emission, which is why the
    /// denominator excludes retransmissions.)
    pub fn measured_p_coalescing(&self) -> f64 {
        if self.flits_sent == 0 {
            return 0.0;
        }
        self.piggybacked_acks() as f64 / self.flits_sent as f64
    }
}

impl std::fmt::Display for LinkStats {
    /// Renders the counters as an aligned multi-line block, one counter per
    /// line, so reports and examples need not hand-format them.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "flits sent             : {}", self.flits_sent)?;
        writeln!(f, "retransmissions        : {}", self.flits_retransmitted)?;
        writeln!(f, "standalone ACKs        : {}", self.standalone_acks_sent)?;
        writeln!(f, "idle flits             : {}", self.idle_flits_sent)?;
        writeln!(f, "flits accepted         : {}", self.flits_accepted)?;
        writeln!(f, "flits rejected         : {}", self.flits_rejected)?;
        writeln!(
            f,
            "discarded in replay    : {}",
            self.flits_discarded_in_replay
        )?;
        writeln!(f, "NACKs sent             : {}", self.nacks_sent)?;
        writeln!(f, "ACKs sent              : {}", self.acks_sent)?;
        writeln!(
            f,
            "unchecked seq accepts  : {}",
            self.unchecked_sequence_accepts
        )?;
        writeln!(
            f,
            "explicit seq mismatches: {}",
            self.explicit_sequence_mismatches
        )?;
        writeln!(f, "ECRC rejections        : {}", self.ecrc_rejections)?;
        write!(
            f,
            "bandwidth overhead     : {:.3}%",
            self.bandwidth_overhead() * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_adds_fields() {
        let mut a = LinkStats {
            flits_sent: 10,
            flits_retransmitted: 2,
            ..Default::default()
        };
        let b = LinkStats {
            flits_sent: 5,
            nacks_sent: 1,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.flits_sent, 15);
        assert_eq!(a.flits_retransmitted, 2);
        assert_eq!(a.nacks_sent, 1);
    }

    #[test]
    fn coalescing_and_exposure_helpers() {
        let s = LinkStats {
            flits_sent: 90,
            flits_retransmitted: 10,
            acks_sent: 12,
            standalone_acks_sent: 2,
            ..Default::default()
        };
        assert_eq!(s.protocol_flits_transmitted(), 100);
        assert_eq!(s.piggybacked_acks(), 10);
        assert!((s.measured_p_coalescing() - 10.0 / 90.0).abs() < 1e-12);
        assert_eq!(LinkStats::default().measured_p_coalescing(), 0.0);
    }

    #[test]
    fn display_renders_key_counters() {
        let s = LinkStats {
            flits_sent: 7,
            nacks_sent: 3,
            unchecked_sequence_accepts: 5,
            ..Default::default()
        };
        let out = s.to_string();
        assert!(out.contains("flits sent             : 7"));
        assert!(out.contains("NACKs sent             : 3"));
        assert!(out.contains("unchecked seq accepts  : 5"));
        assert!(out.contains("bandwidth overhead"));
    }

    #[test]
    fn bandwidth_overhead_counts_non_payload_flits() {
        let s = LinkStats {
            flits_sent: 90,
            flits_retransmitted: 5,
            standalone_acks_sent: 5,
            ..Default::default()
        };
        assert_eq!(s.total_wire_flits(), 100);
        assert!((s.bandwidth_overhead() - 0.1).abs() < 1e-12);
        assert_eq!(LinkStats::default().bandwidth_overhead(), 0.0);
    }
}
