//! The transmit side of one link direction.
//!
//! [`LinkTx`] turns a stream of transaction messages into wire flits, retains
//! transmitted flits in a replay buffer until they are acknowledged, and
//! services retransmission requests (go-back-N NACKs and watchdog timeouts).
//! ACK piggybacking and NACK emission on behalf of the co-located receiver are
//! also handled here, because they compete for the same transmit slots.

use std::collections::VecDeque;

use rxl_flit::{
    CxlFlitCodec, Flit256, FlitHeader, Message, RxlFlitCodec, WireFlit, MESSAGES_PER_FLIT,
};

use crate::retry::ReplayBuffer;
use crate::seq::{seq_add, seq_next};
use crate::stats::LinkStats;
use crate::variant::{LinkConfig, ProtocolVariant};

/// What the transmitter put on the wire for one transmit slot.
///
/// Emissions carry the *logical* flit plus the sequence number it is bound
/// to, not encoded wire bytes: a clean wire image is a pure function of
/// `(flit, bound_seq)`, so callers that only traverse clean links (the
/// fabric engine's skip-ahead fast path) never pay the FEC/CRC encode at
/// all. Callers that need real bytes — a lossy channel about to flip bits,
/// or a wire-level test — materialise them with
/// [`LinkTx::encode_emission`] (or [`crate::LinkEndpoint::encode_emission`]),
/// which is bit-identical to what the transmitter used to emit eagerly.
#[derive(Clone, Debug)]
pub enum TxEmission {
    /// A protocol flit carrying payload (new or retransmitted).
    Protocol {
        /// The logical flit (encode with [`LinkTx::encode_emission`]).
        flit: Box<Flit256>,
        /// The transport sequence number bound to this flit.
        seq: u16,
        /// `true` if this is a retransmission from the replay buffer.
        retransmission: bool,
    },
    /// A standalone acknowledgement flit (no payload).
    StandaloneAck {
        /// The logical control flit.
        flit: Box<Flit256>,
        /// The acknowledged sequence number.
        ack: u16,
    },
    /// A NACK / retry-request control flit.
    Nack {
        /// The logical control flit.
        flit: Box<Flit256>,
        /// The last correctly received sequence number.
        last_good: u16,
    },
    /// Nothing to send this slot.
    Idle,
}

impl TxEmission {
    /// The logical flit of this emission, if any.
    pub fn flit(&self) -> Option<&Flit256> {
        match self {
            TxEmission::Protocol { flit, .. }
            | TxEmission::StandaloneAck { flit, .. }
            | TxEmission::Nack { flit, .. } => Some(flit),
            TxEmission::Idle => None,
        }
    }

    /// The sequence number the wire encoding is bound to: the transport
    /// sequence for protocol flits, 0 for control flits (which live outside
    /// the transport sequence space), `None` for idle slots.
    pub fn bound_seq(&self) -> Option<u16> {
        match self {
            TxEmission::Protocol { seq, .. } => Some(*seq),
            TxEmission::StandaloneAck { .. } | TxEmission::Nack { .. } => Some(0),
            TxEmission::Idle => None,
        }
    }

    /// `true` if nothing was emitted.
    pub fn is_idle(&self) -> bool {
        matches!(self, TxEmission::Idle)
    }
}

enum Codec {
    Cxl(CxlFlitCodec),
    Rxl(RxlFlitCodec),
}

/// The transmit state machine for one link direction.
pub struct LinkTx {
    config: LinkConfig,
    codec: Codec,
    next_seq: u16,
    replay: ReplayBuffer,
    pending_msgs: VecDeque<Message>,
    retransmit_queue: VecDeque<(u16, Flit256)>,
    pending_ack: Option<u16>,
    pending_nack: Option<u16>,
    last_progress_ns: f64,
    stats: LinkStats,
}

impl LinkTx {
    /// Creates a transmitter with the given configuration.
    pub fn new(config: LinkConfig) -> Self {
        let codec = match config.variant {
            ProtocolVariant::Rxl => Codec::Rxl(RxlFlitCodec::new()),
            _ => Codec::Cxl(CxlFlitCodec::new()),
        };
        LinkTx {
            codec,
            next_seq: 0,
            replay: ReplayBuffer::new(config.replay_capacity),
            pending_msgs: VecDeque::new(),
            retransmit_queue: VecDeque::new(),
            pending_ack: None,
            pending_nack: None,
            last_progress_ns: 0.0,
            stats: LinkStats::default(),
            config,
        }
    }

    /// The link configuration.
    pub fn config(&self) -> &LinkConfig {
        &self.config
    }

    /// Accumulated transmit-side statistics.
    pub fn stats(&self) -> &LinkStats {
        &self.stats
    }

    /// The sequence number the next *new* flit will carry.
    pub fn next_seq(&self) -> u16 {
        self.next_seq
    }

    /// Number of messages waiting to be flitized.
    pub fn backlog(&self) -> usize {
        self.pending_msgs.len()
    }

    /// Number of unacknowledged flits currently held for replay.
    pub fn in_flight(&self) -> usize {
        self.replay.len()
    }

    /// `true` if the transmitter has nothing left to send or await.
    pub fn is_quiescent(&self) -> bool {
        self.pending_msgs.is_empty()
            && self.retransmit_queue.is_empty()
            && self.replay.is_empty()
            && self.pending_ack.is_none()
            && self.pending_nack.is_none()
    }

    /// Queues transaction messages for transmission.
    pub fn enqueue_messages<I: IntoIterator<Item = Message>>(&mut self, msgs: I) {
        self.pending_msgs.extend(msgs);
    }

    /// Requests that an acknowledgement for `seq` be conveyed to the peer
    /// (called by the co-located receiver).
    pub fn queue_ack(&mut self, seq: u16) {
        self.pending_ack = Some(seq);
    }

    /// Requests that a NACK for "last good = `last_good`" be conveyed to the
    /// peer (called by the co-located receiver).
    pub fn queue_nack(&mut self, last_good: u16) {
        self.pending_nack = Some(last_good);
    }

    /// Handles a cumulative acknowledgement received from the peer.
    pub fn handle_peer_ack(&mut self, ack_seq: u16, now_ns: f64) {
        let released = self.replay.ack_up_to(ack_seq);
        if released > 0 {
            self.last_progress_ns = now_ns;
        }
    }

    /// Handles a go-back-N NACK received from the peer: the NACK's
    /// "last good" value is a cumulative acknowledgement of everything up to
    /// and including it, and everything after it is scheduled for
    /// retransmission.
    pub fn handle_peer_nack(&mut self, last_good: u16, now_ns: f64) {
        let released = self.replay.ack_up_to(last_good);
        let from = seq_next(last_good);
        let replay = self.replay.replay_from(from);
        if !replay.is_empty() || released > 0 {
            self.retransmit_queue = replay.into();
            self.last_progress_ns = now_ns;
        }
    }

    fn encode(&self, flit: &Flit256, seq: u16) -> WireFlit {
        match &self.codec {
            Codec::Cxl(c) => c.encode(flit),
            Codec::Rxl(c) => c.encode(flit, seq),
        }
    }

    /// Materialises the wire bytes of an emission — bit-identical to what
    /// [`Self::emit`] describes. Emission is lazy so callers on all-clean
    /// paths (the fabric engine's known-clean fast path) never pay the
    /// FEC/CRC encode; wire-level consumers call this when they need bytes.
    pub fn encode_emission(&self, emission: &TxEmission) -> Option<WireFlit> {
        emission
            .flit()
            .map(|flit| self.encode(flit, emission.bound_seq().expect("non-idle emission")))
    }

    /// Produces the emission for the current transmit slot.
    pub fn emit(&mut self, now_ns: f64) -> TxEmission {
        // 1. NACKs are the most urgent: the peer is stalled until it rewinds.
        if let Some(last_good) = self.pending_nack.take() {
            let flit = Flit256::new(FlitHeader::nack_go_back_n(last_good));
            self.stats.nacks_sent += 1;
            return TxEmission::Nack {
                flit: Box::new(flit),
                last_good,
            };
        }

        // 2. Watchdog: if nothing has progressed for too long while flits are
        //    outstanding, replay everything unacknowledged.
        if self.retransmit_queue.is_empty()
            && !self.replay.is_empty()
            && now_ns - self.last_progress_ns > self.config.replay_timeout_ns
        {
            if let Some(oldest) = self.replay.oldest_seq() {
                self.retransmit_queue = self.replay.replay_from(oldest).into();
            }
            self.last_progress_ns = now_ns;
        }

        // 3. Pending retransmissions.
        if let Some((seq, flit)) = self.retransmit_queue.pop_front() {
            self.stats.flits_retransmitted += 1;
            return TxEmission::Protocol {
                flit: Box::new(flit),
                seq,
                retransmission: true,
            };
        }

        // 4. New protocol flits (with ACK piggybacking where the variant
        //    allows it).
        if !self.pending_msgs.is_empty() && !self.replay.is_full() {
            let count = self.pending_msgs.len().min(MESSAGES_PER_FLIT);
            // Stage the flit's messages in a stack buffer (no per-flit Vec).
            let mut msg_buf = [Message::response_ok(0, 0); MESSAGES_PER_FLIT];
            for (slot, msg) in msg_buf.iter_mut().zip(self.pending_msgs.iter()) {
                *slot = *msg;
            }
            self.pending_msgs.drain(..count);
            let msgs = &msg_buf[..count];
            let seq = self.next_seq;

            let header = if self.config.variant.piggybacks_acks() {
                if let Some(ack) = self.pending_ack.take() {
                    self.stats.acks_sent += 1;
                    FlitHeader::ack(ack)
                } else {
                    self.default_protocol_header(seq)
                }
            } else {
                self.default_protocol_header(seq)
            };

            let mut flit = Flit256::new(header);
            flit.pack_messages(msgs)
                .expect("message count bounded by MESSAGES_PER_FLIT");
            self.replay.push(seq, flit.clone());
            self.next_seq = seq_next(seq);
            self.stats.flits_sent += 1;
            self.last_progress_ns = now_ns;
            return TxEmission::Protocol {
                flit: Box::new(flit),
                seq,
                retransmission: false,
            };
        }

        // 5. Acknowledgements with no outgoing payload to ride on (or a
        //    variant that never piggybacks) go out as standalone ACK flits.
        if let Some(ack) = self.pending_ack.take() {
            let flit = Flit256::new(FlitHeader::standalone_ack(ack));
            self.stats.standalone_acks_sent += 1;
            self.stats.acks_sent += 1;
            return TxEmission::StandaloneAck {
                flit: Box::new(flit),
                ack,
            };
        }

        self.stats.idle_flits_sent += 1;
        TxEmission::Idle
    }

    fn default_protocol_header(&self, seq: u16) -> FlitHeader {
        match self.config.variant {
            // Baseline CXL carries the explicit sequence number.
            ProtocolVariant::CxlPiggyback | ProtocolVariant::CxlStandaloneAck => {
                FlitHeader::with_seq(seq)
            }
            // RXL leaves the FSN field zeroed; the sequence rides in the ECRC.
            ProtocolVariant::Rxl => FlitHeader::with_seq(0),
        }
    }

    /// Sequence number of the most recently transmitted new flit, if any.
    pub fn last_sent_seq(&self) -> Option<u16> {
        if self.stats.flits_sent == 0 {
            None
        } else {
            Some(seq_add(self.next_seq, -1))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rxl_flit::MemOp;

    fn msgs(n: usize) -> Vec<Message> {
        (0..n)
            .map(|i| Message::request(MemOp::RdCurr, (i * 64) as u64, 0, i as u16))
            .collect()
    }

    fn tx(variant: ProtocolVariant) -> LinkTx {
        LinkTx::new(LinkConfig::cxl3_x16(variant))
    }

    #[test]
    fn idle_when_nothing_pending() {
        let mut t = tx(ProtocolVariant::CxlPiggyback);
        assert!(t.emit(0.0).is_idle());
        assert!(t.is_quiescent());
    }

    #[test]
    fn new_flits_consume_sequence_numbers_in_order() {
        let mut t = tx(ProtocolVariant::CxlPiggyback);
        t.enqueue_messages(msgs(40));
        let mut seqs = Vec::new();
        loop {
            match t.emit(0.0) {
                TxEmission::Protocol {
                    seq,
                    retransmission,
                    ..
                } => {
                    assert!(!retransmission);
                    seqs.push(seq);
                }
                TxEmission::Idle => break,
                other => panic!("unexpected emission {other:?}"),
            }
        }
        // 40 messages → 3 flits (15 + 15 + 10).
        assert_eq!(seqs, vec![0, 1, 2]);
        assert_eq!(t.backlog(), 0);
        assert_eq!(t.in_flight(), 3);
        assert_eq!(t.last_sent_seq(), Some(2));
    }

    #[test]
    fn ack_releases_replay_buffer() {
        let mut t = tx(ProtocolVariant::CxlPiggyback);
        t.enqueue_messages(msgs(30));
        while !t.emit(0.0).is_idle() {}
        assert_eq!(t.in_flight(), 2);
        t.handle_peer_ack(0, 10.0);
        assert_eq!(t.in_flight(), 1);
        t.handle_peer_ack(1, 12.0);
        assert_eq!(t.in_flight(), 0);
    }

    #[test]
    fn nack_triggers_go_back_n_replay() {
        let mut t = tx(ProtocolVariant::Rxl);
        t.enqueue_messages(msgs(45));
        while !t.emit(0.0).is_idle() {}
        assert_eq!(t.in_flight(), 3);
        // Peer says: last good was 0 → resend 1 and 2.
        t.handle_peer_nack(0, 50.0);
        let mut replayed = Vec::new();
        loop {
            match t.emit(51.0) {
                TxEmission::Protocol {
                    seq,
                    retransmission,
                    ..
                } => {
                    assert!(retransmission);
                    replayed.push(seq);
                }
                TxEmission::Idle => break,
                other => panic!("unexpected emission {other:?}"),
            }
        }
        assert_eq!(replayed, vec![1, 2]);
        assert_eq!(t.stats().flits_retransmitted, 2);
    }

    #[test]
    fn piggyback_variant_attaches_ack_to_protocol_flit() {
        let mut t = tx(ProtocolVariant::CxlPiggyback);
        t.queue_ack(100);
        t.enqueue_messages(msgs(1));
        // Round-trip through the lazily encoded wire image, proving the
        // emission's `(flit, bound_seq)` pair fully determines the bytes.
        let emission = t.emit(0.0);
        let wire = t.encode_emission(&emission).expect("protocol emission");
        match emission {
            TxEmission::Protocol { .. } => {
                let codec = CxlFlitCodec::new();
                let out = codec.decode(&wire);
                let flit = out.flit.unwrap();
                assert_eq!(flit.header.fsn, 100);
                assert_eq!(flit.header.replay_cmd, rxl_flit::ReplayCmd::Ack);
            }
            other => panic!("unexpected emission {other:?}"),
        }
        assert_eq!(t.stats().acks_sent, 1);
    }

    #[test]
    fn standalone_variant_never_piggybacks() {
        let mut t = tx(ProtocolVariant::CxlStandaloneAck);
        t.queue_ack(7);
        t.enqueue_messages(msgs(1));
        // The protocol flit goes out with its own sequence number...
        match t.emit(0.0) {
            TxEmission::Protocol { flit, seq, .. } => {
                assert_eq!(flit.header.fsn, seq);
                assert!(flit.header.carries_own_sequence());
            }
            other => panic!("unexpected emission {other:?}"),
        }
        // ... and the acknowledgement follows as a standalone flit.
        match t.emit(2.0) {
            TxEmission::StandaloneAck { ack, .. } => assert_eq!(ack, 7),
            other => panic!("unexpected emission {other:?}"),
        }
        assert_eq!(t.stats().standalone_acks_sent, 1);
    }

    #[test]
    fn nack_control_flit_is_emitted_first() {
        let mut t = tx(ProtocolVariant::Rxl);
        t.enqueue_messages(msgs(5));
        t.queue_nack(42);
        let emission = t.emit(0.0);
        match &emission {
            TxEmission::Nack { last_good, .. } => {
                assert_eq!(*last_good, 42);
                // Control flits are bound to sequence 0 on the wire.
                assert_eq!(emission.bound_seq(), Some(0));
                let wire = t.encode_emission(&emission).unwrap();
                let codec = RxlFlitCodec::new();
                let out = codec.decode(&wire, 0);
                assert!(out.accepted());
                let flit = out.flit.unwrap();
                assert_eq!(flit.header.replay_cmd, rxl_flit::ReplayCmd::NackGoBackN);
                assert_eq!(flit.header.fsn, 42);
            }
            other => panic!("unexpected emission {other:?}"),
        }
    }

    #[test]
    fn watchdog_timeout_replays_unacknowledged_flits() {
        let mut t = tx(ProtocolVariant::Rxl);
        t.enqueue_messages(msgs(20));
        while !t.emit(0.0).is_idle() {}
        assert_eq!(t.in_flight(), 2);
        // Nothing happens before the timeout elapses...
        assert!(t.emit(100.0).is_idle());
        // ...but after the watchdog fires the whole window is replayed.
        let timeout = t.config().replay_timeout_ns;
        match t.emit(timeout + 200.0) {
            TxEmission::Protocol {
                retransmission,
                seq,
                ..
            } => {
                assert!(retransmission);
                assert_eq!(seq, 0);
            }
            other => panic!("unexpected emission {other:?}"),
        }
    }

    #[test]
    fn rxl_protocol_flits_keep_fsn_zero_unless_piggybacking() {
        let mut t = tx(ProtocolVariant::Rxl);
        t.enqueue_messages(msgs(1));
        let emission = t.emit(0.0);
        match &emission {
            TxEmission::Protocol { seq, .. } => {
                let wire = t.encode_emission(&emission).unwrap();
                let codec = RxlFlitCodec::new();
                let out = codec.decode(&wire, *seq);
                assert!(out.accepted());
                let flit = out.flit.unwrap();
                assert_eq!(
                    flit.header.fsn, 0,
                    "RXL must not spend header bits on the sequence"
                );
            }
            other => panic!("unexpected emission {other:?}"),
        }
    }
}
