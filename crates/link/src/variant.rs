//! Protocol variants and link configuration.

/// The three protocol variants the paper evaluates (Section 7.2).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum ProtocolVariant {
    /// Baseline CXL with ACK piggybacking: minimal bandwidth overhead but an
    /// ACK-carrying flit hides its own sequence number, so silent drops can
    /// slip through (Fig. 4).
    #[default]
    CxlPiggyback,
    /// CXL with standalone ACK flits: every protocol flit carries its own
    /// explicit sequence number, closing the reliability hole at the cost of
    /// reverse-direction bandwidth proportional to the coalescing level.
    CxlStandaloneAck,
    /// RXL: the Implicit Sequence Number rides in the transport-layer ECRC,
    /// so ACKs can piggyback freely without losing sequence protection.
    Rxl,
}

impl ProtocolVariant {
    /// `true` if this variant validates sequence continuity on every flit.
    pub fn always_checks_sequence(self) -> bool {
        matches!(
            self,
            ProtocolVariant::CxlStandaloneAck | ProtocolVariant::Rxl
        )
    }

    /// `true` if acknowledgements ride inside protocol flits.
    pub fn piggybacks_acks(self) -> bool {
        matches!(self, ProtocolVariant::CxlPiggyback | ProtocolVariant::Rxl)
    }

    /// Short display name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            ProtocolVariant::CxlPiggyback => "CXL (piggybacked ACK)",
            ProtocolVariant::CxlStandaloneAck => "CXL (standalone ACK)",
            ProtocolVariant::Rxl => "RXL",
        }
    }
}

/// Static configuration of one link direction.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LinkConfig {
    /// Protocol variant in use.
    pub variant: ProtocolVariant,
    /// ACK coalescing level: one acknowledgement is produced per this many
    /// accepted flits (the paper's `p_coalescing` is `1 / ack_coalescing`).
    pub ack_coalescing: u32,
    /// Capacity of the transmit replay buffer, in flits.
    pub replay_capacity: usize,
    /// Time to serialise one 256-byte flit on the link, in nanoseconds
    /// (2 ns for a ×16 CXL 3.0 link).
    pub flit_time_ns: f64,
    /// Go-back-N retry round-trip latency, in nanoseconds (100 ns in the
    /// paper's performance analysis).
    pub retry_latency_ns: f64,
    /// Watchdog timeout after which the transmitter re-issues a go-back-N
    /// replay of everything unacknowledged (covers lost NACK/ACK control
    /// flits), in nanoseconds.
    pub replay_timeout_ns: f64,
}

impl LinkConfig {
    /// The paper's ×16 CXL 3.0 operating point for a given variant.
    pub fn cxl3_x16(variant: ProtocolVariant) -> Self {
        LinkConfig {
            variant,
            ack_coalescing: 10,
            replay_capacity: 256,
            flit_time_ns: 2.0,
            retry_latency_ns: 100.0,
            replay_timeout_ns: 4_000.0,
        }
    }

    /// Fraction of flits that carry an acknowledgement
    /// (the paper's `p_coalescing`).
    pub fn p_coalescing(&self) -> f64 {
        1.0 / self.ack_coalescing as f64
    }
}

impl Default for LinkConfig {
    fn default() -> Self {
        Self::cxl3_x16(ProtocolVariant::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn variant_capabilities() {
        assert!(!ProtocolVariant::CxlPiggyback.always_checks_sequence());
        assert!(ProtocolVariant::CxlStandaloneAck.always_checks_sequence());
        assert!(ProtocolVariant::Rxl.always_checks_sequence());
        assert!(ProtocolVariant::CxlPiggyback.piggybacks_acks());
        assert!(!ProtocolVariant::CxlStandaloneAck.piggybacks_acks());
        assert!(ProtocolVariant::Rxl.piggybacks_acks());
    }

    #[test]
    fn names_are_distinct() {
        let names = [
            ProtocolVariant::CxlPiggyback.name(),
            ProtocolVariant::CxlStandaloneAck.name(),
            ProtocolVariant::Rxl.name(),
        ];
        assert_eq!(
            names.iter().collect::<std::collections::HashSet<_>>().len(),
            3
        );
    }

    #[test]
    fn default_config_matches_the_paper_operating_point() {
        let cfg = LinkConfig::default();
        assert_eq!(cfg.variant, ProtocolVariant::CxlPiggyback);
        assert!((cfg.flit_time_ns - 2.0).abs() < 1e-12);
        assert!((cfg.retry_latency_ns - 100.0).abs() < 1e-12);
        assert!((cfg.p_coalescing() - 0.1).abs() < 1e-12);
    }
}
