//! Credit-based flow control.
//!
//! CXL links exchange credits per virtual channel so a transmitter never
//! overruns the receiver's buffers. Flow control is orthogonal to the
//! reliability mechanisms the paper studies, but a credible link layer needs
//! it: the replay buffer bounds *unacknowledged* flits, while credits bound
//! *unconsumed* ones. [`CreditCounter`] models one virtual channel's counter
//! pair (consumed / returned) with wrap-safe arithmetic.

/// A credit counter for one virtual channel of one link direction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CreditCounter {
    /// Total credits advertised by the receiver (its buffer capacity).
    advertised: u32,
    /// Credits consumed by transmissions.
    consumed: u64,
    /// Credits returned by the receiver as it drains its buffer.
    returned: u64,
}

impl CreditCounter {
    /// Creates a counter with `advertised` initial credits.
    pub fn new(advertised: u32) -> Self {
        assert!(advertised >= 1, "a channel needs at least one credit");
        CreditCounter {
            advertised,
            consumed: 0,
            returned: 0,
        }
    }

    /// Credits currently available to the transmitter.
    pub fn available(&self) -> u32 {
        debug_assert!(
            self.consumed >= self.returned
                || self.returned - self.consumed <= self.advertised as u64
        );
        let outstanding = self.consumed.saturating_sub(self.returned);
        self.advertised.saturating_sub(outstanding as u32)
    }

    /// Number of flits the receiver has not yet drained.
    pub fn outstanding(&self) -> u32 {
        self.consumed.saturating_sub(self.returned) as u32
    }

    /// `true` if at least one credit is available.
    pub fn can_send(&self) -> bool {
        self.available() > 0
    }

    /// Consumes one credit for a transmission. Returns `false` (and consumes
    /// nothing) if no credit is available.
    pub fn consume(&mut self) -> bool {
        if !self.can_send() {
            return false;
        }
        self.consumed += 1;
        true
    }

    /// Returns `count` credits from the receiver. Returning more credits than
    /// are outstanding indicates a protocol error and panics.
    pub fn return_credits(&mut self, count: u32) {
        assert!(
            count as u64 + self.returned <= self.consumed,
            "receiver returned more credits than were consumed"
        );
        self.returned += count as u64;
    }

    /// The advertised (maximum) credit count.
    pub fn advertised(&self) -> u32 {
        self.advertised
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn credits_bound_the_number_of_in_flight_flits() {
        let mut c = CreditCounter::new(3);
        assert_eq!(c.available(), 3);
        assert!(c.consume());
        assert!(c.consume());
        assert!(c.consume());
        assert!(!c.can_send());
        assert!(!c.consume());
        assert_eq!(c.outstanding(), 3);
    }

    #[test]
    fn returning_credits_reopens_the_window() {
        let mut c = CreditCounter::new(2);
        assert!(c.consume());
        assert!(c.consume());
        c.return_credits(1);
        assert_eq!(c.available(), 1);
        assert!(c.consume());
        assert_eq!(c.outstanding(), 2);
        c.return_credits(2);
        assert_eq!(c.available(), 2);
        assert_eq!(c.outstanding(), 0);
    }

    #[test]
    fn long_running_counters_do_not_overflow_the_window() {
        let mut c = CreditCounter::new(4);
        for _ in 0..100_000 {
            assert!(c.consume());
            c.return_credits(1);
        }
        assert_eq!(c.available(), 4);
        assert_eq!(c.advertised(), 4);
    }

    #[test]
    #[should_panic]
    fn over_returning_credits_panics() {
        let mut c = CreditCounter::new(2);
        c.consume();
        c.return_credits(2);
    }

    #[test]
    #[should_panic]
    fn zero_credit_channels_are_rejected() {
        let _ = CreditCounter::new(0);
    }
}
