//! Property tests for the wrap-aware 10-bit sequence arithmetic, mirroring
//! the gf256 field-axiom suite: every helper must respect the modular
//! structure of the sequence space across the 1024 wrap boundary, because a
//! single wrong comparison there silently corrupts go-back-N recovery.

use proptest::prelude::*;

use rxl_link::seq::{seq_add, seq_distance, seq_ge, seq_next, SEQ_MASK, SEQ_SPACE};

proptest! {
    /// Results always stay inside the sequence space.
    #[test]
    fn add_stays_in_the_sequence_space(seq in 0u16..SEQ_SPACE, offset in -65_536i32..65_536) {
        let r = seq_add(seq, offset);
        prop_assert!(r < SEQ_SPACE);
        prop_assert_eq!(r, r & SEQ_MASK);
    }

    /// Addition is associative over composed offsets.
    #[test]
    fn add_composes(seq in 0u16..SEQ_SPACE, a in -4_096i32..4_096, b in -4_096i32..4_096) {
        prop_assert_eq!(seq_add(seq_add(seq, a), b), seq_add(seq, a + b));
    }

    /// A negative offset undoes the positive one (additive inverse).
    #[test]
    fn add_inverts(seq in 0u16..SEQ_SPACE, k in 0i32..(SEQ_SPACE as i32)) {
        prop_assert_eq!(seq_add(seq_add(seq, k), -k), seq);
    }

    /// `seq_distance` inverts `seq_add` across the wrap boundary.
    #[test]
    fn distance_inverts_add(seq in 0u16..SEQ_SPACE, k in 0u16..SEQ_SPACE) {
        let later = seq_add(seq, k as i32);
        prop_assert_eq!(seq_distance(seq, later), k);
    }

    /// Distances split around any intermediate point (modular triangle
    /// equality).
    #[test]
    fn distance_is_additive_through_midpoints(
        a in 0u16..SEQ_SPACE,
        d1 in 0u16..SEQ_SPACE,
        d2 in 0u16..SEQ_SPACE,
    ) {
        prop_assume!(d1 as u32 + d2 as u32 <= SEQ_MASK as u32);
        let b = seq_add(a, d1 as i32);
        let c = seq_add(b, d2 as i32);
        prop_assert_eq!(seq_distance(a, c), d1 + d2);
    }

    /// Forward and backward distances are complementary unless equal.
    #[test]
    fn distances_are_complementary(a in 0u16..SEQ_SPACE, b in 0u16..SEQ_SPACE) {
        let fwd = seq_distance(a, b);
        let back = seq_distance(b, a);
        if a == b {
            prop_assert_eq!(fwd, 0);
            prop_assert_eq!(back, 0);
        } else {
            prop_assert_eq!(fwd as u32 + back as u32, SEQ_SPACE as u32);
        }
    }

    /// `seq_next` is `+1`, wraps at the top, and never repeats within one
    /// period.
    #[test]
    fn next_is_add_one_and_injective(seq in 0u16..SEQ_SPACE) {
        prop_assert_eq!(seq_next(seq), seq_add(seq, 1));
        prop_assert_eq!(seq_distance(seq, seq_next(seq)), 1);
        prop_assert!(seq_next(seq) != seq);
    }

    /// The go-back-N window comparison: `a ≥ b` exactly when `a` is within
    /// the forward half-window of `b`, on both sides of the wrap.
    #[test]
    fn ge_matches_the_half_window(b in 0u16..SEQ_SPACE, d in 0u16..SEQ_SPACE) {
        let a = seq_add(b, d as i32);
        prop_assert_eq!(seq_ge(a, b), d < SEQ_SPACE / 2);
    }

    /// Antisymmetry within the window: strictly ahead one way means not
    /// ahead the other way.
    #[test]
    fn ge_is_antisymmetric_for_distinct_points(b in 0u16..SEQ_SPACE, d in 1u16..512) {
        let a = seq_add(b, d as i32);
        prop_assert!(seq_ge(a, b));
        prop_assert!(!seq_ge(b, a));
    }
}
