//! [`SloProbe`]: the standard telemetry consumer of the fabric probe seam.
//!
//! One `SloProbe` per trial folds probe events into a
//! [`WindowedTelemetry`] (and, optionally, a [`TraceRecorder`]): injection
//! counts into the injection window, latency + outcome on delivery, counter
//! events into the window they fire in. Latency is computed here — the
//! probe pairs each [`InjectEvent`] with its delivery through an in-flight
//! map keyed by the `(dst, key)` pair, the workspace's message-span
//! identity. (The pair is the key — [`rxl_fabric::message_key`] uses the
//! full 64 bits, so no bit-packing of `dst` into the key can stay
//! collision-free.)
//!
//! Per the seam's contract the probe never touches the RNG and the engine
//! never reads probe state, so attaching an `SloProbe` leaves every trial
//! outcome byte-identical (pinned by `tests/telemetry_neutrality.rs`).
//! Per-trial probes merge exactly: [`SloProbe::merge`] delegates to the
//! exact [`WindowedTelemetry::merge`], so a Monte-Carlo that merges its
//! trial probes in trial order reports the same windows for any worker
//! thread count.

use rxl_fabric::{ChannelErrorEvent, DeliverEvent, InjectEvent, Probe};
use rxl_transport::DeliveryVerdict;
use rxl_transport::FastMap;

use crate::trace::{InstantKind, TraceRecorder};
use crate::window::WindowedTelemetry;

/// A probe accumulating windowed SLO telemetry (and optionally a bounded
/// incident trace) from engine events.
#[derive(Clone, Debug)]
pub struct SloProbe {
    windows: WindowedTelemetry,
    inflight: FastMap<(u64, u64), u64>,
    trace: Option<TraceRecorder>,
}

impl SloProbe {
    /// A probe with `window_slots`-slot windows and no trace recorder.
    pub fn new(window_slots: u64) -> Self {
        SloProbe {
            windows: WindowedTelemetry::new(window_slots),
            inflight: FastMap::default(),
            trace: None,
        }
    }

    /// A probe that additionally records a bounded incident trace
    /// (`trace_capacity` spans + instants, oldest evicted).
    pub fn with_trace(window_slots: u64, trace_capacity: usize) -> Self {
        SloProbe {
            trace: Some(TraceRecorder::new(trace_capacity)),
            ..SloProbe::new(window_slots)
        }
    }

    fn span_id(dst: usize, key: u64) -> (u64, u64) {
        (dst as u64, key)
    }

    /// The accumulated windowed telemetry.
    pub fn windows(&self) -> &WindowedTelemetry {
        &self.windows
    }

    /// The trace recorder, if this probe was built with one.
    pub fn trace(&self) -> Option<&TraceRecorder> {
        self.trace.as_ref()
    }

    /// Messages injected but never delivered (in flight at run end, or
    /// lost).
    pub fn unresolved(&self) -> usize {
        self.inflight.len()
    }

    /// Consumes the probe into its accumulator and optional trace.
    pub fn into_parts(self) -> (WindowedTelemetry, Option<TraceRecorder>) {
        (self.windows, self.trace)
    }

    /// Merges another trial's telemetry in (exact; panics on differing
    /// window lengths). Traces do not merge — each trial's trace stands
    /// alone.
    pub fn merge(&mut self, other: &SloProbe) {
        self.windows.merge(&other.windows);
    }
}

impl Probe for SloProbe {
    fn on_inject(&mut self, ev: InjectEvent) {
        self.windows.record_inject(ev.slot);
        self.inflight.insert(Self::span_id(ev.dst, ev.key), ev.slot);
        if let Some(trace) = &mut self.trace {
            trace.open_span(ev);
        }
    }

    fn on_deliver(&mut self, ev: DeliverEvent) {
        // Duplicate deliveries find no open span: the first delivery
        // consumed it, which is exactly the single-span-per-message
        // semantics we want.
        if let Some(inject_slot) = self.inflight.remove(&Self::span_id(ev.dst, ev.key)) {
            self.windows.record_latency(ev.slot, ev.slot - inject_slot);
            self.windows
                .record_outcome(inject_slot, ev.verdict == DeliveryVerdict::InOrder);
        }
        if let Some(trace) = &mut self.trace {
            trace.close_span(ev.slot, ev.dst, ev.key, ev.verdict);
        }
    }

    fn on_fail_order(&mut self, slot: u64, session: usize, dst: usize) {
        self.windows.record_fail_order(slot);
        if let Some(trace) = &mut self.trace {
            trace.instant(slot, InstantKind::FailOrder, session as u64, dst as u64);
        }
    }

    fn on_retransmit(&mut self, slot: u64, endpoint: usize, session: usize) {
        self.windows.record_retransmit(slot);
        if let Some(trace) = &mut self.trace {
            trace.instant(
                slot,
                InstantKind::Retransmit,
                endpoint as u64,
                session as u64,
            );
        }
    }

    fn on_nack(&mut self, slot: u64, endpoint: usize, session: usize) {
        self.windows.record_nack(slot);
        if let Some(trace) = &mut self.trace {
            trace.instant(slot, InstantKind::Nack, endpoint as u64, session as u64);
        }
    }

    fn on_credit_stall(
        &mut self,
        slot: u64,
        _switch: usize,
        _port: Option<usize>,
        _vc: Option<usize>,
    ) {
        // Counter only: stalls fire per held flit per slot, far too hot for
        // the trace ring. Per-port/per-lane attribution is MetricsProbe's
        // job (see `crate::metrics`).
        self.windows.record_credit_stall(slot);
    }

    fn on_channel_error(&mut self, ev: ChannelErrorEvent) {
        self.windows.record_channel_error(ev.slot);
    }

    fn on_blackhole(&mut self, slot: u64, switch: usize) {
        self.windows.record_blackhole(slot);
        if let Some(trace) = &mut self.trace {
            trace.instant(slot, InstantKind::Blackhole, switch as u64, 0);
        }
    }

    fn on_switch_fail(&mut self, slot: u64, switch: usize, purged_flits: u64) {
        self.windows.record_switch_event(slot);
        if let Some(trace) = &mut self.trace {
            trace.instant(slot, InstantKind::SwitchFail, switch as u64, purged_flits);
        }
    }

    fn on_switch_drain(&mut self, slot: u64, switch: usize, restored: bool) {
        self.windows.record_switch_event(slot);
        if let Some(trace) = &mut self.trace {
            let kind = if restored {
                InstantKind::SwitchRestore
            } else {
                InstantKind::SwitchDrain
            };
            trace.instant(slot, kind, switch as u64, 0);
        }
    }

    fn on_epoch(&mut self, slot: u64, epoch: usize) {
        if let Some(trace) = &mut self.trace {
            trace.instant(slot, InstantKind::Epoch, epoch as u64, 0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inject(slot: u64, dst: usize, key: u64) -> InjectEvent {
        InjectEvent {
            slot,
            session: 0,
            src: 1,
            dst,
            downstream: true,
            key,
        }
    }

    fn deliver(slot: u64, dst: usize, key: u64, verdict: DeliveryVerdict) -> DeliverEvent {
        DeliverEvent {
            slot,
            session: 0,
            dst,
            downstream: true,
            key,
            verdict,
        }
    }

    #[test]
    fn pairs_injection_with_delivery_and_attributes_windows() {
        let mut p = SloProbe::new(100);
        p.on_inject(inject(40, 2, 9));
        p.on_deliver(deliver(250, 2, 9, DeliveryVerdict::InOrder));
        let stats = p.windows().stats();
        assert_eq!(stats[0].injected, 1);
        assert_eq!(stats[0].clean, 1);
        assert_eq!(stats[2].deliveries, 1);
        assert_eq!(stats[2].latency.max, 210);
        assert_eq!(p.unresolved(), 0);
    }

    #[test]
    fn duplicates_and_corruption_are_not_clean() {
        let mut p = SloProbe::new(10);
        p.on_inject(inject(0, 1, 0));
        p.on_deliver(deliver(5, 1, 0, DeliveryVerdict::Corrupted));
        // A duplicate of the same message records nothing further.
        p.on_deliver(deliver(6, 1, 0, DeliveryVerdict::Duplicate));
        let s = &p.windows().stats()[0];
        assert_eq!(s.injected, 1);
        assert_eq!(s.clean, 0);
        assert_eq!(s.deliveries, 1);
        assert_eq!(s.availability, 0.0);
    }

    #[test]
    fn lost_messages_stay_unresolved() {
        let mut p = SloProbe::new(10);
        p.on_inject(inject(3, 1, 0));
        p.on_inject(inject(4, 1, 1));
        p.on_deliver(deliver(8, 1, 1, DeliveryVerdict::InOrder));
        assert_eq!(p.unresolved(), 1);
        let s = &p.windows().stats()[0];
        assert_eq!(s.injected, 2);
        assert_eq!(s.clean, 1);
        assert!((s.availability - 0.5).abs() < 1e-12);
    }

    #[test]
    fn trace_records_spans_and_instants_when_enabled() {
        let mut p = SloProbe::with_trace(10, 16);
        p.on_inject(inject(1, 1, 0));
        p.on_deliver(deliver(7, 1, 0, DeliveryVerdict::InOrder));
        p.on_retransmit(4, 2, 0);
        p.on_epoch(5, 1);
        let trace = p.trace().expect("trace enabled");
        assert_eq!(trace.spans().count(), 1);
        assert_eq!(trace.instants().count(), 2);
        let mut bare = SloProbe::new(10);
        bare.on_retransmit(4, 2, 0);
        assert!(bare.trace().is_none());
    }

    #[test]
    fn merge_combines_windows_exactly() {
        let mut a = SloProbe::new(50);
        a.on_inject(inject(10, 1, 0));
        a.on_deliver(deliver(20, 1, 0, DeliveryVerdict::InOrder));
        let mut b = SloProbe::new(50);
        b.on_inject(inject(60, 1, 0));
        b.on_deliver(deliver(80, 1, 0, DeliveryVerdict::InOrder));
        a.merge(&b);
        let stats = a.windows().stats();
        assert_eq!(stats.len(), 2);
        assert_eq!(stats[0].injected + stats[1].injected, 2);
        assert_eq!(stats[0].deliveries, 1);
        assert_eq!(stats[1].deliveries, 1);
    }
}
