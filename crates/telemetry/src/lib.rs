//! `rxl-telemetry` — windowed SLO telemetry, burn-rate accounting and
//! structured incident traces over the RXL fabric engine's probe seam.
//!
//! The end-of-run reports (`FabricReport`, `ChaosMonteCarloReport`) answer
//! "how did the run end?"; this crate answers the operator's questions:
//! *what did the p99.9 look like during the storm, how fast did the error
//! budget burn, when would the pager have fired, and how long did recovery
//! take?*
//!
//! The crate is a pure consumer of [`rxl_fabric::Probe`] — the engine's
//! zero-cost instrumentation seam. Per that seam's contract a probe never
//! touches the trial RNG and the engine never reads probe state, so every
//! number here is observed from byte-identical trials, and disabling
//! telemetry (the default [`rxl_fabric::NullProbe`]) compiles the whole
//! layer away.
//!
//! # Layers
//!
//! * [`window`] — [`WindowedTelemetry`]: fixed-width windows of latency
//!   histograms + availability and event counters, with exact merge
//!   (thread-count-independent Monte-Carlo aggregation) and warmup
//!   detection. Latency is attributed to the *delivery* window,
//!   availability to the *injection* window.
//! * [`slo`] — [`SloSpec`] / [`burn_series`] / [`score_incident`]:
//!   error-budget burn rates per window, Google-SRE-style multi-window
//!   fast/slow alerts, and incident scoring (burn during vs after, peak,
//!   time to recovery).
//! * [`trace`] — [`TraceRecorder`]: bounded ring buffers of per-message
//!   spans and instant events, exportable as JSONL or Chrome tracing JSON.
//! * [`probe`] — [`SloProbe`]: the [`rxl_fabric::Probe`] implementation
//!   feeding all of the above from engine events.
//! * [`metrics`] — [`MetricsProbe`] / [`MetricsRegistry`] /
//!   [`BottleneckReport`] / [`AttributedSweep`] / [`EngineProfiler`]: the
//!   *spatial* half — fixed-layout per-link/VC counter registries,
//!   utilization × stall-pressure bottleneck ranking with congestion
//!   signatures, per-rung load-sweep attribution, Prometheus exposition,
//!   and the engine's per-phase self-profiler.
//! * [`replay`] — [`IncidentReplay`]: a chaos scenario re-run as a scored
//!   SLO incident over a [`rxl_chaos::ChaosMonteCarlo`].
//! * [`request`] — [`RequestProbe`] / [`RequestSweep`] / [`OperatingPoint`]:
//!   the request-scale layer — an open-system serving mode that joins
//!   engine deliveries back to fanout requests, attributes each request's
//!   critical path to its straggling shard (and the link behind it), and
//!   recommends the max safe offered load under a request SLO.
//!
//! # Example
//!
//! ```
//! use rxl_chaos::Scenario;
//! use rxl_fabric::{FabricConfig, FabricTopology, FabricWorkload};
//! use rxl_link::{ChannelErrorModel, ProtocolVariant};
//! use rxl_telemetry::{IncidentReplay, SloSpec};
//!
//! let topology = FabricTopology::leaf_spine(2, 1, 2);
//! let uplink = topology.trunk_between(0, 2).unwrap();
//! let scenario = Scenario::named("storm").ber_storm(300, 400, vec![uplink], 2e4);
//! let config = FabricConfig::new(ProtocolVariant::Rxl)
//!     .with_channel(ChannelErrorModel::random(1e-7));
//! let replay = IncidentReplay::new(topology, config, scenario, 2, 200, SloSpec::default());
//! let report = replay.run(&FabricWorkload::symmetric(4, 600, 8, 11));
//! let score = report.score.expect("the storm anchors an incident interval");
//! assert_eq!(score.incident_start, 300);
//! for b in &report.burn {
//!     println!("window {:>3} burn {:8.1} fast={}", b.index, b.burn, b.fast_alert);
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod metrics;
pub mod probe;
pub mod replay;
pub mod request;
pub mod slo;
pub mod trace;
pub mod window;

pub use metrics::{
    AttributedSweep, BottleneckReport, CongestionSignature, EngineProfiler, LinkPressure,
    MetricsProbe, MetricsRegistry, OccupancyHistogram, PhaseProfile, RungAttribution,
    SwitchPressure,
};
pub use probe::SloProbe;
pub use replay::{IncidentReplay, IncidentReport};
pub use request::{
    OperatingPoint, RequestPoint, RequestProbe, RequestRung, RequestSweep, RequestSweepConfig,
    RequestSweepReport, StragglerLink,
};
pub use slo::{burn_series, incident_interval, score_incident, IncidentScore, SloSpec, WindowBurn};
pub use trace::{InstantEvent, InstantKind, MessageSpan, TraceRecorder};
pub use window::{SteadyStateSummary, WindowAccum, WindowStat, WindowedTelemetry};
