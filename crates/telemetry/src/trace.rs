//! Structured incident traces: bounded ring buffers of per-message spans
//! and point events, exportable as JSONL or Chrome tracing JSON.
//!
//! A [`TraceRecorder`] pairs each probe inject event with its delivery to
//! form a [`MessageSpan`] (inject slot → deliver slot, endpoints, verdict)
//! and records everything without a natural duration — retransmissions,
//! NACKs, blackholes, switch fails/drains, epoch boundaries — as
//! [`InstantEvent`]s. Both buffers are bounded rings: when full, the
//! *oldest* entry is evicted and a dropped counter bumps, so a recorder
//! attached to a long run keeps the most recent history at fixed memory.
//!
//! Retransmissions are endpoint-level instants, not sub-events of a span:
//! the transport's go-back-N replay resends *everything* past the
//! cumulative ack point, so a single replay is not attributable to one
//! message.
//!
//! Export formats:
//!
//! * [`TraceRecorder::to_jsonl`] — one JSON object per line, spans and
//!   instants interleaved in slot order; grep/jq-friendly.
//! * [`TraceRecorder::to_chrome_trace`] — the Chrome tracing / Perfetto
//!   JSON object format (`chrome://tracing`, <https://ui.perfetto.dev>):
//!   spans become `ph:"X"` complete events (pid = session, tid =
//!   destination endpoint, ts = inject slot, dur = latency), instants
//!   become `ph:"i"` events.

use std::collections::VecDeque;
use std::fmt::Write as _;

use rxl_fabric::InjectEvent;
use rxl_transport::{DeliveryVerdict, FastMap};

/// One message's life: injection to delivery, with the auditor's verdict.
#[derive(Clone, Copy, Debug)]
pub struct MessageSpan {
    /// Slot the message became transmittable.
    pub inject_slot: u64,
    /// Slot the destination endpoint delivered it.
    pub deliver_slot: u64,
    /// Workload session the message belongs to.
    pub session: usize,
    /// Source endpoint.
    pub src: usize,
    /// Destination endpoint.
    pub dst: usize,
    /// `true` for host→device direction.
    pub downstream: bool,
    /// Engine message key (unique per destination; see
    /// [`rxl_fabric::message_key`]).
    pub key: u64,
    /// The downstream auditor's classification of the delivery.
    pub verdict: DeliveryVerdict,
}

/// What kind of point event an [`InstantEvent`] records.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum InstantKind {
    /// A go-back-N retransmission was emitted (`a` = endpoint, `b` =
    /// session).
    Retransmit,
    /// A NACK was emitted (`a` = endpoint, `b` = session).
    Nack,
    /// The auditor classified an undetected drop (`a` = session, `b` =
    /// destination endpoint).
    FailOrder,
    /// A fault-injection blackhole swallowed a flit (`a`, `b` unused).
    Blackhole,
    /// A switch was killed (`a` = switch, `b` = flits purged).
    SwitchFail,
    /// A switch was drained (`a` = switch, `b` unused).
    SwitchDrain,
    /// A drained/failed switch was restored (`a` = switch, `b` unused).
    SwitchRestore,
    /// A chaos epoch boundary was crossed (`a` = epoch index, `b` unused).
    Epoch,
    /// A fanout request completed — all shard spans delivered (`a` =
    /// request index, `b` = arrival→completion latency in slots). Recorded
    /// by the request probe; the shard message spans themselves are the
    /// request's child spans.
    RequestComplete,
}

impl InstantKind {
    fn name(self) -> &'static str {
        match self {
            InstantKind::Retransmit => "retransmit",
            InstantKind::Nack => "nack",
            InstantKind::FailOrder => "fail_order",
            InstantKind::Blackhole => "blackhole",
            InstantKind::SwitchFail => "switch_fail",
            InstantKind::SwitchDrain => "switch_drain",
            InstantKind::SwitchRestore => "switch_restore",
            InstantKind::Epoch => "epoch",
            InstantKind::RequestComplete => "request_complete",
        }
    }
}

/// A point event: something that happened at one slot.
#[derive(Clone, Copy, Debug)]
pub struct InstantEvent {
    /// Slot the event fired.
    pub slot: u64,
    /// What happened.
    pub kind: InstantKind,
    /// First payload (meaning per [`InstantKind`]).
    pub a: u64,
    /// Second payload (meaning per [`InstantKind`]).
    pub b: u64,
}

/// Bounded ring-buffer recorder of message spans and instant events.
#[derive(Clone, Debug)]
pub struct TraceRecorder {
    capacity: usize,
    open: FastMap<(u64, u64), InjectEvent>,
    spans: VecDeque<MessageSpan>,
    instants: VecDeque<InstantEvent>,
    dropped_spans: u64,
    dropped_instants: u64,
}

impl TraceRecorder {
    /// A recorder keeping at most `capacity` spans and `capacity` instants
    /// (oldest evicted first).
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "a trace ring needs a positive capacity");
        TraceRecorder {
            capacity,
            open: FastMap::default(),
            spans: VecDeque::new(),
            instants: VecDeque::new(),
            dropped_spans: 0,
            dropped_instants: 0,
        }
    }

    fn span_id(dst: usize, key: u64) -> (u64, u64) {
        (dst as u64, key)
    }

    /// Opens a span for an injected message.
    pub fn open_span(&mut self, ev: InjectEvent) {
        self.open.insert(Self::span_id(ev.dst, ev.key), ev);
    }

    /// Closes the span matching a delivery, if its injection is on record
    /// (duplicate deliveries and pre-attach injections close nothing).
    pub fn close_span(
        &mut self,
        deliver_slot: u64,
        dst: usize,
        key: u64,
        verdict: DeliveryVerdict,
    ) {
        let Some(inj) = self.open.remove(&Self::span_id(dst, key)) else {
            return;
        };
        if self.spans.len() == self.capacity {
            self.spans.pop_front();
            self.dropped_spans += 1;
        }
        self.spans.push_back(MessageSpan {
            inject_slot: inj.slot,
            deliver_slot,
            session: inj.session,
            src: inj.src,
            dst,
            downstream: inj.downstream,
            key,
            verdict,
        });
    }

    /// Records a point event.
    pub fn instant(&mut self, slot: u64, kind: InstantKind, a: u64, b: u64) {
        if self.instants.len() == self.capacity {
            self.instants.pop_front();
            self.dropped_instants += 1;
        }
        self.instants.push_back(InstantEvent { slot, kind, a, b });
    }

    /// Completed spans, oldest first.
    pub fn spans(&self) -> impl Iterator<Item = &MessageSpan> {
        self.spans.iter()
    }

    /// Instant events, oldest first.
    pub fn instants(&self) -> impl Iterator<Item = &InstantEvent> {
        self.instants.iter()
    }

    /// Injected messages not yet delivered (in flight or lost).
    pub fn open_spans(&self) -> usize {
        self.open.len()
    }

    /// Spans evicted from the ring.
    pub fn dropped_spans(&self) -> u64 {
        self.dropped_spans
    }

    /// Instants evicted from the ring.
    pub fn dropped_instants(&self) -> u64 {
        self.dropped_instants
    }

    /// JSONL export: one object per line, spans (`"type":"span"`) and
    /// instants (`"type":"instant"`) merged in slot order (span sort key =
    /// inject slot), closed by one `"type":"meta"` line carrying the
    /// ring-truncation counters — a reader that ignores the dropped-span
    /// counter would silently mistake a truncated ring for full coverage.
    pub fn to_jsonl(&self) -> String {
        enum Line<'a> {
            Span(&'a MessageSpan),
            Instant(&'a InstantEvent),
        }
        let mut lines: Vec<(u64, Line<'_>)> = self
            .spans
            .iter()
            .map(|s| (s.inject_slot, Line::Span(s)))
            .chain(self.instants.iter().map(|i| (i.slot, Line::Instant(i))))
            .collect();
        lines.sort_by_key(|(slot, _)| *slot);
        let mut out = String::new();
        for (_, line) in lines {
            match line {
                Line::Span(s) => {
                    let _ = writeln!(
                        out,
                        "{{\"type\":\"span\",\"inject_slot\":{},\"deliver_slot\":{},\
                         \"latency\":{},\"session\":{},\"src\":{},\"dst\":{},\
                         \"downstream\":{},\"key\":{},\"verdict\":\"{:?}\"}}",
                        s.inject_slot,
                        s.deliver_slot,
                        s.deliver_slot - s.inject_slot,
                        s.session,
                        s.src,
                        s.dst,
                        s.downstream,
                        s.key,
                        s.verdict,
                    );
                }
                Line::Instant(i) => {
                    let _ = writeln!(
                        out,
                        "{{\"type\":\"instant\",\"slot\":{},\"kind\":\"{}\",\"a\":{},\"b\":{}}}",
                        i.slot,
                        i.kind.name(),
                        i.a,
                        i.b,
                    );
                }
            }
        }
        let _ = writeln!(
            out,
            "{{\"type\":\"meta\",\"spans\":{},\"instants\":{},\"open_spans\":{},\
             \"dropped_spans\":{},\"dropped_instants\":{}}}",
            self.spans.len(),
            self.instants.len(),
            self.open.len(),
            self.dropped_spans,
            self.dropped_instants,
        );
        out
    }

    /// Chrome tracing / Perfetto export (JSON object format). Time unit is
    /// the flit slot, mapped 1:1 onto microseconds for display; spans carry
    /// `pid` = session and `tid` = destination endpoint so per-session
    /// per-endpoint lanes line up. The top-level `otherData` object carries
    /// the ring-truncation counters (`dropped_spans` / `dropped_instants`).
    pub fn to_chrome_trace(&self) -> String {
        let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
        let mut first = true;
        for s in &self.spans {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(
                out,
                "{{\"name\":\"msg {}\",\"cat\":\"message\",\"ph\":\"X\",\"ts\":{},\
                 \"dur\":{},\"pid\":{},\"tid\":{},\"args\":{{\"src\":{},\
                 \"downstream\":{},\"verdict\":\"{:?}\"}}}}",
                s.key,
                s.inject_slot,
                s.deliver_slot - s.inject_slot,
                s.session,
                s.dst,
                s.src,
                s.downstream,
                s.verdict,
            );
        }
        for i in &self.instants {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(
                out,
                "{{\"name\":\"{}\",\"cat\":\"fabric\",\"ph\":\"i\",\"ts\":{},\"s\":\"g\",\
                 \"pid\":0,\"tid\":0,\"args\":{{\"a\":{},\"b\":{}}}}}",
                i.kind.name(),
                i.slot,
                i.a,
                i.b,
            );
        }
        let _ = write!(
            out,
            "],\"otherData\":{{\"dropped_spans\":{},\"dropped_instants\":{}}}}}",
            self.dropped_spans, self.dropped_instants,
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inject(slot: u64, dst: usize, key: u64) -> InjectEvent {
        InjectEvent {
            slot,
            session: 1,
            src: 0,
            dst,
            downstream: true,
            key,
        }
    }

    #[test]
    fn spans_pair_injection_with_delivery() {
        let mut t = TraceRecorder::new(8);
        t.open_span(inject(10, 3, 42));
        assert_eq!(t.open_spans(), 1);
        t.close_span(35, 3, 42, DeliveryVerdict::InOrder);
        assert_eq!(t.open_spans(), 0);
        let span = t.spans().next().expect("one span");
        assert_eq!(span.inject_slot, 10);
        assert_eq!(span.deliver_slot, 35);
        // A duplicate delivery of the same key closes nothing.
        t.close_span(40, 3, 42, DeliveryVerdict::Unexpected);
        assert_eq!(t.spans().count(), 1);
    }

    #[test]
    fn same_key_different_destination_stays_distinct() {
        let mut t = TraceRecorder::new(8);
        t.open_span(inject(1, 3, 7));
        t.open_span(inject(2, 4, 7));
        t.close_span(9, 4, 7, DeliveryVerdict::InOrder);
        assert_eq!(t.open_spans(), 1);
        assert_eq!(t.spans().next().unwrap().inject_slot, 2);
    }

    #[test]
    fn ring_evicts_oldest_and_counts_drops() {
        let mut t = TraceRecorder::new(2);
        for k in 0..4u64 {
            t.open_span(inject(k, 0, k));
            t.close_span(k + 5, 0, k, DeliveryVerdict::InOrder);
        }
        assert_eq!(t.spans().count(), 2);
        assert_eq!(t.dropped_spans(), 2);
        assert_eq!(t.spans().next().unwrap().key, 2, "oldest evicted first");
        for s in 0..5u64 {
            t.instant(s, InstantKind::Retransmit, 1, 0);
        }
        assert_eq!(t.instants().count(), 2);
        assert_eq!(t.dropped_instants(), 3);
    }

    #[test]
    fn jsonl_is_one_valid_object_per_line_in_slot_order() {
        let mut t = TraceRecorder::new(8);
        t.instant(50, InstantKind::SwitchFail, 2, 17);
        t.open_span(inject(10, 1, 0));
        t.close_span(90, 1, 0, DeliveryVerdict::InOrder);
        let jsonl = t.to_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("\"type\":\"span\""), "{}", lines[0]);
        assert!(lines[0].contains("\"latency\":80"));
        assert!(lines[1].contains("\"kind\":\"switch_fail\""));
        assert!(lines[2].contains("\"type\":\"meta\""), "{}", lines[2]);
        assert!(lines[2].contains("\"dropped_spans\":0"));
        for l in lines {
            assert!(l.starts_with('{') && l.ends_with('}'), "{l}");
        }
    }

    #[test]
    fn exports_surface_ring_truncation() {
        let mut t = TraceRecorder::new(2);
        for k in 0..5u64 {
            t.open_span(inject(k, 0, k));
            t.close_span(k + 3, 0, k, DeliveryVerdict::InOrder);
        }
        let meta = t.to_jsonl();
        let meta_line = meta.lines().last().expect("meta line closes the export");
        assert!(meta_line.contains("\"type\":\"meta\""));
        assert!(meta_line.contains("\"spans\":2"));
        assert!(meta_line.contains("\"dropped_spans\":3"), "{meta_line}");
        let chrome = t.to_chrome_trace();
        assert!(
            chrome.contains("\"otherData\":{\"dropped_spans\":3,\"dropped_instants\":0}"),
            "{chrome}"
        );
    }

    #[test]
    fn chrome_trace_has_complete_and_instant_events() {
        let mut t = TraceRecorder::new(8);
        t.open_span(inject(10, 1, 0));
        t.close_span(90, 1, 0, DeliveryVerdict::InOrder);
        t.instant(55, InstantKind::Epoch, 1, 0);
        let json = t.to_chrome_trace();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"traceEvents\":["));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"dur\":80"));
        assert!(json.contains("\"ph\":\"i\""));
        assert!(json.contains("\"name\":\"epoch\""));
    }
}
