//! Request-scale observability: per-request span tracing over the probe
//! seam, straggler attribution, the open-system request sweep driver, and
//! the operating-point recommender.
//!
//! `rxl-load`'s [`RequestGenerator`] maps an open-loop arrival process into
//! fanout cohorts of message spans; this module closes the loop on the
//! observation side:
//!
//! * [`RequestProbe`] — a [`rxl_fabric::Probe`] that joins engine delivery
//!   events back to requests through the trial's [`RequestMap`], records a
//!   request completion at the **max** of its shard deliveries, attributes
//!   each completion's critical path to the straggling shard's session, and
//!   folds request-level latency/availability into a
//!   [`WindowedTelemetry`] (plus, optionally, per-shard spans and
//!   `request_complete` instants into a bounded [`TraceRecorder`]).
//! * [`RequestSweep`] — the open-system ladder driver: per rung, each trial
//!   builds its request workload from the trial seed alone, runs
//!   [`rxl_fabric::FabricSim::run_to_horizon`] (no drain tail), and the
//!   per-trial probes/registries merge exactly in trial order — the whole
//!   report is bit-identical for any rayon worker-thread count.
//! * [`StragglerLink`] — the join between straggler sessions and the
//!   spatial [`BottleneckReport`]: which physical link on the straggling
//!   session's path ranks hottest, i.e. the *link behind the straggler*.
//! * [`OperatingPoint`] — the recommender: the highest ladder load whose
//!   warmup-discarded steady-state request tail meets an [`SloSpec`],
//!   named together with the binding bottleneck link.
//!
//! Per the probe seam's contract none of this touches the trial RNG, so a
//! probed trial is byte-identical to an unprobed one (pinned by
//! `tests/telemetry_neutrality.rs`).

use std::fmt;

use rand::rngs::StdRng;
use rand::SeedableRng;
use rayon::prelude::*;

use rxl_fabric::{
    DeliverEvent, FabricConfig, FabricSim, FabricTopology, InjectEvent, Probe, RoutingTable,
};
use rxl_flit::MESSAGES_PER_FLIT;
use rxl_load::{detect_knee, ArrivalProcess, FanoutShape, LoadPoint, RequestGenerator, RequestMap};
use rxl_sim::trial_seed;
use rxl_transport::{DeliveryVerdict, FailureCounts, FastMap};

use crate::metrics::{BottleneckReport, LinkPressure, MetricsProbe, MetricsRegistry};
use crate::slo::SloSpec;
use crate::trace::{InstantKind, TraceRecorder};
use crate::window::{SteadyStateSummary, WindowedTelemetry};

/// Salt separating the request-arrival RNG stream from the engine's channel
/// RNG and from `rxl_load::sweep`'s message-arrival stream.
const REQUEST_ARRIVAL_SALT: u64 = 0x9E0_5751_CA1E_D000;

/// Per-request join state while shards are in flight.
#[derive(Clone, Debug)]
struct RequestState {
    arrival: u64,
    remaining: u32,
    injected: u32,
    last_deliver: u64,
    straggler_session: u32,
    clean: bool,
}

/// A [`Probe`] folding engine events into request-level telemetry.
///
/// Construction takes the trial's [`RequestMap`] — the request→shard join
/// table — and resolves each delivery's `(dst, key)` span identity back to
/// its request. A request's completion slot is the max of its shard
/// delivery slots; its latency is `completion − arrival`; its critical path
/// is attributed to the session of the shard that delivered last (the
/// *straggler*). Latency lands in the completion slot's window,
/// availability in the arrival slot's window — the same attribution split
/// as the message-level [`crate::SloProbe`].
///
/// [`RequestProbe::merge`] is exact (windowed-telemetry merge plus counter
/// addition), so merging per-trial probes in trial order is
/// thread-count-independent. Traces do not merge — the first trial's trace
/// stands alone.
#[derive(Clone, Debug)]
pub struct RequestProbe {
    fanout: usize,
    shape: String,
    lookup: FastMap<(u64, u64), u32>,
    states: Vec<RequestState>,
    windows: WindowedTelemetry,
    straggler_counts: Vec<u64>,
    completed: u64,
    started: u64,
    inflight: u64,
    peak_inflight: u64,
    trace: Option<TraceRecorder>,
}

impl RequestProbe {
    /// A probe joining deliveries through `map`, with `window_slots`-slot
    /// request-level windows and straggler counts over `sessions` sessions.
    pub fn new(map: &RequestMap, sessions: usize, window_slots: u64) -> Self {
        let mut lookup = FastMap::default();
        let mut states = Vec::with_capacity(map.requests.len());
        for (r, req) in map.requests.iter().enumerate() {
            for shard in &req.shards {
                lookup.insert((shard.dst as u64, shard.key), r as u32);
            }
            states.push(RequestState {
                arrival: req.arrival_slot,
                remaining: req.shards.len() as u32,
                injected: 0,
                last_deliver: 0,
                straggler_session: 0,
                clean: true,
            });
        }
        RequestProbe {
            fanout: map.fanout,
            shape: map.shape.clone(),
            lookup,
            states,
            windows: WindowedTelemetry::new(window_slots),
            straggler_counts: vec![0; sessions],
            completed: 0,
            started: 0,
            inflight: 0,
            peak_inflight: 0,
            trace: None,
        }
    }

    /// Like [`Self::new`], plus a bounded trace of per-shard spans and
    /// `request_complete` instants (`trace_capacity` each, oldest evicted).
    pub fn with_trace(
        map: &RequestMap,
        sessions: usize,
        window_slots: u64,
        trace_capacity: usize,
    ) -> Self {
        RequestProbe {
            trace: Some(TraceRecorder::new(trace_capacity)),
            ..RequestProbe::new(map, sessions, window_slots)
        }
    }

    /// Shards per request.
    pub fn fanout(&self) -> usize {
        self.fanout
    }

    /// Fanout-shape label.
    pub fn shape(&self) -> &str {
        &self.shape
    }

    /// The request-level windowed telemetry.
    pub fn windows(&self) -> &WindowedTelemetry {
        &self.windows
    }

    /// Requests whose every shard was delivered.
    pub fn completed(&self) -> u64 {
        self.completed
    }

    /// Requests with at least one shard injected.
    pub fn started(&self) -> u64 {
        self.started
    }

    /// Requests started but not yet complete.
    pub fn inflight(&self) -> u64 {
        self.inflight
    }

    /// Peak concurrently in-flight requests. After [`Self::merge`] this is
    /// the *sum* of per-trial peaks — the fleet-wide peak with trials
    /// modelled as independent replicas.
    pub fn peak_inflight(&self) -> u64 {
        self.peak_inflight
    }

    /// Completed requests whose critical path ended on each session
    /// (straggler attribution), indexed by session.
    pub fn straggler_counts(&self) -> &[u64] {
        &self.straggler_counts
    }

    /// The trace recorder, if this probe was built with one.
    pub fn trace(&self) -> Option<&TraceRecorder> {
        self.trace.as_ref()
    }

    /// Merges another trial's request telemetry in (exact; panics on
    /// differing window lengths or session counts). Traces do not merge.
    pub fn merge(&mut self, other: &RequestProbe) {
        assert_eq!(
            self.straggler_counts.len(),
            other.straggler_counts.len(),
            "cannot merge probes over different session spaces"
        );
        self.windows.merge(&other.windows);
        for (a, b) in self
            .straggler_counts
            .iter_mut()
            .zip(&other.straggler_counts)
        {
            *a += b;
        }
        self.completed += other.completed;
        self.started += other.started;
        self.inflight += other.inflight;
        self.peak_inflight += other.peak_inflight;
    }

    /// Joins straggler sessions to the spatial bottleneck ranking: for each
    /// session with stragglers, the hottest-ranked physical link on that
    /// session's minimal path — the link behind the straggler. Descending
    /// by count, session ascending on ties.
    pub fn straggler_attribution(
        &self,
        topology: &FabricTopology,
        bottleneck: &BottleneckReport,
    ) -> Vec<StragglerLink> {
        let rank_of = |link: usize| bottleneck.links.iter().position(|l| l.link == link);
        let mut out: Vec<StragglerLink> = self
            .straggler_counts
            .iter()
            .enumerate()
            .filter(|&(_, &count)| count > 0)
            .map(|(session, &count)| {
                let best = session_path_links(topology, session)
                    .into_iter()
                    .min_by_key(|&l| rank_of(l).unwrap_or(usize::MAX))
                    .expect("a session path has at least its endpoint links");
                StragglerLink {
                    session,
                    count,
                    share: count as f64 / self.completed.max(1) as f64,
                    link: best,
                    description: bottleneck
                        .links
                        .iter()
                        .find(|l| l.link == best)
                        .map(|l| l.description.clone())
                        .unwrap_or_default(),
                    bottleneck_rank: rank_of(best),
                }
            })
            .collect();
        out.sort_by(|a, b| b.count.cmp(&a.count).then(a.session.cmp(&b.session)));
        out
    }

    /// Prometheus exposition of the request-level metric families:
    /// `rxl_request_latency_p99` (steady-state request p99, slots),
    /// `rxl_request_inflight` (peak in-flight requests) and
    /// `rxl_request_straggler_link` (completions whose critical path ended
    /// behind each link).
    pub fn prometheus(
        &self,
        topology: &FabricTopology,
        steady: &SteadyStateSummary,
        bottleneck: &BottleneckReport,
    ) -> String {
        use std::fmt::Write;
        let esc = |s: &str| s.replace('\\', "\\\\").replace('"', "\\\"");
        let mut out = String::new();
        let labels = format!("fanout=\"{}\",shape=\"{}\"", self.fanout, esc(&self.shape));
        writeln!(
            out,
            "# HELP rxl_request_latency_p99 steady-state request completion latency p99 (slots)"
        )
        .unwrap();
        writeln!(out, "# TYPE rxl_request_latency_p99 gauge").unwrap();
        writeln!(
            out,
            "rxl_request_latency_p99{{{labels}}} {}",
            steady.stats.p99
        )
        .unwrap();
        writeln!(
            out,
            "# HELP rxl_request_inflight peak in-flight requests (per-trial peaks summed)"
        )
        .unwrap();
        writeln!(out, "# TYPE rxl_request_inflight gauge").unwrap();
        writeln!(
            out,
            "rxl_request_inflight{{{labels}}} {}",
            self.peak_inflight
        )
        .unwrap();
        writeln!(
            out,
            "# HELP rxl_request_straggler_link completed requests whose critical path ended behind this link"
        )
        .unwrap();
        writeln!(out, "# TYPE rxl_request_straggler_link counter").unwrap();
        for s in self.straggler_attribution(topology, bottleneck) {
            writeln!(
                out,
                "rxl_request_straggler_link{{{labels},link=\"{}\",session=\"{}\"}} {}",
                esc(&s.description),
                s.session,
                s.count
            )
            .unwrap();
        }
        out
    }
}

impl Probe for RequestProbe {
    fn on_inject(&mut self, ev: InjectEvent) {
        let Some(&idx) = self.lookup.get(&(ev.dst as u64, ev.key)) else {
            return;
        };
        let state = &mut self.states[idx as usize];
        state.injected += 1;
        if state.injected == 1 {
            self.windows.record_inject(state.arrival);
            self.started += 1;
            self.inflight += 1;
            self.peak_inflight = self.peak_inflight.max(self.inflight);
        }
        if let Some(trace) = &mut self.trace {
            trace.open_span(ev);
        }
    }

    fn on_deliver(&mut self, ev: DeliverEvent) {
        // Remove on first delivery: a duplicate finds no entry, matching the
        // single-span-per-shard semantics.
        if let Some(idx) = self.lookup.remove(&(ev.dst as u64, ev.key)) {
            let state = &mut self.states[idx as usize];
            if ev.verdict != DeliveryVerdict::InOrder {
                state.clean = false;
            }
            if ev.slot >= state.last_deliver {
                state.last_deliver = ev.slot;
                state.straggler_session = ev.session as u32;
            }
            state.remaining -= 1;
            if state.remaining == 0 {
                let latency = state.last_deliver.saturating_sub(state.arrival);
                self.windows.record_latency(state.last_deliver, latency);
                self.windows.record_outcome(state.arrival, state.clean);
                self.straggler_counts[state.straggler_session as usize] += 1;
                self.completed += 1;
                self.inflight -= 1;
                if let Some(trace) = &mut self.trace {
                    trace.instant(
                        state.last_deliver,
                        InstantKind::RequestComplete,
                        idx as u64,
                        latency,
                    );
                }
            }
        }
        if let Some(trace) = &mut self.trace {
            trace.close_span(ev.slot, ev.dst, ev.key, ev.verdict);
        }
    }
}

/// The physical links a session's downstream shard traffic can cross: both
/// endpoint attachment links plus, when host and device sit on different
/// switches, every trunk incident to either switch (covering all minimal
/// routes on the workspace's two-tier fabrics).
fn session_path_links(topology: &FabricTopology, session: usize) -> Vec<usize> {
    let s = &topology.sessions[session];
    let mut links = vec![s.host, s.device];
    let (hs, ds) = (
        topology.endpoints[s.host].switch,
        topology.endpoints[s.device].switch,
    );
    if hs != ds {
        let endpoints = topology.endpoint_count();
        for (i, t) in topology.trunks.iter().enumerate() {
            if t.a.0 == hs || t.b.0 == hs || t.a.0 == ds || t.b.0 == ds {
                links.push(endpoints + i);
            }
        }
    }
    links
}

/// One straggler session joined to the spatial bottleneck ranking.
#[derive(Clone, Debug)]
pub struct StragglerLink {
    /// Session whose shard delivered last.
    pub session: usize,
    /// Completed requests whose critical path ended on this session.
    pub count: u64,
    /// `count / completed requests`.
    pub share: f64,
    /// Dense index of the hottest-ranked link on the session's path.
    pub link: usize,
    /// Human-readable link description.
    pub description: String,
    /// Rank of that link in the [`BottleneckReport`] (0 = hottest fabric
    /// link overall).
    pub bottleneck_rank: Option<usize>,
}

/// Ladder shape of an open-system request sweep.
#[derive(Clone, Debug)]
pub struct RequestSweepConfig {
    /// Offered per-session *message* load ladder, ascending fractions of
    /// line rate in `(0, 1]` — held fixed per rung for any fanout (the
    /// request rate compensates; see [`RequestGenerator`]).
    pub loads: Vec<f64>,
    /// Shards per request (`k`).
    pub fanout: usize,
    /// Shard placement shape.
    pub shape: FanoutShape,
    /// Command queues per shard stream.
    pub cqids: u16,
    /// Monte-Carlo trials per rung.
    pub trials: u64,
    /// Unit-rate request arrival-process template.
    pub arrival: ArrivalProcess,
    /// Slots each trial's arrivals span (the measurement horizon): the
    /// per-rung request count is derived so every rung, light or heavy,
    /// offers arrivals for this long.
    pub measure_slots: u64,
    /// Request-telemetry window length, in slots.
    pub window_slots: u64,
    /// Consecutive settled windows the warmup detector requires.
    pub warmup_run: usize,
    /// Relative p50 tolerance of the warmup detector.
    pub warmup_tolerance: f64,
    /// Per-trial trace capacity (spans + instants); `0` disables tracing.
    pub trace_capacity: usize,
}

impl Default for RequestSweepConfig {
    fn default() -> Self {
        RequestSweepConfig {
            loads: vec![0.05, 0.10, 0.20, 0.40],
            fanout: 4,
            shape: FanoutShape::Uniform,
            cqids: 8,
            trials: 2,
            arrival: ArrivalProcess::poisson(1.0),
            measure_slots: 2_000,
            window_slots: 400,
            warmup_run: 3,
            warmup_tolerance: 0.25,
            trace_capacity: 0,
        }
    }
}

/// One rung of the request-level curve, aggregated over its trials.
#[derive(Clone, Debug)]
pub struct RequestPoint {
    /// Offered per-session message load this rung ran at.
    pub offered_load: f64,
    /// Requests offered per slot (fabric-wide).
    pub offered_requests_per_slot: f64,
    /// Requests offered across all trials.
    pub requests_offered: u64,
    /// Requests fully completed across all trials.
    pub requests_completed: u64,
    /// Requests started but cut by the horizon (the open-system tail).
    pub unresolved: u64,
    /// Simulated slots summed over trials.
    pub slots: u64,
    /// Warmup cut used (first measurement window).
    pub warmup_window: usize,
    /// Warmup-discarded steady-state request summary (exact merge over
    /// trials; horizon = the ladder's shortest trial horizon).
    pub steady: SteadyStateSummary,
    /// Peak in-flight requests (per-trial peaks summed).
    pub peak_inflight: u64,
    /// Straggler sessions joined to the rung's bottleneck ranking.
    pub straggler: Vec<StragglerLink>,
    /// The rung's hottest link.
    pub top_link: Option<LinkPressure>,
    /// The rung's congestion-signature label.
    pub signature: &'static str,
}

/// Everything a rung accumulated, for exports the summary rows drop.
#[derive(Clone, Debug)]
pub struct RequestRung {
    /// Merged request probe (trial-order merge; trial 0's trace).
    pub probe: RequestProbe,
    /// Merged spatial metrics registry.
    pub registry: MetricsRegistry,
    /// Simulated slots summed over trials.
    pub slots: u64,
}

/// The request-level latency-vs-load curve of one open-system sweep.
#[derive(Clone, Debug)]
pub struct RequestSweepReport {
    /// Topology label.
    pub topology: String,
    /// Protocol variant name.
    pub protocol: &'static str,
    /// Fanout-shape label.
    pub shape: String,
    /// Shards per request.
    pub fanout: usize,
    /// Sessions shards were placed on.
    pub loaded_sessions: usize,
    /// One point per ladder rung, in ladder order.
    pub points: Vec<RequestPoint>,
    /// Detected saturation knee, if the ladder crossed one (request-level
    /// [`detect_knee`] over the steady-state summaries).
    pub knee: Option<usize>,
}

impl RequestSweepReport {
    /// Offered load at the detected knee.
    pub fn knee_load(&self) -> Option<f64> {
        self.knee.map(|i| self.points[i].offered_load)
    }

    /// The rungs' steady summaries reshaped as [`LoadPoint`]s so the
    /// message-level knee detector applies unchanged: `efficiency` is the
    /// steady-state request availability (uncompleted requests burn it).
    pub fn as_load_points(&self) -> Vec<LoadPoint> {
        self.points
            .iter()
            .map(|p| LoadPoint {
                offered_load: p.offered_load,
                offered_msgs_per_slot: p.offered_requests_per_slot,
                injected_messages: p.steady.injected,
                delivered_messages: p.steady.hist.count(),
                untracked_deliveries: 0,
                slots: p.slots,
                delivered_per_slot: 0.0,
                efficiency: p.steady.availability,
                drained_trials: 0,
                trials: 0,
                failures: FailureCounts::default(),
                histogram: p.steady.hist.clone(),
                stats: p.steady.stats,
            })
            .collect()
    }
}

impl fmt::Display for RequestSweepReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "== request latency vs offered load: {} · {} · fanout {} · {} shape · {} sessions ==",
            self.topology, self.protocol, self.fanout, self.shape, self.loaded_sessions
        )?;
        writeln!(
            f,
            "{:>6} | {:>8} | {:>9} | {:>6} | {:>6} | {:>6} | {:>7} | {:>7} | straggler",
            "load", "offered", "completed", "avail", "p50", "p99", "p99.9", "max"
        )?;
        writeln!(f, "{}", "-".repeat(100))?;
        for (i, p) in self.points.iter().enumerate() {
            let marker = if self.knee == Some(i) {
                " ← knee"
            } else {
                ""
            };
            let straggler = p
                .straggler
                .first()
                .map(|s| format!("s{} via {}", s.session, s.description))
                .unwrap_or_else(|| "-".to_string());
            writeln!(
                f,
                "{:>6.2} | {:>8} | {:>9} | {:>6.3} | {:>6} | {:>6} | {:>7} | {:>7} | {}{}",
                p.offered_load,
                p.requests_offered,
                p.requests_completed,
                p.steady.availability,
                p.steady.stats.p50,
                p.steady.stats.p99,
                p.steady.stats.p999,
                p.steady.stats.max,
                straggler,
                marker
            )?;
        }
        Ok(())
    }
}

/// The open-system request sweep driver.
///
/// Unlike [`rxl_load::LoadSweep`], which drains every trial to completion,
/// each trial here runs [`FabricSim::run_to_horizon`] — the run stops at
/// its measurement horizon with work still in flight, and only complete,
/// warmup-discarded windows count (see
/// [`WindowedTelemetry::steady_state`]). Everything derives from
/// `(config.seed, global_trial)` alone, trials shard over rayon, and merges
/// happen in trial order — bit-identical for any worker-thread count.
#[derive(Clone, Debug)]
pub struct RequestSweep {
    topology: FabricTopology,
    config: FabricConfig,
    sweep: RequestSweepConfig,
}

impl RequestSweep {
    /// Creates a sweep over `topology` with per-trial engine `config`.
    pub fn new(topology: FabricTopology, config: FabricConfig, sweep: RequestSweepConfig) -> Self {
        topology.validate();
        assert!(!sweep.loads.is_empty(), "the load ladder must not be empty");
        assert!(
            sweep.loads.iter().all(|&l| l > 0.0 && l <= 1.0),
            "loads must be fractions of line rate in (0, 1]"
        );
        assert!(
            sweep.loads.windows(2).all(|w| w[0] < w[1]),
            "the load ladder must be strictly ascending"
        );
        assert!(sweep.fanout >= 1 && sweep.trials > 0 && sweep.measure_slots > 0);
        RequestSweep {
            topology,
            config,
            sweep,
        }
    }

    /// The topology under test.
    pub fn topology(&self) -> &FabricTopology {
        &self.topology
    }

    /// Requests per trial at `load`: enough arrivals to span
    /// `measure_slots`, never fewer than one.
    fn requests_for(&self, load: f64, loaded: usize) -> usize {
        let rate = load * loaded as f64 / self.sweep.fanout as f64;
        let per_slot = rate * MESSAGES_PER_FLIT as f64;
        ((self.sweep.measure_slots as f64 * per_slot).ceil() as usize).max(1)
    }

    /// Runs the ladder. See [`Self::run_detailed`] for the per-rung
    /// accumulators the summary rows drop.
    pub fn run(&self) -> RequestSweepReport {
        self.run_detailed().0
    }

    /// Runs the ladder and additionally returns each rung's merged probe
    /// and metrics registry (for Prometheus/trace exports).
    pub fn run_detailed(&self) -> (RequestSweepReport, Vec<RequestRung>) {
        let routing = RoutingTable::new(&self.topology);
        let loaded = self.sweep.shape.loaded_sessions(&self.topology);
        let mut points = Vec::with_capacity(self.sweep.loads.len());
        let mut rungs = Vec::with_capacity(self.sweep.loads.len());
        for (pi, &load) in self.sweep.loads.iter().enumerate() {
            let requests = self.requests_for(load, loaded.len());
            let generator = RequestGenerator {
                fanout: self.sweep.fanout,
                requests,
                shape: self.sweep.shape,
                arrival: self.sweep.arrival,
                cqids: self.sweep.cqids,
            };
            let trials: Vec<(RequestProbe, MetricsRegistry, u64, u64)> = (0..self.sweep.trials)
                .into_par_iter()
                .map(|trial| {
                    let global = pi as u64 * self.sweep.trials + trial;
                    self.run_trial(&routing, &generator, load, global)
                })
                .collect();

            let mut iter = trials.into_iter();
            let (mut probe, mut registry, mut slots, mut horizon) =
                iter.next().expect("at least one trial");
            for (p, r, s, h) in iter {
                probe.merge(&p);
                registry.merge(&r);
                slots += s;
                // The merged steady state may only count windows every
                // trial measured completely.
                horizon = horizon.min(h);
            }

            let warmup = probe
                .windows()
                .warmup_window(self.sweep.warmup_run, self.sweep.warmup_tolerance)
                .unwrap_or(1)
                .max(1);
            let steady = probe.windows().steady_state(warmup, horizon);
            let bottleneck = BottleneckReport::analyze(&self.topology, &registry, slots);
            let straggler = probe.straggler_attribution(&self.topology, &bottleneck);
            points.push(RequestPoint {
                offered_load: load,
                offered_requests_per_slot: load * loaded.len() as f64 / self.sweep.fanout as f64
                    * MESSAGES_PER_FLIT as f64,
                requests_offered: requests as u64 * self.sweep.trials,
                requests_completed: probe.completed(),
                unresolved: probe.inflight(),
                slots,
                warmup_window: warmup,
                steady,
                peak_inflight: probe.peak_inflight(),
                straggler,
                top_link: bottleneck.links.first().cloned(),
                signature: bottleneck.signature.label(),
            });
            rungs.push(RequestRung {
                probe,
                registry,
                slots,
            });
        }

        let mut report = RequestSweepReport {
            topology: self.topology.name.clone(),
            protocol: self.config.variant.name(),
            shape: self.sweep.shape.label(),
            fanout: self.sweep.fanout,
            loaded_sessions: loaded.len(),
            points,
            knee: None,
        };
        report.knee = detect_knee(&report.as_load_points());
        (report, rungs)
    }

    /// One open-system trial: build the request workload from the trial
    /// seed, run to the horizon (no drain tail), hand back the probes.
    fn run_trial(
        &self,
        routing: &RoutingTable,
        generator: &RequestGenerator,
        load: f64,
        global_trial: u64,
    ) -> (RequestProbe, MetricsRegistry, u64, u64) {
        let engine_seed = trial_seed(self.config.seed, global_trial);
        let mut arrival_rng = StdRng::seed_from_u64(trial_seed(
            self.config.seed ^ REQUEST_ARRIVAL_SALT,
            global_trial,
        ));
        let (workload, pacing, map) =
            generator.build(&self.topology, load, engine_seed, &mut arrival_rng);
        // One window of slack past the last arrival so completions near the
        // measurement boundary land; the final partial window is dropped by
        // the steady-state fold either way.
        let horizon = map.last_arrival() + self.sweep.window_slots;
        let sessions = self.topology.session_count();
        let request_probe = if self.sweep.trace_capacity > 0 {
            RequestProbe::with_trace(
                &map,
                sessions,
                self.sweep.window_slots,
                self.sweep.trace_capacity,
            )
        } else {
            RequestProbe::new(&map, sessions, self.sweep.window_slots)
        };
        let metrics = MetricsProbe::for_topology(&self.topology, self.config.vc_count);
        let config = FabricConfig {
            seed: engine_seed,
            max_slots: u64::MAX,
            ..self.config
        };
        let mut sim =
            FabricSim::with_probe(&self.topology, routing, config, (request_probe, metrics));
        sim.begin_paced(&workload, &pacing);
        let _ = sim.run_to_horizon(horizon);
        let (report, (request_probe, metrics)) = sim.finish_with_probe();
        (
            request_probe,
            metrics.into_registry(),
            report.slots,
            horizon,
        )
    }
}

/// The operating-point recommendation: the highest ladder load whose
/// steady-state request tail meets the SLO, plus the binding bottleneck
/// link at the first rung that does not.
#[derive(Clone, Debug)]
pub struct OperatingPoint {
    /// Latency threshold applied to the steady-state request p99 (slots).
    pub slo_threshold_slots: u64,
    /// Availability objective applied to the steady-state request
    /// availability.
    pub availability_objective: f64,
    /// Highest ladder load meeting both objectives (`None` if the lightest
    /// rung already violates).
    pub max_safe_load: Option<f64>,
    /// Steady request p99 at [`Self::max_safe_load`].
    pub max_safe_p99: Option<u64>,
    /// The first ladder load violating the SLO, if any.
    pub binding_load: Option<f64>,
    /// The hottest link at the binding rung (or the ladder's top rung when
    /// nothing violates) — the binding physical constraint.
    pub binding_link: Option<LinkPressure>,
    /// Offered load at the detected request-level knee.
    pub knee_load: Option<f64>,
    /// The recommendation, as an operator-facing sentence.
    pub summary: String,
}

impl OperatingPoint {
    /// Recommends an operating point from a sweep report. Rungs are judged
    /// on their warmup-discarded steady state: request p99 within
    /// `slo.latency_threshold_slots` and availability within
    /// `slo.availability_objective`. The safe region is the ladder prefix
    /// before the first violation.
    pub fn recommend(report: &RequestSweepReport, slo: &SloSpec) -> OperatingPoint {
        let meets = |p: &RequestPoint| {
            p.steady.stats.p99 <= slo.latency_threshold_slots
                && p.steady.availability >= slo.availability_objective
        };
        let first_bad = report.points.iter().position(|p| !meets(p));
        let safe_idx = match first_bad {
            Some(0) => None,
            Some(i) => Some(i - 1),
            None => report.points.len().checked_sub(1),
        };
        let binding_idx = first_bad
            .or(report.knee)
            .or_else(|| report.points.len().checked_sub(1));
        let binding_link = binding_idx.and_then(|i| report.points[i].top_link.clone());
        let constraint = binding_link
            .as_ref()
            .map(|l| l.description.clone())
            .unwrap_or_else(|| "unknown".to_string());
        let summary = match safe_idx {
            Some(i) => {
                let p = &report.points[i];
                format!(
                    "max safe offered load {:.2} at fanout {}: steady request p99 {} ≤ SLO {} slots, availability {:.4}; binding constraint: {}",
                    p.offered_load,
                    report.fanout,
                    p.steady.stats.p99,
                    slo.latency_threshold_slots,
                    p.steady.availability,
                    constraint
                )
            }
            None => format!(
                "no ladder rung meets the request SLO (p99 ≤ {} slots); binding constraint: {}",
                slo.latency_threshold_slots, constraint
            ),
        };
        OperatingPoint {
            slo_threshold_slots: slo.latency_threshold_slots,
            availability_objective: slo.availability_objective,
            max_safe_load: safe_idx.map(|i| report.points[i].offered_load),
            max_safe_p99: safe_idx.map(|i| report.points[i].steady.stats.p99),
            binding_load: first_bad.map(|i| report.points[i].offered_load),
            binding_link,
            knee_load: report.knee_load(),
            summary,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rxl_link::{ChannelErrorModel, ProtocolVariant};
    use rxl_load::{RequestSpec, ShardRef};

    fn tiny_map() -> RequestMap {
        RequestMap {
            fanout: 2,
            shape: "uniform".to_string(),
            requests: vec![
                RequestSpec {
                    arrival_slot: 10,
                    shards: vec![
                        ShardRef {
                            session: 0,
                            dst: 4,
                            key: 100,
                        },
                        ShardRef {
                            session: 1,
                            dst: 5,
                            key: 200,
                        },
                    ],
                },
                RequestSpec {
                    arrival_slot: 30,
                    shards: vec![
                        ShardRef {
                            session: 2,
                            dst: 6,
                            key: 300,
                        },
                        ShardRef {
                            session: 3,
                            dst: 7,
                            key: 400,
                        },
                    ],
                },
            ],
            loaded_sessions: vec![0, 1, 2, 3],
        }
    }

    fn inject(slot: u64, session: usize, dst: usize, key: u64) -> InjectEvent {
        InjectEvent {
            slot,
            session,
            src: 0,
            dst,
            downstream: true,
            key,
        }
    }

    fn deliver(slot: u64, session: usize, dst: usize, key: u64) -> DeliverEvent {
        DeliverEvent {
            slot,
            session,
            dst,
            downstream: true,
            key,
            verdict: DeliveryVerdict::InOrder,
        }
    }

    #[test]
    fn request_completes_at_the_max_shard_and_names_the_straggler() {
        let map = tiny_map();
        let mut p = RequestProbe::with_trace(&map, 4, 100, 32);
        p.on_inject(inject(10, 0, 4, 100));
        p.on_inject(inject(10, 1, 5, 200));
        assert_eq!(p.started(), 1);
        assert_eq!(p.inflight(), 1);
        p.on_deliver(deliver(40, 0, 4, 100));
        assert_eq!(p.completed(), 0, "one shard outstanding");
        p.on_deliver(deliver(95, 1, 5, 200));
        assert_eq!(p.completed(), 1);
        assert_eq!(p.inflight(), 0);
        assert_eq!(p.straggler_counts(), &[0, 1, 0, 0]);
        let stats = p.windows().stats();
        // Arrival window 0: injected + clean; completion latency 85 lands
        // in the delivery window.
        assert_eq!(stats[0].injected, 1);
        assert_eq!(stats[0].clean, 1);
        assert_eq!(stats[0].latency.max, 85);
        let trace = p.trace().expect("trace enabled");
        assert_eq!(trace.spans().count(), 2, "one span per shard");
        assert!(trace.to_jsonl().contains("\"kind\":\"request_complete\""));
    }

    #[test]
    fn merge_is_exact_and_sums_counters() {
        let map = tiny_map();
        let mut a = RequestProbe::new(&map, 4, 100);
        a.on_inject(inject(10, 0, 4, 100));
        a.on_inject(inject(10, 1, 5, 200));
        a.on_deliver(deliver(20, 0, 4, 100));
        a.on_deliver(deliver(25, 1, 5, 200));
        let mut b = RequestProbe::new(&map, 4, 100);
        b.on_inject(inject(30, 2, 6, 300));
        b.on_inject(inject(30, 3, 7, 400));
        b.on_deliver(deliver(55, 3, 7, 400));
        b.on_deliver(deliver(90, 2, 6, 300));
        a.merge(&b);
        assert_eq!(a.completed(), 2);
        assert_eq!(a.straggler_counts(), &[0, 1, 1, 0]);
        assert_eq!(a.windows().stats()[0].injected, 2);
    }

    fn pod_sweep(loads: Vec<f64>, shape: FanoutShape, fanout: usize) -> RequestSweep {
        RequestSweep::new(
            FabricTopology::leaf_spine(2, 1, 2),
            FabricConfig::new(ProtocolVariant::Rxl)
                .with_channel(ChannelErrorModel::ideal())
                .with_seed(0x5E47),
            RequestSweepConfig {
                loads,
                fanout,
                shape,
                trials: 1,
                measure_slots: 1_200,
                window_slots: 300,
                ..RequestSweepConfig::default()
            },
        )
    }

    #[test]
    fn open_system_sweep_measures_steady_windows_and_amplifies_with_load() {
        let report = pod_sweep(vec![0.05, 0.40], FanoutShape::Uniform, 2).run();
        assert_eq!(report.points.len(), 2);
        for p in &report.points {
            assert!(p.requests_completed > 0);
            assert!(p.steady.windows_used >= 1, "steady windows measured");
            assert!(p.warmup_window >= 1, "warmup excluded");
            assert!(p.steady.hist.count() > 0);
            assert!(!p.straggler.is_empty());
        }
        assert!(
            report.points[1].steady.stats.p99 >= report.points[0].steady.stats.p99,
            "request tail grows with load"
        );
        assert!(report
            .to_string()
            .contains("request latency vs offered load"));
    }

    #[test]
    fn operating_point_names_the_incast_uplink_on_a_shallow_pod() {
        let topology = FabricTopology::leaf_spine(2, 1, 2);
        let uplink = topology.trunk_between(0, 2).expect("leaf0→spine trunk");
        let sweep = RequestSweep::new(
            topology,
            FabricConfig {
                queue_capacity: 8,
                ..FabricConfig::new(ProtocolVariant::Rxl)
                    .with_channel(ChannelErrorModel::ideal())
                    .with_seed(0x407_5707)
            },
            RequestSweepConfig {
                loads: vec![0.05, 0.60],
                fanout: 2,
                shape: FanoutShape::Incast { leaf: 1 },
                trials: 1,
                measure_slots: 1_500,
                window_slots: 300,
                ..RequestSweepConfig::default()
            },
        );
        let (report, rungs) = sweep.run_detailed();
        let op = OperatingPoint::recommend(&report, &SloSpec::default());
        let binding = op.binding_link.as_ref().expect("a binding link");
        assert_eq!(
            binding.link,
            uplink.index(),
            "binding constraint must be the leaf0→spine uplink, got {}",
            binding.description
        );
        assert!(op.summary.contains(&binding.description));
        // The Prometheus exposition carries all three request families.
        let rung = &rungs[1];
        let bottleneck = BottleneckReport::analyze(sweep.topology(), &rung.registry, rung.slots);
        let steady = report.points[1].steady.clone();
        let page = rung
            .probe
            .prometheus(sweep.topology(), &steady, &bottleneck);
        assert!(page.contains("rxl_request_latency_p99{fanout=\"2\""));
        assert!(page.contains("rxl_request_inflight{"));
        assert!(page.contains("rxl_request_straggler_link{"));
    }
}
