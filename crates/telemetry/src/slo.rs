//! SLO burn accounting: error budgets, multi-window burn rates, incident
//! scoring.
//!
//! An SLO pairs an objective ("99.9% of deliveries under 600 slots",
//! "99.9% of offered messages served cleanly") with an error budget (the
//! allowed 0.1%). The **burn rate** of a window is its error rate divided
//! by the budget: burn 1.0 spends the budget exactly at the sustainable
//! pace, burn 14.4 exhausts a 30-day budget in two days — the classic
//! fast-page threshold. Scoring a chaos scenario this way turns "the storm
//! epoch had 37 failures" into "the storm burned 120× budget for four
//! windows and recovery took 1,800 slots", which is the judgement an
//! operator actually makes.
//!
//! Alerting follows the multi-window, multi-burn-rate pattern: a *fast*
//! alert (page) needs a high burn sustained over a short trailing span of
//! windows **and** in the current window (so it arms fast and disarms as
//! soon as the burn stops); a *slow* alert (ticket) needs a lower burn over
//! a longer trailing span.

use crate::window::{WindowAccum, WindowedTelemetry};
use rxl_chaos::Scenario;

/// Latency + availability objectives and the burn-rate alert policy.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SloSpec {
    /// A delivery is an SLO violation if its injection→delivery latency
    /// exceeds this many slots.
    pub latency_threshold_slots: u64,
    /// Fraction of deliveries that must meet the threshold (e.g. `0.999`).
    pub latency_objective: f64,
    /// Fraction of offered messages that must resolve cleanly (e.g.
    /// `0.999`).
    pub availability_objective: f64,
    /// Trailing windows the fast (page) alert averages over.
    pub fast_windows: usize,
    /// Trailing windows the slow (ticket) alert averages over.
    pub slow_windows: usize,
    /// Fast-alert burn threshold (14.4 ≈ a 30-day budget in 2 days).
    pub fast_burn: f64,
    /// Slow-alert burn threshold (6.0 ≈ a 30-day budget in 5 days).
    pub slow_burn: f64,
}

impl Default for SloSpec {
    fn default() -> Self {
        SloSpec {
            latency_threshold_slots: 600,
            latency_objective: 0.999,
            availability_objective: 0.999,
            fast_windows: 3,
            slow_windows: 12,
            fast_burn: 14.4,
            slow_burn: 6.0,
        }
    }
}

impl SloSpec {
    fn latency_budget(&self) -> f64 {
        (1.0 - self.latency_objective).max(f64::MIN_POSITIVE)
    }

    fn availability_budget(&self) -> f64 {
        (1.0 - self.availability_objective).max(f64::MIN_POSITIVE)
    }
}

/// One window's burn rates and alert state.
#[derive(Clone, Copy, Debug)]
pub struct WindowBurn {
    /// Window index.
    pub index: usize,
    /// First slot of the window.
    pub start_slot: u64,
    /// Latency burn: fraction of the window's deliveries over the threshold,
    /// divided by the latency error budget (0.0 for a window with no
    /// deliveries).
    pub latency_burn: f64,
    /// Availability burn: the window's unavailability divided by the
    /// availability error budget (0.0 for a window with no arrivals).
    pub availability_burn: f64,
    /// `max(latency_burn, availability_burn)` — the figure the alerts and
    /// incident scores consume.
    pub burn: f64,
    /// Fast (page) alert: burn ≥ `fast_burn` averaged over the trailing
    /// `fast_windows` *and* in this window.
    pub fast_alert: bool,
    /// Slow (ticket) alert: burn ≥ `slow_burn` averaged over the trailing
    /// `slow_windows` *and* in this window.
    pub slow_alert: bool,
}

fn window_burns(spec: &SloSpec, w: &WindowAccum) -> (f64, f64) {
    let deliveries = w.hist.count();
    let latency_burn = if deliveries == 0 {
        0.0
    } else {
        let violations = w.hist.count_above(spec.latency_threshold_slots);
        (violations as f64 / deliveries as f64) / spec.latency_budget()
    };
    let availability_burn = if w.injected == 0 {
        0.0
    } else {
        let unavailability = 1.0 - w.clean as f64 / w.injected as f64;
        unavailability / spec.availability_budget()
    };
    (latency_burn, availability_burn)
}

/// Computes the per-window burn series and alert states of `telemetry`
/// under `spec`, in window order.
pub fn burn_series(spec: &SloSpec, telemetry: &WindowedTelemetry) -> Vec<WindowBurn> {
    assert!(spec.fast_windows > 0 && spec.slow_windows > 0);
    let windows = telemetry.windows();
    let mut burns: Vec<WindowBurn> = Vec::with_capacity(windows.len());
    let combined: Vec<f64> = windows
        .iter()
        .map(|w| {
            let (l, a) = window_burns(spec, w);
            l.max(a)
        })
        .collect();
    let trailing_mean = |upto: usize, span: usize| {
        let from = (upto + 1).saturating_sub(span);
        let slice = &combined[from..=upto];
        slice.iter().sum::<f64>() / slice.len() as f64
    };
    for (index, w) in windows.iter().enumerate() {
        let (latency_burn, availability_burn) = window_burns(spec, w);
        let burn = combined[index];
        burns.push(WindowBurn {
            index,
            start_slot: index as u64 * telemetry.window_slots(),
            latency_burn,
            availability_burn,
            burn,
            fast_alert: burn >= spec.fast_burn
                && trailing_mean(index, spec.fast_windows) >= spec.fast_burn,
            slow_alert: burn >= spec.slow_burn
                && trailing_mean(index, spec.slow_windows) >= spec.slow_burn,
        });
    }
    burns
}

/// How a scenario scored as an incident: burn during and after, recovery
/// time, alert coverage.
#[derive(Clone, Copy, Debug)]
pub struct IncidentScore {
    /// First slot any scenario event fires.
    pub incident_start: u64,
    /// Last scenario boundary below the horizon (the final event start or
    /// expiry; equals `incident_start` for a single permanent event).
    pub incident_end: u64,
    /// Mean combined burn over the windows intersecting
    /// `[incident_start, incident_end]`.
    pub burn_during: f64,
    /// Mean combined burn over the windows strictly after `incident_end`.
    pub burn_after: f64,
    /// Largest combined single-window burn anywhere in the series.
    pub peak_burn: f64,
    /// Slots from `incident_end` until the start of the first post-incident
    /// window that begins a run of two consecutive windows with burn ≤ 1
    /// (sustainably inside budget). `None` if the series never recovers.
    pub time_to_recovery_slots: Option<u64>,
    /// Windows with the fast (page) alert firing.
    pub fast_alert_windows: usize,
    /// Windows with the slow (ticket) alert firing.
    pub slow_alert_windows: usize,
}

/// The slot interval a scenario's events span: first event start to last
/// boundary (event start or expiry) below `horizon`. `None` for an empty
/// scenario.
pub fn incident_interval(scenario: &Scenario, horizon: u64) -> Option<(u64, u64)> {
    let start = scenario.events.iter().map(|te| te.at_slot).min()?;
    let bounds = scenario.boundaries(horizon);
    let end = bounds[..bounds.len() - 1]
        .last()
        .copied()
        .unwrap_or(start)
        .max(start);
    Some((start, end))
}

/// Scores a burn series as an incident replay over
/// `[incident_start, incident_end]` (slots). `window_slots` is the window
/// length the series was built with.
pub fn score_incident(
    burns: &[WindowBurn],
    window_slots: u64,
    incident_start: u64,
    incident_end: u64,
) -> IncidentScore {
    let mut during = (0.0, 0u64);
    let mut after = (0.0, 0u64);
    let mut peak = 0.0f64;
    let (mut fast, mut slow) = (0usize, 0usize);
    for b in burns {
        let w_start = b.start_slot;
        let w_end = w_start + window_slots - 1;
        peak = peak.max(b.burn);
        fast += usize::from(b.fast_alert);
        slow += usize::from(b.slow_alert);
        if w_end >= incident_start && w_start <= incident_end {
            during.0 += b.burn;
            during.1 += 1;
        } else if w_start > incident_end {
            after.0 += b.burn;
            after.1 += 1;
        }
    }
    // Recovery: the first post-incident window starting a run of two
    // consecutive in-budget windows (burn ≤ 1). A final lone window also
    // counts — there is nothing after it to contradict the recovery.
    let mut recovery = None;
    for (i, b) in burns.iter().enumerate() {
        if b.start_slot <= incident_end || b.burn > 1.0 {
            continue;
        }
        if burns.get(i + 1).is_none_or(|next| next.burn <= 1.0) {
            recovery = Some(b.start_slot - incident_end);
            break;
        }
    }
    IncidentScore {
        incident_start,
        incident_end,
        burn_during: if during.1 > 0 {
            during.0 / during.1 as f64
        } else {
            0.0
        },
        burn_after: if after.1 > 0 {
            after.0 / after.1 as f64
        } else {
            0.0
        },
        peak_burn: peak,
        time_to_recovery_slots: recovery,
        fast_alert_windows: fast,
        slow_alert_windows: slow,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> SloSpec {
        SloSpec {
            latency_threshold_slots: 100,
            latency_objective: 0.9,
            availability_objective: 0.9,
            fast_windows: 2,
            slow_windows: 4,
            fast_burn: 5.0,
            slow_burn: 2.0,
        }
    }

    /// Build: 2 clean windows, 2 outage windows, 2 clean windows.
    fn storm_series() -> WindowedTelemetry {
        let mut t = WindowedTelemetry::new(100);
        for w in 0..6u64 {
            let base = w * 100;
            let outage = (2..4).contains(&w);
            for i in 0..10u64 {
                let slot = base + i;
                t.record_inject(slot);
                if outage && i < 8 {
                    // 8 of 10 messages lost: availability 0.2.
                    continue;
                }
                let latency = if outage { 400 } else { 10 };
                t.record_outcome(slot, true);
                t.record_latency(slot + latency, latency);
            }
        }
        t
    }

    #[test]
    fn burn_spikes_in_the_outage_windows() {
        let t = storm_series();
        let burns = burn_series(&spec(), &t);
        // Clean windows sit inside budget.
        assert!(burns[0].burn <= 1.0, "{:?}", burns[0]);
        assert!(burns[1].burn <= 1.0);
        // Outage windows burn hard: 80% unavailable against a 10% budget.
        assert!(burns[2].availability_burn > 7.0, "{:?}", burns[2]);
        assert!(burns[3].availability_burn > 7.0);
        // The slow deliveries land in windows 5–7 and burn the latency SLO.
        assert!(burns.iter().any(|b| b.latency_burn > 5.0));
        // Fast alert fires only once the trailing mean catches up.
        assert!(burns[3].fast_alert, "{:?}", burns[3]);
        assert!(!burns[0].fast_alert && !burns[1].fast_alert);
    }

    #[test]
    fn incident_scoring_separates_during_from_after() {
        let t = storm_series();
        let burns = burn_series(&spec(), &t);
        let score = score_incident(&burns, 100, 200, 399);
        assert!(
            score.burn_during > score.burn_after,
            "during {} after {}",
            score.burn_during,
            score.burn_after
        );
        assert!(score.peak_burn >= 7.0);
        assert!(score.fast_alert_windows >= 1);
        let ttr = score.time_to_recovery_slots.expect("series recovers");
        assert!(ttr > 0 && ttr % 100 == 1, "ttr {ttr}");
    }

    #[test]
    fn incident_interval_spans_event_starts_and_expiries() {
        use rxl_fabric::FabricTopology;
        let t = FabricTopology::leaf_spine(2, 1, 2);
        let uplink = t.trunk_between(0, 2).unwrap();
        let s = Scenario::named("storm").ber_storm(50, 100, vec![uplink], 10.0);
        assert_eq!(incident_interval(&s, 10_000), Some((50, 150)));
        let f = Scenario::named("fail").switch_fail(1_000, 2);
        assert_eq!(incident_interval(&f, 10_000), Some((1_000, 1_000)));
        assert_eq!(incident_interval(&Scenario::named("none"), 100), None);
    }

    #[test]
    fn empty_windows_do_not_burn() {
        let t = WindowedTelemetry::new(10);
        assert!(burn_series(&spec(), &t).is_empty());
        let mut one = WindowedTelemetry::new(10);
        one.record_retransmit(5); // a window with no arrivals or deliveries
        let burns = burn_series(&spec(), &one);
        assert_eq!(burns.len(), 1);
        assert_eq!(burns[0].burn, 0.0);
    }
}
