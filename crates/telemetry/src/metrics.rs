//! Spatial metrics & congestion attribution: per-link/VC heatmaps, a
//! bottleneck analyzer, and the engine self-profiler.
//!
//! PR 7's windowed telemetry is the *temporal* half of observability; this
//! module is the *spatial* half — when the latency knee hits or a storm
//! burns budget, it answers **which trunk, switch, or VC lane** is
//! responsible.
//!
//! * [`MetricsRegistry`] — a fixed-layout, allocation-free counter registry
//!   sized once from the topology: per-link utilization / error /
//!   retransmit counters, per-switch forwarded / credit-stall / blackhole
//!   counters, per-VC-lane occupancy gauges, per-VC-class occupancy
//!   histograms, and an optional link × window traversal heatmap. Exact
//!   merge in trial order ⇒ bit-identical for any worker-thread count, like
//!   every other aggregate in the workspace.
//! * [`MetricsProbe`] — the [`Probe`] implementation feeding the registry
//!   from engine events. A few integer increments per event; never touches
//!   the trial RNG (the seam enforces it), so a metrics-probed trial is
//!   byte-identical to an unprobed one.
//! * [`BottleneckReport`] — ranks links and switches by utilization × stall
//!   pressure and classifies the congestion signature (hotspot / incast /
//!   storm / uniform).
//! * [`AttributedSweep`] — a [`LoadSweep`] run with per-rung attribution:
//!   the knee report names the saturated trunk(s) behind the knee.
//! * [`EngineProfiler`] — per-phase slot-loop wall-clock accounting behind
//!   the `P::ENABLED && P::PROFILE` monomorphization (see
//!   [`Probe::PROFILE`]); replaces the unreliable external-profiler
//!   workflow for "where do the slots go?" questions.
//!
//! # Utilization convention
//!
//! Every physical link is bidirectional and can carry at most one flit per
//! direction per slot, so a link's capacity over a trial is `2 × slots`
//! flit-traversals and `utilization = traversals / (2 × slots)`. Endpoint
//! attachment links see [`rxl_fabric::LinkHop::Inject`] traffic one way and
//! [`rxl_fabric::LinkHop::Deliver`] traffic the other; trunks see
//! [`rxl_fabric::LinkHop::Trunk`] hops from both sides.
//!
//! # Stall attribution
//!
//! The engine charges every credit stall to the output port facing the
//! congested link (for an injection stalled at ingress: the planned escape
//! egress — see [`Probe::on_credit_stall`]). The registry keeps the
//! per-port and per-lane counts; the analyzer folds both sides of each link
//! together, so "312 credit-stall slots" on a trunk means 312 slots in
//! which some flit could not move onto or across that trunk.

use std::fmt;

use rxl_fabric::{
    ChannelErrorEvent, EnginePhase, FabricTopology, LinkHop, LinkTraversalEvent, Probe,
};
use rxl_load::{LatencyHistogram, LoadSweep, LoadSweepReport};

/// Log-bucketed occupancy histogram — the same exact-merge HDR shape the
/// latency pipeline uses, recording queue depths instead of slots.
pub type OccupancyHistogram = LatencyHistogram;

/// Fixed-layout spatial counter registry, sized once from a topology.
///
/// All counters merge exactly ([`MetricsRegistry::merge`]) and the whole
/// struct is `PartialEq`/`Debug`, so Monte-Carlo aggregation in trial order
/// is bit-identical for any thread count (pinned by
/// `tests/telemetry_neutrality.rs`).
#[derive(Clone, Debug, PartialEq)]
pub struct MetricsRegistry {
    vcc: usize,
    endpoints: usize,
    /// Prefix sums of per-switch port counts; `port_base[switches]` is the
    /// fabric's total port count.
    port_base: Vec<usize>,
    link_traversals: Vec<u64>,
    link_inject: Vec<u64>,
    link_deliver: Vec<u64>,
    link_payload: Vec<u64>,
    link_retransmits: Vec<u64>,
    link_corrected: Vec<u64>,
    link_dropped: Vec<u64>,
    switch_forwarded: Vec<u64>,
    switch_stalls: Vec<u64>,
    switch_blackholes: Vec<u64>,
    port_stalls: Vec<u64>,
    lane_stalls: Vec<u64>,
    lane_samples: Vec<u64>,
    lane_occupancy_sum: Vec<u64>,
    lane_peak: Vec<u32>,
    vc_occupancy: Vec<OccupancyHistogram>,
    heat_window: u64,
    heat: Vec<Vec<u64>>,
}

impl MetricsRegistry {
    /// Builds an all-zero registry laid out for `topology` with `vc_count`
    /// virtual channels per output port. The layout (link space, switch
    /// port space, lane space) is fixed here; recording never allocates
    /// except for heatmap window growth when a heatmap is enabled.
    pub fn for_topology(topology: &FabricTopology, vc_count: usize) -> Self {
        assert!(vc_count >= 1, "vc_count must be at least 1");
        let links = topology.link_count();
        let switches = topology.switch_count();
        let mut port_base = Vec::with_capacity(switches + 1);
        let mut total_ports = 0usize;
        for sw in &topology.switches {
            port_base.push(total_ports);
            total_ports += sw.ports;
        }
        port_base.push(total_ports);
        MetricsRegistry {
            vcc: vc_count,
            endpoints: topology.endpoint_count(),
            port_base,
            link_traversals: vec![0; links],
            link_inject: vec![0; links],
            link_deliver: vec![0; links],
            link_payload: vec![0; links],
            link_retransmits: vec![0; links],
            link_corrected: vec![0; links],
            link_dropped: vec![0; links],
            switch_forwarded: vec![0; switches],
            switch_stalls: vec![0; switches],
            switch_blackholes: vec![0; switches],
            port_stalls: vec![0; total_ports],
            lane_stalls: vec![0; total_ports * vc_count],
            lane_samples: vec![0; total_ports * vc_count],
            lane_occupancy_sum: vec![0; total_ports * vc_count],
            lane_peak: vec![0; total_ports * vc_count],
            vc_occupancy: vec![OccupancyHistogram::new(); vc_count],
            heat_window: 0,
            heat: Vec::new(),
        }
    }

    /// Number of physical links in the layout.
    pub fn link_count(&self) -> usize {
        self.link_traversals.len()
    }

    /// Number of switches in the layout.
    pub fn switch_count(&self) -> usize {
        self.switch_forwarded.len()
    }

    /// Virtual channels per output port in the layout.
    pub fn vc_count(&self) -> usize {
        self.vcc
    }

    #[inline]
    fn lane_index(&self, sw: usize, port: usize, vc: usize) -> usize {
        (self.port_base[sw] + port) * self.vcc + vc
    }

    /// Total traversals (both directions) of link `link`.
    pub fn traversals(&self, link: usize) -> u64 {
        self.link_traversals[link]
    }

    /// Injection-direction traversals of link `link` (endpoint → switch;
    /// zero for trunks).
    pub fn inject_traversals(&self, link: usize) -> u64 {
        self.link_inject[link]
    }

    /// Delivery-direction traversals of link `link` (switch → endpoint;
    /// zero for trunks).
    pub fn deliver_traversals(&self, link: usize) -> u64 {
        self.link_deliver[link]
    }

    /// Protocol (payload-bearing) flit traversals of link `link`.
    pub fn payload_traversals(&self, link: usize) -> u64 {
        self.link_payload[link]
    }

    /// Retransmission (go-back-N replay) flit traversals of link `link`.
    pub fn retransmit_traversals(&self, link: usize) -> u64 {
        self.link_retransmits[link]
    }

    /// Channel errors on link `link` the receiving pipeline corrected.
    pub fn corrected_errors(&self, link: usize) -> u64 {
        self.link_corrected[link]
    }

    /// Flits silently dropped as uncorrectable after corruption on `link`.
    pub fn dropped_flits(&self, link: usize) -> u64 {
        self.link_dropped[link]
    }

    /// Utilization of link `link` over `slots` simulated slots: traversals
    /// divided by the link's bidirectional capacity `2 × slots`.
    pub fn utilization(&self, link: usize, slots: u64) -> f64 {
        if slots == 0 {
            return 0.0;
        }
        self.link_traversals[link] as f64 / (2.0 * slots as f64)
    }

    /// Flits switch `sw` forwarded into its output lanes.
    pub fn switch_forwarded(&self, sw: usize) -> u64 {
        self.switch_forwarded[sw]
    }

    /// Credit-stall slots charged to switch `sw` (all its ports).
    pub fn switch_stalls(&self, sw: usize) -> u64 {
        self.switch_stalls[sw]
    }

    /// Flits blackholed at switch `sw` by fault injection.
    pub fn switch_blackholes(&self, sw: usize) -> u64 {
        self.switch_blackholes[sw]
    }

    /// Credit-stall slots charged to output port `(sw, port)`.
    pub fn port_stalls(&self, sw: usize, port: usize) -> u64 {
        self.port_stalls[self.port_base[sw] + port]
    }

    /// Credit-stall slots charged to VC lane `(sw, port, vc)`.
    pub fn lane_stalls(&self, sw: usize, port: usize, vc: usize) -> u64 {
        self.lane_stalls[self.lane_index(sw, port, vc)]
    }

    /// Occupancy samples recorded for VC lane `(sw, port, vc)` — one per
    /// flit buffered into the lane.
    pub fn lane_samples(&self, sw: usize, port: usize, vc: usize) -> u64 {
        self.lane_samples[self.lane_index(sw, port, vc)]
    }

    /// Mean queue depth (post-arrival) of VC lane `(sw, port, vc)` over its
    /// samples; 0 with no samples.
    pub fn lane_mean_occupancy(&self, sw: usize, port: usize, vc: usize) -> f64 {
        let i = self.lane_index(sw, port, vc);
        if self.lane_samples[i] == 0 {
            return 0.0;
        }
        self.lane_occupancy_sum[i] as f64 / self.lane_samples[i] as f64
    }

    /// Peak queue depth seen by VC lane `(sw, port, vc)`.
    pub fn lane_peak_occupancy(&self, sw: usize, port: usize, vc: usize) -> u32 {
        self.lane_peak[self.lane_index(sw, port, vc)]
    }

    /// Fabric-wide occupancy histogram of VC class `vc` (all lanes of that
    /// VC index pooled).
    pub fn vc_occupancy(&self, vc: usize) -> &OccupancyHistogram {
        &self.vc_occupancy[vc]
    }

    /// Heatmap window width in slots; 0 means the heatmap is disabled.
    pub fn heat_window(&self) -> u64 {
        self.heat_window
    }

    /// The link × window traversal heatmap, indexed `[window][link]` —
    /// empty unless a heatmap window was set via
    /// [`MetricsProbe::with_heatmap`].
    pub fn heatmap(&self) -> &[Vec<u64>] {
        &self.heat
    }

    fn record_traversal(&mut self, ev: &LinkTraversalEvent) {
        self.link_traversals[ev.link] += 1;
        match ev.hop {
            LinkHop::Inject => self.link_inject[ev.link] += 1,
            LinkHop::Deliver => self.link_deliver[ev.link] += 1,
            LinkHop::Trunk => {}
        }
        if ev.protocol {
            self.link_payload[ev.link] += 1;
        }
        if ev.retransmission {
            self.link_retransmits[ev.link] += 1;
        }
        if let Some(w) = ev.slot.checked_div(self.heat_window) {
            let w = w as usize;
            if w >= self.heat.len() {
                self.heat.resize(w + 1, vec![0; self.link_traversals.len()]);
            }
            self.heat[w][ev.link] += 1;
        }
    }

    fn record_stall(&mut self, sw: usize, port: Option<usize>, vc: Option<usize>) {
        self.switch_stalls[sw] += 1;
        if let Some(p) = port {
            self.port_stalls[self.port_base[sw] + p] += 1;
            if let Some(v) = vc {
                let i = self.lane_index(sw, p, v);
                self.lane_stalls[i] += 1;
            }
        }
    }

    fn record_occupancy(&mut self, sw: usize, port: usize, vc: usize, occupancy: usize) {
        self.switch_forwarded[sw] += 1;
        let i = self.lane_index(sw, port, vc);
        self.lane_samples[i] += 1;
        self.lane_occupancy_sum[i] += occupancy as u64;
        self.lane_peak[i] = self.lane_peak[i].max(occupancy as u32);
        self.vc_occupancy[vc].record(occupancy as u64);
    }

    fn record_channel_error(&mut self, ev: &ChannelErrorEvent) {
        if ev.dropped {
            self.link_dropped[ev.link] += 1;
        } else {
            self.link_corrected[ev.link] += 1;
        }
    }

    /// Merges another registry of the same layout into this one: counters
    /// add, peaks take the max, histograms merge exactly, heatmaps extend
    /// to the longer run. Merging per-trial registries in trial order
    /// reproduces the single-threaded aggregate bit for bit.
    pub fn merge(&mut self, other: &MetricsRegistry) {
        assert_eq!(self.vcc, other.vcc, "VC layout mismatch");
        assert_eq!(self.port_base, other.port_base, "port layout mismatch");
        assert_eq!(
            self.link_traversals.len(),
            other.link_traversals.len(),
            "link layout mismatch"
        );
        assert_eq!(self.heat_window, other.heat_window, "heat window mismatch");
        fn add(a: &mut [u64], b: &[u64]) {
            for (x, y) in a.iter_mut().zip(b) {
                *x += *y;
            }
        }
        add(&mut self.link_traversals, &other.link_traversals);
        add(&mut self.link_inject, &other.link_inject);
        add(&mut self.link_deliver, &other.link_deliver);
        add(&mut self.link_payload, &other.link_payload);
        add(&mut self.link_retransmits, &other.link_retransmits);
        add(&mut self.link_corrected, &other.link_corrected);
        add(&mut self.link_dropped, &other.link_dropped);
        add(&mut self.switch_forwarded, &other.switch_forwarded);
        add(&mut self.switch_stalls, &other.switch_stalls);
        add(&mut self.switch_blackholes, &other.switch_blackholes);
        add(&mut self.port_stalls, &other.port_stalls);
        add(&mut self.lane_stalls, &other.lane_stalls);
        add(&mut self.lane_samples, &other.lane_samples);
        add(&mut self.lane_occupancy_sum, &other.lane_occupancy_sum);
        for (x, y) in self.lane_peak.iter_mut().zip(&other.lane_peak) {
            *x = (*x).max(*y);
        }
        for (h, o) in self.vc_occupancy.iter_mut().zip(&other.vc_occupancy) {
            h.merge(o);
        }
        if other.heat.len() > self.heat.len() {
            self.heat
                .resize(other.heat.len(), vec![0; self.link_traversals.len()]);
        }
        for (row, orow) in self.heat.iter_mut().zip(&other.heat) {
            add(row, orow);
        }
    }

    /// Prometheus-style text exposition of the registry: one counter/gauge
    /// family per metric class, labelled by link / switch / lane, plus the
    /// derived utilization gauges for `slots` simulated slots. Zero-sample
    /// lanes are skipped to keep the page bounded on big fabrics.
    pub fn prometheus(&self, topology: &FabricTopology, slots: u64) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let esc = |s: &str| s.replace('\\', "\\\\").replace('"', "\\\"");
        writeln!(out, "# HELP rxl_slots_total simulated flit slots").unwrap();
        writeln!(out, "# TYPE rxl_slots_total counter").unwrap();
        writeln!(out, "rxl_slots_total {slots}").unwrap();
        let link_label = |link: usize| {
            let kind = if link < self.endpoints {
                "endpoint"
            } else {
                "trunk"
            };
            format!(
                "link=\"{link}\",kind=\"{kind}\",desc=\"{}\"",
                esc(&topology.describe_link(if link < self.endpoints {
                    topology.endpoint_link(link)
                } else {
                    topology.trunk_link(link - self.endpoints)
                }))
            )
        };
        type LinkFamily<'f> = (&'f str, &'f str, &'f dyn Fn(usize) -> u64);
        let link_families: [LinkFamily; 5] = [
            (
                "rxl_link_traversals_total",
                "flits that crossed the link (both directions)",
                &|l| self.link_traversals[l],
            ),
            (
                "rxl_link_retransmit_flits_total",
                "go-back-N replay flits that crossed the link",
                &|l| self.link_retransmits[l],
            ),
            (
                "rxl_link_payload_flits_total",
                "protocol (payload-bearing) flits that crossed the link",
                &|l| self.link_payload[l],
            ),
            (
                "rxl_link_corrected_errors_total",
                "link corruptions the receiving pipeline corrected",
                &|l| self.link_corrected[l],
            ),
            (
                "rxl_link_dropped_flits_total",
                "flits dropped uncorrectable after corruption on the link",
                &|l| self.link_dropped[l],
            ),
        ];
        for (name, help, get) in link_families {
            writeln!(out, "# HELP {name} {help}").unwrap();
            writeln!(out, "# TYPE {name} counter").unwrap();
            for l in 0..self.link_traversals.len() {
                writeln!(out, "{name}{{{}}} {}", link_label(l), get(l)).unwrap();
            }
        }
        writeln!(
            out,
            "# HELP rxl_link_utilization traversals / (2 x slots), per link"
        )
        .unwrap();
        writeln!(out, "# TYPE rxl_link_utilization gauge").unwrap();
        for l in 0..self.link_traversals.len() {
            writeln!(
                out,
                "rxl_link_utilization{{{}}} {:.6}",
                link_label(l),
                self.utilization(l, slots)
            )
            .unwrap();
        }
        let switch_families: [(&str, &str, &Vec<u64>); 3] = [
            (
                "rxl_switch_forwarded_flits_total",
                "flits the switch forwarded into output lanes",
                &self.switch_forwarded,
            ),
            (
                "rxl_switch_credit_stalls_total",
                "credit-stall slots charged to the switch",
                &self.switch_stalls,
            ),
            (
                "rxl_switch_blackholed_flits_total",
                "flits destroyed at the switch by fault injection",
                &self.switch_blackholes,
            ),
        ];
        for (name, help, values) in switch_families {
            writeln!(out, "# HELP {name} {help}").unwrap();
            writeln!(out, "# TYPE {name} counter").unwrap();
            for (sw, v) in values.iter().enumerate() {
                writeln!(out, "{name}{{switch=\"{sw}\"}} {v}").unwrap();
            }
        }
        writeln!(
            out,
            "# HELP rxl_vc_lane_peak_occupancy peak queue depth of the VC lane"
        )
        .unwrap();
        writeln!(out, "# TYPE rxl_vc_lane_peak_occupancy gauge").unwrap();
        for sw in 0..self.switch_count() {
            let ports = self.port_base[sw + 1] - self.port_base[sw];
            for port in 0..ports {
                for vc in 0..self.vcc {
                    let i = self.lane_index(sw, port, vc);
                    if self.lane_samples[i] == 0 {
                        continue;
                    }
                    writeln!(
                        out,
                        "rxl_vc_lane_peak_occupancy{{switch=\"{sw}\",port=\"{port}\",vc=\"{vc}\"}} {}",
                        self.lane_peak[i]
                    )
                    .unwrap();
                }
            }
        }
        writeln!(
            out,
            "# HELP rxl_vc_class_occupancy_p99 p99 queue depth across all lanes of the VC class"
        )
        .unwrap();
        writeln!(out, "# TYPE rxl_vc_class_occupancy_p99 gauge").unwrap();
        for (vc, h) in self.vc_occupancy.iter().enumerate() {
            writeln!(
                out,
                "rxl_vc_class_occupancy_p99{{vc=\"{vc}\"}} {}",
                h.quantile(0.99)
            )
            .unwrap();
        }
        out
    }
}

/// The spatial-metrics [`Probe`]: feeds a [`MetricsRegistry`] from engine
/// events. Handlers are a few integer increments (plus one histogram bucket
/// update per buffered hop) — cheap enough to ride every `LoadSweep` trial.
#[derive(Clone, Debug, PartialEq)]
pub struct MetricsProbe {
    registry: MetricsRegistry,
}

impl MetricsProbe {
    /// A probe with an all-zero registry laid out for `topology` with
    /// `vc_count` VCs per output port (pass the engine config's
    /// `vc_count`). The heatmap starts disabled.
    pub fn for_topology(topology: &FabricTopology, vc_count: usize) -> Self {
        MetricsProbe {
            registry: MetricsRegistry::for_topology(topology, vc_count),
        }
    }

    /// Enables the link × window traversal heatmap with windows of
    /// `window_slots` slots.
    pub fn with_heatmap(mut self, window_slots: u64) -> Self {
        assert!(window_slots > 0, "heat window must be positive");
        self.registry.heat_window = window_slots;
        self
    }

    /// The registry accumulated so far.
    pub fn registry(&self) -> &MetricsRegistry {
        &self.registry
    }

    /// Consumes the probe, handing the registry back.
    pub fn into_registry(self) -> MetricsRegistry {
        self.registry
    }
}

impl Probe for MetricsProbe {
    fn on_link_traversal(&mut self, ev: LinkTraversalEvent) {
        self.registry.record_traversal(&ev);
    }

    fn on_credit_stall(
        &mut self,
        _slot: u64,
        switch: usize,
        port: Option<usize>,
        vc: Option<usize>,
    ) {
        self.registry.record_stall(switch, port, vc);
    }

    fn on_vc_occupancy(&mut self, _slot: u64, switch: usize, port: usize, vc: usize, occ: usize) {
        self.registry.record_occupancy(switch, port, vc, occ);
    }

    fn on_channel_error(&mut self, ev: ChannelErrorEvent) {
        self.registry.record_channel_error(&ev);
    }

    fn on_blackhole(&mut self, _slot: u64, switch: usize) {
        self.registry.switch_blackholes[switch] += 1;
    }
}

/// Congestion signature classes the bottleneck analyzer distinguishes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CongestionSignature {
    /// The top link's error/retransmit rate dominates: a link-quality storm
    /// (retransmission pressure), not an offered-load problem.
    Storm,
    /// The top-pressure link is an endpoint attachment link: traffic
    /// converging on a destination faster than it can sink it.
    Incast,
    /// A small subset of links runs far hotter than the fabric median:
    /// localized overload of specific trunks.
    Hotspot,
    /// Load (and any congestion) is spread evenly — no single spatial
    /// culprit.
    Uniform,
}

impl CongestionSignature {
    /// Short lowercase label for tables and JSON.
    pub fn label(self) -> &'static str {
        match self {
            CongestionSignature::Storm => "storm",
            CongestionSignature::Incast => "incast",
            CongestionSignature::Hotspot => "hotspot",
            CongestionSignature::Uniform => "uniform",
        }
    }
}

/// One link's pressure summary, as ranked by [`BottleneckReport::analyze`].
#[derive(Clone, Debug, PartialEq)]
pub struct LinkPressure {
    /// Dense link index ([`rxl_fabric::topology::LinkId::index`]).
    pub link: usize,
    /// Human-readable link description from the topology.
    pub description: String,
    /// `true` for endpoint attachment links, `false` for trunks.
    pub endpoint_link: bool,
    /// Total traversals (both directions).
    pub traversals: u64,
    /// Traversals / (2 × slots).
    pub utilization: f64,
    /// Credit-stall slots charged to the ports facing this link (both
    /// sides folded together).
    pub stall_slots: u64,
    /// Channel errors on the link (corrected + dropped).
    pub errors: u64,
    /// Retransmission flits across the link.
    pub retransmits: u64,
    /// Ranking score: `utilization × (1 + stall_slots / slots)`.
    pub score: f64,
}

/// One switch's pressure summary.
#[derive(Clone, Debug, PartialEq)]
pub struct SwitchPressure {
    /// Switch index.
    pub switch: usize,
    /// Flits forwarded into the switch's output lanes.
    pub forwarded: u64,
    /// Credit-stall slots charged to the switch.
    pub stall_slots: u64,
    /// Flits blackholed at the switch.
    pub blackholes: u64,
    /// `forwarded / slots` — mean flits the switch moved per slot.
    pub forwarded_per_slot: f64,
    /// Ranking score: `forwarded_per_slot × (1 + stall_slots / slots)`.
    pub score: f64,
}

/// The bottleneck analyzer's output: links and switches ranked by
/// utilization × stall pressure (descending score, ties broken by
/// traversals then index — fully deterministic), plus the congestion
/// signature classification.
#[derive(Clone, Debug, PartialEq)]
pub struct BottleneckReport {
    /// Slots the registry was accumulated over (summed across trials).
    pub slots: u64,
    /// Every link, hottest first.
    pub links: Vec<LinkPressure>,
    /// Every switch, hottest first.
    pub switches: Vec<SwitchPressure>,
    /// The classified congestion signature.
    pub signature: CongestionSignature,
}

impl BottleneckReport {
    /// Ranks `registry`'s links and switches over `slots` simulated slots
    /// and classifies the congestion signature. Pure arithmetic on the
    /// registry — deterministic given a deterministic registry.
    pub fn analyze(topology: &FabricTopology, registry: &MetricsRegistry, slots: u64) -> Self {
        let endpoints = topology.endpoint_count();
        let mut links: Vec<LinkPressure> = (0..registry.link_count())
            .map(|link| {
                let stall_slots = if link < endpoints {
                    let ep = &topology.endpoints[link];
                    registry.port_stalls(ep.switch, ep.port)
                } else {
                    let t = &topology.trunks[link - endpoints];
                    registry.port_stalls(t.a.0, t.a.1) + registry.port_stalls(t.b.0, t.b.1)
                };
                let utilization = registry.utilization(link, slots);
                let stall_rate = if slots > 0 {
                    stall_slots as f64 / slots as f64
                } else {
                    0.0
                };
                let id = if link < endpoints {
                    topology.endpoint_link(link)
                } else {
                    topology.trunk_link(link - endpoints)
                };
                LinkPressure {
                    link,
                    description: topology.describe_link(id),
                    endpoint_link: link < endpoints,
                    traversals: registry.traversals(link),
                    utilization,
                    stall_slots,
                    errors: registry.corrected_errors(link) + registry.dropped_flits(link),
                    retransmits: registry.retransmit_traversals(link),
                    score: utilization * (1.0 + stall_rate),
                }
            })
            .collect();
        links.sort_by(|a, b| {
            b.score
                .total_cmp(&a.score)
                .then(b.traversals.cmp(&a.traversals))
                .then(a.link.cmp(&b.link))
        });

        let mut switches: Vec<SwitchPressure> = (0..registry.switch_count())
            .map(|sw| {
                let forwarded = registry.switch_forwarded(sw);
                let stall_slots = registry.switch_stalls(sw);
                let forwarded_per_slot = if slots > 0 {
                    forwarded as f64 / slots as f64
                } else {
                    0.0
                };
                let stall_rate = if slots > 0 {
                    stall_slots as f64 / slots as f64
                } else {
                    0.0
                };
                SwitchPressure {
                    switch: sw,
                    forwarded,
                    stall_slots,
                    blackholes: registry.switch_blackholes(sw),
                    forwarded_per_slot,
                    score: forwarded_per_slot * (1.0 + stall_rate),
                }
            })
            .collect();
        switches.sort_by(|a, b| {
            b.score
                .total_cmp(&a.score)
                .then(b.forwarded.cmp(&a.forwarded))
                .then(a.switch.cmp(&b.switch))
        });

        let signature = Self::classify(&links);
        BottleneckReport {
            slots,
            links,
            switches,
            signature,
        }
    }

    /// Classifies the congestion signature from the ranked links:
    ///
    /// 1. **storm** — the top link's error + retransmit rate exceeds 1% of
    ///    its traversals (pressure is link quality, not offered load);
    /// 2. **incast** — the top-pressure link is an endpoint attachment link
    ///    (convergence at a destination sink);
    /// 3. **hotspot** — the top link runs ≥ 1.5× the median utilization of
    ///    active links (a localized hot subset);
    /// 4. **uniform** — otherwise.
    fn classify(links: &[LinkPressure]) -> CongestionSignature {
        let Some(top) = links.first() else {
            return CongestionSignature::Uniform;
        };
        if top.traversals == 0 {
            return CongestionSignature::Uniform;
        }
        if (top.errors + top.retransmits) as f64 > 0.01 * top.traversals as f64 {
            return CongestionSignature::Storm;
        }
        if top.endpoint_link {
            return CongestionSignature::Incast;
        }
        let mut active: Vec<f64> = links
            .iter()
            .filter(|l| l.traversals > 0)
            .map(|l| l.utilization)
            .collect();
        active.sort_by(f64::total_cmp);
        let median = active[active.len() / 2];
        if top.utilization >= 1.5 * median {
            return CongestionSignature::Hotspot;
        }
        CongestionSignature::Uniform
    }

    /// The `k` hottest links.
    pub fn top_links(&self, k: usize) -> &[LinkPressure] {
        &self.links[..k.min(self.links.len())]
    }
}

impl fmt::Display for BottleneckReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "== bottlenecks over {} slots · {} signature ==",
            self.slots,
            self.signature.label()
        )?;
        for (rank, l) in self.top_links(5).iter().enumerate() {
            writeln!(
                f,
                "#{} {} — {:.1}% util, {} stall slots, {} retransmits, {} errors (score {:.3})",
                rank + 1,
                l.description,
                l.utilization * 100.0,
                l.stall_slots,
                l.retransmits,
                l.errors,
                l.score
            )?;
        }
        Ok(())
    }
}

/// One ladder rung's spatial attribution in an [`AttributedSweep`].
#[derive(Clone, Debug, PartialEq)]
pub struct RungAttribution {
    /// Offered load of the rung.
    pub offered_load: f64,
    /// Slots summed over the rung's trials (the utilization denominator).
    pub slots: u64,
    /// Top-k links by pressure, hottest first. Never empty for a rung that
    /// moved any flit.
    pub top: Vec<LinkPressure>,
    /// The rung's congestion signature.
    pub signature: CongestionSignature,
}

/// A [`LoadSweep`] with per-rung congestion attribution: every ladder point
/// carries a merged [`MetricsRegistry`] and its top-k bottleneck links, so
/// the knee report can *name* the saturated trunk behind the knee instead
/// of just locating it on the load axis.
#[derive(Clone, Debug)]
pub struct AttributedSweep {
    /// The plain latency-vs-load curve.
    pub report: LoadSweepReport,
    /// Per-rung attribution, parallel to `report.points`.
    pub rungs: Vec<RungAttribution>,
    /// Per-rung merged registries (trial order), parallel to
    /// `report.points` — heatmap and Prometheus exports read these.
    pub registries: Vec<MetricsRegistry>,
}

impl AttributedSweep {
    /// Runs `sweep` with a [`MetricsProbe`] on every trial, merging
    /// per-trial registries in trial order (bit-identical for any worker
    /// thread count) and keeping the `k` hottest links per rung.
    pub fn run(sweep: &LoadSweep, k: usize) -> Self {
        Self::run_with_heatmap(sweep, k, 0)
    }

    /// Like [`Self::run`], additionally recording the link × window
    /// heatmap with `heat_window` slots per window (0 disables it).
    pub fn run_with_heatmap(sweep: &LoadSweep, k: usize, heat_window: u64) -> Self {
        let vcc = sweep.config().vc_count;
        let (report, probes) = sweep.run_probed(|_| {
            let probe = MetricsProbe::for_topology(sweep.topology(), vcc);
            if heat_window > 0 {
                probe.with_heatmap(heat_window)
            } else {
                probe
            }
        });
        let mut rungs = Vec::with_capacity(report.points.len());
        let mut registries = Vec::with_capacity(report.points.len());
        for (pi, trial_probes) in probes.into_iter().enumerate() {
            let mut merged: Option<MetricsRegistry> = None;
            for probe in trial_probes {
                match &mut merged {
                    None => merged = Some(probe.into_registry()),
                    Some(m) => m.merge(probe.registry()),
                }
            }
            let registry = merged.expect("every rung runs at least one trial");
            let point = &report.points[pi];
            let analysis = BottleneckReport::analyze(sweep.topology(), &registry, point.slots);
            rungs.push(RungAttribution {
                offered_load: point.offered_load,
                slots: point.slots,
                top: analysis.top_links(k).to_vec(),
                signature: analysis.signature,
            });
            registries.push(registry);
        }
        AttributedSweep {
            report,
            rungs,
            registries,
        }
    }

    /// The knee rung's attribution, if the ladder crossed a knee.
    pub fn knee_attribution(&self) -> Option<&RungAttribution> {
        self.report.knee.map(|i| &self.rungs[i])
    }
}

impl fmt::Display for AttributedSweep {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.report)?;
        for rung in &self.rungs {
            let Some(top) = rung.top.first() else {
                continue;
            };
            writeln!(
                f,
                "load {:.2} [{}]: {} — {:.1}% util, {} credit-stall slots",
                rung.offered_load,
                rung.signature.label(),
                top.description,
                top.utilization * 100.0,
                top.stall_slots
            )?;
        }
        if let Some(knee) = self.knee_attribution() {
            if let Some(top) = knee.top.first() {
                writeln!(
                    f,
                    "knee at {:.2}: {} at {:.0}% util, {} credit-stall slots ({} signature)",
                    knee.offered_load,
                    top.description,
                    top.utilization * 100.0,
                    top.stall_slots,
                    knee.signature.label()
                )?;
            }
        }
        Ok(())
    }
}

/// The engine self-profiler: a [`Probe`] with [`Probe::PROFILE`] set, so
/// the slot loop reports per-phase wall-clock nanoseconds to it (see
/// [`rxl_fabric::EnginePhase`]). The timings never feed back into the
/// trial, so a profiled trial is bit-identical to an unprofiled one — but
/// the nanoseconds themselves are wall-clock: real, machine-local, and
/// **not** reproducible. Keep them out of exact-merge aggregates; this
/// replaces the external-profiler workflow for "which phase eats the slot
/// budget?" questions.
#[derive(Clone, Copy, Debug, Default)]
pub struct EngineProfiler {
    nanos: [u64; 4],
    slots: u64,
}

impl EngineProfiler {
    /// A zeroed profiler.
    pub fn new() -> Self {
        Self::default()
    }

    /// The accumulated per-phase profile.
    pub fn profile(&self) -> PhaseProfile {
        PhaseProfile {
            nanos: self.nanos,
            slots: self.slots,
        }
    }
}

impl Probe for EngineProfiler {
    const PROFILE: bool = true;

    fn on_phase(&mut self, phase: EnginePhase, nanos: u64) {
        self.nanos[phase.index()] += nanos;
        if phase == EnginePhase::PacedRelease {
            self.slots += 1;
        }
    }
}

/// Per-phase slot-loop accounting from an [`EngineProfiler`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PhaseProfile {
    /// Wall-clock nanoseconds per [`EnginePhase`], indexed by
    /// [`EnginePhase::index`].
    pub nanos: [u64; 4],
    /// Slots profiled.
    pub slots: u64,
}

impl PhaseProfile {
    /// Total profiled nanoseconds across all phases.
    pub fn total_nanos(&self) -> u64 {
        self.nanos.iter().sum()
    }

    /// Fraction of profiled time spent in `phase`.
    pub fn share(&self, phase: EnginePhase) -> f64 {
        let total = self.total_nanos();
        if total == 0 {
            return 0.0;
        }
        self.nanos[phase.index()] as f64 / total as f64
    }

    /// Mean nanoseconds per slot spent in `phase`.
    pub fn nanos_per_slot(&self, phase: EnginePhase) -> f64 {
        if self.slots == 0 {
            return 0.0;
        }
        self.nanos[phase.index()] as f64 / self.slots as f64
    }
}

impl fmt::Display for PhaseProfile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "== engine self-profile over {} slots ==", self.slots)?;
        for phase in EnginePhase::ALL {
            writeln!(
                f,
                "{:>14}: {:>6.1}% · {:>8.1} ns/slot",
                phase.label(),
                self.share(phase) * 100.0,
                self.nanos_per_slot(phase)
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rxl_fabric::{FabricConfig, FabricSim, FabricWorkload, RoutingTable};
    use rxl_link::{ChannelErrorModel, ProtocolVariant};
    use rxl_load::{ArrivalProcess, LoadSweepConfig, TrafficMatrix};

    fn pod() -> FabricTopology {
        FabricTopology::leaf_spine(2, 1, 2)
    }

    #[test]
    fn registry_layout_matches_topology() {
        let t = pod();
        let reg = MetricsRegistry::for_topology(&t, 2);
        assert_eq!(reg.link_count(), t.link_count());
        assert_eq!(reg.switch_count(), t.switch_count());
        assert_eq!(reg.vc_count(), 2);
        assert_eq!(reg.traversals(0), 0);
        assert_eq!(reg.utilization(0, 100), 0.0);
    }

    #[test]
    fn merge_is_exact_and_peaks_take_max() {
        let t = pod();
        let mut a = MetricsRegistry::for_topology(&t, 1);
        let mut b = MetricsRegistry::for_topology(&t, 1);
        a.record_occupancy(0, 0, 0, 3);
        b.record_occupancy(0, 0, 0, 7);
        b.record_stall(0, Some(1), Some(0));
        a.merge(&b);
        assert_eq!(a.switch_forwarded(0), 2);
        assert_eq!(a.lane_samples(0, 0, 0), 2);
        assert_eq!(a.lane_peak_occupancy(0, 0, 0), 7);
        assert_eq!(a.port_stalls(0, 1), 1);
        assert_eq!(a.lane_stalls(0, 1, 0), 1);
        assert_eq!(a.switch_stalls(0), 1);
    }

    #[test]
    fn heatmap_buckets_by_window() {
        let t = pod();
        let mut probe = MetricsProbe::for_topology(&t, 1).with_heatmap(100);
        for slot in [5u64, 150, 250] {
            probe.on_link_traversal(LinkTraversalEvent {
                slot,
                link: 2,
                hop: LinkHop::Inject,
                protocol: true,
                retransmission: false,
            });
        }
        let reg = probe.registry();
        assert_eq!(reg.heatmap().len(), 3);
        assert_eq!(reg.heatmap()[0][2], 1);
        assert_eq!(reg.heatmap()[1][2], 1);
        assert_eq!(reg.heatmap()[2][2], 1);
        assert_eq!(reg.traversals(2), 3);
        assert_eq!(reg.inject_traversals(2), 3);
    }

    #[test]
    fn classifier_distinguishes_signatures() {
        let storm = vec![LinkPressure {
            link: 8,
            description: "trunk".into(),
            endpoint_link: false,
            traversals: 1000,
            utilization: 0.5,
            stall_slots: 10,
            errors: 40,
            retransmits: 60,
            score: 0.5,
        }];
        assert_eq!(
            BottleneckReport::classify(&storm),
            CongestionSignature::Storm
        );

        let incast = vec![LinkPressure {
            endpoint_link: true,
            errors: 0,
            retransmits: 0,
            ..storm[0].clone()
        }];
        assert_eq!(
            BottleneckReport::classify(&incast),
            CongestionSignature::Incast
        );

        let mk = |link: usize, util: f64| LinkPressure {
            link,
            description: format!("trunk {link}"),
            endpoint_link: false,
            traversals: 1000,
            utilization: util,
            stall_slots: 0,
            errors: 0,
            retransmits: 0,
            score: util,
        };
        let hotspot = vec![mk(0, 0.9), mk(1, 0.3), mk(2, 0.3), mk(3, 0.2)];
        assert_eq!(
            BottleneckReport::classify(&hotspot),
            CongestionSignature::Hotspot
        );
        let uniform = vec![mk(0, 0.4), mk(1, 0.38), mk(2, 0.36), mk(3, 0.35)];
        assert_eq!(
            BottleneckReport::classify(&uniform),
            CongestionSignature::Uniform
        );
        assert_eq!(
            BottleneckReport::classify(&[]),
            CongestionSignature::Uniform
        );
    }

    #[test]
    fn metrics_probe_counts_a_real_trial() {
        let t = pod();
        let routing = RoutingTable::new(&t);
        let config = FabricConfig::new(ProtocolVariant::Rxl)
            .with_channel(ChannelErrorModel::ideal())
            .with_seed(0x5EA7);
        let probe = MetricsProbe::for_topology(&t, config.vc_count).with_heatmap(64);
        let mut sim = FabricSim::with_probe(&t, &routing, config, probe);
        sim.begin(&FabricWorkload::symmetric(t.session_count(), 200, 8, 3));
        let _ = sim.step(u64::MAX);
        let (report, probe) = sim.finish_with_probe();
        assert!(report.drained);
        let reg = probe.registry();
        let total: u64 = (0..reg.link_count()).map(|l| reg.traversals(l)).sum();
        assert!(total > 0, "traversals must be observed");
        // Injection-direction endpoint-link traversals are exactly the
        // non-idle wire flits the endpoints emitted.
        let injected: u64 = (0..t.endpoint_count())
            .map(|e| reg.inject_traversals(e))
            .sum();
        assert_eq!(
            injected,
            report.links.total_wire_flits() - report.links.idle_flits_sent
        );
        // The heatmap holds the same traversals, window-bucketed.
        let heat_total: u64 = reg.heatmap().iter().flatten().sum();
        assert_eq!(heat_total, total);
        // Prometheus exposition renders and carries the totals.
        let page = reg.prometheus(&t, report.slots);
        assert!(page.contains("rxl_link_traversals_total"));
        assert!(page.contains("rxl_switch_forwarded_flits_total"));
        assert!(page.contains(&format!("rxl_slots_total {}", report.slots)));
    }

    #[test]
    fn profiler_accounts_every_phase() {
        let t = pod();
        let routing = RoutingTable::new(&t);
        let config = FabricConfig::new(ProtocolVariant::Rxl)
            .with_channel(ChannelErrorModel::ideal())
            .with_seed(0x9A0F);
        let mut sim = FabricSim::with_probe(&t, &routing, config, EngineProfiler::new());
        sim.begin(&FabricWorkload::symmetric(t.session_count(), 100, 8, 5));
        let _ = sim.step(u64::MAX);
        let (report, profiler) = sim.finish_with_probe();
        let profile = profiler.profile();
        assert_eq!(profile.slots, report.slots);
        assert!(profile.total_nanos() > 0);
        let share_sum: f64 = EnginePhase::ALL.iter().map(|&p| profile.share(p)).sum();
        assert!((share_sum - 1.0).abs() < 1e-9);
        assert!(profile.to_string().contains("engine self-profile"));
    }

    #[test]
    fn attributed_sweep_names_the_saturated_uplink() {
        let t = pod();
        // Incast onto leaf 1: both leaf-0 hosts inject downstream-only at
        // 0.8 of line rate into leaf 0's single uplink (1.6× oversubscribed).
        // A shallow queue keeps the backlog visible as credit stalls instead
        // of silently absorbed buffering.
        let sweep = LoadSweep::new(
            t.clone(),
            FabricConfig {
                queue_capacity: 8,
                ..FabricConfig::new(ProtocolVariant::Rxl)
                    .with_channel(ChannelErrorModel::ideal())
                    .with_seed(0xA77B)
            },
            LoadSweepConfig {
                loads: vec![0.8],
                messages_per_session: 600,
                trials: 2,
                matrix: TrafficMatrix::Incast { leaf: 1 },
                arrival: ArrivalProcess::fixed(1.0),
                ..LoadSweepConfig::default()
            },
        );
        let attributed = AttributedSweep::run(&sweep, 3);
        let rung = &attributed.rungs[0];
        assert!(!rung.top.is_empty());
        let hot = t.trunk_between(0, 2).expect("leaf0 uplink exists");
        assert_eq!(
            rung.top[0].link,
            hot.index(),
            "top-ranked link must be the leaf0→spine trunk: {:?}",
            rung.top
        );
        assert!(rung.top[0].stall_slots > 0, "saturation must stall");
        assert!(attributed.to_string().contains("credit-stall slots"));
    }
}
