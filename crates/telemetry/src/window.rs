//! Sliding-window metric accumulation over probe events.
//!
//! A [`WindowedTelemetry`] partitions simulated time into fixed-length
//! windows of `window_slots` flit slots and accumulates, per window, a
//! latency histogram plus availability and event counters. It is the
//! time-domain view the end-of-run reports cannot give: p99.9 *per window*,
//! availability *during* a storm epoch, recovery *after* it.
//!
//! # Attribution
//!
//! Two different windows matter for one message, and the accumulator uses
//! both deliberately:
//!
//! * **Latency** is attributed to the window of the *delivery* slot — what a
//!   load balancer measuring completions would record, so a burst of
//!   delayed deliveries shows up as a tail spike in the window where the
//!   deliveries actually land.
//! * **Availability** is attributed to the window of the *injection* slot —
//!   "of the requests that arrived in this window, how many were eventually
//!   served exactly once, in order, intact". A message injected during an
//!   outage and lost forever counts against the outage's window, not
//!   against nothing; one delivered late but clean keeps its window
//!   available (the lateness is the latency series' job to show).
//!
//! Counter events (retransmissions, NACKs, credit stalls, blackholes,
//! channel errors, `Fail_order` classifications) land in the window they
//! fire in.
//!
//! # Exact merge
//!
//! Merging two accumulators is elementwise: counter addition and the exact
//! [`LatencyHistogram`] merge. Merging the per-trial accumulators of a
//! Monte-Carlo in trial order therefore yields the same series for any
//! worker-thread count — the workspace's standard reproducibility contract.

use rxl_load::{LatencyHistogram, LatencyStats};

/// Per-window accumulation state.
#[derive(Clone, Debug, Default)]
pub struct WindowAccum {
    /// Latencies of deliveries landing in this window (delivery-slot
    /// attribution).
    pub hist: LatencyHistogram,
    /// Messages injected in this window (injection-slot attribution).
    pub injected: u64,
    /// Of [`Self::injected`], those eventually delivered exactly once, in
    /// order, intact.
    pub clean: u64,
    /// Of [`Self::injected`], those delivered with a failure verdict
    /// (corrupted, mis-ordered, unexpected). Messages never delivered at
    /// all appear in neither `clean` nor `tainted` — `injected - clean -
    /// tainted` is the window's unresolved/lost count.
    pub tainted: u64,
    /// Undetected-drop (`Fail_order`) classifications in this window.
    pub fail_orders: u64,
    /// Go-back-N retransmission emissions in this window.
    pub retransmits: u64,
    /// NACK emissions in this window.
    pub nacks: u64,
    /// Credit-stall observations in this window.
    pub credit_stalls: u64,
    /// Fault-injection blackhole drops in this window.
    pub blackholes: u64,
    /// Channel-error observations (FEC-corrected + uncorrectable) in this
    /// window.
    pub channel_errors: u64,
    /// Switch fail/drain/restore events in this window.
    pub switch_events: u64,
}

impl WindowAccum {
    fn merge(&mut self, other: &WindowAccum) {
        self.hist.merge(&other.hist);
        self.injected += other.injected;
        self.clean += other.clean;
        self.tainted += other.tainted;
        self.fail_orders += other.fail_orders;
        self.retransmits += other.retransmits;
        self.nacks += other.nacks;
        self.credit_stalls += other.credit_stalls;
        self.blackholes += other.blackholes;
        self.channel_errors += other.channel_errors;
        self.switch_events += other.switch_events;
    }
}

/// Summary of one window, derived by [`WindowedTelemetry::stats`].
#[derive(Clone, Debug)]
pub struct WindowStat {
    /// Window index.
    pub index: usize,
    /// First slot of the window.
    pub start_slot: u64,
    /// Messages injected in the window.
    pub injected: u64,
    /// Deliveries landing in the window (latency population).
    pub deliveries: u64,
    /// Clean outcomes attributed to the window.
    pub clean: u64,
    /// Latency summary of the window's deliveries.
    pub latency: LatencyStats,
    /// `clean / injected` (`1.0` for a window with no arrivals): the
    /// fraction of the window's offered messages eventually served cleanly.
    pub availability: f64,
    /// Retransmissions in the window.
    pub retransmits: u64,
    /// Credit stalls in the window.
    pub credit_stalls: u64,
    /// `Fail_order` events in the window.
    pub fail_orders: u64,
}

/// The warmup-discarded steady-state aggregate of an open-system run,
/// built by [`WindowedTelemetry::steady_state`]. Exact: folding per-trial
/// telemetries in trial order and summarising yields the same numbers for
/// any worker-thread count.
#[derive(Clone, Debug)]
pub struct SteadyStateSummary {
    /// First window included (the warmup cut).
    pub first_window: usize,
    /// Complete measurement windows folded in (0 if the run never outlived
    /// its warmup).
    pub windows_used: usize,
    /// Arrivals inside the measurement windows (injection-slot attribution).
    pub injected: u64,
    /// Of [`Self::injected`], those eventually served cleanly.
    pub clean: u64,
    /// `clean / injected` (1.0 with no arrivals).
    pub availability: f64,
    /// Latency summary over the measurement windows' deliveries.
    pub stats: LatencyStats,
    /// The merged measurement-window histogram (exact merge).
    pub hist: LatencyHistogram,
}

/// Fixed-width sliding-window accumulator over probe events.
#[derive(Clone, Debug)]
pub struct WindowedTelemetry {
    window_slots: u64,
    windows: Vec<WindowAccum>,
}

impl WindowedTelemetry {
    /// An empty accumulator with `window_slots`-slot windows.
    pub fn new(window_slots: u64) -> Self {
        assert!(window_slots > 0, "windows need a positive length");
        WindowedTelemetry {
            window_slots,
            windows: Vec::new(),
        }
    }

    /// The configured window length, in slots.
    pub fn window_slots(&self) -> u64 {
        self.window_slots
    }

    /// Number of windows touched so far.
    pub fn len(&self) -> usize {
        self.windows.len()
    }

    /// `true` if no event has been recorded.
    pub fn is_empty(&self) -> bool {
        self.windows.is_empty()
    }

    /// The raw per-window accumulators.
    pub fn windows(&self) -> &[WindowAccum] {
        &self.windows
    }

    fn at(&mut self, slot: u64) -> &mut WindowAccum {
        let idx = (slot / self.window_slots) as usize;
        if idx >= self.windows.len() {
            self.windows.resize_with(idx + 1, WindowAccum::default);
        }
        &mut self.windows[idx]
    }

    /// A message became transmittable at `slot`.
    pub fn record_inject(&mut self, slot: u64) {
        self.at(slot).injected += 1;
    }

    /// A message injected at `inject_slot` resolved (`clean` per the
    /// auditor). Attributed to the *injection* window.
    pub fn record_outcome(&mut self, inject_slot: u64, clean: bool) {
        let w = self.at(inject_slot);
        if clean {
            w.clean += 1;
        } else {
            w.tainted += 1;
        }
    }

    /// A delivery with the given injection→delivery `latency` landed at
    /// `deliver_slot`. Attributed to the *delivery* window.
    pub fn record_latency(&mut self, deliver_slot: u64, latency: u64) {
        self.at(deliver_slot).hist.record(latency);
    }

    /// A `Fail_order` classification fired at `slot`.
    pub fn record_fail_order(&mut self, slot: u64) {
        self.at(slot).fail_orders += 1;
    }

    /// A retransmission was emitted at `slot`.
    pub fn record_retransmit(&mut self, slot: u64) {
        self.at(slot).retransmits += 1;
    }

    /// A NACK was emitted at `slot`.
    pub fn record_nack(&mut self, slot: u64) {
        self.at(slot).nacks += 1;
    }

    /// A credit stall was observed at `slot`.
    pub fn record_credit_stall(&mut self, slot: u64) {
        self.at(slot).credit_stalls += 1;
    }

    /// A fault-injection blackhole fired at `slot`.
    pub fn record_blackhole(&mut self, slot: u64) {
        self.at(slot).blackholes += 1;
    }

    /// A channel error was observed at `slot`.
    pub fn record_channel_error(&mut self, slot: u64) {
        self.at(slot).channel_errors += 1;
    }

    /// A switch fail/drain/restore was applied at `slot`.
    pub fn record_switch_event(&mut self, slot: u64) {
        self.at(slot).switch_events += 1;
    }

    /// Merges another accumulator in (exact: counter addition plus the
    /// exact histogram merge). Panics if the window lengths differ.
    pub fn merge(&mut self, other: &WindowedTelemetry) {
        assert_eq!(
            self.window_slots, other.window_slots,
            "cannot merge accumulators with different window lengths"
        );
        if other.windows.len() > self.windows.len() {
            self.windows
                .resize_with(other.windows.len(), WindowAccum::default);
        }
        for (a, b) in self.windows.iter_mut().zip(&other.windows) {
            a.merge(b);
        }
    }

    /// Per-window summaries, in window order.
    pub fn stats(&self) -> Vec<WindowStat> {
        self.windows
            .iter()
            .enumerate()
            .map(|(index, w)| WindowStat {
                index,
                start_slot: index as u64 * self.window_slots,
                injected: w.injected,
                deliveries: w.hist.count(),
                clean: w.clean,
                latency: LatencyStats::from_histogram(&w.hist),
                availability: if w.injected == 0 {
                    1.0
                } else {
                    w.clean as f64 / w.injected as f64
                },
                retransmits: w.retransmits,
                credit_stalls: w.credit_stalls,
                fail_orders: w.fail_orders,
            })
            .collect()
    }

    /// Folds the settled measurement windows of an open-system run into one
    /// steady-state summary. Two exclusions implement the "warmup-discarded
    /// steady state" contract:
    ///
    /// * windows before `warmup` (normally from [`Self::warmup_window`])
    ///   are still filling pipelines and are dropped;
    /// * the final *partial* window — any window not fully contained in
    ///   `[0, horizon)` — is dropped, so a run cut at its horizon never
    ///   biases the tail with a half-measured window.
    pub fn steady_state(&self, warmup: usize, horizon: u64) -> SteadyStateSummary {
        // Windows [0, complete) lie entirely inside the horizon.
        let complete = (horizon / self.window_slots) as usize;
        let end = complete.min(self.windows.len());
        let first_window = warmup.min(end);
        let mut accum = WindowAccum::default();
        for w in &self.windows[first_window..end] {
            accum.merge(w);
        }
        let stats = LatencyStats::from_histogram(&accum.hist);
        let availability = if accum.injected == 0 {
            1.0
        } else {
            accum.clean as f64 / accum.injected as f64
        };
        SteadyStateSummary {
            first_window,
            windows_used: end - first_window,
            injected: accum.injected,
            clean: accum.clean,
            availability,
            stats,
            hist: accum.hist,
        }
    }

    /// Warmup detection for open-system runs: the first window index `w`
    /// such that `run` consecutive windows starting at `w` all have
    /// deliveries and their p50 latencies agree within `tolerance`
    /// (relative: `max_p50 ≤ min_p50 × (1 + tolerance)`). `None` if the
    /// series never settles — measurement windows before the returned index
    /// are still filling pipelines and should be excluded from steady-state
    /// summaries.
    pub fn warmup_window(&self, run: usize, tolerance: f64) -> Option<usize> {
        assert!(run > 0, "warmup detection needs a positive run length");
        if self.windows.len() < run {
            return None;
        }
        'outer: for w in 0..=(self.windows.len() - run) {
            let (mut lo, mut hi) = (u64::MAX, 0u64);
            for acc in &self.windows[w..w + run] {
                if acc.hist.is_empty() {
                    continue 'outer;
                }
                let p50 = acc.hist.quantile(0.5);
                lo = lo.min(p50);
                hi = hi.max(p50);
            }
            if (hi as f64) <= (lo as f64) * (1.0 + tolerance) {
                return Some(w);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attribution_splits_injection_and_delivery_windows() {
        let mut t = WindowedTelemetry::new(100);
        // Injected in window 0, delivered (slowly) in window 2.
        t.record_inject(40);
        t.record_latency(250, 210);
        t.record_outcome(40, true);
        let stats = t.stats();
        assert_eq!(stats.len(), 3);
        assert_eq!(stats[0].injected, 1);
        assert_eq!(stats[0].clean, 1);
        assert_eq!(stats[0].availability, 1.0);
        assert_eq!(stats[0].deliveries, 0);
        assert_eq!(stats[2].deliveries, 1);
        assert_eq!(stats[2].injected, 0);
        assert_eq!(stats[2].availability, 1.0, "no arrivals = fully available");
    }

    #[test]
    fn lost_messages_burn_their_injection_window() {
        let mut t = WindowedTelemetry::new(10);
        for _ in 0..4 {
            t.record_inject(5);
        }
        t.record_outcome(5, true);
        // Three messages never resolve.
        let s = &t.stats()[0];
        assert_eq!(s.injected, 4);
        assert_eq!(s.clean, 1);
        assert!((s.availability - 0.25).abs() < 1e-12);
    }

    #[test]
    fn merge_is_exact_and_extends() {
        let mut a = WindowedTelemetry::new(50);
        a.record_inject(10);
        a.record_latency(10, 7);
        let mut b = WindowedTelemetry::new(50);
        b.record_inject(10);
        b.record_latency(120, 9);
        b.record_retransmit(60);
        a.merge(&b);
        assert_eq!(a.len(), 3);
        let stats = a.stats();
        assert_eq!(stats[0].injected, 2);
        assert_eq!(stats[0].deliveries, 1);
        assert_eq!(stats[1].retransmits, 1);
        assert_eq!(stats[2].deliveries, 1);
    }

    #[test]
    fn steady_state_drops_warmup_and_partial_final_window() {
        let mut t = WindowedTelemetry::new(10);
        // Warmup window 0 is slow; windows 1..3 are settled; window 3 is
        // cut by the horizon at slot 35 and must be excluded.
        t.record_inject(2);
        t.record_latency(5, 400);
        t.record_outcome(2, true);
        for w in 1..4u64 {
            t.record_inject(w * 10 + 1);
            t.record_latency(w * 10 + 5, 20);
            t.record_outcome(w * 10 + 1, true);
        }
        let s = t.steady_state(1, 35);
        assert_eq!(s.first_window, 1);
        assert_eq!(s.windows_used, 2, "windows 1 and 2 only");
        assert_eq!(s.injected, 2);
        assert_eq!(s.clean, 2);
        assert_eq!(s.availability, 1.0);
        assert_eq!(s.hist.count(), 2);
        assert_eq!(s.stats.max, 20, "warmup's 400-slot outlier excluded");
        // A horizon covering everything folds the last window back in.
        assert_eq!(t.steady_state(1, 40).windows_used, 3);
        // A warmup past the horizon yields an empty (but well-formed) summary.
        let empty = t.steady_state(10, 35);
        assert_eq!(empty.windows_used, 0);
        assert_eq!(empty.availability, 1.0);
    }

    #[test]
    fn warmup_finds_the_settled_prefix() {
        let mut t = WindowedTelemetry::new(10);
        // Window 0 is slow (pipeline fill), windows 1..5 settle around 20.
        for _ in 0..4 {
            t.record_latency(5, 400);
        }
        for w in 1..5u64 {
            for _ in 0..4 {
                t.record_latency(w * 10 + 5, 20);
            }
        }
        assert_eq!(t.warmup_window(3, 0.25), Some(1));
        // An impossible tolerance over the noisy prefix never settles.
        let mut noisy = WindowedTelemetry::new(10);
        noisy.record_latency(5, 10);
        noisy.record_latency(15, 1000);
        assert_eq!(noisy.warmup_window(2, 0.01), None);
    }
}
