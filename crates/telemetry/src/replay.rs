//! Incident replays: a chaos scenario re-run as a scored SLO incident.
//!
//! An [`IncidentReplay`] wraps a [`ChaosMonteCarlo`] with a window length
//! and an [`SloSpec`], attaches one [`SloProbe`] per trial through the
//! engine's probe seam, and merges the per-trial windows in trial order —
//! so the whole report inherits the workspace's thread-count-independence
//! contract. The output is the operator's view of the scenario: the
//! windowed latency/availability series, the burn-rate series with alert
//! states, and an [`IncidentScore`] (burn during vs after, peak burn, time
//! to recovery) anchored on the scenario's own event interval.

use rxl_chaos::{ChaosMonteCarlo, ChaosMonteCarloReport, Scenario};
use rxl_fabric::{FabricConfig, FabricTopology, FabricWorkload};

use crate::probe::SloProbe;
use crate::slo::{
    burn_series, incident_interval, score_incident, IncidentScore, SloSpec, WindowBurn,
};
use crate::window::{WindowStat, WindowedTelemetry};

/// A scenario re-run as a scored SLO incident.
#[derive(Clone, Debug)]
pub struct IncidentReplay {
    mc: ChaosMonteCarlo,
    window_slots: u64,
    slo: SloSpec,
}

/// Everything an incident replay produces.
#[derive(Clone, Debug)]
pub struct IncidentReport {
    /// The underlying chaos aggregate (epoch table, failure counts,
    /// availability per trial).
    pub aggregate: ChaosMonteCarloReport,
    /// Per-trial telemetry merged in trial order.
    pub windows: WindowedTelemetry,
    /// Per-window summaries of [`Self::windows`].
    pub stats: Vec<WindowStat>,
    /// Per-window burn rates and alert states under [`Self::slo`].
    pub burn: Vec<WindowBurn>,
    /// The incident score, if the scenario has any events to anchor on.
    pub score: Option<IncidentScore>,
    /// First settled window per [`WindowedTelemetry::warmup_window`]
    /// (3 windows, 25% tolerance), if the series settles.
    pub warmup_window: Option<usize>,
    /// The SLO the burn series was computed against.
    pub slo: SloSpec,
}

impl IncidentReplay {
    /// A replay of `scenario` on `topology` over `trials` seeds, with
    /// `window_slots`-slot telemetry windows scored against `slo`.
    pub fn new(
        topology: FabricTopology,
        config: FabricConfig,
        scenario: Scenario,
        trials: u64,
        window_slots: u64,
        slo: SloSpec,
    ) -> Self {
        IncidentReplay {
            mc: ChaosMonteCarlo::new(topology, config, scenario, trials),
            window_slots,
            slo,
        }
    }

    /// The underlying Monte-Carlo experiment.
    pub fn montecarlo(&self) -> &ChaosMonteCarlo {
        &self.mc
    }

    /// The telemetry window length, in slots.
    pub fn window_slots(&self) -> u64 {
        self.window_slots
    }

    /// The SLO the replay scores against.
    pub fn slo(&self) -> &SloSpec {
        &self.slo
    }

    /// Runs every trial with an attached [`SloProbe`] and scores the merged
    /// series. Bit-identical for any worker-thread count.
    pub fn run(&self, workload: &FabricWorkload) -> IncidentReport {
        let window_slots = self.window_slots;
        let (aggregate, probes) = self
            .mc
            .run_probed(workload, |_| SloProbe::new(window_slots));
        let mut windows = WindowedTelemetry::new(window_slots);
        for probe in &probes {
            windows.merge(probe.windows());
        }
        let stats = windows.stats();
        let burn = burn_series(&self.slo, &windows);
        let score = incident_interval(self.mc.scenario(), self.mc.config().max_slots)
            .map(|(start, end)| score_incident(&burn, window_slots, start, end));
        let warmup_window = windows.warmup_window(3, 0.25);
        IncidentReport {
            aggregate,
            windows,
            stats,
            burn,
            score,
            warmup_window,
            slo: self.slo,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rxl_link::{ChannelErrorModel, ProtocolVariant};

    fn storm_replay(trials: u64) -> (IncidentReplay, FabricWorkload) {
        let t = FabricTopology::leaf_spine(2, 1, 2);
        let uplink = t.trunk_between(0, 2).unwrap();
        let scenario = Scenario::named("storm").ber_storm(300, 400, vec![uplink], 2e4);
        let config = FabricConfig::new(ProtocolVariant::Rxl)
            .with_channel(ChannelErrorModel::random(1e-7))
            .with_seed(0x510);
        let replay = IncidentReplay::new(t, config, scenario, trials, 200, SloSpec::default());
        let workload = FabricWorkload::symmetric(4, 600, 8, 11);
        (replay, workload)
    }

    #[test]
    fn storm_replay_produces_a_scored_burn_series() {
        let (replay, workload) = storm_replay(2);
        let report = replay.run(&workload);
        assert_eq!(report.aggregate.trials, 2);
        assert!(!report.windows.is_empty());
        assert_eq!(report.stats.len(), report.burn.len());
        let score = report.score.expect("storm scenario has an interval");
        assert_eq!(score.incident_start, 300);
        assert_eq!(score.incident_end, 700);
        // Injections happen, and every injection is eventually resolved or
        // counted unresolved — the series is internally consistent.
        let injected: u64 = report.stats.iter().map(|w| w.injected).sum();
        assert!(injected > 0);
    }

    #[test]
    fn replay_is_reproducible_across_thread_counts() {
        let (replay, workload) = storm_replay(3);
        let run_with_threads = |threads: usize| {
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .expect("shim pool build is infallible");
            pool.install(|| replay.run(&workload))
        };
        let reference = run_with_threads(1);
        let report = run_with_threads(4);
        assert_eq!(
            format!("{:?}", report.windows),
            format!("{:?}", reference.windows)
        );
        assert_eq!(
            format!("{:?}", report.burn),
            format!("{:?}", reference.burn)
        );
    }
}
