//! Property tests for the open-system steady-state window fold.
//!
//! The request sweep merges per-trial windowed telemetry and only then
//! folds it into a steady-state summary, so both halves must be exact:
//!
//! * **Merge exactness** — splitting an event stream across accumulators
//!   and merging equals recording the whole stream into one accumulator,
//!   window for window (the sharded-trial invariant).
//! * **Steady-state fold** — the summary drops exactly the warmup prefix
//!   and the final partial window, and its histogram equals re-recording
//!   the surviving windows' samples.

use proptest::prelude::*;

use rxl_telemetry::WindowedTelemetry;

/// One request-level event: injected at `slot`, resolved `clean`, with a
/// completion `latency` recorded at `slot + latency`.
fn events() -> impl Strategy<Value = Vec<(u64, u64, bool)>> {
    proptest::collection::vec((0u64..4_000, 0u64..900, any::<bool>()), 1..160)
}

fn record(t: &mut WindowedTelemetry, stream: &[(u64, u64, bool)]) {
    for &(slot, latency, clean) in stream {
        t.record_inject(slot);
        t.record_latency(slot + latency, latency);
        t.record_outcome(slot, clean);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// merge(a, b) == record(a ++ b): the sharded-trial merge is exact for
    /// any split of the event stream, and so is every steady-state fold of
    /// the merged accumulator.
    #[test]
    fn windowed_merge_equals_concatenated_recording(
        a in events(),
        b in events(),
        window_slots in 50u64..400,
        warmup in 0usize..6,
        horizon in 500u64..6_000,
    ) {
        let mut ta = WindowedTelemetry::new(window_slots);
        let mut tb = WindowedTelemetry::new(window_slots);
        let mut tc = WindowedTelemetry::new(window_slots);
        record(&mut ta, &a);
        record(&mut tb, &b);
        record(&mut tc, &a);
        record(&mut tc, &b);
        ta.merge(&tb);
        prop_assert_eq!(format!("{:?}", ta.windows()), format!("{:?}", tc.windows()));
        prop_assert_eq!(
            format!("{:?}", ta.steady_state(warmup, horizon)),
            format!("{:?}", tc.steady_state(warmup, horizon))
        );
    }

    /// The steady-state fold counts exactly the complete windows after the
    /// warmup prefix: injected/clean tallies match a by-hand fold, and no
    /// sample from the warmup prefix or the partial final window leaks in.
    #[test]
    fn steady_state_drops_warmup_and_the_partial_window(
        stream in events(),
        window_slots in 50u64..400,
        warmup in 0usize..6,
        horizon in 500u64..6_000,
    ) {
        let mut t = WindowedTelemetry::new(window_slots);
        record(&mut t, &stream);
        let s = t.steady_state(warmup, horizon);

        let complete = (horizon / window_slots) as usize;
        let end = complete.min(t.windows().len());
        let first = warmup.min(end);
        prop_assert_eq!(s.first_window, first);
        prop_assert_eq!(s.windows_used, end - first);

        // By-hand fold over the injection-window attribution.
        let in_range = |slot: u64| {
            let w = (slot / window_slots) as usize;
            w >= first && w < end
        };
        let injected = stream.iter().filter(|&&(slot, _, _)| in_range(slot)).count() as u64;
        let clean = stream
            .iter()
            .filter(|&&(slot, _, clean)| clean && in_range(slot))
            .count() as u64;
        prop_assert_eq!(s.injected, injected);
        prop_assert_eq!(s.clean, clean);

        // Delivery-window attribution for the histogram population.
        let deliveries = stream
            .iter()
            .filter(|&&(slot, latency, _)| in_range(slot + latency))
            .count() as u64;
        prop_assert_eq!(s.hist.count(), deliveries);
        if injected > 0 {
            prop_assert!((s.availability - clean as f64 / injected as f64).abs() < 1e-12);
        } else {
            prop_assert_eq!(s.availability, 1.0);
        }
    }
}
