//! The 68-byte reduced-latency flit.
//!
//! CXL 3.0 defines a 68-byte flit for lower-speed modes (Section 2.2 of the
//! paper): a 2-byte header, a 64-byte payload (one cache line) and a 2-byte
//! CRC, with no FEC. It is unsuitable for the full-speed, high-BER regime the
//! paper targets, but it is part of the protocol surface and is used by the
//! header-overhead comparison (experiment E19).

use rxl_crc::catalog::CRC16_CCITT_FALSE_ENGINE;

use crate::header::FlitHeader;
use crate::message::Message;
use crate::slots::{pack_messages_into, unpack_messages, SlotError};

/// Payload bytes per 68-byte flit.
pub const FLIT68_PAYLOAD_LEN: usize = 64;
/// Total wire size of a 68-byte flit (2B header + 64B payload + 2B CRC).
pub const FLIT68_TOTAL_LEN: usize = 68;

/// An unencoded 68-byte-class flit.
#[derive(Clone, PartialEq, Eq)]
pub struct Flit68 {
    /// The 2-byte control header.
    pub header: FlitHeader,
    /// The 64-byte payload (one cache line).
    pub payload: [u8; FLIT68_PAYLOAD_LEN],
}

impl std::fmt::Debug for Flit68 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Flit68")
            .field("header", &self.header)
            .field("payload_prefix", &&self.payload[..8])
            .finish()
    }
}

impl Flit68 {
    /// Creates a flit with an all-zero payload.
    pub fn new(header: FlitHeader) -> Self {
        Flit68 {
            header,
            payload: [0u8; FLIT68_PAYLOAD_LEN],
        }
    }

    /// Packs transaction messages into the payload (up to 4 slots).
    pub fn pack_messages(&mut self, messages: &[Message]) -> Result<(), SlotError> {
        pack_messages_into(messages, &mut self.payload)
    }

    /// Unpacks the transaction messages currently in the payload.
    pub fn unpack_messages(&self) -> Result<Vec<Message>, SlotError> {
        unpack_messages(&self.payload)
    }

    /// Encodes the flit to its 68-byte wire form (header ‖ payload ‖ CRC-16).
    pub fn encode(&self) -> [u8; FLIT68_TOTAL_LEN] {
        let mut wire = [0u8; FLIT68_TOTAL_LEN];
        wire[..2].copy_from_slice(&self.header.to_bytes());
        wire[2..66].copy_from_slice(&self.payload);
        let crc = CRC16_CCITT_FALSE_ENGINE.checksum(&wire[..66]) as u16;
        wire[66..68].copy_from_slice(&crc.to_le_bytes());
        wire
    }

    /// Decodes a 68-byte wire flit, returning `None` if the CRC check fails.
    pub fn decode(wire: &[u8; FLIT68_TOTAL_LEN]) -> Option<Flit68> {
        let expected = CRC16_CCITT_FALSE_ENGINE.checksum(&wire[..66]) as u16;
        let received = u16::from_le_bytes([wire[66], wire[67]]);
        if expected != received {
            return None;
        }
        let header = FlitHeader::from_bytes([wire[0], wire[1]]);
        let mut payload = [0u8; FLIT68_PAYLOAD_LEN];
        payload.copy_from_slice(&wire[2..66]);
        Some(Flit68 { header, payload })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::MemOp;

    #[test]
    fn encode_decode_round_trip() {
        let mut flit = Flit68::new(FlitHeader::with_seq(17));
        flit.pack_messages(&[Message::request(MemOp::RdShared, 0xABC0, 2, 5)])
            .unwrap();
        let wire = flit.encode();
        assert_eq!(wire.len(), 68);
        let decoded = Flit68::decode(&wire).expect("clean flit must decode");
        assert_eq!(decoded, flit);
        assert_eq!(
            decoded.unpack_messages().unwrap(),
            vec![Message::request(MemOp::RdShared, 0xABC0, 2, 5)]
        );
    }

    #[test]
    fn corruption_anywhere_is_caught_by_the_crc() {
        let flit = Flit68::new(FlitHeader::ack(55));
        let clean = flit.encode();
        for pos in 0..68 {
            let mut wire = clean;
            wire[pos] ^= 0x08;
            assert!(
                Flit68::decode(&wire).is_none(),
                "corruption at {pos} escaped"
            );
        }
    }

    #[test]
    fn payload_capacity_is_four_messages() {
        let mut flit = Flit68::new(FlitHeader::with_seq(0));
        let four: Vec<Message> = (0..4).map(|i| Message::response_ok(0, i)).collect();
        assert!(flit.pack_messages(&four).is_ok());
        let five: Vec<Message> = (0..5).map(|i| Message::response_ok(0, i)).collect();
        assert!(flit.pack_messages(&five).is_err());
    }

    #[test]
    fn debug_is_compact() {
        let s = format!("{:?}", Flit68::new(FlitHeader::with_seq(9)));
        assert!(s.contains("Flit68"));
    }
}
