//! # rxl-flit — CXL/RXL flit formats and codec pipelines
//!
//! This crate models the data units the paper reasons about:
//!
//! * [`header`] — the 2-byte flit header with its 10-bit Flit Sequence
//!   Number (FSN) and 2-bit ReplayCmd field (Fig. 3 of the paper),
//! * [`message`] — transaction-layer messages (requests, responses, data)
//!   with Command Queue IDs (CQIDs), the units whose ordering and duplication
//!   failures Section 4.2 analyses,
//! * [`slots`] — packing/unpacking of messages into the 240-byte flit
//!   payload,
//! * [`flit256`] / [`flit68`] — the 256-byte full-speed flit and the 68-byte
//!   low-latency flit,
//! * [`codec`] — the two wire pipelines: the **CXL baseline** (link-layer
//!   CRC over header‖payload, FEC, explicit FSN) and **RXL** (transport-layer
//!   ISN CRC bound to the sequence number, FEC unchanged),
//! * [`builder`] — a convenience builder for filling flits with messages.
//!
//! # Example
//!
//! ```
//! use rxl_flit::{Flit256, FlitHeader, Message, MemOp, RxlFlitCodec};
//!
//! let codec = RxlFlitCodec::new();
//! let mut flit = Flit256::new(FlitHeader::ack(0));
//! flit.pack_messages(&[Message::request(MemOp::RdCurr, 0x8000, 3, 1)]).unwrap();
//!
//! // Sender binds the flit to sequence number 7.
//! let wire = codec.encode(&flit, 7);
//! // Receiver expecting sequence 7 accepts it ...
//! assert!(codec.decode(&wire, 7).accepted());
//! // ... but a receiver expecting sequence 8 (a flit was dropped) rejects it.
//! assert!(!codec.decode(&wire, 8).accepted());
//! ```

pub mod builder;
pub mod codec;
pub mod flit256;
pub mod flit68;
pub mod header;
pub mod message;
pub mod slots;

pub use builder::FlitBuilder;
pub use codec::{CxlDecode, CxlFlitCodec, RxlDecode, RxlFlitCodec, WireFlit, WIRE_FLIT_LEN};
pub use flit256::{Flit256, FLIT_PAYLOAD_LEN};
pub use flit68::Flit68;
pub use header::{FlitHeader, FlitType, ReplayCmd, FSN_BITS, FSN_MASK};
pub use message::{MemOp, Message, RspStatus};
pub use slots::{
    pack_messages, pack_messages_into, unpack_messages, SlotError, MESSAGES_PER_FLIT, SLOT_LEN,
};
