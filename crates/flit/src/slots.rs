//! Packing transaction messages into flit payloads.
//!
//! The 240-byte flit payload is divided into fixed 16-byte slots, each
//! carrying one serialized [`Message`] (or marked empty). The real CXL slot
//! format is denser (the paper quotes up to 44 messages per 128-byte group);
//! the exact packing efficiency does not affect any reliability result, so
//! this reproduction favours a simple, fully self-describing layout that the
//! transaction-layer failure scenarios can decode unambiguously.

use crate::message::{MemOp, Message, RspStatus, DATA_CHUNK_LEN};

/// Bytes per payload slot.
pub const SLOT_LEN: usize = 16;
/// Number of slots (and therefore messages) per 240-byte payload.
pub const MESSAGES_PER_FLIT: usize = 240 / SLOT_LEN;

const KIND_EMPTY: u8 = 0;
const KIND_REQUEST: u8 = 1;
const KIND_RESPONSE: u8 = 2;
const KIND_DATA_HEADER: u8 = 3;
const KIND_DATA: u8 = 4;

/// Errors that can occur while packing or unpacking payload slots.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SlotError {
    /// More messages were supplied than the payload has slots.
    TooManyMessages {
        /// Number of messages supplied.
        given: usize,
        /// Number of slots available.
        capacity: usize,
    },
    /// The payload length is not the expected flit payload size.
    BadPayloadLength(usize),
    /// A slot carried an unknown message kind byte.
    UnknownKind(u8),
}

impl std::fmt::Display for SlotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SlotError::TooManyMessages { given, capacity } => {
                write!(
                    f,
                    "{given} messages exceed the {capacity}-slot payload capacity"
                )
            }
            SlotError::BadPayloadLength(len) => write!(f, "payload length {len} is not valid"),
            SlotError::UnknownKind(k) => write!(f, "unknown slot kind {k}"),
        }
    }
}

impl std::error::Error for SlotError {}

fn encode_slot(msg: &Message) -> [u8; SLOT_LEN] {
    let mut slot = [0u8; SLOT_LEN];
    match *msg {
        Message::Request {
            op,
            addr,
            cqid,
            tag,
        } => {
            slot[0] = KIND_REQUEST;
            slot[1] = op as u8;
            slot[2..4].copy_from_slice(&cqid.to_le_bytes());
            slot[4..6].copy_from_slice(&tag.to_le_bytes());
            slot[6..14].copy_from_slice(&addr.to_le_bytes());
        }
        Message::Response { cqid, tag, status } => {
            slot[0] = KIND_RESPONSE;
            slot[1] = status as u8;
            slot[2..4].copy_from_slice(&cqid.to_le_bytes());
            slot[4..6].copy_from_slice(&tag.to_le_bytes());
        }
        Message::DataHeader { cqid, tag, chunks } => {
            slot[0] = KIND_DATA_HEADER;
            slot[1] = chunks;
            slot[2..4].copy_from_slice(&cqid.to_le_bytes());
            slot[4..6].copy_from_slice(&tag.to_le_bytes());
        }
        Message::Data {
            cqid,
            tag,
            chunk_idx,
            bytes,
        } => {
            slot[0] = KIND_DATA;
            slot[1] = chunk_idx;
            slot[2..4].copy_from_slice(&cqid.to_le_bytes());
            slot[4..6].copy_from_slice(&tag.to_le_bytes());
            slot[6..6 + DATA_CHUNK_LEN].copy_from_slice(&bytes);
        }
    }
    slot
}

fn decode_slot(slot: &[u8]) -> Result<Option<Message>, SlotError> {
    let cqid = u16::from_le_bytes([slot[2], slot[3]]);
    let tag = u16::from_le_bytes([slot[4], slot[5]]);
    match slot[0] {
        KIND_EMPTY => Ok(None),
        KIND_REQUEST => {
            let mut addr_bytes = [0u8; 8];
            addr_bytes.copy_from_slice(&slot[6..14]);
            Ok(Some(Message::Request {
                op: MemOp::from_bits(slot[1]),
                addr: u64::from_le_bytes(addr_bytes),
                cqid,
                tag,
            }))
        }
        KIND_RESPONSE => Ok(Some(Message::Response {
            cqid,
            tag,
            status: RspStatus::from_bits(slot[1]),
        })),
        KIND_DATA_HEADER => Ok(Some(Message::DataHeader {
            cqid,
            tag,
            chunks: slot[1],
        })),
        KIND_DATA => {
            let mut bytes = [0u8; DATA_CHUNK_LEN];
            bytes.copy_from_slice(&slot[6..6 + DATA_CHUNK_LEN]);
            Ok(Some(Message::Data {
                cqid,
                tag,
                chunk_idx: slot[1],
                bytes,
            }))
        }
        other => Err(SlotError::UnknownKind(other)),
    }
}

/// Packs up to [`MESSAGES_PER_FLIT`] messages into a payload of `payload_len`
/// bytes (`payload_len` must be a multiple of [`SLOT_LEN`]). Unused slots are
/// marked empty.
pub fn pack_messages(messages: &[Message], payload_len: usize) -> Result<Vec<u8>, SlotError> {
    if payload_len == 0 || !payload_len.is_multiple_of(SLOT_LEN) {
        return Err(SlotError::BadPayloadLength(payload_len));
    }
    let mut payload = vec![0u8; payload_len];
    pack_messages_into(messages, &mut payload)?;
    Ok(payload)
}

/// Packs messages directly into an existing payload buffer (zeroing unused
/// slots) — the allocation-free form of [`pack_messages`] used by the flit
/// builders on the transmit hot path.
pub fn pack_messages_into(messages: &[Message], payload: &mut [u8]) -> Result<(), SlotError> {
    if payload.is_empty() || !payload.len().is_multiple_of(SLOT_LEN) {
        return Err(SlotError::BadPayloadLength(payload.len()));
    }
    let capacity = payload.len() / SLOT_LEN;
    if messages.len() > capacity {
        return Err(SlotError::TooManyMessages {
            given: messages.len(),
            capacity,
        });
    }
    for (i, msg) in messages.iter().enumerate() {
        payload[i * SLOT_LEN..(i + 1) * SLOT_LEN].copy_from_slice(&encode_slot(msg));
    }
    payload[messages.len() * SLOT_LEN..].fill(0);
    Ok(())
}

/// Unpacks all non-empty messages from a payload.
pub fn unpack_messages(payload: &[u8]) -> Result<Vec<Message>, SlotError> {
    if payload.is_empty() || !payload.len().is_multiple_of(SLOT_LEN) {
        return Err(SlotError::BadPayloadLength(payload.len()));
    }
    let mut out = Vec::new();
    for slot in payload.chunks_exact(SLOT_LEN) {
        if let Some(msg) = decode_slot(slot)? {
            out.push(msg);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_messages() -> Vec<Message> {
        vec![
            Message::request(MemOp::RdCurr, 0xDEAD_BEEF_0000, 1, 10),
            Message::request(MemOp::WrLine, 0x4000, 2, 11),
            Message::response_ok(1, 10),
            Message::Response {
                cqid: 2,
                tag: 11,
                status: RspStatus::Conflict,
            },
            Message::DataHeader {
                cqid: 1,
                tag: 10,
                chunks: 2,
            },
            Message::data(1, 10, 0, [1, 2, 3, 4, 5, 6, 7, 8]),
            Message::data(1, 10, 1, [9, 10, 11, 12, 13, 14, 15, 16]),
        ]
    }

    #[test]
    fn round_trip_preserves_messages_and_order() {
        let msgs = sample_messages();
        let payload = pack_messages(&msgs, 240).unwrap();
        assert_eq!(payload.len(), 240);
        let decoded = unpack_messages(&payload).unwrap();
        assert_eq!(decoded, msgs);
    }

    #[test]
    fn empty_payload_round_trips_to_no_messages() {
        let payload = pack_messages(&[], 240).unwrap();
        assert!(unpack_messages(&payload).unwrap().is_empty());
    }

    #[test]
    fn capacity_is_fifteen_messages_for_a_256b_flit_payload() {
        assert_eq!(MESSAGES_PER_FLIT, 15);
        let msgs: Vec<Message> = (0..15)
            .map(|i| Message::request(MemOp::RdShared, i as u64 * 64, 0, i as u16))
            .collect();
        assert!(pack_messages(&msgs, 240).is_ok());
        let too_many: Vec<Message> = (0..16)
            .map(|i| Message::request(MemOp::RdShared, i as u64 * 64, 0, i as u16))
            .collect();
        assert_eq!(
            pack_messages(&too_many, 240),
            Err(SlotError::TooManyMessages {
                given: 16,
                capacity: 15
            })
        );
    }

    #[test]
    fn bad_payload_lengths_are_rejected() {
        assert_eq!(pack_messages(&[], 0), Err(SlotError::BadPayloadLength(0)));
        assert_eq!(
            pack_messages(&[], 100),
            Err(SlotError::BadPayloadLength(100))
        );
        assert_eq!(
            unpack_messages(&[0u8; 7]),
            Err(SlotError::BadPayloadLength(7))
        );
    }

    #[test]
    fn unknown_kind_is_reported() {
        let mut payload = pack_messages(&[], 64).unwrap();
        payload[0] = 0xEE;
        assert_eq!(unpack_messages(&payload), Err(SlotError::UnknownKind(0xEE)));
    }

    #[test]
    fn smaller_payloads_work_for_68_byte_flits() {
        // The 68B flit payload (64 bytes) holds 4 slots.
        let msgs: Vec<Message> = (0..4)
            .map(|i| Message::request(MemOp::RdOwn, i as u64, 3, i as u16))
            .collect();
        let payload = pack_messages(&msgs, 64).unwrap();
        assert_eq!(unpack_messages(&payload).unwrap(), msgs);
    }

    #[test]
    fn error_display_strings() {
        let e = SlotError::TooManyMessages {
            given: 20,
            capacity: 15,
        };
        assert!(e.to_string().contains("20"));
        assert!(SlotError::BadPayloadLength(3).to_string().contains('3'));
        assert!(SlotError::UnknownKind(9).to_string().contains('9'));
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        fn arb_message() -> impl Strategy<Value = Message> {
            prop_oneof![
                (any::<u8>(), any::<u64>(), any::<u16>(), any::<u16>()).prop_map(
                    |(op, addr, cqid, tag)| {
                        Message::Request {
                            op: MemOp::from_bits(op % 6),
                            addr,
                            cqid,
                            tag,
                        }
                    }
                ),
                (any::<u16>(), any::<u16>(), any::<u8>()).prop_map(|(cqid, tag, st)| {
                    Message::Response {
                        cqid,
                        tag,
                        status: RspStatus::from_bits(st % 3),
                    }
                }),
                (any::<u16>(), any::<u16>(), any::<u8>())
                    .prop_map(|(cqid, tag, chunks)| Message::DataHeader { cqid, tag, chunks }),
                (
                    any::<u16>(),
                    any::<u16>(),
                    any::<u8>(),
                    any::<[u8; DATA_CHUNK_LEN]>()
                )
                    .prop_map(|(cqid, tag, idx, bytes)| Message::Data {
                        cqid,
                        tag,
                        chunk_idx: idx,
                        bytes,
                    }),
            ]
        }

        proptest! {
            #[test]
            fn arbitrary_message_sets_round_trip(msgs in proptest::collection::vec(arb_message(), 0..15)) {
                let payload = pack_messages(&msgs, 240).unwrap();
                prop_assert_eq!(unpack_messages(&payload).unwrap(), msgs);
            }
        }
    }
}
