//! The 2-byte CXL/RXL flit header.
//!
//! Per Fig. 3 of the paper, the 256-byte flit dedicates two bytes to control
//! information: a 10-bit Flit Sequence Number (FSN), a 2-bit ReplayCmd that
//! selects how the FSN is interpreted, and a 4-bit type field. The FSN is
//! deliberately multiplexed between sequence number and acknowledgement
//! number — the very design decision whose reliability consequences the paper
//! analyses (Section 4.1).

/// Number of bits in the Flit Sequence Number field.
pub const FSN_BITS: u32 = 10;
/// Mask selecting the valid FSN bits.
pub const FSN_MASK: u16 = (1 << FSN_BITS) - 1;

/// Interpretation of the FSN field, selected by the 2-bit ReplayCmd.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
#[repr(u8)]
pub enum ReplayCmd {
    /// `ReplayCmd = 0`: the FSN carries this flit's own sequence number
    /// (or, in RXL, zeros — the sequence rides in the CRC instead).
    #[default]
    SeqNum = 0,
    /// `ReplayCmd = 1`: the FSN carries an acknowledgement number
    /// (ACK piggybacking).
    Ack = 1,
    /// `ReplayCmd = 2`: NACK requesting a go-back-N retry starting after the
    /// FSN value (the last correctly received sequence number).
    NackGoBackN = 2,
    /// `ReplayCmd = 3`: NACK requesting a single-flit retry of the flit after
    /// the FSN value.
    NackSingleRetry = 3,
}

impl ReplayCmd {
    /// Decodes the 2-bit field.
    pub fn from_bits(bits: u8) -> Self {
        match bits & 0b11 {
            0 => ReplayCmd::SeqNum,
            1 => ReplayCmd::Ack,
            2 => ReplayCmd::NackGoBackN,
            _ => ReplayCmd::NackSingleRetry,
        }
    }

    /// Encodes to the 2-bit field.
    pub fn to_bits(self) -> u8 {
        self as u8
    }

    /// `true` if this flit's FSN field does *not* carry its own sequence
    /// number — the case that leaves baseline CXL blind to drops.
    pub fn hides_own_sequence(self) -> bool {
        !matches!(self, ReplayCmd::SeqNum)
    }
}

/// The 4-bit flit type field.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
#[repr(u8)]
pub enum FlitType {
    /// A flit carrying transaction-layer messages.
    #[default]
    Protocol = 0,
    /// An idle flit (no payload content).
    Idle = 1,
    /// A link-management flit (credit returns, retry control).
    LinkControl = 2,
    /// A flit that carries only an acknowledgement (no piggybacking).
    StandaloneAck = 3,
}

impl FlitType {
    /// Decodes the 4-bit field (unknown values map to `Protocol`).
    pub fn from_bits(bits: u8) -> Self {
        match bits & 0x0F {
            1 => FlitType::Idle,
            2 => FlitType::LinkControl,
            3 => FlitType::StandaloneAck,
            _ => FlitType::Protocol,
        }
    }

    /// Encodes to the 4-bit field.
    pub fn to_bits(self) -> u8 {
        self as u8
    }
}

/// The 2-byte flit header.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub struct FlitHeader {
    /// The 10-bit FSN field (sequence number, ack number, or NACK reference,
    /// depending on [`FlitHeader::replay_cmd`]).
    pub fsn: u16,
    /// How the FSN is to be interpreted.
    pub replay_cmd: ReplayCmd,
    /// The flit type.
    pub flit_type: FlitType,
}

impl FlitHeader {
    /// A protocol flit carrying its own sequence number in the FSN field.
    pub fn with_seq(seq: u16) -> Self {
        FlitHeader {
            fsn: seq & FSN_MASK,
            replay_cmd: ReplayCmd::SeqNum,
            flit_type: FlitType::Protocol,
        }
    }

    /// A protocol flit piggybacking an acknowledgement number.
    pub fn ack(ack_num: u16) -> Self {
        FlitHeader {
            fsn: ack_num & FSN_MASK,
            replay_cmd: ReplayCmd::Ack,
            flit_type: FlitType::Protocol,
        }
    }

    /// A NACK header requesting a go-back-N retry after `last_good`.
    pub fn nack_go_back_n(last_good: u16) -> Self {
        FlitHeader {
            fsn: last_good & FSN_MASK,
            replay_cmd: ReplayCmd::NackGoBackN,
            flit_type: FlitType::LinkControl,
        }
    }

    /// A standalone (non-piggybacked) acknowledgement flit.
    pub fn standalone_ack(ack_num: u16) -> Self {
        FlitHeader {
            fsn: ack_num & FSN_MASK,
            replay_cmd: ReplayCmd::Ack,
            flit_type: FlitType::StandaloneAck,
        }
    }

    /// Serialises the header into its 2-byte wire form.
    ///
    /// Layout: byte 0 holds FSN[7:0]; byte 1 holds FSN[9:8] in bits [1:0],
    /// ReplayCmd in bits [3:2] and the flit type in bits [7:4].
    pub fn to_bytes(self) -> [u8; 2] {
        let fsn = self.fsn & FSN_MASK;
        let b0 = (fsn & 0xFF) as u8;
        let b1 = ((fsn >> 8) as u8 & 0b11)
            | (self.replay_cmd.to_bits() << 2)
            | (self.flit_type.to_bits() << 4);
        [b0, b1]
    }

    /// Parses a header from its 2-byte wire form.
    pub fn from_bytes(bytes: [u8; 2]) -> Self {
        let fsn = bytes[0] as u16 | (((bytes[1] & 0b11) as u16) << 8);
        FlitHeader {
            fsn,
            replay_cmd: ReplayCmd::from_bits((bytes[1] >> 2) & 0b11),
            flit_type: FlitType::from_bits(bytes[1] >> 4),
        }
    }

    /// `true` if the receiver can read this flit's own sequence number from
    /// the header (baseline CXL behaviour with `ReplayCmd = 0`).
    pub fn carries_own_sequence(&self) -> bool {
        self.replay_cmd == ReplayCmd::SeqNum
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_all_field_combinations() {
        for fsn in [0u16, 1, 255, 256, 511, 1023] {
            for cmd in [
                ReplayCmd::SeqNum,
                ReplayCmd::Ack,
                ReplayCmd::NackGoBackN,
                ReplayCmd::NackSingleRetry,
            ] {
                for ty in [
                    FlitType::Protocol,
                    FlitType::Idle,
                    FlitType::LinkControl,
                    FlitType::StandaloneAck,
                ] {
                    let h = FlitHeader {
                        fsn,
                        replay_cmd: cmd,
                        flit_type: ty,
                    };
                    assert_eq!(FlitHeader::from_bytes(h.to_bytes()), h);
                }
            }
        }
    }

    #[test]
    fn fsn_is_truncated_to_ten_bits() {
        let h = FlitHeader::with_seq(0x7FF); // 11 bits
        assert_eq!(h.fsn, 0x3FF);
        let b = h.to_bytes();
        assert_eq!(FlitHeader::from_bytes(b).fsn, 0x3FF);
    }

    #[test]
    fn replay_cmd_semantics() {
        assert!(!FlitHeader::with_seq(5).replay_cmd.hides_own_sequence());
        assert!(FlitHeader::ack(100).replay_cmd.hides_own_sequence());
        assert!(FlitHeader::nack_go_back_n(7)
            .replay_cmd
            .hides_own_sequence());
        assert!(FlitHeader::with_seq(5).carries_own_sequence());
        assert!(!FlitHeader::ack(100).carries_own_sequence());
    }

    #[test]
    fn constructors_set_expected_types() {
        assert_eq!(FlitHeader::with_seq(1).flit_type, FlitType::Protocol);
        assert_eq!(FlitHeader::ack(1).flit_type, FlitType::Protocol);
        assert_eq!(
            FlitHeader::nack_go_back_n(1).flit_type,
            FlitType::LinkControl
        );
        assert_eq!(
            FlitHeader::standalone_ack(1).flit_type,
            FlitType::StandaloneAck
        );
    }

    #[test]
    fn replay_cmd_and_type_bit_codecs() {
        for bits in 0..4u8 {
            assert_eq!(ReplayCmd::from_bits(bits).to_bits(), bits);
        }
        for bits in 0..4u8 {
            assert_eq!(FlitType::from_bits(bits).to_bits(), bits);
        }
        // Unknown type values degrade to Protocol.
        assert_eq!(FlitType::from_bits(0xF), FlitType::Protocol);
    }

    #[test]
    fn wire_layout_is_stable() {
        // Guard the exact bit layout: FSN 0x2A5 (10 bits), Ack, LinkControl.
        let h = FlitHeader {
            fsn: 0x2A5,
            replay_cmd: ReplayCmd::Ack,
            flit_type: FlitType::LinkControl,
        };
        let bytes = h.to_bytes();
        assert_eq!(bytes[0], 0xA5);
        assert_eq!(bytes[1], 0b0010_0110); // type=2 << 4 | cmd=1 << 2 | fsn_hi=0b10
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn any_two_bytes_reparse_consistently(b0: u8, b1: u8) {
                // Parsing arbitrary bytes and re-serialising must be stable
                // after one round (idempotent normalisation).
                let h = FlitHeader::from_bytes([b0, b1]);
                let reserialised = h.to_bytes();
                prop_assert_eq!(FlitHeader::from_bytes(reserialised), h);
            }
        }
    }
}
