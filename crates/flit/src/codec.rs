//! Wire codecs for 256-byte flits: the CXL baseline and the RXL (ISN)
//! pipelines.
//!
//! Both pipelines share the same wire geometry (Fig. 3 / Section 6.2 of the
//! paper): `2B header ‖ 240B payload ‖ 8B CRC`, protected by a 6-byte 3-way
//! interleaved FEC for a total of 256 bytes. They differ in what the CRC
//! means:
//!
//! * **CXL baseline** ([`CxlFlitCodec`]) — the CRC is a link-layer check over
//!   `header ‖ payload` only. Sequence tracking relies on the explicit FSN
//!   header field, which is unavailable whenever the flit piggybacks an ACK.
//! * **RXL** ([`RxlFlitCodec`]) — the CRC is a transport-layer ECRC computed
//!   with the Implicit Sequence Number folded in. The header FSN field is
//!   free to carry acknowledgements (or zeros) at all times, yet every flit
//!   remains bound to its position in the stream.

use rxl_crc::catalog::FLIT_CRC64;
use rxl_crc::isn::{IsnCrc64, IsnMode};
use rxl_fec::{FlitFecResult, InterleavedFec};

use crate::flit256::{Flit256, FLIT_CRC_LEN, FLIT_HEADER_LEN, FLIT_PAYLOAD_LEN, FLIT_TOTAL_LEN};
use crate::header::FlitHeader;

/// Total bytes of a wire flit.
pub const WIRE_FLIT_LEN: usize = FLIT_TOTAL_LEN;

/// A fully encoded 256-byte flit as it travels over a link.
pub type WireFlit = [u8; WIRE_FLIT_LEN];

const CRC_OFFSET: usize = FLIT_HEADER_LEN + FLIT_PAYLOAD_LEN;
const FEC_DATA_LEN: usize = CRC_OFFSET + FLIT_CRC_LEN; // 250

fn split_protected(block: &[u8]) -> (FlitHeader, [u8; FLIT_PAYLOAD_LEN], u64) {
    let header = FlitHeader::from_bytes([block[0], block[1]]);
    let mut payload = [0u8; FLIT_PAYLOAD_LEN];
    payload.copy_from_slice(&block[FLIT_HEADER_LEN..CRC_OFFSET]);
    let mut crc_bytes = [0u8; 8];
    crc_bytes.copy_from_slice(&block[CRC_OFFSET..FEC_DATA_LEN]);
    (header, payload, u64::from_le_bytes(crc_bytes))
}

/// Result of decoding a wire flit with the CXL baseline pipeline.
#[derive(Clone, Debug)]
pub struct CxlDecode {
    /// Outcome of the link-layer FEC stage.
    pub fec: FlitFecResult,
    /// Whether the link-layer CRC over `header ‖ payload` matched.
    pub crc_ok: bool,
    /// The recovered flit (present whenever the FEC accepted the block).
    pub flit: Option<Flit256>,
    /// The received CRC value (after FEC), for diagnostics and re-checks.
    pub crc: u64,
}

impl CxlDecode {
    /// `true` if the link layer would accept and forward this flit.
    pub fn accepted(&self) -> bool {
        self.fec.accepted() && self.crc_ok
    }
}

/// Result of decoding a wire flit with the RXL pipeline.
#[derive(Clone, Debug)]
pub struct RxlDecode {
    /// Outcome of the link-layer FEC stage.
    pub fec: FlitFecResult,
    /// Whether the transport-layer ISN ECRC matched the expected sequence.
    pub ecrc_ok: bool,
    /// The recovered flit (present whenever the FEC accepted the block).
    pub flit: Option<Flit256>,
    /// The received ECRC value (after FEC), for diagnostics and re-checks.
    pub crc: u64,
}

impl RxlDecode {
    /// `true` if the endpoint would accept this flit: data intact *and* the
    /// sequence matches the receiver's expectation.
    pub fn accepted(&self) -> bool {
        self.fec.accepted() && self.ecrc_ok
    }
}

/// The CXL-baseline flit codec: link-layer CRC plus FEC.
#[derive(Clone, Debug)]
pub struct CxlFlitCodec {
    crc: IsnCrc64,
    fec: InterleavedFec,
}

impl Default for CxlFlitCodec {
    fn default() -> Self {
        Self::new()
    }
}

impl CxlFlitCodec {
    /// Creates the codec with the standard flit CRC-64 and CXL FEC geometry.
    pub fn new() -> Self {
        CxlFlitCodec {
            crc: IsnCrc64::new(FLIT_CRC64),
            fec: InterleavedFec::cxl_flit(),
        }
    }

    /// Encodes a flit into its 256-byte wire form. Allocation-free: the
    /// protected block is assembled directly in the wire image and the FEC
    /// parity is computed in place.
    pub fn encode(&self, flit: &Flit256) -> WireFlit {
        let header = flit.header.to_bytes();
        let crc = self.crc.encode_explicit(&header, &flit.payload);
        let mut wire = [0u8; WIRE_FLIT_LEN];
        wire[..FLIT_HEADER_LEN].copy_from_slice(&header);
        wire[FLIT_HEADER_LEN..CRC_OFFSET].copy_from_slice(&flit.payload);
        wire[CRC_OFFSET..FEC_DATA_LEN].copy_from_slice(&crc.to_le_bytes());
        self.fec.encode_into(&mut wire);
        wire
    }

    /// Decodes a wire flit: FEC first, then the link-layer CRC.
    pub fn decode(&self, wire: &WireFlit) -> CxlDecode {
        let mut block = *wire;
        let fec = self.fec.decode(&mut block);
        if !fec.accepted() {
            return CxlDecode {
                fec,
                crc_ok: false,
                flit: None,
                crc: 0,
            };
        }
        let (header, payload, crc) = split_protected(&block);
        let crc_ok = self.crc.verify_explicit(&header.to_bytes(), &payload, crc);
        CxlDecode {
            fec,
            crc_ok,
            flit: Some(Flit256::with_payload(header, payload)),
            crc,
        }
    }

    /// Re-verifies a decoded flit's link CRC against a received CRC value.
    pub fn verify_flit(&self, flit: &Flit256, received_crc: u64) -> bool {
        self.crc
            .verify_explicit(&flit.header.to_bytes(), &flit.payload, received_crc)
    }
}

/// The RXL flit codec: transport-layer ISN ECRC plus link-layer FEC.
#[derive(Clone, Debug)]
pub struct RxlFlitCodec {
    isn: IsnCrc64,
    fec: InterleavedFec,
}

impl Default for RxlFlitCodec {
    fn default() -> Self {
        Self::new()
    }
}

impl RxlFlitCodec {
    /// Creates the codec with the default ISN folding mode.
    pub fn new() -> Self {
        Self::with_mode(IsnMode::default())
    }

    /// Creates the codec with an explicit ISN folding mode.
    pub fn with_mode(mode: IsnMode) -> Self {
        RxlFlitCodec {
            isn: IsnCrc64::with_mode(FLIT_CRC64, mode, rxl_crc::isn::DEFAULT_SEQ_BITS),
            fec: InterleavedFec::cxl_flit(),
        }
    }

    /// The sequence-number mask (wrap point) of the ISN construction.
    pub fn seq_mask(&self) -> u16 {
        self.isn.seq_mask()
    }

    /// Encodes a flit bound to transport sequence number `seq`.
    /// Allocation-free: the protected block is assembled directly in the
    /// wire image and the FEC parity is computed in place.
    pub fn encode(&self, flit: &Flit256, seq: u16) -> WireFlit {
        let header = flit.header.to_bytes();
        let crc = self.isn.encode(&header, &flit.payload, seq);
        let mut wire = [0u8; WIRE_FLIT_LEN];
        wire[..FLIT_HEADER_LEN].copy_from_slice(&header);
        wire[FLIT_HEADER_LEN..CRC_OFFSET].copy_from_slice(&flit.payload);
        wire[CRC_OFFSET..FEC_DATA_LEN].copy_from_slice(&crc.to_le_bytes());
        self.fec.encode_into(&mut wire);
        wire
    }

    /// Decodes a wire flit at the final destination: FEC first, then the ISN
    /// ECRC checked against the receiver's expected sequence number.
    pub fn decode(&self, wire: &WireFlit, expected_seq: u16) -> RxlDecode {
        let mut block = *wire;
        let fec = self.fec.decode(&mut block);
        if !fec.accepted() {
            return RxlDecode {
                fec,
                ecrc_ok: false,
                flit: None,
                crc: 0,
            };
        }
        let (header, payload, crc) = split_protected(&block);
        let ecrc_ok = self
            .isn
            .verify(&header.to_bytes(), &payload, expected_seq, crc);
        RxlDecode {
            fec,
            ecrc_ok,
            flit: Some(Flit256::with_payload(header, payload)),
            crc,
        }
    }

    /// Re-verifies a decoded flit's ECRC against another candidate sequence
    /// number (e.g. sequence 0 for link-control flits that live outside the
    /// transport sequence space).
    pub fn verify_flit(&self, flit: &Flit256, received_crc: u64, seq: u16) -> bool {
        self.isn
            .verify(&flit.header.to_bytes(), &flit.payload, seq, received_crc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::header::ReplayCmd;
    use crate::message::{MemOp, Message};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn sample_flit(seed: u8) -> Flit256 {
        let mut flit = Flit256::new(FlitHeader::with_seq(seed as u16));
        flit.pack_messages(&[
            Message::request(MemOp::RdCurr, 0x40 * seed as u64, 1, seed as u16),
            Message::response_ok(1, seed as u16),
        ])
        .unwrap();
        flit
    }

    #[test]
    fn cxl_round_trip_clean() {
        let codec = CxlFlitCodec::new();
        let flit = sample_flit(3);
        let wire = codec.encode(&flit);
        let out = codec.decode(&wire);
        assert!(out.accepted());
        assert_eq!(out.flit.unwrap(), flit);
    }

    #[test]
    fn rxl_round_trip_clean() {
        let codec = RxlFlitCodec::new();
        let flit = sample_flit(4);
        let wire = codec.encode(&flit, 12);
        let out = codec.decode(&wire, 12);
        assert!(out.accepted());
        assert_eq!(out.flit.unwrap(), flit);
    }

    #[test]
    fn rxl_detects_sequence_mismatch_cxl_does_not() {
        // The heart of the paper: after a silent drop, the next flit arrives
        // with a sequence the receiver does not expect. RXL notices via the
        // ECRC; baseline CXL (when the flit piggybacks an ACK) has no way to
        // tell and accepts it.
        let rxl = RxlFlitCodec::new();
        let cxl = CxlFlitCodec::new();

        let mut flit = sample_flit(5);
        flit.header = FlitHeader::ack(100); // piggybacking: no own FSN visible

        let rxl_wire = rxl.encode(&flit, 2);
        let cxl_wire = cxl.encode(&flit);

        // Receiver expected sequence 1 (flit 1 was dropped).
        assert!(!rxl.decode(&rxl_wire, 1).accepted());
        assert!(rxl.decode(&rxl_wire, 2).accepted());
        // CXL's check has no sequence component at all.
        let cxl_out = cxl.decode(&cxl_wire);
        assert!(cxl_out.accepted());
        assert_eq!(cxl_out.flit.unwrap().header.replay_cmd, ReplayCmd::Ack);
    }

    #[test]
    fn three_byte_bursts_are_transparent_to_both_codecs() {
        let mut rng = StdRng::seed_from_u64(9);
        let cxl = CxlFlitCodec::new();
        let rxl = RxlFlitCodec::new();
        let flit = sample_flit(6);
        let cxl_wire = cxl.encode(&flit);
        let rxl_wire = rxl.encode(&flit, 900);
        for _ in 0..20 {
            let start = rng.random_range(0usize..253);
            let mut w1 = cxl_wire;
            let mut w2 = rxl_wire;
            for i in 0..3 {
                let flip: u8 = rng.random_range(1..=255);
                w1[start + i] ^= flip;
                w2[start + i] ^= flip;
            }
            assert!(cxl.decode(&w1).accepted());
            let out = rxl.decode(&w2, 900);
            assert!(out.accepted());
            assert_eq!(out.flit.unwrap(), flit);
        }
    }

    #[test]
    fn uncorrectable_fec_is_reported_and_flit_withheld() {
        let cxl = CxlFlitCodec::new();
        let flit = sample_flit(7);
        let mut wire = cxl.encode(&flit);
        // Two equal-magnitude errors in the same FEC way (positions 0 and 3).
        wire[0] ^= 0x77;
        wire[3] ^= 0x77;
        let out = cxl.decode(&wire);
        assert!(!out.accepted());
        assert!(out.flit.is_none());
        assert!(!out.fec.accepted());
    }

    #[test]
    fn corruption_that_slips_past_fec_is_caught_by_the_crc() {
        // Simulate corruption *inside a switch*, i.e. applied to the protected
        // block before FEC re-encoding, so the FEC cannot see it. Only the
        // (E)CRC can. We model it by re-encoding a tampered flit without
        // updating the CRC: impossible to do through the public API, so build
        // the wire image manually.
        let rxl = RxlFlitCodec::new();
        let flit = sample_flit(8);
        let wire = rxl.encode(&flit, 33);
        // Decode the FEC layer, flip a payload bit, re-encode the FEC layer
        // (exactly what a corrupting switch would do).
        let fec = InterleavedFec::cxl_flit();
        let mut block = wire.to_vec();
        let res = fec.decode(&mut block);
        assert!(res.accepted());
        block[10] ^= 0x01; // corrupt payload inside the "switch"
        let reencoded = fec.encode(&block[..FEC_DATA_LEN]);
        let mut tampered = [0u8; WIRE_FLIT_LEN];
        tampered.copy_from_slice(&reencoded);

        let out = rxl.decode(&tampered, 33);
        assert!(
            out.fec.accepted(),
            "FEC cannot see switch-internal corruption"
        );
        assert!(!out.ecrc_ok, "the end-to-end CRC must catch it");
        assert!(!out.accepted());
    }

    #[test]
    fn cxl_crc_failure_is_distinguished_from_fec_failure() {
        let cxl = CxlFlitCodec::new();
        let flit = sample_flit(9);
        let wire = cxl.encode(&flit);
        let fec = InterleavedFec::cxl_flit();
        let mut block = wire.to_vec();
        assert!(fec.decode(&mut block).accepted());
        block[50] ^= 0x80;
        let reencoded = fec.encode(&block[..FEC_DATA_LEN]);
        let mut tampered = [0u8; WIRE_FLIT_LEN];
        tampered.copy_from_slice(&reencoded);
        let out = cxl.decode(&tampered);
        assert!(out.fec.accepted());
        assert!(!out.crc_ok);
        assert!(!out.accepted());
        // The flit is still surfaced for diagnostics even though it fails CRC.
        assert!(out.flit.is_some());
    }

    #[test]
    fn rxl_sequence_space_wraps_at_ten_bits() {
        let rxl = RxlFlitCodec::new();
        assert_eq!(rxl.seq_mask(), 0x3FF);
        let flit = sample_flit(10);
        let wire = rxl.encode(&flit, 1024 + 5);
        assert!(rxl.decode(&wire, 5).accepted());
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(24))]
            #[test]
            fn rxl_round_trips_any_payload_and_sequence(
                payload in proptest::collection::vec(any::<u8>(), FLIT_PAYLOAD_LEN),
                seq in 0u16..1024,
                ack in 0u16..1024,
            ) {
                let codec = RxlFlitCodec::new();
                let mut arr = [0u8; FLIT_PAYLOAD_LEN];
                arr.copy_from_slice(&payload);
                let flit = Flit256::with_payload(FlitHeader::ack(ack), arr);
                let wire = codec.encode(&flit, seq);
                let out = codec.decode(&wire, seq);
                prop_assert!(out.accepted());
                prop_assert_eq!(out.flit.unwrap(), flit);
            }

            #[test]
            fn cxl_round_trips_any_payload(
                payload in proptest::collection::vec(any::<u8>(), FLIT_PAYLOAD_LEN),
                seq in 0u16..1024,
            ) {
                let codec = CxlFlitCodec::new();
                let mut arr = [0u8; FLIT_PAYLOAD_LEN];
                arr.copy_from_slice(&payload);
                let flit = Flit256::with_payload(FlitHeader::with_seq(seq), arr);
                let wire = codec.encode(&flit);
                let out = codec.decode(&wire);
                prop_assert!(out.accepted());
                prop_assert_eq!(out.flit.unwrap(), flit);
            }
        }
    }
}
