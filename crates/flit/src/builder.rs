//! Convenience builder for assembling flits from transaction messages.

use crate::flit256::Flit256;
use crate::header::FlitHeader;
use crate::message::Message;
use crate::slots::{SlotError, MESSAGES_PER_FLIT};

/// Accumulates transaction messages and emits full flits.
///
/// The builder is the glue between a transaction-layer message stream and the
/// link layer: messages are appended until a flit fills up (or [`FlitBuilder::flush`]
/// is called), at which point a [`Flit256`] is produced and the accumulation
/// restarts. The header of each emitted flit is supplied by the caller, since
/// its FSN/ReplayCmd contents depend on link-layer state (ACK piggybacking).
#[derive(Clone, Debug, Default)]
pub struct FlitBuilder {
    pending: Vec<Message>,
}

impl FlitBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of messages waiting to be emitted.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// `true` if no messages are waiting.
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }

    /// Remaining message capacity before the next flit is full.
    pub fn remaining_capacity(&self) -> usize {
        MESSAGES_PER_FLIT - self.pending.len()
    }

    /// Appends a message. Returns a completed flit payload (as the list of
    /// messages) when the append fills the flit.
    pub fn push(&mut self, msg: Message) -> Option<Vec<Message>> {
        self.pending.push(msg);
        if self.pending.len() == MESSAGES_PER_FLIT {
            Some(std::mem::take(&mut self.pending))
        } else {
            None
        }
    }

    /// Drains whatever is pending (possibly an empty list).
    pub fn flush(&mut self) -> Vec<Message> {
        std::mem::take(&mut self.pending)
    }

    /// Builds a flit directly from a message list and a header.
    pub fn build_flit(header: FlitHeader, messages: &[Message]) -> Result<Flit256, SlotError> {
        let mut flit = Flit256::new(header);
        flit.pack_messages(messages)?;
        Ok(flit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::{MemOp, Message};

    #[test]
    fn fills_and_emits_at_capacity() {
        let mut b = FlitBuilder::new();
        assert!(b.is_empty());
        for i in 0..MESSAGES_PER_FLIT - 1 {
            assert!(b.push(Message::response_ok(0, i as u16)).is_none());
        }
        assert_eq!(b.remaining_capacity(), 1);
        let full = b
            .push(Message::response_ok(0, 99))
            .expect("flit should complete");
        assert_eq!(full.len(), MESSAGES_PER_FLIT);
        assert!(b.is_empty());
    }

    #[test]
    fn flush_returns_partial_contents() {
        let mut b = FlitBuilder::new();
        b.push(Message::request(MemOp::RdCurr, 0, 0, 0));
        b.push(Message::request(MemOp::RdCurr, 64, 0, 1));
        assert_eq!(b.pending_len(), 2);
        let drained = b.flush();
        assert_eq!(drained.len(), 2);
        assert!(b.is_empty());
        assert!(b.flush().is_empty());
    }

    #[test]
    fn build_flit_round_trips() {
        let msgs = vec![
            Message::request(MemOp::RdOwn, 0x100, 4, 7),
            Message::response_ok(4, 7),
        ];
        let flit = FlitBuilder::build_flit(FlitHeader::with_seq(2), &msgs).unwrap();
        assert_eq!(flit.unpack_messages().unwrap(), msgs);
        // Overfull message lists propagate the slot error.
        let too_many: Vec<Message> = (0..20).map(|i| Message::response_ok(0, i)).collect();
        assert!(FlitBuilder::build_flit(FlitHeader::with_seq(2), &too_many).is_err());
    }
}
