//! The 256-byte full-speed flit.
//!
//! Structure (Fig. 3 of the paper): 2-byte header, 240-byte payload, 8-byte
//! CRC and 6-byte FEC. This module models the *unencoded* flit (header +
//! payload); the CRC and FEC are attached by the codecs in [`crate::codec`].

use crate::header::FlitHeader;
use crate::message::Message;
use crate::slots::{pack_messages_into, unpack_messages, SlotError};

/// Payload bytes per 256-byte flit.
pub const FLIT_PAYLOAD_LEN: usize = 240;
/// Header bytes per flit.
pub const FLIT_HEADER_LEN: usize = 2;
/// CRC bytes per flit.
pub const FLIT_CRC_LEN: usize = 8;
/// FEC bytes per flit.
pub const FLIT_FEC_LEN: usize = 6;
/// Total wire size of a 256-byte flit.
pub const FLIT_TOTAL_LEN: usize = FLIT_HEADER_LEN + FLIT_PAYLOAD_LEN + FLIT_CRC_LEN + FLIT_FEC_LEN;

/// An unencoded 256-byte-class flit: header plus 240-byte payload.
#[derive(Clone, PartialEq, Eq)]
pub struct Flit256 {
    /// The 2-byte control header.
    pub header: FlitHeader,
    /// The 240-byte payload.
    pub payload: [u8; FLIT_PAYLOAD_LEN],
}

impl std::fmt::Debug for Flit256 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Flit256")
            .field("header", &self.header)
            .field("payload_prefix", &&self.payload[..8])
            .finish()
    }
}

impl Flit256 {
    /// Creates a flit with an all-zero payload.
    pub fn new(header: FlitHeader) -> Self {
        Flit256 {
            header,
            payload: [0u8; FLIT_PAYLOAD_LEN],
        }
    }

    /// Creates a flit with the given payload.
    pub fn with_payload(header: FlitHeader, payload: [u8; FLIT_PAYLOAD_LEN]) -> Self {
        Flit256 { header, payload }
    }

    /// Creates an idle flit (no messages).
    pub fn idle() -> Self {
        Flit256::new(FlitHeader {
            flit_type: crate::header::FlitType::Idle,
            ..FlitHeader::default()
        })
    }

    /// Packs transaction messages into the payload, replacing its contents.
    /// Writes the slots in place — no intermediate buffer.
    pub fn pack_messages(&mut self, messages: &[Message]) -> Result<(), SlotError> {
        pack_messages_into(messages, &mut self.payload)
    }

    /// Unpacks the transaction messages currently in the payload.
    pub fn unpack_messages(&self) -> Result<Vec<Message>, SlotError> {
        unpack_messages(&self.payload)
    }

    /// Concatenated header + payload bytes (the CRC input). Returned as a
    /// fixed array — no heap allocation on the encode path.
    pub fn header_and_payload(&self) -> [u8; FLIT_HEADER_LEN + FLIT_PAYLOAD_LEN] {
        let mut out = [0u8; FLIT_HEADER_LEN + FLIT_PAYLOAD_LEN];
        out[..FLIT_HEADER_LEN].copy_from_slice(&self.header.to_bytes());
        out[FLIT_HEADER_LEN..].copy_from_slice(&self.payload);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::header::{FlitType, ReplayCmd};
    use crate::message::MemOp;

    #[test]
    fn size_constants_add_up_to_256() {
        assert_eq!(FLIT_TOTAL_LEN, 256);
        assert_eq!(FLIT_HEADER_LEN + FLIT_PAYLOAD_LEN + FLIT_CRC_LEN, 250);
    }

    #[test]
    fn new_flit_has_zero_payload() {
        let f = Flit256::new(FlitHeader::with_seq(3));
        assert!(f.payload.iter().all(|&b| b == 0));
        assert_eq!(f.header.fsn, 3);
    }

    #[test]
    fn idle_flit_type() {
        let f = Flit256::idle();
        assert_eq!(f.header.flit_type, FlitType::Idle);
        assert_eq!(f.header.replay_cmd, ReplayCmd::SeqNum);
    }

    #[test]
    fn message_round_trip_through_payload() {
        let mut f = Flit256::new(FlitHeader::ack(100));
        let msgs = vec![
            Message::request(MemOp::RdCurr, 0x1000, 0, 1),
            Message::request(MemOp::RdCurr, 0x2000, 0, 2),
        ];
        f.pack_messages(&msgs).unwrap();
        assert_eq!(f.unpack_messages().unwrap(), msgs);
    }

    #[test]
    fn header_and_payload_layout() {
        let mut f = Flit256::new(FlitHeader::with_seq(0x155));
        f.payload[0] = 0xAA;
        f.payload[239] = 0xBB;
        let hp = f.header_and_payload();
        assert_eq!(hp.len(), 242);
        assert_eq!(&hp[..2], &f.header.to_bytes());
        assert_eq!(hp[2], 0xAA);
        assert_eq!(hp[241], 0xBB);
    }

    #[test]
    fn debug_is_compact() {
        let f = Flit256::new(FlitHeader::with_seq(1));
        let s = format!("{f:?}");
        assert!(s.contains("payload_prefix"));
        assert!(s.len() < 300);
    }
}
