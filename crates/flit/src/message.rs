//! Transaction-layer messages carried inside flit payloads.
//!
//! The CXL transaction layer exchanges cache-coherent requests, responses and
//! data (Section 2.2 of the paper). A transaction is identified by a Command
//! Queue ID (CQID) plus a tag; data belonging to the same CQID must be
//! delivered in order, while different CQIDs may complete out of order
//! (Section 4.2 / Fig. 5b). These messages are what the failure scenarios of
//! the paper ultimately corrupt, duplicate, or reorder.

/// Memory operation codes for request messages (a simplified MESI-oriented
/// subset of the CXL.cache / CXL.mem opcodes).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum MemOp {
    /// Read the current value without changing coherence state.
    RdCurr = 0,
    /// Read with intent to cache in Shared state.
    RdShared = 1,
    /// Read for ownership (intent to modify).
    RdOwn = 2,
    /// Write back a modified line.
    WrLine = 3,
    /// Invalidate a line (ownership request without data).
    Invalidate = 4,
    /// Uncached write (write-through style).
    WrPtl = 5,
}

impl MemOp {
    /// Decodes the opcode byte; unknown values map to `RdCurr`.
    pub fn from_bits(bits: u8) -> Self {
        match bits {
            1 => MemOp::RdShared,
            2 => MemOp::RdOwn,
            3 => MemOp::WrLine,
            4 => MemOp::Invalidate,
            5 => MemOp::WrPtl,
            _ => MemOp::RdCurr,
        }
    }

    /// `true` if this operation expects data in the response.
    pub fn expects_data(self) -> bool {
        matches!(self, MemOp::RdCurr | MemOp::RdShared | MemOp::RdOwn)
    }
}

/// Response status codes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum RspStatus {
    /// The request completed successfully.
    Success = 0,
    /// The request hit a conflict and must be retried by the requester.
    Conflict = 1,
    /// The request failed (poisoned data / unsupported address).
    Error = 2,
}

impl RspStatus {
    /// Decodes the status byte; unknown values map to `Error`.
    pub fn from_bits(bits: u8) -> Self {
        match bits {
            0 => RspStatus::Success,
            1 => RspStatus::Conflict,
            _ => RspStatus::Error,
        }
    }
}

/// Number of data bytes carried by one data message slot.
pub const DATA_CHUNK_LEN: usize = 8;

/// A transaction-layer message.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Message {
    /// A coherent memory request.
    Request {
        /// The operation requested.
        op: MemOp,
        /// The (cache-line-aligned) address.
        addr: u64,
        /// Command queue the transaction belongs to.
        cqid: u16,
        /// Per-queue transaction tag.
        tag: u16,
    },
    /// A response completing (or rejecting) a request.
    Response {
        /// Command queue of the original request.
        cqid: u16,
        /// Tag of the original request.
        tag: u16,
        /// Completion status.
        status: RspStatus,
    },
    /// A header announcing a data transfer of `chunks` chunks.
    DataHeader {
        /// Command queue of the transfer.
        cqid: u16,
        /// Tag of the transfer.
        tag: u16,
        /// Number of following [`Message::Data`] chunks.
        chunks: u8,
    },
    /// One chunk of transferred data.
    Data {
        /// Command queue of the transfer.
        cqid: u16,
        /// Tag of the transfer.
        tag: u16,
        /// Index of this chunk within the transfer.
        chunk_idx: u8,
        /// The data bytes.
        bytes: [u8; DATA_CHUNK_LEN],
    },
}

impl Message {
    /// Convenience constructor for a request.
    pub fn request(op: MemOp, addr: u64, cqid: u16, tag: u16) -> Self {
        Message::Request {
            op,
            addr,
            cqid,
            tag,
        }
    }

    /// Convenience constructor for a successful response.
    pub fn response_ok(cqid: u16, tag: u16) -> Self {
        Message::Response {
            cqid,
            tag,
            status: RspStatus::Success,
        }
    }

    /// Convenience constructor for a data chunk.
    pub fn data(cqid: u16, tag: u16, chunk_idx: u8, bytes: [u8; DATA_CHUNK_LEN]) -> Self {
        Message::Data {
            cqid,
            tag,
            chunk_idx,
            bytes,
        }
    }

    /// The command queue this message belongs to.
    pub fn cqid(&self) -> u16 {
        match *self {
            Message::Request { cqid, .. }
            | Message::Response { cqid, .. }
            | Message::DataHeader { cqid, .. }
            | Message::Data { cqid, .. } => cqid,
        }
    }

    /// The transaction tag of this message.
    pub fn tag(&self) -> u16 {
        match *self {
            Message::Request { tag, .. }
            | Message::Response { tag, .. }
            | Message::DataHeader { tag, .. }
            | Message::Data { tag, .. } => tag,
        }
    }

    /// `true` for data-bearing messages (the kind whose ordering within a
    /// CQID matters, per Fig. 5b).
    pub fn is_data(&self) -> bool {
        matches!(self, Message::Data { .. })
    }

    /// `true` for request messages (the kind whose duplication Fig. 5a
    /// analyses).
    pub fn is_request(&self) -> bool {
        matches!(self, Message::Request { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        let req = Message::request(MemOp::RdOwn, 0x1000, 7, 42);
        assert_eq!(req.cqid(), 7);
        assert_eq!(req.tag(), 42);
        assert!(req.is_request());
        assert!(!req.is_data());

        let data = Message::data(3, 9, 1, [0xAA; DATA_CHUNK_LEN]);
        assert_eq!(data.cqid(), 3);
        assert_eq!(data.tag(), 9);
        assert!(data.is_data());

        let rsp = Message::response_ok(1, 2);
        assert_eq!(rsp.cqid(), 1);
        assert!(!rsp.is_request());

        let dh = Message::DataHeader {
            cqid: 4,
            tag: 5,
            chunks: 8,
        };
        assert_eq!(dh.tag(), 5);
    }

    #[test]
    fn memop_round_trip_and_semantics() {
        for op in [
            MemOp::RdCurr,
            MemOp::RdShared,
            MemOp::RdOwn,
            MemOp::WrLine,
            MemOp::Invalidate,
            MemOp::WrPtl,
        ] {
            assert_eq!(MemOp::from_bits(op as u8), op);
        }
        assert_eq!(MemOp::from_bits(0xFF), MemOp::RdCurr);
        assert!(MemOp::RdCurr.expects_data());
        assert!(MemOp::RdOwn.expects_data());
        assert!(!MemOp::WrLine.expects_data());
    }

    #[test]
    fn rsp_status_round_trip() {
        for st in [RspStatus::Success, RspStatus::Conflict, RspStatus::Error] {
            assert_eq!(RspStatus::from_bits(st as u8), st);
        }
        assert_eq!(RspStatus::from_bits(99), RspStatus::Error);
    }
}
