//! Multi-switch fabric topologies.
//!
//! Where `rxl_sim::Topology` describes the *path* between one host and one
//! device (a chain of switches), the types here describe a whole *fabric*:
//! many hosts, many devices, shared switches, and the trunk links between
//! them. Three generator families cover the scale-out scenarios of the
//! paper's Sections 6.4 and 7.1:
//!
//! * [`FabricTopology::leaf_spine`] — endpoints on leaf switches, every leaf
//!   connected to every spine; cross-leaf sessions traverse
//!   leaf → spine → leaf (three switching levels).
//! * [`FabricTopology::fat_tree2`] — a two-tier fat-tree with a dedicated
//!   host tier and a dedicated device tier of edge switches joined by core
//!   switches (the disaggregated-memory shape of the paper's introduction).
//! * [`FabricTopology::ring`] — switches in a cycle, sessions spanning a
//!   configurable number of hops; the generator of choice for sweeping
//!   switching depth, since a session's path crosses exactly `span + 1`
//!   switches.
//! * [`FabricTopology::torus`] — a 2-D wrap-around grid; the smallest
//!   topology with path diversity in *two* dimensions, which is what the
//!   minimal-adaptive routing layer exploits.
//! * [`FabricTopology::dragonfly`] — fully-connected groups joined by one
//!   global trunk per group pair, the paper's scale-out end state.
//!
//! # Virtual-channel metadata: trunk classes and datelines
//!
//! Ring and torus trunks close cycles, and cyclic trunk graphs deadlock
//! under saturation with a single buffer class: every switch's output queue
//! on the cycle can fill with flits whose next hop is the *next* queue of
//! the same cycle, a circular credit wait no one can break (the bug pinned
//! by `saturated_ring_span2_reports_credit_deadlock`). The classical fix is
//! a **dateline** per ring dimension: one trunk of each cycle is marked, and
//! a flit that crosses a marked trunk moves from escape VC 0 to escape VC 1
//! for the remaining hops in that dimension. Minimal routes cross each
//! dimension's dateline at most once, so each escape VC's channel
//! dependency graph is the cycle *minus* one edge — acyclic — and the
//! engine's round-robin VC arbitration guarantees the escape VCs service,
//! which makes the whole fabric deadlock-free.
//!
//! [`TrunkClass`] carries that static metadata: the ring dimension a trunk
//! belongs to (`dim` — the torus needs the x and y cycles tracked
//! *separately*, a single shared "crossed" bit re-admits cycles through the
//! second dimension) and whether it is its cycle's dateline. Generators
//! whose trunk graphs are acyclic (leaf–spine, fat-tree) carry no
//! datelines; the dragonfly marks its global trunks so traffic entering the
//! destination group switches to VC 1, keeping the local→global→local
//! dependency chain acyclic.

/// Virtual-channel class metadata of one trunk: which ring dimension the
/// trunk belongs to and whether it is that cycle's dateline (see the
/// module docs). Trunks of acyclic fabrics use the default (`dim 0`, no
/// dateline), which makes every escape flit ride VC 0 — exactly the
/// single-queue pre-VC behaviour.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TrunkClass {
    /// Ring dimension this trunk closes (0 = x / the only ring, 1 = y).
    pub dim: u8,
    /// `true` for the one trunk per cycle whose crossing bumps a flit from
    /// escape VC 0 to escape VC 1.
    pub dateline: bool,
}

/// Structural family of a fabric, used by the routing layer to pick an
/// escape-path algorithm that is provably deadlock-free on that structure.
/// BFS/ECMP remains the fallback everywhere (and the only choice once a
/// scenario degrades the fabric — see `RoutingTable::degraded`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TopologyLayout {
    /// No exploitable structure: escape routing is plain BFS/ECMP.
    Irregular,
    /// A `cols × rows` wrap-around grid (switch `s = row * cols + col`):
    /// escape routing is dimension-ordered (x, then y).
    Grid {
        /// Ring length of dimension 0.
        cols: usize,
        /// Ring length of dimension 1.
        rows: usize,
    },
    /// `groups` fully-connected groups of `group_size` switches: escape
    /// routing takes at most one global trunk (local → global → local).
    Dragonfly {
        /// Number of groups.
        groups: usize,
        /// Switches per group.
        group_size: usize,
    },
}

/// Whether an endpoint initiates requests (host) or serves them (device).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NodeRole {
    /// A request-initiating endpoint (CPU / host bridge).
    Host,
    /// A request-serving endpoint (accelerator / memory device).
    Device,
}

/// One endpoint of the fabric and its attachment point.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EndpointNode {
    /// Host or device.
    pub role: NodeRole,
    /// Index of the switch the endpoint is attached to.
    pub switch: usize,
    /// Port on that switch the endpoint occupies.
    pub port: usize,
}

/// One switching device of the fabric.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SwitchNode {
    /// Number of ports (endpoint ports + trunk ports).
    pub ports: usize,
}

/// A bidirectional trunk link between two switch ports.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TrunkLink {
    /// One side: `(switch index, port)`.
    pub a: (usize, usize),
    /// The other side: `(switch index, port)`.
    pub b: (usize, usize),
}

/// One transaction session: a host–device pair exchanging bidirectional
/// traffic across the fabric.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Session {
    /// Endpoint index of the host side.
    pub host: usize,
    /// Endpoint index of the device side.
    pub device: usize,
}

/// Identifier of one physical link of the fabric: either an endpoint's
/// attachment link (endpoint ⇄ its switch) or a trunk (switch ⇄ switch).
/// Links are what fault-injection scenarios target — the fabric engine keeps
/// one (possibly time-varying) channel per link. Obtain ids via
/// [`FabricTopology::endpoint_link`], [`FabricTopology::trunk_link`] or
/// [`FabricTopology::trunk_between`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LinkId(pub(crate) usize);

impl LinkId {
    /// Dense index into the fabric's link space: endpoint attachment links
    /// first (in endpoint order), then trunks (in trunk order).
    pub fn index(&self) -> usize {
        self.0
    }
}

/// A complete fabric description: endpoints, switches, trunks, and the
/// host–device sessions that will exercise them.
#[derive(Clone, Debug)]
pub struct FabricTopology {
    /// Human-readable topology label for reports.
    pub name: String,
    /// All endpoints, hosts and devices interleaved.
    pub endpoints: Vec<EndpointNode>,
    /// All switching devices.
    pub switches: Vec<SwitchNode>,
    /// All switch-to-switch trunk links.
    pub trunks: Vec<TrunkLink>,
    /// Virtual-channel class of each trunk, parallel to [`Self::trunks`].
    /// May be empty, meaning every trunk has the default class (no ring
    /// dimension, no dateline) — the case for acyclic trunk graphs.
    pub trunk_classes: Vec<TrunkClass>,
    /// Structural family, used to pick the escape-path routing algorithm.
    pub layout: TopologyLayout,
    /// All host–device sessions.
    pub sessions: Vec<Session>,
}

impl FabricTopology {
    /// A leaf–spine fabric: `leaves` leaf switches each carrying
    /// `pairs_per_leaf` host/device pairs, fully meshed to `spines` spine
    /// switches. Session `k` of leaf `l` pairs that leaf's host `k` with the
    /// device `k` of leaf `(l + 1) % leaves`, so with more than one leaf
    /// every session crosses leaf → spine → leaf (three switching levels).
    pub fn leaf_spine(leaves: usize, spines: usize, pairs_per_leaf: usize) -> Self {
        assert!(leaves >= 1 && spines >= 1 && pairs_per_leaf >= 1);
        let leaf_ports = 2 * pairs_per_leaf + spines;
        let mut switches: Vec<SwitchNode> = (0..leaves)
            .map(|_| SwitchNode { ports: leaf_ports })
            .collect();
        switches.extend((0..spines).map(|_| SwitchNode { ports: leaves }));

        let mut endpoints = Vec::new();
        for leaf in 0..leaves {
            for k in 0..pairs_per_leaf {
                endpoints.push(EndpointNode {
                    role: NodeRole::Host,
                    switch: leaf,
                    port: 2 * k,
                });
                endpoints.push(EndpointNode {
                    role: NodeRole::Device,
                    switch: leaf,
                    port: 2 * k + 1,
                });
            }
        }

        let mut trunks = Vec::new();
        for leaf in 0..leaves {
            for spine in 0..spines {
                trunks.push(TrunkLink {
                    a: (leaf, 2 * pairs_per_leaf + spine),
                    b: (leaves + spine, leaf),
                });
            }
        }

        let endpoint_id = |leaf: usize, k: usize, device: bool| {
            2 * (leaf * pairs_per_leaf + k) + usize::from(device)
        };
        let sessions = (0..leaves)
            .flat_map(|leaf| {
                (0..pairs_per_leaf).map(move |k| Session {
                    host: endpoint_id(leaf, k, false),
                    device: endpoint_id((leaf + 1) % leaves, k, true),
                })
            })
            .collect();

        FabricTopology {
            name: format!("leaf-spine {leaves}x{spines} ({pairs_per_leaf} pairs/leaf)"),
            endpoints,
            switches,
            trunks,
            trunk_classes: Vec::new(),
            layout: TopologyLayout::Irregular,
            sessions,
        }
    }

    /// A two-tier fat-tree with a dedicated host tier and device tier:
    /// `edges` host-side edge switches (each with `pairs_per_edge` hosts),
    /// `edges` device-side edge switches (each with `pairs_per_edge`
    /// devices), and `cores` core switches meshing the two tiers. Every
    /// session crosses host-edge → core → device-edge (three switching
    /// levels), the disaggregated-pool shape of the paper's introduction.
    pub fn fat_tree2(edges: usize, cores: usize, pairs_per_edge: usize) -> Self {
        assert!(edges >= 1 && cores >= 1 && pairs_per_edge >= 1);
        let edge_ports = pairs_per_edge + cores;
        // Switch order: host edges, device edges, cores.
        let mut switches: Vec<SwitchNode> = (0..2 * edges)
            .map(|_| SwitchNode { ports: edge_ports })
            .collect();
        switches.extend((0..cores).map(|_| SwitchNode { ports: 2 * edges }));

        let mut endpoints = Vec::new();
        for edge in 0..edges {
            for k in 0..pairs_per_edge {
                endpoints.push(EndpointNode {
                    role: NodeRole::Host,
                    switch: edge,
                    port: k,
                });
            }
        }
        for edge in 0..edges {
            for k in 0..pairs_per_edge {
                endpoints.push(EndpointNode {
                    role: NodeRole::Device,
                    switch: edges + edge,
                    port: k,
                });
            }
        }

        let mut trunks = Vec::new();
        for edge in 0..2 * edges {
            for core in 0..cores {
                trunks.push(TrunkLink {
                    a: (edge, pairs_per_edge + core),
                    b: (2 * edges + core, edge),
                });
            }
        }

        let hosts = edges * pairs_per_edge;
        let sessions = (0..hosts)
            .map(|h| Session {
                host: h,
                device: hosts + h,
            })
            .collect();

        FabricTopology {
            name: format!("fat-tree-2 {edges}+{edges}x{cores} ({pairs_per_edge} pairs/edge)"),
            endpoints,
            switches,
            trunks,
            trunk_classes: Vec::new(),
            layout: TopologyLayout::Irregular,
            sessions,
        }
    }

    /// A ring of `switches` switches, each carrying `pairs_per_switch`
    /// host/device pairs. Session `k` of switch `i` pairs that switch's host
    /// `k` with the device `k` of switch `(i + span) % switches`, so every
    /// session's shortest path crosses exactly `span + 1` switches —
    /// the generator to use when sweeping switching depth.
    pub fn ring(switches: usize, pairs_per_switch: usize, span: usize) -> Self {
        assert!(switches >= 3, "a ring needs at least three switches");
        assert!(pairs_per_switch >= 1);
        assert!(
            span <= switches / 2,
            "span beyond half the ring would not be the shortest path"
        );
        // Ports: 0 = clockwise trunk (to i+1), 1 = counter-clockwise trunk
        // (to i-1), then endpoint ports.
        let ports = 2 + 2 * pairs_per_switch;
        let switch_nodes: Vec<SwitchNode> = (0..switches).map(|_| SwitchNode { ports }).collect();

        let mut endpoints = Vec::new();
        for sw in 0..switches {
            for k in 0..pairs_per_switch {
                endpoints.push(EndpointNode {
                    role: NodeRole::Host,
                    switch: sw,
                    port: 2 + 2 * k,
                });
                endpoints.push(EndpointNode {
                    role: NodeRole::Device,
                    switch: sw,
                    port: 2 + 2 * k + 1,
                });
            }
        }

        let trunks: Vec<TrunkLink> = (0..switches)
            .map(|sw| TrunkLink {
                a: (sw, 0),
                b: ((sw + 1) % switches, 1),
            })
            .collect();
        // The single ring cycle is dimension 0; its wrap trunk
        // (switch n-1 ⇄ switch 0) is the dateline.
        let trunk_classes = (0..trunks.len())
            .map(|i| TrunkClass {
                dim: 0,
                dateline: i == switches - 1,
            })
            .collect();

        let endpoint_id = |sw: usize, k: usize, device: bool| {
            2 * (sw * pairs_per_switch + k) + usize::from(device)
        };
        let sessions = (0..switches)
            .flat_map(|sw| {
                (0..pairs_per_switch).map(move |k| Session {
                    host: endpoint_id(sw, k, false),
                    device: endpoint_id((sw + span) % switches, k, true),
                })
            })
            .collect();

        FabricTopology {
            name: format!("ring of {switches} (span {span}, {pairs_per_switch} pairs/switch)"),
            endpoints,
            switches: switch_nodes,
            trunks,
            trunk_classes,
            layout: TopologyLayout::Irregular,
            sessions,
        }
    }

    /// A 2-D torus (wrap-around grid) of `cols × rows` switches, each
    /// carrying `pairs_per_switch` host/device pairs. Switch `(r, c)` sits
    /// at index `r * cols + c`; ports 0/1 are the +x/−x trunks, 2/3 the
    /// +y/−y trunks, endpoints attach from port 4. Session `k` of switch
    /// `(r, c)` pairs its host with the device `k` of switch
    /// `((r + rows/2) % rows, (c + cols/2) % cols)` — the antipodal
    /// placement, so saturated workloads exercise full row *and* column
    /// cycles (the configuration that deadlocks without virtual channels).
    ///
    /// Each row's wrap trunk (col `cols-1` ⇄ col 0) is the dimension-0
    /// dateline; each column's wrap trunk (row `rows-1` ⇄ row 0) is the
    /// dimension-1 dateline.
    pub fn torus(cols: usize, rows: usize, pairs_per_switch: usize) -> Self {
        assert!(
            cols >= 3 && rows >= 3,
            "a torus needs at least 3 switches per dimension"
        );
        assert!(pairs_per_switch >= 1);
        let n = cols * rows;
        let ports = 4 + 2 * pairs_per_switch;
        let switch_nodes: Vec<SwitchNode> = (0..n).map(|_| SwitchNode { ports }).collect();

        let mut endpoints = Vec::new();
        for sw in 0..n {
            for k in 0..pairs_per_switch {
                endpoints.push(EndpointNode {
                    role: NodeRole::Host,
                    switch: sw,
                    port: 4 + 2 * k,
                });
                endpoints.push(EndpointNode {
                    role: NodeRole::Device,
                    switch: sw,
                    port: 4 + 2 * k + 1,
                });
            }
        }

        let at = |r: usize, c: usize| r * cols + c;
        let mut trunks = Vec::new();
        let mut trunk_classes = Vec::new();
        // x trunks: (r, c) +x ⇄ (r, c+1) −x; the column wrap is the
        // dimension-0 dateline of that row's cycle.
        for r in 0..rows {
            for c in 0..cols {
                trunks.push(TrunkLink {
                    a: (at(r, c), 0),
                    b: (at(r, (c + 1) % cols), 1),
                });
                trunk_classes.push(TrunkClass {
                    dim: 0,
                    dateline: c == cols - 1,
                });
            }
        }
        // y trunks: (r, c) +y ⇄ (r+1, c) −y; the row wrap is the
        // dimension-1 dateline of that column's cycle.
        for r in 0..rows {
            for c in 0..cols {
                trunks.push(TrunkLink {
                    a: (at(r, c), 2),
                    b: (at((r + 1) % rows, c), 3),
                });
                trunk_classes.push(TrunkClass {
                    dim: 1,
                    dateline: r == rows - 1,
                });
            }
        }

        let endpoint_id = |sw: usize, k: usize, device: bool| {
            2 * (sw * pairs_per_switch + k) + usize::from(device)
        };
        let sessions = (0..n)
            .flat_map(|sw| {
                let (r, c) = (sw / cols, sw % cols);
                let peer = at((r + rows / 2) % rows, (c + cols / 2) % cols);
                (0..pairs_per_switch).map(move |k| Session {
                    host: endpoint_id(sw, k, false),
                    device: endpoint_id(peer, k, true),
                })
            })
            .collect();

        FabricTopology {
            name: format!("torus {cols}x{rows} ({pairs_per_switch} pairs/switch)"),
            endpoints,
            switches: switch_nodes,
            trunks,
            trunk_classes,
            layout: TopologyLayout::Grid { cols, rows },
            sessions,
        }
    }

    /// A small dragonfly: `groups` groups of `group_size` fully-connected
    /// switches, one global trunk per group pair, `pairs_per_switch`
    /// host/device pairs on every switch. The global between groups `i` and
    /// `j` attaches at switch `j % group_size` of group `i` and switch
    /// `i % group_size` of group `j` (a deterministic gateway spread).
    /// Session `k` of switch `s` pairs its host with the device `k` of the
    /// same-position switch of the *next group*, so every session crosses
    /// exactly one global trunk.
    ///
    /// Every global trunk is a dateline: traffic that has entered its
    /// destination group rides escape VC 1 on the remaining local hop,
    /// keeping the local → global → local dependency chain acyclic. Escape
    /// routing (see `RoutingTable`) takes at most one global per path —
    /// longer global detours would put global trunks *after* a dateline
    /// crossing and reopen the cycle.
    pub fn dragonfly(groups: usize, group_size: usize, pairs_per_switch: usize) -> Self {
        assert!(groups >= 2, "a dragonfly needs at least two groups");
        assert!(
            group_size >= 2,
            "a dragonfly group needs at least two switches"
        );
        assert!(pairs_per_switch >= 1);
        let n = groups * group_size;
        let at = |g: usize, s: usize| g * group_size + s;

        // Trunk list: all locals (complete graph per group), then all
        // globals (one per group pair) — globals are the datelines.
        let mut trunk_ends: Vec<((usize, usize), bool)> = Vec::new();
        for g in 0..groups {
            for u in 0..group_size {
                for v in (u + 1)..group_size {
                    trunk_ends.push(((at(g, u), at(g, v)), false));
                }
            }
        }
        for i in 0..groups {
            for j in (i + 1)..groups {
                trunk_ends.push(((at(i, j % group_size), at(j, i % group_size)), true));
            }
        }

        // Assign trunk ports first (in trunk order), then endpoint ports.
        let mut next_port = vec![0usize; n];
        let mut trunks = Vec::new();
        let mut trunk_classes = Vec::new();
        for ((a, b), global) in trunk_ends {
            let pa = next_port[a];
            next_port[a] += 1;
            let pb = next_port[b];
            next_port[b] += 1;
            trunks.push(TrunkLink {
                a: (a, pa),
                b: (b, pb),
            });
            trunk_classes.push(TrunkClass {
                dim: 0,
                dateline: global,
            });
        }

        let mut endpoints = Vec::new();
        for (sw, port) in next_port.iter_mut().enumerate() {
            for _ in 0..pairs_per_switch {
                endpoints.push(EndpointNode {
                    role: NodeRole::Host,
                    switch: sw,
                    port: *port,
                });
                endpoints.push(EndpointNode {
                    role: NodeRole::Device,
                    switch: sw,
                    port: *port + 1,
                });
                *port += 2;
            }
        }
        let switch_nodes: Vec<SwitchNode> = next_port
            .iter()
            .map(|&ports| SwitchNode { ports })
            .collect();

        let endpoint_id = |sw: usize, k: usize, device: bool| {
            2 * (sw * pairs_per_switch + k) + usize::from(device)
        };
        let sessions = (0..n)
            .flat_map(|sw| {
                let peer = (sw + group_size) % n;
                (0..pairs_per_switch).map(move |k| Session {
                    host: endpoint_id(sw, k, false),
                    device: endpoint_id(peer, k, true),
                })
            })
            .collect();

        FabricTopology {
            name: format!("dragonfly {groups}x{group_size} ({pairs_per_switch} pairs/switch)"),
            endpoints,
            switches: switch_nodes,
            trunks,
            trunk_classes,
            layout: TopologyLayout::Dragonfly { groups, group_size },
            sessions,
        }
    }

    /// Virtual-channel class of trunk index `trunk`. Topologies built
    /// before (or without) VC metadata have an empty `trunk_classes` vec;
    /// every trunk then reports the default class (no dateline).
    pub fn trunk_class(&self, trunk: usize) -> TrunkClass {
        assert!(trunk < self.trunks.len(), "trunk out of range");
        self.trunk_classes.get(trunk).copied().unwrap_or_default()
    }

    /// Total number of endpoints.
    pub fn endpoint_count(&self) -> usize {
        self.endpoints.len()
    }

    /// Total number of switching devices.
    pub fn switch_count(&self) -> usize {
        self.switches.len()
    }

    /// Number of host–device sessions.
    pub fn session_count(&self) -> usize {
        self.sessions.len()
    }

    /// Total number of physical links: every endpoint attachment link plus
    /// every trunk.
    pub fn link_count(&self) -> usize {
        self.endpoints.len() + self.trunks.len()
    }

    /// The attachment link of endpoint `endpoint`.
    pub fn endpoint_link(&self, endpoint: usize) -> LinkId {
        assert!(endpoint < self.endpoints.len(), "endpoint out of range");
        LinkId(endpoint)
    }

    /// The link of trunk index `trunk` (position in [`Self::trunks`]).
    pub fn trunk_link(&self, trunk: usize) -> LinkId {
        assert!(trunk < self.trunks.len(), "trunk out of range");
        LinkId(self.endpoints.len() + trunk)
    }

    /// The trunk link connecting switches `a` and `b` (either orientation),
    /// if one exists — the natural way for a scenario to name "the leaf 0 →
    /// spine 0 uplink".
    pub fn trunk_between(&self, a: usize, b: usize) -> Option<LinkId> {
        self.trunks
            .iter()
            .position(|t| (t.a.0 == a && t.b.0 == b) || (t.a.0 == b && t.b.0 == a))
            .map(|i| self.trunk_link(i))
    }

    /// The link attached at port `port` of switch `sw`, if any — the
    /// inverse of the per-port attachment encoded in [`Self::endpoints`]
    /// and [`Self::trunks`]. Spatial-metrics consumers use it to map
    /// per-port counters (e.g. credit stalls) onto physical links.
    pub fn link_at_port(&self, sw: usize, port: usize) -> Option<LinkId> {
        if let Some(i) = self
            .endpoints
            .iter()
            .position(|ep| ep.switch == sw && ep.port == port)
        {
            return Some(LinkId(i));
        }
        self.trunks
            .iter()
            .position(|t| t.a == (sw, port) || t.b == (sw, port))
            .map(|i| self.trunk_link(i))
    }

    /// Every link that touches switch `sw`: its endpoints' attachment links
    /// and its trunks, in deterministic id order.
    pub fn links_of_switch(&self, sw: usize) -> Vec<LinkId> {
        let mut links: Vec<LinkId> = self
            .endpoints
            .iter()
            .enumerate()
            .filter(|(_, ep)| ep.switch == sw)
            .map(|(i, _)| LinkId(i))
            .collect();
        links.extend(
            self.trunks
                .iter()
                .enumerate()
                .filter(|(_, t)| t.a.0 == sw || t.b.0 == sw)
                .map(|(i, _)| self.trunk_link(i)),
        );
        links
    }

    /// Human-readable description of a link, for scenario reports.
    pub fn describe_link(&self, link: LinkId) -> String {
        if link.0 < self.endpoints.len() {
            let ep = &self.endpoints[link.0];
            format!("{:?} endpoint {} ⇄ switch {}", ep.role, link.0, ep.switch)
        } else {
            let t = &self.trunks[link.0 - self.endpoints.len()];
            format!("trunk switch {} ⇄ switch {}", t.a.0, t.b.0)
        }
    }

    /// Checks structural invariants: ports in range, no port used twice, all
    /// session endpoints valid with host/device roles. Panics with a
    /// description on violation; generator unit tests and `FabricSim::new`
    /// call this so malformed topologies fail fast.
    pub fn validate(&self) {
        let mut used = std::collections::HashSet::new();
        for (i, ep) in self.endpoints.iter().enumerate() {
            assert!(ep.switch < self.switches.len(), "endpoint {i}: bad switch");
            assert!(
                ep.port < self.switches[ep.switch].ports,
                "endpoint {i}: port out of range"
            );
            assert!(
                used.insert((ep.switch, ep.port)),
                "endpoint {i}: port {:?} already used",
                (ep.switch, ep.port)
            );
        }
        for (i, t) in self.trunks.iter().enumerate() {
            for (sw, port) in [t.a, t.b] {
                assert!(sw < self.switches.len(), "trunk {i}: bad switch");
                assert!(
                    port < self.switches[sw].ports,
                    "trunk {i}: port out of range"
                );
                assert!(
                    used.insert((sw, port)),
                    "trunk {i}: port {:?} already used",
                    (sw, port)
                );
            }
        }
        assert!(
            self.trunk_classes.is_empty() || self.trunk_classes.len() == self.trunks.len(),
            "trunk_classes must be empty or parallel to trunks"
        );
        for (i, s) in self.sessions.iter().enumerate() {
            assert!(
                s.host < self.endpoints.len() && s.device < self.endpoints.len(),
                "session {i}: endpoint out of range"
            );
            assert_eq!(
                self.endpoints[s.host].role,
                NodeRole::Host,
                "session {i}: host side is not a host"
            );
            assert_eq!(
                self.endpoints[s.device].role,
                NodeRole::Device,
                "session {i}: device side is not a device"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leaf_spine_shape() {
        let t = FabricTopology::leaf_spine(3, 2, 2);
        t.validate();
        assert_eq!(t.switch_count(), 5);
        assert_eq!(t.endpoint_count(), 12);
        assert_eq!(t.session_count(), 6);
        assert_eq!(t.trunks.len(), 6);
        // Sessions cross leaves.
        for s in &t.sessions {
            assert_ne!(
                t.endpoints[s.host].switch, t.endpoints[s.device].switch,
                "leaf-spine sessions must cross leaves"
            );
        }
    }

    #[test]
    fn fat_tree2_shape() {
        let t = FabricTopology::fat_tree2(2, 2, 3);
        t.validate();
        assert_eq!(t.switch_count(), 6);
        assert_eq!(t.endpoint_count(), 12);
        assert_eq!(t.session_count(), 6);
        assert_eq!(t.trunks.len(), 8);
        // Hosts live on the host tier, devices on the device tier.
        for s in &t.sessions {
            assert!(t.endpoints[s.host].switch < 2);
            assert!((2..4).contains(&t.endpoints[s.device].switch));
        }
    }

    #[test]
    fn ring_shape_and_span() {
        let t = FabricTopology::ring(6, 1, 2);
        t.validate();
        assert_eq!(t.switch_count(), 6);
        assert_eq!(t.endpoint_count(), 12);
        assert_eq!(t.trunks.len(), 6);
        for s in &t.sessions {
            let a = t.endpoints[s.host].switch;
            let b = t.endpoints[s.device].switch;
            assert_eq!((a + 2) % 6, b);
        }
    }

    #[test]
    fn ring_span_zero_keeps_sessions_local() {
        let t = FabricTopology::ring(3, 2, 0);
        t.validate();
        for s in &t.sessions {
            assert_eq!(t.endpoints[s.host].switch, t.endpoints[s.device].switch);
        }
    }

    #[test]
    #[should_panic]
    fn ring_rejects_over_half_spans() {
        let _ = FabricTopology::ring(4, 1, 3);
    }

    #[test]
    fn ring_marks_one_dateline_on_the_wrap_trunk() {
        let t = FabricTopology::ring(6, 1, 2);
        let datelines: Vec<usize> = (0..t.trunks.len())
            .filter(|&i| t.trunk_class(i).dateline)
            .collect();
        assert_eq!(datelines, [5], "exactly the wrap trunk is the dateline");
        assert!((0..t.trunks.len()).all(|i| t.trunk_class(i).dim == 0));
        // Topologies without VC metadata report the default class.
        let ls = FabricTopology::leaf_spine(2, 2, 1);
        assert!(ls.trunk_classes.is_empty());
        assert_eq!(ls.trunk_class(0), TrunkClass::default());
        assert_eq!(ls.layout, TopologyLayout::Irregular);
    }

    #[test]
    fn torus_shape_and_datelines() {
        let t = FabricTopology::torus(3, 4, 1);
        t.validate();
        assert_eq!(t.switch_count(), 12);
        assert_eq!(t.endpoint_count(), 24);
        assert_eq!(t.trunks.len(), 24, "2 trunks per switch in a 2-D torus");
        assert_eq!(t.layout, TopologyLayout::Grid { cols: 3, rows: 4 });
        // One dateline per row cycle (dim 0) and per column cycle (dim 1).
        let d0 = (0..t.trunks.len())
            .filter(|&i| t.trunk_class(i).dateline && t.trunk_class(i).dim == 0)
            .count();
        let d1 = (0..t.trunks.len())
            .filter(|&i| t.trunk_class(i).dateline && t.trunk_class(i).dim == 1)
            .count();
        assert_eq!((d0, d1), (4, 3));
        // Antipodal sessions cross both dimensions.
        for s in &t.sessions {
            let (a, b) = (t.endpoints[s.host].switch, t.endpoints[s.device].switch);
            assert_ne!(a / 3, b / 3, "sessions must cross rows");
            assert_ne!(a % 3, b % 3, "sessions must cross columns");
        }
    }

    #[test]
    fn dragonfly_shape_globals_are_datelines() {
        let t = FabricTopology::dragonfly(3, 2, 1);
        t.validate();
        assert_eq!(t.switch_count(), 6);
        // Locals: 1 per group × 3 groups; globals: C(3,2) = 3.
        assert_eq!(t.trunks.len(), 6);
        let datelines = (0..t.trunks.len())
            .filter(|&i| t.trunk_class(i).dateline)
            .count();
        assert_eq!(datelines, 3, "every global trunk is a dateline");
        // Each session crosses into another group.
        for s in &t.sessions {
            let (a, b) = (t.endpoints[s.host].switch, t.endpoints[s.device].switch);
            assert_ne!(a / 2, b / 2, "dragonfly sessions must cross groups");
        }
    }
}
