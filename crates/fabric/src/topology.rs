//! Multi-switch fabric topologies.
//!
//! Where `rxl_sim::Topology` describes the *path* between one host and one
//! device (a chain of switches), the types here describe a whole *fabric*:
//! many hosts, many devices, shared switches, and the trunk links between
//! them. Three generator families cover the scale-out scenarios of the
//! paper's Sections 6.4 and 7.1:
//!
//! * [`FabricTopology::leaf_spine`] — endpoints on leaf switches, every leaf
//!   connected to every spine; cross-leaf sessions traverse
//!   leaf → spine → leaf (three switching levels).
//! * [`FabricTopology::fat_tree2`] — a two-tier fat-tree with a dedicated
//!   host tier and a dedicated device tier of edge switches joined by core
//!   switches (the disaggregated-memory shape of the paper's introduction).
//! * [`FabricTopology::ring`] — switches in a cycle, sessions spanning a
//!   configurable number of hops; the generator of choice for sweeping
//!   switching depth, since a session's path crosses exactly `span + 1`
//!   switches.

/// Whether an endpoint initiates requests (host) or serves them (device).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NodeRole {
    /// A request-initiating endpoint (CPU / host bridge).
    Host,
    /// A request-serving endpoint (accelerator / memory device).
    Device,
}

/// One endpoint of the fabric and its attachment point.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EndpointNode {
    /// Host or device.
    pub role: NodeRole,
    /// Index of the switch the endpoint is attached to.
    pub switch: usize,
    /// Port on that switch the endpoint occupies.
    pub port: usize,
}

/// One switching device of the fabric.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SwitchNode {
    /// Number of ports (endpoint ports + trunk ports).
    pub ports: usize,
}

/// A bidirectional trunk link between two switch ports.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TrunkLink {
    /// One side: `(switch index, port)`.
    pub a: (usize, usize),
    /// The other side: `(switch index, port)`.
    pub b: (usize, usize),
}

/// One transaction session: a host–device pair exchanging bidirectional
/// traffic across the fabric.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Session {
    /// Endpoint index of the host side.
    pub host: usize,
    /// Endpoint index of the device side.
    pub device: usize,
}

/// Identifier of one physical link of the fabric: either an endpoint's
/// attachment link (endpoint ⇄ its switch) or a trunk (switch ⇄ switch).
/// Links are what fault-injection scenarios target — the fabric engine keeps
/// one (possibly time-varying) channel per link. Obtain ids via
/// [`FabricTopology::endpoint_link`], [`FabricTopology::trunk_link`] or
/// [`FabricTopology::trunk_between`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LinkId(pub(crate) usize);

impl LinkId {
    /// Dense index into the fabric's link space: endpoint attachment links
    /// first (in endpoint order), then trunks (in trunk order).
    pub fn index(&self) -> usize {
        self.0
    }
}

/// A complete fabric description: endpoints, switches, trunks, and the
/// host–device sessions that will exercise them.
#[derive(Clone, Debug)]
pub struct FabricTopology {
    /// Human-readable topology label for reports.
    pub name: String,
    /// All endpoints, hosts and devices interleaved.
    pub endpoints: Vec<EndpointNode>,
    /// All switching devices.
    pub switches: Vec<SwitchNode>,
    /// All switch-to-switch trunk links.
    pub trunks: Vec<TrunkLink>,
    /// All host–device sessions.
    pub sessions: Vec<Session>,
}

impl FabricTopology {
    /// A leaf–spine fabric: `leaves` leaf switches each carrying
    /// `pairs_per_leaf` host/device pairs, fully meshed to `spines` spine
    /// switches. Session `k` of leaf `l` pairs that leaf's host `k` with the
    /// device `k` of leaf `(l + 1) % leaves`, so with more than one leaf
    /// every session crosses leaf → spine → leaf (three switching levels).
    pub fn leaf_spine(leaves: usize, spines: usize, pairs_per_leaf: usize) -> Self {
        assert!(leaves >= 1 && spines >= 1 && pairs_per_leaf >= 1);
        let leaf_ports = 2 * pairs_per_leaf + spines;
        let mut switches: Vec<SwitchNode> = (0..leaves)
            .map(|_| SwitchNode { ports: leaf_ports })
            .collect();
        switches.extend((0..spines).map(|_| SwitchNode { ports: leaves }));

        let mut endpoints = Vec::new();
        for leaf in 0..leaves {
            for k in 0..pairs_per_leaf {
                endpoints.push(EndpointNode {
                    role: NodeRole::Host,
                    switch: leaf,
                    port: 2 * k,
                });
                endpoints.push(EndpointNode {
                    role: NodeRole::Device,
                    switch: leaf,
                    port: 2 * k + 1,
                });
            }
        }

        let mut trunks = Vec::new();
        for leaf in 0..leaves {
            for spine in 0..spines {
                trunks.push(TrunkLink {
                    a: (leaf, 2 * pairs_per_leaf + spine),
                    b: (leaves + spine, leaf),
                });
            }
        }

        let endpoint_id = |leaf: usize, k: usize, device: bool| {
            2 * (leaf * pairs_per_leaf + k) + usize::from(device)
        };
        let sessions = (0..leaves)
            .flat_map(|leaf| {
                (0..pairs_per_leaf).map(move |k| Session {
                    host: endpoint_id(leaf, k, false),
                    device: endpoint_id((leaf + 1) % leaves, k, true),
                })
            })
            .collect();

        FabricTopology {
            name: format!("leaf-spine {leaves}x{spines} ({pairs_per_leaf} pairs/leaf)"),
            endpoints,
            switches,
            trunks,
            sessions,
        }
    }

    /// A two-tier fat-tree with a dedicated host tier and device tier:
    /// `edges` host-side edge switches (each with `pairs_per_edge` hosts),
    /// `edges` device-side edge switches (each with `pairs_per_edge`
    /// devices), and `cores` core switches meshing the two tiers. Every
    /// session crosses host-edge → core → device-edge (three switching
    /// levels), the disaggregated-pool shape of the paper's introduction.
    pub fn fat_tree2(edges: usize, cores: usize, pairs_per_edge: usize) -> Self {
        assert!(edges >= 1 && cores >= 1 && pairs_per_edge >= 1);
        let edge_ports = pairs_per_edge + cores;
        // Switch order: host edges, device edges, cores.
        let mut switches: Vec<SwitchNode> = (0..2 * edges)
            .map(|_| SwitchNode { ports: edge_ports })
            .collect();
        switches.extend((0..cores).map(|_| SwitchNode { ports: 2 * edges }));

        let mut endpoints = Vec::new();
        for edge in 0..edges {
            for k in 0..pairs_per_edge {
                endpoints.push(EndpointNode {
                    role: NodeRole::Host,
                    switch: edge,
                    port: k,
                });
            }
        }
        for edge in 0..edges {
            for k in 0..pairs_per_edge {
                endpoints.push(EndpointNode {
                    role: NodeRole::Device,
                    switch: edges + edge,
                    port: k,
                });
            }
        }

        let mut trunks = Vec::new();
        for edge in 0..2 * edges {
            for core in 0..cores {
                trunks.push(TrunkLink {
                    a: (edge, pairs_per_edge + core),
                    b: (2 * edges + core, edge),
                });
            }
        }

        let hosts = edges * pairs_per_edge;
        let sessions = (0..hosts)
            .map(|h| Session {
                host: h,
                device: hosts + h,
            })
            .collect();

        FabricTopology {
            name: format!("fat-tree-2 {edges}+{edges}x{cores} ({pairs_per_edge} pairs/edge)"),
            endpoints,
            switches,
            trunks,
            sessions,
        }
    }

    /// A ring of `switches` switches, each carrying `pairs_per_switch`
    /// host/device pairs. Session `k` of switch `i` pairs that switch's host
    /// `k` with the device `k` of switch `(i + span) % switches`, so every
    /// session's shortest path crosses exactly `span + 1` switches —
    /// the generator to use when sweeping switching depth.
    pub fn ring(switches: usize, pairs_per_switch: usize, span: usize) -> Self {
        assert!(switches >= 3, "a ring needs at least three switches");
        assert!(pairs_per_switch >= 1);
        assert!(
            span <= switches / 2,
            "span beyond half the ring would not be the shortest path"
        );
        // Ports: 0 = clockwise trunk (to i+1), 1 = counter-clockwise trunk
        // (to i-1), then endpoint ports.
        let ports = 2 + 2 * pairs_per_switch;
        let switch_nodes: Vec<SwitchNode> = (0..switches).map(|_| SwitchNode { ports }).collect();

        let mut endpoints = Vec::new();
        for sw in 0..switches {
            for k in 0..pairs_per_switch {
                endpoints.push(EndpointNode {
                    role: NodeRole::Host,
                    switch: sw,
                    port: 2 + 2 * k,
                });
                endpoints.push(EndpointNode {
                    role: NodeRole::Device,
                    switch: sw,
                    port: 2 + 2 * k + 1,
                });
            }
        }

        let trunks = (0..switches)
            .map(|sw| TrunkLink {
                a: (sw, 0),
                b: ((sw + 1) % switches, 1),
            })
            .collect();

        let endpoint_id = |sw: usize, k: usize, device: bool| {
            2 * (sw * pairs_per_switch + k) + usize::from(device)
        };
        let sessions = (0..switches)
            .flat_map(|sw| {
                (0..pairs_per_switch).map(move |k| Session {
                    host: endpoint_id(sw, k, false),
                    device: endpoint_id((sw + span) % switches, k, true),
                })
            })
            .collect();

        FabricTopology {
            name: format!("ring of {switches} (span {span}, {pairs_per_switch} pairs/switch)"),
            endpoints,
            switches: switch_nodes,
            trunks,
            sessions,
        }
    }

    /// Total number of endpoints.
    pub fn endpoint_count(&self) -> usize {
        self.endpoints.len()
    }

    /// Total number of switching devices.
    pub fn switch_count(&self) -> usize {
        self.switches.len()
    }

    /// Number of host–device sessions.
    pub fn session_count(&self) -> usize {
        self.sessions.len()
    }

    /// Total number of physical links: every endpoint attachment link plus
    /// every trunk.
    pub fn link_count(&self) -> usize {
        self.endpoints.len() + self.trunks.len()
    }

    /// The attachment link of endpoint `endpoint`.
    pub fn endpoint_link(&self, endpoint: usize) -> LinkId {
        assert!(endpoint < self.endpoints.len(), "endpoint out of range");
        LinkId(endpoint)
    }

    /// The link of trunk index `trunk` (position in [`Self::trunks`]).
    pub fn trunk_link(&self, trunk: usize) -> LinkId {
        assert!(trunk < self.trunks.len(), "trunk out of range");
        LinkId(self.endpoints.len() + trunk)
    }

    /// The trunk link connecting switches `a` and `b` (either orientation),
    /// if one exists — the natural way for a scenario to name "the leaf 0 →
    /// spine 0 uplink".
    pub fn trunk_between(&self, a: usize, b: usize) -> Option<LinkId> {
        self.trunks
            .iter()
            .position(|t| (t.a.0 == a && t.b.0 == b) || (t.a.0 == b && t.b.0 == a))
            .map(|i| self.trunk_link(i))
    }

    /// Every link that touches switch `sw`: its endpoints' attachment links
    /// and its trunks, in deterministic id order.
    pub fn links_of_switch(&self, sw: usize) -> Vec<LinkId> {
        let mut links: Vec<LinkId> = self
            .endpoints
            .iter()
            .enumerate()
            .filter(|(_, ep)| ep.switch == sw)
            .map(|(i, _)| LinkId(i))
            .collect();
        links.extend(
            self.trunks
                .iter()
                .enumerate()
                .filter(|(_, t)| t.a.0 == sw || t.b.0 == sw)
                .map(|(i, _)| self.trunk_link(i)),
        );
        links
    }

    /// Human-readable description of a link, for scenario reports.
    pub fn describe_link(&self, link: LinkId) -> String {
        if link.0 < self.endpoints.len() {
            let ep = &self.endpoints[link.0];
            format!("{:?} endpoint {} ⇄ switch {}", ep.role, link.0, ep.switch)
        } else {
            let t = &self.trunks[link.0 - self.endpoints.len()];
            format!("trunk switch {} ⇄ switch {}", t.a.0, t.b.0)
        }
    }

    /// Checks structural invariants: ports in range, no port used twice, all
    /// session endpoints valid with host/device roles. Panics with a
    /// description on violation; generator unit tests and `FabricSim::new`
    /// call this so malformed topologies fail fast.
    pub fn validate(&self) {
        let mut used = std::collections::HashSet::new();
        for (i, ep) in self.endpoints.iter().enumerate() {
            assert!(ep.switch < self.switches.len(), "endpoint {i}: bad switch");
            assert!(
                ep.port < self.switches[ep.switch].ports,
                "endpoint {i}: port out of range"
            );
            assert!(
                used.insert((ep.switch, ep.port)),
                "endpoint {i}: port {:?} already used",
                (ep.switch, ep.port)
            );
        }
        for (i, t) in self.trunks.iter().enumerate() {
            for (sw, port) in [t.a, t.b] {
                assert!(sw < self.switches.len(), "trunk {i}: bad switch");
                assert!(
                    port < self.switches[sw].ports,
                    "trunk {i}: port out of range"
                );
                assert!(
                    used.insert((sw, port)),
                    "trunk {i}: port {:?} already used",
                    (sw, port)
                );
            }
        }
        for (i, s) in self.sessions.iter().enumerate() {
            assert!(
                s.host < self.endpoints.len() && s.device < self.endpoints.len(),
                "session {i}: endpoint out of range"
            );
            assert_eq!(
                self.endpoints[s.host].role,
                NodeRole::Host,
                "session {i}: host side is not a host"
            );
            assert_eq!(
                self.endpoints[s.device].role,
                NodeRole::Device,
                "session {i}: device side is not a device"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leaf_spine_shape() {
        let t = FabricTopology::leaf_spine(3, 2, 2);
        t.validate();
        assert_eq!(t.switch_count(), 5);
        assert_eq!(t.endpoint_count(), 12);
        assert_eq!(t.session_count(), 6);
        assert_eq!(t.trunks.len(), 6);
        // Sessions cross leaves.
        for s in &t.sessions {
            assert_ne!(
                t.endpoints[s.host].switch, t.endpoints[s.device].switch,
                "leaf-spine sessions must cross leaves"
            );
        }
    }

    #[test]
    fn fat_tree2_shape() {
        let t = FabricTopology::fat_tree2(2, 2, 3);
        t.validate();
        assert_eq!(t.switch_count(), 6);
        assert_eq!(t.endpoint_count(), 12);
        assert_eq!(t.session_count(), 6);
        assert_eq!(t.trunks.len(), 8);
        // Hosts live on the host tier, devices on the device tier.
        for s in &t.sessions {
            assert!(t.endpoints[s.host].switch < 2);
            assert!((2..4).contains(&t.endpoints[s.device].switch));
        }
    }

    #[test]
    fn ring_shape_and_span() {
        let t = FabricTopology::ring(6, 1, 2);
        t.validate();
        assert_eq!(t.switch_count(), 6);
        assert_eq!(t.endpoint_count(), 12);
        assert_eq!(t.trunks.len(), 6);
        for s in &t.sessions {
            let a = t.endpoints[s.host].switch;
            let b = t.endpoints[s.device].switch;
            assert_eq!((a + 2) % 6, b);
        }
    }

    #[test]
    fn ring_span_zero_keeps_sessions_local() {
        let t = FabricTopology::ring(3, 2, 0);
        t.validate();
        for s in &t.sessions {
            assert_eq!(t.endpoints[s.host].switch, t.endpoints[s.device].switch);
        }
    }

    #[test]
    #[should_panic]
    fn ring_rejects_over_half_spans() {
        let _ = FabricTopology::ring(4, 1, 3);
    }
}
