//! Cross-check of the fabric simulation against the analytic FIT model.
//!
//! The paper's Section 7.1 failure rates are derived analytically from two
//! measured inputs: the per-hop uncorrectable flit rate (`FER_UC`, taken
//! from the PCIe 6.0 spec bound) and the ACK-coalescing fraction
//! (`p_coalescing`). The cross-check runs the full fabric simulator at an
//! *accelerated* BER, measures those same two inputs from the simulation
//! itself, feeds them into [`ReliabilityModel`], and compares the model's
//! predicted `Fail_order` rate against the rate of undetected-drop events
//! the simulator actually observed. Agreement (within the Monte-Carlo
//! confidence interval) validates the protocol failure logic — the
//! piggybacked-ACK blind spot and its linear scaling with switching depth —
//! independently of the analytic derivation.

use rxl_analysis::ReliabilityModel;
use rxl_link::ProtocolVariant;

use crate::montecarlo::FabricMonteCarloReport;

/// Outcome of one empirical-vs-analytic comparison.
#[derive(Clone, Copy, Debug)]
pub struct FitCrosscheck {
    /// Protocol variant simulated.
    pub variant: ProtocolVariant,
    /// Switches on every session's path (uniform across sessions).
    pub path_switches: u32,
    /// Accelerated BER the fabric ran at.
    pub ber: f64,
    /// Trials aggregated.
    pub trials: u64,
    /// First-transmission payload flits (the exposure denominator).
    pub payload_flits: u64,
    /// Silent switch drops observed (all flit kinds).
    pub silent_drops: u64,
    /// Undetected-drop (`Fail_order`) events observed.
    pub undetected_drop_events: u64,
    /// Measured silent-drop probability per switch traversal (the
    /// accelerated-point counterpart of the paper's `FER_UC`).
    pub measured_drop_rate: f64,
    /// Measured fraction of protocol flits carrying a piggybacked ACK (the
    /// counterpart of the paper's `p_coalescing`).
    pub measured_p_coalescing: f64,
    /// Observed undetected-drop events per payload flit.
    pub empirical_failure_rate: f64,
    /// The analytic model's `Fail_order` probability per flit, evaluated at
    /// the measured accelerated operating point.
    pub analytic_failure_rate: f64,
    /// Standard error of the per-trial empirical rates.
    pub failure_rate_stderr: f64,
    /// Observed failures converted to FIT at the paper's flit rate.
    pub empirical_fit: f64,
    /// Analytic FIT at the measured accelerated operating point.
    pub analytic_fit: f64,
}

impl FitCrosscheck {
    /// Compares a fabric Monte-Carlo report against the analytic model.
    ///
    /// `path_switches` is the (uniform) number of switches on every
    /// session's path — the `levels` parameter of the analytic FIT
    /// generalisation.
    pub fn new(
        report: &FabricMonteCarloReport,
        variant: ProtocolVariant,
        path_switches: u32,
        ber: f64,
    ) -> Self {
        Self::with_model(
            report,
            variant,
            path_switches,
            ber,
            &ReliabilityModel::cxl3_x16(),
        )
    }

    /// Like [`Self::new`], but taking a custom base model for everything the
    /// measurement does not override (flit rate, flit size, CRC width).
    pub fn with_model(
        report: &FabricMonteCarloReport,
        variant: ProtocolVariant,
        path_switches: u32,
        ber: f64,
        base: &ReliabilityModel,
    ) -> Self {
        let measured_drop_rate = report.drop_rate_per_hop();
        let measured_p_coalescing = report.links.measured_p_coalescing();

        // The paper's model with both measured inputs substituted for their
        // spec-sheet values; everything else stays at the base operating
        // point.
        let model = ReliabilityModel {
            ber,
            fer_uc: measured_drop_rate,
            p_coalescing: measured_p_coalescing,
            ..*base
        };
        let analytic_fit = match variant {
            ProtocolVariant::Rxl => model.fit_rxl_levels(path_switches),
            // Both CXL flavours share the Fail_order formula; the standalone
            // variant simply measures p_coalescing = 0 and predicts zero.
            _ => model.fit_cxl_levels(path_switches.max(1)),
        };
        let analytic_failure_rate = match variant {
            ProtocolVariant::Rxl => {
                model.fer_uc
                    * (1.0 + path_switches as f64 * model.fer_uc)
                    * model.crc_escape_fraction()
            }
            _ => model.fer_order_multi_switch(path_switches.max(1)),
        };

        let empirical_failure_rate = report.pooled_event_rate();
        FitCrosscheck {
            variant,
            path_switches,
            ber,
            trials: report.trials,
            payload_flits: report.links.flits_sent,
            silent_drops: report.switches.flits_dropped_uncorrectable,
            undetected_drop_events: report.undetected_drop_events,
            measured_drop_rate,
            measured_p_coalescing,
            empirical_failure_rate,
            analytic_failure_rate,
            failure_rate_stderr: report.event_rate_stderr(),
            empirical_fit: model.fit_from_failure_rate(empirical_failure_rate),
            analytic_fit,
        }
    }

    /// Ratio of empirical to analytic failure rate (1.0 = perfect
    /// agreement); `NaN` when the analytic rate is zero.
    pub fn ratio(&self) -> f64 {
        self.empirical_failure_rate / self.analytic_failure_rate
    }

    /// `true` if the empirical rate agrees with the analytic prediction
    /// within `k_sigma` standard errors of the Monte-Carlo estimate. An
    /// absolute floor of 10⁻¹² per flit keeps the comparison meaningful when
    /// both sides are (essentially) zero, as for RXL, whose analytic rate is
    /// ~2⁻⁶⁴ of the drop rate.
    pub fn agrees_within(&self, k_sigma: f64) -> bool {
        let tolerance = k_sigma * self.failure_rate_stderr + 1e-12;
        (self.empirical_failure_rate - self.analytic_failure_rate).abs() <= tolerance
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rxl_link::LinkStats;
    use rxl_switch::SwitchStats;

    fn synthetic_report(
        events: u64,
        flits: u64,
        drops: u64,
        flits_in: u64,
    ) -> FabricMonteCarloReport {
        FabricMonteCarloReport {
            trials: 4,
            links: LinkStats {
                flits_sent: flits,
                acks_sent: flits / 10,
                ..Default::default()
            },
            switches: SwitchStats {
                flits_in,
                flits_dropped_uncorrectable: drops,
                ..Default::default()
            },
            undetected_drop_events: events,
            event_rates: vec![events as f64 / flits as f64; 4],
            ..Default::default()
        }
    }

    #[test]
    fn perfect_agreement_is_detected() {
        // 3 hops, drop rate 1e-3, p_c 0.1 → analytic 3e-4 per flit; give the
        // empirical side exactly that.
        let report = synthetic_report(30, 100_000, 300, 300_000);
        let cc = FitCrosscheck::new(&report, ProtocolVariant::CxlPiggyback, 3, 1e-4);
        assert!((cc.measured_drop_rate - 1e-3).abs() < 1e-12);
        assert!((cc.measured_p_coalescing - 0.1).abs() < 1e-12);
        assert!((cc.ratio() - 1.0).abs() < 1e-9);
        assert!(cc.agrees_within(1.0));
        assert!(cc.empirical_fit > 0.0);
        assert!((cc.empirical_fit - cc.analytic_fit).abs() < 1e-3 * cc.analytic_fit);
    }

    #[test]
    fn gross_disagreement_is_detected() {
        // Ten times the analytic rate with a tight stderr must fail.
        let mut report = synthetic_report(300, 100_000, 300, 300_000);
        report.event_rates = vec![3e-3; 4];
        let cc = FitCrosscheck::new(&report, ProtocolVariant::CxlPiggyback, 3, 1e-4);
        assert!(cc.ratio() > 5.0);
        assert!(!cc.agrees_within(4.0));
    }

    #[test]
    fn rxl_zero_failures_agree_via_the_absolute_floor() {
        let report = synthetic_report(0, 100_000, 300, 300_000);
        let cc = FitCrosscheck::new(&report, ProtocolVariant::Rxl, 3, 1e-4);
        assert_eq!(cc.empirical_failure_rate, 0.0);
        assert!(cc.analytic_failure_rate < 1e-15);
        assert!(cc.agrees_within(1.0));
    }
}
