//! Sharded Monte-Carlo execution of independent fabric trials.
//!
//! Trials are partitioned across rayon workers; each trial derives its RNG
//! seed with the workspace-wide SplitMix64 finalizer
//! ([`rxl_sim::trial_seed`]), and the parallel collect preserves trial
//! order, so for a fixed base seed the aggregate report is bit-identical
//! regardless of worker-thread count — the same reproducibility contract the
//! single-path Monte-Carlo pins.

use rayon::prelude::*;

use rxl_link::LinkStats;
use rxl_sim::trial_seed;
use rxl_switch::SwitchStats;
use rxl_transport::FailureCounts;

use crate::engine::{FabricConfig, FabricReport, FabricSim, FabricWorkload};
use crate::routing::RoutingTable;
use crate::topology::FabricTopology;

/// A fabric Monte-Carlo experiment: one topology and configuration, many
/// seeds.
#[derive(Clone, Debug)]
pub struct FabricMonteCarlo {
    topology: FabricTopology,
    config: FabricConfig,
    trials: u64,
}

/// Aggregate results over every fabric trial.
#[derive(Clone, Debug, Default)]
pub struct FabricMonteCarloReport {
    /// Number of trials executed.
    pub trials: u64,
    /// Summed failure counts over both directions of every trial.
    pub failures: FailureCounts,
    /// Summed link statistics over every endpoint of every trial.
    pub links: LinkStats,
    /// Summed switch statistics over every trial.
    pub switches: SwitchStats,
    /// Summed undetected-drop (`Fail_order`) events.
    pub undetected_drop_events: u64,
    /// Summed silent drops of protocol flits (retransmissions included).
    pub protocol_flit_drops: u64,
    /// Summed silent drops of first-transmission payload flits.
    pub payload_drops: u64,
    /// Summed drops eligible for the piggybacked-ACK blind spot (receiver in
    /// normal flow at drop time).
    pub eligible_payload_drops: u64,
    /// Summed replay-window leak events (the second-order channel outside
    /// the analytic model).
    pub replay_leak_events: u64,
    /// Summed credit-stall slots.
    pub credit_stalls: u64,
    /// Trials that drained before their slot limit.
    pub drained_trials: u64,
    /// Trials that stalled *after* delivering every message (control-plane
    /// replay wedge); these still count as drained.
    pub post_delivery_wedge_trials: u64,
    /// Per-trial undetected-drop event rates (events per protocol flit), in
    /// trial order, for dispersion estimates.
    pub event_rates: Vec<f64>,
}

impl FabricMonteCarloReport {
    /// Pooled undetected-drop events per first-transmission payload flit.
    pub fn pooled_event_rate(&self) -> f64 {
        if self.links.flits_sent == 0 {
            return 0.0;
        }
        self.undetected_drop_events as f64 / self.links.flits_sent as f64
    }

    /// Mean of the per-trial event rates.
    pub fn mean_event_rate(&self) -> f64 {
        if self.event_rates.is_empty() {
            return 0.0;
        }
        self.event_rates.iter().sum::<f64>() / self.event_rates.len() as f64
    }

    /// Standard error of the per-trial event rates — the Monte-Carlo
    /// confidence scale the analytic cross-check tests against.
    pub fn event_rate_stderr(&self) -> f64 {
        let n = self.event_rates.len();
        if n < 2 {
            return 0.0;
        }
        let m = self.mean_event_rate();
        let var = self
            .event_rates
            .iter()
            .map(|x| (x - m) * (x - m))
            .sum::<f64>()
            / (n - 1) as f64;
        (var / n as f64).sqrt()
    }

    /// Measured silent-drop probability per switch traversal.
    pub fn drop_rate_per_hop(&self) -> f64 {
        self.switches.drop_rate()
    }

    /// Pooled failure rate over delivered-or-lost messages.
    pub fn pooled_failure_rate(&self) -> f64 {
        self.failures.failure_rate()
    }
}

impl FabricMonteCarlo {
    /// Creates an experiment running `trials` independent trials.
    pub fn new(topology: FabricTopology, config: FabricConfig, trials: u64) -> Self {
        topology.validate();
        FabricMonteCarlo {
            topology,
            config,
            trials,
        }
    }

    /// The topology under test.
    pub fn topology(&self) -> &FabricTopology {
        &self.topology
    }

    /// The per-trial configuration.
    pub fn config(&self) -> &FabricConfig {
        &self.config
    }

    /// Number of trials configured.
    pub fn trials(&self) -> u64 {
        self.trials
    }

    /// Runs every trial (sharded across rayon workers) and aggregates.
    ///
    /// Reproducibility: each trial's seed depends only on
    /// `(config.seed, trial)` via [`rxl_sim::trial_seed`], the routing table
    /// is computed once and shared read-only, and aggregation folds the
    /// order-preserving collect in trial order — so the report is identical
    /// for any worker-thread count.
    pub fn run(&self, workload: &FabricWorkload) -> FabricMonteCarloReport {
        let routing = RoutingTable::new(&self.topology);
        let base = self.config.seed;
        let reports: Vec<FabricReport> = (0..self.trials)
            .into_par_iter()
            .map(|trial| {
                let config = self.config.with_seed(trial_seed(base, trial));
                FabricSim::new(&self.topology, &routing, config).run(workload)
            })
            .collect();

        let mut agg = FabricMonteCarloReport {
            trials: reports.len() as u64,
            ..Default::default()
        };
        for r in reports {
            agg.failures.merge(&r.total_failures());
            agg.links.merge(&r.links);
            agg.switches.merge(&r.switches);
            agg.undetected_drop_events += r.undetected_drop_events;
            agg.protocol_flit_drops += r.protocol_flit_drops;
            agg.payload_drops += r.payload_drops;
            agg.eligible_payload_drops += r.eligible_payload_drops;
            agg.replay_leak_events += r.replay_leak_events;
            agg.credit_stalls += r.credit_stalls;
            if r.drained {
                agg.drained_trials += 1;
            }
            if r.post_delivery_wedge {
                agg.post_delivery_wedge_trials += 1;
            }
            agg.event_rates.push(r.event_rate());
        }
        agg
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rxl_link::{ChannelErrorModel, ProtocolVariant};

    #[test]
    fn clean_fabric_runs_all_trials_without_failures() {
        let mc = FabricMonteCarlo::new(
            FabricTopology::leaf_spine(2, 1, 1),
            FabricConfig::new(ProtocolVariant::Rxl).with_channel(ChannelErrorModel::ideal()),
            3,
        );
        let workload = FabricWorkload::symmetric(2, 30, 8, 5);
        let report = mc.run(&workload);
        assert_eq!(report.trials, 3);
        assert_eq!(report.drained_trials, 3);
        assert!(report.failures.is_clean());
        assert_eq!(report.pooled_event_rate(), 0.0);
        assert_eq!(report.event_rates, vec![0.0; 3]);
    }

    /// The reproducibility contract of the acceptance criteria: identical
    /// aggregate counts for 1-thread and N-thread runs at a fixed base seed.
    #[test]
    fn reports_are_reproducible_across_thread_counts() {
        let mc = FabricMonteCarlo::new(
            FabricTopology::ring(3, 1, 1),
            FabricConfig::new(ProtocolVariant::CxlPiggyback)
                .with_channel(ChannelErrorModel::random(2e-4))
                .with_seed(0xFAB),
            4,
        );
        let workload = FabricWorkload::symmetric(3, 60, 8, 11);

        let run_with_threads = |threads: usize| {
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .expect("shim pool build is infallible");
            pool.install(|| mc.run(&workload))
        };

        let reference = run_with_threads(1);
        for threads in [2, 4] {
            let report = run_with_threads(threads);
            assert_eq!(report.failures, reference.failures, "{threads} threads");
            assert_eq!(report.links, reference.links, "{threads} threads");
            assert_eq!(report.switches, reference.switches, "{threads} threads");
            assert_eq!(
                report.undetected_drop_events, reference.undetected_drop_events,
                "{threads} threads"
            );
            assert_eq!(
                report.event_rates, reference.event_rates,
                "{threads} threads"
            );
        }
    }

    /// The same 1-vs-N-thread bit-identity contract under the VC credit
    /// contract: escape VCs and adaptive routing draw nothing from the RNG,
    /// so a multi-VC adaptive torus aggregates identically on any pool.
    #[test]
    fn multi_vc_adaptive_reports_are_reproducible_across_thread_counts() {
        let mc = FabricMonteCarlo::new(
            FabricTopology::torus(4, 3, 1),
            FabricConfig::new(ProtocolVariant::Rxl)
                .with_channel(ChannelErrorModel::random(2e-4))
                .with_seed(0x7025)
                .with_vc_count(3)
                .with_adaptive(true),
            4,
        );
        let workload = FabricWorkload::symmetric(12, 50, 8, 13);

        let run_with_threads = |threads: usize| {
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .expect("shim pool build is infallible");
            pool.install(|| mc.run(&workload))
        };

        let reference = run_with_threads(1);
        assert_eq!(reference.drained_trials, 4, "adaptive torus must drain");
        for threads in [2, 4] {
            let report = run_with_threads(threads);
            assert_eq!(report.failures, reference.failures, "{threads} threads");
            assert_eq!(report.links, reference.links, "{threads} threads");
            assert_eq!(report.switches, reference.switches, "{threads} threads");
            assert_eq!(
                report.credit_stalls, reference.credit_stalls,
                "{threads} threads"
            );
            assert_eq!(
                report.event_rates, reference.event_rates,
                "{threads} threads"
            );
        }
    }

    #[test]
    fn statistics_helpers_behave() {
        let mut r = FabricMonteCarloReport::default();
        assert_eq!(r.pooled_event_rate(), 0.0);
        assert_eq!(r.mean_event_rate(), 0.0);
        assert_eq!(r.event_rate_stderr(), 0.0);
        r.event_rates = vec![1e-3, 3e-3];
        assert!((r.mean_event_rate() - 2e-3).abs() < 1e-12);
        assert!(r.event_rate_stderr() > 0.0);
    }
}
