//! The fabric-scale discrete-event engine.
//!
//! One [`FabricSim`] instantiates every endpoint of a [`FabricTopology`] as a
//! real `rxl-link` [`LinkEndpoint`] (go-back-N retry, ACK coalescing, the
//! full FEC/CRC codec stack) and every switch as a real `rxl-switch`
//! [`Switch`] running its silent-drop forwarding pipeline. Time advances in
//! flit slots (2 ns at the ×16 CXL 3.0 rate): per slot every endpoint gets
//! one transmit opportunity and every switch port forwards at most one flit,
//! so trunk links shared by many sessions are genuinely serialised and
//! congestion propagates upstream through credit backpressure.
//!
//! # Flow control
//!
//! Every switch port owns an output queue of bounded depth. A sender — an
//! endpoint injecting its emission, or an upstream switch port forwarding its
//! queue head — transmits only while the downstream queue advertises a free
//! credit; otherwise the flit is held in place (endpoints hold it in a
//! one-flit stall register, switches leave it at the head of their queue).
//! Nothing is ever dropped for lack of buffering, exactly like the
//! credit-based flow control of real CXL links; the only in-fabric losses
//! are the FEC-uncorrectable silent drops the paper analyses.
//!
//! # Routing metadata
//!
//! CXL 3.0 fabrics route flits by a destination port identifier carried in
//! the flit (PBR DPID). The engine models that identifier out of band: each
//! queued flit carries its destination endpoint index, which the
//! deterministic shortest-path tables of [`RoutingTable`] translate into an
//! egress port at every switch. The wire bytes the switches decode, corrupt
//! and re-encode are exactly the 256-byte flits of the single-path simulator.

use std::collections::VecDeque;

use rand::rngs::StdRng;
use rand::SeedableRng;

use rxl_flit::{
    CxlFlitCodec, Flit256, Message, RxlFlitCodec, WireFlit, MESSAGES_PER_FLIT, WIRE_FLIT_LEN,
};
use rxl_link::{
    Channel, ChannelErrorModel, EventCursor, LinkConfig, LinkEndpoint, LinkStats, ProtocolVariant,
};
use rxl_switch::{
    InternalErrorModel, LinkCrcMode, ProcessVerdict, Switch, SwitchConfig, SwitchStats, VcArbiter,
    VcCredits, MAX_VCS,
};
use rxl_transport::{DeliveryAuditor, DeliveryVerdict, FailureCounts, FastMap};

use crate::probe::{
    ChannelErrorEvent, DeliverEvent, EnginePhase, InjectEvent, LinkHop, LinkTraversalEvent,
    NullProbe, Probe,
};
use crate::routing::{RoutingTable, NO_ROUTE};
use crate::topology::{FabricTopology, LinkId, NodeRole};

/// Configuration of one fabric simulation trial.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FabricConfig {
    /// Protocol variant every endpoint speaks.
    pub variant: ProtocolVariant,
    /// Per-link channel error model (applied on every link traversal).
    pub channel: ChannelErrorModel,
    /// Switch-internal corruption model.
    pub switch_internal: InternalErrorModel,
    /// ACK coalescing level (one ACK per this many accepted flits).
    pub ack_coalescing: u32,
    /// Depth of every switch-port output queue, in flits (the credit count
    /// advertised to the upstream sender).
    pub queue_capacity: usize,
    /// Hard limit on simulated slots.
    pub max_slots: u64,
    /// Stall guard: if no endpoint accepts a single flit for this many
    /// consecutive slots, the trial is declared stalled and aborted early
    /// (`drained = false`). Baseline CXL with piggybacked ACKs can wedge
    /// unrecoverably when a NACK references a sequence number that already
    /// left the replay buffer (the count-based receiver expectation diverged
    /// after undetected drops); real links would escape via retrain/viral,
    /// which this model does not simulate. The guard is several multiples of
    /// the replay watchdog timeout, so a genuinely recoverable exchange is
    /// never cut off.
    pub stall_slots: u64,
    /// RNG seed for channel errors and switch faults.
    pub seed: u64,
    /// Virtual channels per switch output port, in `1..=`[`rxl_switch::MAX_VCS`].
    /// Each VC owns a private buffer of [`Self::queue_capacity`] flits with
    /// its own credit. `1` (the default) reproduces the pre-VC engine
    /// byte-for-byte — including its ring(span ≥ 2) credit deadlock. `≥ 2`
    /// enables the dateline escape scheme (VC 0 pre-dateline, VC 1
    /// post-dateline) that breaks cyclic trunk-credit waits on ring/torus/
    /// dragonfly fabrics; `≥ 3` additionally frees VCs `2..` for
    /// minimal-adaptive routing (see [`Self::adaptive`]).
    pub vc_count: usize,
    /// Route flits minimal-adaptively: among the minimal next-hop candidates
    /// of [`RoutingTable::candidates`], pick the adaptive VC (`2..vc_count`)
    /// of the least-occupied egress port with a free credit, falling back to
    /// the deterministic escape path when none has one. Requires
    /// `vc_count ≥ 3` (two escape VCs + at least one adaptive VC). Path
    /// choices are flowlet-gated: a destination's pinned path is re-chosen
    /// only while it has no flits in flight, so adaptive spreading never
    /// reorders a session's flit stream (see [`FabricSim::plan_hop`]). The
    /// choice is a deterministic function of queue state — no RNG draws —
    /// so the engine's draw-order reproducibility contract is untouched.
    pub adaptive: bool,
    /// Open-loop offered load as a fraction of per-session line rate
    /// (`1.0` ⇒ [`MESSAGES_PER_FLIT`] new messages per slot per
    /// session-direction, the most a fully packed one-flit-per-slot endpoint
    /// can inject). `Some(f)` makes [`FabricSim::begin`] pace each session's
    /// injection at a deterministic fixed rate instead of enqueueing the
    /// whole workload up front; `None` (the default) keeps the greedy path —
    /// **byte-for-byte identical** to the pre-pacing engine, as the golden
    /// digest regression requires. Richer arrival processes (Poisson-like,
    /// bursty on/off) come from `rxl-load`, which builds an explicit
    /// [`InjectionPacing`] and calls [`FabricSim::begin_paced`].
    pub offered_load: Option<f64>,
}

impl FabricConfig {
    /// The paper's operating point for a given variant, with a slot budget
    /// suited to the bounded workloads of tests and benches.
    pub fn new(variant: ProtocolVariant) -> Self {
        FabricConfig {
            variant,
            channel: ChannelErrorModel::cxl3(),
            switch_internal: InternalErrorModel::none(),
            ack_coalescing: 10,
            queue_capacity: 64,
            max_slots: 400_000,
            stall_slots: 8_000,
            seed: 0,
            vc_count: 1,
            adaptive: false,
            offered_load: None,
        }
    }

    /// Sets the number of virtual channels per output port (see
    /// [`FabricConfig::vc_count`]).
    pub fn with_vc_count(mut self, vc_count: usize) -> Self {
        self.vc_count = vc_count;
        self
    }

    /// Enables minimal-adaptive routing (see [`FabricConfig::adaptive`];
    /// requires `vc_count ≥ 3`).
    pub fn with_adaptive(mut self, adaptive: bool) -> Self {
        self.adaptive = adaptive;
        self
    }

    /// Replaces the channel error model.
    pub fn with_channel(mut self, channel: ChannelErrorModel) -> Self {
        self.channel = channel;
        self
    }

    /// Replaces the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the open-loop offered load (fraction of per-session line rate;
    /// see [`FabricConfig::offered_load`]).
    pub fn with_offered_load(mut self, fraction: f64) -> Self {
        assert!(
            fraction > 0.0 && fraction.is_finite(),
            "offered load must be a positive finite fraction"
        );
        self.offered_load = Some(fraction);
        self
    }

    /// The link configuration every endpoint runs.
    pub fn link_config(&self) -> LinkConfig {
        LinkConfig {
            ack_coalescing: self.ack_coalescing,
            ..LinkConfig::cxl3_x16(self.variant)
        }
    }

    fn switch_config(&self, ports: usize) -> SwitchConfig {
        SwitchConfig {
            ports,
            queue_capacity: self.queue_capacity,
            internal_error: self.switch_internal,
            crc_mode: match self.variant {
                ProtocolVariant::Rxl => LinkCrcMode::Passthrough,
                _ => LinkCrcMode::Regenerate,
            },
        }
    }
}

/// Per-session message streams driving one fabric run.
#[derive(Clone, Debug)]
pub struct FabricWorkload {
    /// `downstream[s]` is what session `s`'s host transmits to its device.
    pub downstream: Vec<Vec<Message>>,
    /// `upstream[s]` is what session `s`'s device transmits to its host.
    pub upstream: Vec<Vec<Message>>,
}

impl FabricWorkload {
    /// A symmetric workload: every session's host streams `messages` ordered
    /// data messages over `cqids` command queues and its device streams the
    /// same volume back. Equal volume in both directions keeps the measured
    /// ACK-piggybacking fraction at the configured coalescing level in both
    /// directions, which is what the analytic cross-check assumes.
    pub fn symmetric(sessions: usize, messages: usize, cqids: u16, seed: u64) -> Self {
        use rxl_sim::{request_stream, response_stream, TrafficPattern};
        let downstream = (0..sessions)
            .map(|s| {
                request_stream(
                    messages,
                    TrafficPattern::DataStream { cqids },
                    seed ^ (0x5E55_0000 + s as u64),
                )
            })
            .collect();
        let upstream = (0..sessions)
            .map(|s| response_stream(messages, cqids, seed ^ (0x5E55_8000 + s as u64)))
            .collect();
        FabricWorkload {
            downstream,
            upstream,
        }
    }

    /// Number of sessions this workload drives.
    pub fn sessions(&self) -> usize {
        self.downstream.len()
    }

    /// Total messages across both directions of every session.
    pub fn total_messages(&self) -> usize {
        self.downstream
            .iter()
            .chain(&self.upstream)
            .map(Vec::len)
            .sum()
    }
}

/// Per-message arrival slots pacing a workload's open-loop injection:
/// `downstream[s][i]` is the slot at which session `s`'s host may first
/// transmit `workload.downstream[s][i]` (and symmetrically for `upstream`).
/// Slots must be non-decreasing within each stream. Built either by
/// [`InjectionPacing::fixed_rate`] (the [`FabricConfig::offered_load`] knob)
/// or by the arrival processes of `rxl-load`.
///
/// Pacing draws **nothing** from the trial RNG: schedules are computed
/// before the trial starts, so the engine's RNG-draw-order contract (see
/// [`FabricSim`]) is untouched — a paced trial differs from a greedy one
/// only in *when* messages become eligible for flitization.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct InjectionPacing {
    /// Arrival slots for `workload.downstream`, stream-aligned.
    pub downstream: Vec<Vec<u64>>,
    /// Arrival slots for `workload.upstream`, stream-aligned.
    pub upstream: Vec<Vec<u64>>,
}

impl InjectionPacing {
    /// Deterministic fixed-rate pacing at a mean of `msgs_per_slot` messages
    /// per slot, injected in flit-sized cohorts: messages
    /// `[b·M, (b+1)·M)` (with `M =` [`MESSAGES_PER_FLIT`]) all arrive at
    /// slot `floor(b·M / msgs_per_slot)`. Cohort granularity is what makes
    /// offered load mean *fraction of link flit slots*: a host that released
    /// single messages would emit one nearly-empty flit per message, so the
    /// wire would saturate at `1/M` of line rate no matter the knob — real
    /// transmitters fill flits, and so does this pacing. This is what the
    /// [`FabricConfig::offered_load`] knob expands to (with
    /// `msgs_per_slot = offered_load × MESSAGES_PER_FLIT`).
    pub fn fixed_rate(workload: &FabricWorkload, msgs_per_slot: f64) -> Self {
        assert!(
            msgs_per_slot > 0.0 && msgs_per_slot.is_finite(),
            "injection rate must be positive and finite"
        );
        let schedule = |stream: &Vec<Message>| -> Vec<u64> {
            (0..stream.len())
                .map(|k| {
                    let cohort_first = (k / MESSAGES_PER_FLIT) * MESSAGES_PER_FLIT;
                    (cohort_first as f64 / msgs_per_slot) as u64
                })
                .collect()
        };
        InjectionPacing {
            downstream: workload.downstream.iter().map(schedule).collect(),
            upstream: workload.upstream.iter().map(schedule).collect(),
        }
    }

    /// Panics unless this pacing covers `workload` exactly (same streams,
    /// same lengths) with non-decreasing slots.
    fn validate(&self, workload: &FabricWorkload) {
        assert_eq!(
            self.downstream.len(),
            workload.downstream.len(),
            "pacing must cover every downstream stream"
        );
        assert_eq!(
            self.upstream.len(),
            workload.upstream.len(),
            "pacing must cover every upstream stream"
        );
        let aligned = |slots: &[Vec<u64>], msgs: &[Vec<Message>]| {
            for (sl, ms) in slots.iter().zip(msgs) {
                assert_eq!(sl.len(), ms.len(), "pacing must cover every message");
                assert!(
                    sl.windows(2).all(|w| w[0] <= w[1]),
                    "arrival slots must be non-decreasing"
                );
            }
        };
        aligned(&self.downstream, &workload.downstream);
        aligned(&self.upstream, &workload.upstream);
    }
}

/// Slot-denominated injection→delivery latencies of one trial, in delivery
/// order, recorded when [`FabricSim::enable_latency_telemetry`] was called
/// before `begin`. A message's latency is `delivery_slot − injection_slot`:
/// for paced injection the injection slot is the message's arrival slot; for
/// greedy injection every message is injected at slot 0, so latency includes
/// head-of-line waiting in the endpoint's message queue.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct LatencySamples {
    /// Latencies of host → device messages.
    pub downstream: Vec<u64>,
    /// Latencies of device → host messages.
    pub upstream: Vec<u64>,
    /// Deliveries with no live timestamp entry — duplicate deliveries of an
    /// already-timed message (the first delivery consumes the entry).
    pub untracked: u64,
}

impl LatencySamples {
    /// Total recorded samples over both directions.
    pub fn len(&self) -> usize {
        self.downstream.len() + self.upstream.len()
    }

    /// `true` if no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.downstream.is_empty() && self.upstream.is_empty()
    }
}

/// One endpoint's not-yet-released paced messages.
#[derive(Clone, Debug, Default)]
struct PacedStream {
    msgs: Vec<Message>,
    slots: Vec<u64>,
    cursor: usize,
}

/// Latency-telemetry state: per-*destination* tag→slot maps (allocation
/// happens once at `begin`, the hot loop only inserts into / removes from
/// pre-reserved capacity) plus the recorded samples.
struct Telemetry {
    /// `inject_slot[dst]` maps a message key to its injection slot.
    inject_slot: Vec<FastMap<u64, u64>>,
    samples: LatencySamples,
}

/// Identity of a message for latency timestamping and probe events — the
/// same `(cqid, tag, kind, chunk)` quadruple the delivery auditor keys on,
/// packed and splitmix64-finalized into one u64. The finalizer is bijective,
/// so distinct quadruples keep distinct keys, but the key uses **all 64
/// bits** and it is unique only *within a destination endpoint* (sessions
/// reuse cqid/tag spaces). Consumers correlating inject/deliver events
/// across the fabric must key on the `(dst, key)` *pair* — no bit-packing
/// of `dst` into the key can stay collision-free.
#[inline]
pub fn message_key(msg: &Message) -> u64 {
    msg_key(msg)
}

#[inline]
fn msg_key(msg: &Message) -> u64 {
    let (kind, chunk) = match msg {
        Message::Request { .. } => (0u64, 0u64),
        Message::Response { .. } => (1, 0),
        Message::DataHeader { .. } => (2, 0),
        Message::Data { chunk_idx, .. } => (3, *chunk_idx as u64),
    };
    // splitmix64-finalized (bijective): the raw packing has all its entropy
    // in high bit fields, which FxHash-backed maps index terribly (see
    // `rxl_transport::mix64`).
    rxl_transport::mix64(
        ((msg.cqid() as u64) << 32) | ((msg.tag() as u64) << 16) | (kind << 8) | chunk,
    )
}

/// Aggregate outcome of one fabric trial.
#[derive(Clone, Debug, Default)]
pub struct FabricReport {
    /// Failure audit of all host → device streams.
    pub downstream: FailureCounts,
    /// Failure audit of all device → host streams.
    pub upstream: FailureCounts,
    /// Combined per-session failure counts (both directions), in session
    /// order.
    pub per_session: Vec<FailureCounts>,
    /// Link-layer counters merged over every endpoint.
    pub links: LinkStats,
    /// Switch counters merged over every switching device.
    pub switches: SwitchStats,
    /// Silent drops whose first post-gap arrival was forwarded without a
    /// sequence check — the paper's `Fail_order` events, counted one per
    /// drop episode.
    pub undetected_drop_events: u64,
    /// Silent switch drops that hit protocol (payload-bearing) flits,
    /// retransmissions included.
    pub protocol_flit_drops: u64,
    /// Silent drops of first-transmission payload flits.
    pub payload_drops: u64,
    /// Of [`Self::payload_drops`], those that struck while the destination
    /// receiver was in normal flow (not already replaying or gapped) — the
    /// drops the first-order analytic model exposes to the piggybacked-ACK
    /// blind spot.
    pub eligible_payload_drops: u64,
    /// Mis-ordered data an ACK-carrying flit leaked through *during* a
    /// detected drop's go-back-N replay window — a latency-dependent failure
    /// channel of baseline CXL that the paper's first-order model does not
    /// count (and [`Self::undetected_drop_events`] therefore excludes).
    pub replay_leak_events: u64,
    /// Slots in which a sender held a flit back for lack of downstream
    /// credit (backpressure observability).
    pub credit_stalls: u64,
    /// Flits destroyed by fault injection: consumed by a dead switch,
    /// purged from its queues at failure time, or dropped because routing
    /// had no surviving path to their destination. Always 0 without an
    /// active scenario.
    pub blackholed_flits: u64,
    /// Number of simulated slots.
    pub slots: u64,
    /// Simulated time in nanoseconds.
    pub sim_time_ns: f64,
    /// `true` if every session drained before the slot limit — including
    /// trials that delivered every message and then tripped the stall guard
    /// on undeliverable control-plane residue (see
    /// [`Self::post_delivery_wedge`]).
    pub drained: bool,
    /// `true` if the stall guard tripped while flits were wedged in switch
    /// queues (or endpoint stall registers) with *no flit motion anywhere*
    /// for the whole guard window — a credit deadlock, as the ring(span ≥ 2)
    /// topology exhibits under saturation when run with a single virtual
    /// channel (cyclic trunk-credit dependency; `vc_count ≥ 2` installs the
    /// dateline escape VCs that provably break it). Distinct from the
    /// baseline-CXL stale-NACK livelock, where replay traffic keeps moving
    /// but nothing is accepted: that wedge reports
    /// `drained = false, deadlock = false`.
    pub deadlock: bool,
    /// `true` if the stall guard tripped *after* every workload message of
    /// every session had been delivered: the residue is control-plane replay
    /// (a retransmitted ACK/NACK exchange that can no longer converge), not
    /// undelivered payload. Such a trial is reported `drained = true` — all
    /// cohorts delivered, the audits close clean — with this flag
    /// classifying the residual wedge. Shows up on multi-hop fabrics at
    /// BER ≳ 4 × 10⁻⁴, where a stale NACK can survive repeated corruption.
    pub post_delivery_wedge: bool,
    /// Slot of the first undetected-drop (`Fail_order`) event, if any —
    /// the time-to-first-failure statistic scenario reports aggregate.
    pub first_fail_order_slot: Option<u64>,
    /// Injection→delivery latency samples, present iff
    /// [`FabricSim::enable_latency_telemetry`] was called before `begin`.
    pub latency: Option<LatencySamples>,
}

impl FabricReport {
    /// Combined failure counts over both directions.
    pub fn total_failures(&self) -> FailureCounts {
        let mut f = self.downstream;
        f.merge(&self.upstream);
        f
    }

    /// First-transmission payload flits across every endpoint — the exposure
    /// denominator of the per-flit failure rates the cross-check compares
    /// (the analytic model's flit rate likewise counts payload flits; at the
    /// paper's real operating point retransmissions are a ~10⁻⁵ fraction).
    pub fn payload_flits(&self) -> u64 {
        self.links.flits_sent
    }

    /// Undetected-drop (`Fail_order`) events per payload flit.
    pub fn event_rate(&self) -> f64 {
        let flits = self.payload_flits();
        if flits == 0 {
            return 0.0;
        }
        self.undetected_drop_events as f64 / flits as f64
    }
}

/// The engine-held flit encoder, fixed per trial by
/// [`FabricConfig::variant`]. `LinkTx`/`LinkRx` always run their codecs in
/// default mode (there is no per-link codec knob; the switch-level
/// [`LinkCrcMode`] is a forwarding-pipeline concept), so a wire image
/// produced here is bit-identical to what the emitting endpoint's
/// transmitter would have produced.
enum SimCodec {
    Cxl(CxlFlitCodec),
    Rxl(RxlFlitCodec),
}

impl SimCodec {
    fn for_variant(variant: ProtocolVariant) -> Self {
        match variant {
            ProtocolVariant::Rxl => SimCodec::Rxl(RxlFlitCodec::new()),
            _ => SimCodec::Cxl(CxlFlitCodec::new()),
        }
    }

    /// Encodes `flit` bound to link-layer sequence number `seq` (ignored by
    /// the CXL codec, whose CRC has no sequence component).
    #[inline]
    fn encode(&self, flit: &Flit256, seq: u16) -> WireFlit {
        match self {
            SimCodec::Cxl(c) => c.encode(flit),
            SimCodec::Rxl(c) => c.encode(flit, seq),
        }
    }
}

/// The payload of an in-fabric flit: either the *logical* flit plus its
/// bound sequence number (no wire bytes materialised yet — the state every
/// flit starts in and, on a quiet link, stays in for its whole journey), or
/// the explicit 256-byte wire image (forced the moment a channel corrupts
/// the flit or a switch pipeline needs real bytes).
///
/// Because a clean wire image is a pure function of `(flit, seq)`, deferring
/// the encode is invisible to the simulation: a flit that reaches its
/// destination still `Clean` is handed to [`LinkEndpoint::receive_trusted`],
/// whose outcome is provably identical to encode-then-`receive` (see the
/// equivalence argument on [`rxl_link::LinkRx::receive_trusted`]).
#[derive(Clone)]
enum FlitPayload {
    Clean { flit: Flit256, seq: u16 },
    Wire(WireFlit),
}

impl FlitPayload {
    /// Forces the wire image into existence (encoding on first call) and
    /// returns it for in-place mutation.
    #[inline]
    fn materialize(&mut self, codec: &SimCodec) -> &mut WireFlit {
        if let FlitPayload::Clean { flit, seq } = self {
            *self = FlitPayload::Wire(codec.encode(flit, *seq));
        }
        match self {
            FlitPayload::Wire(wire) => wire,
            FlitPayload::Clean { .. } => unreachable!("materialize just set Wire"),
        }
    }
}

/// A flit in flight through the fabric, with its out-of-band routing
/// metadata (the modelled PBR destination identifier).
#[derive(Clone)]
struct RoutedFlit {
    payload: FlitPayload,
    /// Destination endpoint index.
    dst: usize,
    /// `true` for payload-bearing protocol flits (as opposed to standalone
    /// ACK / NACK control flits) — the population the failure analysis
    /// counts.
    protocol: bool,
    /// `true` if this is a retransmission from a replay buffer.
    retransmission: bool,
    /// Virtual channel the flit currently occupies (the lane it was staged
    /// into at its current switch). Endpoint-held flits use 0.
    vc: u8,
    /// Per-dimension dateline-crossing bits (bit `d` set once the flit has
    /// crossed dimension `d`'s dateline trunk). Updated on arrival at the
    /// far switch of a dateline trunk; the escape-VC class of every later
    /// hop in that dimension is 1.
    crossed: u8,
}

/// What sits on the far side of a switch port.
#[derive(Clone, Copy, Debug)]
enum PortPeer {
    Endpoint(usize),
    Trunk { switch: usize, trunk: usize },
    Unconnected,
}

/// Outcome of planning a flit's next hop at a switch (see
/// [`FabricSim::plan_hop`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum HopPlan {
    /// No surviving route: the flit is swallowed by fault injection.
    Blackhole,
    /// Buffer the flit in VC `vc` of output port `egress`.
    Lane { egress: usize, vc: usize },
    /// Every usable lane is out of credits; the flit holds its place.
    Blocked,
}

/// Sentinel for an [`FabricSim::adaptive_pin`] entry no flit has set yet.
const NO_PIN: u32 = u32::MAX;

/// Why a [`FabricSim::step`] call returned.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StepOutcome {
    /// Every session drained; the trial is complete.
    Drained,
    /// The stall guard tripped: livelock or credit deadlock (see
    /// [`FabricReport::deadlock`]). The trial is over.
    Stalled,
    /// [`FabricConfig::max_slots`] was reached with work remaining.
    SlotLimit,
    /// The per-call slot budget ran out with work remaining; call
    /// [`FabricSim::step`] again to continue (scenario engines use this to
    /// pause at epoch boundaries).
    Budget,
    /// [`FabricSim::run_to_horizon`] reached its measurement horizon with
    /// work still in flight — the expected outcome of an open-system run,
    /// which measures a steady-state window and never waits for the drain
    /// tail.
    Horizon,
}

/// Mid-run snapshot of a trial's cumulative counters, taken with
/// [`FabricSim::counters`]. Scenario engines difference two snapshots to
/// report per-epoch activity. Message *losses* are only attributed when the
/// trial finalizes, so `failures` here never includes `lost_messages`.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FabricCounters {
    /// Slots simulated so far.
    pub slots: u64,
    /// Audit counters over both directions of every session so far.
    pub failures: FailureCounts,
    /// Undetected-drop (`Fail_order`) events so far.
    pub undetected_drop_events: u64,
    /// Replay-window leak events so far.
    pub replay_leak_events: u64,
    /// Silent drops of first-transmission payload flits so far.
    pub payload_drops: u64,
    /// Silent drops of protocol flits (retransmissions included) so far.
    pub protocol_flit_drops: u64,
    /// Fault-injection blackhole drops so far.
    pub blackholed_flits: u64,
    /// Credit-stall slot count so far.
    pub credit_stalls: u64,
}

/// One fabric trial: every endpoint, switch, queue and auditor.
///
/// # Determinism and RNG draw order (event-jump shape)
///
/// The trial owns a single `StdRng` seeded from [`FabricConfig::seed`], and
/// every random decision draws from it in a fixed order: phase 1 visits
/// endpoints in ascending index order, phase 2 visits switch output ports in
/// ascending `(switch, port)` order, and a draw happens only when a flit is
/// actually present. Channel randomness is *event-jump shaped*: every link
/// owns an [`EventCursor`] that counts the link's flit traversals and caches
/// the traversal index of the channel's next error event
/// ([`Channel::next_error_slot`] — one geometric jump per error event, plus
/// one resample per piecewise boundary or state dwell for time-varying
/// channels), so a traversal short of the cached event consumes **zero**
/// draws and a quiet link costs no RNG work per slot. The active-port
/// bitmaps compose with this unchanged: skipping an empty port skips no
/// draws, and skipping a pre-event traversal skips none either. What the
/// reproducibility contract (`tests/fabric_golden_digest.rs`, and the
/// 1-vs-N-thread test in [`crate::montecarlo`]) pins is therefore the visit
/// order — endpoints ascending, then `(switch, port)` ascending, each link's
/// cursor consulted exactly once per traversal in that order. Relative to
/// the pre-event-jump engine the draw *sequence* differs (the golden digest
/// was re-pinned for this contract); per-link error statistics are pinned
/// instead by the statistical-equivalence suite
/// (`tests/skip_ahead_equivalence.rs`), and an ideal channel is draw-free
/// under both shapes, so ideal-channel trials stayed bit-identical across
/// the change.
///
/// Fault injection composes with this contract rather than weakening it:
/// per-link channel overrides are driven through the same per-link cursor
/// and draw from the same RNG at exactly the points the static channel
/// would (the [`Channel`] trait documents the sampling rules
/// implementations must follow). Installing or resetting an override resets
/// only that link's cursor — the chaos runner reinstalls only on a real
/// spec change, so an unchanged channel keeps its cached event and its
/// draw stream. With no overrides installed the static `config.channel`
/// path is taken unchanged, so a scenario-free trial, and every trial
/// before its first scenario event, remains bit-identical to the pristine
/// engine.
///
/// Paced injection and latency telemetry compose the same way: neither draws
/// from the trial RNG (arrival schedules are precomputed, timestamps are
/// deterministic bookkeeping), and with `offered_load` unset and telemetry
/// off their state is `None` and the greedy slot loop is untouched — pinned,
/// again, by the golden digest.
///
/// Probes are the third composition point, and the strictest: the `P`
/// type parameter (default [`NullProbe`]) receives structured lifecycle
/// events from every phase, but **a probe never draws from the trial RNG
/// and never feeds state back into the engine** — see the
/// [`crate::probe`] module docs for the full contract. With `P =
/// NullProbe` every `if P::ENABLED` guard is a constant `false` and the
/// instrumentation compiles out entirely, so [`FabricSim::new`] remains
/// the pristine engine the golden digest pins.
pub struct FabricSim<'a, P: Probe = NullProbe> {
    topology: &'a FabricTopology,
    routing: &'a RoutingTable,
    config: FabricConfig,
    /// [`FabricConfig::vc_count`], hoisted for the hot path.
    vcc: usize,
    endpoints: Vec<LinkEndpoint>,
    switches: Vec<Switch>,
    /// `out_q[switch][port * vcc + vc]`: flits awaiting transmission on that
    /// port's virtual channel `vc` (the *lane*). With `vc_count == 1` the
    /// lane index degenerates to the port index — the pre-VC layout.
    out_q: Vec<Vec<VecDeque<RoutedFlit>>>,
    /// Flits that arrived this slot, appended to `out_q` at slot end so a
    /// flit crosses at most one switch per slot. Lane-indexed like `out_q`.
    /// The inner vectors are drained, never dropped, so their capacity is
    /// reused across slots.
    staged: Vec<Vec<Vec<RoutedFlit>>>,
    /// Per-(switch, port) VC credit ledgers — the authoritative occupancy
    /// count over `out_q` + `staged` lanes, and the congestion signal the
    /// adaptive egress choice compares.
    credits: Vec<Vec<VcCredits>>,
    /// Per-(switch, port) round-robin VC output arbiters.
    arb: Vec<Vec<VcArbiter>>,
    /// Per-trunk ring dimension (from [`FabricTopology::trunk_class`]).
    trunk_dim: Vec<u8>,
    /// Per-trunk `crossed`-bitmask delta: `1 << dim` for a dateline trunk,
    /// 0 otherwise, OR-ed into a flit's `crossed` bits on arrival.
    trunk_dateline_mask: Vec<u8>,
    /// Flits currently inside the fabric per destination endpoint — the
    /// flowlet gate for adaptive routing: a destination's path pins are
    /// frozen while any of its flits are in flight, so adaptive spreading
    /// can never reorder a session's flit stream (an overtaken flit would
    /// otherwise trigger the link layer's go-back-N replay).
    in_flight: Vec<u32>,
    /// `adaptive_pin[switch][dst]`: the egress port the last flit bound for
    /// `dst` took out of `switch` ([`NO_PIN`] before any did). Recorded on
    /// every forwarded hop; a flit is free to *deviate* from the pin (and
    /// re-choose by occupancy) only when `in_flight[dst]` says the
    /// destination's stream is otherwise idle. Empty unless
    /// `config.adaptive`.
    adaptive_pin: Vec<Vec<u32>>,
    /// Active-work tracking: `out_nonempty[switch]` is a bitmap (one bit per
    /// port) of ports with a non-empty `out_q`, `sw_out_any` a bitmap (one
    /// bit per switch) of switches with any such port, so the per-slot
    /// forwarding phase visits exactly the ports holding flits — a quiet
    /// fabric costs a few zero-word scans per slot instead of a dense
    /// switch×port sweep. `staged_*` mirrors the same structure for the
    /// flits staged during the current slot.
    out_nonempty: Vec<Vec<u64>>,
    sw_out_any: Vec<u64>,
    sw_out_count: Vec<usize>,
    staged_nonempty: Vec<Vec<u64>>,
    sw_staged_any: Vec<u64>,
    sw_staged_count: Vec<usize>,
    /// Total non-empty output queues (the phase-3 quiescence check).
    nonempty_out_ports: usize,
    /// One-flit stall register per endpoint (credit backpressure).
    stalled: Vec<Option<RoutedFlit>>,
    /// `port_peer[switch][port]`.
    port_peer: Vec<Vec<PortPeer>>,
    /// Session index of every endpoint.
    session_of: Vec<usize>,
    /// Peer endpoint of every endpoint.
    peer_of: Vec<usize>,
    /// Per-endpoint mirror of the receiving auditor's open-gap state at the
    /// end of the previous delivery, so each drop episode is counted as one
    /// undetected-drop event exactly once.
    gap_open: Vec<bool>,
    downstream_audits: Vec<DeliveryAuditor>,
    upstream_audits: Vec<DeliveryAuditor>,
    undetected_drop_events: u64,
    protocol_flit_drops: u64,
    payload_drops: u64,
    eligible_payload_drops: u64,
    replay_leak_events: u64,
    credit_stalls: u64,
    /// `true` once any endpoint accepted a flit in the current slot (stall
    /// guard bookkeeping).
    accepted_this_slot: bool,
    rng: StdRng,
    /// Per-link channel overrides installed by a fault-injection scenario,
    /// indexed by [`LinkId::index`] (endpoint attachment links first, then
    /// trunks). `None` ⇒ every link runs the static `config.channel` — the
    /// zero-cost path scenario-free trials stay on.
    link_channels: Option<Vec<Option<Box<dyn Channel>>>>,
    /// Per-link skip-ahead cursors (indexed like `link_channels`): each
    /// counts the link's traversals and caches the traversal index of the
    /// channel's next error event, so traversals short of the event consume
    /// zero RNG draws. Reset whenever that link's channel is replaced.
    link_cursors: Vec<EventCursor>,
    /// `true` when the switch forwarding pipeline is provably the identity
    /// on clean flits (`switch_internal` disabled): lets a zero-flip
    /// traversal take [`Switch::forward_clean`] instead of the full
    /// decode/CRC/re-encode pipeline. Hoisted from `config` for the hot
    /// path.
    clean_switch: bool,
    /// The engine-held flit encoder used to materialise deferred
    /// ([`FlitPayload::Clean`]) wire images on demand. Matches the
    /// endpoints' codecs bit-for-bit (see [`SimCodec`]).
    codec: SimCodec,
    /// Routing recomputed after a switch drain/failure; `None` ⇒ the shared
    /// pristine table.
    routing_override: Option<RoutingTable>,
    /// Switches that failed hard: queues purged, all ingress blackholed.
    dead_switches: Vec<bool>,
    /// Switches excluded from transit routing (drained or dead).
    no_transit: Vec<bool>,
    blackholed_flits: u64,
    first_fail_order_slot: Option<u64>,
    /// Slot at which a flit last moved anywhere (staged, consumed by a
    /// switch pipeline, delivered, or blackholed). Distinguishes a credit
    /// deadlock (flits wedged, zero motion) from the baseline-CXL replay
    /// livelock (constant motion, zero acceptance) when the stall guard
    /// trips.
    last_motion_slot: u64,
    deadlock: bool,
    post_delivery_wedge: bool,
    /// Paced-injection state: one stream of not-yet-released messages per
    /// endpoint. `None` ⇒ the greedy everything-at-`begin` path, which the
    /// golden-digest regression pins byte-for-byte.
    paced: Option<Vec<PacedStream>>,
    /// Messages still awaiting paced release (drain gate).
    pending_paced: usize,
    /// Latency telemetry, if enabled before `begin`.
    telemetry: Option<Telemetry>,
    /// The lifecycle-event probe ([`NullProbe`] unless built with
    /// [`FabricSim::with_probe`]). Write-only from the engine's point of
    /// view: events go in, nothing comes back.
    probe: P,
    // Run-loop state, persisted across `step` calls so scenario engines can
    // pause the trial at epoch boundaries.
    workload_loaded: bool,
    now: f64,
    slots: u64,
    drained: bool,
    last_accept_slot: u64,
    flit_time_ns: f64,
}

impl<'a> FabricSim<'a> {
    /// Builds one trial over a validated topology and its routing tables,
    /// with instrumentation disabled ([`NullProbe`] — zero cost, pinned
    /// bit-identical to the pre-probe engine by the golden digest).
    pub fn new(
        topology: &'a FabricTopology,
        routing: &'a RoutingTable,
        config: FabricConfig,
    ) -> Self {
        FabricSim::with_probe(topology, routing, config, NullProbe)
    }
}

impl<'a, P: Probe> FabricSim<'a, P> {
    /// Builds one trial with an explicit lifecycle-event [`Probe`]. The
    /// probe observes; it never draws from the trial RNG or influences the
    /// trial (see [`crate::probe`]), so the simulated outcome is identical
    /// for every probe type. Retrieve the probe with [`Self::probe`] /
    /// [`Self::probe_mut`] mid-run or [`Self::finish_with_probe`] at the
    /// end.
    pub fn with_probe(
        topology: &'a FabricTopology,
        routing: &'a RoutingTable,
        config: FabricConfig,
        probe: P,
    ) -> Self {
        topology.validate();
        let vcc = config.vc_count;
        assert!(
            (1..=MAX_VCS).contains(&vcc),
            "vc_count must be in 1..={MAX_VCS}"
        );
        assert!(
            !config.adaptive || vcc >= 3,
            "adaptive routing needs two escape VCs plus at least one adaptive VC (vc_count >= 3)"
        );
        let link_cfg = config.link_config();
        let endpoints: Vec<LinkEndpoint> = topology
            .endpoints
            .iter()
            .map(|_| LinkEndpoint::new(link_cfg))
            .collect();
        let switches: Vec<Switch> = topology
            .switches
            .iter()
            .map(|sw| Switch::new(config.switch_config(sw.ports)))
            .collect();

        let mut port_peer: Vec<Vec<PortPeer>> = topology
            .switches
            .iter()
            .map(|sw| vec![PortPeer::Unconnected; sw.ports])
            .collect();
        for (id, ep) in topology.endpoints.iter().enumerate() {
            port_peer[ep.switch][ep.port] = PortPeer::Endpoint(id);
        }
        for (ti, t) in topology.trunks.iter().enumerate() {
            port_peer[t.a.0][t.a.1] = PortPeer::Trunk {
                switch: t.b.0,
                trunk: ti,
            };
            port_peer[t.b.0][t.b.1] = PortPeer::Trunk {
                switch: t.a.0,
                trunk: ti,
            };
        }

        let mut session_of = vec![usize::MAX; topology.endpoints.len()];
        let mut peer_of = vec![usize::MAX; topology.endpoints.len()];
        for (s, session) in topology.sessions.iter().enumerate() {
            session_of[session.host] = s;
            session_of[session.device] = s;
            peer_of[session.host] = session.device;
            peer_of[session.device] = session.host;
        }

        let out_q = topology
            .switches
            .iter()
            .map(|sw| (0..sw.ports * vcc).map(|_| VecDeque::new()).collect())
            .collect();
        let staged = topology
            .switches
            .iter()
            .map(|sw| (0..sw.ports * vcc).map(|_| Vec::new()).collect())
            .collect();
        let credits = topology
            .switches
            .iter()
            .map(|sw| {
                (0..sw.ports)
                    .map(|_| VcCredits::new(vcc, config.queue_capacity))
                    .collect()
            })
            .collect();
        let arb = topology
            .switches
            .iter()
            .map(|sw| vec![VcArbiter::new(); sw.ports])
            .collect();
        let trunk_dim = (0..topology.trunks.len())
            .map(|ti| topology.trunk_class(ti).dim)
            .collect();
        let trunk_dateline_mask = (0..topology.trunks.len())
            .map(|ti| {
                let class = topology.trunk_class(ti);
                if class.dateline {
                    1u8 << class.dim
                } else {
                    0
                }
            })
            .collect();
        let port_bitmaps: Vec<Vec<u64>> = topology
            .switches
            .iter()
            .map(|sw| vec![0u64; sw.ports.div_ceil(64)])
            .collect();
        let sw_bitmap = vec![0u64; topology.switches.len().div_ceil(64)];
        let adaptive_pin = if config.adaptive {
            vec![vec![NO_PIN; topology.endpoints.len()]; topology.switches.len()]
        } else {
            Vec::new()
        };

        FabricSim {
            vcc,
            endpoints,
            switches,
            out_q,
            staged,
            credits,
            arb,
            trunk_dim,
            trunk_dateline_mask,
            in_flight: vec![0; topology.endpoints.len()],
            adaptive_pin,
            out_nonempty: port_bitmaps.clone(),
            sw_out_any: sw_bitmap.clone(),
            sw_out_count: vec![0; topology.switches.len()],
            staged_nonempty: port_bitmaps,
            sw_staged_any: sw_bitmap,
            sw_staged_count: vec![0; topology.switches.len()],
            nonempty_out_ports: 0,
            stalled: vec![None; topology.endpoints.len()],
            port_peer,
            session_of,
            peer_of,
            gap_open: vec![false; topology.endpoints.len()],
            downstream_audits: vec![DeliveryAuditor::new(); topology.sessions.len()],
            upstream_audits: vec![DeliveryAuditor::new(); topology.sessions.len()],
            undetected_drop_events: 0,
            protocol_flit_drops: 0,
            payload_drops: 0,
            eligible_payload_drops: 0,
            replay_leak_events: 0,
            credit_stalls: 0,
            accepted_this_slot: false,
            rng: StdRng::seed_from_u64(config.seed),
            link_channels: None,
            link_cursors: vec![EventCursor::new(); topology.link_count()],
            clean_switch: config.switch_internal.per_flit_probability <= 0.0,
            codec: SimCodec::for_variant(config.variant),
            routing_override: None,
            dead_switches: vec![false; topology.switches.len()],
            no_transit: vec![false; topology.switches.len()],
            blackholed_flits: 0,
            first_fail_order_slot: None,
            last_motion_slot: 0,
            deadlock: false,
            post_delivery_wedge: false,
            paced: None,
            pending_paced: 0,
            telemetry: None,
            probe,
            workload_loaded: false,
            now: 0.0,
            slots: 0,
            drained: false,
            last_accept_slot: 0,
            flit_time_ns: config.link_config().flit_time_ns,
            topology,
            routing,
            config,
        }
    }

    /// The active egress lookup: the scenario-recomputed table once a switch
    /// has been drained or failed, the pristine shared table otherwise.
    #[inline]
    fn egress_of(&self, sw: usize, dst: usize) -> usize {
        match &self.routing_override {
            Some(r) => r.egress(sw, dst),
            None => self.routing.egress(sw, dst),
        }
    }

    /// The active minimal next-hop candidate set (adaptive choice set),
    /// with the same override dispatch as [`Self::egress_of`].
    #[inline]
    fn candidates_of(&self, sw: usize, dst: usize) -> &[usize] {
        match &self.routing_override {
            Some(r) => r.candidates(sw, dst),
            None => self.routing.candidates(sw, dst),
        }
    }

    /// The escape VC a flit with dateline-crossing state `crossed` rides on
    /// egress port `egress` of switch `sw`: VC 1 once the flit has crossed
    /// the dateline of the egress trunk's ring dimension, VC 0 before (and
    /// always for endpoint-facing egresses, which are unconditional sinks).
    /// With fewer than two VCs everything is clamped to VC 0 — the pre-VC
    /// single-queue behaviour, deadlock included.
    #[inline]
    fn escape_vc(&self, sw: usize, egress: usize, crossed: u8) -> usize {
        if self.vcc < 2 {
            return 0;
        }
        match self.port_peer[sw][egress] {
            PortPeer::Trunk { trunk, .. } => ((crossed >> self.trunk_dim[trunk]) & 1) as usize,
            _ => 0,
        }
    }

    /// Runs a flit through the channel of link `link` (a raw
    /// [`LinkId::index`]) via that link's skip-ahead cursor, returning the
    /// number of bits flipped. A traversal short of the cached next-error
    /// event consumes zero draws *and materialises no wire bytes* — the
    /// common case on every realistic-BER link: the flit stays
    /// [`FlitPayload::Clean`] and only the cursor's traversal counter moves.
    /// Only when the cursor says this traversal is the cached error event is
    /// the wire image encoded (if still deferred) and corrupted in place.
    /// With no overrides installed the cursor drives the static
    /// `config.channel`.
    #[inline]
    fn corrupt_on_link(&mut self, link: usize, payload: &mut FlitPayload) -> usize {
        let cursor = &mut self.link_cursors[link];
        let channel: &mut dyn Channel = match &mut self.link_channels {
            Some(overrides) => match &mut overrides[link] {
                Some(ch) => ch.as_mut(),
                None => &mut self.config.channel,
            },
            None => &mut self.config.channel,
        };
        if !cursor.step(channel, (WIRE_FLIT_LEN * 8) as u64, self.now, &mut self.rng) {
            return 0;
        }
        let wire = payload.materialize(&self.codec);
        cursor.corrupt_event(channel, wire, self.now, &mut self.rng)
    }

    /// Records a fault-injection blackhole drop at switch `sw` (which is
    /// flit motion for deadlock-classification purposes: state changed).
    fn note_blackhole(&mut self, sw: usize) {
        self.blackholed_flits += 1;
        self.last_motion_slot = self.slots;
        if P::ENABLED {
            self.probe.on_blackhole(self.slots, sw);
        }
    }

    /// Self-profiler phase boundary: with a live clock (only ever `Some`
    /// when `P::ENABLED && P::PROFILE`), reports the nanoseconds since the
    /// previous boundary to the probe and restarts the clock. Wall-clock
    /// readings flow *only* into the probe — never back into simulation
    /// state — so profiled trials stay bit-identical to unprofiled ones.
    #[inline]
    fn phase_mark(&mut self, clock: &mut Option<std::time::Instant>, phase: EnginePhase) {
        if let Some(t) = clock {
            let mark = std::time::Instant::now();
            self.probe
                .on_phase(phase, mark.duration_since(*t).as_nanos() as u64);
            *t = mark;
        }
    }

    /// Lane index of `(port, vc)` in the flat per-switch lane arrays.
    #[inline]
    fn lane(&self, port: usize, vc: usize) -> usize {
        port * self.vcc + vc
    }

    /// Free credit on VC `vc` of output port `(sw, port)`. The ledger counts
    /// flits that already arrived this slot (staged) as occupying.
    #[inline]
    fn has_credit(&self, sw: usize, port: usize, vc: usize) -> bool {
        debug_assert_eq!(
            self.credits[sw][port].occupancy(vc),
            self.out_q[sw][self.lane(port, vc)].len() + self.staged[sw][self.lane(port, vc)].len(),
            "credit ledger must mirror the lane queues"
        );
        self.credits[sw][port].has_credit(vc)
    }

    /// Where the next hop of a flit bound for `dst`, arriving at switch `sw`
    /// with dateline state `crossed`, will be buffered — or why it can't be.
    ///
    /// `others` is the number of *other* flits bound for `dst` currently in
    /// the fabric. Adaptive spreading is flowlet-gated on it: while a
    /// destination's stream has flits in flight, this switch's pinned egress
    /// is the only adaptive candidate, so consecutive flits can never take
    /// divergent equal-length paths and overtake each other (which the link
    /// layer's go-back-N replay would punish as a drop). Only an idle stream
    /// (`others == 0`) re-chooses its path by occupancy. The escape lane
    /// stays available as the Duato valve either way, so deadlock freedom
    /// never depends on the pins.
    fn plan_hop(&self, sw: usize, dst: usize, crossed: u8, others: u32) -> HopPlan {
        let escape = self.egress_of(sw, dst);
        if escape == NO_ROUTE {
            return HopPlan::Blackhole;
        }
        // Minimal-adaptive first: the adaptive VC (2..vcc) of the
        // least-occupied candidate port with a free credit, ties broken by
        // (port, vc) — a pure function of queue state, no RNG draws.
        if self.config.adaptive {
            let pinned = if others > 0 {
                self.adaptive_pin[sw][dst]
            } else {
                NO_PIN
            };
            let mut best: Option<(usize, usize, usize)> = None;
            for &port in self.candidates_of(sw, dst) {
                if matches!(self.port_peer[sw][port], PortPeer::Endpoint(_)) {
                    // Final-hop delivery always rides VC 0 of the endpoint
                    // lane (an unconditional sink — nothing to adapt).
                    continue;
                }
                if pinned != NO_PIN && port as u32 != pinned {
                    continue;
                }
                let occupancy = self.credits[sw][port].total_occupancy();
                for vc in 2..self.vcc {
                    if self.has_credit(sw, port, vc) {
                        let key = (occupancy, port, vc);
                        if best.is_none_or(|b| key < b) {
                            best = Some(key);
                        }
                        break; // lower vc of the same port always wins
                    }
                }
            }
            if let Some((_, port, vc)) = best {
                return HopPlan::Lane { egress: port, vc };
            }
        }
        // Escape path: the deterministic route on the dateline-classed VC.
        let vc = self.escape_vc(sw, escape, crossed);
        if self.has_credit(sw, escape, vc) {
            HopPlan::Lane { egress: escape, vc }
        } else {
            HopPlan::Blocked
        }
    }

    /// Records that `staged[sw][port]` became non-empty this slot.
    #[inline]
    fn mark_staged(&mut self, sw: usize, port: usize) {
        let (wi, mask) = (port / 64, 1u64 << (port % 64));
        if self.staged_nonempty[sw][wi] & mask == 0 {
            self.staged_nonempty[sw][wi] |= mask;
            if self.sw_staged_count[sw] == 0 {
                self.sw_staged_any[sw / 64] |= 1u64 << (sw % 64);
            }
            self.sw_staged_count[sw] += 1;
        }
    }

    /// Records that `out_q[sw][port]` became non-empty (phase 3 merge).
    #[inline]
    fn mark_out_nonempty(&mut self, sw: usize, port: usize) {
        let (wi, mask) = (port / 64, 1u64 << (port % 64));
        if self.out_nonempty[sw][wi] & mask == 0 {
            self.out_nonempty[sw][wi] |= mask;
            self.nonempty_out_ports += 1;
            if self.sw_out_count[sw] == 0 {
                self.sw_out_any[sw / 64] |= 1u64 << (sw % 64);
            }
            self.sw_out_count[sw] += 1;
        }
    }

    /// Clears the tracking bit for port `port` if the lane pop that just
    /// happened emptied *every* lane of the port (the bitmaps stay
    /// port-granular; lanes share their port's bit).
    #[inline]
    fn note_out_pop(&mut self, sw: usize, port: usize) {
        let first = self.lane(port, 0);
        if self.out_q[sw][first..first + self.vcc]
            .iter()
            .all(VecDeque::is_empty)
        {
            let (wi, mask) = (port / 64, 1u64 << (port % 64));
            debug_assert_ne!(self.out_nonempty[sw][wi] & mask, 0);
            self.out_nonempty[sw][wi] &= !mask;
            self.nonempty_out_ports -= 1;
            self.sw_out_count[sw] -= 1;
            if self.sw_out_count[sw] == 0 {
                self.sw_out_any[sw / 64] &= !(1u64 << (sw % 64));
            }
        }
    }

    /// Transmits `rf` into switch `sw` over link `link` (applying that
    /// link's channel error and the switch's forwarding pipeline) towards
    /// the lane chosen by [`Self::plan_hop`] — `rf.crossed` must already
    /// reflect the dateline crossing of the link just traversed. Returns the
    /// flit untouched if every usable lane is out of credits; `None` once it
    /// has been queued, silently dropped, or blackholed by fault injection
    /// (dead switch / no surviving route).
    fn transmit_into(&mut self, sw: usize, link: usize, mut rf: RoutedFlit) -> Option<RoutedFlit> {
        // An injection (endpoint attachment link) is not yet counted in
        // `in_flight`; a trunk arrival is.
        let injecting = link < self.endpoints.len();
        let others = self.in_flight[rf.dst] - u32::from(!injecting);
        if self.dead_switches[sw] {
            if !injecting {
                self.in_flight[rf.dst] -= 1;
            }
            self.note_blackhole(sw);
            return None;
        }
        let (egress, vc) = match self.plan_hop(sw, rf.dst, rf.crossed, others) {
            HopPlan::Blackhole => {
                if !injecting {
                    self.in_flight[rf.dst] -= 1;
                }
                self.note_blackhole(sw);
                return None;
            }
            HopPlan::Blocked => {
                self.credit_stalls += 1;
                if P::ENABLED {
                    // Charge the stall to the planned escape egress — the
                    // port whose lanes were out of credit — so spatial
                    // probes can attribute ingress stalls to the congested
                    // link. Plan state is pure queue/table lookup: no RNG.
                    let egress = self.egress_of(sw, rf.dst);
                    let evc = self.escape_vc(sw, egress, rf.crossed);
                    self.probe
                        .on_credit_stall(self.slots, sw, Some(egress), Some(evc));
                }
                return Some(rf);
            }
            HopPlan::Lane { egress, vc } => (egress, vc),
        };
        self.last_motion_slot = self.slots;
        if P::ENABLED {
            self.probe.on_link_traversal(LinkTraversalEvent {
                slot: self.slots,
                link,
                hop: if injecting {
                    LinkHop::Inject
                } else {
                    LinkHop::Trunk
                },
                protocol: rf.protocol,
                retransmission: rf.retransmission,
            });
        }
        let flips = self.corrupt_on_link(link, &mut rf.payload);
        // Known-clean bypass: zero channel flips and a disabled internal
        // model mean the full pipeline is the identity and draw-free on this
        // flit (the previous hop emitted a valid codeword with a matching
        // CRC), so only the statistics need touching. This is where the
        // skip-ahead path earns its quiet-link speedup: no FEC decode, no
        // CRC verify, no re-encode — and, for a still-deferred
        // [`FlitPayload::Clean`] flit, no wire bytes at all.
        let verdict = if flips == 0 && self.clean_switch {
            self.switches[sw].forward_clean();
            ProcessVerdict::Forwarded {
                corrected_symbols: 0,
                internally_corrupted: false,
            }
        } else {
            let wire = rf.payload.materialize(&self.codec);
            self.switches[sw].process_in_place(wire, &mut self.rng)
        };
        match verdict {
            ProcessVerdict::Forwarded {
                corrected_symbols, ..
            } => {
                if P::ENABLED && corrected_symbols > 0 {
                    self.probe.on_channel_error(ChannelErrorEvent {
                        slot: self.slots,
                        switch: sw,
                        link,
                        dropped: false,
                        corrected_symbols,
                    });
                }
                rf.vc = vc as u8;
                let dst = rf.dst;
                let lane = self.lane(egress, vc);
                self.staged[sw][lane].push(rf);
                if injecting {
                    self.in_flight[dst] += 1;
                }
                if self.config.adaptive {
                    // Record the path taken at *every* hop, not just the
                    // choosing one: a lead flit reaches downstream switches
                    // after its followers were injected, and those switches
                    // must replay its exact ports or the followers could
                    // overtake it on a divergent equal-length path.
                    self.adaptive_pin[sw][dst] = egress as u32;
                }
                self.credits[sw][egress].occupy(vc);
                if P::ENABLED {
                    let occupancy = self.credits[sw][egress].occupancy(vc);
                    self.probe
                        .on_vc_occupancy(self.slots, sw, egress, vc, occupancy);
                }
                self.mark_staged(sw, egress);
            }
            ProcessVerdict::DroppedUncorrectable => {
                if P::ENABLED {
                    self.probe.on_channel_error(ChannelErrorEvent {
                        slot: self.slots,
                        switch: sw,
                        link,
                        dropped: true,
                        corrected_symbols: 0,
                    });
                }
                if !injecting {
                    self.in_flight[rf.dst] -= 1;
                }
                // Silent drop; the endpoints' retry machinery (or lack of
                // it, for baseline CXL's blind spot) is on its own.
                if rf.protocol {
                    self.protocol_flit_drops += 1;
                    if !rf.retransmission {
                        self.payload_drops += 1;
                        if !self.gap_open[rf.dst] && !self.endpoints[rf.dst].rx().awaiting_replay()
                        {
                            self.eligible_payload_drops += 1;
                        }
                    }
                }
            }
        }
        None
    }

    /// One output port's transmit opportunity for this slot: scan the port's
    /// virtual channels in round-robin order and act on the first head flit
    /// able to move — deliver to the attached endpoint, blackhole on a dead
    /// next hop, or forward into the next switch's planned lane. Any action
    /// (blackholes included, matching the pre-VC engine) consumes the
    /// opportunity and advances the arbiter; a head with no downstream
    /// credit lets the scan continue to the next VC, and a port where
    /// *every* non-empty VC was blocked records one credit-stall slot —
    /// with `vc_count == 1` exactly the pre-VC per-port accounting.
    fn forward_port(&mut self, sw: usize, port: usize, now: f64) {
        let vcc = self.vcc;
        let mut any_blocked = false;
        let mut blocked_vc: Option<usize> = None;
        for k in 0..vcc {
            let vc = self.arb[sw][port].pick(k, vcc);
            let lane = self.lane(port, vc);
            let Some(head) = self.out_q[sw][lane].front() else {
                continue;
            };
            let head_dst = head.dst;
            let head_crossed = head.crossed;
            match self.port_peer[sw][port] {
                PortPeer::Endpoint(dst) => {
                    debug_assert_eq!(head_dst, dst);
                    let rf = self.out_q[sw][lane].pop_front().expect("head exists");
                    self.in_flight[dst] -= 1;
                    self.credits[sw][port].release(vc);
                    self.note_out_pop(sw, port);
                    self.arb[sw][port].grant(vc, vcc);
                    self.deliver_to_endpoint(dst, rf, now);
                    return;
                }
                PortPeer::Trunk {
                    switch: next,
                    trunk,
                } => {
                    // A dead next hop (or a destination no surviving route
                    // reaches) swallows the flit instead of wedging the
                    // queue.
                    if self.dead_switches[next] || self.egress_of(next, head_dst) == NO_ROUTE {
                        let _ = self.out_q[sw][lane].pop_front().expect("head exists");
                        self.in_flight[head_dst] -= 1;
                        self.credits[sw][port].release(vc);
                        self.note_out_pop(sw, port);
                        self.arb[sw][port].grant(vc, vcc);
                        self.note_blackhole(next);
                        return;
                    }
                    // Plan the hop (lane + credit) against the next switch
                    // before popping: crossing a dateline trunk updates the
                    // flit's `crossed` bits on arrival, so the plan uses the
                    // post-crossing state while the trunk itself was
                    // traversed under the pre-crossing class.
                    let crossed = head_crossed | self.trunk_dateline_mask[trunk];
                    let others = self.in_flight[head_dst] - 1;
                    if self.plan_hop(next, head_dst, crossed, others) == HopPlan::Blocked {
                        any_blocked = true;
                        if blocked_vc.is_none() {
                            blocked_vc = Some(vc);
                        }
                        continue;
                    }
                    let mut rf = self.out_q[sw][lane].pop_front().expect("head exists");
                    rf.crossed = crossed;
                    self.credits[sw][port].release(vc);
                    self.note_out_pop(sw, port);
                    self.arb[sw][port].grant(vc, vcc);
                    let link = self.endpoints.len() + trunk;
                    let held = self.transmit_into(next, link, rf);
                    debug_assert!(held.is_none(), "credit was checked above");
                    return;
                }
                PortPeer::Unconnected => {
                    unreachable!("routing never targets unconnected ports")
                }
            }
        }
        if any_blocked {
            self.credit_stalls += 1;
            if P::ENABLED {
                self.probe
                    .on_credit_stall(self.slots, sw, Some(port), blocked_vc);
            }
        }
    }

    /// Delivers one flit to its destination endpoint, audits the delivered
    /// messages and classifies undetected-drop events.
    fn deliver_to_endpoint(&mut self, dst: usize, mut rf: RoutedFlit, now: f64) {
        self.last_motion_slot = self.slots;
        if P::ENABLED {
            self.probe.on_link_traversal(LinkTraversalEvent {
                slot: self.slots,
                link: dst,
                hop: LinkHop::Deliver,
                protocol: rf.protocol,
                retransmission: rf.retransmission,
            });
        }
        self.corrupt_on_link(dst, &mut rf.payload);
        // A flit still `Clean` after its last traversal never needed wire
        // bytes at all: the receiver takes the trusted path (no FEC decode,
        // no CRC verify) whose outcome is provably identical. Anything that
        // was ever corrupted — even if a switch FEC-corrected it back —
        // stays `Wire` and takes the full decode, byte-for-byte the
        // eager-encode engine's behaviour.
        let result = match &rf.payload {
            FlitPayload::Clean { flit, seq } => {
                self.endpoints[dst].receive_trusted(flit, *seq, now)
            }
            FlitPayload::Wire(wire) => self.endpoints[dst].receive(wire, now),
        };
        self.accepted_this_slot |= result.accepted;

        let session = self.session_of[dst];
        let is_device = self.topology.endpoints[dst].role == NodeRole::Device;
        let audit = if is_device {
            &mut self.downstream_audits[session]
        } else {
            &mut self.upstream_audits[session]
        };
        let mut out_of_order = false;
        for msg in &result.delivered {
            let verdict = audit.observe_delivery(msg);
            out_of_order |= verdict == DeliveryVerdict::OutOfOrder;
            if P::ENABLED {
                self.probe.on_deliver(DeliverEvent {
                    slot: self.slots,
                    session,
                    dst,
                    downstream: is_device,
                    key: msg_key(msg),
                    verdict,
                });
            }
        }

        // Latency telemetry: first delivery of a timed message closes its
        // tag→slot entry; later (duplicate) deliveries find none and are
        // counted as untracked instead of skewing the distribution.
        if let Some(tel) = &mut self.telemetry {
            for msg in &result.delivered {
                match tel.inject_slot[dst].remove(&msg_key(msg)) {
                    Some(injected_at) => {
                        let sample = self.slots - injected_at;
                        if is_device {
                            tel.samples.downstream.push(sample);
                        } else {
                            tel.samples.upstream.push(sample);
                        }
                    }
                    None => tel.samples.untracked += 1,
                }
            }
        }

        // One undetected-drop (`Fail_order`) event per drop episode — the
        // channel of the paper's Eqn (7): a dropped flit whose successor
        // carried a piggybacked AckNum, so the receiver forwarded mis-ordered
        // data *without noticing the gap*. The counter requires all of:
        //
        // * the flit was forwarded without a sequence check (AckNum in the
        //   FSN field),
        // * its messages jumped over a still-missing predecessor (the
        //   auditor saw an out-of-order delivery),
        // * the receiver was *not* already in a go-back-N replay — data an
        //   ACK-carrying flit leaks through during a detected drop's replay
        //   window is mis-ordered too, but it is a latency-dependent
        //   second-order channel outside the analytic model,
        // * no gap episode is already open (each episode counts once, until
        //   the auditor sees the gap filled by a replay).
        //
        // RXL never forwards unchecked, so it can never produce such events.
        if result.delivered_header.is_some() {
            if result.accepted && !result.sequence_checked && out_of_order {
                if self.endpoints[dst].rx().awaiting_replay() {
                    self.replay_leak_events += 1;
                } else if !self.gap_open[dst] {
                    self.undetected_drop_events += 1;
                    if self.first_fail_order_slot.is_none() {
                        self.first_fail_order_slot = Some(self.slots);
                    }
                    if P::ENABLED {
                        self.probe.on_fail_order(self.slots, session, dst);
                    }
                }
            }
            self.gap_open[dst] = audit.has_open_gaps();
        }
    }

    /// Loads the workload: registers every message with the ground-truth
    /// auditors and stages it for injection. Must be called exactly once,
    /// before [`Self::step`].
    ///
    /// With [`FabricConfig::offered_load`] unset every message is enqueued
    /// at its sending endpoint immediately (the greedy path, byte-for-byte
    /// the pre-pacing engine); with it set, injection is paced at the
    /// configured deterministic fixed rate via [`InjectionPacing::fixed_rate`].
    pub fn begin(&mut self, workload: &FabricWorkload) {
        match self.config.offered_load {
            Some(fraction) => {
                let pacing =
                    InjectionPacing::fixed_rate(workload, fraction * MESSAGES_PER_FLIT as f64);
                self.load_workload(workload, Some(&pacing));
            }
            None => self.load_workload(workload, None),
        }
    }

    /// Like [`Self::begin`], but with an explicit per-message arrival
    /// schedule (ignoring the [`FabricConfig::offered_load`] knob). The
    /// arrival processes of `rxl-load` build these schedules.
    pub fn begin_paced(&mut self, workload: &FabricWorkload, pacing: &InjectionPacing) {
        self.load_workload(workload, Some(pacing));
    }

    /// Enables injection→delivery latency timestamping for this trial. Must
    /// be called before `begin`; [`FabricReport::latency`] then carries the
    /// recorded [`LatencySamples`]. All map and sample storage is reserved
    /// at `begin`, so the per-slot hot loop performs no allocation beyond
    /// pre-reserved-capacity hash inserts.
    pub fn enable_latency_telemetry(&mut self) {
        assert!(
            !self.workload_loaded,
            "latency telemetry must be enabled before begin"
        );
        self.telemetry = Some(Telemetry {
            inject_slot: (0..self.topology.endpoints.len())
                .map(|_| FastMap::default())
                .collect(),
            samples: LatencySamples::default(),
        });
    }

    fn load_workload(&mut self, workload: &FabricWorkload, pacing: Option<&InjectionPacing>) {
        assert!(!self.workload_loaded, "begin must be called exactly once");
        assert_eq!(
            workload.sessions(),
            self.topology.sessions.len(),
            "workload must cover every session"
        );
        if let Some(p) = pacing {
            p.validate(workload);
        }
        self.workload_loaded = true;

        if let Some(tel) = &mut self.telemetry {
            // One reservation per destination map and sample vector, so the
            // hot loop never grows them.
            let (mut down_total, mut up_total) = (0, 0);
            for (s, session) in self.topology.sessions.iter().enumerate() {
                tel.inject_slot[session.device].reserve(workload.downstream[s].len());
                tel.inject_slot[session.host].reserve(workload.upstream[s].len());
                down_total += workload.downstream[s].len();
                up_total += workload.upstream[s].len();
            }
            tel.samples.downstream.reserve(down_total);
            tel.samples.upstream.reserve(up_total);
        }

        let mut paced_streams =
            pacing.map(|_| vec![PacedStream::default(); self.topology.endpoints.len()]);
        for (s, session) in self.topology.sessions.iter().enumerate() {
            // Reserve the ground-truth maps before registration: fabric-scale
            // workloads register O(10^5) messages per session pair, and the
            // incremental doubling rehashes dominated `record_sent` profiles.
            self.downstream_audits[s].reserve(workload.downstream[s].len(), 64);
            self.upstream_audits[s].reserve(workload.upstream[s].len(), 64);
            for m in &workload.downstream[s] {
                self.downstream_audits[s].record_sent(m);
            }
            for m in &workload.upstream[s] {
                self.upstream_audits[s].record_sent(m);
            }
            match (&mut paced_streams, pacing) {
                (Some(streams), Some(p)) => {
                    streams[session.host] = PacedStream {
                        msgs: workload.downstream[s].clone(),
                        slots: p.downstream[s].clone(),
                        cursor: 0,
                    };
                    streams[session.device] = PacedStream {
                        msgs: workload.upstream[s].clone(),
                        slots: p.upstream[s].clone(),
                        cursor: 0,
                    };
                    self.pending_paced += workload.downstream[s].len() + workload.upstream[s].len();
                }
                _ => {
                    if let Some(tel) = &mut self.telemetry {
                        for m in &workload.downstream[s] {
                            tel.inject_slot[session.device].insert(msg_key(m), 0);
                        }
                        for m in &workload.upstream[s] {
                            tel.inject_slot[session.host].insert(msg_key(m), 0);
                        }
                    }
                    if P::ENABLED {
                        for m in &workload.downstream[s] {
                            self.probe.on_inject(InjectEvent {
                                slot: 0,
                                session: s,
                                src: session.host,
                                dst: session.device,
                                downstream: true,
                                key: msg_key(m),
                            });
                        }
                        for m in &workload.upstream[s] {
                            self.probe.on_inject(InjectEvent {
                                slot: 0,
                                session: s,
                                src: session.device,
                                dst: session.host,
                                downstream: false,
                                key: msg_key(m),
                            });
                        }
                    }
                    self.endpoints[session.host]
                        .enqueue_messages(workload.downstream[s].iter().copied());
                    self.endpoints[session.device]
                        .enqueue_messages(workload.upstream[s].iter().copied());
                }
            }
        }
        self.paced = paced_streams;
    }

    /// Releases every paced message whose arrival slot has been reached into
    /// its endpoint's transmit queue (phase 0 of a slot). A release counts
    /// as trial progress for the stall guard: an open-loop gap between
    /// arrivals (a bursty on/off process can idle for thousands of slots)
    /// must not be classified as a wedge while injections are pending.
    fn release_due(&mut self) {
        let now_slot = self.slots;
        let Some(streams) = &mut self.paced else {
            return;
        };
        let mut released_any = false;
        for (e, stream) in streams.iter_mut().enumerate() {
            let start = stream.cursor;
            while stream.cursor < stream.msgs.len() && stream.slots[stream.cursor] <= now_slot {
                stream.cursor += 1;
            }
            if stream.cursor > start {
                let batch = &stream.msgs[start..stream.cursor];
                if let Some(tel) = &mut self.telemetry {
                    let dst = self.peer_of[e];
                    for m in batch {
                        tel.inject_slot[dst].insert(msg_key(m), now_slot);
                    }
                }
                if P::ENABLED {
                    let dst = self.peer_of[e];
                    let downstream = self.topology.endpoints[dst].role == NodeRole::Device;
                    let session = self.session_of[e];
                    for m in batch {
                        self.probe.on_inject(InjectEvent {
                            slot: now_slot,
                            session,
                            src: e,
                            dst,
                            downstream,
                            key: msg_key(m),
                        });
                    }
                }
                self.endpoints[e].enqueue_messages(batch.iter().copied());
                self.pending_paced -= stream.cursor - start;
                released_any = true;
            }
        }
        if released_any {
            self.last_accept_slot = now_slot;
        }
    }

    /// Advances the trial by at most `budget` slots (scenario engines pass
    /// the distance to the next epoch boundary; [`Self::run`] passes
    /// `u64::MAX`). Returns why the call stopped; only
    /// [`StepOutcome::Budget`] means the trial can continue.
    pub fn step(&mut self, budget: u64) -> StepOutcome {
        assert!(self.workload_loaded, "step requires begin");
        if self.drained {
            return StepOutcome::Drained;
        }
        let mut stepped = 0u64;
        while self.slots < self.config.max_slots {
            if stepped == budget {
                return StepOutcome::Budget;
            }
            stepped += 1;
            self.slots += 1;
            self.now += self.flit_time_ns;
            let now = self.now;
            self.accepted_this_slot = false;
            let mut all_endpoints_idle = true;

            // Self-profiler clock: a constant condition, so unprofiled
            // builds (NullProbe *and* enabled-but-unprofiled probes)
            // compile every phase mark away.
            let mut phase_clock = if P::ENABLED && P::PROFILE {
                Some(std::time::Instant::now())
            } else {
                None
            };

            // Phase 0 — paced injection: release messages whose arrival slot
            // has come. Free (one integer compare) on the greedy path.
            if self.pending_paced > 0 {
                self.release_due();
            }
            self.phase_mark(&mut phase_clock, EnginePhase::PacedRelease);

            // Phase 1 — endpoint transmit opportunities, in endpoint order.
            for e in 0..self.endpoints.len() {
                let sw = self.topology.endpoints[e].switch;
                if let Some(rf) = self.stalled[e].take() {
                    // A stalled flit consumes this slot's opportunity.
                    all_endpoints_idle = false;
                    self.stalled[e] = self.transmit_into(sw, e, rf);
                    continue;
                }
                let emission = self.endpoints[e].emit(now);
                let (protocol, retransmission) = match &emission {
                    rxl_link::TxEmission::Protocol { retransmission, .. } => {
                        (true, *retransmission)
                    }
                    _ => (false, false),
                };
                if P::ENABLED {
                    if retransmission {
                        self.probe.on_retransmit(self.slots, e, self.session_of[e]);
                    } else if matches!(&emission, rxl_link::TxEmission::Nack { .. }) {
                        self.probe.on_nack(self.slots, e, self.session_of[e]);
                    }
                }
                if let Some(flit) = emission.flit() {
                    all_endpoints_idle = false;
                    // The wire image is *not* encoded here: the flit enters
                    // the fabric in deferred (`Clean`) form, bound to the
                    // sequence number its transmitter assigned, and only a
                    // corrupting traversal forces the encode.
                    let seq = emission
                        .bound_seq()
                        .expect("non-idle emission has a bound seq");
                    let rf = RoutedFlit {
                        payload: FlitPayload::Clean {
                            flit: flit.clone(),
                            seq,
                        },
                        dst: self.peer_of[e],
                        protocol,
                        retransmission,
                        vc: 0,
                        crossed: 0,
                    };
                    self.stalled[e] = self.transmit_into(sw, e, rf);
                }
            }
            self.phase_mark(&mut phase_clock, EnginePhase::EndpointTx);

            // Phase 2 — every non-empty switch output port forwards at most
            // one flit, in ascending (switch, port) order — exactly the
            // visit order of the dense sweep this replaces, restricted to
            // ports that actually hold flits (empty ports made no RNG draws,
            // so skipping them is bit-identical; see the type-level docs).
            // The word snapshots are safe because processing a port can only
            // clear its *own* bit (the single pop below) and set *staged*
            // bits, never other out-queue bits.
            for swi in 0..self.sw_out_any.len() {
                let mut sw_word = self.sw_out_any[swi];
                while sw_word != 0 {
                    let sw = swi * 64 + sw_word.trailing_zeros() as usize;
                    sw_word &= sw_word - 1;
                    for pwi in 0..self.out_nonempty[sw].len() {
                        let mut port_word = self.out_nonempty[sw][pwi];
                        while port_word != 0 {
                            let port = pwi * 64 + port_word.trailing_zeros() as usize;
                            port_word &= port_word - 1;
                            self.forward_port(sw, port, now);
                        }
                    }
                }
            }
            self.phase_mark(&mut phase_clock, EnginePhase::SwitchForward);

            // Phase 3 — flits that arrived this slot become visible next
            // slot (one switch traversal per slot). Only ports that staged
            // something are touched; the staged buffers keep their capacity.
            for swi in 0..self.sw_staged_any.len() {
                let sw_word = std::mem::take(&mut self.sw_staged_any[swi]);
                let mut bits = sw_word;
                while bits != 0 {
                    let sw = swi * 64 + bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    for pwi in 0..self.staged_nonempty[sw].len() {
                        let mut port_word = std::mem::take(&mut self.staged_nonempty[sw][pwi]);
                        while port_word != 0 {
                            let port = pwi * 64 + port_word.trailing_zeros() as usize;
                            port_word &= port_word - 1;
                            let (queues, staged) = (&mut self.out_q[sw], &mut self.staged[sw]);
                            for lane in (port * self.vcc)..((port + 1) * self.vcc) {
                                queues[lane].extend(staged[lane].drain(..));
                            }
                            self.mark_out_nonempty(sw, port);
                        }
                    }
                    self.sw_staged_count[sw] = 0;
                }
            }
            self.phase_mark(&mut phase_clock, EnginePhase::StageMerge);
            let queues_empty = self.nonempty_out_ports == 0;

            if all_endpoints_idle
                && queues_empty
                && self.pending_paced == 0
                && self.stalled.iter().all(Option::is_none)
                && self.endpoints.iter().all(LinkEndpoint::is_quiescent)
            {
                self.drained = true;
                return StepOutcome::Drained;
            }

            // Livelock guard: abort once nothing has been accepted anywhere
            // for the configured window (see `FabricConfig::stall_slots`).
            // While paced injections are still pending the guard is held
            // off: an open-loop arrival gap (bursty processes can idle for
            // many thousands of slots) is scheduled quiet time, not a wedge;
            // a genuinely wedged paced trial is still caught one guard
            // window after its final release.
            if self.accepted_this_slot {
                self.last_accept_slot = self.slots;
            } else if self.config.stall_slots > 0
                && self.pending_paced == 0
                && self.slots - self.last_accept_slot >= self.config.stall_slots
            {
                // If every workload message of every session has been
                // delivered, the wedge is control-plane residue (a
                // retransmitted ACK/NACK exchange that can no longer
                // converge), not lost payload: the trial *did* drain the
                // workload. Report it drained and classify the residual.
                if self
                    .downstream_audits
                    .iter()
                    .chain(&self.upstream_audits)
                    .all(DeliveryAuditor::all_delivered)
                {
                    self.post_delivery_wedge = true;
                    self.drained = true;
                    return StepOutcome::Drained;
                }
                // Classify the wedge: flits stuck in the fabric with no
                // motion anywhere for at least half the guard window is a
                // credit deadlock (once the cyclic credit wait closes,
                // motion ceases entirely); motion without acceptance is the
                // documented replay livelock, which keeps flits moving every
                // few slots right up to the guard.
                self.deadlock = (self.nonempty_out_ports > 0
                    || self.stalled.iter().any(Option::is_some))
                    && self.slots - self.last_motion_slot >= self.config.stall_slots.div_ceil(2);
                return StepOutcome::Stalled;
            }
        }
        StepOutcome::SlotLimit
    }

    /// Open-system serving mode: advances the trial until `horizon` slots
    /// have been simulated, then stops *without draining* — the tail of
    /// in-flight work past the horizon is deliberately left unmeasured, so
    /// steady-state windows are not contaminated by the drain transient a
    /// closed run ends with. Returns [`StepOutcome::Horizon`] when the
    /// horizon was reached with work still in flight; a trial that drains
    /// or wedges before the horizon passes its outcome through unchanged.
    ///
    /// [`FabricConfig::max_slots`] must exceed `horizon` for the horizon to
    /// be reachable (otherwise the slot limit fires first, as in any run).
    /// Call [`Self::finish_with_probe`] afterwards as usual: the report's
    /// `drained` flag records that the run was cut at the horizon.
    pub fn run_to_horizon(&mut self, horizon: u64) -> StepOutcome {
        match self.step(horizon.saturating_sub(self.slots)) {
            StepOutcome::Budget => StepOutcome::Horizon,
            other => other,
        }
    }

    /// Runs the trial to quiescence (or the slot limit) and reports.
    pub fn run(mut self, workload: &FabricWorkload) -> FabricReport {
        self.begin(workload);
        let _ = self.step(u64::MAX);
        self.finish()
    }

    /// Closes the audits (attributing losses) and assembles the final
    /// report.
    pub fn finish(self) -> FabricReport {
        self.finish_with_probe().0
    }

    /// Like [`Self::finish`], additionally handing back the probe with
    /// everything it recorded over the trial.
    pub fn finish_with_probe(self) -> (FabricReport, P) {
        let mut links = LinkStats::default();
        for ep in &self.endpoints {
            links.merge(&ep.stats());
        }
        let mut switches = SwitchStats::default();
        for sw in &self.switches {
            switches.merge(sw.stats());
        }
        let mut downstream = FailureCounts::default();
        let mut upstream = FailureCounts::default();
        let mut per_session = Vec::with_capacity(self.downstream_audits.len());
        for (down, up) in self.downstream_audits.into_iter().zip(self.upstream_audits) {
            let d = down.finalize();
            let u = up.finalize();
            downstream.merge(&d);
            upstream.merge(&u);
            let mut both = d;
            both.merge(&u);
            per_session.push(both);
        }

        let report = FabricReport {
            downstream,
            upstream,
            per_session,
            links,
            switches,
            undetected_drop_events: self.undetected_drop_events,
            protocol_flit_drops: self.protocol_flit_drops,
            payload_drops: self.payload_drops,
            eligible_payload_drops: self.eligible_payload_drops,
            replay_leak_events: self.replay_leak_events,
            credit_stalls: self.credit_stalls,
            blackholed_flits: self.blackholed_flits,
            slots: self.slots,
            sim_time_ns: self.now,
            drained: self.drained,
            deadlock: self.deadlock,
            post_delivery_wedge: self.post_delivery_wedge,
            first_fail_order_slot: self.first_fail_order_slot,
            latency: self.telemetry.map(|t| t.samples),
        };
        (report, self.probe)
    }

    /// The trial's probe (read access mid-run).
    pub fn probe(&self) -> &P {
        &self.probe
    }

    /// The trial's probe, mutably — scenario engines use this to feed it
    /// out-of-band events ([`Probe::on_epoch`]) at epoch boundaries.
    pub fn probe_mut(&mut self) -> &mut P {
        &mut self.probe
    }

    /// Slots simulated so far.
    pub fn slot(&self) -> u64 {
        self.slots
    }

    /// The per-trial configuration.
    pub fn config(&self) -> &FabricConfig {
        &self.config
    }

    /// Snapshot of the cumulative counters, for per-epoch deltas.
    pub fn counters(&self) -> FabricCounters {
        let mut failures = FailureCounts::default();
        for audit in self.downstream_audits.iter().chain(&self.upstream_audits) {
            failures.merge(audit.counts());
        }
        FabricCounters {
            slots: self.slots,
            failures,
            undetected_drop_events: self.undetected_drop_events,
            replay_leak_events: self.replay_leak_events,
            payload_drops: self.payload_drops,
            protocol_flit_drops: self.protocol_flit_drops,
            blackholed_flits: self.blackholed_flits,
            credit_stalls: self.credit_stalls,
        }
    }

    /// Slot of the first undetected-drop (`Fail_order`) event so far.
    pub fn first_fail_order_slot(&self) -> Option<u64> {
        self.first_fail_order_slot
    }

    /// Installs a (possibly time-varying) channel on one link, replacing the
    /// static `config.channel` for that link until
    /// [`Self::reset_link_channel`]. The scenario engine in `rxl-chaos` is
    /// the intended caller.
    pub fn set_link_channel(&mut self, link: LinkId, channel: Box<dyn Channel>) {
        let n = self.topology.link_count();
        assert!(link.index() < n, "link out of range");
        let overrides = self
            .link_channels
            .get_or_insert_with(|| (0..n).map(|_| None).collect());
        overrides[link.index()] = Some(channel);
        // The cached next-error event belonged to the replaced channel;
        // resample from the new one at the next traversal. Callers dedup
        // unchanged specs (the chaos runner does), so an untouched link
        // keeps its cache.
        self.link_cursors[link.index()].reset();
    }

    /// Reverts one link to the static `config.channel`.
    pub fn reset_link_channel(&mut self, link: LinkId) {
        if let Some(overrides) = &mut self.link_channels {
            if overrides[link.index()].take().is_some() {
                self.link_cursors[link.index()].reset();
            }
        }
    }

    /// Excludes switch `sw` from transit routing (a graceful drain): its
    /// attached endpoints stay reachable and queued flits still forward, but
    /// no recomputed route crosses it. Destinations only reachable through
    /// it are blackholed.
    pub fn drain_switch(&mut self, sw: usize) {
        assert!(sw < self.switches.len(), "switch out of range");
        if self.no_transit[sw] {
            return;
        }
        self.no_transit[sw] = true;
        if P::ENABLED {
            self.probe.on_switch_drain(self.slots, sw, false);
        }
        self.rebuild_routing();
    }

    /// Restores a drained (not failed) switch to transit eligibility.
    pub fn undrain_switch(&mut self, sw: usize) {
        assert!(sw < self.switches.len(), "switch out of range");
        if self.dead_switches[sw] || !self.no_transit[sw] {
            return;
        }
        self.no_transit[sw] = false;
        if P::ENABLED {
            self.probe.on_switch_drain(self.slots, sw, true);
        }
        self.rebuild_routing();
    }

    /// Kills switch `sw` outright: every flit queued or staged on it is
    /// lost, all future ingress is blackholed, and routing is recomputed so
    /// surviving sessions reroute (destination-based lookups re-resolve at
    /// every hop, so flits already in flight elsewhere reroute too).
    /// Endpoints attached to it are orphaned; their traffic blackholes.
    pub fn fail_switch(&mut self, sw: usize) {
        assert!(sw < self.switches.len(), "switch out of range");
        if self.dead_switches[sw] {
            return;
        }
        self.dead_switches[sw] = true;
        self.no_transit[sw] = true;
        let purged_before = self.blackholed_flits;
        for port in 0..self.topology.switches[sw].ports {
            let (mut queued, mut staged) = (0usize, 0usize);
            for vc in 0..self.vcc {
                let lane = port * self.vcc + vc;
                for rf in std::mem::take(&mut self.out_q[sw][lane]) {
                    self.in_flight[rf.dst] -= 1;
                    queued += 1;
                }
                for rf in std::mem::take(&mut self.staged[sw][lane]) {
                    self.in_flight[rf.dst] -= 1;
                    staged += 1;
                }
            }
            if queued > 0 {
                self.blackholed_flits += queued as u64;
                let (wi, mask) = (port / 64, 1u64 << (port % 64));
                debug_assert_ne!(self.out_nonempty[sw][wi] & mask, 0);
                self.out_nonempty[sw][wi] &= !mask;
                self.nonempty_out_ports -= 1;
                self.sw_out_count[sw] -= 1;
            }
            if staged > 0 {
                self.blackholed_flits += staged as u64;
                let (wi, mask) = (port / 64, 1u64 << (port % 64));
                debug_assert_ne!(self.staged_nonempty[sw][wi] & mask, 0);
                self.staged_nonempty[sw][wi] &= !mask;
                self.sw_staged_count[sw] -= 1;
            }
            self.credits[sw][port].purge();
        }
        debug_assert_eq!(self.sw_out_count[sw], 0);
        debug_assert_eq!(self.sw_staged_count[sw], 0);
        self.sw_out_any[sw / 64] &= !(1u64 << (sw % 64));
        self.sw_staged_any[sw / 64] &= !(1u64 << (sw % 64));
        self.last_motion_slot = self.slots;
        if P::ENABLED {
            self.probe
                .on_switch_fail(self.slots, sw, self.blackholed_flits - purged_before);
        }
        self.rebuild_routing();
    }

    fn rebuild_routing(&mut self) {
        self.routing_override = Some(RoutingTable::degraded(
            self.topology,
            &self.no_transit,
            &self.dead_switches,
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_one(
        topology: &FabricTopology,
        variant: ProtocolVariant,
        channel: ChannelErrorModel,
        seed: u64,
        messages: usize,
    ) -> FabricReport {
        let routing = RoutingTable::new(topology);
        let config = FabricConfig::new(variant)
            .with_channel(channel)
            .with_seed(seed);
        let workload = FabricWorkload::symmetric(topology.session_count(), messages, 8, 7);
        FabricSim::new(topology, &routing, config).run(&workload)
    }

    #[test]
    fn error_free_leaf_spine_delivers_everything_cleanly() {
        let t = FabricTopology::leaf_spine(2, 2, 1);
        for variant in [ProtocolVariant::CxlPiggyback, ProtocolVariant::Rxl] {
            let report = run_one(&t, variant, ChannelErrorModel::ideal(), 1, 45);
            assert!(report.drained, "{variant:?} did not drain");
            assert!(report.downstream.is_clean(), "{:?}", report.downstream);
            assert!(report.upstream.is_clean(), "{:?}", report.upstream);
            assert_eq!(report.downstream.clean_deliveries, 2 * 45);
            assert_eq!(report.upstream.clean_deliveries, 2 * 45);
            assert_eq!(report.undetected_drop_events, 0);
            assert!(report.switches.flits_forwarded > 0);
            assert_eq!(report.switches.flits_dropped_uncorrectable, 0);
            assert_eq!(report.per_session.len(), 2);
        }
    }

    #[test]
    fn error_free_ring_and_fat_tree_deliver_cleanly() {
        for t in [
            FabricTopology::ring(4, 1, 2),
            FabricTopology::fat_tree2(2, 1, 1),
        ] {
            let report = run_one(&t, ProtocolVariant::Rxl, ChannelErrorModel::ideal(), 2, 30);
            assert!(report.drained, "{} did not drain", t.name);
            assert!(report.total_failures().is_clean());
        }
    }

    #[test]
    fn rxl_fabric_survives_noise_without_protocol_failures() {
        let t = FabricTopology::ring(4, 1, 1);
        let report = run_one(
            &t,
            ProtocolVariant::Rxl,
            ChannelErrorModel::random(2e-4),
            42,
            120,
        );
        assert!(report.drained, "RXL must drain despite drops");
        assert!(
            report.total_failures().is_clean(),
            "{:?}",
            report.total_failures()
        );
        assert_eq!(report.undetected_drop_events, 0);
        assert!(report.switches.flits_dropped_uncorrectable > 0);
        assert!(report.links.flits_retransmitted > 0);
    }

    #[test]
    fn cxl_piggyback_fabric_exhibits_undetected_drop_events() {
        // Aggregate over seeds: any single short trial may get lucky.
        let t = FabricTopology::ring(4, 1, 1);
        let mut events = 0;
        let mut failures = 0;
        for seed in 0..6 {
            let report = run_one(
                &t,
                ProtocolVariant::CxlPiggyback,
                ChannelErrorModel::random(2e-4),
                seed,
                400,
            );
            events += report.undetected_drop_events;
            let f = report.total_failures();
            failures += f.ordering_failures + f.duplicate_deliveries;
        }
        assert!(events > 0, "expected undetected-drop events");
        assert!(failures > 0, "events must surface as application failures");
    }

    #[test]
    fn tiny_queues_backpressure_without_losing_flits() {
        // Eight sessions funnel through one spine with single-flit queues:
        // heavy credit stalling, but nothing is dropped and (with an ideal
        // channel) everything still arrives cleanly.
        let t = FabricTopology::leaf_spine(2, 1, 4);
        let routing = RoutingTable::new(&t);
        let config = FabricConfig {
            queue_capacity: 1,
            ..FabricConfig::new(ProtocolVariant::Rxl)
        }
        .with_channel(ChannelErrorModel::ideal());
        let workload = FabricWorkload::symmetric(t.session_count(), 40, 8, 3);
        let report = FabricSim::new(&t, &routing, config).run(&workload);
        assert!(report.drained);
        assert!(report.credit_stalls > 0, "single-flit queues must stall");
        assert_eq!(report.switches.flits_dropped_queue_full, 0);
        assert!(
            report.total_failures().is_clean(),
            "{:?}",
            report.total_failures()
        );
    }

    #[test]
    fn trials_are_deterministic_per_seed() {
        let t = FabricTopology::leaf_spine(2, 2, 1);
        let a = run_one(
            &t,
            ProtocolVariant::Rxl,
            ChannelErrorModel::random(2e-4),
            9,
            60,
        );
        let b = run_one(
            &t,
            ProtocolVariant::Rxl,
            ChannelErrorModel::random(2e-4),
            9,
            60,
        );
        assert_eq!(a.links, b.links);
        assert_eq!(a.switches, b.switches);
        assert_eq!(a.slots, b.slots);
        assert_eq!(a.total_failures(), b.total_failures());
    }

    /// The ring(span ≥ 2) saturation wedge (cyclic trunk-credit dependency
    /// with a single virtual channel) must surface as a *detectable*
    /// outcome — `deadlock = true` — rather than a silent stall-guard abort
    /// indistinguishable from the CXL replay livelock. This is the
    /// `vc_count = 1` regression anchor: the deadlock the escape VCs exist
    /// to break must stay reproducible at one VC.
    #[test]
    fn saturated_ring_span2_reports_credit_deadlock() {
        let t = FabricTopology::ring(6, 2, 2);
        let routing = RoutingTable::new(&t);
        let config = FabricConfig {
            queue_capacity: 4,
            ..FabricConfig::new(ProtocolVariant::Rxl)
        }
        .with_channel(ChannelErrorModel::ideal())
        .with_vc_count(1);
        let workload = FabricWorkload::symmetric(t.session_count(), 2_000, 8, 2);
        let report = FabricSim::new(&t, &routing, config).run(&workload);
        assert!(!report.drained, "saturated span-2 ring must wedge");
        assert!(report.deadlock, "the wedge must be classified as deadlock");
        assert!(report.credit_stalls > 0);
    }

    /// The tentpole fix: the *same* saturated span-2 ring that deadlocks at
    /// one VC drains completely once the dateline escape VCs are installed
    /// (`vc_count = 2`), with every message delivered cleanly.
    #[test]
    fn escape_vcs_drain_the_saturated_span2_ring() {
        let t = FabricTopology::ring(6, 2, 2);
        let routing = RoutingTable::new(&t);
        let config = FabricConfig {
            queue_capacity: 4,
            ..FabricConfig::new(ProtocolVariant::Rxl)
        }
        .with_channel(ChannelErrorModel::ideal())
        .with_vc_count(2);
        let workload = FabricWorkload::symmetric(t.session_count(), 2_000, 8, 2);
        let report = FabricSim::new(&t, &routing, config).run(&workload);
        assert!(report.drained, "escape VCs must break the credit cycle");
        assert!(!report.deadlock);
        assert!(
            report.total_failures().is_clean(),
            "{:?}",
            report.total_failures()
        );
    }

    /// Same pairing on the torus: wrap-around links in both dimensions close
    /// credit cycles at `vc_count = 1` under saturation; the per-dimension
    /// dateline classes break every one of them at `vc_count = 2`. The
    /// 4-wide torus matters: antipodal sessions travel two x-hops, so the
    /// trunk-credit dependency chain wraps a whole row ring (a 3×3 torus
    /// routes one hop per dimension and cannot close the cycle).
    #[test]
    fn saturated_torus_deadlocks_at_one_vc_and_drains_with_escape_vcs() {
        let t = FabricTopology::torus(4, 3, 2);
        let routing = RoutingTable::new(&t);
        let workload = FabricWorkload::symmetric(t.session_count(), 1_500, 8, 2);
        let run = |vcs: usize| {
            let config = FabricConfig {
                queue_capacity: 4,
                ..FabricConfig::new(ProtocolVariant::Rxl)
            }
            .with_channel(ChannelErrorModel::ideal())
            .with_vc_count(vcs);
            FabricSim::new(&t, &routing, config).run(&workload)
        };
        let wedged = run(1);
        assert!(!wedged.drained, "saturated torus must wedge at one VC");
        assert!(wedged.deadlock, "the wedge is a credit deadlock");
        let fixed = run(2);
        assert!(fixed.drained, "escape VCs must drain the torus");
        assert!(!fixed.deadlock);
        assert!(fixed.total_failures().is_clean());
    }

    /// Minimal-adaptive routing (escape VCs + adaptive VC 2) delivers the
    /// same saturated torus workload cleanly: adaptive spreading must never
    /// cost correctness or deadlock freedom.
    #[test]
    fn adaptive_torus_drains_cleanly_under_saturation() {
        let t = FabricTopology::torus(3, 3, 2);
        let routing = RoutingTable::new(&t);
        let config = FabricConfig {
            queue_capacity: 4,
            ..FabricConfig::new(ProtocolVariant::Rxl)
        }
        .with_channel(ChannelErrorModel::ideal())
        .with_vc_count(3)
        .with_adaptive(true);
        let workload = FabricWorkload::symmetric(t.session_count(), 1_500, 8, 2);
        let report = FabricSim::new(&t, &routing, config).run(&workload);
        assert!(report.drained, "adaptive torus must drain");
        assert!(!report.deadlock);
        assert!(report.total_failures().is_clean());
    }

    /// Dragonfly: saturated global links drain with escape VCs, and the
    /// custom ≤1-global routing keeps every delivery clean.
    #[test]
    fn dragonfly_drains_cleanly_with_escape_vcs() {
        let t = FabricTopology::dragonfly(3, 2, 1);
        let routing = RoutingTable::new(&t);
        let config = FabricConfig {
            queue_capacity: 4,
            ..FabricConfig::new(ProtocolVariant::Rxl)
        }
        .with_channel(ChannelErrorModel::ideal())
        .with_vc_count(2);
        let workload = FabricWorkload::symmetric(t.session_count(), 600, 8, 5);
        let report = FabricSim::new(&t, &routing, config).run(&workload);
        assert!(report.drained, "dragonfly must drain with escape VCs");
        assert!(!report.deadlock);
        assert!(report.total_failures().is_clean());
    }

    /// Adaptive routing needs an adaptive VC on top of the two escape
    /// classes; the constructor enforces it.
    #[test]
    #[should_panic(expected = "adaptive")]
    fn adaptive_routing_requires_three_vcs() {
        let t = FabricTopology::ring(4, 1, 1);
        let routing = RoutingTable::new(&t);
        let config = FabricConfig::new(ProtocolVariant::Rxl)
            .with_vc_count(2)
            .with_adaptive(true);
        let _ = FabricSim::new(&t, &routing, config);
    }

    /// The baseline-CXL stale-NACK wedge keeps replay traffic moving, so it
    /// must NOT be classified as a credit deadlock.
    #[test]
    fn cxl_livelock_wedge_is_not_classified_as_deadlock() {
        let t = FabricTopology::ring(4, 1, 1);
        let report = run_one(
            &t,
            ProtocolVariant::CxlPiggyback,
            ChannelErrorModel::random(1e-3),
            0,
            600,
        );
        assert!(!report.drained, "this operating point wedges (livelock)");
        assert!(!report.deadlock, "livelock is not a credit deadlock");
    }

    #[test]
    fn failing_a_spine_mid_run_reroutes_over_the_survivor() {
        let t = FabricTopology::leaf_spine(2, 2, 1);
        let routing = RoutingTable::new(&t);
        let config =
            FabricConfig::new(ProtocolVariant::Rxl).with_channel(ChannelErrorModel::ideal());
        let workload = FabricWorkload::symmetric(t.session_count(), 2_000, 8, 3);
        let mut sim = FabricSim::new(&t, &routing, config);
        sim.begin(&workload);
        assert_eq!(sim.step(60), StepOutcome::Budget, "traffic still flowing");
        let mid = sim.counters();
        sim.fail_switch(2); // first spine
        assert_eq!(sim.step(u64::MAX), StepOutcome::Drained);
        let report = sim.finish();
        // The blackholed flits look like silent drops to RXL's go-back-N
        // machinery, so everything is retried over the surviving spine and
        // the audit stays clean.
        assert!(report.drained);
        assert!(
            report.total_failures().is_clean(),
            "{:?}",
            report.total_failures()
        );
        assert!(report.blackholed_flits > 0, "spine queues held flits");
        assert!(
            report.total_failures().clean_deliveries > mid.failures.clean_deliveries,
            "traffic must keep delivering after the failure"
        );
    }

    #[test]
    fn per_link_channel_override_corrupts_only_that_link() {
        let t = FabricTopology::leaf_spine(2, 1, 1);
        let routing = RoutingTable::new(&t);
        let config =
            FabricConfig::new(ProtocolVariant::Rxl).with_channel(ChannelErrorModel::ideal());
        let workload = FabricWorkload::symmetric(t.session_count(), 120, 8, 5);
        let mut sim = FabricSim::new(&t, &routing, config);
        let uplink = t.trunk_between(0, 2).expect("leaf 0 ⇄ spine trunk");
        sim.set_link_channel(uplink, Box::new(ChannelErrorModel::random(1e-3)));
        sim.begin(&workload);
        let _ = sim.step(u64::MAX);
        let report = sim.finish();
        assert!(
            report.switches.flits_dropped_uncorrectable > 0,
            "the noisy uplink must produce silent drops"
        );
        assert!(report.drained);
        assert!(report.total_failures().is_clean());
        // And resetting the link restores the (ideal) static path.
        let mut sim = FabricSim::new(&t, &routing, config);
        sim.set_link_channel(uplink, Box::new(ChannelErrorModel::random(1e-3)));
        sim.reset_link_channel(uplink);
        sim.begin(&workload);
        let _ = sim.step(u64::MAX);
        let report = sim.finish();
        assert_eq!(report.switches.flits_dropped_uncorrectable, 0);
    }

    #[test]
    fn paced_injection_delivers_everything_and_stretches_the_run() {
        let t = FabricTopology::leaf_spine(2, 1, 1);
        let routing = RoutingTable::new(&t);
        let workload = FabricWorkload::symmetric(t.session_count(), 60, 8, 3);
        let base = FabricConfig::new(ProtocolVariant::Rxl).with_channel(ChannelErrorModel::ideal());

        let greedy = FabricSim::new(&t, &routing, base).run(&workload);
        assert!(greedy.drained);

        // 1% of line rate ⇒ one message every ~6.7 slots per stream; the run
        // must take far longer than the greedy one yet stay clean.
        let paced_cfg = base.with_offered_load(0.01);
        let paced = FabricSim::new(&t, &routing, paced_cfg).run(&workload);
        assert!(paced.drained, "paced run must drain");
        assert!(paced.total_failures().is_clean());
        assert_eq!(
            paced.total_failures().clean_deliveries,
            greedy.total_failures().clean_deliveries
        );
        assert!(
            paced.slots > 3 * greedy.slots,
            "pacing must stretch the run: {} vs {}",
            paced.slots,
            greedy.slots
        );
    }

    #[test]
    fn paced_idle_gaps_do_not_trip_the_stall_guard() {
        // One message per 500 slots with a 300-slot stall guard: without the
        // release-counts-as-progress rule this would abort as stalled.
        let t = FabricTopology::leaf_spine(2, 1, 1);
        let routing = RoutingTable::new(&t);
        let workload = FabricWorkload::symmetric(t.session_count(), 10, 8, 3);
        let pacing = InjectionPacing {
            downstream: workload
                .downstream
                .iter()
                .map(|m| (0..m.len() as u64).map(|k| k * 500).collect())
                .collect(),
            upstream: workload
                .upstream
                .iter()
                .map(|m| (0..m.len() as u64).map(|k| k * 500).collect())
                .collect(),
        };
        let config = FabricConfig {
            stall_slots: 300,
            ..FabricConfig::new(ProtocolVariant::Rxl)
        }
        .with_channel(ChannelErrorModel::ideal());
        let mut sim = FabricSim::new(&t, &routing, config);
        sim.begin_paced(&workload, &pacing);
        assert_eq!(sim.step(u64::MAX), StepOutcome::Drained);
        let report = sim.finish();
        assert!(report.drained);
        assert!(report.total_failures().is_clean());
        assert!(report.slots >= 9 * 500);
    }

    #[test]
    fn latency_telemetry_times_every_message_once() {
        let t = FabricTopology::leaf_spine(2, 1, 1);
        let routing = RoutingTable::new(&t);
        let config =
            FabricConfig::new(ProtocolVariant::Rxl).with_channel(ChannelErrorModel::ideal());
        let workload = FabricWorkload::symmetric(t.session_count(), 45, 8, 7);
        let mut sim = FabricSim::new(&t, &routing, config);
        sim.enable_latency_telemetry();
        sim.begin(&workload);
        let _ = sim.step(u64::MAX);
        let report = sim.finish();
        let lat = report.latency.expect("telemetry enabled");
        assert_eq!(lat.downstream.len(), 2 * 45);
        assert_eq!(lat.upstream.len(), 2 * 45);
        assert_eq!(lat.untracked, 0);
        // Every sample covers at least the 3-hop path (leaf, spine, leaf:
        // one slot per switch traversal plus the endpoint emission).
        assert!(lat.downstream.iter().all(|&s| s >= 3));
        // Greedy injection timestamps everything at slot 0, so later
        // messages of a stream wait longer: samples are non-trivial.
        assert!(lat.downstream.iter().max() > lat.downstream.iter().min());
    }

    #[test]
    fn telemetry_is_absent_unless_enabled() {
        let t = FabricTopology::ring(3, 1, 1);
        let report = run_one(&t, ProtocolVariant::Rxl, ChannelErrorModel::ideal(), 2, 20);
        assert!(report.latency.is_none());
    }

    #[test]
    fn paced_telemetry_measures_queueing_delay_growth_with_load() {
        // At a near-saturating load the same workload must show a higher
        // mean latency than at a light load (queueing delay).
        let t = FabricTopology::leaf_spine(2, 1, 2);
        let routing = RoutingTable::new(&t);
        let workload = FabricWorkload::symmetric(t.session_count(), 150, 8, 9);
        let mean_at = |load: f64| -> f64 {
            let config = FabricConfig::new(ProtocolVariant::Rxl)
                .with_channel(ChannelErrorModel::ideal())
                .with_offered_load(load);
            let mut sim = FabricSim::new(&t, &routing, config);
            sim.enable_latency_telemetry();
            sim.begin(&workload);
            let _ = sim.step(u64::MAX);
            let report = sim.finish();
            let lat = report.latency.expect("telemetry enabled");
            let total: u64 = lat.downstream.iter().chain(&lat.upstream).sum();
            total as f64 / lat.len() as f64
        };
        let light = mean_at(0.02);
        let heavy = mean_at(0.9);
        assert!(
            heavy > 2.0 * light,
            "queueing delay must grow with load: light {light}, heavy {heavy}"
        );
    }

    #[test]
    fn slot_limit_is_respected() {
        let t = FabricTopology::ring(3, 1, 1);
        let routing = RoutingTable::new(&t);
        let config = FabricConfig {
            max_slots: 40,
            ..FabricConfig::new(ProtocolVariant::Rxl)
        }
        .with_channel(ChannelErrorModel::ideal());
        let workload = FabricWorkload::symmetric(t.session_count(), 2_000, 8, 1);
        let report = FabricSim::new(&t, &routing, config).run(&workload);
        assert!(!report.drained);
        assert_eq!(report.slots, 40);
    }
}
