//! # rxl-fabric — Fabric-scale discrete-event simulation
//!
//! The single-path simulator (`rxl-sim`) answers "what happens on one
//! host–device path"; this crate answers the paper's fleet-scale question:
//! what happens when *thousands of endpoints* share the switches of a real
//! fabric. It instantiates whole topologies — every endpoint a real
//! `rxl-link` state machine, every switch a real `rxl-switch` silent-drop
//! device — and drives N concurrent transaction sessions through them at
//! flit-slot granularity with credit backpressure on every queue.
//!
//! * [`topology`] — leaf–spine, fat-tree, ring, torus and dragonfly
//!   generators with per-trunk dateline metadata for the escape VCs,
//! * [`routing`] — deterministic shortest-path (ECMP-spread) tables plus
//!   minimal-adaptive candidate sets,
//! * [`engine`] — the slot-synchronous fabric engine,
//! * [`montecarlo`] — sharded, thread-count-independent trial aggregation,
//! * [`crosscheck`] — empirical-vs-analytic FIT comparison at an
//!   accelerated BER.
//!
//! # Example
//!
//! ```
//! use rxl_fabric::{FabricConfig, FabricMonteCarlo, FabricTopology, FabricWorkload};
//! use rxl_link::{ChannelErrorModel, ProtocolVariant};
//!
//! let topology = FabricTopology::leaf_spine(2, 2, 1);
//! let config = FabricConfig::new(ProtocolVariant::Rxl)
//!     .with_channel(ChannelErrorModel::ideal());
//! let workload = FabricWorkload::symmetric(topology.session_count(), 30, 8, 1);
//! let report = FabricMonteCarlo::new(topology, config, 2).run(&workload);
//! assert!(report.failures.is_clean());
//! ```

pub mod crosscheck;
pub mod engine;
pub mod montecarlo;
pub mod probe;
pub mod routing;
pub mod topology;

pub use crosscheck::FitCrosscheck;
pub use engine::{
    message_key, FabricConfig, FabricCounters, FabricReport, FabricSim, FabricWorkload,
    InjectionPacing, LatencySamples, StepOutcome,
};
pub use montecarlo::{FabricMonteCarlo, FabricMonteCarloReport};
pub use probe::{
    ChannelErrorEvent, CountingProbe, DeliverEvent, EnginePhase, InjectEvent, LinkHop,
    LinkTraversalEvent, NullProbe, Probe,
};
pub use routing::{RoutingTable, NO_ROUTE};
pub use topology::{
    EndpointNode, FabricTopology, LinkId, NodeRole, Session, SwitchNode, TopologyLayout,
    TrunkClass, TrunkLink,
};
