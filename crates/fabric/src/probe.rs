//! Zero-cost engine instrumentation: the [`Probe`] seam.
//!
//! A [`Probe`] is threaded through [`FabricSim`](crate::FabricSim) as a
//! monomorphized type parameter and receives structured lifecycle events
//! from the engine's hot loop: message injection and delivery,
//! retransmissions, NACKs, credit stalls, VC-occupancy samples, channel
//! errors, fault-injection blackholes, switch failures/drains and scenario
//! epoch boundaries. Consumers live in `rxl-telemetry` (windowed SLO
//! metrics, burn-rate accounting, incident traces); the seam itself is
//! deliberately dependency-free so the engine stays at the bottom of the
//! crate graph.
//!
//! # Zero cost when disabled
//!
//! The default probe, [`NullProbe`], sets [`Probe::ENABLED`] to `false`.
//! Every emission site in the engine is guarded by `if P::ENABLED { … }`
//! with a *constant* condition, so for `FabricSim<NullProbe>` (what
//! [`FabricSim::new`](crate::FabricSim::new) builds) the event payloads are
//! never even constructed — the whole instrumentation layer compiles to
//! nothing. `tests/fabric_golden_digest.rs` pins that the disabled path is
//! bit-identical to the pre-probe engine.
//!
//! # The RNG-draw-order contract
//!
//! The engine's Monte-Carlo reproducibility rests on a fixed RNG draw order
//! (see the [`FabricSim`](crate::FabricSim) type-level docs). Probes are
//! part of that contract: **a probe never touches the trial RNG**. The seam
//! enforces this structurally — no [`Probe`] method receives an RNG, a
//! `FabricSim`, or any handle through which a draw could happen; probes see
//! immutable event data and their own state, nothing else. A probe may not
//! influence the trial in any way: the engine ignores probe state
//! everywhere, so an enabled probe observes a byte-for-byte identical trial
//! to a disabled one (pinned by `tests/telemetry_neutrality.rs`).
//!
//! Implementations should also stay allocation-light: events fire from the
//! per-slot hot loop, so an enabled probe's cost is whatever its handlers
//! do. [`CountingProbe`] (a few integer increments per event) is the
//! reference for "cheap but enabled".

use rxl_transport::DeliveryVerdict;

/// One message entering the fabric: the span-opening event of a message's
/// inject → deliver lifecycle. Greedy workloads inject everything at slot 0;
/// paced workloads inject at each message's arrival slot.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct InjectEvent {
    /// Slot at which the message became transmittable.
    pub slot: u64,
    /// Session the message belongs to.
    pub session: usize,
    /// Transmitting endpoint index.
    pub src: usize,
    /// Destination endpoint index.
    pub dst: usize,
    /// `true` for host → device traffic.
    pub downstream: bool,
    /// Message identity within its destination (see [`crate::message_key`]);
    /// `(dst, key)` is unique among live messages.
    pub key: u64,
}

/// One message delivered to its destination endpoint: the span-closing
/// event. `slot − inject.slot` is the message's injection→delivery latency.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DeliverEvent {
    /// Delivery slot.
    pub slot: u64,
    /// Session the message belongs to.
    pub session: usize,
    /// Destination endpoint index.
    pub dst: usize,
    /// `true` for host → device traffic.
    pub downstream: bool,
    /// Message identity within `dst` (pairs with [`InjectEvent::key`]).
    pub key: u64,
    /// The ground-truth auditor's verdict for this delivery.
    pub verdict: DeliveryVerdict,
}

/// A flit corrupted on a link and caught (or not) by a switch pipeline.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ChannelErrorEvent {
    /// Slot of the traversal.
    pub slot: u64,
    /// Switch whose ingress pipeline observed the error.
    pub switch: usize,
    /// Dense [`LinkId::index`](crate::topology::LinkId::index) of the link
    /// the flit was corrupted on — spatial metrics attribute errors per
    /// physical link, not just per observing switch.
    pub link: usize,
    /// `true` if the flit was silently dropped as FEC-uncorrectable; `false`
    /// if the FEC corrected it and the flit was forwarded.
    pub dropped: bool,
    /// Symbols the ingress FEC corrected (0 on the uncorrectable path).
    pub corrected_symbols: usize,
}

/// Which kind of hop a link traversal was. Endpoint attachment links carry
/// [`LinkHop::Inject`] traffic in one direction and [`LinkHop::Deliver`]
/// traffic in the other; trunks only ever see [`LinkHop::Trunk`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LinkHop {
    /// An endpoint put the flit onto its attachment link towards its switch.
    Inject,
    /// A switch forwarded the flit over a trunk to the next switch.
    Trunk,
    /// A switch put the flit onto an attachment link towards its endpoint.
    Deliver,
}

/// One flit traversing one physical link — the utilization event. Fired
/// once per link crossing, *before* the receiving pipeline's verdict, so a
/// flit the switch then drops as uncorrectable still occupied the wire.
/// Blocked (credit-stalled) and blackholed flits never fire it: a stalled
/// flit traverses exactly once, on the slot it finally moves.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LinkTraversalEvent {
    /// Slot of the traversal.
    pub slot: u64,
    /// Dense [`LinkId::index`](crate::topology::LinkId::index) of the link.
    pub link: usize,
    /// Direction/kind of the crossing.
    pub hop: LinkHop,
    /// `true` for protocol (payload-bearing) flits, `false` for standalone
    /// control flits (ACK/NACK).
    pub protocol: bool,
    /// `true` if this flit is a go-back-N replay retransmission.
    pub retransmission: bool,
}

/// The slot loop's phases, in execution order — the engine self-profiler's
/// accounting buckets (see [`Probe::on_phase`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EnginePhase {
    /// Phase 0: paced-injection release of due arrivals.
    PacedRelease = 0,
    /// Phase 1: endpoint transmit opportunities (emission, replay, and the
    /// injection-link channel sampling of `transmit_into`).
    EndpointTx = 1,
    /// Phase 2: switch output-port forwarding — trunk hops *and* endpoint
    /// deliveries (delivery happens inside this phase's port scan).
    SwitchForward = 2,
    /// Phase 3: staged→visible queue merge (the one-traversal-per-slot
    /// barrier).
    StageMerge = 3,
}

impl EnginePhase {
    /// Every phase, in execution order.
    pub const ALL: [EnginePhase; 4] = [
        EnginePhase::PacedRelease,
        EnginePhase::EndpointTx,
        EnginePhase::SwitchForward,
        EnginePhase::StageMerge,
    ];

    /// Dense index (0..4) for flat per-phase accumulators.
    pub fn index(self) -> usize {
        self as usize
    }

    /// Short human-readable label for reports.
    pub fn label(self) -> &'static str {
        match self {
            EnginePhase::PacedRelease => "paced_release",
            EnginePhase::EndpointTx => "endpoint_tx",
            EnginePhase::SwitchForward => "switch_forward",
            EnginePhase::StageMerge => "stage_merge",
        }
    }
}

/// Structured lifecycle events emitted by the fabric engine.
///
/// Every method has an empty default body, so implementations override only
/// what they consume. See the [module docs](self) for the zero-cost
/// guarantee and the RNG-draw-order contract.
pub trait Probe {
    /// `false` compiles every emission site to nothing ([`NullProbe`]).
    /// Keep `true` (the default) for any probe that observes events.
    const ENABLED: bool = true;

    /// Opt-in for the engine self-profiler: when `true` (and
    /// [`Probe::ENABLED`]), the slot loop reads a monotonic clock around
    /// each [`EnginePhase`] and reports the elapsed nanoseconds via
    /// [`Probe::on_phase`]. The guard is `P::ENABLED && P::PROFILE`, a
    /// *constant* condition, so the default `false` compiles the timers
    /// away entirely — an enabled-but-unprofiled probe (e.g. an SLO probe)
    /// pays nothing for them, and `NullProbe` builds stay bit- and
    /// instruction-identical. Wall-clock readings never feed back into the
    /// simulation (they flow only into the probe), so profiled trials
    /// remain bit-identical to unprofiled ones — but the *timings
    /// themselves* are wall-clock and therefore not reproducible; keep them
    /// out of any exact-merge aggregate.
    const PROFILE: bool = false;

    /// A message became transmittable at its source endpoint.
    fn on_inject(&mut self, _ev: InjectEvent) {}

    /// A message was delivered (with the auditor's verdict).
    fn on_deliver(&mut self, _ev: DeliverEvent) {}

    /// A delivery was classified as an undetected-drop (`Fail_order`) event
    /// — the paper's silent-failure channel, fired at most once per drop
    /// episode, immediately after the deliveries of the flit that exposed
    /// it.
    fn on_fail_order(&mut self, _slot: u64, _session: usize, _dst: usize) {}

    /// An endpoint put a retransmission (go-back-N replay) on the wire.
    fn on_retransmit(&mut self, _slot: u64, _endpoint: usize, _session: usize) {}

    /// An endpoint put a NACK / retry-request control flit on the wire.
    fn on_nack(&mut self, _slot: u64, _endpoint: usize, _session: usize) {}

    /// A sender held a flit for lack of downstream credit this slot.
    ///
    /// `port` names the output port of `switch` the stall is charged to —
    /// the port facing the congested link: for switch-to-switch holds the
    /// holding output port whose head flit(s) could not move, for an
    /// endpoint injection stalled at switch ingress the *planned escape
    /// egress* whose lanes were out of credit. The engine always passes
    /// `Some` for both cases; `None` is reserved for stalls no port can be
    /// named for. `vc` is the blocked VC lane at that port: the first
    /// blocked head's lane (in arbiter scan order) for transit holds, the
    /// escape lane the injection would have ridden for ingress stalls.
    fn on_credit_stall(
        &mut self,
        _slot: u64,
        _switch: usize,
        _port: Option<usize>,
        _vc: Option<usize>,
    ) {
    }

    /// A flit traversed a physical link (see [`LinkTraversalEvent`]). This
    /// is the spatial-utilization event: per-link heatmaps, utilization and
    /// retransmit counters all derive from it. Fired from the per-flit hot
    /// path — keep handlers to a few integer operations.
    fn on_link_traversal(&mut self, _ev: LinkTraversalEvent) {}

    /// The slot loop finished `phase`, which took `nanos` wall-clock
    /// nanoseconds this slot. Only fired when `Self::PROFILE` (and
    /// `Self::ENABLED`) is `true` — see the [`Probe::PROFILE`] contract.
    fn on_phase(&mut self, _phase: EnginePhase, _nanos: u64) {}

    /// A flit was buffered into VC `vc` of output port `(switch, port)`;
    /// `occupancy` is that lane's queue depth after the arrival. Fired on
    /// every hop, so probes can down-sample as coarsely as they like.
    fn on_vc_occupancy(
        &mut self,
        _slot: u64,
        _switch: usize,
        _port: usize,
        _vc: usize,
        _occupancy: usize,
    ) {
    }

    /// A switch ingress pipeline observed a corrupted flit (corrected or
    /// silently dropped).
    fn on_channel_error(&mut self, _ev: ChannelErrorEvent) {}

    /// A flit was destroyed by fault injection in transit (dead switch or
    /// no surviving route). `switch` is the switch the flit vanished at —
    /// the dead switch it was entering, or the switch that swallowed it for
    /// want of a surviving route. Queue purges at failure time are reported
    /// via [`Probe::on_switch_fail`] instead.
    fn on_blackhole(&mut self, _slot: u64, _switch: usize) {}

    /// A switch failed hard, purging `purged_flits` queued flits.
    fn on_switch_fail(&mut self, _slot: u64, _switch: usize, _purged_flits: u64) {}

    /// A switch was drained from (`restored == false`) or restored to
    /// (`restored == true`) transit eligibility.
    fn on_switch_drain(&mut self, _slot: u64, _switch: usize, _restored: bool) {}

    /// A scenario epoch boundary was applied at `slot` (fired by the
    /// `rxl-chaos` runner, not the engine itself; `epoch` indexes the epoch
    /// that *starts* here).
    fn on_epoch(&mut self, _slot: u64, _epoch: usize) {}
}

/// The disabled probe: no state, no events, no cost. The engine's default —
/// [`FabricSim::new`](crate::FabricSim::new) builds a
/// `FabricSim<NullProbe>`, which is bit-identical *and* instruction-
/// identical to the pre-probe engine.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NullProbe;

impl Probe for NullProbe {
    const ENABLED: bool = false;
}

/// Two probes riding one trial: every event is forwarded to `A` first,
/// then `B`. Composition preserves the seam's contract — neither half can
/// perturb the trial, so a `(RequestProbe, MetricsProbe)` pair observes the
/// same byte-identical run either probe would alone. The constants fold:
/// a pair is enabled (profiled) iff either half is, so pairing with
/// [`NullProbe`] costs nothing extra at the emission sites.
impl<A: Probe, B: Probe> Probe for (A, B) {
    const ENABLED: bool = A::ENABLED || B::ENABLED;
    const PROFILE: bool = A::PROFILE || B::PROFILE;

    fn on_inject(&mut self, ev: InjectEvent) {
        self.0.on_inject(ev);
        self.1.on_inject(ev);
    }
    fn on_deliver(&mut self, ev: DeliverEvent) {
        self.0.on_deliver(ev);
        self.1.on_deliver(ev);
    }
    fn on_fail_order(&mut self, slot: u64, session: usize, dst: usize) {
        self.0.on_fail_order(slot, session, dst);
        self.1.on_fail_order(slot, session, dst);
    }
    fn on_retransmit(&mut self, slot: u64, endpoint: usize, session: usize) {
        self.0.on_retransmit(slot, endpoint, session);
        self.1.on_retransmit(slot, endpoint, session);
    }
    fn on_nack(&mut self, slot: u64, endpoint: usize, session: usize) {
        self.0.on_nack(slot, endpoint, session);
        self.1.on_nack(slot, endpoint, session);
    }
    fn on_credit_stall(
        &mut self,
        slot: u64,
        switch: usize,
        port: Option<usize>,
        vc: Option<usize>,
    ) {
        self.0.on_credit_stall(slot, switch, port, vc);
        self.1.on_credit_stall(slot, switch, port, vc);
    }
    fn on_link_traversal(&mut self, ev: LinkTraversalEvent) {
        self.0.on_link_traversal(ev);
        self.1.on_link_traversal(ev);
    }
    fn on_phase(&mut self, phase: EnginePhase, nanos: u64) {
        self.0.on_phase(phase, nanos);
        self.1.on_phase(phase, nanos);
    }
    fn on_vc_occupancy(&mut self, slot: u64, switch: usize, port: usize, vc: usize, occ: usize) {
        self.0.on_vc_occupancy(slot, switch, port, vc, occ);
        self.1.on_vc_occupancy(slot, switch, port, vc, occ);
    }
    fn on_channel_error(&mut self, ev: ChannelErrorEvent) {
        self.0.on_channel_error(ev);
        self.1.on_channel_error(ev);
    }
    fn on_blackhole(&mut self, slot: u64, switch: usize) {
        self.0.on_blackhole(slot, switch);
        self.1.on_blackhole(slot, switch);
    }
    fn on_switch_fail(&mut self, slot: u64, switch: usize, purged_flits: u64) {
        self.0.on_switch_fail(slot, switch, purged_flits);
        self.1.on_switch_fail(slot, switch, purged_flits);
    }
    fn on_switch_drain(&mut self, slot: u64, switch: usize, restored: bool) {
        self.0.on_switch_drain(slot, switch, restored);
        self.1.on_switch_drain(slot, switch, restored);
    }
    fn on_epoch(&mut self, slot: u64, epoch: usize) {
        self.0.on_epoch(slot, epoch);
        self.1.on_epoch(slot, epoch);
    }
}

/// A minimal enabled probe: one counter per event class. Used by the
/// neutrality regression (an enabled probe must not change any trial
/// outcome) and by the probe-overhead measurement in `fabric_throughput`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CountingProbe {
    /// Messages injected.
    pub injects: u64,
    /// Messages delivered.
    pub delivers: u64,
    /// `Fail_order` classifications.
    pub fail_orders: u64,
    /// Retransmission emissions.
    pub retransmits: u64,
    /// NACK emissions.
    pub nacks: u64,
    /// Credit-stall observations.
    pub credit_stalls: u64,
    /// Link traversals (one per physical link crossing).
    pub link_traversals: u64,
    /// VC-occupancy samples (one per buffered hop).
    pub vc_samples: u64,
    /// Peak lane occupancy seen by any VC sample.
    pub peak_occupancy: usize,
    /// Channel-error observations (corrected + dropped).
    pub channel_errors: u64,
    /// In-transit fault-injection blackholes.
    pub blackholes: u64,
    /// Switch failures.
    pub switch_fails: u64,
    /// Switch drains/restores.
    pub switch_drains: u64,
    /// Epoch boundaries.
    pub epochs: u64,
}

impl Probe for CountingProbe {
    fn on_inject(&mut self, _ev: InjectEvent) {
        self.injects += 1;
    }
    fn on_deliver(&mut self, _ev: DeliverEvent) {
        self.delivers += 1;
    }
    fn on_fail_order(&mut self, _slot: u64, _session: usize, _dst: usize) {
        self.fail_orders += 1;
    }
    fn on_retransmit(&mut self, _slot: u64, _endpoint: usize, _session: usize) {
        self.retransmits += 1;
    }
    fn on_nack(&mut self, _slot: u64, _endpoint: usize, _session: usize) {
        self.nacks += 1;
    }
    fn on_credit_stall(
        &mut self,
        _slot: u64,
        _switch: usize,
        _port: Option<usize>,
        _vc: Option<usize>,
    ) {
        self.credit_stalls += 1;
    }
    fn on_link_traversal(&mut self, _ev: LinkTraversalEvent) {
        self.link_traversals += 1;
    }
    fn on_vc_occupancy(
        &mut self,
        _slot: u64,
        _switch: usize,
        _port: usize,
        _vc: usize,
        occupancy: usize,
    ) {
        self.vc_samples += 1;
        self.peak_occupancy = self.peak_occupancy.max(occupancy);
    }
    fn on_channel_error(&mut self, _ev: ChannelErrorEvent) {
        self.channel_errors += 1;
    }
    fn on_blackhole(&mut self, _slot: u64, _switch: usize) {
        self.blackholes += 1;
    }
    fn on_switch_fail(&mut self, _slot: u64, _switch: usize, _purged_flits: u64) {
        self.switch_fails += 1;
    }
    fn on_switch_drain(&mut self, _slot: u64, _switch: usize, _restored: bool) {
        self.switch_drains += 1;
    }
    fn on_epoch(&mut self, _slot: u64, _epoch: usize) {
        self.epochs += 1;
    }
}
