//! Deterministic shortest-path routing over a fabric topology.
//!
//! Routing is destination-based: every switch holds a next-hop egress port
//! for every endpoint of the fabric, precomputed with a breadth-first search
//! over the trunk graph. Where several neighbours tie on distance (the
//! normal case between leaf and spine tiers), the tie is broken by the
//! destination endpoint's index — a deterministic equal-cost multi-path
//! spread, so parallel sessions share the spine tier instead of piling onto
//! one switch while remaining bit-reproducible run to run.

use crate::topology::FabricTopology;

/// Precomputed next-hop tables: `next_hop[switch][endpoint]` is the egress
/// port of `switch` on the shortest path towards `endpoint`.
#[derive(Clone, Debug)]
pub struct RoutingTable {
    next_hop: Vec<Vec<usize>>,
}

impl RoutingTable {
    /// Builds the table for a topology. Panics if the trunk graph leaves any
    /// switch unable to reach any endpoint's attachment switch.
    pub fn new(topology: &FabricTopology) -> Self {
        let n = topology.switch_count();
        // Adjacency: for each switch, (egress port, neighbour switch), in
        // deterministic trunk order.
        let mut adj: Vec<Vec<(usize, usize)>> = vec![Vec::new(); n];
        for t in &topology.trunks {
            adj[t.a.0].push((t.a.1, t.b.0));
            adj[t.b.0].push((t.b.1, t.a.0));
        }
        for neighbours in &mut adj {
            neighbours.sort_unstable();
        }

        // BFS from every switch: hop distance to every other switch.
        let dist = |from: usize| -> Vec<u32> {
            let mut d = vec![u32::MAX; n];
            let mut queue = std::collections::VecDeque::from([from]);
            d[from] = 0;
            while let Some(s) = queue.pop_front() {
                for &(_, next) in &adj[s] {
                    if d[next] == u32::MAX {
                        d[next] = d[s] + 1;
                        queue.push_back(next);
                    }
                }
            }
            d
        };
        let dists: Vec<Vec<u32>> = (0..n).map(dist).collect();

        let mut next_hop = vec![vec![usize::MAX; topology.endpoint_count()]; n];
        for (ep_id, ep) in topology.endpoints.iter().enumerate() {
            for (sw, row) in next_hop.iter_mut().enumerate() {
                if sw == ep.switch {
                    // Final hop: the endpoint's own port.
                    row[ep_id] = ep.port;
                    continue;
                }
                let here = dists[sw][ep.switch];
                assert!(
                    here != u32::MAX,
                    "switch {sw} cannot reach endpoint {ep_id}'s switch {}",
                    ep.switch
                );
                // All neighbours one hop closer to the destination switch.
                let candidates: Vec<usize> = adj[sw]
                    .iter()
                    .filter(|&&(_, next)| dists[next][ep.switch] == here - 1)
                    .map(|&(port, _)| port)
                    .collect();
                assert!(!candidates.is_empty(), "BFS invariant violated");
                // Deterministic ECMP: spread destinations over the ties.
                row[ep_id] = candidates[ep_id % candidates.len()];
            }
        }
        RoutingTable { next_hop }
    }

    /// The egress port `switch` forwards traffic for `endpoint` to.
    pub fn egress(&self, switch: usize, endpoint: usize) -> usize {
        self.next_hop[switch][endpoint]
    }

    /// The number of switches on every session's host→device path, if that
    /// depth is the same for all sessions (the analytic cross-check requires
    /// a uniform depth, since the model scales linearly with it).
    pub fn uniform_session_depth(&self, topology: &FabricTopology) -> Option<u32> {
        let mut depth = None;
        for s in &topology.sessions {
            let d = self.path_switches(topology, s.host, s.device);
            match depth {
                None => depth = Some(d),
                Some(existing) if existing != d => return None,
                Some(_) => {}
            }
        }
        depth
    }

    /// Number of switches a flit from `src`'s attachment switch crosses to
    /// reach `dst` (both attachment switches included). Used by the analytic
    /// cross-check, which scales per-hop drop rates by path depth.
    pub fn path_switches(&self, topology: &FabricTopology, src: usize, dst: usize) -> u32 {
        let mut sw = topology.endpoints[src].switch;
        let target = topology.endpoints[dst].switch;
        let mut hops = 1u32;
        while sw != target {
            let port = self.egress(sw, dst);
            let trunk = topology
                .trunks
                .iter()
                .find(|t| t.a == (sw, port) || t.b == (sw, port))
                .expect("next hop port must be a trunk port");
            sw = if trunk.a == (sw, port) {
                trunk.b.0
            } else {
                trunk.a.0
            };
            hops += 1;
        }
        hops
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leaf_spine_routes_cross_one_spine() {
        let t = FabricTopology::leaf_spine(3, 2, 1);
        let r = RoutingTable::new(&t);
        for s in &t.sessions {
            assert_eq!(r.path_switches(&t, s.host, s.device), 3);
        }
    }

    #[test]
    fn ring_routes_follow_the_span() {
        let t = FabricTopology::ring(6, 1, 2);
        let r = RoutingTable::new(&t);
        for s in &t.sessions {
            assert_eq!(r.path_switches(&t, s.host, s.device), 3);
            assert_eq!(r.path_switches(&t, s.device, s.host), 3);
        }
    }

    #[test]
    fn local_delivery_uses_the_endpoint_port() {
        let t = FabricTopology::ring(3, 1, 0);
        let r = RoutingTable::new(&t);
        for s in &t.sessions {
            let sw = t.endpoints[s.device].switch;
            assert_eq!(r.egress(sw, s.device), t.endpoints[s.device].port);
            assert_eq!(r.path_switches(&t, s.host, s.device), 1);
        }
    }

    #[test]
    fn ecmp_spreads_destinations_across_spines() {
        let t = FabricTopology::leaf_spine(2, 4, 4);
        let r = RoutingTable::new(&t);
        // From leaf 0, different destination endpoints on leaf 1 should not
        // all use the same spine-facing port.
        let ports: std::collections::HashSet<usize> = t
            .endpoints
            .iter()
            .enumerate()
            .filter(|(_, ep)| ep.switch == 1)
            .map(|(id, _)| r.egress(0, id))
            .collect();
        assert!(ports.len() > 1, "ECMP must spread over spines: {ports:?}");
    }

    #[test]
    fn routing_is_deterministic() {
        let t = FabricTopology::fat_tree2(2, 3, 2);
        let a = RoutingTable::new(&t);
        let b = RoutingTable::new(&t);
        for sw in 0..t.switch_count() {
            for ep in 0..t.endpoint_count() {
                assert_eq!(a.egress(sw, ep), b.egress(sw, ep));
            }
        }
    }
}
