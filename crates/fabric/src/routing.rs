//! Deterministic shortest-path routing over a fabric topology.
//!
//! Routing is destination-based: every switch holds a next-hop egress port
//! for every endpoint of the fabric, precomputed with a breadth-first search
//! over the trunk graph. Where several neighbours tie on distance (the
//! normal case between leaf and spine tiers), the tie is broken by the
//! destination endpoint's index — a deterministic equal-cost multi-path
//! spread, so parallel sessions share the spine tier instead of piling onto
//! one switch while remaining bit-reproducible run to run.
//!
//! # Escape paths and minimal-adaptive candidates
//!
//! The table serves two consumers in the VC-aware engine:
//!
//! * [`RoutingTable::egress`] is the **escape path** — the single
//!   deterministic route a flit can always fall back to on the escape VCs.
//!   For deadlock freedom the escape path must keep each escape VC's
//!   channel dependency graph acyclic under the topology's dateline scheme
//!   (see the `topology` module docs), which is a property of the *path
//!   shape*, not just minimality. Pristine fabrics therefore dispatch on
//!   [`TopologyLayout`]: grids use dimension-ordered routing (x, then y —
//!   plain BFS could interleave dimensions and reintroduce turn cycles
//!   within a VC class), dragonflies take at most one global trunk
//!   (local → global → local), and everything else uses BFS/ECMP.
//! * [`RoutingTable::candidates`] is the full **minimal next-hop set** —
//!   every egress port that starts a shortest path — which the engine's
//!   minimal-adaptive layer picks from on the adaptive VCs using queue
//!   occupancy. The escape port is always a member. On the dragonfly the
//!   set is just the escape port (a second global hop would cross a
//!   dateline twice), so adaptive routing degenerates to deterministic
//!   there by design.
//!
//! Degraded fabrics (drained or dead switches) always fall back to BFS:
//! re-routing around failures takes priority over the structured escape
//! shape, so the provable-deadlock-freedom guarantee applies to pristine
//! fabrics. This mirrors real deployments, where a failed torus link drops
//! the fabric into a recovery routing mode.

use crate::topology::{FabricTopology, TopologyLayout};

/// Sentinel egress value meaning "no usable path": the destination's
/// attachment switch is dead, or every route to it crosses an excluded
/// switch. The fabric engine blackholes flits whose lookup returns this.
pub const NO_ROUTE: usize = usize::MAX;

/// Precomputed next-hop tables: `next_hop[switch][endpoint]` is the egress
/// port of `switch` on the shortest path towards `endpoint` (the escape
/// path), and `candidates[switch][endpoint]` every egress port that starts
/// a minimal path (the adaptive choice set).
#[derive(Clone, Debug)]
pub struct RoutingTable {
    next_hop: Vec<Vec<usize>>,
    candidates: Vec<Vec<Vec<usize>>>,
}

impl RoutingTable {
    /// Builds the table for a topology. Panics if the trunk graph leaves any
    /// switch unable to reach any endpoint's attachment switch.
    pub fn new(topology: &FabricTopology) -> Self {
        let healthy = vec![false; topology.switch_count()];
        let table = Self::degraded(topology, &healthy, &healthy);
        for (sw, row) in table.next_hop.iter().enumerate() {
            for (ep_id, &port) in row.iter().enumerate() {
                assert!(
                    port != NO_ROUTE,
                    "switch {sw} cannot reach endpoint {ep_id}'s switch {}",
                    topology.endpoints[ep_id].switch
                );
            }
        }
        table
    }

    /// Builds the table for a fabric with degraded switches. Switches with
    /// `no_transit[sw]` set still source, sink and locally deliver traffic
    /// (their attached endpoints stay reachable) but are never used as an
    /// intermediate hop — the routing half of a `SwitchDrain`. Switches with
    /// `dead[sw]` set are avoided entirely; endpoints attached to them (and
    /// endpoints every path to which crosses an excluded switch) get
    /// [`NO_ROUTE`] entries instead of a panic.
    ///
    /// With both masks all-false this produces *exactly* the table of
    /// [`RoutingTable::new`]: same BFS tie-breaks, same deterministic ECMP
    /// spread — which is what keeps a no-op scenario bit-identical to the
    /// scenario-free engine.
    pub fn degraded(topology: &FabricTopology, no_transit: &[bool], dead: &[bool]) -> Self {
        let n = topology.switch_count();
        assert_eq!(no_transit.len(), n);
        assert_eq!(dead.len(), n);
        // Pristine structured fabrics get a provably escape-safe path shape
        // (see the module docs); any degradation drops to BFS re-routing.
        let pristine = !no_transit.contains(&true) && !dead.contains(&true);
        if pristine {
            match topology.layout {
                TopologyLayout::Grid { cols, rows } => {
                    return Self::grid_minimal(topology, cols, rows);
                }
                TopologyLayout::Dragonfly { group_size, .. } => {
                    return Self::dragonfly_minimal(topology, group_size);
                }
                TopologyLayout::Irregular => {}
            }
        }
        // Adjacency: for each switch, (egress port, neighbour switch), in
        // deterministic trunk order.
        let mut adj: Vec<Vec<(usize, usize)>> = vec![Vec::new(); n];
        for t in &topology.trunks {
            adj[t.a.0].push((t.a.1, t.b.0));
            adj[t.b.0].push((t.b.1, t.a.0));
        }
        for neighbours in &mut adj {
            neighbours.sort_unstable();
        }

        // BFS towards every destination switch `target`: `d[s]` is the hop
        // distance from `s` to `target` over paths whose *intermediate*
        // switches are all transit-eligible. Expanding from `u` to a
        // neighbour `v` extends the path `v → u → … → target`, so `u` must
        // be the target itself or transit-eligible, and nothing dead is ever
        // entered.
        let dist_to = |target: usize| -> Vec<u32> {
            let mut d = vec![u32::MAX; n];
            if dead[target] {
                return d;
            }
            let mut queue = std::collections::VecDeque::from([target]);
            d[target] = 0;
            while let Some(u) = queue.pop_front() {
                if u != target && no_transit[u] {
                    continue;
                }
                for &(_, v) in &adj[u] {
                    if !dead[v] && d[v] == u32::MAX {
                        d[v] = d[u] + 1;
                        queue.push_back(v);
                    }
                }
            }
            d
        };
        let dists: Vec<Vec<u32>> = (0..n).map(dist_to).collect();

        let eps = topology.endpoint_count();
        let mut next_hop = vec![vec![NO_ROUTE; eps]; n];
        let mut cand_sets = vec![vec![Vec::new(); eps]; n];
        for (ep_id, ep) in topology.endpoints.iter().enumerate() {
            let to_target = &dists[ep.switch];
            for sw in 0..n {
                if dead[sw] {
                    continue;
                }
                if sw == ep.switch {
                    // Final hop: the endpoint's own port.
                    next_hop[sw][ep_id] = ep.port;
                    cand_sets[sw][ep_id] = vec![ep.port];
                    continue;
                }
                let here = to_target[sw];
                if here == u32::MAX {
                    continue;
                }
                // All usable neighbours one hop closer to the destination
                // switch. A transit-excluded switch can *originate* a path
                // (it has a finite distance) but must not be entered as an
                // intermediate hop, so it is only a candidate when it is the
                // destination's own attachment switch. Every finite BFS
                // distance was relaxed through such an eligible neighbour,
                // so the candidate set is never empty.
                let candidates: Vec<usize> = adj[sw]
                    .iter()
                    .filter(|&&(_, next)| {
                        to_target[next] == here - 1 && (next == ep.switch || !no_transit[next])
                    })
                    .map(|&(port, _)| port)
                    .collect();
                assert!(!candidates.is_empty(), "BFS invariant violated");
                // Deterministic ECMP: spread destinations over the ties.
                next_hop[sw][ep_id] = candidates[ep_id % candidates.len()];
                cand_sets[sw][ep_id] = candidates;
            }
        }
        RoutingTable {
            next_hop,
            candidates: cand_sets,
        }
    }

    /// Dimension-ordered routing over a pristine `cols × rows` wrap grid
    /// (the [`TopologyLayout::Grid`] port convention: 0 = +x, 1 = −x,
    /// 2 = +y, 3 = −y). The escape path resolves x before y; ties at
    /// exactly half the ring length go in the + direction. Candidates are
    /// the union of the minimal direction in every unresolved dimension —
    /// the full minimal-adaptive choice set.
    fn grid_minimal(topology: &FabricTopology, cols: usize, rows: usize) -> Self {
        let n = topology.switch_count();
        assert_eq!(n, cols * rows, "Grid layout does not match switch count");
        let eps = topology.endpoint_count();
        let mut next_hop = vec![vec![NO_ROUTE; eps]; n];
        let mut cand_sets = vec![vec![Vec::new(); eps]; n];
        // Minimal direction along a ring of `len`: Some(+1/-1 port pick)
        // when the coordinates differ, None when resolved.
        let minimal = |from: usize, to: usize, len: usize, plus: usize, minus: usize| {
            if from == to {
                return None;
            }
            let fwd = (to + len - from) % len;
            let bwd = len - fwd;
            Some(if fwd <= bwd { plus } else { minus })
        };
        for (ep_id, ep) in topology.endpoints.iter().enumerate() {
            let (tr, tc) = (ep.switch / cols, ep.switch % cols);
            for sw in 0..n {
                if sw == ep.switch {
                    next_hop[sw][ep_id] = ep.port;
                    cand_sets[sw][ep_id] = vec![ep.port];
                    continue;
                }
                let (r, c) = (sw / cols, sw % cols);
                let x = minimal(c, tc, cols, 0, 1);
                let y = minimal(r, tr, rows, 2, 3);
                next_hop[sw][ep_id] = x.or(y).expect("sw != ep.switch");
                cand_sets[sw][ep_id] = [x, y].into_iter().flatten().collect();
            }
        }
        RoutingTable {
            next_hop,
            candidates: cand_sets,
        }
    }

    /// Minimal routing over a pristine dragonfly: local direct hop inside
    /// the destination group, the hosted global trunk towards the
    /// destination group, or a local hop to the group's gateway for that
    /// global — never more than one global per path. Candidates equal the
    /// escape port: the dragonfly's dateline scheme (globals are the
    /// datelines) is only acyclic for ≤1-global paths, so there is no safe
    /// adaptive spread to offer.
    fn dragonfly_minimal(topology: &FabricTopology, group_size: usize) -> Self {
        let n = topology.switch_count();
        assert_eq!(n % group_size, 0, "Dragonfly layout mismatch");
        let groups = n / group_size;
        let eps = topology.endpoint_count();
        // local_port[u][v]: u's port on the intra-group trunk to v;
        // global_port[u][g]: u's port on its global trunk to group g.
        let mut local_port = vec![vec![NO_ROUTE; n]; n];
        let mut global_port = vec![vec![NO_ROUTE; groups]; n];
        for t in &topology.trunks {
            let ((u, pu), (v, pv)) = (t.a, t.b);
            if u / group_size == v / group_size {
                local_port[u][v] = pu;
                local_port[v][u] = pv;
            } else {
                global_port[u][v / group_size] = pu;
                global_port[v][u / group_size] = pv;
            }
        }
        // Gateway of group g for peer group h: the first switch of g (in
        // index order) hosting a global to h.
        let gateway = |g: usize, h: usize| {
            (g * group_size..(g + 1) * group_size)
                .find(|&sw| global_port[sw][h] != NO_ROUTE)
                .expect("every group pair has a global trunk")
        };
        let mut next_hop = vec![vec![NO_ROUTE; eps]; n];
        let mut cand_sets = vec![vec![Vec::new(); eps]; n];
        for (ep_id, ep) in topology.endpoints.iter().enumerate() {
            let tg = ep.switch / group_size;
            for sw in 0..n {
                let port = if sw == ep.switch {
                    ep.port
                } else if sw / group_size == tg {
                    local_port[sw][ep.switch]
                } else if global_port[sw][tg] != NO_ROUTE {
                    global_port[sw][tg]
                } else {
                    local_port[sw][gateway(sw / group_size, tg)]
                };
                assert!(port != NO_ROUTE, "dragonfly minimal route missing");
                next_hop[sw][ep_id] = port;
                cand_sets[sw][ep_id] = vec![port];
            }
        }
        RoutingTable {
            next_hop,
            candidates: cand_sets,
        }
    }

    /// The egress port `switch` forwards traffic for `endpoint` to, or
    /// [`NO_ROUTE`] if a degraded table has no usable path.
    pub fn egress(&self, switch: usize, endpoint: usize) -> usize {
        self.next_hop[switch][endpoint]
    }

    /// `true` if `switch` has a usable egress towards `endpoint`.
    pub fn reachable(&self, switch: usize, endpoint: usize) -> bool {
        self.next_hop[switch][endpoint] != NO_ROUTE
    }

    /// Every egress port of `switch` that starts a minimal path towards
    /// `endpoint` — the choice set of the engine's minimal-adaptive layer.
    /// Always contains [`Self::egress`]; empty exactly when the escape
    /// lookup is [`NO_ROUTE`].
    pub fn candidates(&self, switch: usize, endpoint: usize) -> &[usize] {
        &self.candidates[switch][endpoint]
    }

    /// The number of switches on every session's host→device path, if that
    /// depth is the same for all sessions (the analytic cross-check requires
    /// a uniform depth, since the model scales linearly with it).
    pub fn uniform_session_depth(&self, topology: &FabricTopology) -> Option<u32> {
        let mut depth = None;
        for s in &topology.sessions {
            let d = self.path_switches(topology, s.host, s.device);
            match depth {
                None => depth = Some(d),
                Some(existing) if existing != d => return None,
                Some(_) => {}
            }
        }
        depth
    }

    /// Number of switches a flit from `src`'s attachment switch crosses to
    /// reach `dst` (both attachment switches included). Used by the analytic
    /// cross-check, which scales per-hop drop rates by path depth.
    pub fn path_switches(&self, topology: &FabricTopology, src: usize, dst: usize) -> u32 {
        let mut sw = topology.endpoints[src].switch;
        let target = topology.endpoints[dst].switch;
        let mut hops = 1u32;
        while sw != target {
            let port = self.egress(sw, dst);
            let trunk = topology
                .trunks
                .iter()
                .find(|t| t.a == (sw, port) || t.b == (sw, port))
                .expect("next hop port must be a trunk port");
            sw = if trunk.a == (sw, port) {
                trunk.b.0
            } else {
                trunk.a.0
            };
            hops += 1;
        }
        hops
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leaf_spine_routes_cross_one_spine() {
        let t = FabricTopology::leaf_spine(3, 2, 1);
        let r = RoutingTable::new(&t);
        for s in &t.sessions {
            assert_eq!(r.path_switches(&t, s.host, s.device), 3);
        }
    }

    #[test]
    fn ring_routes_follow_the_span() {
        let t = FabricTopology::ring(6, 1, 2);
        let r = RoutingTable::new(&t);
        for s in &t.sessions {
            assert_eq!(r.path_switches(&t, s.host, s.device), 3);
            assert_eq!(r.path_switches(&t, s.device, s.host), 3);
        }
    }

    #[test]
    fn local_delivery_uses_the_endpoint_port() {
        let t = FabricTopology::ring(3, 1, 0);
        let r = RoutingTable::new(&t);
        for s in &t.sessions {
            let sw = t.endpoints[s.device].switch;
            assert_eq!(r.egress(sw, s.device), t.endpoints[s.device].port);
            assert_eq!(r.path_switches(&t, s.host, s.device), 1);
        }
    }

    #[test]
    fn ecmp_spreads_destinations_across_spines() {
        let t = FabricTopology::leaf_spine(2, 4, 4);
        let r = RoutingTable::new(&t);
        // From leaf 0, different destination endpoints on leaf 1 should not
        // all use the same spine-facing port.
        let ports: std::collections::HashSet<usize> = t
            .endpoints
            .iter()
            .enumerate()
            .filter(|(_, ep)| ep.switch == 1)
            .map(|(id, _)| r.egress(0, id))
            .collect();
        assert!(ports.len() > 1, "ECMP must spread over spines: {ports:?}");
    }

    #[test]
    fn degraded_with_empty_masks_is_identical_to_new() {
        for t in [
            FabricTopology::leaf_spine(3, 2, 2),
            FabricTopology::fat_tree2(2, 3, 2),
            FabricTopology::ring(6, 1, 2),
        ] {
            let baseline = RoutingTable::new(&t);
            let masks = vec![false; t.switch_count()];
            let degraded = RoutingTable::degraded(&t, &masks, &masks);
            for sw in 0..t.switch_count() {
                for ep in 0..t.endpoint_count() {
                    assert_eq!(
                        baseline.egress(sw, ep),
                        degraded.egress(sw, ep),
                        "{}",
                        t.name
                    );
                }
            }
        }
    }

    #[test]
    fn dead_spine_reroutes_over_the_survivor() {
        let t = FabricTopology::leaf_spine(2, 2, 1);
        let mut dead = vec![false; t.switch_count()];
        dead[2] = true; // first spine (switches: leaf 0, leaf 1, spine 0, spine 1)
        let no_transit = dead.clone();
        let r = RoutingTable::degraded(&t, &no_transit, &dead);
        for s in &t.sessions {
            // Both directions still routable, and never via the dead spine.
            for (src, dst) in [(s.host, s.device), (s.device, s.host)] {
                assert!(r.reachable(t.endpoints[src].switch, dst));
                assert_eq!(r.path_switches(&t, src, dst), 3);
            }
        }
        for ep in 0..t.endpoint_count() {
            assert!(!r.reachable(2, ep), "dead switch rows must be NO_ROUTE");
            // Leaves never forward towards the dead spine's trunk ports.
            for leaf in 0..2 {
                let port = r.egress(leaf, ep);
                let via_dead = t.trunks.iter().any(|tr| {
                    (tr.a == (leaf, port) && tr.b.0 == 2) || (tr.b == (leaf, port) && tr.a.0 == 2)
                });
                assert!(
                    !via_dead,
                    "leaf {leaf} routes endpoint {ep} via the dead spine"
                );
            }
        }
    }

    #[test]
    fn drained_switch_keeps_its_endpoints_reachable_but_carries_no_transit() {
        // Ring of 4, span 1: every session's path is host-switch → next
        // switch. Draining switch 1 must keep its own endpoints reachable
        // (it is an attachment switch) while transit routes detour around it.
        let t = FabricTopology::ring(4, 1, 1);
        let mut no_transit = vec![false; t.switch_count()];
        no_transit[1] = true;
        let dead = vec![false; t.switch_count()];
        let r = RoutingTable::degraded(&t, &no_transit, &dead);
        for ep in 0..t.endpoint_count() {
            for sw in 0..t.switch_count() {
                assert!(r.reachable(sw, ep), "switch {sw} lost endpoint {ep}");
            }
        }
        // Traffic from switch 0 to endpoints on switch 2 now detours via
        // switch 3 (three hops) instead of transiting the drained switch 1.
        let on_sw2 = (0..t.endpoint_count())
            .find(|&e| t.endpoints[e].switch == 2)
            .unwrap();
        assert_eq!(
            r.egress(0, on_sw2),
            1,
            "must leave counter-clockwise, via switch 3"
        );
    }

    #[test]
    fn fully_disconnected_destination_gets_no_route() {
        // Killing both spines strands the cross-leaf sessions.
        let t = FabricTopology::leaf_spine(2, 2, 1);
        let mut dead = vec![false; t.switch_count()];
        dead[2] = true;
        dead[3] = true;
        let r = RoutingTable::degraded(&t, &dead.clone(), &dead);
        for s in &t.sessions {
            let host_sw = t.endpoints[s.host].switch;
            assert!(!r.reachable(host_sw, s.device));
            // Local delivery on the attachment switch still works.
            assert!(r.reachable(t.endpoints[s.device].switch, s.device));
        }
    }

    #[test]
    fn routing_is_deterministic() {
        let t = FabricTopology::fat_tree2(2, 3, 2);
        let a = RoutingTable::new(&t);
        let b = RoutingTable::new(&t);
        for sw in 0..t.switch_count() {
            for ep in 0..t.endpoint_count() {
                assert_eq!(a.egress(sw, ep), b.egress(sw, ep));
            }
        }
    }

    #[test]
    fn candidates_always_contain_the_escape_port() {
        for t in [
            FabricTopology::leaf_spine(2, 4, 4),
            FabricTopology::ring(6, 1, 2),
            FabricTopology::torus(3, 3, 1),
            FabricTopology::dragonfly(3, 2, 1),
        ] {
            let r = RoutingTable::new(&t);
            for sw in 0..t.switch_count() {
                for ep in 0..t.endpoint_count() {
                    assert!(
                        r.candidates(sw, ep).contains(&r.egress(sw, ep)),
                        "{}: escape port missing from candidates at ({sw}, {ep})",
                        t.name
                    );
                }
            }
        }
    }

    #[test]
    fn torus_escape_is_dimension_ordered_and_minimal() {
        let t = FabricTopology::torus(4, 3, 1);
        let r = RoutingTable::new(&t);
        let cols = 4;
        for (ep_id, ep) in t.endpoints.iter().enumerate() {
            let (tr, tc) = (ep.switch / cols, ep.switch % cols);
            for sw in 0..t.switch_count() {
                if sw == ep.switch {
                    continue;
                }
                let (row, col) = (sw / cols, sw % cols);
                let port = r.egress(sw, ep_id);
                if col != tc {
                    assert!(port < 2, "x must resolve before y at ({sw} → ep {ep_id})");
                } else {
                    assert!((2..4).contains(&port), "resolved x must move in y");
                }
                // Candidates: one minimal direction per unresolved dimension.
                let expect = usize::from(col != tc) + usize::from(row != tr);
                assert_eq!(r.candidates(sw, ep_id).len(), expect);
            }
        }
        // DOR paths are minimal: antipodal-ish sessions on 4x3 cross
        // 2 (x) + 1 (y) intermediate hops → 4 switches end to end.
        for s in &t.sessions {
            assert_eq!(r.path_switches(&t, s.host, s.device), 4);
        }
    }

    #[test]
    fn dragonfly_routes_cross_at_most_one_global() {
        let t = FabricTopology::dragonfly(4, 3, 1);
        let r = RoutingTable::new(&t);
        let group_size = 3;
        for (ep_id, ep) in t.endpoints.iter().enumerate() {
            for sw in 0..t.switch_count() {
                // Walk the route, counting group changes (= global hops).
                let (mut here, mut globals, mut hops) = (sw, 0, 0);
                while here != ep.switch {
                    let port = r.egress(here, ep_id);
                    let trunk = t
                        .trunks
                        .iter()
                        .find(|tr| tr.a == (here, port) || tr.b == (here, port))
                        .expect("route must follow a trunk");
                    let next = if trunk.a == (here, port) {
                        trunk.b.0
                    } else {
                        trunk.a.0
                    };
                    if here / group_size != next / group_size {
                        globals += 1;
                    }
                    here = next;
                    hops += 1;
                    assert!(hops <= 3, "dragonfly minimal routes are ≤ 3 hops");
                }
                assert!(globals <= 1, "escape paths must take at most one global");
                // No safe adaptive spread on the dragonfly.
                assert_eq!(r.candidates(sw, ep_id), [r.egress(sw, ep_id)]);
            }
        }
    }

    #[test]
    fn structured_fabrics_fall_back_to_bfs_when_degraded() {
        // Draining one torus switch must reroute around it (DOR would not),
        // proving the BFS fallback engages.
        let t = FabricTopology::torus(3, 3, 1);
        let mut no_transit = vec![false; t.switch_count()];
        no_transit[4] = true; // centre switch (1,1)
        let dead = vec![false; t.switch_count()];
        let r = RoutingTable::degraded(&t, &no_transit, &dead);
        for ep in 0..t.endpoint_count() {
            for sw in 0..t.switch_count() {
                assert!(r.reachable(sw, ep), "switch {sw} lost endpoint {ep}");
            }
            if t.endpoints[ep].switch != 4 {
                // Never route *through* the drained centre.
                for sw in (0..t.switch_count()).filter(|&s| s != 4) {
                    let port = r.egress(sw, ep);
                    let via_centre = t.trunks.iter().any(|tr| {
                        (tr.a == (sw, port) && tr.b.0 == 4) || (tr.b == (sw, port) && tr.a.0 == 4)
                    });
                    assert!(!via_centre, "switch {sw} transits drained centre for {ep}");
                }
            }
        }
    }
}
