//! Per-switch statistics counters.

/// Counters accumulated by one switching device.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SwitchStats {
    /// Flits received on any ingress port.
    pub flits_in: u64,
    /// Flits forwarded to an egress queue.
    pub flits_forwarded: u64,
    /// Flits in which the ingress FEC corrected at least one symbol.
    pub flits_corrected: u64,
    /// Flits silently dropped because the FEC reported an uncorrectable
    /// pattern — the drops whose downstream consequences the paper analyses.
    pub flits_dropped_uncorrectable: u64,
    /// Flits dropped because no route existed for the ingress port.
    pub flits_dropped_no_route: u64,
    /// Flits dropped because the egress queue was full.
    pub flits_dropped_queue_full: u64,
    /// Flits corrupted by switch-internal faults after the FEC decode.
    pub flits_internally_corrupted: u64,
}

impl SwitchStats {
    /// Total flits dropped for any reason.
    pub fn total_dropped(&self) -> u64 {
        self.flits_dropped_uncorrectable
            + self.flits_dropped_no_route
            + self.flits_dropped_queue_full
    }

    /// Fraction of incoming flits that were silently dropped due to
    /// uncorrectable errors.
    pub fn drop_rate(&self) -> f64 {
        if self.flits_in == 0 {
            return 0.0;
        }
        self.flits_dropped_uncorrectable as f64 / self.flits_in as f64
    }

    /// Merges another counter set into this one.
    pub fn merge(&mut self, other: &SwitchStats) {
        self.flits_in += other.flits_in;
        self.flits_forwarded += other.flits_forwarded;
        self.flits_corrected += other.flits_corrected;
        self.flits_dropped_uncorrectable += other.flits_dropped_uncorrectable;
        self.flits_dropped_no_route += other.flits_dropped_no_route;
        self.flits_dropped_queue_full += other.flits_dropped_queue_full;
        self.flits_internally_corrupted += other.flits_internally_corrupted;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_and_rates() {
        let s = SwitchStats {
            flits_in: 100,
            flits_forwarded: 95,
            flits_dropped_uncorrectable: 3,
            flits_dropped_no_route: 1,
            flits_dropped_queue_full: 1,
            ..Default::default()
        };
        assert_eq!(s.total_dropped(), 5);
        assert!((s.drop_rate() - 0.03).abs() < 1e-12);
        assert_eq!(SwitchStats::default().drop_rate(), 0.0);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = SwitchStats {
            flits_in: 10,
            ..Default::default()
        };
        a.merge(&SwitchStats {
            flits_in: 5,
            flits_corrected: 2,
            ..Default::default()
        });
        assert_eq!(a.flits_in, 15);
        assert_eq!(a.flits_corrected, 2);
    }
}
