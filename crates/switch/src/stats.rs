//! Per-switch statistics counters.

/// Counters accumulated by one switching device.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SwitchStats {
    /// Flits received on any ingress port.
    pub flits_in: u64,
    /// Flits forwarded to an egress queue.
    pub flits_forwarded: u64,
    /// Flits in which the ingress FEC corrected at least one symbol.
    pub flits_corrected: u64,
    /// Flits silently dropped because the FEC reported an uncorrectable
    /// pattern — the drops whose downstream consequences the paper analyses.
    pub flits_dropped_uncorrectable: u64,
    /// Flits dropped because no route existed for the ingress port.
    pub flits_dropped_no_route: u64,
    /// Flits dropped because the egress queue was full.
    pub flits_dropped_queue_full: u64,
    /// Flits corrupted by switch-internal faults after the FEC decode.
    pub flits_internally_corrupted: u64,
}

impl SwitchStats {
    /// Total flits dropped for any reason.
    pub fn total_dropped(&self) -> u64 {
        self.flits_dropped_uncorrectable
            + self.flits_dropped_no_route
            + self.flits_dropped_queue_full
    }

    /// Fraction of incoming flits that were silently dropped due to
    /// uncorrectable errors.
    pub fn drop_rate(&self) -> f64 {
        if self.flits_in == 0 {
            return 0.0;
        }
        self.flits_dropped_uncorrectable as f64 / self.flits_in as f64
    }

    /// Merges another counter set into this one.
    pub fn merge(&mut self, other: &SwitchStats) {
        self.flits_in += other.flits_in;
        self.flits_forwarded += other.flits_forwarded;
        self.flits_corrected += other.flits_corrected;
        self.flits_dropped_uncorrectable += other.flits_dropped_uncorrectable;
        self.flits_dropped_no_route += other.flits_dropped_no_route;
        self.flits_dropped_queue_full += other.flits_dropped_queue_full;
        self.flits_internally_corrupted += other.flits_internally_corrupted;
    }
}

impl std::fmt::Display for SwitchStats {
    /// Renders the counters as an aligned multi-line block, one counter per
    /// line, so reports and examples need not hand-format them.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "flits in             : {}", self.flits_in)?;
        writeln!(f, "flits forwarded      : {}", self.flits_forwarded)?;
        writeln!(f, "corrected by FEC     : {}", self.flits_corrected)?;
        writeln!(
            f,
            "silent drops         : {}",
            self.flits_dropped_uncorrectable
        )?;
        writeln!(f, "no-route drops       : {}", self.flits_dropped_no_route)?;
        writeln!(
            f,
            "queue-full drops     : {}",
            self.flits_dropped_queue_full
        )?;
        writeln!(
            f,
            "internal corruptions : {}",
            self.flits_internally_corrupted
        )?;
        write!(f, "silent drop rate     : {:.3e}", self.drop_rate())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_and_rates() {
        let s = SwitchStats {
            flits_in: 100,
            flits_forwarded: 95,
            flits_dropped_uncorrectable: 3,
            flits_dropped_no_route: 1,
            flits_dropped_queue_full: 1,
            ..Default::default()
        };
        assert_eq!(s.total_dropped(), 5);
        assert!((s.drop_rate() - 0.03).abs() < 1e-12);
        assert_eq!(SwitchStats::default().drop_rate(), 0.0);
    }

    #[test]
    fn display_renders_every_counter() {
        let s = SwitchStats {
            flits_in: 100,
            flits_forwarded: 95,
            flits_dropped_uncorrectable: 3,
            ..Default::default()
        };
        let out = s.to_string();
        assert!(out.contains("flits in             : 100"));
        assert!(out.contains("flits forwarded      : 95"));
        assert!(out.contains("silent drops         : 3"));
        assert!(out.contains("silent drop rate"));
    }

    #[test]
    fn merge_accumulates() {
        let mut a = SwitchStats {
            flits_in: 10,
            ..Default::default()
        };
        a.merge(&SwitchStats {
            flits_in: 5,
            flits_corrected: 2,
            ..Default::default()
        });
        assert_eq!(a.flits_in, 15);
        assert_eq!(a.flits_corrected, 2);
    }
}
