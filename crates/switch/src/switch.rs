//! The switching-device model.

use std::collections::VecDeque;

use rand::Rng;
use rxl_crc::catalog::Crc64;
use rxl_fec::InterleavedFec;
use rxl_flit::WireFlit;

use crate::internal_error::InternalErrorModel;
use crate::stats::SwitchStats;

/// How the switch treats the 8-byte CRC field of forwarded flits.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum LinkCrcMode {
    /// Baseline CXL: the CRC is a *link-layer* check, so the switch verifies
    /// it on ingress, drops mismatching flits, and regenerates it on egress.
    /// Corruption introduced inside the switch is therefore masked by the
    /// freshly computed CRC and reaches the endpoint undetected.
    Regenerate,
    /// RXL: the CRC is a *transport-layer* (end-to-end) check. The switch
    /// never touches it — it is just payload bytes to the FEC — so any
    /// switch-internal corruption is still visible to the endpoint's ECRC.
    #[default]
    Passthrough,
}

/// Static configuration of one switch.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SwitchConfig {
    /// Number of ports.
    pub ports: usize,
    /// Capacity of each egress queue, in flits.
    pub queue_capacity: usize,
    /// Internal (post-FEC-decode) corruption model.
    pub internal_error: InternalErrorModel,
    /// CRC handling mode (CXL regenerates per hop; RXL passes it through).
    pub crc_mode: LinkCrcMode,
}

impl SwitchConfig {
    /// A small fault-free switch with the given port count (RXL-style
    /// pass-through CRC handling).
    pub fn simple(ports: usize) -> Self {
        SwitchConfig {
            ports,
            queue_capacity: 64,
            internal_error: InternalErrorModel::none(),
            crc_mode: LinkCrcMode::Passthrough,
        }
    }

    /// A fault-free switch that verifies and regenerates the link CRC per hop
    /// (baseline CXL behaviour).
    pub fn cxl(ports: usize) -> Self {
        SwitchConfig {
            crc_mode: LinkCrcMode::Regenerate,
            ..Self::simple(ports)
        }
    }
}

/// What happened to one flit presented at an ingress port.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IngressOutcome {
    /// The flit was (possibly corrected and) queued towards an egress port.
    Forwarded {
        /// The egress port the flit was queued on.
        egress: usize,
        /// Number of symbols the ingress FEC corrected.
        corrected_symbols: usize,
        /// `true` if switch-internal corruption was injected.
        internally_corrupted: bool,
    },
    /// The FEC reported an uncorrectable pattern; the flit was silently
    /// dropped (the originator is only notified out-of-band, if at all).
    DroppedUncorrectable,
    /// No route is configured for the ingress port.
    DroppedNoRoute,
    /// The egress queue was full.
    DroppedQueueFull,
}

impl IngressOutcome {
    /// `true` if the flit survived the switch.
    pub fn forwarded(&self) -> bool {
        matches!(self, IngressOutcome::Forwarded { .. })
    }
}

/// What the switch's forwarding pipeline did to one flit, independent of any
/// routing or queueing decision (see [`Switch::process`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ProcessOutcome {
    /// The flit survived the pipeline; the re-encoded wire image is ready to
    /// be queued on an egress port chosen by the caller.
    Forwarded {
        /// The FEC-re-encoded wire flit to transmit on egress.
        wire: Box<WireFlit>,
        /// Number of symbols the ingress FEC corrected.
        corrected_symbols: usize,
        /// `true` if switch-internal corruption was injected.
        internally_corrupted: bool,
    },
    /// The FEC (or, in Regenerate mode, the link CRC) rejected the flit; it
    /// was silently dropped.
    DroppedUncorrectable,
}

impl ProcessOutcome {
    /// `true` if the flit survived the pipeline.
    pub fn forwarded(&self) -> bool {
        matches!(self, ProcessOutcome::Forwarded { .. })
    }
}

/// What [`Switch::process_in_place`] did to the flit it was handed. Unlike
/// [`ProcessOutcome`] this carries no wire image — the caller's buffer *is*
/// the output — so the hot path moves no flit bytes and allocates nothing.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ProcessVerdict {
    /// The flit survived the pipeline; the caller's buffer now holds the
    /// FEC-re-encoded egress image.
    Forwarded {
        /// Number of symbols the ingress FEC corrected.
        corrected_symbols: usize,
        /// `true` if switch-internal corruption was injected.
        internally_corrupted: bool,
    },
    /// The FEC (or, in Regenerate mode, the link CRC) rejected the flit; it
    /// was silently dropped. Callers discard the buffer: on the CRC-drop
    /// path the FEC decode may already have applied corrections to it, so it
    /// is not guaranteed to hold the bytes as received.
    DroppedUncorrectable,
}

impl ProcessVerdict {
    /// `true` if the flit survived the pipeline.
    pub fn forwarded(&self) -> bool {
        matches!(self, ProcessVerdict::Forwarded { .. })
    }
}

/// A stateless, store-and-forward switching device.
pub struct Switch {
    config: SwitchConfig,
    /// `routes[ingress]` names the egress port, if configured.
    routes: Vec<Option<usize>>,
    /// Per-egress-port output queues.
    queues: Vec<VecDeque<WireFlit>>,
    fec: InterleavedFec,
    crc: Crc64,
    stats: SwitchStats,
}

impl Switch {
    /// Creates a switch with no routes configured.
    pub fn new(config: SwitchConfig) -> Self {
        assert!(config.ports >= 2, "a switch needs at least two ports");
        assert!(config.queue_capacity >= 1);
        Switch {
            routes: vec![None; config.ports],
            queues: (0..config.ports).map(|_| VecDeque::new()).collect(),
            fec: InterleavedFec::cxl_flit(),
            crc: Crc64::flit(),
            stats: SwitchStats::default(),
            config,
        }
    }

    /// The switch configuration.
    pub fn config(&self) -> &SwitchConfig {
        &self.config
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &SwitchStats {
        &self.stats
    }

    /// Configures a unidirectional route from `ingress` to `egress`.
    pub fn connect(&mut self, ingress: usize, egress: usize) {
        assert!(ingress < self.config.ports && egress < self.config.ports);
        assert_ne!(ingress, egress, "a port cannot route to itself");
        self.routes[ingress] = Some(egress);
    }

    /// Configures a bidirectional route between two ports (the common
    /// upstream/downstream pairing of a chain topology).
    pub fn connect_duplex(&mut self, a: usize, b: usize) {
        self.connect(a, b);
        self.connect(b, a);
    }

    /// Runs the forwarding pipeline on one flit without consulting the static
    /// route table or touching the egress queues: link-layer FEC decode,
    /// silent drop of uncorrectable patterns, the configured CRC policy
    /// (verify + regenerate for CXL, pass-through for RXL), switch-internal
    /// fault injection, and egress FEC re-encode.
    ///
    /// Fabric-level simulators (`rxl-fabric`) use this entry point directly,
    /// because their routing is destination-based (shortest path over a whole
    /// topology) rather than the per-ingress-port mapping of [`Self::ingress`],
    /// and their queues carry routing metadata the switch does not know about.
    /// All per-flit statistics (`flits_in`, corrections, drops, internal
    /// corruption, `flits_forwarded`) are accumulated exactly as in
    /// [`Self::ingress`].
    pub fn process<R: Rng + ?Sized>(&mut self, wire: &WireFlit, rng: &mut R) -> ProcessOutcome {
        let mut out = *wire;
        match self.process_in_place(&mut out, rng) {
            ProcessVerdict::Forwarded {
                corrected_symbols,
                internally_corrupted,
            } => ProcessOutcome::Forwarded {
                wire: Box::new(out),
                corrected_symbols,
                internally_corrupted,
            },
            ProcessVerdict::DroppedUncorrectable => ProcessOutcome::DroppedUncorrectable,
        }
    }

    /// [`Self::process`], but transforming the caller's wire image in place:
    /// no flit copy, no allocation. This is the fabric engine's per-hop hot
    /// path; [`Self::process`] and [`Self::ingress`] are wrappers around it.
    pub fn process_in_place<R: Rng + ?Sized>(
        &mut self,
        wire: &mut WireFlit,
        rng: &mut R,
    ) -> ProcessVerdict {
        self.stats.flits_in += 1;

        // Link-layer FEC decode, correcting the wire image in place.
        let fec_result = self.fec.decode(wire);
        if !fec_result.accepted() {
            // Silent drop: the defining behaviour of switched CXL fabrics.
            self.stats.flits_dropped_uncorrectable += 1;
            return ProcessVerdict::DroppedUncorrectable;
        }
        let corrected_symbols = fec_result.outcome.corrected_symbols();
        if corrected_symbols > 0 {
            self.stats.flits_corrected += 1;
        }

        let data_len = self.fec.data_len();
        let crc_offset = data_len - 8;

        // Baseline CXL switches also verify the link CRC on ingress and drop
        // flits that fail it (the CRC covers errors the FEC miscorrected).
        if self.config.crc_mode == LinkCrcMode::Regenerate {
            let expected = self.crc.checksum(&wire[..crc_offset]);
            let received = u64::from_le_bytes(wire[crc_offset..data_len].try_into().unwrap());
            if expected != received {
                self.stats.flits_dropped_uncorrectable += 1;
                return ProcessVerdict::DroppedUncorrectable;
            }
        }

        // Switch-internal faults strike the *decoded* block, i.e. after the
        // ingress FEC can help and before the egress FEC is recomputed.
        let internally_corrupted = self
            .config
            .internal_error
            .apply(&mut wire[..crc_offset], rng);
        if internally_corrupted {
            self.stats.flits_internally_corrupted += 1;
        }

        // Per-hop CRC regeneration (CXL) masks whatever happened inside the
        // switch; pass-through (RXL) leaves the originator's ECRC intact.
        if self.config.crc_mode == LinkCrcMode::Regenerate {
            let fresh = self.crc.checksum(&wire[..crc_offset]);
            wire[crc_offset..data_len].copy_from_slice(&fresh.to_le_bytes());
        }

        // Egress FEC re-encode, in place over the (possibly corrected and
        // corrupted) data bytes.
        self.fec.encode_into(wire);
        self.stats.flits_forwarded += 1;
        ProcessVerdict::Forwarded {
            corrected_symbols,
            internally_corrupted,
        }
    }

    /// Accounts a flit that is *known clean* through the forwarding pipeline
    /// without running it: bumps `flits_in`/`flits_forwarded` and leaves the
    /// caller's buffer untouched.
    ///
    /// This is only sound when the full pipeline is provably the identity on
    /// the flit: the wire image is a valid codeword whose data bytes carry a
    /// matching link CRC (true for anything a conforming endpoint or switch
    /// emitted that the channel did not touch), and the switch-internal error
    /// model is disabled (`per_flit_probability <= 0.0`, where
    /// [`InternalErrorModel::apply`] is also draw-free). Under those
    /// preconditions [`Self::process_in_place`] would decode zero errors,
    /// verify the CRC, inject nothing, re-encode the identical parity, and
    /// consume zero RNG draws — so skipping it changes neither the flit, the
    /// statistics, nor the RNG stream. The fabric engine uses this from its
    /// skip-ahead path when the link-channel cursor reports zero flips.
    pub fn forward_clean(&mut self) {
        self.stats.flits_in += 1;
        self.stats.flits_forwarded += 1;
    }

    /// Runs [`Self::process_in_place`] over a batch of wire flits presented
    /// at one ingress port, in slice order, returning one verdict per flit.
    ///
    /// Draw-order-identical to calling `process_in_place` serially — the
    /// batch exists so bursts share one pass over the FEC table working set
    /// (the decode/encode lookup tables stay hot across the batch instead of
    /// being re-fetched per slot interleaved with unrelated engine work).
    pub fn process_batch_in_place<R: Rng + ?Sized>(
        &mut self,
        wires: &mut [WireFlit],
        rng: &mut R,
    ) -> Vec<ProcessVerdict> {
        wires
            .iter_mut()
            .map(|wire| self.process_in_place(wire, rng))
            .collect()
    }

    /// Presents one wire flit at `ingress`. The flit is FEC-decoded,
    /// possibly internally corrupted, FEC-re-encoded and queued at the routed
    /// egress port — or dropped.
    pub fn ingress<R: Rng + ?Sized>(
        &mut self,
        ingress: usize,
        wire: &WireFlit,
        rng: &mut R,
    ) -> IngressOutcome {
        assert!(ingress < self.config.ports, "ingress port out of range");

        let Some(egress) = self.routes[ingress] else {
            self.stats.flits_in += 1;
            self.stats.flits_dropped_no_route += 1;
            return IngressOutcome::DroppedNoRoute;
        };
        if self.queues[egress].len() >= self.config.queue_capacity {
            self.stats.flits_in += 1;
            self.stats.flits_dropped_queue_full += 1;
            return IngressOutcome::DroppedQueueFull;
        }

        let mut out = *wire;
        match self.process_in_place(&mut out, rng) {
            ProcessVerdict::Forwarded {
                corrected_symbols,
                internally_corrupted,
            } => {
                self.queues[egress].push_back(out);
                IngressOutcome::Forwarded {
                    egress,
                    corrected_symbols,
                    internally_corrupted,
                }
            }
            ProcessVerdict::DroppedUncorrectable => IngressOutcome::DroppedUncorrectable,
        }
    }

    /// Pops the next flit waiting to be transmitted on `egress`, if any.
    pub fn egress(&mut self, egress: usize) -> Option<WireFlit> {
        assert!(egress < self.config.ports, "egress port out of range");
        self.queues[egress].pop_front()
    }

    /// Number of flits currently queued on `egress`.
    pub fn queue_depth(&self, egress: usize) -> usize {
        self.queues[egress].len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{RngCore, SeedableRng};
    use rxl_flit::{CxlFlitCodec, Flit256, FlitHeader, MemOp, Message, WIRE_FLIT_LEN};

    fn wire_flit(tag: u16) -> WireFlit {
        let codec = CxlFlitCodec::new();
        let mut flit = Flit256::new(FlitHeader::with_seq(tag));
        flit.pack_messages(&[Message::request(MemOp::RdCurr, tag as u64 * 64, 0, tag)])
            .unwrap();
        codec.encode(&flit)
    }

    #[test]
    fn clean_flits_are_forwarded_unmodified() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut sw = Switch::new(SwitchConfig::simple(2));
        sw.connect_duplex(0, 1);
        let wire = wire_flit(7);
        let outcome = sw.ingress(0, &wire, &mut rng);
        assert_eq!(
            outcome,
            IngressOutcome::Forwarded {
                egress: 1,
                corrected_symbols: 0,
                internally_corrupted: false
            }
        );
        let forwarded = sw.egress(1).expect("flit must be queued");
        assert_eq!(
            forwarded, wire,
            "a clean flit must be forwarded bit-exactly"
        );
        assert!(sw.egress(1).is_none());
        assert_eq!(sw.stats().flits_forwarded, 1);
    }

    #[test]
    fn correctable_errors_are_repaired_before_forwarding() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut sw = Switch::new(SwitchConfig::simple(2));
        sw.connect_duplex(0, 1);
        let clean = wire_flit(9);
        let mut corrupted = clean;
        corrupted[100] ^= 0xFF;
        corrupted[101] ^= 0x0F;
        match sw.ingress(0, &corrupted, &mut rng) {
            IngressOutcome::Forwarded {
                corrected_symbols, ..
            } => assert_eq!(corrected_symbols, 2),
            other => panic!("unexpected outcome {other:?}"),
        }
        let forwarded = sw.egress(1).unwrap();
        assert_eq!(
            forwarded, clean,
            "the switch must forward the repaired flit"
        );
        assert_eq!(sw.stats().flits_corrected, 1);
    }

    #[test]
    fn uncorrectable_flits_are_silently_dropped() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut sw = Switch::new(SwitchConfig::simple(2));
        sw.connect_duplex(0, 1);
        let mut wire = wire_flit(3);
        // Equal-magnitude double error in one FEC way → uncorrectable.
        wire[0] ^= 0x5A;
        wire[3] ^= 0x5A;
        assert_eq!(
            sw.ingress(0, &wire, &mut rng),
            IngressOutcome::DroppedUncorrectable
        );
        assert!(sw.egress(1).is_none());
        assert_eq!(sw.stats().flits_dropped_uncorrectable, 1);
        assert!((sw.stats().drop_rate() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn unrouted_ports_drop_with_a_distinct_reason() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut sw = Switch::new(SwitchConfig::simple(4));
        sw.connect(0, 1);
        let wire = wire_flit(1);
        assert_eq!(
            sw.ingress(2, &wire, &mut rng),
            IngressOutcome::DroppedNoRoute
        );
        assert_eq!(sw.stats().flits_dropped_no_route, 1);
    }

    #[test]
    fn full_queues_exert_drop_based_backpressure() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut sw = Switch::new(SwitchConfig {
            queue_capacity: 2,
            ..SwitchConfig::simple(2)
        });
        sw.connect_duplex(0, 1);
        let wire = wire_flit(0);
        assert!(sw.ingress(0, &wire, &mut rng).forwarded());
        assert!(sw.ingress(0, &wire, &mut rng).forwarded());
        assert_eq!(
            sw.ingress(0, &wire, &mut rng),
            IngressOutcome::DroppedQueueFull
        );
        assert_eq!(sw.queue_depth(1), 2);
    }

    #[test]
    fn internal_corruption_is_invisible_to_downstream_fec() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut sw = Switch::new(SwitchConfig {
            internal_error: InternalErrorModel::new(1.0, 1),
            ..SwitchConfig::simple(2)
        });
        sw.connect_duplex(0, 1);
        let clean = wire_flit(11);
        match sw.ingress(0, &clean, &mut rng) {
            IngressOutcome::Forwarded {
                internally_corrupted,
                ..
            } => assert!(internally_corrupted),
            other => panic!("unexpected outcome {other:?}"),
        }
        let forwarded = sw.egress(1).unwrap();
        assert_ne!(
            forwarded, clean,
            "internal corruption must have altered the flit"
        );
        // The corrupted flit still passes a *downstream* FEC check, because
        // the switch re-encoded the FEC over the corrupted data. Only an
        // end-to-end CRC can catch this (Section 6.3 of the paper).
        let fec = rxl_fec::InterleavedFec::cxl_flit();
        let mut block = forwarded.to_vec();
        assert!(fec.decode(&mut block).accepted());
        // And the CXL link CRC (computed by the original endpoint) does
        // catch it, since the payload no longer matches.
        let codec = CxlFlitCodec::new();
        let out = codec.decode(&forwarded);
        assert!(out.fec.accepted());
        assert!(!out.crc_ok);
    }

    #[test]
    fn cxl_crc_regeneration_masks_internal_corruption() {
        // In Regenerate mode (baseline CXL), the switch recomputes the link
        // CRC after its internal corruption, so the downstream endpoint's CRC
        // check passes even though the payload is wrong — exactly the gap the
        // paper closes by elevating the CRC to the transport layer.
        let mut rng = StdRng::seed_from_u64(6);
        let mut sw = Switch::new(SwitchConfig {
            internal_error: InternalErrorModel::new(1.0, 1),
            ..SwitchConfig::cxl(2)
        });
        sw.connect_duplex(0, 1);
        let clean = wire_flit(12);
        assert!(sw.ingress(0, &clean, &mut rng).forwarded());
        let forwarded = sw.egress(1).unwrap();
        assert_ne!(forwarded, clean);
        let codec = CxlFlitCodec::new();
        let out = codec.decode(&forwarded);
        assert!(
            out.accepted(),
            "regenerated CRC hides the corruption from CXL"
        );
        assert_ne!(
            out.flit.unwrap().payload,
            codec.decode(&clean).flit.unwrap().payload
        );
    }

    #[test]
    fn cxl_switch_drops_flits_whose_link_crc_fails() {
        // A flit whose FEC decodes but whose CRC mismatches (e.g. an FEC
        // miscorrection upstream) is dropped by a CXL switch on ingress.
        let mut rng = StdRng::seed_from_u64(7);
        let mut sw = Switch::new(SwitchConfig::cxl(2));
        sw.connect_duplex(0, 1);
        // Build a wire image whose CRC field is wrong but whose FEC is valid.
        let clean = wire_flit(13);
        let fec = rxl_fec::InterleavedFec::cxl_flit();
        let mut block = clean.to_vec();
        assert!(fec.decode(&mut block).accepted());
        block[242] ^= 0xFF; // corrupt the stored CRC itself
        let reencoded = fec.encode(&block[..250]);
        let mut tampered = [0u8; WIRE_FLIT_LEN];
        tampered.copy_from_slice(&reencoded);
        assert_eq!(
            sw.ingress(0, &tampered, &mut rng),
            IngressOutcome::DroppedUncorrectable
        );
        // A pass-through (RXL) switch would have forwarded it for the
        // endpoint to judge.
        let mut rxl_sw = Switch::new(SwitchConfig::simple(2));
        rxl_sw.connect_duplex(0, 1);
        assert!(rxl_sw.ingress(0, &tampered, &mut rng).forwarded());
    }

    #[test]
    fn process_pipeline_matches_ingress_behaviour() {
        // `process` (used by fabric-level routing) must transform flits and
        // account statistics exactly like the route-table `ingress` path.
        let mut rng = StdRng::seed_from_u64(8);
        let mut sw = Switch::new(SwitchConfig::simple(2));
        let clean = wire_flit(21);
        match sw.process(&clean, &mut rng) {
            ProcessOutcome::Forwarded {
                wire,
                corrected_symbols,
                internally_corrupted,
            } => {
                assert_eq!(*wire, clean, "clean flits are re-encoded bit-exactly");
                assert_eq!(corrected_symbols, 0);
                assert!(!internally_corrupted);
            }
            other => panic!("unexpected outcome {other:?}"),
        }
        assert_eq!(sw.stats().flits_in, 1);
        assert_eq!(sw.stats().flits_forwarded, 1);

        // An uncorrectable pattern is silently dropped with the same stats
        // the ingress path would record.
        let mut bad = clean;
        bad[0] ^= 0x5A;
        bad[3] ^= 0x5A;
        assert_eq!(
            sw.process(&bad, &mut rng),
            ProcessOutcome::DroppedUncorrectable
        );
        assert_eq!(sw.stats().flits_dropped_uncorrectable, 1);
        assert_eq!(sw.stats().flits_in, 2);
    }

    #[test]
    fn forward_clean_matches_the_full_pipeline_on_clean_flits() {
        // On a valid codeword with a disabled internal model, the full
        // pipeline is the identity and draw-free — forward_clean must be an
        // exact stand-in: same buffer, same stats, same RNG stream.
        let mut rng = StdRng::seed_from_u64(21);
        let mut full = Switch::new(SwitchConfig::cxl(2));
        let mut fast = Switch::new(SwitchConfig::cxl(2));
        let clean = wire_flit(33);
        for _ in 0..16 {
            let mut buf = clean;
            assert!(full.process_in_place(&mut buf, &mut rng).forwarded());
            assert_eq!(buf, clean, "pipeline must be the identity here");
            fast.forward_clean();
        }
        let mut twin = StdRng::seed_from_u64(21);
        assert_eq!(rng.next_u64(), twin.next_u64(), "pipeline drew from RNG");
        assert_eq!(full.stats().flits_in, fast.stats().flits_in);
        assert_eq!(full.stats().flits_forwarded, fast.stats().flits_forwarded);
        assert_eq!(fast.stats().flits_dropped_uncorrectable, 0);
    }

    #[test]
    fn batch_processing_is_draw_order_identical_to_serial() {
        let mut serial_rng = StdRng::seed_from_u64(40);
        let mut batch_rng = StdRng::seed_from_u64(40);
        let mut serial_sw = Switch::new(SwitchConfig {
            internal_error: InternalErrorModel::new(0.5, 2),
            ..SwitchConfig::simple(2)
        });
        let mut batch_sw = Switch::new(SwitchConfig {
            internal_error: InternalErrorModel::new(0.5, 2),
            ..SwitchConfig::simple(2)
        });
        let mut serial_flits: Vec<WireFlit> = (0u16..8).map(wire_flit).collect();
        serial_flits[3][0] ^= 0x5A; // one correctable error
        serial_flits[3][3] ^= 0x5A; // ...made uncorrectable
        serial_flits[5][100] ^= 0xFF; // one correctable error
        let mut batch_flits = serial_flits.clone();

        let serial_verdicts: Vec<ProcessVerdict> = serial_flits
            .iter_mut()
            .map(|w| serial_sw.process_in_place(w, &mut serial_rng))
            .collect();
        let batch_verdicts = batch_sw.process_batch_in_place(&mut batch_flits, &mut batch_rng);

        assert_eq!(serial_verdicts, batch_verdicts);
        assert_eq!(serial_flits, batch_flits);
        assert_eq!(serial_rng.next_u64(), batch_rng.next_u64());
        assert_eq!(serial_sw.stats().flits_in, batch_sw.stats().flits_in);
        assert_eq!(
            serial_sw.stats().flits_forwarded,
            batch_sw.stats().flits_forwarded
        );
    }

    #[test]
    #[should_panic]
    fn self_routes_are_rejected() {
        let mut sw = Switch::new(SwitchConfig::simple(2));
        sw.connect(1, 1);
    }

    #[test]
    #[should_panic]
    fn out_of_range_ports_are_rejected() {
        let mut sw = Switch::new(SwitchConfig::simple(2));
        sw.connect(0, 5);
    }
}
