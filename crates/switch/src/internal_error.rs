//! Switch-internal error injection.
//!
//! Section 6.3 of the paper: errors can also arise *inside* switching devices
//! (buffer corruption, switching-logic faults). Such errors occur after the
//! ingress FEC decode and before the egress FEC re-encode, so no link-layer
//! mechanism can observe them — only an end-to-end check at the endpoints
//! can. This model injects that class of fault.

use rand::Rng;

/// Probability model for switch-internal corruption.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct InternalErrorModel {
    /// Probability that a forwarded flit is corrupted inside the switch.
    pub per_flit_probability: f64,
    /// Number of random bit flips applied when corruption occurs.
    pub bits_per_event: u32,
}

impl InternalErrorModel {
    /// A fault-free switch.
    pub fn none() -> Self {
        InternalErrorModel {
            per_flit_probability: 0.0,
            bits_per_event: 0,
        }
    }

    /// A switch that corrupts flits with the given probability, flipping
    /// `bits_per_event` bits each time.
    pub fn new(per_flit_probability: f64, bits_per_event: u32) -> Self {
        assert!((0.0..=1.0).contains(&per_flit_probability));
        assert!(bits_per_event >= 1 || per_flit_probability == 0.0);
        InternalErrorModel {
            per_flit_probability,
            bits_per_event,
        }
    }

    /// Possibly corrupts `data` in place; returns `true` if corruption was
    /// injected.
    pub fn apply<R: Rng + ?Sized>(&self, data: &mut [u8], rng: &mut R) -> bool {
        if self.per_flit_probability <= 0.0 || data.is_empty() {
            return false;
        }
        if !rng.random_bool(self.per_flit_probability) {
            return false;
        }
        let total_bits = data.len() * 8;
        for _ in 0..self.bits_per_event {
            let pos = rng.random_range(0..total_bits);
            data[pos / 8] ^= 1 << (pos % 8);
        }
        true
    }
}

impl Default for InternalErrorModel {
    fn default() -> Self {
        Self::none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn none_never_corrupts() {
        let mut rng = StdRng::seed_from_u64(0);
        let model = InternalErrorModel::none();
        let mut data = vec![0x11u8; 64];
        for _ in 0..100 {
            assert!(!model.apply(&mut data, &mut rng));
        }
        assert!(data.iter().all(|&b| b == 0x11));
    }

    #[test]
    fn always_corrupts_at_probability_one() {
        let mut rng = StdRng::seed_from_u64(1);
        let model = InternalErrorModel::new(1.0, 2);
        let mut corrupted = 0;
        for _ in 0..50 {
            let mut data = vec![0u8; 64];
            if model.apply(&mut data, &mut rng) {
                corrupted += 1;
                let flipped: u32 = data.iter().map(|b| b.count_ones()).sum();
                // Two flips, possibly landing on the same bit twice.
                assert!(flipped == 2 || flipped == 0);
            }
        }
        assert_eq!(corrupted, 50);
    }

    #[test]
    fn respects_the_configured_probability_roughly() {
        let mut rng = StdRng::seed_from_u64(2);
        let model = InternalErrorModel::new(0.2, 1);
        let mut hits = 0;
        let trials = 5000;
        for _ in 0..trials {
            let mut data = vec![0u8; 32];
            if model.apply(&mut data, &mut rng) {
                hits += 1;
            }
        }
        let rate = hits as f64 / trials as f64;
        assert!((rate - 0.2).abs() < 0.03, "measured rate {rate}");
    }

    #[test]
    #[should_panic]
    fn invalid_probability_is_rejected() {
        let _ = InternalErrorModel::new(1.5, 1);
    }
}
