//! # rxl-switch — Switching devices for scaled-out interconnect fabrics
//!
//! The paper's scale-out scenario routes flits through one or more switching
//! devices. Switches are **stateless** with respect to the transport
//! protocol: they operate purely at the link layer (Section 6.4):
//!
//! 1. decode the incoming flit's FEC, correcting up to a three-symbol burst,
//! 2. **silently drop** the flit if the FEC reports an uncorrectable pattern
//!    (this is the behaviour of real PCIe/Ethernet switch ASICs the paper
//!    cites, and the root cause of the ordering failures it analyses),
//! 3. optionally corrupt the flit internally (buffer or logic faults) —
//!    errors that no link-layer mechanism can see but RXL's end-to-end CRC
//!    catches,
//! 4. re-encode the FEC and forward the flit towards its egress port.
//!
//! Crucially, switches never look at CRCs or sequence numbers, which is what
//! lets RXL add end-to-end protection without any switch modifications.

pub mod internal_error;
pub mod stats;
pub mod switch;
pub mod vc;

pub use internal_error::InternalErrorModel;
pub use stats::SwitchStats;
pub use switch::{
    IngressOutcome, LinkCrcMode, ProcessOutcome, ProcessVerdict, Switch, SwitchConfig,
};
pub use vc::{VcArbiter, VcCredits, MAX_VCS};
