//! Virtual-channel credit accounting and output-port arbitration.
//!
//! A switch output port that carries more than one virtual channel keeps a
//! private, bounded buffer per VC and advertises per-VC credits upstream:
//! a sender may place a flit into VC `v` of the downstream port only while
//! that VC's buffer has a free slot. Splitting the buffer space this way is
//! what lets an *escape* VC make progress even when the adaptive VCs of the
//! same physical link are wedged behind a congested subtree — the mechanism
//! the fabric engine uses to break the ring/torus cyclic credit wait (see
//! the dateline scheme documented on `rxl_fabric`'s topology types).
//!
//! Two pieces live here because they are link-layer switch behaviour, not
//! routing policy:
//!
//! * [`VcCredits`] — the per-port credit ledger (one bounded counter per
//!   VC, each with the full per-VC buffer depth).
//! * [`VcArbiter`] — the round-robin output arbiter that picks which VC of
//!   a port transmits in a given slot. Round-robin (rather than fixed
//!   priority) matters for deadlock freedom: every non-empty VC of a port,
//!   the escape VC included, is guaranteed service within `vc_count` grant
//!   cycles, so an escape flit is never starved behind a busy adaptive VC.
//!
//! Both types are deterministic and draw nothing from any RNG, preserving
//! the fabric engine's RNG-draw-order reproducibility contract.

/// Upper bound on virtual channels per port. Small on purpose: the fabric
/// engine packs the VC index into a `u8` lane id and real CXL switches
/// carry single-digit VC counts.
pub const MAX_VCS: usize = 8;

/// Per-port virtual-channel credit ledger.
///
/// Each VC owns an independent buffer of `capacity` flits; `occupy` takes a
/// credit when a flit is accepted into the VC's buffer and `release` returns
/// it when the flit leaves (is forwarded onward or delivered). With
/// `vc_count == 1` this is exactly the single bounded output queue of the
/// pre-VC engine.
#[derive(Clone, Debug)]
pub struct VcCredits {
    capacity: u32,
    occupancy: Vec<u32>,
    total: u32,
}

impl VcCredits {
    /// A ledger for `vc_count` empty VCs of `capacity` flits each.
    pub fn new(vc_count: usize, capacity: usize) -> Self {
        assert!(
            (1..=MAX_VCS).contains(&vc_count),
            "vc_count must be in 1..={MAX_VCS}"
        );
        assert!(capacity >= 1, "a VC buffer needs at least one credit");
        VcCredits {
            capacity: capacity as u32,
            occupancy: vec![0; vc_count],
            total: 0,
        }
    }

    /// Number of virtual channels this ledger tracks.
    pub fn vc_count(&self) -> usize {
        self.occupancy.len()
    }

    /// `true` while VC `vc` has a free credit.
    #[inline]
    pub fn has_credit(&self, vc: usize) -> bool {
        self.occupancy[vc] < self.capacity
    }

    /// Takes a credit on VC `vc` (a flit entered its buffer).
    #[inline]
    pub fn occupy(&mut self, vc: usize) {
        debug_assert!(self.has_credit(vc), "occupy without a free credit");
        self.occupancy[vc] += 1;
        self.total += 1;
    }

    /// Returns a credit on VC `vc` (a flit left its buffer).
    #[inline]
    pub fn release(&mut self, vc: usize) {
        debug_assert!(self.occupancy[vc] > 0, "release on an empty VC");
        self.occupancy[vc] -= 1;
        self.total -= 1;
    }

    /// Flits currently buffered in VC `vc`.
    #[inline]
    pub fn occupancy(&self, vc: usize) -> usize {
        self.occupancy[vc] as usize
    }

    /// Flits currently buffered across every VC of the port — the
    /// congestion signal minimal-adaptive routing compares between
    /// candidate egress ports.
    #[inline]
    pub fn total_occupancy(&self) -> usize {
        self.total as usize
    }

    /// Zeroes every VC (the port's buffers were purged, e.g. by a switch
    /// failure).
    pub fn purge(&mut self) {
        self.occupancy.fill(0);
        self.total = 0;
    }
}

/// Round-robin arbiter over the virtual channels of one output port.
///
/// Each slot the port scans its VCs starting at the arbiter's pointer and
/// transmits the first one able to move; [`VcArbiter::grant`] then advances
/// the pointer one past the winner, so persistent traffic on one VC cannot
/// starve the others. With a single VC the arbiter degenerates to "always
/// VC 0" and adds nothing to the schedule.
#[derive(Clone, Copy, Debug, Default)]
pub struct VcArbiter {
    next: u8,
}

impl VcArbiter {
    /// An arbiter starting at VC 0.
    pub fn new() -> Self {
        VcArbiter::default()
    }

    /// First VC to consider this grant cycle.
    #[inline]
    pub fn start(&self) -> usize {
        self.next as usize
    }

    /// The `k`-th VC in this cycle's scan order.
    #[inline]
    pub fn pick(&self, k: usize, vc_count: usize) -> usize {
        debug_assert!(vc_count >= 1 && k < vc_count);
        (self.next as usize + k) % vc_count
    }

    /// Records that `vc` won arbitration; the next cycle starts one past it.
    #[inline]
    pub fn grant(&mut self, vc: usize, vc_count: usize) {
        debug_assert!(vc < vc_count);
        self.next = ((vc + 1) % vc_count) as u8;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn credits_bound_each_vc_independently() {
        let mut c = VcCredits::new(2, 2);
        assert_eq!(c.vc_count(), 2);
        assert!(c.has_credit(0) && c.has_credit(1));
        c.occupy(0);
        c.occupy(0);
        assert!(!c.has_credit(0), "VC 0 is full");
        assert!(c.has_credit(1), "VC 1 keeps its own credits");
        assert_eq!(c.occupancy(0), 2);
        assert_eq!(c.total_occupancy(), 2);
        c.release(0);
        assert!(c.has_credit(0));
        c.occupy(1);
        assert_eq!(c.total_occupancy(), 2);
        c.purge();
        assert_eq!(c.total_occupancy(), 0);
        assert!(c.has_credit(0) && c.has_credit(1));
    }

    #[test]
    #[should_panic(expected = "vc_count")]
    fn credits_reject_zero_vcs() {
        let _ = VcCredits::new(0, 4);
    }

    #[test]
    fn arbiter_round_robins_over_granted_vcs() {
        let mut a = VcArbiter::new();
        assert_eq!(a.start(), 0);
        // Scan order from the pointer, wrapping.
        assert_eq!((0..3).map(|k| a.pick(k, 3)).collect::<Vec<_>>(), [0, 1, 2]);
        a.grant(0, 3);
        assert_eq!((0..3).map(|k| a.pick(k, 3)).collect::<Vec<_>>(), [1, 2, 0]);
        a.grant(2, 3);
        assert_eq!(a.start(), 0);
        // Single-VC degenerate case: always VC 0.
        let mut one = VcArbiter::new();
        one.grant(0, 1);
        assert_eq!(one.start(), 0);
        assert_eq!(one.pick(0, 1), 0);
    }
}
