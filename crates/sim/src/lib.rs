//! # rxl-sim — Flit-level Monte-Carlo simulation of CXL/RXL paths
//!
//! The paper's evaluation is analytic; this crate provides the complementary
//! simulation evidence. A [`PathSim`](path::PathSim) instantiates one
//! host–device pair connected either directly or through a chain of
//! switching devices, drives bidirectional transaction traffic through the
//! real link-layer state machines (`rxl-link`), the real FEC/CRC codecs
//! (`rxl-fec`, `rxl-crc`) and the real switch model (`rxl-switch`), injects
//! channel errors, and audits every delivered message against ground truth
//! (`rxl-transport`).
//!
//! Because the paper's operating point (BER 10⁻⁶, FER_UC 3×10⁻⁵) makes
//! interesting events rare, experiments typically run the channel at an
//! accelerated BER and/or for many Monte-Carlo trials; the
//! [`montecarlo`] module parallelises independent trials across cores with
//! rayon and aggregates failure statistics.
//!
//! * [`topology`] — the path description (direct, or N switch levels),
//! * [`workload`] — deterministic message-stream generators,
//! * [`path`] — the slot-synchronous path simulator,
//! * [`montecarlo`] — parallel multi-trial aggregation,
//! * [`report`] — per-trial and aggregate result types.

pub mod montecarlo;
pub mod path;
pub mod report;
pub mod topology;
pub mod workload;

pub use montecarlo::{trial_seed, MonteCarlo, MonteCarloReport};
pub use path::{PathSim, SimConfig};
pub use report::SimReport;
pub use topology::Topology;
pub use workload::{request_stream, response_stream, TrafficPattern};
