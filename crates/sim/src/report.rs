//! Per-trial simulation results.

use rxl_link::LinkStats;
use rxl_switch::SwitchStats;
use rxl_transport::FailureCounts;

/// The outcome of one path-simulation trial.
#[derive(Clone, Debug, Default)]
pub struct SimReport {
    /// Failure audit of the downstream (host → device) message stream.
    pub downstream: FailureCounts,
    /// Failure audit of the upstream (device → host) message stream.
    pub upstream: FailureCounts,
    /// Link-layer counters at the host endpoint.
    pub host_link: LinkStats,
    /// Link-layer counters at the device endpoint.
    pub device_link: LinkStats,
    /// Merged counters of every switch on the path.
    pub switches: SwitchStats,
    /// Number of transmit slots simulated.
    pub slots: u64,
    /// Simulated time, in nanoseconds.
    pub sim_time_ns: f64,
    /// `true` if all traffic drained (both endpoints quiescent) before the
    /// slot limit was reached.
    pub drained: bool,
}

impl SimReport {
    /// Combined failure counts over both directions.
    pub fn total_failures(&self) -> FailureCounts {
        let mut f = self.downstream;
        f.merge(&self.upstream);
        f
    }

    /// Total protocol flits put on the wire by both endpoints (first
    /// transmissions only).
    pub fn payload_flits(&self) -> u64 {
        self.host_link.flits_sent + self.device_link.flits_sent
    }

    /// Total wire flits including retransmissions and control flits.
    pub fn wire_flits(&self) -> u64 {
        self.host_link.total_wire_flits() + self.device_link.total_wire_flits()
            - self.host_link.idle_flits_sent
            - self.device_link.idle_flits_sent
    }

    /// Fraction of non-idle wire flits that were not first-time payload
    /// flits — the simulated counterpart of the paper's bandwidth loss.
    pub fn bandwidth_overhead(&self) -> f64 {
        let wire = self.wire_flits();
        if wire == 0 {
            return 0.0;
        }
        1.0 - self.payload_flits() as f64 / wire as f64
    }

    /// Ordering failures per delivered message, across both directions.
    pub fn ordering_failure_rate(&self) -> f64 {
        let totals = self.total_failures();
        let delivered = totals.clean_deliveries
            + totals.ordering_failures
            + totals.duplicate_deliveries
            + totals.data_failures;
        if delivered == 0 {
            return 0.0;
        }
        totals.ordering_failures as f64 / delivered as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregation_helpers() {
        let report = SimReport {
            downstream: FailureCounts {
                clean_deliveries: 90,
                ordering_failures: 10,
                ..Default::default()
            },
            upstream: FailureCounts {
                clean_deliveries: 100,
                ..Default::default()
            },
            host_link: LinkStats {
                flits_sent: 50,
                flits_retransmitted: 5,
                idle_flits_sent: 3,
                ..Default::default()
            },
            device_link: LinkStats {
                flits_sent: 45,
                ..Default::default()
            },
            ..Default::default()
        };
        assert_eq!(report.total_failures().clean_deliveries, 190);
        assert_eq!(report.payload_flits(), 95);
        assert_eq!(report.wire_flits(), 100);
        assert!((report.bandwidth_overhead() - 0.05).abs() < 1e-12);
        assert!((report.ordering_failure_rate() - 0.05).abs() < 1e-12);
    }

    #[test]
    fn empty_report_is_safe() {
        let r = SimReport::default();
        assert_eq!(r.bandwidth_overhead(), 0.0);
        assert_eq!(r.ordering_failure_rate(), 0.0);
        assert!(r.total_failures().is_clean());
    }
}
