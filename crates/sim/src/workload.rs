//! Deterministic workload generators.
//!
//! The reliability experiments only need message streams with unique
//! identities and meaningful CQID structure (so ordering violations are
//! observable); the generators here produce exactly that, deterministically
//! from a seed, so every Monte-Carlo trial is reproducible.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rxl_flit::{MemOp, Message};

/// Bytes per cache line (every generated address is line-aligned).
const LINE_BYTES: u64 = 64;
/// Size of the uniformly-addressed working set, in cache lines.
const WORKING_SET_LINES: u64 = 1_000_000;
/// Size of the contended set the [`TrafficPattern::Hotspot`] pattern
/// concentrates its hot accesses on, in cache lines.
pub const HOT_SET_LINES: u64 = 16;

/// The shape of generated traffic.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum TrafficPattern {
    /// Coherent read requests spread over a number of command queues.
    Reads {
        /// Number of distinct CQIDs to spread requests over.
        cqids: u16,
    },
    /// A mix of reads and writes spread over a number of command queues.
    ReadWrite {
        /// Number of distinct CQIDs to spread requests over.
        cqids: u16,
        /// Fraction of requests that are writes (0.0–1.0).
        write_fraction: f64,
    },
    /// Cache-line data transfers (ordered within each CQID), the pattern of
    /// Fig. 5b.
    DataStream {
        /// Number of distinct CQIDs (transfers) interleaved.
        cqids: u16,
    },
    /// Contended reads: a fraction of requests concentrates on a small set of
    /// [`HOT_SET_LINES`] hot cache lines (think a lock word or a shared
    /// counter), the rest spreads over the uniform working set. This is the
    /// per-session pattern the `rxl-load` hotspot traffic matrices reuse.
    Hotspot {
        /// Number of distinct CQIDs to spread requests over.
        cqids: u16,
        /// Fraction of requests that target the hot set (0.0–1.0).
        hot_fraction: f64,
    },
}

/// Round-robin CQID assignment shared by every pattern (`cqids == 0`
/// degrades to a single queue).
fn round_robin_cqid(i: usize, cqids: u16) -> u16 {
    (i as u16) % cqids.max(1)
}

/// One line-aligned address drawn uniformly from the working set — exactly
/// one RNG draw, shared by every request-generating pattern.
fn uniform_line_addr(rng: &mut StdRng) -> u64 {
    rng.random_range(0..WORKING_SET_LINES) * LINE_BYTES
}

/// Generates `count` request messages following `pattern`.
pub fn request_stream(count: usize, pattern: TrafficPattern, seed: u64) -> Vec<Message> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(count);
    for i in 0..count {
        let tag = i as u16;
        match pattern {
            TrafficPattern::Reads { cqids } => {
                let cqid = round_robin_cqid(i, cqids);
                let addr = uniform_line_addr(&mut rng);
                out.push(Message::request(MemOp::RdCurr, addr, cqid, tag));
            }
            TrafficPattern::ReadWrite {
                cqids,
                write_fraction,
            } => {
                let cqid = round_robin_cqid(i, cqids);
                let addr = uniform_line_addr(&mut rng);
                let op = if rng.random_bool(write_fraction.clamp(0.0, 1.0)) {
                    MemOp::WrLine
                } else {
                    MemOp::RdShared
                };
                out.push(Message::request(op, addr, cqid, tag));
            }
            TrafficPattern::DataStream { cqids } => {
                let cqid = round_robin_cqid(i, cqids);
                let mut bytes = [0u8; 8];
                rng.fill(&mut bytes);
                out.push(Message::data(cqid, tag, 0, bytes));
            }
            TrafficPattern::Hotspot {
                cqids,
                hot_fraction,
            } => {
                let cqid = round_robin_cqid(i, cqids);
                // Two draws per message: hot-or-cold, then the line.
                let addr = if rng.random_bool(hot_fraction.clamp(0.0, 1.0)) {
                    rng.random_range(0..HOT_SET_LINES) * LINE_BYTES
                } else {
                    uniform_line_addr(&mut rng)
                };
                out.push(Message::request(MemOp::RdShared, addr, cqid, tag));
            }
        }
    }
    out
}

/// Generates `count` response messages (the upstream direction), one per tag.
pub fn response_stream(count: usize, cqids: u16, _seed: u64) -> Vec<Message> {
    (0..count)
        .map(|i| Message::response_ok((i as u16) % cqids.max(1), i as u16))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_deterministic_per_seed() {
        let a = request_stream(50, TrafficPattern::Reads { cqids: 4 }, 7);
        let b = request_stream(50, TrafficPattern::Reads { cqids: 4 }, 7);
        let c = request_stream(50, TrafficPattern::Reads { cqids: 4 }, 8);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn identities_are_unique() {
        let msgs = request_stream(
            200,
            TrafficPattern::ReadWrite {
                cqids: 8,
                write_fraction: 0.3,
            },
            1,
        );
        let mut keys: Vec<(u16, u16)> = msgs.iter().map(|m| (m.cqid(), m.tag())).collect();
        keys.sort_unstable();
        keys.dedup();
        assert_eq!(keys.len(), 200);
    }

    #[test]
    fn cqids_are_spread_round_robin() {
        let msgs = request_stream(12, TrafficPattern::Reads { cqids: 4 }, 0);
        for (i, m) in msgs.iter().enumerate() {
            assert_eq!(m.cqid(), (i as u16) % 4);
        }
    }

    #[test]
    fn data_stream_produces_data_messages() {
        let msgs = request_stream(10, TrafficPattern::DataStream { cqids: 2 }, 3);
        assert!(msgs.iter().all(|m| m.is_data()));
    }

    #[test]
    fn response_stream_matches_tags() {
        let rsp = response_stream(5, 2, 0);
        assert_eq!(rsp.len(), 5);
        assert_eq!(rsp[3].tag(), 3);
        assert_eq!(rsp[3].cqid(), 1);
    }

    #[test]
    fn hotspot_concentrates_addresses_on_the_hot_set() {
        let msgs = request_stream(
            2_000,
            TrafficPattern::Hotspot {
                cqids: 8,
                hot_fraction: 0.8,
            },
            5,
        );
        let hot = msgs
            .iter()
            .filter(|m| match m {
                Message::Request { addr, .. } => *addr < HOT_SET_LINES * 64,
                _ => false,
            })
            .count();
        // ~80% hot plus the vanishing chance a cold draw lands in the hot
        // lines; 2000 samples put the count well inside (0.7, 0.9).
        assert!(
            (1_400..1_800).contains(&hot),
            "hot fraction off: {hot}/2000"
        );
        assert!(msgs.iter().all(|m| m.is_request()));
    }

    #[test]
    fn hotspot_extremes_are_total() {
        let all_hot = request_stream(
            100,
            TrafficPattern::Hotspot {
                cqids: 2,
                hot_fraction: 1.0,
            },
            1,
        );
        assert!(all_hot.iter().all(|m| match m {
            Message::Request { addr, .. } => *addr < HOT_SET_LINES * 64,
            _ => false,
        }));
        let all_cold = request_stream(
            100,
            TrafficPattern::Hotspot {
                cqids: 2,
                hot_fraction: 0.0,
            },
            1,
        );
        assert_eq!(all_cold.len(), 100);
    }

    #[test]
    fn zero_cqids_degrades_to_one_queue() {
        let msgs = request_stream(5, TrafficPattern::Reads { cqids: 0 }, 0);
        assert!(msgs.iter().all(|m| m.cqid() == 0));
    }
}
