//! Path topologies: direct connection or a chain of switching levels.

/// The interconnect path between one host and one device.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Topology {
    /// Host and device share a single link (Section 7.1.1 of the paper).
    Direct,
    /// Host and device communicate through `levels` cascaded switches
    /// (Sections 7.1.2–7.1.4). `SwitchChain { levels: 1 }` is the paper's
    /// single-level switched configuration.
    SwitchChain {
        /// Number of switching devices on the path.
        levels: u32,
    },
}

impl Topology {
    /// Builds a topology from a switching-level count (0 = direct).
    pub fn from_levels(levels: u32) -> Self {
        if levels == 0 {
            Topology::Direct
        } else {
            Topology::SwitchChain { levels }
        }
    }

    /// Number of switching devices on the path.
    pub fn levels(&self) -> u32 {
        match self {
            Topology::Direct => 0,
            Topology::SwitchChain { levels } => *levels,
        }
    }

    /// Number of physical links the path traverses.
    pub fn links(&self) -> u32 {
        self.levels() + 1
    }

    /// Human-readable label for reports.
    pub fn label(&self) -> String {
        match self {
            Topology::Direct => "direct".to_string(),
            Topology::SwitchChain { levels } => format!("{levels}-level switched"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_and_links() {
        assert_eq!(Topology::Direct.levels(), 0);
        assert_eq!(Topology::Direct.links(), 1);
        assert_eq!(Topology::SwitchChain { levels: 3 }.levels(), 3);
        assert_eq!(Topology::SwitchChain { levels: 3 }.links(), 4);
    }

    #[test]
    fn from_levels_round_trips() {
        assert_eq!(Topology::from_levels(0), Topology::Direct);
        assert_eq!(
            Topology::from_levels(2),
            Topology::SwitchChain { levels: 2 }
        );
        for l in 0..5 {
            assert_eq!(Topology::from_levels(l).levels(), l);
        }
    }

    #[test]
    fn labels_are_descriptive() {
        assert_eq!(Topology::Direct.label(), "direct");
        assert_eq!(
            Topology::SwitchChain { levels: 2 }.label(),
            "2-level switched"
        );
    }
}
