//! Parallel Monte-Carlo execution of independent path-simulation trials.
//!
//! Each trial runs the same configuration with a different RNG seed; trials
//! are embarrassingly parallel and are distributed across cores with rayon.
//! The aggregate report keeps both summed counters and per-trial rates so
//! harnesses can print means with confidence intervals.

use rayon::prelude::*;

use rxl_flit::Message;
use rxl_link::LinkStats;
use rxl_switch::SwitchStats;
use rxl_transport::FailureCounts;

use crate::path::{PathSim, SimConfig};
use crate::report::SimReport;

/// A Monte-Carlo experiment: one configuration, many seeds.
#[derive(Clone, Debug)]
pub struct MonteCarlo {
    config: SimConfig,
    trials: u64,
    base_seed: u64,
}

/// Aggregate results over all trials.
#[derive(Clone, Debug, Default)]
pub struct MonteCarloReport {
    /// Number of trials executed.
    pub trials: u64,
    /// Summed failure counts over both directions of every trial.
    pub failures: FailureCounts,
    /// Summed link statistics (host + device) over every trial.
    pub links: LinkStats,
    /// Summed switch statistics over every trial.
    pub switches: SwitchStats,
    /// Number of trials that drained before their slot limit.
    pub drained_trials: u64,
    /// Per-trial ordering failure rates (for dispersion estimates).
    pub ordering_rates: Vec<f64>,
    /// Per-trial bandwidth overheads.
    pub bandwidth_overheads: Vec<f64>,
}

impl MonteCarloReport {
    /// Mean of the per-trial ordering failure rates.
    pub fn mean_ordering_rate(&self) -> f64 {
        mean(&self.ordering_rates)
    }

    /// Mean of the per-trial bandwidth overheads.
    pub fn mean_bandwidth_overhead(&self) -> f64 {
        mean(&self.bandwidth_overheads)
    }

    /// Standard error of the per-trial ordering failure rates.
    pub fn ordering_rate_stderr(&self) -> f64 {
        stderr(&self.ordering_rates)
    }

    /// Probability (over delivered messages, pooled across trials) that a
    /// message experienced any failure.
    pub fn pooled_failure_rate(&self) -> f64 {
        self.failures.failure_rate()
    }
}

fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

fn stderr(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    let var = xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64;
    (var / xs.len() as f64).sqrt()
}

impl MonteCarlo {
    /// Creates an experiment running `trials` independent trials of `config`.
    pub fn new(config: SimConfig, trials: u64) -> Self {
        MonteCarlo {
            config,
            trials,
            base_seed: config.seed,
        }
    }

    /// Number of trials configured.
    pub fn trials(&self) -> u64 {
        self.trials
    }

    /// Runs every trial (in parallel) with the given per-direction workloads
    /// and aggregates the results.
    pub fn run(&self, downstream: &[Message], upstream: &[Message]) -> MonteCarloReport {
        let reports: Vec<SimReport> = (0..self.trials)
            .into_par_iter()
            .map(|trial| {
                let config = self.config.with_seed(self.base_seed.wrapping_add(trial * 0x9E37_79B9));
                PathSim::new(config).run(downstream, upstream)
            })
            .collect();
        self.aggregate(reports)
    }

    fn aggregate(&self, reports: Vec<SimReport>) -> MonteCarloReport {
        let mut agg = MonteCarloReport {
            trials: reports.len() as u64,
            ..Default::default()
        };
        for r in reports {
            agg.failures.merge(&r.total_failures());
            agg.links.merge(&r.host_link);
            agg.links.merge(&r.device_link);
            agg.switches.merge(&r.switches);
            if r.drained {
                agg.drained_trials += 1;
            }
            agg.ordering_rates.push(r.ordering_failure_rate());
            agg.bandwidth_overheads.push(r.bandwidth_overhead());
        }
        agg
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::Topology;
    use crate::workload::{request_stream, response_stream, TrafficPattern};
    use rxl_link::{ChannelErrorModel, ProtocolVariant};

    #[test]
    fn clean_channel_yields_zero_failures_across_trials() {
        let config = SimConfig::new(ProtocolVariant::Rxl, 1).with_channel(ChannelErrorModel::ideal());
        let mc = MonteCarlo::new(config, 4);
        let down = request_stream(60, TrafficPattern::Reads { cqids: 2 }, 5);
        let up = response_stream(30, 2, 6);
        let report = mc.run(&down, &up);
        assert_eq!(report.trials, 4);
        assert_eq!(report.drained_trials, 4);
        assert!(report.failures.is_clean());
        assert_eq!(report.mean_ordering_rate(), 0.0);
        assert_eq!(report.pooled_failure_rate(), 0.0);
        assert_eq!(report.ordering_rates.len(), 4);
    }

    #[test]
    fn trials_use_distinct_seeds_and_aggregate_counts() {
        let config = SimConfig::new(ProtocolVariant::Rxl, 1)
            .with_channel(ChannelErrorModel::random(3e-4));
        let mc = MonteCarlo::new(config, 3);
        let down = request_stream(150, TrafficPattern::Reads { cqids: 4 }, 9);
        let up = response_stream(50, 4, 10);
        let report = mc.run(&down, &up);
        assert_eq!(report.trials, 3);
        // Total clean deliveries should be close to 3 × (150 + 50); RXL never
        // fails, it only retries.
        assert_eq!(report.failures.clean_deliveries, 3 * 200);
        assert!(report.links.flits_sent > 0);
        assert!(report.switches.flits_in > 0);
    }

    #[test]
    fn statistics_helpers_behave() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
        assert_eq!(stderr(&[1.0]), 0.0);
        assert!(stderr(&[1.0, 3.0]) > 0.0);
        let mc_cfg = SimConfig {
            topology: Topology::Direct,
            ..SimConfig::new(ProtocolVariant::Rxl, 0)
        };
        assert_eq!(MonteCarlo::new(mc_cfg, 7).trials(), 7);
    }
}
