//! Parallel Monte-Carlo execution of independent path-simulation trials.
//!
//! Each trial runs the same configuration with a different RNG seed; trials
//! are embarrassingly parallel and are distributed across cores with rayon.
//! The aggregate report keeps both summed counters and per-trial rates so
//! harnesses can print means with confidence intervals.

use rayon::prelude::*;

use rxl_flit::Message;
use rxl_link::LinkStats;
use rxl_switch::SwitchStats;
use rxl_transport::FailureCounts;

use crate::path::{PathSim, SimConfig};
use crate::report::SimReport;

/// A Monte-Carlo experiment: one configuration, many seeds.
#[derive(Clone, Debug)]
pub struct MonteCarlo {
    config: SimConfig,
    trials: u64,
    base_seed: u64,
}

/// Aggregate results over all trials.
#[derive(Clone, Debug, Default)]
pub struct MonteCarloReport {
    /// Number of trials executed.
    pub trials: u64,
    /// Summed failure counts over both directions of every trial.
    pub failures: FailureCounts,
    /// Summed link statistics (host + device) over every trial.
    pub links: LinkStats,
    /// Summed switch statistics over every trial.
    pub switches: SwitchStats,
    /// Number of trials that drained before their slot limit.
    pub drained_trials: u64,
    /// Per-trial ordering failure rates (for dispersion estimates).
    pub ordering_rates: Vec<f64>,
    /// Per-trial bandwidth overheads.
    pub bandwidth_overheads: Vec<f64>,
}

impl MonteCarloReport {
    /// Mean of the per-trial ordering failure rates.
    pub fn mean_ordering_rate(&self) -> f64 {
        mean(&self.ordering_rates)
    }

    /// Mean of the per-trial bandwidth overheads.
    pub fn mean_bandwidth_overhead(&self) -> f64 {
        mean(&self.bandwidth_overheads)
    }

    /// Standard error of the per-trial ordering failure rates.
    pub fn ordering_rate_stderr(&self) -> f64 {
        stderr(&self.ordering_rates)
    }

    /// Probability (over delivered messages, pooled across trials) that a
    /// message experienced any failure.
    pub fn pooled_failure_rate(&self) -> f64 {
        self.failures.failure_rate()
    }
}

/// Derives the RNG seed of one trial from the experiment's base seed.
///
/// A SplitMix64-style finalizer rather than `base + trial * stride`: the
/// multiply–xor–shift cascade decorrelates trials even when base seeds are
/// small consecutive integers (the common case in tests and sweeps), and it
/// cannot overflow-panic in debug builds for any trial count.
///
/// Public because every sharded Monte-Carlo driver in the workspace
/// (including `rxl-fabric`'s) must derive per-trial seeds the same way for
/// results to be bit-identical regardless of worker-thread count.
pub fn trial_seed(base: u64, trial: u64) -> u64 {
    let mut z = base ^ trial.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

fn stderr(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    let var = xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64;
    (var / xs.len() as f64).sqrt()
}

impl MonteCarlo {
    /// Creates an experiment running `trials` independent trials of `config`.
    pub fn new(config: SimConfig, trials: u64) -> Self {
        MonteCarlo {
            config,
            trials,
            base_seed: config.seed,
        }
    }

    /// Number of trials configured.
    pub fn trials(&self) -> u64 {
        self.trials
    }

    /// Runs every trial (in parallel) with the given per-direction workloads
    /// and aggregates the results.
    ///
    /// Results are bit-for-bit reproducible for a fixed `base_seed`
    /// regardless of how many rayon worker threads execute the trials: each
    /// trial's RNG seed depends only on `(base_seed, trial)`, and the
    /// parallel collect preserves trial order, so the per-trial vectors in
    /// the report are always in trial order too.
    pub fn run(&self, downstream: &[Message], upstream: &[Message]) -> MonteCarloReport {
        let base = self.base_seed;
        let reports: Vec<SimReport> = (0..self.trials)
            .into_par_iter()
            .map(|trial| {
                let config = self.config.with_seed(trial_seed(base, trial));
                PathSim::new(config).run(downstream, upstream)
            })
            .collect();
        self.aggregate(reports)
    }

    fn aggregate(&self, reports: Vec<SimReport>) -> MonteCarloReport {
        let mut agg = MonteCarloReport {
            trials: reports.len() as u64,
            ..Default::default()
        };
        for r in reports {
            agg.failures.merge(&r.total_failures());
            agg.links.merge(&r.host_link);
            agg.links.merge(&r.device_link);
            agg.switches.merge(&r.switches);
            if r.drained {
                agg.drained_trials += 1;
            }
            agg.ordering_rates.push(r.ordering_failure_rate());
            agg.bandwidth_overheads.push(r.bandwidth_overhead());
        }
        agg
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::Topology;
    use crate::workload::{request_stream, response_stream, TrafficPattern};
    use rxl_link::{ChannelErrorModel, ProtocolVariant};

    #[test]
    fn clean_channel_yields_zero_failures_across_trials() {
        let config =
            SimConfig::new(ProtocolVariant::Rxl, 1).with_channel(ChannelErrorModel::ideal());
        let mc = MonteCarlo::new(config, 4);
        let down = request_stream(60, TrafficPattern::Reads { cqids: 2 }, 5);
        let up = response_stream(30, 2, 6);
        let report = mc.run(&down, &up);
        assert_eq!(report.trials, 4);
        assert_eq!(report.drained_trials, 4);
        assert!(report.failures.is_clean());
        assert_eq!(report.mean_ordering_rate(), 0.0);
        assert_eq!(report.pooled_failure_rate(), 0.0);
        assert_eq!(report.ordering_rates.len(), 4);
    }

    #[test]
    fn trials_use_distinct_seeds_and_aggregate_counts() {
        let config =
            SimConfig::new(ProtocolVariant::Rxl, 1).with_channel(ChannelErrorModel::random(3e-4));
        let mc = MonteCarlo::new(config, 3);
        let down = request_stream(150, TrafficPattern::Reads { cqids: 4 }, 9);
        let up = response_stream(50, 4, 10);
        let report = mc.run(&down, &up);
        assert_eq!(report.trials, 3);
        // Total clean deliveries should be close to 3 × (150 + 50); RXL never
        // fails, it only retries.
        assert_eq!(report.failures.clean_deliveries, 3 * 200);
        assert!(report.links.flits_sent > 0);
        assert!(report.switches.flits_in > 0);
    }

    /// The reproducibility contract: for a fixed `base_seed` the aggregate
    /// report is identical no matter how many rayon worker threads run the
    /// trials. Trial seeds depend only on `(base_seed, trial)` and the
    /// parallel collect preserves trial order, so nothing may vary.
    #[test]
    fn reports_are_reproducible_across_thread_counts() {
        let config = SimConfig::new(ProtocolVariant::Rxl, 2)
            .with_channel(ChannelErrorModel::random(2e-4))
            .with_seed(0xC0FFEE);
        let down = request_stream(120, TrafficPattern::Reads { cqids: 4 }, 11);
        let up = response_stream(60, 4, 12);

        // An explicit thread pool per count — no process-global state, so
        // this test cannot race with siblings in the same test binary.
        let run_with_threads = |threads: usize| {
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .expect("shim pool build is infallible");
            pool.install(|| MonteCarlo::new(config, 8).run(&down, &up))
        };

        let reference = run_with_threads(1);
        for threads in [2, 3, 8] {
            let report = run_with_threads(threads);
            assert_eq!(report.trials, reference.trials, "{threads} threads");
            assert_eq!(report.failures, reference.failures, "{threads} threads");
            assert_eq!(report.links, reference.links, "{threads} threads");
            assert_eq!(report.switches, reference.switches, "{threads} threads");
            assert_eq!(
                report.drained_trials, reference.drained_trials,
                "{threads} threads"
            );
            // Bit-exact per-trial vectors, in trial order.
            assert_eq!(
                report.ordering_rates, reference.ordering_rates,
                "{threads} threads"
            );
            assert_eq!(
                report.bandwidth_overheads, reference.bandwidth_overheads,
                "{threads} threads"
            );
        }
    }

    /// Distinct trials must not share RNG streams even for adjacent base
    /// seeds — the failure mode of naive `base + trial * stride` derivations.
    #[test]
    fn trial_seeds_do_not_collide_for_adjacent_bases() {
        let mut seen = std::collections::HashSet::new();
        for base in 0..64u64 {
            for trial in 0..64u64 {
                assert!(
                    seen.insert(trial_seed(base, trial)),
                    "seed collision at base={base} trial={trial}"
                );
            }
        }
    }

    #[test]
    fn statistics_helpers_behave() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
        assert_eq!(stderr(&[1.0]), 0.0);
        assert!(stderr(&[1.0, 3.0]) > 0.0);
        let mc_cfg = SimConfig {
            topology: Topology::Direct,
            ..SimConfig::new(ProtocolVariant::Rxl, 0)
        };
        assert_eq!(MonteCarlo::new(mc_cfg, 7).trials(), 7);
    }
}
