//! The slot-synchronous path simulator.
//!
//! One simulation instantiates a host endpoint and a device endpoint joined
//! either directly or through a chain of switches. Every slot (one flit time,
//! 2 ns at the ×16 CXL 3.0 rate) each endpoint gets one transmit opportunity;
//! the emitted flit traverses every link of the path (each traversal applies
//! the channel error model) and every switch (each applies the paper's
//! decode–drop–re-encode behaviour) before reaching the far endpoint in the
//! same slot. Propagation latency is therefore not modelled — it does not
//! affect any failure-rate or ordering result, and the bandwidth analysis
//! uses the analytic retry-occupancy model of `rxl-analysis` with retry
//! *rates* measured here.

use rand::rngs::StdRng;
use rand::SeedableRng;

use rxl_flit::{Message, WireFlit};
use rxl_link::{ChannelErrorModel, LinkConfig, LinkEndpoint, ProtocolVariant};
use rxl_switch::{InternalErrorModel, LinkCrcMode, Switch, SwitchConfig};
use rxl_transport::DeliveryAuditor;

use crate::report::SimReport;
use crate::topology::Topology;

/// Configuration of one path simulation.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SimConfig {
    /// Protocol variant under test.
    pub variant: ProtocolVariant,
    /// Path topology.
    pub topology: Topology,
    /// Per-link channel error model.
    pub channel: ChannelErrorModel,
    /// Switch-internal corruption model.
    pub switch_internal: InternalErrorModel,
    /// ACK coalescing level (one ACK per this many accepted flits).
    pub ack_coalescing: u32,
    /// Hard limit on simulated transmit slots.
    pub max_slots: u64,
    /// RNG seed for channel errors and switch faults.
    pub seed: u64,
}

impl SimConfig {
    /// A convenient default: the given variant and switching depth at the
    /// paper's operating point, with a slot budget suited to small workloads.
    pub fn new(variant: ProtocolVariant, levels: u32) -> Self {
        SimConfig {
            variant,
            topology: Topology::from_levels(levels),
            channel: ChannelErrorModel::cxl3(),
            switch_internal: InternalErrorModel::none(),
            ack_coalescing: 10,
            max_slots: 2_000_000,
            seed: 0,
        }
    }

    /// Replaces the channel error model.
    pub fn with_channel(mut self, channel: ChannelErrorModel) -> Self {
        self.channel = channel;
        self
    }

    /// Replaces the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The link configuration implied by this simulation configuration.
    pub fn link_config(&self) -> LinkConfig {
        LinkConfig {
            ack_coalescing: self.ack_coalescing,
            ..LinkConfig::cxl3_x16(self.variant)
        }
    }

    fn switch_config(&self) -> SwitchConfig {
        SwitchConfig {
            ports: 2,
            queue_capacity: 64,
            internal_error: self.switch_internal,
            crc_mode: match self.variant {
                ProtocolVariant::Rxl => LinkCrcMode::Passthrough,
                _ => LinkCrcMode::Regenerate,
            },
        }
    }
}

/// One host–device pair connected through the configured path.
pub struct PathSim {
    config: SimConfig,
    host: LinkEndpoint,
    device: LinkEndpoint,
    switches: Vec<Switch>,
    rng: StdRng,
}

/// Port index facing the host on every switch.
const UPSTREAM_PORT: usize = 0;
/// Port index facing the device on every switch.
const DOWNSTREAM_PORT: usize = 1;

impl PathSim {
    /// Builds the path described by `config`.
    pub fn new(config: SimConfig) -> Self {
        let link_cfg = config.link_config();
        let mut switches = Vec::new();
        for _ in 0..config.topology.levels() {
            let mut sw = Switch::new(config.switch_config());
            sw.connect_duplex(UPSTREAM_PORT, DOWNSTREAM_PORT);
            switches.push(sw);
        }
        PathSim {
            host: LinkEndpoint::new(link_cfg),
            device: LinkEndpoint::new(link_cfg),
            switches,
            rng: StdRng::seed_from_u64(config.seed),
            config,
        }
    }

    /// The simulation configuration.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// Carries one wire flit from the host side towards the device,
    /// traversing every link and switch. Returns the flit that arrives at the
    /// device, or `None` if a switch dropped it.
    fn traverse_downstream(&mut self, mut wire: WireFlit) -> Option<WireFlit> {
        self.config.channel.apply(&mut wire, &mut self.rng);
        for sw in self.switches.iter_mut() {
            if !sw.ingress(UPSTREAM_PORT, &wire, &mut self.rng).forwarded() {
                return None;
            }
            wire = sw
                .egress(DOWNSTREAM_PORT)
                .expect("forwarded flit must be queued on the egress port");
            self.config.channel.apply(&mut wire, &mut self.rng);
        }
        Some(wire)
    }

    /// Carries one wire flit from the device side towards the host.
    fn traverse_upstream(&mut self, mut wire: WireFlit) -> Option<WireFlit> {
        self.config.channel.apply(&mut wire, &mut self.rng);
        for sw in self.switches.iter_mut().rev() {
            if !sw
                .ingress(DOWNSTREAM_PORT, &wire, &mut self.rng)
                .forwarded()
            {
                return None;
            }
            wire = sw
                .egress(UPSTREAM_PORT)
                .expect("forwarded flit must be queued on the egress port");
            self.config.channel.apply(&mut wire, &mut self.rng);
        }
        Some(wire)
    }

    /// Runs the simulation: the host transmits `downstream` and the device
    /// transmits `upstream`; both sides' deliveries are audited against those
    /// ground-truth streams.
    pub fn run(mut self, downstream: &[Message], upstream: &[Message]) -> SimReport {
        let flit_time = self.config.link_config().flit_time_ns;

        let mut downstream_audit = DeliveryAuditor::new();
        for m in downstream {
            downstream_audit.record_sent(m);
        }
        let mut upstream_audit = DeliveryAuditor::new();
        for m in upstream {
            upstream_audit.record_sent(m);
        }
        self.host.enqueue_messages(downstream.iter().copied());
        self.device.enqueue_messages(upstream.iter().copied());

        let mut now = 0.0f64;
        let mut slots = 0u64;
        let mut drained = false;
        while slots < self.config.max_slots {
            slots += 1;
            now += flit_time;

            let host_emission = self.host.emit(now);
            let device_emission = self.device.emit(now);

            if let Some(wire) = self.host.encode_emission(&host_emission) {
                if let Some(arrived) = self.traverse_downstream(wire) {
                    let result = self.device.receive(&arrived, now);
                    for msg in &result.delivered {
                        downstream_audit.observe_delivery(msg);
                    }
                }
            }
            if let Some(wire) = self.device.encode_emission(&device_emission) {
                if let Some(arrived) = self.traverse_upstream(wire) {
                    let result = self.host.receive(&arrived, now);
                    for msg in &result.delivered {
                        upstream_audit.observe_delivery(msg);
                    }
                }
            }

            if host_emission.is_idle()
                && device_emission.is_idle()
                && self.host.is_quiescent()
                && self.device.is_quiescent()
            {
                drained = true;
                break;
            }
        }

        let mut switch_stats = rxl_switch::SwitchStats::default();
        for sw in &self.switches {
            switch_stats.merge(sw.stats());
        }
        SimReport {
            downstream: downstream_audit.finalize(),
            upstream: upstream_audit.finalize(),
            host_link: self.host.stats(),
            device_link: self.device.stats(),
            switches: switch_stats,
            slots,
            sim_time_ns: now,
            drained,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{request_stream, response_stream, TrafficPattern};

    fn workloads(n_down: usize, n_up: usize) -> (Vec<Message>, Vec<Message>) {
        (
            request_stream(n_down, TrafficPattern::Reads { cqids: 4 }, 11),
            response_stream(n_up, 4, 12),
        )
    }

    #[test]
    fn error_free_direct_path_delivers_everything_cleanly() {
        for variant in [
            ProtocolVariant::CxlPiggyback,
            ProtocolVariant::CxlStandaloneAck,
            ProtocolVariant::Rxl,
        ] {
            let config = SimConfig::new(variant, 0).with_channel(ChannelErrorModel::ideal());
            let (down, up) = workloads(120, 60);
            let report = PathSim::new(config).run(&down, &up);
            assert!(report.drained, "{variant:?} did not drain");
            assert!(
                report.downstream.is_clean(),
                "{variant:?}: {:?}",
                report.downstream
            );
            assert!(
                report.upstream.is_clean(),
                "{variant:?}: {:?}",
                report.upstream
            );
            assert_eq!(report.downstream.clean_deliveries, 120);
            assert_eq!(report.upstream.clean_deliveries, 60);
        }
    }

    #[test]
    fn error_free_switched_path_delivers_everything_cleanly() {
        for levels in [1u32, 3] {
            let config = SimConfig::new(ProtocolVariant::Rxl, levels)
                .with_channel(ChannelErrorModel::ideal());
            let (down, up) = workloads(90, 45);
            let report = PathSim::new(config).run(&down, &up);
            assert!(report.drained);
            assert!(report.downstream.is_clean());
            assert!(report.upstream.is_clean());
            assert!(report.switches.flits_forwarded > 0);
            assert_eq!(report.switches.flits_dropped_uncorrectable, 0);
        }
    }

    #[test]
    fn rxl_survives_a_noisy_switched_path_without_protocol_failures() {
        // Accelerated BER so drops actually happen within a small trial.
        let channel = ChannelErrorModel::random(2e-4);
        let config = SimConfig::new(ProtocolVariant::Rxl, 1)
            .with_channel(channel)
            .with_seed(42);
        let (down, up) = workloads(400, 200);
        let report = PathSim::new(config).run(&down, &up);
        assert!(report.drained, "RXL must drain despite drops");
        // RXL's guarantee: retries may happen, but nothing is delivered out
        // of order, duplicated, corrupted, or lost.
        assert!(report.downstream.is_clean(), "{:?}", report.downstream);
        assert!(report.upstream.is_clean(), "{:?}", report.upstream);
    }

    #[test]
    fn cxl_piggyback_on_a_noisy_switched_path_exhibits_protocol_failures() {
        // Same noisy path as the RXL test; baseline CXL with piggybacked ACKs
        // eventually forwards mis-ordered or duplicated messages. A few seeds
        // are tried because any individual short trial may get lucky.
        let mut total_failures = 0u64;
        for seed in 0..8u64 {
            let channel = ChannelErrorModel::random(2e-4);
            let config = SimConfig::new(ProtocolVariant::CxlPiggyback, 1)
                .with_channel(channel)
                .with_seed(seed);
            let (down, up) = workloads(400, 200);
            let report = PathSim::new(config).run(&down, &up);
            let totals = report.total_failures();
            total_failures += totals.ordering_failures + totals.duplicate_deliveries;
        }
        assert!(
            total_failures > 0,
            "expected at least one ordering/duplicate failure across seeds"
        );
    }

    #[test]
    fn switch_drop_counters_reflect_the_channel_error_rate() {
        let channel = ChannelErrorModel::random(5e-4);
        let config = SimConfig::new(ProtocolVariant::Rxl, 1)
            .with_channel(channel)
            .with_seed(3);
        let (down, up) = workloads(300, 150);
        let report = PathSim::new(config).run(&down, &up);
        assert!(report.switches.flits_in > 0);
        // With this BER some flits are corrected and occasionally dropped.
        assert!(report.switches.flits_corrected > 0);
    }

    #[test]
    fn slot_limit_is_respected() {
        let config = SimConfig {
            max_slots: 50,
            ..SimConfig::new(ProtocolVariant::Rxl, 0)
        }
        .with_channel(ChannelErrorModel::ideal());
        let (down, up) = workloads(5_000, 0);
        let report = PathSim::new(config).run(&down, &up);
        assert!(!report.drained);
        assert_eq!(report.slots, 50);
    }
}
