//! Golden-value pins for the closed-form models.
//!
//! These are the FIT and bandwidth-efficiency numbers the rxl-bench tables
//! print next to the paper's reported values (Section 7 of the paper,
//! Eqns (1)–(14)). They were captured from this implementation at the
//! paper's operating point (BER 1e-6, 256-byte flits, ×16 @ 500M flits/s)
//! and agree with the paper to its quoted precision. Future refactors of
//! the model code must reproduce them to 1 part in 1e9 — any drift beyond
//! float-expression reshuffling is a behaviour change and needs a deliberate
//! update of this file.

use rxl_analysis::{fit_curve, BandwidthModel, ReliabilityModel};

fn assert_close(label: &str, actual: f64, golden: f64) {
    // 1e-9 relative: far tighter than any genuine model change would land,
    // but immune to the last-ulp variation `f64::powi` is documented to have
    // across platforms and Rust versions (the models use powi internally).
    let tol = golden.abs() * 1e-9;
    assert!(
        (actual - golden).abs() <= tol,
        "{label}: got {actual:.17e}, golden {golden:.17e}"
    );
}

#[test]
fn reliability_model_matches_golden_values() {
    let m = ReliabilityModel::cxl3_x16();
    // Eqn (1): raw flit error rate.
    assert_close("FER", m.fer(), 2.045_905_300_889_106e-3);
    // Eqn (2): post-FEC uncorrectable rate.
    assert_close("FER_UC", m.fer_uncorrectable(), 3e-5);
    // Eqn (3): fraction of erroneous flits the FEC corrects (> 98.5%).
    assert_close(
        "FEC correction fraction",
        m.fec_correction_fraction(),
        9.853_365_647_046_505e-1,
    );
    // CRC escape probability (2^-64).
    assert_close(
        "CRC escape fraction",
        m.crc_escape_fraction(),
        5.421_010_862_427_522e-20,
    );
    // Eqn (4): undetected flit error rate on a direct link.
    assert_close(
        "FER_UD direct",
        m.fer_undetected_direct(),
        1.626_303_258_728_256_7e-24,
    );
    // Eqn (6): silent-drop rate behind one switch.
    assert_close("FER_drop 1 switch", m.fer_drop_single_switch(), 3e-5);
    // Eqn (7): ordering-failure rate for piggyback CXL behind one switch.
    assert_close("FER_order 1 switch", m.fer_order_single_switch(), 3e-6);
    // Eqn (9): RXL's undetected rate barely moves when a switch is added.
    assert_close(
        "FER_UD RXL 1 switch",
        m.fer_undetected_rxl_single_switch(),
        1.626_352_047_826_018_5e-24,
    );
}

#[test]
fn fit_numbers_match_golden_values() {
    let m = ReliabilityModel::cxl3_x16();
    // Eqn (5): FIT of a direct CXL link — paper: 2.9e-3.
    assert_close(
        "FIT CXL direct",
        m.fit_cxl_direct(),
        2.927_345_865_710_862e-3,
    );
    // Eqn (8): FIT of CXL behind one switch — paper: 5.4e15.
    assert_close("FIT CXL 1 switch", m.fit_cxl_single_switch(), 5.4e15);
    // Eqn (10): FIT of RXL behind one switch — paper: 2.9e-3.
    assert_close(
        "FIT RXL 1 switch",
        m.fit_rxl_single_switch(),
        2.927_433_686_086_833e-3,
    );
    // Fig. 8 end points at 4 switching levels.
    assert_close("FIT CXL 4 levels", m.fit_cxl_levels(4), 2.16e16);
    assert_close(
        "FIT RXL 4 levels",
        m.fit_rxl_levels(4),
        2.927_697_147_214_747_3e-3,
    );
    // The headline claim: ≥ 18 orders of magnitude improvement.
    let ratio = m.fit_cxl_single_switch() / m.fit_rxl_single_switch();
    assert_close("RXL improvement ratio", ratio, 1.844_619_068_798_891_5e18);
    assert!(ratio > 1e18);
}

#[test]
fn fit_curve_matches_golden_values() {
    let m = ReliabilityModel::cxl3_x16();
    let curve = fit_curve(&m, 4);
    assert_eq!(curve.len(), 5);
    let golden_cxl = [2.927_345_865_710_862e-3, 5.4e15, 1.08e16, 1.62e16, 2.16e16];
    let golden_rxl = [
        2.927_345_865_710_862e-3,
        2.927_433_686_086_833e-3,
        2.927_521_506_462_804_6e-3,
        2.927_609_326_838_776e-3,
        2.927_697_147_214_747_3e-3,
    ];
    for (i, p) in curve.iter().enumerate() {
        assert_eq!(p.levels, i as u32);
        assert_close(&format!("curve CXL l={i}"), p.fit_cxl, golden_cxl[i]);
        assert_close(&format!("curve RXL l={i}"), p.fit_rxl, golden_rxl[i]);
    }
    // FIT_cxl grows linearly with levels; FIT_rxl stays within 0.1% of the
    // direct-link value across the whole curve.
    assert_close("linearity", curve[3].fit_cxl, 3.0 * curve[1].fit_cxl);
    assert!((curve[4].fit_rxl - curve[0].fit_rxl) / curve[0].fit_rxl < 1e-3);
}

#[test]
fn bandwidth_model_matches_golden_values() {
    let b = BandwidthModel::cxl3_x16();
    // Eqn (11): direct-link go-back-N loss — paper: 0.15%.
    assert_close(
        "loss direct",
        b.loss_cxl_direct(),
        1.497_753_369_945_176_2e-3,
    );
    // Eqn (12): switched piggyback loss — paper: 0.30%.
    assert_close(
        "loss switched piggyback",
        b.loss_cxl_switched_piggyback(),
        2.991_026_919_242_356_6e-3,
    );
    // Eqn (14): RXL pays exactly the piggyback cost, nothing more.
    assert_close(
        "loss RXL",
        b.loss_rxl_switched(),
        2.991_026_919_242_356_6e-3,
    );
    assert_eq!(b.loss_rxl_switched(), b.loss_cxl_switched_piggyback());
    // Eqn (13): standalone ACK costs the coalescing fraction outright.
    assert_close("loss standalone p=0.1", b.loss_standalone_ack(0.1), 0.1);
    assert_close("loss standalone p=1.0", b.loss_standalone_ack(1.0), 1.0);
}
