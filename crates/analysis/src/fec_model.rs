//! Closed-form model of the Section 2.5 FEC detection fractions.
//!
//! The 3-way interleaved single-symbol-correct FEC corrects any burst of up
//! to three symbols. A longer burst overloads one or more sub-blocks; an
//! overloaded shortened RS(255, 253) sub-block *miscorrects* (instead of
//! detecting) with probability ≈ `used_fraction` — the fraction of the
//! 255-symbol codeword actually occupied by the 85-ish transmitted symbols.
//! A flit-level miscorrection requires every overloaded sub-block to
//! miscorrect, which yields the paper's 2/3, 8/9 and 26/27 figures.

/// Geometry of the interleaved FEC for detection-fraction purposes.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FecDetectionModel {
    /// Interleave ways (3 for CXL flits).
    pub ways: u32,
    /// Fraction of mother-code positions used by each shortened sub-block
    /// (≈ 85/255 = 1/3 for CXL flits).
    pub used_fraction: f64,
}

impl Default for FecDetectionModel {
    fn default() -> Self {
        Self::cxl_flit()
    }
}

impl FecDetectionModel {
    /// The CXL 256-byte flit geometry.
    pub fn cxl_flit() -> Self {
        FecDetectionModel {
            ways: 3,
            used_fraction: 85.0 / 255.0,
        }
    }

    /// Number of sub-blocks that receive two or more symbols of a burst of
    /// `burst_symbols` consecutive symbols.
    pub fn overloaded_ways(&self, burst_symbols: u32) -> u32 {
        if burst_symbols <= self.ways {
            0
        } else {
            (burst_symbols - self.ways).min(self.ways)
        }
    }

    /// `true` if a burst of this length is always corrected.
    pub fn always_corrected(&self, burst_symbols: u32) -> bool {
        self.overloaded_ways(burst_symbols) == 0
    }

    /// Probability that a burst of `burst_symbols` symbols is *detected*
    /// given that it is uncorrectable (Section 2.5's 2/3, 8/9, 26/27).
    pub fn detection_fraction(&self, burst_symbols: u32) -> f64 {
        let overloaded = self.overloaded_ways(burst_symbols);
        if overloaded == 0 {
            // Correctable bursts never need detection.
            return 1.0;
        }
        1.0 - self.used_fraction.powi(overloaded as i32)
    }

    /// Probability that a burst of `burst_symbols` symbols silently
    /// miscorrects at the flit level.
    pub fn miscorrection_fraction(&self, burst_symbols: u32) -> f64 {
        1.0 - self.detection_fraction(burst_symbols)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() < tol
    }

    #[test]
    fn bursts_up_to_three_symbols_are_always_corrected() {
        let m = FecDetectionModel::cxl_flit();
        for b in 1..=3 {
            assert!(m.always_corrected(b));
            assert_eq!(m.overloaded_ways(b), 0);
            assert_eq!(m.detection_fraction(b), 1.0);
        }
    }

    #[test]
    fn paper_detection_fractions() {
        let m = FecDetectionModel::cxl_flit();
        // The paper quotes 2/3, 8/9 and 26/27 using the round 1/3 figure;
        // the exact 85/255 = 1/3 matches it precisely.
        assert!(close(m.detection_fraction(4), 2.0 / 3.0, 1e-9));
        assert!(close(m.detection_fraction(5), 8.0 / 9.0, 1e-9));
        assert!(close(m.detection_fraction(6), 26.0 / 27.0, 1e-9));
        // Longer bursts cannot overload more than three ways.
        assert!(close(m.detection_fraction(9), 26.0 / 27.0, 1e-9));
        assert_eq!(m.overloaded_ways(100), 3);
    }

    #[test]
    fn miscorrection_is_the_complement() {
        let m = FecDetectionModel::cxl_flit();
        for b in 1..=8 {
            assert!(close(
                m.detection_fraction(b) + m.miscorrection_fraction(b),
                1.0,
                1e-12
            ));
        }
    }

    #[test]
    fn a_less_shortened_code_detects_less() {
        let long = FecDetectionModel {
            ways: 3,
            used_fraction: 0.9,
        };
        let short = FecDetectionModel::cxl_flit();
        assert!(long.detection_fraction(4) < short.detection_fraction(4));
    }
}
