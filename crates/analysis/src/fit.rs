//! The Fig. 8 curves: FIT_device of CXL and RXL versus switching levels.

use crate::reliability::ReliabilityModel;

/// One point of the Fig. 8 comparison.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FitCurvePoint {
    /// Number of switching levels between the endpoints (0 = direct link).
    pub levels: u32,
    /// FIT of the baseline CXL protocol.
    pub fit_cxl: f64,
    /// FIT of RXL.
    pub fit_rxl: f64,
}

impl FitCurvePoint {
    /// The reliability advantage of RXL at this point.
    pub fn improvement_ratio(&self) -> f64 {
        self.fit_cxl / self.fit_rxl
    }
}

/// Computes the Fig. 8 curve for switching levels `0..=max_levels`.
pub fn fit_curve(model: &ReliabilityModel, max_levels: u32) -> Vec<FitCurvePoint> {
    (0..=max_levels)
        .map(|levels| FitCurvePoint {
            levels,
            fit_cxl: model.fit_cxl_levels(levels),
            fit_rxl: model.fit_rxl_levels(levels),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn curve_has_the_expected_shape() {
        let model = ReliabilityModel::cxl3_x16();
        let curve = fit_curve(&model, 4);
        assert_eq!(curve.len(), 5);
        // Direct connection: both protocols are extremely reliable and equal
        // to within the CRC escape probability.
        assert!(curve[0].fit_cxl < 1.0);
        assert!(curve[0].fit_rxl < 1.0);
        // One switch level: CXL collapses by ~18 orders of magnitude.
        assert!(curve[1].improvement_ratio() > 1e18);
        // CXL keeps degrading with depth; RXL stays flat.
        for w in curve.windows(2).skip(1) {
            assert!(w[1].fit_cxl > w[0].fit_cxl);
            assert!(w[1].fit_rxl / w[0].fit_rxl < 1.001);
        }
    }

    #[test]
    fn paper_headline_numbers_appear_on_the_curve() {
        let model = ReliabilityModel::cxl3_x16();
        let curve = fit_curve(&model, 1);
        let rel = |a: f64, b: f64| ((a - b) / b).abs() < 0.05;
        assert!(rel(curve[0].fit_cxl, 2.9e-3));
        assert!(rel(curve[1].fit_cxl, 5.4e15));
        assert!(rel(curve[1].fit_rxl, 2.9e-3));
    }
}
