//! # rxl-analysis — Closed-form models of the paper's evaluation
//!
//! Every numbered equation and every figure in Section 7 of the paper is
//! analytic. This crate reproduces those models so the experiment harnesses
//! can print "paper vs. model vs. simulation" side by side:
//!
//! * [`reliability`] — Eqns (1)–(10): flit error rate, uncorrectable and
//!   undetectable error rates, FIT for direct and switched CXL and for RXL,
//! * [`fit`] — the Fig. 8 curves: FIT versus the number of switching levels,
//! * [`bandwidth`] — Eqns (11)–(14): go-back-N retry bandwidth loss and the
//!   standalone-ACK alternative,
//! * [`buffering`] — the Section 5 reassembly-buffer sizing argument for why
//!   chip interconnects forgo reordering and selective repeat,
//! * [`fec_model`] — the Section 2.5 burst-detection fractions of the 3-way
//!   interleaved shortened Reed–Solomon FEC,
//! * [`hardware`] — the Section 7.3 gate-count argument for ISN,
//! * [`overhead`] — the Section 2.4 header-overhead comparison against
//!   TCP/IP-class transports.

pub mod bandwidth;
pub mod buffering;
pub mod fec_model;
pub mod fit;
pub mod hardware;
pub mod overhead;
pub mod reliability;

pub use bandwidth::BandwidthModel;
pub use buffering::BufferingModel;
pub use fit::{fit_curve, FitCurvePoint};
pub use hardware::{HardwareCostModel, IsnHardwareDelta};
pub use overhead::{HeaderOverhead, ProtocolOverhead};
pub use reliability::ReliabilityModel;
