//! Header-overhead comparison (Section 2.4 / Fig. 2 of the paper).
//!
//! TCP-class transports spend 74 bytes of headers (TCP 20 B + IPv6 40 B +
//! Ethernet 14 B) per segment, which is acceptable for kilobyte payloads but
//! prohibitive at cache-line granularity. CXL flits spend 16 bytes
//! (2 B header + 8 B CRC + 6 B FEC) per 240-byte payload, and RXL keeps the
//! exact same flit structure — that is the point of embedding the sequence
//! number in the CRC instead of adding fields.

/// Per-unit overhead description of one protocol.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ProtocolOverhead {
    /// Display name.
    pub name: &'static str,
    /// Header + redundancy bytes per transfer unit.
    pub overhead_bytes: u32,
    /// Payload bytes per transfer unit.
    pub payload_bytes: u32,
    /// Bits of the unit's headers devoted to sequence/acknowledgement
    /// tracking.
    pub sequence_tracking_bits: u32,
}

impl ProtocolOverhead {
    /// Fraction of each transfer unit spent on overhead.
    pub fn overhead_fraction(&self) -> f64 {
        self.overhead_bytes as f64 / (self.overhead_bytes + self.payload_bytes) as f64
    }

    /// Bytes of overhead paid per byte of payload.
    pub fn overhead_per_payload_byte(&self) -> f64 {
        self.overhead_bytes as f64 / self.payload_bytes as f64
    }

    /// Units (segments / flits) needed to move `bytes` of payload.
    pub fn units_for(&self, bytes: u64) -> u64 {
        bytes.div_ceil(self.payload_bytes as u64)
    }

    /// Total wire bytes needed to move `bytes` of payload.
    pub fn wire_bytes_for(&self, bytes: u64) -> u64 {
        self.units_for(bytes) * (self.overhead_bytes + self.payload_bytes) as u64
    }
}

/// The header-overhead comparison table of experiment E19.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct HeaderOverhead;

impl HeaderOverhead {
    /// TCP/IPv6/Ethernet with a 1-KiB payload (the paper's framing).
    pub fn tcp_ipv6_ethernet() -> ProtocolOverhead {
        ProtocolOverhead {
            name: "TCP + IPv6 + Ethernet (1 KiB payload)",
            overhead_bytes: 20 + 40 + 14,
            payload_bytes: 1024,
            // 32-bit SeqNum + 32-bit AckNum.
            sequence_tracking_bits: 64,
        }
    }

    /// The CXL 3.0 256-byte flit.
    pub fn cxl_flit_256() -> ProtocolOverhead {
        ProtocolOverhead {
            name: "CXL 256B flit",
            overhead_bytes: 2 + 8 + 6,
            payload_bytes: 240,
            // The 10-bit FSN is the only sequence-tracking field.
            sequence_tracking_bits: 10,
        }
    }

    /// The RXL 256-byte flit: identical wire format, zero sequence bits in
    /// the header (the sequence rides in the CRC).
    pub fn rxl_flit_256() -> ProtocolOverhead {
        ProtocolOverhead {
            name: "RXL 256B flit",
            overhead_bytes: 2 + 8 + 6,
            payload_bytes: 240,
            sequence_tracking_bits: 0,
        }
    }

    /// The CXL 68-byte low-latency flit.
    pub fn cxl_flit_68() -> ProtocolOverhead {
        ProtocolOverhead {
            name: "CXL 68B flit",
            overhead_bytes: 4,
            payload_bytes: 64,
            sequence_tracking_bits: 10,
        }
    }

    /// A hypothetical CXL flit extended with TCP-style explicit 32-bit
    /// SeqNum + AckNum fields — the overhead ISN avoids.
    pub fn cxl_flit_with_explicit_tcp_fields() -> ProtocolOverhead {
        ProtocolOverhead {
            name: "CXL 256B flit + explicit 8B Seq/Ack",
            overhead_bytes: 2 + 8 + 6 + 8,
            payload_bytes: 232,
            sequence_tracking_bits: 64,
        }
    }

    /// All rows of the comparison table.
    pub fn table() -> Vec<ProtocolOverhead> {
        vec![
            Self::tcp_ipv6_ethernet(),
            Self::cxl_flit_68(),
            Self::cxl_flit_256(),
            Self::cxl_flit_with_explicit_tcp_fields(),
            Self::rxl_flit_256(),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tcp_stack_overhead_matches_the_paper() {
        let tcp = HeaderOverhead::tcp_ipv6_ethernet();
        assert_eq!(tcp.overhead_bytes, 74);
        assert!(tcp.overhead_fraction() < 0.07);
    }

    #[test]
    fn cxl_flit_overhead_is_5_5_percent_redundancy_plus_header() {
        let cxl = HeaderOverhead::cxl_flit_256();
        assert_eq!(cxl.overhead_bytes, 16);
        assert!((cxl.overhead_fraction() - 16.0 / 256.0).abs() < 1e-12);
    }

    #[test]
    fn rxl_keeps_the_flit_format_but_frees_the_sequence_bits() {
        let cxl = HeaderOverhead::cxl_flit_256();
        let rxl = HeaderOverhead::rxl_flit_256();
        assert_eq!(cxl.overhead_bytes, rxl.overhead_bytes);
        assert_eq!(cxl.payload_bytes, rxl.payload_bytes);
        assert_eq!(rxl.sequence_tracking_bits, 0);
        assert!(cxl.sequence_tracking_bits > 0);
    }

    #[test]
    fn explicit_tcp_fields_would_cost_payload() {
        let explicit = HeaderOverhead::cxl_flit_with_explicit_tcp_fields();
        let rxl = HeaderOverhead::rxl_flit_256();
        assert!(explicit.payload_bytes < rxl.payload_bytes);
        assert!(explicit.overhead_fraction() > rxl.overhead_fraction());
        // Moving 1 MiB of payload costs more wire bytes with explicit fields.
        let mib = 1 << 20;
        assert!(explicit.wire_bytes_for(mib) > rxl.wire_bytes_for(mib));
    }

    #[test]
    fn units_and_wire_bytes_round_up() {
        let cxl = HeaderOverhead::cxl_flit_256();
        assert_eq!(cxl.units_for(1), 1);
        assert_eq!(cxl.units_for(240), 1);
        assert_eq!(cxl.units_for(241), 2);
        assert_eq!(cxl.wire_bytes_for(241), 512);
    }

    #[test]
    fn table_has_five_distinct_rows() {
        let rows = HeaderOverhead::table();
        assert_eq!(rows.len(), 5);
        let names: std::collections::HashSet<_> = rows.iter().map(|r| r.name).collect();
        assert_eq!(names.len(), 5);
    }
}
