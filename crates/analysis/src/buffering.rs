//! Reassembly-buffer sizing: why chip interconnects avoid reordering and
//! selective repeat (Section 5 of the paper).
//!
//! ISN deliberately gives up packet reordering: a CRC mismatch cannot say
//! *which* flit is missing, only that the stream is no longer the expected
//! one. The paper justifies this with the on-chip buffering that reordering
//! would require:
//!
//! * multi-path routing with a 1 ms worst-case arrival skew on a 1 Tb/s ×16
//!   link needs a 1 Gb (128 MB) reassembly buffer,
//! * selective repeat with a 1 µs stop-the-transmitter window still needs a
//!   1 Mb buffer,
//!
//! both of which dwarf the cost of simply going back N. This module encodes
//! that arithmetic.

/// Buffer-sizing model for a link of a given bandwidth.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BufferingModel {
    /// Link bandwidth in bits per second.
    pub link_bits_per_second: f64,
}

impl Default for BufferingModel {
    fn default() -> Self {
        Self::cxl3_x16()
    }
}

impl BufferingModel {
    /// The paper's ×16 CXL 3.0 link: 1 Tb/s.
    pub fn cxl3_x16() -> Self {
        BufferingModel {
            link_bits_per_second: 1e12,
        }
    }

    /// Bits buffered to absorb `window_seconds` of in-flight traffic.
    pub fn buffer_bits(&self, window_seconds: f64) -> f64 {
        self.link_bits_per_second * window_seconds
    }

    /// Bytes buffered to absorb `window_seconds` of in-flight traffic.
    pub fn buffer_bytes(&self, window_seconds: f64) -> f64 {
        self.buffer_bits(window_seconds) / 8.0
    }

    /// The multi-path reordering case: reassembly buffer for a given
    /// worst-case arrival skew.
    pub fn multipath_reassembly_bytes(&self, skew_seconds: f64) -> f64 {
        self.buffer_bytes(skew_seconds)
    }

    /// The selective-repeat case: buffer for the in-flight window between a
    /// NACK and the transmitter halting.
    pub fn selective_repeat_bytes(&self, halt_window_seconds: f64) -> f64 {
        self.buffer_bytes(halt_window_seconds)
    }

    /// Number of 256-byte flits the buffer must hold for a given window.
    pub fn flits_in_window(&self, window_seconds: f64) -> f64 {
        self.buffer_bytes(window_seconds) / 256.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_multipath_number_1ms_skew_needs_128_megabytes() {
        let m = BufferingModel::cxl3_x16();
        let bits = m.buffer_bits(1e-3);
        let bytes = m.multipath_reassembly_bytes(1e-3);
        assert!((bits - 1e9).abs() < 1.0, "expected 1 Gb, got {bits}");
        assert!(
            (bytes - 1.25e8).abs() < 1.0,
            "expected 125 MB-class buffer, got {bytes}"
        );
        // The paper rounds 1 Gb to "128 MB"; both are within 3% of each other.
        assert!((bytes / (128.0 * 1024.0 * 1024.0) - 0.93).abs() < 0.05);
    }

    #[test]
    fn paper_selective_repeat_number_1us_window_needs_1_megabit() {
        let m = BufferingModel::cxl3_x16();
        let bits = m.buffer_bits(1e-6);
        assert!((bits - 1e6).abs() < 1e-3, "expected 1 Mb, got {bits}");
        assert!((m.selective_repeat_bytes(1e-6) - 125_000.0).abs() < 1e-6);
    }

    #[test]
    fn go_back_n_by_contrast_only_needs_the_replay_window() {
        // The go-back-N replay buffer holds the unacknowledged flits of a
        // 100 ns retry loop: two orders of magnitude below selective repeat.
        let m = BufferingModel::cxl3_x16();
        let flits = m.flits_in_window(100e-9);
        assert!(flits < 100.0, "go-back-N window is tiny: {flits} flits");
        assert!(flits > 10.0);
    }

    #[test]
    fn buffer_size_scales_linearly_with_bandwidth() {
        let slow = BufferingModel {
            link_bits_per_second: 5e11,
        };
        let fast = BufferingModel::cxl3_x16();
        assert!((fast.buffer_bits(1e-6) / slow.buffer_bits(1e-6) - 2.0).abs() < 1e-12);
    }
}
