//! Reliability model: Eqns (1)–(10) of the paper.
//!
//! The model takes the CXL 3.0 ×16 operating point as its default
//! (BER 10⁻⁶, 2048-bit flits, 500 M flits/s, 64-bit CRC, PCIe 6.0's
//! post-FEC uncorrectable bound of 3×10⁻⁵) and exposes each intermediate
//! quantity of Section 7.1 so harnesses can print them next to the paper's
//! numbers.

/// Hours per 10⁹ device-hours, used by the FIT definition.
const FIT_HOURS: f64 = 1e9;
/// Seconds per hour.
const SECONDS_PER_HOUR: f64 = 3_600.0;

/// The analytic reliability model of Section 7.1.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ReliabilityModel {
    /// Raw bit error rate of each link.
    pub ber: f64,
    /// Flit size in bits (2048 for 256-byte flits).
    pub flit_bits: u32,
    /// Post-FEC uncorrectable flit error rate per link (PCIe 6.0 bound).
    pub fer_uc: f64,
    /// Width of the end-to-end CRC in bits.
    pub crc_bits: u32,
    /// Flits transferred per second by the device under analysis.
    pub flits_per_second: f64,
    /// Fraction of flits that carry an AckNum instead of their own SeqNum
    /// (the paper's `p_coalescing`).
    pub p_coalescing: f64,
}

impl Default for ReliabilityModel {
    fn default() -> Self {
        Self::cxl3_x16()
    }
}

impl ReliabilityModel {
    /// The paper's ×16 CXL 3.0 operating point.
    pub fn cxl3_x16() -> Self {
        ReliabilityModel {
            ber: 1e-6,
            flit_bits: 2048,
            fer_uc: 3.0e-5,
            crc_bits: 64,
            flits_per_second: 500_000_000.0,
            p_coalescing: 0.1,
        }
    }

    /// Eqn (1): flit error rate before FEC, `1 − (1 − BER)^flit_bits`.
    pub fn fer(&self) -> f64 {
        1.0 - (1.0 - self.ber).powi(self.flit_bits as i32)
    }

    /// Eqn (2): uncorrectable flit error rate after FEC (per link).
    pub fn fer_uncorrectable(&self) -> f64 {
        self.fer_uc
    }

    /// Eqn (3): fraction of erroneous flits the FEC corrects.
    pub fn fec_correction_fraction(&self) -> f64 {
        1.0 - self.fer_uc / self.fer()
    }

    /// The CRC's undetected-error fraction, `2^-crc_bits`.
    pub fn crc_escape_fraction(&self) -> f64 {
        2f64.powi(-(self.crc_bits as i32))
    }

    /// Eqn (4): undetectable flit error rate for a direct connection.
    pub fn fer_undetected_direct(&self) -> f64 {
        self.fer_uc * self.crc_escape_fraction()
    }

    /// Converts a per-flit failure probability into a FIT rate
    /// (failures per 10⁹ device-hours) at this device's flit rate —
    /// the conversion used by Eqns (5), (8) and (10).
    pub fn fit_from_failure_rate(&self, per_flit_failure: f64) -> f64 {
        per_flit_failure * self.flits_per_second * SECONDS_PER_HOUR * FIT_HOURS
    }

    /// Eqn (5): FIT of a CXL device on a direct connection.
    pub fn fit_cxl_direct(&self) -> f64 {
        self.fit_from_failure_rate(self.fer_undetected_direct())
    }

    /// Eqn (6): per-endpoint flit-drop rate behind one switch level.
    pub fn fer_drop_single_switch(&self) -> f64 {
        self.fer_uc
    }

    /// Eqn (7): ordering-failure rate of baseline CXL behind one switch
    /// (a dropped flit whose successor carries an AckNum goes unnoticed).
    pub fn fer_order_single_switch(&self) -> f64 {
        self.fer_drop_single_switch() * self.p_coalescing
    }

    /// Eqn (8): FIT of baseline CXL behind one switch level.
    pub fn fit_cxl_single_switch(&self) -> f64 {
        self.fit_from_failure_rate(self.fer_order_single_switch())
    }

    /// Eqn (9): undetected failure rate of RXL behind one switch level.
    ///
    /// Flits that arrive erroneous (rate ≈ FER_UC per hop, the retried drops
    /// adding a second-order `FER_UC²` term) escape the 64-bit ECRC with
    /// probability 2⁻⁶⁴. The paper's Eqn (9) prints the expression as
    /// `(1 + FER_UC)·2⁻⁶⁴` but evaluates it to 1.6×10⁻²⁴, which corresponds
    /// to `FER_UC·(1 + FER_UC)·2⁻⁶⁴`; this model follows the evaluated
    /// number (and Eqn (4), with which it is consistent).
    pub fn fer_undetected_rxl_single_switch(&self) -> f64 {
        self.fer_uc * (1.0 + self.fer_uc) * self.crc_escape_fraction()
    }

    /// Eqn (10): FIT of RXL behind one switch level.
    pub fn fit_rxl_single_switch(&self) -> f64 {
        self.fit_from_failure_rate(self.fer_undetected_rxl_single_switch())
    }

    /// Generalisation used by Fig. 8: ordering-failure rate of baseline CXL
    /// behind `levels` switch levels (drops accumulate proportionally).
    pub fn fer_order_multi_switch(&self, levels: u32) -> f64 {
        levels as f64 * self.fer_uc * self.p_coalescing
    }

    /// Generalisation used by Fig. 8: FIT of baseline CXL behind `levels`
    /// switch levels. Level 0 is the direct connection.
    pub fn fit_cxl_levels(&self, levels: u32) -> f64 {
        if levels == 0 {
            self.fit_cxl_direct()
        } else {
            self.fit_from_failure_rate(self.fer_order_multi_switch(levels))
        }
    }

    /// Generalisation used by Fig. 8: FIT of RXL behind `levels` switch
    /// levels — drops are always detected and retried, so only erroneous
    /// arrivals escaping the 64-bit ECRC remain; each additional hop adds a
    /// (negligible) `FER_UC` of extra exposure.
    pub fn fit_rxl_levels(&self, levels: u32) -> f64 {
        let erroneous_arrival_rate = self.fer_uc * (1.0 + levels as f64 * self.fer_uc);
        self.fit_from_failure_rate(erroneous_arrival_rate * self.crc_escape_fraction())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, rel: f64) -> bool {
        if b == 0.0 {
            return a == 0.0;
        }
        ((a - b) / b).abs() < rel
    }

    #[test]
    fn eqn1_fer_matches_the_paper() {
        let m = ReliabilityModel::cxl3_x16();
        assert!(close(m.fer(), 2.0e-3, 0.05), "FER = {}", m.fer());
    }

    #[test]
    fn eqn3_fec_corrects_more_than_98_5_percent() {
        let m = ReliabilityModel::cxl3_x16();
        assert!(m.fec_correction_fraction() > 0.985);
        assert!(m.fec_correction_fraction() < 1.0);
    }

    #[test]
    fn eqn4_undetected_rate_matches_the_paper() {
        let m = ReliabilityModel::cxl3_x16();
        assert!(
            close(m.fer_undetected_direct(), 1.6e-24, 0.05),
            "FER_UD = {}",
            m.fer_undetected_direct()
        );
    }

    #[test]
    fn eqn5_direct_fit_matches_the_paper() {
        let m = ReliabilityModel::cxl3_x16();
        assert!(
            close(m.fit_cxl_direct(), 2.9e-3, 0.05),
            "FIT = {}",
            m.fit_cxl_direct()
        );
    }

    #[test]
    fn eqn7_ordering_failure_rate_matches_the_paper() {
        let m = ReliabilityModel::cxl3_x16();
        assert!(close(m.fer_order_single_switch(), 3.0e-6, 0.01));
    }

    #[test]
    fn eqn8_switched_cxl_fit_matches_the_paper() {
        let m = ReliabilityModel::cxl3_x16();
        assert!(
            close(m.fit_cxl_single_switch(), 5.4e15, 0.05),
            "FIT = {}",
            m.fit_cxl_single_switch()
        );
    }

    #[test]
    fn eqn9_and_10_rxl_fit_matches_the_paper() {
        let m = ReliabilityModel::cxl3_x16();
        assert!(close(m.fer_undetected_rxl_single_switch(), 1.6e-24, 0.05));
        assert!(
            close(m.fit_rxl_single_switch(), 2.9e-3, 0.05),
            "FIT = {}",
            m.fit_rxl_single_switch()
        );
    }

    #[test]
    fn the_reliability_gap_is_about_eighteen_orders_of_magnitude() {
        let m = ReliabilityModel::cxl3_x16();
        let ratio = m.fit_cxl_single_switch() / m.fit_rxl_single_switch();
        assert!(ratio > 1e18, "ratio = {ratio:e}");
        assert!(ratio < 1e19, "ratio = {ratio:e}");
    }

    #[test]
    fn multi_level_generalisation_is_monotonic_for_cxl_and_flat_for_rxl() {
        let m = ReliabilityModel::cxl3_x16();
        assert_eq!(m.fit_cxl_levels(0), m.fit_cxl_direct());
        assert_eq!(m.fit_cxl_levels(1), m.fit_cxl_single_switch());
        let mut prev = m.fit_cxl_levels(1);
        for levels in 2..=4 {
            let fit = m.fit_cxl_levels(levels);
            assert!(fit > prev);
            prev = fit;
        }
        // RXL stays within a factor of ~2 of its direct-connection FIT even
        // at four switching levels.
        let rxl_direct = m.fit_rxl_levels(0);
        let rxl_deep = m.fit_rxl_levels(4);
        assert!(rxl_deep / rxl_direct < 2.0);
        assert!(rxl_deep >= rxl_direct);
    }

    #[test]
    fn fit_conversion_uses_the_papers_constants() {
        let m = ReliabilityModel::cxl3_x16();
        // 1 failure per flit → flits/s · 3600 · 1e9 FIT.
        let fit = m.fit_from_failure_rate(1.0);
        assert!(close(fit, 500_000_000.0 * 3_600.0 * 1e9, 1e-12));
    }
}
