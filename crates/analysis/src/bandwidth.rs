//! Bandwidth-loss model: Eqns (11)–(14) of the paper.
//!
//! A ×16 CXL 3.0 link serialises one 256-byte flit every 2 ns. A go-back-N
//! retry occupies the link for the retry latency (100 ns) on top of the
//! flit time. The bandwidth loss of a protection scheme is the fraction of
//! link time not spent on first-time flit delivery.

/// The analytic bandwidth model of Section 7.2.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BandwidthModel {
    /// Time to serialise one flit, in nanoseconds.
    pub flit_time_ns: f64,
    /// Go-back-N retry penalty, in nanoseconds.
    pub retry_latency_ns: f64,
    /// Post-FEC uncorrectable flit error rate per link.
    pub fer_uc: f64,
}

impl Default for BandwidthModel {
    fn default() -> Self {
        Self::cxl3_x16()
    }
}

impl BandwidthModel {
    /// The paper's operating point: 2 ns flits, 100 ns retry, FER_UC 3×10⁻⁵.
    pub fn cxl3_x16() -> Self {
        BandwidthModel {
            flit_time_ns: 2.0,
            retry_latency_ns: 100.0,
            fer_uc: 3.0e-5,
        }
    }

    /// Generic go-back-N loss for a path whose per-flit retry probability is
    /// `retry_rate`: Eqns (11), (12) and (14) all instantiate this with a
    /// different retry rate.
    pub fn go_back_n_loss(&self, retry_rate: f64) -> f64 {
        let good = (1.0 - retry_rate) * self.flit_time_ns;
        let retried = retry_rate * (self.flit_time_ns + self.retry_latency_ns);
        1.0 - self.flit_time_ns / (good + retried)
    }

    /// Eqn (11): bandwidth loss of CXL on a direct connection
    /// (retry rate = FER_UC on the single link).
    pub fn loss_cxl_direct(&self) -> f64 {
        self.go_back_n_loss(self.fer_uc)
    }

    /// Eqns (12)/(14): bandwidth loss over a path of `links` hops with
    /// piggybacked ACKs (CXL) or ISN (RXL): every hop's uncorrectable flits
    /// eventually trigger one end-to-end retry.
    pub fn loss_switched_path(&self, links: u32) -> f64 {
        self.go_back_n_loss(links as f64 * self.fer_uc)
    }

    /// Eqn (12): the paper's two-link (single switch) CXL-with-piggybacking
    /// case.
    pub fn loss_cxl_switched_piggyback(&self) -> f64 {
        self.loss_switched_path(2)
    }

    /// Eqn (14): RXL over the same two-link path — identical retry volume,
    /// since ISN turns every drop into an ordinary retry.
    pub fn loss_rxl_switched(&self) -> f64 {
        self.loss_switched_path(2)
    }

    /// Eqn (13): bandwidth loss of the standalone-ACK alternative, equal to
    /// the fraction of flits that are ACK-only (`p_coalescing`).
    pub fn loss_standalone_ack(&self, p_coalescing: f64) -> f64 {
        assert!((0.0..=1.0).contains(&p_coalescing));
        p_coalescing
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, rel: f64) -> bool {
        ((a - b) / b).abs() < rel
    }

    #[test]
    fn eqn11_direct_loss_is_about_0_15_percent() {
        let m = BandwidthModel::cxl3_x16();
        assert!(
            close(m.loss_cxl_direct(), 0.0015, 0.05),
            "loss = {}",
            m.loss_cxl_direct()
        );
    }

    #[test]
    fn eqn12_switched_piggyback_loss_is_about_0_3_percent() {
        let m = BandwidthModel::cxl3_x16();
        assert!(
            close(m.loss_cxl_switched_piggyback(), 0.0030, 0.05),
            "loss = {}",
            m.loss_cxl_switched_piggyback()
        );
    }

    #[test]
    fn eqn14_rxl_loss_equals_the_cxl_piggyback_loss() {
        let m = BandwidthModel::cxl3_x16();
        assert_eq!(m.loss_rxl_switched(), m.loss_cxl_switched_piggyback());
    }

    #[test]
    fn eqn13_standalone_ack_loss_equals_p_coalescing() {
        let m = BandwidthModel::cxl3_x16();
        assert_eq!(m.loss_standalone_ack(1.0), 1.0);
        assert_eq!(m.loss_standalone_ack(0.1), 0.1);
        assert_eq!(m.loss_standalone_ack(0.0), 0.0);
    }

    #[test]
    fn loss_grows_monotonically_with_path_length() {
        let m = BandwidthModel::cxl3_x16();
        let mut prev = 0.0;
        for links in 1..=5 {
            let loss = m.loss_switched_path(links);
            assert!(loss > prev);
            prev = loss;
        }
    }

    #[test]
    fn zero_error_rate_means_zero_loss() {
        let m = BandwidthModel {
            fer_uc: 0.0,
            ..BandwidthModel::cxl3_x16()
        };
        assert_eq!(m.loss_cxl_direct(), 0.0);
    }

    #[test]
    #[should_panic]
    fn invalid_coalescing_fraction_is_rejected() {
        let m = BandwidthModel::cxl3_x16();
        let _ = m.loss_standalone_ack(1.5);
    }
}
