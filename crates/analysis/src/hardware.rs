//! Gate-level cost model for the ISN hardware argument (Section 7.3).
//!
//! The paper argues that folding the 10-bit sequence number into the CRC
//! datapath costs only ten parallel XOR gates and one extra level of logic
//! depth at each of the encoder and decoder, while *removing* the 10-bit
//! comparator that previously matched SeqNum against ESeqNum. This module
//! provides a simple, explicit gate-counting model so the claim can be
//! reproduced as a table.

/// Rough gate counts for one CRC encoder/decoder datapath plus the sequence
/// handling around it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HardwareCostModel {
    /// CRC width in bits.
    pub crc_bits: u32,
    /// CRC input width in bits (header + payload for a 256B flit).
    pub input_bits: u32,
    /// Sequence-number width in bits.
    pub seq_bits: u32,
}

/// The incremental hardware cost (or saving) of switching to ISN.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct IsnHardwareDelta {
    /// Extra 2-input XOR gates in the encoder datapath.
    pub encoder_extra_xors: u32,
    /// Extra 2-input XOR gates in the decoder datapath.
    pub decoder_extra_xors: u32,
    /// Extra levels of logic depth on the CRC path.
    pub extra_logic_depth: u32,
    /// 2-input gates saved by removing the explicit SeqNum comparator
    /// (XNOR per bit plus an AND-reduce tree).
    pub comparator_gates_removed: u32,
}

impl IsnHardwareDelta {
    /// Net change in 2-input gate count (positive = ISN uses more gates).
    pub fn net_gates(&self) -> i64 {
        self.encoder_extra_xors as i64 + self.decoder_extra_xors as i64
            - self.comparator_gates_removed as i64
    }
}

impl Default for HardwareCostModel {
    fn default() -> Self {
        Self::cxl_flit()
    }
}

impl HardwareCostModel {
    /// The CXL 256-byte flit datapath: 64-bit CRC over 242 input bytes,
    /// 10-bit sequence number.
    pub fn cxl_flit() -> Self {
        HardwareCostModel {
            crc_bits: 64,
            input_bits: 242 * 8,
            seq_bits: 10,
        }
    }

    /// Estimated 2-input XOR gates of a fully parallel CRC encoder
    /// (each output bit is the XOR of roughly half the input + state bits).
    pub fn baseline_crc_xor_gates(&self) -> u64 {
        let terms_per_output = (self.input_bits as u64 + self.crc_bits as u64) / 2;
        // An XOR tree over `n` terms needs `n − 1` 2-input gates.
        self.crc_bits as u64 * terms_per_output.saturating_sub(1)
    }

    /// Estimated logic depth (levels of 2-input XOR) of the baseline CRC.
    pub fn baseline_crc_depth(&self) -> u32 {
        let terms_per_output = (self.input_bits + self.crc_bits) / 2;
        (terms_per_output as f64).log2().ceil() as u32
    }

    /// Gate count of the explicit SeqNum/ESeqNum comparator that baseline CXL
    /// needs and ISN removes: one XNOR per bit plus an AND-reduce tree.
    pub fn seqnum_comparator_gates(&self) -> u32 {
        self.seq_bits + (self.seq_bits - 1)
    }

    /// The ISN delta of Section 7.3.
    pub fn isn_delta(&self) -> IsnHardwareDelta {
        IsnHardwareDelta {
            encoder_extra_xors: self.seq_bits,
            decoder_extra_xors: self.seq_bits,
            extra_logic_depth: 1,
            comparator_gates_removed: self.seqnum_comparator_gates(),
        }
    }

    /// The relative area increase of the CRC datapath due to ISN.
    pub fn relative_area_increase(&self) -> f64 {
        let delta = self.isn_delta();
        (delta.encoder_extra_xors + delta.decoder_extra_xors) as f64
            / (2.0 * self.baseline_crc_xor_gates() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn isn_adds_ten_xors_per_side_and_one_depth_level() {
        let m = HardwareCostModel::cxl_flit();
        let d = m.isn_delta();
        assert_eq!(d.encoder_extra_xors, 10);
        assert_eq!(d.decoder_extra_xors, 10);
        assert_eq!(d.extra_logic_depth, 1);
    }

    #[test]
    fn isn_removes_the_explicit_comparator() {
        let m = HardwareCostModel::cxl_flit();
        assert_eq!(m.seqnum_comparator_gates(), 19);
        let d = m.isn_delta();
        // Net cost: 20 XORs added, 19 comparator gates removed → ~1 gate.
        assert_eq!(d.net_gates(), 1);
    }

    #[test]
    fn isn_overhead_is_negligible_relative_to_the_crc_datapath() {
        let m = HardwareCostModel::cxl_flit();
        assert!(m.baseline_crc_xor_gates() > 10_000);
        assert!(m.relative_area_increase() < 1e-3);
        assert!(m.baseline_crc_depth() >= 8);
    }

    #[test]
    fn smaller_sequence_numbers_cost_less() {
        let small = HardwareCostModel {
            seq_bits: 8,
            ..HardwareCostModel::cxl_flit()
        };
        assert_eq!(small.isn_delta().encoder_extra_xors, 8);
        assert!(
            small.seqnum_comparator_gates()
                < HardwareCostModel::cxl_flit().seqnum_comparator_gates()
        );
    }
}
