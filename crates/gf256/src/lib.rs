//! # rxl-gf256 — Galois field GF(2^8) arithmetic
//!
//! Finite-field arithmetic substrate for the shortened Reed–Solomon forward
//! error correction (FEC) used by CXL 3.x 256-byte flits and by the RXL
//! protocol reproduction (see the `rxl-fec` crate).
//!
//! The field is GF(2^8) constructed over the primitive polynomial
//! `x^8 + x^4 + x^3 + x^2 + 1` (0x11D), the conventional choice for
//! byte-oriented Reed–Solomon codes (e.g. RS(255, k) codes in storage and
//! wired-communication standards). Elements are represented as `u8`.
//!
//! The crate provides:
//!
//! * [`Gf256`] — a copyable field-element wrapper with `+`, `-`, `*`, `/`
//!   operator overloads (addition and subtraction are both XOR),
//! * [`tables`] — precomputed exponent/logarithm tables built at first use,
//! * [`nibble`] — branch-free multiplication by a fixed constant via two
//!   16-entry half-tables, the vectorizable shape the FEC hot loops use,
//! * [`poly`] — dense polynomials over GF(2^8) (evaluation, arithmetic,
//!   formal derivative) used by the Reed–Solomon encoder and decoder.
//!
//! # Example
//!
//! ```
//! use rxl_gf256::Gf256;
//!
//! let a = Gf256::new(0x53);
//! let b = Gf256::new(0xCA);
//! let p = a * b;
//! // Multiplication is invertible for non-zero elements.
//! assert_eq!(p / b, a);
//! // Addition is XOR, so every element is its own additive inverse.
//! assert_eq!(a + a, Gf256::ZERO);
//! ```

pub mod field;
pub mod nibble;
pub mod poly;
pub mod tables;

pub use field::Gf256;
pub use nibble::ConstMul;
pub use poly::GfPoly;
pub use tables::{exp_table, log_table, GF256_PRIMITIVE_POLY};
