//! The [`Gf256`] field-element type with operator overloads.

use core::fmt;
use core::iter::{Product, Sum};
use core::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

use crate::tables;

/// An element of GF(2^8) over the primitive polynomial 0x11D.
///
/// Addition and subtraction are both bitwise XOR; multiplication and division
/// are table-driven. The type is a transparent wrapper over `u8`, so slices of
/// `Gf256` can be reinterpreted as byte slices where needed.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
#[repr(transparent)]
pub struct Gf256(pub u8);

impl Gf256 {
    /// The additive identity.
    pub const ZERO: Gf256 = Gf256(0);
    /// The multiplicative identity.
    pub const ONE: Gf256 = Gf256(1);
    /// The generator α of the multiplicative group.
    pub const ALPHA: Gf256 = Gf256(tables::GF256_GENERATOR);

    /// Wraps a raw byte as a field element.
    #[inline]
    pub const fn new(v: u8) -> Self {
        Gf256(v)
    }

    /// Returns the raw byte value.
    #[inline]
    pub const fn value(self) -> u8 {
        self.0
    }

    /// Returns `true` if this is the additive identity.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Returns α^i (the `i`-th power of the generator).
    #[inline]
    pub fn alpha_pow(i: u32) -> Self {
        Gf256(tables::pow(tables::GF256_GENERATOR, i))
    }

    /// Multiplicative inverse. Panics on zero.
    #[inline]
    pub fn inverse(self) -> Self {
        Gf256(tables::inv(self.0))
    }

    /// Checked multiplicative inverse; returns `None` for zero.
    #[inline]
    pub fn checked_inverse(self) -> Option<Self> {
        if self.is_zero() {
            None
        } else {
            Some(self.inverse())
        }
    }

    /// Exponentiation `self^n`.
    #[inline]
    pub fn pow(self, n: u32) -> Self {
        Gf256(tables::pow(self.0, n))
    }

    /// Discrete logarithm base α. Returns `None` for zero.
    #[inline]
    pub fn log(self) -> Option<u8> {
        if self.is_zero() {
            None
        } else {
            Some(tables::log_table()[self.0 as usize])
        }
    }

    /// Reinterprets a byte slice as a slice of field elements (zero-cost).
    #[inline]
    pub fn from_bytes(bytes: &[u8]) -> &[Gf256] {
        // SAFETY: Gf256 is #[repr(transparent)] over u8.
        unsafe { core::slice::from_raw_parts(bytes.as_ptr() as *const Gf256, bytes.len()) }
    }

    /// Reinterprets a slice of field elements as bytes (zero-cost).
    #[inline]
    pub fn as_bytes(elems: &[Gf256]) -> &[u8] {
        // SAFETY: Gf256 is #[repr(transparent)] over u8.
        unsafe { core::slice::from_raw_parts(elems.as_ptr() as *const u8, elems.len()) }
    }
}

impl fmt::Debug for Gf256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Gf256(0x{:02X})", self.0)
    }
}

impl fmt::Display for Gf256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0x{:02X}", self.0)
    }
}

impl From<u8> for Gf256 {
    #[inline]
    fn from(v: u8) -> Self {
        Gf256(v)
    }
}

impl From<Gf256> for u8 {
    #[inline]
    fn from(v: Gf256) -> Self {
        v.0
    }
}

impl Add for Gf256 {
    type Output = Gf256;
    // In GF(2^8) addition *is* XOR; clippy cannot know this is not a typo.
    #[allow(clippy::suspicious_arithmetic_impl)]
    #[inline]
    fn add(self, rhs: Gf256) -> Gf256 {
        Gf256(self.0 ^ rhs.0)
    }
}

impl AddAssign for Gf256 {
    #[allow(clippy::suspicious_op_assign_impl)]
    #[inline]
    fn add_assign(&mut self, rhs: Gf256) {
        self.0 ^= rhs.0;
    }
}

impl Sub for Gf256 {
    type Output = Gf256;
    #[allow(clippy::suspicious_arithmetic_impl)]
    #[inline]
    fn sub(self, rhs: Gf256) -> Gf256 {
        // Characteristic 2: subtraction is identical to addition.
        Gf256(self.0 ^ rhs.0)
    }
}

impl SubAssign for Gf256 {
    #[allow(clippy::suspicious_op_assign_impl)]
    #[inline]
    fn sub_assign(&mut self, rhs: Gf256) {
        self.0 ^= rhs.0;
    }
}

impl Neg for Gf256 {
    type Output = Gf256;
    #[inline]
    fn neg(self) -> Gf256 {
        self
    }
}

impl Mul for Gf256 {
    type Output = Gf256;
    #[inline]
    fn mul(self, rhs: Gf256) -> Gf256 {
        Gf256(tables::mul(self.0, rhs.0))
    }
}

impl MulAssign for Gf256 {
    #[inline]
    fn mul_assign(&mut self, rhs: Gf256) {
        self.0 = tables::mul(self.0, rhs.0);
    }
}

impl Div for Gf256 {
    type Output = Gf256;
    #[inline]
    fn div(self, rhs: Gf256) -> Gf256 {
        Gf256(tables::div(self.0, rhs.0))
    }
}

impl DivAssign for Gf256 {
    #[inline]
    fn div_assign(&mut self, rhs: Gf256) {
        self.0 = tables::div(self.0, rhs.0);
    }
}

impl Sum for Gf256 {
    fn sum<I: Iterator<Item = Gf256>>(iter: I) -> Gf256 {
        iter.fold(Gf256::ZERO, |a, b| a + b)
    }
}

impl Product for Gf256 {
    fn product<I: Iterator<Item = Gf256>>(iter: I) -> Gf256 {
        iter.fold(Gf256::ONE, |a, b| a * b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn additive_identity_and_self_inverse() {
        for a in 0..=255u16 {
            let a = Gf256::new(a as u8);
            assert_eq!(a + Gf256::ZERO, a);
            assert_eq!(a + a, Gf256::ZERO);
            assert_eq!(-a, a);
            assert_eq!(a - a, Gf256::ZERO);
        }
    }

    #[test]
    fn multiplicative_identity() {
        for a in 0..=255u16 {
            let a = Gf256::new(a as u8);
            assert_eq!(a * Gf256::ONE, a);
            assert_eq!(Gf256::ONE * a, a);
            assert_eq!(a * Gf256::ZERO, Gf256::ZERO);
        }
    }

    #[test]
    fn alpha_generates_the_multiplicative_group() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..255 {
            seen.insert(Gf256::alpha_pow(i).value());
        }
        assert_eq!(seen.len(), 255);
        assert!(!seen.contains(&0));
    }

    #[test]
    fn log_round_trips() {
        for a in 1..=255u16 {
            let a = Gf256::new(a as u8);
            let l = a.log().unwrap() as u32;
            assert_eq!(Gf256::alpha_pow(l), a);
        }
        assert_eq!(Gf256::ZERO.log(), None);
    }

    #[test]
    fn checked_inverse() {
        assert_eq!(Gf256::ZERO.checked_inverse(), None);
        for a in 1..=255u16 {
            let a = Gf256::new(a as u8);
            assert_eq!(a * a.checked_inverse().unwrap(), Gf256::ONE);
        }
    }

    #[test]
    fn sum_and_product_fold() {
        let elems = [Gf256::new(3), Gf256::new(5), Gf256::new(3)];
        let s: Gf256 = elems.iter().copied().sum();
        assert_eq!(s, Gf256::new(5));
        let p: Gf256 = elems.iter().copied().product();
        assert_eq!(p, Gf256::new(3) * Gf256::new(5) * Gf256::new(3));
    }

    #[test]
    fn byte_slice_round_trip() {
        let bytes = [1u8, 2, 3, 250];
        let elems = Gf256::from_bytes(&bytes);
        assert_eq!(elems.len(), 4);
        assert_eq!(elems[3], Gf256::new(250));
        assert_eq!(Gf256::as_bytes(elems), &bytes);
    }

    #[test]
    fn display_and_debug() {
        assert_eq!(format!("{}", Gf256::new(0xAB)), "0xAB");
        assert_eq!(format!("{:?}", Gf256::new(0x0F)), "Gf256(0x0F)");
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn addition_is_commutative(a: u8, b: u8) {
                let (a, b) = (Gf256::new(a), Gf256::new(b));
                prop_assert_eq!(a + b, b + a);
            }

            #[test]
            fn multiplication_is_commutative(a: u8, b: u8) {
                let (a, b) = (Gf256::new(a), Gf256::new(b));
                prop_assert_eq!(a * b, b * a);
            }

            #[test]
            fn multiplication_is_associative(a: u8, b: u8, c: u8) {
                let (a, b, c) = (Gf256::new(a), Gf256::new(b), Gf256::new(c));
                prop_assert_eq!((a * b) * c, a * (b * c));
            }

            #[test]
            fn addition_is_associative(a: u8, b: u8, c: u8) {
                let (a, b, c) = (Gf256::new(a), Gf256::new(b), Gf256::new(c));
                prop_assert_eq!((a + b) + c, a + (b + c));
            }

            #[test]
            fn distributive_law(a: u8, b: u8, c: u8) {
                let (a, b, c) = (Gf256::new(a), Gf256::new(b), Gf256::new(c));
                prop_assert_eq!(a * (b + c), a * b + a * c);
            }

            #[test]
            fn division_inverts_multiplication(a: u8, b in 1u8..=255) {
                let (a, b) = (Gf256::new(a), Gf256::new(b));
                prop_assert_eq!((a * b) / b, a);
            }

            #[test]
            fn pow_adds_exponents(a in 1u8..=255, m in 0u32..300, n in 0u32..300) {
                let a = Gf256::new(a);
                prop_assert_eq!(a.pow(m) * a.pow(n), a.pow(m + n));
            }
        }
    }
}
