//! Nibble-split constant multiplication in GF(2^8).
//!
//! Multiplying a stream of bytes by one *fixed* field constant is the inner
//! loop of every Reed–Solomon syndrome accumulation and LFSR encode pass.
//! The log/exp route costs two dependent table lookups plus a zero branch
//! per byte, and a full 256-entry product table per constant costs 256
//! bytes of cache. GF(2)-linearity of carry-less multiplication gives a
//! cheaper shape: with `x = x_hi·16 ⊕ x_lo`,
//!
//! ```text
//! c·x = c·x_lo ⊕ c·(x_hi·16)
//! ```
//!
//! so two 16-entry half-tables per constant answer any byte with two loads
//! and one XOR — 32 bytes of table per constant instead of 256, branch-free,
//! and exactly the shape compilers turn into 16-lane byte shuffles
//! (`pshufb`/`tbl`) when the surrounding loop vectorizes. [`ConstMul`]
//! builds both half-tables in a `const fn`, so the FEC codecs' generator
//! constants cost nothing at runtime and live in `.rodata`.

use crate::tables::GF256_PRIMITIVE_POLY;

/// Carry-less ("Russian peasant") multiplication, `const` so half-tables
/// can be built at compile time. Mirrors [`crate::tables::mul_slow`], which
/// stays the documented reference implementation for tests.
const fn mul_const(mut a: u8, mut b: u8) -> u8 {
    let mut acc: u8 = 0;
    while b != 0 {
        if b & 1 != 0 {
            acc ^= a;
        }
        let carry = a & 0x80 != 0;
        a <<= 1;
        if carry {
            a ^= (GF256_PRIMITIVE_POLY & 0xFF) as u8;
        }
        b >>= 1;
    }
    acc
}

/// Multiplication by one fixed GF(2^8) constant via two 16-entry
/// half-tables (see the module docs for the decomposition).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ConstMul {
    /// `lo[n] = c · n` for the low nibble `n`.
    lo: [u8; 16],
    /// `hi[n] = c · (n << 4)` for the high nibble `n`.
    hi: [u8; 16],
}

impl ConstMul {
    /// Builds the half-tables for multiplication by `c`.
    pub const fn new(c: u8) -> Self {
        let mut lo = [0u8; 16];
        let mut hi = [0u8; 16];
        let mut n = 0;
        while n < 16 {
            lo[n] = mul_const(c, n as u8);
            hi[n] = mul_const(c, (n as u8) << 4);
            n += 1;
        }
        ConstMul { lo, hi }
    }

    /// `c · x`.
    #[inline(always)]
    pub fn mul(&self, x: u8) -> u8 {
        self.lo[(x & 0x0F) as usize] ^ self.hi[(x >> 4) as usize]
    }

    /// The constant this table multiplies by (`c = c · 1`).
    pub fn constant(&self) -> u8 {
        self.lo[1]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tables::{mul, mul_slow};

    #[test]
    fn const_fn_mul_matches_the_reference() {
        for a in 0..=255u16 {
            for b in 0..=255u16 {
                assert_eq!(mul_const(a as u8, b as u8), mul_slow(a as u8, b as u8));
            }
        }
    }

    #[test]
    fn nibble_split_matches_full_multiplication_for_every_constant() {
        for c in 0..=255u16 {
            let table = ConstMul::new(c as u8);
            assert_eq!(table.constant(), c as u8);
            for x in 0..=255u16 {
                assert_eq!(
                    table.mul(x as u8),
                    mul(c as u8, x as u8),
                    "mismatch at {c} * {x}"
                );
            }
        }
    }

    #[test]
    fn half_tables_are_buildable_in_const_context() {
        const ALPHA: ConstMul = ConstMul::new(0x02);
        assert_eq!(ALPHA.mul(0x80), (GF256_PRIMITIVE_POLY & 0xFF) as u8);
        assert_eq!(ALPHA.mul(0x01), 0x02);
    }
}
