//! Dense polynomials over GF(2^8).
//!
//! [`GfPoly`] stores coefficients in *ascending* degree order
//! (`coeffs[i]` is the coefficient of `x^i`). It supports the operations
//! needed by a Reed–Solomon codec: addition, multiplication, scaling,
//! evaluation (Horner), Euclidean division, and the formal derivative used by
//! Forney's algorithm.

use crate::field::Gf256;
use core::fmt;

/// A polynomial over GF(2^8) with coefficients in ascending degree order.
#[derive(Clone, PartialEq, Eq, Default)]
pub struct GfPoly {
    coeffs: Vec<Gf256>,
}

impl GfPoly {
    /// The zero polynomial.
    pub fn zero() -> Self {
        GfPoly { coeffs: Vec::new() }
    }

    /// The constant polynomial `1`.
    pub fn one() -> Self {
        GfPoly {
            coeffs: vec![Gf256::ONE],
        }
    }

    /// Builds a polynomial from coefficients in ascending degree order.
    /// Trailing zeros are trimmed.
    pub fn from_coeffs(coeffs: Vec<Gf256>) -> Self {
        let mut p = GfPoly { coeffs };
        p.trim();
        p
    }

    /// Builds a polynomial from raw bytes in ascending degree order.
    pub fn from_bytes(bytes: &[u8]) -> Self {
        Self::from_coeffs(bytes.iter().map(|&b| Gf256::new(b)).collect())
    }

    /// The monomial `c * x^degree`.
    pub fn monomial(degree: usize, c: Gf256) -> Self {
        if c.is_zero() {
            return Self::zero();
        }
        let mut coeffs = vec![Gf256::ZERO; degree + 1];
        coeffs[degree] = c;
        GfPoly { coeffs }
    }

    /// Returns `true` for the zero polynomial.
    pub fn is_zero(&self) -> bool {
        self.coeffs.is_empty()
    }

    /// Degree of the polynomial; the zero polynomial reports degree 0.
    pub fn degree(&self) -> usize {
        self.coeffs.len().saturating_sub(1)
    }

    /// The coefficient of `x^i` (zero if beyond the stored length).
    pub fn coeff(&self, i: usize) -> Gf256 {
        self.coeffs.get(i).copied().unwrap_or(Gf256::ZERO)
    }

    /// The coefficients in ascending degree order (no trailing zeros).
    pub fn coeffs(&self) -> &[Gf256] {
        &self.coeffs
    }

    /// The leading (highest-degree) coefficient; zero for the zero polynomial.
    pub fn leading(&self) -> Gf256 {
        self.coeffs.last().copied().unwrap_or(Gf256::ZERO)
    }

    fn trim(&mut self) {
        while self.coeffs.last().is_some_and(|c| c.is_zero()) {
            self.coeffs.pop();
        }
    }

    /// Evaluates the polynomial at `x` using Horner's rule.
    pub fn eval(&self, x: Gf256) -> Gf256 {
        let mut acc = Gf256::ZERO;
        for &c in self.coeffs.iter().rev() {
            acc = acc * x + c;
        }
        acc
    }

    /// Polynomial addition (which, in characteristic 2, is also subtraction).
    pub fn add(&self, other: &GfPoly) -> GfPoly {
        let n = self.coeffs.len().max(other.coeffs.len());
        let mut out = Vec::with_capacity(n);
        for i in 0..n {
            out.push(self.coeff(i) + other.coeff(i));
        }
        GfPoly::from_coeffs(out)
    }

    /// Polynomial multiplication (schoolbook; code polynomials are short).
    pub fn mul(&self, other: &GfPoly) -> GfPoly {
        if self.is_zero() || other.is_zero() {
            return GfPoly::zero();
        }
        let mut out = vec![Gf256::ZERO; self.coeffs.len() + other.coeffs.len() - 1];
        for (i, &a) in self.coeffs.iter().enumerate() {
            if a.is_zero() {
                continue;
            }
            for (j, &b) in other.coeffs.iter().enumerate() {
                out[i + j] += a * b;
            }
        }
        GfPoly::from_coeffs(out)
    }

    /// Multiplies every coefficient by the scalar `s`.
    pub fn scale(&self, s: Gf256) -> GfPoly {
        GfPoly::from_coeffs(self.coeffs.iter().map(|&c| c * s).collect())
    }

    /// Multiplies by `x^n` (shifts coefficients up by `n` degrees).
    pub fn shift_up(&self, n: usize) -> GfPoly {
        if self.is_zero() {
            return GfPoly::zero();
        }
        let mut coeffs = vec![Gf256::ZERO; n];
        coeffs.extend_from_slice(&self.coeffs);
        GfPoly { coeffs }
    }

    /// Euclidean division: returns `(quotient, remainder)` such that
    /// `self = quotient * divisor + remainder` with
    /// `deg(remainder) < deg(divisor)`. Panics if `divisor` is zero.
    pub fn div_rem(&self, divisor: &GfPoly) -> (GfPoly, GfPoly) {
        assert!(!divisor.is_zero(), "polynomial division by zero");
        if self.is_zero() || self.degree() < divisor.degree() {
            return (GfPoly::zero(), self.clone());
        }
        let mut rem = self.coeffs.clone();
        let dlead_inv = divisor.leading().inverse();
        let dd = divisor.degree();
        let mut quot = vec![Gf256::ZERO; self.degree() - dd + 1];
        for i in (dd..rem.len()).rev() {
            let c = rem[i];
            if c.is_zero() {
                continue;
            }
            let q = c * dlead_inv;
            quot[i - dd] = q;
            for (j, &dc) in divisor.coeffs.iter().enumerate() {
                rem[i - dd + j] += q * dc;
            }
        }
        (GfPoly::from_coeffs(quot), GfPoly::from_coeffs(rem))
    }

    /// The formal derivative. In characteristic 2 the even-degree terms of the
    /// derivative vanish: d/dx Σ c_i x^i = Σ_{i odd} c_i x^{i-1}.
    pub fn formal_derivative(&self) -> GfPoly {
        if self.coeffs.len() <= 1 {
            return GfPoly::zero();
        }
        let mut out = vec![Gf256::ZERO; self.coeffs.len() - 1];
        for (i, &c) in self.coeffs.iter().enumerate().skip(1) {
            // i * c in GF(2^m) is c if i is odd, 0 if i is even.
            if i % 2 == 1 {
                out[i - 1] = c;
            }
        }
        GfPoly::from_coeffs(out)
    }

    /// Returns the coefficients as raw bytes (ascending degree order).
    pub fn to_bytes(&self) -> Vec<u8> {
        self.coeffs.iter().map(|c| c.value()).collect()
    }
}

impl fmt::Debug for GfPoly {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return write!(f, "GfPoly(0)");
        }
        write!(f, "GfPoly(")?;
        let mut first = true;
        for (i, c) in self.coeffs.iter().enumerate().rev() {
            if c.is_zero() {
                continue;
            }
            if !first {
                write!(f, " + ")?;
            }
            first = false;
            match i {
                0 => write!(f, "{c}")?,
                1 => write!(f, "{c}·x")?,
                _ => write!(f, "{c}·x^{i}")?,
            }
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(bytes: &[u8]) -> GfPoly {
        GfPoly::from_bytes(bytes)
    }

    #[test]
    fn construction_trims_trailing_zeros() {
        let q = p(&[1, 2, 0, 0]);
        assert_eq!(q.degree(), 1);
        assert_eq!(q.coeffs().len(), 2);
        assert!(p(&[0, 0, 0]).is_zero());
    }

    #[test]
    fn evaluation_horner() {
        // p(x) = 3 + 2x + x^2 over GF(2^8)
        let q = p(&[3, 2, 1]);
        assert_eq!(q.eval(Gf256::ZERO), Gf256::new(3));
        let x = Gf256::new(5);
        let expect = Gf256::new(3) + Gf256::new(2) * x + x * x;
        assert_eq!(q.eval(x), expect);
    }

    #[test]
    fn addition_is_xor_per_coefficient() {
        let a = p(&[1, 2, 3]);
        let b = p(&[3, 2, 1, 7]);
        let s = a.add(&b);
        assert_eq!(s, p(&[2, 0, 2, 7]));
        // Adding a polynomial to itself yields zero.
        assert!(a.add(&a).is_zero());
    }

    #[test]
    fn monomial_and_shift() {
        let m = GfPoly::monomial(3, Gf256::new(7));
        assert_eq!(m.degree(), 3);
        assert_eq!(m.coeff(3), Gf256::new(7));
        let s = p(&[1, 2]).shift_up(2);
        assert_eq!(s, p(&[0, 0, 1, 2]));
        assert!(GfPoly::monomial(5, Gf256::ZERO).is_zero());
    }

    #[test]
    fn multiplication_degree_and_identity() {
        let a = p(&[1, 2, 3]);
        assert_eq!(a.mul(&GfPoly::one()), a);
        assert!(a.mul(&GfPoly::zero()).is_zero());
        let b = p(&[5, 6]);
        assert_eq!(a.mul(&b).degree(), a.degree() + b.degree());
    }

    #[test]
    fn division_round_trips() {
        let a = p(&[7, 1, 9, 4, 250, 3]);
        let d = p(&[3, 0, 1]);
        let (q, r) = a.div_rem(&d);
        assert!(r.degree() < d.degree() || r.is_zero());
        let back = q.mul(&d).add(&r);
        assert_eq!(back, a);
    }

    #[test]
    fn division_by_larger_degree_gives_zero_quotient() {
        let a = p(&[1, 2]);
        let d = p(&[1, 2, 3, 4]);
        let (q, r) = a.div_rem(&d);
        assert!(q.is_zero());
        assert_eq!(r, a);
    }

    #[test]
    #[should_panic]
    fn division_by_zero_polynomial_panics() {
        let _ = p(&[1, 2]).div_rem(&GfPoly::zero());
    }

    #[test]
    fn formal_derivative_drops_even_terms() {
        // p(x) = c0 + c1 x + c2 x^2 + c3 x^3 → p'(x) = c1 + c3 x^2
        let q = p(&[10, 20, 30, 40]);
        let d = q.formal_derivative();
        assert_eq!(d.coeff(0), Gf256::new(20));
        assert_eq!(d.coeff(1), Gf256::ZERO);
        assert_eq!(d.coeff(2), Gf256::new(40));
        assert!(GfPoly::one().formal_derivative().is_zero());
    }

    #[test]
    fn debug_rendering() {
        let q = p(&[1, 0, 3]);
        let s = format!("{q:?}");
        assert!(s.contains("x^2"));
        assert_eq!(format!("{:?}", GfPoly::zero()), "GfPoly(0)");
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        fn arb_poly(max_len: usize) -> impl Strategy<Value = GfPoly> {
            proptest::collection::vec(any::<u8>(), 0..max_len).prop_map(|v| GfPoly::from_bytes(&v))
        }

        proptest! {
            #[test]
            fn mul_is_commutative(a in arb_poly(16), b in arb_poly(16)) {
                prop_assert_eq!(a.mul(&b), b.mul(&a));
            }

            #[test]
            fn mul_distributes_over_add(a in arb_poly(12), b in arb_poly(12), c in arb_poly(12)) {
                prop_assert_eq!(a.mul(&b.add(&c)), a.mul(&b).add(&a.mul(&c)));
            }

            #[test]
            fn div_rem_reconstructs(a in arb_poly(24), d in arb_poly(8)) {
                prop_assume!(!d.is_zero());
                let (q, r) = a.div_rem(&d);
                prop_assert_eq!(q.mul(&d).add(&r), a);
                if !r.is_zero() {
                    prop_assert!(r.degree() < d.degree());
                }
            }

            #[test]
            fn eval_of_product_is_product_of_evals(a in arb_poly(10), b in arb_poly(10), x: u8) {
                let x = Gf256::new(x);
                prop_assert_eq!(a.mul(&b).eval(x), a.eval(x) * b.eval(x));
            }
        }
    }
}
