//! Precomputed exponent and logarithm tables for GF(2^8).
//!
//! The tables are computed once (at compile time, via `const fn`) from the
//! primitive polynomial 0x11D with generator element α = 0x02. They back the
//! multiplicative operations in [`crate::field`].

/// The primitive polynomial used to construct GF(2^8):
/// `x^8 + x^4 + x^3 + x^2 + 1` (0x11D). The standard choice for RS(255, k)
/// codes over 8-bit symbols.
pub const GF256_PRIMITIVE_POLY: u16 = 0x11D;

/// The generator (primitive element) of the multiplicative group, α = 2.
pub const GF256_GENERATOR: u8 = 0x02;

/// Number of non-zero field elements (order of the multiplicative group).
pub const GF256_ORDER: usize = 255;

/// Exponent table: `EXP[i] = α^i` for `i in 0..512`.
///
/// The table is doubled in length so `EXP[log(a) + log(b)]` never needs a
/// modular reduction of the index during multiplication.
const fn build_exp() -> [u8; 512] {
    let mut exp = [0u8; 512];
    let mut x: u16 = 1;
    let mut i = 0;
    while i < 255 {
        exp[i] = x as u8;
        exp[i + 255] = x as u8;
        x <<= 1;
        if x & 0x100 != 0 {
            x ^= GF256_PRIMITIVE_POLY;
        }
        i += 1;
    }
    // Positions 510 and 511 are never indexed (max index is 254 + 254 = 508)
    // but fill them consistently anyway.
    exp[510] = exp[0];
    exp[511] = exp[1];
    exp
}

/// Logarithm table: `LOG[a] = i` such that `α^i = a`, for `a in 1..=255`.
/// `LOG[0]` is set to 0 but must never be used (log of zero is undefined).
const fn build_log() -> [u8; 256] {
    let exp = build_exp();
    let mut log = [0u8; 256];
    let mut i = 0;
    while i < 255 {
        log[exp[i] as usize] = i as u8;
        i += 1;
    }
    log
}

static EXP: [u8; 512] = build_exp();
static LOG: [u8; 256] = build_log();

/// Returns the exponent table `α^i` (512 entries, period 255 repeated twice).
#[inline]
pub fn exp_table() -> &'static [u8; 512] {
    &EXP
}

/// Returns the logarithm table. `log_table()[0]` is a placeholder; the log of
/// zero is undefined and callers must special-case zero.
#[inline]
pub fn log_table() -> &'static [u8; 256] {
    &LOG
}

/// Raw table-based multiplication of two field elements.
#[inline]
pub fn mul(a: u8, b: u8) -> u8 {
    if a == 0 || b == 0 {
        return 0;
    }
    let la = LOG[a as usize] as usize;
    let lb = LOG[b as usize] as usize;
    EXP[la + lb]
}

/// Raw multiplicative inverse. Panics on zero.
#[inline]
pub fn inv(a: u8) -> u8 {
    assert!(a != 0, "GF(2^8): inverse of zero is undefined");
    let la = LOG[a as usize] as usize;
    EXP[255 - la]
}

/// Raw table-based division `a / b`. Panics if `b == 0`.
#[inline]
pub fn div(a: u8, b: u8) -> u8 {
    assert!(b != 0, "GF(2^8): division by zero");
    if a == 0 {
        return 0;
    }
    let la = LOG[a as usize] as usize;
    let lb = LOG[b as usize] as usize;
    EXP[la + 255 - lb]
}

/// Raw exponentiation `a^n` in the field.
#[inline]
pub fn pow(a: u8, n: u32) -> u8 {
    if n == 0 {
        return 1;
    }
    if a == 0 {
        return 0;
    }
    let la = LOG[a as usize] as u32;
    let idx = (la as u64 * n as u64) % 255;
    EXP[idx as usize]
}

/// Slow carry-less ("Russian peasant") multiplication used to cross-check the
/// table construction in tests and to document the field definition.
pub fn mul_slow(mut a: u8, mut b: u8) -> u8 {
    let mut acc: u8 = 0;
    while b != 0 {
        if b & 1 != 0 {
            acc ^= a;
        }
        let carry = a & 0x80 != 0;
        a <<= 1;
        if carry {
            a ^= (GF256_PRIMITIVE_POLY & 0xFF) as u8;
        }
        b >>= 1;
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exp_table_has_period_255() {
        let exp = exp_table();
        assert_eq!(exp[0], 1);
        for i in 0..255 {
            assert_eq!(exp[i], exp[i + 255]);
        }
    }

    #[test]
    fn exp_table_covers_all_nonzero_elements() {
        let exp = exp_table();
        let mut seen = [false; 256];
        for i in 0..255 {
            assert!(!seen[exp[i] as usize], "duplicate α^{i}");
            seen[exp[i] as usize] = true;
        }
        assert!(!seen[0], "α^i must never be zero");
        assert_eq!(seen.iter().filter(|&&s| s).count(), 255);
    }

    #[test]
    fn log_is_inverse_of_exp() {
        let exp = exp_table();
        let log = log_table();
        for i in 0..255usize {
            assert_eq!(log[exp[i] as usize] as usize, i);
        }
        for a in 1..=255u16 {
            assert_eq!(exp[log[a as usize] as usize], a as u8);
        }
    }

    #[test]
    fn table_mul_matches_slow_mul() {
        for a in 0..=255u16 {
            for b in 0..=255u16 {
                assert_eq!(
                    mul(a as u8, b as u8),
                    mul_slow(a as u8, b as u8),
                    "mismatch at {a} * {b}"
                );
            }
        }
    }

    #[test]
    fn inverse_round_trips() {
        for a in 1..=255u16 {
            let a = a as u8;
            assert_eq!(mul(a, inv(a)), 1, "a * a^-1 != 1 for a = {a}");
        }
    }

    #[test]
    fn division_matches_mul_by_inverse() {
        for a in 0..=255u16 {
            for b in 1..=255u16 {
                assert_eq!(div(a as u8, b as u8), mul(a as u8, inv(b as u8)));
            }
        }
    }

    #[test]
    fn pow_matches_repeated_multiplication() {
        for a in [0u8, 1, 2, 3, 0x1D, 0x80, 0xFF] {
            let mut acc = 1u8;
            for n in 0..600u32 {
                assert_eq!(pow(a, n), acc, "a={a} n={n}");
                acc = mul(acc, a);
            }
        }
    }

    #[test]
    #[should_panic]
    fn inverse_of_zero_panics() {
        let _ = inv(0);
    }

    #[test]
    #[should_panic]
    fn division_by_zero_panics() {
        let _ = div(7, 0);
    }
}
