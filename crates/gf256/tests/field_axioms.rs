//! Property tests for the GF(2^8) field axioms, exercised through the
//! crate's public API (the in-crate unit tests cover internals; these pin
//! the algebraic contract downstream Reed–Solomon code depends on).

use proptest::prelude::*;
use rxl_gf256::Gf256;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    // --- additive group -------------------------------------------------

    fn addition_is_associative(a: u8, b: u8, c: u8) {
        let (a, b, c) = (Gf256::new(a), Gf256::new(b), Gf256::new(c));
        prop_assert_eq!((a + b) + c, a + (b + c));
    }

    fn addition_is_commutative_with_zero_identity(a: u8, b: u8) {
        let (a, b) = (Gf256::new(a), Gf256::new(b));
        prop_assert_eq!(a + b, b + a);
        prop_assert_eq!(a + Gf256::ZERO, a);
    }

    fn every_element_is_its_own_additive_inverse(a: u8) {
        let a = Gf256::new(a);
        prop_assert_eq!(a + a, Gf256::ZERO);
        prop_assert_eq!(a - a, Gf256::ZERO);
        // In characteristic 2, addition and subtraction coincide.
        let b = Gf256::new(a.0.wrapping_mul(3));
        prop_assert_eq!(a + b, a - b);
    }

    // --- multiplicative group -------------------------------------------

    fn multiplication_is_associative(a: u8, b: u8, c: u8) {
        let (a, b, c) = (Gf256::new(a), Gf256::new(b), Gf256::new(c));
        prop_assert_eq!((a * b) * c, a * (b * c));
    }

    fn multiplication_is_commutative_with_one_identity(a: u8, b: u8) {
        let (a, b) = (Gf256::new(a), Gf256::new(b));
        prop_assert_eq!(a * b, b * a);
        prop_assert_eq!(a * Gf256::ONE, a);
        prop_assert_eq!(a * Gf256::ZERO, Gf256::ZERO);
    }

    // --- distributivity --------------------------------------------------

    fn multiplication_distributes_over_addition(a: u8, b: u8, c: u8) {
        let (a, b, c) = (Gf256::new(a), Gf256::new(b), Gf256::new(c));
        prop_assert_eq!(a * (b + c), a * b + a * c);
        prop_assert_eq!((a + b) * c, a * c + b * c);
    }

    // --- inverse round-trips ---------------------------------------------

    fn multiplicative_inverse_round_trips(a in 1u8..=255) {
        let a = Gf256::new(a);
        prop_assert_eq!(a * a.inverse(), Gf256::ONE);
        prop_assert_eq!(a.inverse().inverse(), a);
    }

    fn division_round_trips_through_multiplication(a: u8, b in 1u8..=255) {
        let (a, b) = (Gf256::new(a), Gf256::new(b));
        prop_assert_eq!((a * b) / b, a);
        prop_assert_eq!((a / b) * b, a);
    }

    fn checked_inverse_agrees_with_inverse(a: u8) {
        let a = Gf256::new(a);
        match a.checked_inverse() {
            None => prop_assert_eq!(a, Gf256::ZERO),
            Some(inv) => {
                prop_assert_eq!(inv, a.inverse());
                prop_assert_eq!(a * inv, Gf256::ONE);
            }
        }
    }

    fn pow_is_repeated_multiplication(a: u8, n in 0u32..64) {
        let a = Gf256::new(a);
        let mut expect = Gf256::ONE;
        for _ in 0..n {
            expect *= a;
        }
        prop_assert_eq!(a.pow(n), expect);
    }
}
