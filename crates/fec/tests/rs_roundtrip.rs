//! Property tests for the Reed–Solomon contract the link layer depends on:
//! encode → corrupt at most `t` symbols → decode recovers the codeword
//! exactly, across the full-length, shortened and interleaved code layouts.

use proptest::prelude::*;
use rxl_fec::{InterleavedFec, RsCode, RsDecodeOutcome, RsDecoder, ShortenedRs};

/// Derives `count` distinct positions in `0..len` from a seed, plus nonzero
/// XOR masks — a compact way to get "corrupt ≤ t distinct symbols" without a
/// set-valued strategy.
fn corruption(seed: u64, len: usize, count: usize) -> Vec<(usize, u8)> {
    let mut out: Vec<(usize, u8)> = Vec::with_capacity(count);
    let mut state = seed;
    while out.len() < count {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let pos = (state >> 33) as usize % len;
        if out.iter().any(|&(p, _)| p == pos) {
            continue;
        }
        let flip = ((state >> 13) as u8).max(1);
        out.push((pos, flip));
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // --- RS(15, 11), t = 2: the textbook round-trip ----------------------

    fn rs_15_11_corrects_up_to_t_symbols(
        data in proptest::collection::vec(any::<u8>(), 11),
        n_errors in 0usize..=2,
        seed in any::<u64>(),
    ) {
        let code = RsCode::new(15, 11);
        prop_assert_eq!(code.t(), 2);
        let decoder = RsDecoder::new(code.clone());
        let clean = code.encode(&data);
        prop_assert_eq!(&clean[..11], &data[..]);

        let mut word = clean.clone();
        for (pos, flip) in corruption(seed, 15, n_errors) {
            word[pos] ^= flip;
        }
        let outcome = decoder.decode_in_place(&mut word);
        if n_errors == 0 {
            prop_assert_eq!(outcome, RsDecodeOutcome::NoError);
        } else {
            prop_assert_eq!(outcome, RsDecodeOutcome::Corrected { symbols: n_errors });
        }
        prop_assert_eq!(word, clean);
    }

    // --- shortened CXL sub-block, t = 1 ----------------------------------

    fn shortened_subblock_corrects_single_symbol(
        data in proptest::collection::vec(any::<u8>(), 84),
        seed in any::<u64>(),
    ) {
        let sb = ShortenedRs::cxl_subblock(84);
        let clean = sb.encode(&data);
        prop_assert_eq!(clean.len(), sb.word_len());

        let mut word = clean.clone();
        let (pos, flip) = corruption(seed, clean.len(), 1)[0];
        word[pos] ^= flip;
        prop_assert_eq!(
            sb.decode_in_place(&mut word),
            RsDecodeOutcome::Corrected { symbols: 1 }
        );
        prop_assert_eq!(word, clean);
    }

    // --- interleaved 256-byte flit, one symbol per way -------------------

    fn interleaved_flit_corrects_one_symbol_per_way(
        data in proptest::collection::vec(any::<u8>(), 250),
        burst_start in 0usize..254,
        seed in any::<u64>(),
    ) {
        // Three consecutive bytes land in three distinct interleaved ways,
        // so a 3-byte burst is always within per-way correction capability.
        let fec = InterleavedFec::cxl_flit();
        let clean = fec.encode(&data);
        let mut block = clean.clone();
        let masks = corruption(seed, 3, 3);
        for (i, &(_, flip)) in masks.iter().enumerate() {
            block[burst_start + i] ^= flip;
        }
        let res = fec.decode(&mut block);
        prop_assert!(res.outcome.is_corrected(), "burst at {} not corrected", burst_start);
        prop_assert_eq!(&block[..250], &data[..]);
    }

    // --- beyond-capability patterns never silently pass as clean ---------

    fn rs_15_11_never_accepts_unchanged_corrupted_word_as_clean(
        data in proptest::collection::vec(any::<u8>(), 11),
        n_errors in 3usize..=6,
        seed in any::<u64>(),
    ) {
        let code = RsCode::new(15, 11);
        let decoder = RsDecoder::new(code.clone());
        let clean = code.encode(&data);
        let mut word = clean.clone();
        for (pos, flip) in corruption(seed, 15, n_errors) {
            word[pos] ^= flip;
        }
        let corrupted = word.clone();
        let outcome = decoder.decode_in_place(&mut word);
        // With more than t errors the decoder may detect or miscorrect, but
        // it must never report NoError for a word that is not a codeword.
        prop_assert_ne!(outcome, RsDecodeOutcome::NoError);
        if outcome == RsDecodeOutcome::DetectedUncorrectable {
            prop_assert_eq!(word, corrupted);
        } else {
            // A miscorrection still lands on *some* codeword.
            prop_assert!(code.is_codeword(&word));
        }
    }
}
