//! Full Reed–Solomon decoding: syndromes, Berlekamp–Massey, Chien search and
//! Forney's algorithm.
//!
//! The decoder corrects up to `t` symbol errors per codeword and reports an
//! uncorrectable pattern whenever its internal consistency checks fail
//! (error-locator degree vs. number of roots, out-of-range locations, or
//! non-zero syndromes after correction). Note that — like real hardware —
//! the decoder can still *miscorrect*: an error pattern with more than `t`
//! symbol errors may look exactly like a correctable pattern of a different
//! codeword. Quantifying how often that happens (and how often the shortened
//! code catches it) is the job of [`crate::stats`].

use rxl_gf256::{Gf256, GfPoly};

use crate::rs::{RsCode, FIRST_CONSECUTIVE_ROOT};

/// The decoder's verdict on one codeword.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RsDecodeOutcome {
    /// All syndromes were zero; the word was accepted unchanged.
    NoError,
    /// The decoder corrected this many symbol errors in place.
    Corrected { symbols: usize },
    /// The decoder detected an uncorrectable pattern and left the word as-is.
    DetectedUncorrectable,
}

impl RsDecodeOutcome {
    /// `true` if the outcome is [`RsDecodeOutcome::Corrected`].
    pub fn is_corrected(&self) -> bool {
        matches!(self, RsDecodeOutcome::Corrected { .. })
    }

    /// `true` if the decoder accepted the word (either clean or corrected).
    pub fn accepted(&self) -> bool {
        !matches!(self, RsDecodeOutcome::DetectedUncorrectable)
    }

    /// Number of symbols the decoder changed.
    pub fn corrected_symbols(&self) -> usize {
        match self {
            RsDecodeOutcome::Corrected { symbols } => *symbols,
            _ => 0,
        }
    }
}

/// A Berlekamp–Massey Reed–Solomon decoder bound to one [`RsCode`].
#[derive(Clone, Debug)]
pub struct RsDecoder {
    code: RsCode,
}

impl RsDecoder {
    /// Creates a decoder for the given code.
    pub fn new(code: RsCode) -> Self {
        RsDecoder { code }
    }

    /// The underlying code.
    pub fn code(&self) -> &RsCode {
        &self.code
    }

    /// Decodes a full-length (`n`-symbol) received word in place.
    ///
    /// On success the corrected codeword (data ‖ parity) is left in
    /// `received`; on `DetectedUncorrectable` the buffer is unmodified.
    pub fn decode_in_place(&self, received: &mut [u8]) -> RsDecodeOutcome {
        let (outcome, _) = self.decode_with_locations(received);
        outcome
    }

    /// Decodes in place and additionally reports the corrected symbol
    /// positions (indices into `received`). Used by the shortened-code layer
    /// to recognise corrections that land on virtual padding.
    pub fn decode_with_locations(&self, received: &mut [u8]) -> (RsDecodeOutcome, Vec<usize>) {
        let n = self.code.n();
        assert_eq!(received.len(), n, "received word must be n symbols");

        let syndromes = self.code.syndromes(received);
        if syndromes.iter().all(|s| s.is_zero()) {
            return (RsDecodeOutcome::NoError, Vec::new());
        }

        let t = self.code.t();
        let Some(sigma) = berlekamp_massey(&syndromes) else {
            return (RsDecodeOutcome::DetectedUncorrectable, Vec::new());
        };
        let num_errors = sigma.degree();
        if num_errors == 0 || num_errors > t {
            return (RsDecodeOutcome::DetectedUncorrectable, Vec::new());
        }

        // Chien search: find roots of sigma. A root at x = α^{-p} (p counted
        // from the *end* of the codeword) marks an error at degree p, i.e.
        // received index n - 1 - p.
        let mut error_positions = Vec::with_capacity(num_errors);
        for p in 0..n {
            let x_inv = Gf256::alpha_pow(p as u32).inverse();
            if sigma.eval(x_inv).is_zero() {
                error_positions.push(p);
            }
        }
        if error_positions.len() != num_errors {
            return (RsDecodeOutcome::DetectedUncorrectable, Vec::new());
        }

        // Error evaluator Ω(x) = [S(x)·σ(x)] mod x^{2t}.
        let s_poly = GfPoly::from_coeffs(syndromes.clone());
        let omega_full = s_poly.mul(&sigma);
        let omega = GfPoly::from_coeffs(
            omega_full.coeffs()[..omega_full.coeffs().len().min(self.code.parity_len())].to_vec(),
        );
        let sigma_prime = sigma.formal_derivative();

        // Forney: e_p = - Ω(X_p^{-1}) / σ'(X_p^{-1}) · X_p^{1-fcr};
        // with fcr = 0 the extra factor is X_p.
        let mut corrections = Vec::with_capacity(num_errors);
        for &p in &error_positions {
            let x_p = Gf256::alpha_pow(p as u32);
            let x_inv = x_p.inverse();
            let denom = sigma_prime.eval(x_inv);
            if denom.is_zero() {
                return (RsDecodeOutcome::DetectedUncorrectable, Vec::new());
            }
            let mut magnitude = omega.eval(x_inv) / denom;
            // fcr = 0 ⇒ multiply by X_p^{1 - 0} = X_p ... derived below.
            // Standard Forney for roots at α^{fcr..}: e = X^{1-fcr}·Ω(X^{-1})/σ'(X^{-1}).
            magnitude *= x_p.pow(1 - FIRST_CONSECUTIVE_ROOT);
            if magnitude.is_zero() {
                return (RsDecodeOutcome::DetectedUncorrectable, Vec::new());
            }
            let index = n - 1 - p;
            corrections.push((index, magnitude));
        }

        // Apply and verify.
        for &(index, magnitude) in &corrections {
            received[index] ^= magnitude.value();
        }
        if !self.code.is_codeword(received) {
            // Roll back and report failure.
            for &(index, magnitude) in &corrections {
                received[index] ^= magnitude.value();
            }
            return (RsDecodeOutcome::DetectedUncorrectable, Vec::new());
        }

        let locations: Vec<usize> = corrections.iter().map(|&(i, _)| i).collect();
        (
            RsDecodeOutcome::Corrected {
                symbols: locations.len(),
            },
            locations,
        )
    }
}

/// Berlekamp–Massey algorithm: returns the error-locator polynomial σ(x) for
/// the given syndromes, or `None` if the iteration produces an inconsistent
/// locator (signalling an uncorrectable pattern).
fn berlekamp_massey(syndromes: &[Gf256]) -> Option<GfPoly> {
    let n = syndromes.len();
    let mut sigma = GfPoly::one();
    let mut prev_sigma = GfPoly::one();
    let mut l = 0usize;
    let mut m = 1usize;
    let mut b = Gf256::ONE;

    for i in 0..n {
        // Discrepancy d = S_i + Σ_{j=1..l} σ_j · S_{i-j}
        let mut d = syndromes[i];
        for j in 1..=l {
            if j <= sigma.degree() {
                d += sigma.coeff(j) * syndromes[i - j];
            }
        }
        if d.is_zero() {
            m += 1;
        } else if 2 * l <= i {
            let temp = sigma.clone();
            let coef = d / b;
            sigma = sigma.add(&prev_sigma.scale(coef).shift_up(m));
            prev_sigma = temp;
            l = i + 1 - l;
            b = d;
            m = 1;
        } else {
            let coef = d / b;
            sigma = sigma.add(&prev_sigma.scale(coef).shift_up(m));
            m += 1;
        }
    }
    if sigma.degree() != l {
        return None;
    }
    Some(sigma)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn corrupt(word: &mut [u8], positions: &[usize], rng: &mut StdRng) {
        for &p in positions {
            let flip: u8 = rng.random_range(1..=255);
            word[p] ^= flip;
        }
    }

    #[test]
    fn clean_word_reports_no_error() {
        let code = RsCode::new(255, 239);
        let dec = RsDecoder::new(code.clone());
        let data: Vec<u8> = (0..239).map(|i| i as u8).collect();
        let mut cw = code.encode(&data);
        assert_eq!(dec.decode_in_place(&mut cw), RsDecodeOutcome::NoError);
        assert_eq!(&cw[..239], &data[..]);
    }

    #[test]
    fn corrects_up_to_t_errors() {
        let mut rng = StdRng::seed_from_u64(11);
        let code = RsCode::new(255, 239); // t = 8
        let dec = RsDecoder::new(code.clone());
        let data: Vec<u8> = (0..239).map(|i| (i * 7 + 3) as u8).collect();
        let clean = code.encode(&data);

        for errors in 1..=8usize {
            let mut word = clean.clone();
            let mut positions: Vec<usize> = Vec::new();
            while positions.len() < errors {
                let p = rng.random_range(0usize..255);
                if !positions.contains(&p) {
                    positions.push(p);
                }
            }
            corrupt(&mut word, &positions, &mut rng);
            let outcome = dec.decode_in_place(&mut word);
            assert_eq!(outcome, RsDecodeOutcome::Corrected { symbols: errors });
            assert_eq!(word, clean, "failed with {errors} errors");
        }
    }

    #[test]
    fn reports_locations_of_corrections() {
        let mut rng = StdRng::seed_from_u64(5);
        let code = RsCode::new(255, 251); // t = 2
        let dec = RsDecoder::new(code.clone());
        let data: Vec<u8> = (0..251).map(|i| (i + 1) as u8).collect();
        let clean = code.encode(&data);
        let mut word = clean.clone();
        corrupt(&mut word, &[17, 200], &mut rng);
        let (outcome, mut locations) = dec.decode_with_locations(&mut word);
        assert!(outcome.is_corrected());
        locations.sort_unstable();
        assert_eq!(locations, vec![17, 200]);
        assert_eq!(word, clean);
    }

    #[test]
    fn full_length_ssc_code_mostly_miscorrects_double_errors() {
        // For the *unshortened* RS(255, 253) code almost every syndrome value
        // maps onto some single-symbol correction, so a two-symbol error is
        // usually miscorrected rather than detected. This is precisely why the
        // paper leans on the shortened code's virtual positions for detection
        // (see `crate::shortened` and `crate::stats`).
        let mut rng = StdRng::seed_from_u64(42);
        let code = RsCode::rs_255_253();
        let dec = RsDecoder::new(code.clone());
        let data: Vec<u8> = (0..253).map(|i| (i * 5) as u8).collect();
        let clean = code.encode(&data);

        let mut miscorrected = 0;
        let trials = 200;
        for _ in 0..trials {
            let mut word = clean.clone();
            let p1 = rng.random_range(0usize..255);
            let mut p2 = rng.random_range(0usize..255);
            while p2 == p1 {
                p2 = rng.random_range(0usize..255);
            }
            corrupt(&mut word, &[p1, p2], &mut rng);
            let outcome = dec.decode_in_place(&mut word);
            if outcome.is_corrected() && word != clean {
                miscorrected += 1;
            }
        }
        assert!(
            miscorrected > trials / 2,
            "expected miscorrection to dominate for the unshortened code, got {miscorrected}/{trials}"
        );
    }

    #[test]
    fn uncorrectable_word_is_left_untouched() {
        let code = RsCode::rs_255_253();
        let dec = RsDecoder::new(code.clone());
        let data: Vec<u8> = vec![9; 253];
        let clean = code.encode(&data);
        // Two equal-magnitude errors at distinct positions give S0 = 0 but
        // S1 != 0, which the t = 1 decoder must flag as uncorrectable.
        let mut word = clean.clone();
        word[10] ^= 0x3C;
        word[30] ^= 0x3C;
        let snapshot = word.clone();
        assert_eq!(
            dec.decode_in_place(&mut word),
            RsDecodeOutcome::DetectedUncorrectable
        );
        assert_eq!(word, snapshot);
    }

    #[test]
    fn outcome_helpers() {
        assert!(RsDecodeOutcome::Corrected { symbols: 2 }.is_corrected());
        assert!(RsDecodeOutcome::NoError.accepted());
        assert!(!RsDecodeOutcome::DetectedUncorrectable.accepted());
        assert_eq!(
            RsDecodeOutcome::Corrected { symbols: 3 }.corrected_symbols(),
            3
        );
        assert_eq!(RsDecodeOutcome::NoError.corrected_symbols(), 0);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]
            #[test]
            fn single_error_always_corrected_rs15_11(
                data in proptest::collection::vec(any::<u8>(), 11),
                pos in 0usize..15,
                flip in 1u8..=255,
            ) {
                let code = RsCode::new(15, 11); // t = 2
                let dec = RsDecoder::new(code.clone());
                let clean = code.encode(&data);
                let mut word = clean.clone();
                word[pos] ^= flip;
                let outcome = dec.decode_in_place(&mut word);
                prop_assert_eq!(outcome, RsDecodeOutcome::Corrected { symbols: 1 });
                prop_assert_eq!(word, clean);
            }

            #[test]
            fn double_error_always_corrected_rs255_239(
                seed: u64,
                p1 in 0usize..255,
                p2 in 0usize..255,
                f1 in 1u8..=255,
                f2 in 1u8..=255,
            ) {
                prop_assume!(p1 != p2);
                let mut rng = StdRng::seed_from_u64(seed);
                let code = RsCode::new(255, 239); // t = 8
                let dec = RsDecoder::new(code.clone());
                let data: Vec<u8> = (0..239).map(|_| rng.random()).collect();
                let clean = code.encode(&data);
                let mut word = clean.clone();
                word[p1] ^= f1;
                word[p2] ^= f2;
                let outcome = dec.decode_in_place(&mut word);
                prop_assert!(outcome.is_corrected());
                prop_assert_eq!(word, clean);
            }
        }
    }
}
