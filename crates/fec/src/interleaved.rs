//! The CXL 256-byte flit FEC layout: 3-way interleaved single-symbol
//! correction.
//!
//! Per Section 2.5 / Fig. 3 of the paper, the 250-byte block formed by the
//! 2-byte header, 240-byte payload and 8-byte CRC is distributed round-robin
//! over three sub-blocks of 84/83/83 bytes. Each sub-block receives two
//! Reed–Solomon parity bytes (shortened RS(255, 253)), giving transmitted
//! sub-blocks of 86/85/85 bytes = 256 bytes total.
//!
//! On the wire, byte `i` of the 256-byte block belongs to way `i % 3`
//! (this holds for the parity region too, because 250 ≡ 1 (mod 3) and the
//! parity bytes are laid out to continue the round-robin). Consequently a
//! burst of up to three consecutive bytes places at most one error in each
//! sub-block and is always corrected; longer bursts overload at least one
//! sub-block and are detected with the probabilities analysed in
//! [`crate::stats`].

use rxl_gf256::{ConstMul, Gf256};

use crate::decoder::RsDecodeOutcome;
use crate::shortened::ShortenedRs;

/// Number of protected data bytes per CXL 256B flit (header + payload + CRC).
pub const CXL_FLIT_DATA_LEN: usize = 250;
/// Number of FEC parity bytes per CXL 256B flit.
pub const CXL_FLIT_FEC_LEN: usize = 6;
/// Total transmitted flit size.
pub const CXL_FLIT_TOTAL_LEN: usize = CXL_FLIT_DATA_LEN + CXL_FLIT_FEC_LEN;
/// Interleaving factor.
pub const CXL_FEC_WAYS: usize = 3;

/// Maximum interleave factor supported by the allocation-free codec paths.
pub const MAX_FEC_WAYS: usize = 8;

/// Per-way decode outcomes, stored inline (no heap allocation on the decode
/// path). Dereferences to a slice, so indexing, `len()` and iteration behave
/// like the `Vec` this replaced.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PerWayOutcomes {
    outcomes: [RsDecodeOutcome; MAX_FEC_WAYS],
    len: u8,
}

impl PerWayOutcomes {
    fn new(outcomes: &[RsDecodeOutcome]) -> Self {
        debug_assert!(outcomes.len() <= MAX_FEC_WAYS);
        let mut inline = [RsDecodeOutcome::NoError; MAX_FEC_WAYS];
        inline[..outcomes.len()].copy_from_slice(outcomes);
        PerWayOutcomes {
            outcomes: inline,
            len: outcomes.len() as u8,
        }
    }
}

impl std::ops::Deref for PerWayOutcomes {
    type Target = [RsDecodeOutcome];

    fn deref(&self) -> &[RsDecodeOutcome] {
        &self.outcomes[..self.len as usize]
    }
}

/// Result of decoding one interleaved FEC block.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FlitFecResult {
    /// Aggregate outcome across all interleaved ways.
    pub outcome: RsDecodeOutcome,
    /// Per-way outcomes, in interleave order.
    pub per_way: PerWayOutcomes,
}

impl FlitFecResult {
    /// `true` if the flit was accepted (clean or fully corrected).
    pub fn accepted(&self) -> bool {
        self.outcome.accepted()
    }
}

/// An N-way interleaved single-symbol-correct FEC block codec.
///
/// Every way is protected by the two-parity shortened RS(255, 253) mother
/// code, so both directions run allocation-free: encoding streams each way's
/// symbols through a two-stage LFSR, and decoding computes the two syndromes
/// per way directly over the interleaved block (no de-interleave buffers),
/// applying at most one in-place correction per way.
#[derive(Clone, Debug)]
pub struct InterleavedFec {
    ways: Vec<ShortenedRs>,
    data_len: usize,
    /// Nibble-split constant multipliers for the per-byte loops: `α` (the
    /// S1 Horner step) and the generator coefficients `g0`, `g1` of
    /// `g(x) = x² + g1·x + g0` (the parity LFSR). Two 16-entry half-tables
    /// per constant (32 bytes instead of a 256-entry product table) answer
    /// each byte with two loads and an XOR — see [`rxl_gf256::nibble`] —
    /// keeping the whole working set of the per-hop hot path inside two
    /// cache lines and in the shape LLVM vectorizes to byte shuffles.
    mul_alpha: ConstMul,
    mul_g0: ConstMul,
    mul_g1: ConstMul,
}

impl InterleavedFec {
    /// Builds an interleaved FEC over `data_len` bytes with `ways`
    /// round-robin sub-blocks, each protected by a shortened RS(255, 253).
    /// Supports up to [`MAX_FEC_WAYS`] ways.
    pub fn new(data_len: usize, ways: usize) -> Self {
        assert!(ways >= 1, "at least one interleave way required");
        assert!(
            ways <= MAX_FEC_WAYS,
            "at most {MAX_FEC_WAYS} ways supported"
        );
        assert!(data_len >= ways, "data must cover every way");
        let mut way_codes = Vec::with_capacity(ways);
        for w in 0..ways {
            // Way w receives data bytes w, w+ways, w+2·ways, ...
            let sub_len = (data_len - w).div_ceil(ways);
            way_codes.push(ShortenedRs::cxl_subblock(sub_len));
        }
        let gen = way_codes[0].code().generator().coeffs().to_vec();
        debug_assert_eq!(gen.len(), 3, "two-parity generator has degree 2");
        InterleavedFec {
            data_len,
            mul_alpha: ConstMul::new(Gf256::ALPHA.value()),
            mul_g0: ConstMul::new(gen[0].value()),
            mul_g1: ConstMul::new(gen[1].value()),
            ways: way_codes,
        }
    }

    /// The CXL 256-byte flit geometry: 250 data bytes, 3 ways, 6 parity bytes.
    pub fn cxl_flit() -> Self {
        let fec = Self::new(CXL_FLIT_DATA_LEN, CXL_FEC_WAYS);
        debug_assert_eq!(fec.encoded_len(), CXL_FLIT_TOTAL_LEN);
        fec
    }

    /// Number of protected data bytes.
    pub fn data_len(&self) -> usize {
        self.data_len
    }

    /// Number of interleave ways.
    pub fn ways(&self) -> usize {
        self.ways.len()
    }

    /// Number of parity bytes appended by [`InterleavedFec::encode`].
    pub fn parity_len(&self) -> usize {
        self.ways.iter().map(|w| w.parity_len()).sum()
    }

    /// Total encoded length (data + parity).
    pub fn encoded_len(&self) -> usize {
        self.data_len + self.parity_len()
    }

    /// Sub-block data lengths, in way order (84/83/83 for the CXL flit).
    pub fn way_data_lens(&self) -> Vec<usize> {
        self.ways.iter().map(|w| w.data_len()).collect()
    }

    /// The way that wire position `i` of the encoded block belongs to.
    #[inline]
    pub fn way_of_position(&self, i: usize) -> usize {
        i % self.ways.len()
    }

    /// Encodes `data` (exactly [`data_len`](Self::data_len) bytes) into a
    /// transmitted block: the original data followed by the per-way parity
    /// bytes, laid out so the whole block stays round-robin interleaved.
    ///
    /// Allocating convenience wrapper over [`Self::encode_into`].
    pub fn encode(&self, data: &[u8]) -> Vec<u8> {
        assert_eq!(data.len(), self.data_len, "wrong data length for this FEC");
        let mut out = vec![0u8; self.encoded_len()];
        out[..self.data_len].copy_from_slice(data);
        self.encode_into(&mut out);
        out
    }

    /// Computes the parity tail in place: `block[..data_len]` must already
    /// hold the data; the parity bytes are written to `block[data_len..]`.
    /// Allocation-free — this is the hot-path entry point used by the flit
    /// codecs and switches.
    pub fn encode_into(&self, block: &mut [u8]) {
        assert_eq!(
            block.len(),
            self.encoded_len(),
            "wrong block length for this FEC"
        );
        let ways = self.ways.len();
        // Stream each way's data symbols (wire stride = the way count)
        // through the two-stage parity LFSR of the shared RS(255, 253)
        // mother code. Virtual leading zeros of the shortened code are
        // skipped — they cannot change the LFSR state. The constant
        // multiplies go through the precomputed single-operand tables.
        let mut lfsr = [[0u8; 2]; MAX_FEC_WAYS];
        if ways == 3 {
            // The CXL flit geometry — unrolled so each way's LFSR pair lives
            // in registers instead of a runtime-indexed array.
            let data = &block[..self.data_len];
            let mut chunks = data.chunks_exact(3);
            let (mut a, mut b, mut c) = ([0u8; 2], [0u8; 2], [0u8; 2]);
            for ch in &mut chunks {
                let fa = ch[0] ^ a[0];
                a = [a[1] ^ self.mul_g1.mul(fa), self.mul_g0.mul(fa)];
                let fb = ch[1] ^ b[0];
                b = [b[1] ^ self.mul_g1.mul(fb), self.mul_g0.mul(fb)];
                let fc = ch[2] ^ c[0];
                c = [c[1] ^ self.mul_g1.mul(fc), self.mul_g0.mul(fc)];
            }
            let mut state = [a, b, c];
            for (i, &byte) in chunks.remainder().iter().enumerate() {
                let f = byte ^ state[i][0];
                state[i] = [state[i][1] ^ self.mul_g1.mul(f), self.mul_g0.mul(f)];
            }
            lfsr[..3].copy_from_slice(&state);
        } else {
            let mut w = 0;
            for &b in &block[..self.data_len] {
                let [l0, l1] = lfsr[w];
                let feedback = b ^ l0;
                lfsr[w] = [l1 ^ self.mul_g1.mul(feedback), self.mul_g0.mul(feedback)];
                w += 1;
                if w == ways {
                    w = 0;
                }
            }
        }
        // Emit parity bytes continuing the round-robin pattern at wire
        // positions data_len..encoded_len.
        let mut cursors = [0usize; MAX_FEC_WAYS];
        let mut w = self.data_len % ways;
        for slot in &mut block[self.data_len..] {
            *slot = lfsr[w][cursors[w]];
            cursors[w] += 1;
            w += 1;
            if w == ways {
                w = 0;
            }
        }
    }

    /// Decodes a transmitted block in place.
    ///
    /// If every way is clean or correctable, the corrected block is written
    /// back and the aggregate outcome is reported. If any way detects an
    /// uncorrectable pattern the block is left untouched (a real switch or
    /// endpoint would discard it) and the aggregate outcome is
    /// [`RsDecodeOutcome::DetectedUncorrectable`].
    ///
    /// Allocation-free: the two syndromes of each way are computed by
    /// striding over the interleaved block directly, and at most one symbol
    /// per way is corrected in place — the same single-symbol-correct
    /// semantics as [`ShortenedRs::decode_in_place`], verified against it by
    /// the property tests below.
    pub fn decode(&self, block: &mut [u8]) -> FlitFecResult {
        assert_eq!(
            block.len(),
            self.encoded_len(),
            "wrong block length for this FEC"
        );
        let ways = self.ways.len();

        // Pass 1 — per-way syndromes over the strided symbols. Each way's
        // word is its data symbols followed by its parity symbols, which is
        // exactly the order its wire positions appear in. S0 is a plain XOR
        // accumulation; the S1 Horner step multiplies by α through the
        // precomputed table.
        let mut s0_raw = [0u8; MAX_FEC_WAYS];
        let mut s1_raw = [0u8; MAX_FEC_WAYS];
        let mut word_len = [0usize; MAX_FEC_WAYS];
        if ways == 3 {
            // The CXL flit geometry — unrolled so each way's syndrome pair
            // lives in registers instead of a runtime-indexed array.
            let mut chunks = block.chunks_exact(3);
            let (mut a0, mut a1, mut b0, mut b1, mut c0, mut c1) = (0u8, 0u8, 0u8, 0u8, 0u8, 0u8);
            for ch in &mut chunks {
                a0 ^= ch[0];
                a1 = self.mul_alpha.mul(a1) ^ ch[0];
                b0 ^= ch[1];
                b1 = self.mul_alpha.mul(b1) ^ ch[1];
                c0 ^= ch[2];
                c1 = self.mul_alpha.mul(c1) ^ ch[2];
            }
            let mut s0t = [a0, b0, c0];
            let mut s1t = [a1, b1, c1];
            for (i, &byte) in chunks.remainder().iter().enumerate() {
                s0t[i] ^= byte;
                s1t[i] = self.mul_alpha.mul(s1t[i]) ^ byte;
            }
            s0_raw[..3].copy_from_slice(&s0t);
            s1_raw[..3].copy_from_slice(&s1t);
            for (w, len) in word_len.iter_mut().take(3).enumerate() {
                *len = (block.len() - w).div_ceil(3);
            }
        } else {
            let mut w = 0;
            for &b in block.iter() {
                s0_raw[w] ^= b;
                s1_raw[w] = self.mul_alpha.mul(s1_raw[w]) ^ b;
                word_len[w] += 1;
                w += 1;
                if w == ways {
                    w = 0;
                }
            }
        }
        let s0 = s0_raw.map(Gf256::new);
        let s1 = s1_raw.map(Gf256::new);

        // Pass 2 — per-way verdicts and correction candidates, applied only
        // once every way is known to accept (an uncorrectable way leaves the
        // whole block untouched).
        let mut per_way = [RsDecodeOutcome::NoError; MAX_FEC_WAYS];
        let mut fix: [Option<(usize, u8)>; MAX_FEC_WAYS] = [None; MAX_FEC_WAYS];
        let mut total_corrected = 0usize;
        let mut any_uncorrectable = false;
        for w in 0..ways {
            debug_assert_eq!(word_len[w], self.ways[w].word_len());
            per_way[w] = if s0[w].is_zero() && s1[w].is_zero() {
                RsDecodeOutcome::NoError
            } else if s0[w].is_zero() || s1[w].is_zero() {
                RsDecodeOutcome::DetectedUncorrectable
            } else {
                // Single error at degree p: S1/S0 = α^p. Corrections landing
                // in the virtual zero padding of the shortened code are
                // detected, not applied.
                let p = (s1[w] / s0[w])
                    .log()
                    .expect("ratio of non-zero elements is non-zero")
                    as usize;
                if p >= word_len[w] {
                    RsDecodeOutcome::DetectedUncorrectable
                } else {
                    let wire_pos = w + (word_len[w] - 1 - p) * ways;
                    fix[w] = Some((wire_pos, s0[w].value()));
                    RsDecodeOutcome::Corrected { symbols: 1 }
                }
            };
            match per_way[w] {
                RsDecodeOutcome::Corrected { symbols } => total_corrected += symbols,
                RsDecodeOutcome::DetectedUncorrectable => any_uncorrectable = true,
                RsDecodeOutcome::NoError => {}
            }
        }

        let per_way = PerWayOutcomes::new(&per_way[..ways]);
        if any_uncorrectable {
            return FlitFecResult {
                outcome: RsDecodeOutcome::DetectedUncorrectable,
                per_way,
            };
        }
        for &(pos, magnitude) in fix[..ways].iter().flatten() {
            block[pos] ^= magnitude;
        }

        let outcome = if total_corrected == 0 {
            RsDecodeOutcome::NoError
        } else {
            RsDecodeOutcome::Corrected {
                symbols: total_corrected,
            }
        };
        FlitFecResult { outcome, per_way }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_data(len: usize, seed: u64) -> Vec<u8> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..len).map(|_| rng.random()).collect()
    }

    #[test]
    fn cxl_flit_geometry() {
        let fec = InterleavedFec::cxl_flit();
        assert_eq!(fec.data_len(), 250);
        assert_eq!(fec.ways(), 3);
        assert_eq!(fec.parity_len(), 6);
        assert_eq!(fec.encoded_len(), 256);
        let lens = fec.way_data_lens();
        assert_eq!(lens.iter().sum::<usize>(), 250);
        assert_eq!(lens, vec![84, 83, 83]);
        // Every wire position, parity included, follows the i % 3 rule.
        for i in 0..256 {
            assert_eq!(fec.way_of_position(i), i % 3);
        }
    }

    #[test]
    fn clean_round_trip() {
        let fec = InterleavedFec::cxl_flit();
        let data = random_data(250, 1);
        let mut block = fec.encode(&data);
        assert_eq!(block.len(), 256);
        let res = fec.decode(&mut block);
        assert_eq!(res.outcome, RsDecodeOutcome::NoError);
        assert!(res.accepted());
        assert_eq!(&block[..250], &data[..]);
    }

    #[test]
    fn corrects_three_byte_bursts_anywhere_including_the_parity_tail() {
        let fec = InterleavedFec::cxl_flit();
        let data = random_data(250, 2);
        let clean = fec.encode(&data);
        for start in 0..=253 {
            let mut block = clean.clone();
            block[start] ^= 0xFF;
            block[start + 1] ^= 0x3C;
            block[start + 2] ^= 0x81;
            let res = fec.decode(&mut block);
            assert!(res.outcome.is_corrected(), "burst at {start} not corrected");
            assert_eq!(res.outcome.corrected_symbols(), 3);
            assert_eq!(
                &block[..250],
                &data[..],
                "burst at {start} produced wrong data"
            );
            assert_eq!(block, clean, "burst at {start} left parity corrupted");
        }
    }

    #[test]
    fn corrects_single_errors_in_the_parity_region() {
        let fec = InterleavedFec::cxl_flit();
        let data = random_data(250, 3);
        let clean = fec.encode(&data);
        for pos in 250..256 {
            let mut block = clean.clone();
            block[pos] ^= 0x42;
            let res = fec.decode(&mut block);
            assert!(
                res.outcome.is_corrected(),
                "parity error at {pos} not corrected"
            );
            assert_eq!(&block[..250], &data[..]);
        }
    }

    #[test]
    fn per_way_outcomes_are_reported() {
        let fec = InterleavedFec::cxl_flit();
        let data = random_data(250, 4);
        let clean = fec.encode(&data);
        let mut block = clean.clone();
        // Bytes 0 and 3 both belong to way 0; byte 1 → way 1.
        block[0] ^= 0x01;
        block[1] ^= 0x02;
        let res = fec.decode(&mut block);
        assert!(res.outcome.is_corrected());
        assert_eq!(res.per_way.len(), 3);
        assert!(res.per_way[0].is_corrected());
        assert!(res.per_way[1].is_corrected());
        assert_eq!(res.per_way[2], RsDecodeOutcome::NoError);
    }

    #[test]
    fn overloaded_way_with_equal_magnitudes_is_detected_and_block_untouched() {
        let fec = InterleavedFec::cxl_flit();
        let data = random_data(250, 5);
        let clean = fec.encode(&data);
        let mut block = clean.clone();
        // Two equal-magnitude errors in the same way (positions 0 and 3 are
        // both way 0) force S0 = 0, S1 ≠ 0 → detected uncorrectable.
        block[0] ^= 0x99;
        block[3] ^= 0x99;
        let snapshot = block.clone();
        let res = fec.decode(&mut block);
        assert_eq!(res.outcome, RsDecodeOutcome::DetectedUncorrectable);
        assert!(!res.accepted());
        assert_eq!(block, snapshot, "uncorrectable block must not be modified");
    }

    #[test]
    fn six_byte_bursts_are_mostly_detected() {
        let mut rng = StdRng::seed_from_u64(6);
        let fec = InterleavedFec::cxl_flit();
        let data = random_data(250, 7);
        let clean = fec.encode(&data);
        let mut accepted = 0;
        let mut rejected = 0;
        for _ in 0..200 {
            let mut block = clean.clone();
            let start = rng.random_range(0usize..250);
            for i in 0..6 {
                block[start + i] ^= rng.random_range(1..=255u8);
            }
            let res = fec.decode(&mut block);
            if res.accepted() {
                accepted += 1;
            } else {
                rejected += 1;
            }
        }
        assert!(
            rejected > accepted,
            "6-byte bursts should mostly be detected"
        );
        assert_eq!(rejected + accepted, 200);
    }

    #[test]
    fn other_geometries_are_supported() {
        // 68-byte flit style geometry: 66 data bytes, 2 ways.
        let fec = InterleavedFec::new(66, 2);
        assert_eq!(fec.encoded_len(), 70);
        let data = random_data(66, 8);
        let mut block = fec.encode(&data);
        block[10] ^= 0x10;
        block[11] ^= 0x20;
        let res = fec.decode(&mut block);
        assert!(res.outcome.is_corrected());
        assert_eq!(&block[..66], &data[..]);
    }

    #[test]
    #[should_panic]
    fn encode_length_mismatch_panics() {
        let fec = InterleavedFec::cxl_flit();
        let _ = fec.encode(&[0u8; 100]);
    }

    #[test]
    #[should_panic]
    fn decode_length_mismatch_panics() {
        let fec = InterleavedFec::cxl_flit();
        let mut block = vec![0u8; 200];
        let _ = fec.decode(&mut block);
    }

    /// Reference implementation of the pre-streaming codec: de-interleave,
    /// decode each way with [`ShortenedRs`], re-interleave. The streaming
    /// paths must match it bit for bit.
    fn reference_decode(fec: &InterleavedFec, block: &mut [u8]) -> RsDecodeOutcome {
        let ways = fec.ways();
        let mut words: Vec<Vec<u8>> = (0..ways).map(|_| Vec::new()).collect();
        for (i, &b) in block.iter().enumerate() {
            words[i % ways].push(b);
        }
        let mut total = 0usize;
        for (w, word) in words.iter_mut().enumerate() {
            match ShortenedRs::cxl_subblock(word.len() - 2).decode_in_place(word) {
                RsDecodeOutcome::Corrected { symbols } => total += symbols,
                RsDecodeOutcome::DetectedUncorrectable => {
                    return RsDecodeOutcome::DetectedUncorrectable
                }
                RsDecodeOutcome::NoError => {}
            }
            let _ = w;
        }
        let mut cursors = vec![0usize; ways];
        for (i, slot) in block.iter_mut().enumerate() {
            let w = i % ways;
            *slot = words[w][cursors[w]];
            cursors[w] += 1;
        }
        if total == 0 {
            RsDecodeOutcome::NoError
        } else {
            RsDecodeOutcome::Corrected { symbols: total }
        }
    }

    #[test]
    fn streaming_decode_matches_per_way_reference_under_random_noise() {
        let mut rng = StdRng::seed_from_u64(99);
        let fec = InterleavedFec::cxl_flit();
        let data = random_data(250, 100);
        let clean = fec.encode(&data);
        for trial in 0..300 {
            let mut block = clean.clone();
            let errors = rng.random_range(0usize..=4);
            for _ in 0..errors {
                let pos = rng.random_range(0..block.len());
                block[pos] ^= rng.random_range(1..=255u8);
            }
            let mut reference = block.clone();
            let res = fec.decode(&mut block);
            let ref_outcome = reference_decode(&fec, &mut reference);
            assert_eq!(res.outcome, ref_outcome, "trial {trial}");
            if res.accepted() {
                assert_eq!(block, reference, "trial {trial}");
            } else {
                // Uncorrectable blocks are left untouched by both.
                assert_eq!(reference_decode(&fec, &mut block), ref_outcome);
            }
        }
    }

    #[test]
    fn encode_into_matches_per_way_reference() {
        for (data_len, ways) in [(250usize, 3usize), (66, 2), (40, 4)] {
            let fec = InterleavedFec::new(data_len, ways);
            let data = random_data(data_len, data_len as u64);
            let block = fec.encode(&data);
            // Reference: per-way parity via ShortenedRs on gathered symbols.
            let mut words: Vec<Vec<u8>> = (0..ways).map(|_| Vec::new()).collect();
            for (i, &b) in data.iter().enumerate() {
                words[i % ways].push(b);
            }
            let parities: Vec<Vec<u8>> = words
                .iter()
                .map(|w| {
                    ShortenedRs::cxl_subblock(w.len())
                        .code()
                        .parity_shortened(w)
                })
                .collect();
            let mut expected = data.clone();
            let mut cursors = vec![0usize; ways];
            for i in data_len..fec.encoded_len() {
                let w = i % ways;
                expected.push(parities[w][cursors[w]]);
                cursors[w] += 1;
            }
            assert_eq!(block, expected, "({data_len}, {ways})");
        }
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(32))]
            #[test]
            fn streaming_decode_matches_reference(
                data in proptest::collection::vec(any::<u8>(), 250),
                flips in proptest::collection::vec((0usize..256, 1u8..=255), 0..5),
            ) {
                let fec = InterleavedFec::cxl_flit();
                let mut block = fec.encode(&data);
                for (pos, flip) in flips {
                    block[pos] ^= flip;
                }
                let mut reference = block.clone();
                let res = fec.decode(&mut block);
                let ref_outcome = reference_decode(&fec, &mut reference);
                prop_assert_eq!(res.outcome, ref_outcome);
                if res.accepted() {
                    prop_assert_eq!(block, reference);
                }
            }

            #[test]
            fn any_three_byte_burst_is_corrected(
                data in proptest::collection::vec(any::<u8>(), 250),
                start in 0usize..254,
                flips in proptest::collection::vec(1u8..=255, 3),
            ) {
                let fec = InterleavedFec::cxl_flit();
                let clean = fec.encode(&data);
                let mut block = clean.clone();
                for (i, f) in flips.iter().enumerate() {
                    block[start + i] ^= f;
                }
                let res = fec.decode(&mut block);
                prop_assert!(res.outcome.is_corrected());
                prop_assert_eq!(&block[..250], &data[..]);
            }
        }
    }
}
