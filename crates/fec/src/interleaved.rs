//! The CXL 256-byte flit FEC layout: 3-way interleaved single-symbol
//! correction.
//!
//! Per Section 2.5 / Fig. 3 of the paper, the 250-byte block formed by the
//! 2-byte header, 240-byte payload and 8-byte CRC is distributed round-robin
//! over three sub-blocks of 84/83/83 bytes. Each sub-block receives two
//! Reed–Solomon parity bytes (shortened RS(255, 253)), giving transmitted
//! sub-blocks of 86/85/85 bytes = 256 bytes total.
//!
//! On the wire, byte `i` of the 256-byte block belongs to way `i % 3`
//! (this holds for the parity region too, because 250 ≡ 1 (mod 3) and the
//! parity bytes are laid out to continue the round-robin). Consequently a
//! burst of up to three consecutive bytes places at most one error in each
//! sub-block and is always corrected; longer bursts overload at least one
//! sub-block and are detected with the probabilities analysed in
//! [`crate::stats`].

use crate::decoder::RsDecodeOutcome;
use crate::shortened::ShortenedRs;

/// Number of protected data bytes per CXL 256B flit (header + payload + CRC).
pub const CXL_FLIT_DATA_LEN: usize = 250;
/// Number of FEC parity bytes per CXL 256B flit.
pub const CXL_FLIT_FEC_LEN: usize = 6;
/// Total transmitted flit size.
pub const CXL_FLIT_TOTAL_LEN: usize = CXL_FLIT_DATA_LEN + CXL_FLIT_FEC_LEN;
/// Interleaving factor.
pub const CXL_FEC_WAYS: usize = 3;

/// Result of decoding one interleaved FEC block.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FlitFecResult {
    /// Aggregate outcome across all interleaved ways.
    pub outcome: RsDecodeOutcome,
    /// Per-way outcomes, in interleave order.
    pub per_way: Vec<RsDecodeOutcome>,
}

impl FlitFecResult {
    /// `true` if the flit was accepted (clean or fully corrected).
    pub fn accepted(&self) -> bool {
        self.outcome.accepted()
    }
}

/// An N-way interleaved single-symbol-correct FEC block codec.
#[derive(Clone, Debug)]
pub struct InterleavedFec {
    ways: Vec<ShortenedRs>,
    data_len: usize,
}

impl InterleavedFec {
    /// Builds an interleaved FEC over `data_len` bytes with `ways`
    /// round-robin sub-blocks, each protected by a shortened RS(255, 253).
    pub fn new(data_len: usize, ways: usize) -> Self {
        assert!(ways >= 1, "at least one interleave way required");
        assert!(data_len >= ways, "data must cover every way");
        let mut way_codes = Vec::with_capacity(ways);
        for w in 0..ways {
            // Way w receives data bytes w, w+ways, w+2·ways, ...
            let sub_len = (data_len - w).div_ceil(ways);
            way_codes.push(ShortenedRs::cxl_subblock(sub_len));
        }
        InterleavedFec {
            ways: way_codes,
            data_len,
        }
    }

    /// The CXL 256-byte flit geometry: 250 data bytes, 3 ways, 6 parity bytes.
    pub fn cxl_flit() -> Self {
        let fec = Self::new(CXL_FLIT_DATA_LEN, CXL_FEC_WAYS);
        debug_assert_eq!(fec.encoded_len(), CXL_FLIT_TOTAL_LEN);
        fec
    }

    /// Number of protected data bytes.
    pub fn data_len(&self) -> usize {
        self.data_len
    }

    /// Number of interleave ways.
    pub fn ways(&self) -> usize {
        self.ways.len()
    }

    /// Number of parity bytes appended by [`InterleavedFec::encode`].
    pub fn parity_len(&self) -> usize {
        self.ways.iter().map(|w| w.parity_len()).sum()
    }

    /// Total encoded length (data + parity).
    pub fn encoded_len(&self) -> usize {
        self.data_len + self.parity_len()
    }

    /// Sub-block data lengths, in way order (84/83/83 for the CXL flit).
    pub fn way_data_lens(&self) -> Vec<usize> {
        self.ways.iter().map(|w| w.data_len()).collect()
    }

    /// The way that wire position `i` of the encoded block belongs to.
    #[inline]
    pub fn way_of_position(&self, i: usize) -> usize {
        i % self.ways.len()
    }

    /// Splits an encoded block (or, with `data_only`, just the data portion)
    /// into per-way symbol vectors in wire order.
    fn deinterleave(&self, bytes: &[u8]) -> Vec<Vec<u8>> {
        let ways = self.ways.len();
        let mut subs: Vec<Vec<u8>> = (0..ways)
            .map(|_| Vec::with_capacity(bytes.len().div_ceil(ways)))
            .collect();
        for (i, &b) in bytes.iter().enumerate() {
            subs[i % ways].push(b);
        }
        subs
    }

    /// Writes per-way symbol vectors back into an interleaved byte buffer.
    fn reinterleave(&self, subs: &[Vec<u8>], out: &mut [u8]) {
        let ways = self.ways.len();
        let mut cursors = vec![0usize; ways];
        for (i, slot) in out.iter_mut().enumerate() {
            let w = i % ways;
            *slot = subs[w][cursors[w]];
            cursors[w] += 1;
        }
    }

    /// Encodes `data` (exactly [`data_len`](Self::data_len) bytes) into a
    /// transmitted block: the original data followed by the per-way parity
    /// bytes, laid out so the whole block stays round-robin interleaved.
    pub fn encode(&self, data: &[u8]) -> Vec<u8> {
        assert_eq!(data.len(), self.data_len, "wrong data length for this FEC");
        let ways = self.ways.len();
        let subs = self.deinterleave(data);
        // Compute parity per way, then emit parity bytes continuing the
        // round-robin pattern at wire positions data_len..encoded_len.
        let parities: Vec<Vec<u8>> = self
            .ways
            .iter()
            .zip(&subs)
            .map(|(way, sub)| way.code().parity_shortened(sub))
            .collect();
        let mut out = Vec::with_capacity(self.encoded_len());
        out.extend_from_slice(data);
        let mut cursors = vec![0usize; ways];
        for i in self.data_len..self.encoded_len() {
            let w = i % ways;
            out.push(parities[w][cursors[w]]);
            cursors[w] += 1;
        }
        out
    }

    /// Decodes a transmitted block in place.
    ///
    /// If every way is clean or correctable, the corrected block is written
    /// back and the aggregate outcome is reported. If any way detects an
    /// uncorrectable pattern the block is left untouched (a real switch or
    /// endpoint would discard it) and the aggregate outcome is
    /// [`RsDecodeOutcome::DetectedUncorrectable`].
    pub fn decode(&self, block: &mut [u8]) -> FlitFecResult {
        assert_eq!(
            block.len(),
            self.encoded_len(),
            "wrong block length for this FEC"
        );
        // Each way's word is its data symbols followed by its parity symbols,
        // which is exactly the order its wire positions appear in.
        let mut words = self.deinterleave(block);

        let mut per_way = Vec::with_capacity(self.ways.len());
        let mut total_corrected = 0usize;
        let mut any_uncorrectable = false;
        for (w, word) in self.ways.iter().zip(words.iter_mut()) {
            debug_assert_eq!(word.len(), w.word_len());
            let outcome = w.decode_in_place(word);
            match outcome {
                RsDecodeOutcome::Corrected { symbols } => total_corrected += symbols,
                RsDecodeOutcome::DetectedUncorrectable => any_uncorrectable = true,
                RsDecodeOutcome::NoError => {}
            }
            per_way.push(outcome);
        }

        if any_uncorrectable {
            return FlitFecResult {
                outcome: RsDecodeOutcome::DetectedUncorrectable,
                per_way,
            };
        }

        self.reinterleave(&words, block);

        let outcome = if total_corrected == 0 {
            RsDecodeOutcome::NoError
        } else {
            RsDecodeOutcome::Corrected {
                symbols: total_corrected,
            }
        };
        FlitFecResult { outcome, per_way }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_data(len: usize, seed: u64) -> Vec<u8> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..len).map(|_| rng.random()).collect()
    }

    #[test]
    fn cxl_flit_geometry() {
        let fec = InterleavedFec::cxl_flit();
        assert_eq!(fec.data_len(), 250);
        assert_eq!(fec.ways(), 3);
        assert_eq!(fec.parity_len(), 6);
        assert_eq!(fec.encoded_len(), 256);
        let lens = fec.way_data_lens();
        assert_eq!(lens.iter().sum::<usize>(), 250);
        assert_eq!(lens, vec![84, 83, 83]);
        // Every wire position, parity included, follows the i % 3 rule.
        for i in 0..256 {
            assert_eq!(fec.way_of_position(i), i % 3);
        }
    }

    #[test]
    fn clean_round_trip() {
        let fec = InterleavedFec::cxl_flit();
        let data = random_data(250, 1);
        let mut block = fec.encode(&data);
        assert_eq!(block.len(), 256);
        let res = fec.decode(&mut block);
        assert_eq!(res.outcome, RsDecodeOutcome::NoError);
        assert!(res.accepted());
        assert_eq!(&block[..250], &data[..]);
    }

    #[test]
    fn corrects_three_byte_bursts_anywhere_including_the_parity_tail() {
        let fec = InterleavedFec::cxl_flit();
        let data = random_data(250, 2);
        let clean = fec.encode(&data);
        for start in 0..=253 {
            let mut block = clean.clone();
            block[start] ^= 0xFF;
            block[start + 1] ^= 0x3C;
            block[start + 2] ^= 0x81;
            let res = fec.decode(&mut block);
            assert!(res.outcome.is_corrected(), "burst at {start} not corrected");
            assert_eq!(res.outcome.corrected_symbols(), 3);
            assert_eq!(
                &block[..250],
                &data[..],
                "burst at {start} produced wrong data"
            );
            assert_eq!(block, clean, "burst at {start} left parity corrupted");
        }
    }

    #[test]
    fn corrects_single_errors_in_the_parity_region() {
        let fec = InterleavedFec::cxl_flit();
        let data = random_data(250, 3);
        let clean = fec.encode(&data);
        for pos in 250..256 {
            let mut block = clean.clone();
            block[pos] ^= 0x42;
            let res = fec.decode(&mut block);
            assert!(
                res.outcome.is_corrected(),
                "parity error at {pos} not corrected"
            );
            assert_eq!(&block[..250], &data[..]);
        }
    }

    #[test]
    fn per_way_outcomes_are_reported() {
        let fec = InterleavedFec::cxl_flit();
        let data = random_data(250, 4);
        let clean = fec.encode(&data);
        let mut block = clean.clone();
        // Bytes 0 and 3 both belong to way 0; byte 1 → way 1.
        block[0] ^= 0x01;
        block[1] ^= 0x02;
        let res = fec.decode(&mut block);
        assert!(res.outcome.is_corrected());
        assert_eq!(res.per_way.len(), 3);
        assert!(res.per_way[0].is_corrected());
        assert!(res.per_way[1].is_corrected());
        assert_eq!(res.per_way[2], RsDecodeOutcome::NoError);
    }

    #[test]
    fn overloaded_way_with_equal_magnitudes_is_detected_and_block_untouched() {
        let fec = InterleavedFec::cxl_flit();
        let data = random_data(250, 5);
        let clean = fec.encode(&data);
        let mut block = clean.clone();
        // Two equal-magnitude errors in the same way (positions 0 and 3 are
        // both way 0) force S0 = 0, S1 ≠ 0 → detected uncorrectable.
        block[0] ^= 0x99;
        block[3] ^= 0x99;
        let snapshot = block.clone();
        let res = fec.decode(&mut block);
        assert_eq!(res.outcome, RsDecodeOutcome::DetectedUncorrectable);
        assert!(!res.accepted());
        assert_eq!(block, snapshot, "uncorrectable block must not be modified");
    }

    #[test]
    fn six_byte_bursts_are_mostly_detected() {
        let mut rng = StdRng::seed_from_u64(6);
        let fec = InterleavedFec::cxl_flit();
        let data = random_data(250, 7);
        let clean = fec.encode(&data);
        let mut accepted = 0;
        let mut rejected = 0;
        for _ in 0..200 {
            let mut block = clean.clone();
            let start = rng.random_range(0usize..250);
            for i in 0..6 {
                block[start + i] ^= rng.random_range(1..=255u8);
            }
            let res = fec.decode(&mut block);
            if res.accepted() {
                accepted += 1;
            } else {
                rejected += 1;
            }
        }
        assert!(
            rejected > accepted,
            "6-byte bursts should mostly be detected"
        );
        assert_eq!(rejected + accepted, 200);
    }

    #[test]
    fn other_geometries_are_supported() {
        // 68-byte flit style geometry: 66 data bytes, 2 ways.
        let fec = InterleavedFec::new(66, 2);
        assert_eq!(fec.encoded_len(), 70);
        let data = random_data(66, 8);
        let mut block = fec.encode(&data);
        block[10] ^= 0x10;
        block[11] ^= 0x20;
        let res = fec.decode(&mut block);
        assert!(res.outcome.is_corrected());
        assert_eq!(&block[..66], &data[..]);
    }

    #[test]
    #[should_panic]
    fn encode_length_mismatch_panics() {
        let fec = InterleavedFec::cxl_flit();
        let _ = fec.encode(&[0u8; 100]);
    }

    #[test]
    #[should_panic]
    fn decode_length_mismatch_panics() {
        let fec = InterleavedFec::cxl_flit();
        let mut block = vec![0u8; 200];
        let _ = fec.decode(&mut block);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(32))]
            #[test]
            fn any_three_byte_burst_is_corrected(
                data in proptest::collection::vec(any::<u8>(), 250),
                start in 0usize..254,
                flips in proptest::collection::vec(1u8..=255, 3),
            ) {
                let fec = InterleavedFec::cxl_flit();
                let clean = fec.encode(&data);
                let mut block = clean.clone();
                for (i, f) in flips.iter().enumerate() {
                    block[start + i] ^= f;
                }
                let res = fec.decode(&mut block);
                prop_assert!(res.outcome.is_corrected());
                prop_assert_eq!(&block[..250], &data[..]);
            }
        }
    }
}
