//! # rxl-fec — Shortened Reed–Solomon FEC for CXL/RXL flits
//!
//! This crate implements the link-layer forward error correction that both
//! the baseline CXL 3.x protocol and the paper's RXL extension rely on
//! (paper Sections 2.5 and 6.4):
//!
//! * [`rs`] — a systematic Reed–Solomon encoder over GF(2^8) for arbitrary
//!   `RS(n, k)` parameters with `n ≤ 255`,
//! * [`decoder`] — a full syndrome / Berlekamp–Massey / Chien / Forney
//!   decoder that corrects up to `t = (n−k)/2` symbol errors and flags most
//!   uncorrectable patterns,
//! * [`ssc`] — the fast single-symbol-correct (t = 1) path used per flit
//!   sub-block,
//! * [`shortened`] — shortened-code handling: virtual zero padding plus the
//!   extra *detection* capability that arises when a would-be correction
//!   lands on a padded (constant-zero) position,
//! * [`interleaved`] — the CXL 256-byte flit layout: the 250-byte
//!   header+payload+CRC block is split 83/83/84 across three interleaved
//!   sub-blocks, each protected by two Reed–Solomon parity bytes, so that
//!   bursts of up to three symbols are always correctable,
//! * [`stats`] — Monte-Carlo harnesses that measure correction/detection/
//!   miscorrection fractions versus burst length, reproducing the 2/3, 8/9
//!   and 26/27 detection figures quoted in Section 2.5.
//!
//! # Example
//!
//! ```
//! use rxl_fec::InterleavedFec;
//!
//! let fec = InterleavedFec::cxl_flit();
//! let mut block = vec![0u8; 250];
//! block[10] = 0xAB;
//! let mut encoded = fec.encode(&block);
//! assert_eq!(encoded.len(), 256);
//!
//! // A three-byte burst (one symbol per interleaved sub-block) is corrected.
//! encoded[40] ^= 0xFF;
//! encoded[41] ^= 0x55;
//! encoded[42] ^= 0x0F;
//! let out = fec.decode(&mut encoded);
//! assert!(out.outcome.is_corrected());
//! assert_eq!(&encoded[..250], &block[..]);
//! ```

pub mod decoder;
pub mod interleaved;
pub mod rs;
pub mod shortened;
pub mod ssc;
pub mod stats;

pub use decoder::{RsDecodeOutcome, RsDecoder};
pub use interleaved::{FlitFecResult, InterleavedFec, CXL_FLIT_DATA_LEN, CXL_FLIT_TOTAL_LEN};
pub use rs::RsCode;
pub use shortened::ShortenedRs;
pub use ssc::SingleSymbolCorrector;
