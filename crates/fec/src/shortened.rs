//! Shortened Reed–Solomon codes.
//!
//! CXL flit sub-blocks carry only 83–84 data bytes but are protected by the
//! RS(255, 253) mother code: the remaining 170 leading data positions are
//! virtual zeros that are never transmitted (Section 2.5 of the paper).
//! Shortening has two consequences this module captures:
//!
//! 1. **Encoding** skips the virtual zeros (they do not change the parity).
//! 2. **Decoding** gains extra detection power: if the error-locator points at
//!    a virtual position, the word cannot be a correctable single-error
//!    pattern, so the decoder reports *detected uncorrectable* instead of
//!    miscorrecting. For the CXL geometry roughly two thirds of otherwise
//!    miscorrected patterns are caught this way.

use crate::decoder::{RsDecodeOutcome, RsDecoder};
use crate::rs::RsCode;
use crate::ssc::SingleSymbolCorrector;

/// A shortened Reed–Solomon code: `data_len` data symbols protected by the
/// parity of a longer mother code.
#[derive(Clone, Debug)]
pub struct ShortenedRs {
    code: RsCode,
    data_len: usize,
    ssc: Option<SingleSymbolCorrector>,
}

impl ShortenedRs {
    /// Creates a shortened code carrying `data_len` data symbols.
    pub fn new(code: RsCode, data_len: usize) -> Self {
        assert!(
            data_len >= 1,
            "shortened code needs at least one data symbol"
        );
        assert!(
            data_len <= code.k(),
            "shortened data length exceeds the mother code's k"
        );
        let ssc = if code.parity_len() == 2 {
            Some(SingleSymbolCorrector::new(code.clone()))
        } else {
            None
        };
        ShortenedRs {
            code,
            data_len,
            ssc,
        }
    }

    /// A CXL flit sub-block: `data_len` bytes protected by RS(255, 253).
    pub fn cxl_subblock(data_len: usize) -> Self {
        Self::new(RsCode::rs_255_253(), data_len)
    }

    /// Number of data symbols per shortened word.
    pub fn data_len(&self) -> usize {
        self.data_len
    }

    /// Number of parity symbols appended to each word.
    pub fn parity_len(&self) -> usize {
        self.code.parity_len()
    }

    /// Total transmitted word length (data + parity).
    pub fn word_len(&self) -> usize {
        self.data_len + self.code.parity_len()
    }

    /// The mother code.
    pub fn code(&self) -> &RsCode {
        &self.code
    }

    /// Fraction of mother-code positions actually used by the shortened word;
    /// miscorrections land outside this fraction (and are therefore detected)
    /// with probability ≈ `1 − used_fraction`.
    pub fn used_fraction(&self) -> f64 {
        self.word_len() as f64 / self.code.n() as f64
    }

    /// Encodes `data` (exactly `data_len` symbols) into a transmitted word of
    /// `data ‖ parity`.
    pub fn encode(&self, data: &[u8]) -> Vec<u8> {
        assert_eq!(data.len(), self.data_len, "wrong shortened data length");
        let mut out = Vec::with_capacity(self.word_len());
        out.extend_from_slice(data);
        out.extend_from_slice(&self.code.parity_shortened(data));
        out
    }

    /// Decodes a transmitted word in place. Corrections that would land on a
    /// virtual (padded) position are reported as detected-uncorrectable.
    pub fn decode_in_place(&self, word: &mut [u8]) -> RsDecodeOutcome {
        assert_eq!(word.len(), self.word_len(), "wrong shortened word length");
        if let Some(ssc) = &self.ssc {
            // The SSC path already rejects out-of-range corrections.
            return ssc.decode_in_place(word).0;
        }
        // General path: pad to the mother-code length, decode, and reject
        // corrections that touch the padding.
        let pad = self.code.n() - self.word_len();
        let mut full = vec![0u8; pad];
        full.extend_from_slice(word);
        let decoder = RsDecoder::new(self.code.clone());
        let (outcome, locations) = decoder.decode_with_locations(&mut full);
        match outcome {
            RsDecodeOutcome::NoError => RsDecodeOutcome::NoError,
            RsDecodeOutcome::DetectedUncorrectable => RsDecodeOutcome::DetectedUncorrectable,
            RsDecodeOutcome::Corrected { symbols } => {
                if locations.iter().any(|&l| l < pad) {
                    return RsDecodeOutcome::DetectedUncorrectable;
                }
                word.copy_from_slice(&full[pad..]);
                RsDecodeOutcome::Corrected { symbols }
            }
        }
    }

    /// Returns `true` if `word` is a valid shortened codeword.
    pub fn is_codeword(&self, word: &[u8]) -> bool {
        assert_eq!(word.len(), self.word_len());
        let pad = self.code.n() - self.word_len();
        let mut full = vec![0u8; pad];
        full.extend_from_slice(word);
        self.code.is_codeword(&full)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn geometry_of_the_cxl_subblock() {
        let sb = ShortenedRs::cxl_subblock(83);
        assert_eq!(sb.data_len(), 83);
        assert_eq!(sb.parity_len(), 2);
        assert_eq!(sb.word_len(), 85);
        assert!((sb.used_fraction() - 85.0 / 255.0).abs() < 1e-12);
    }

    #[test]
    fn encode_decode_round_trip_without_errors() {
        let sb = ShortenedRs::cxl_subblock(84);
        let data: Vec<u8> = (0..84).map(|i| (i * 11) as u8).collect();
        let mut word = sb.encode(&data);
        assert!(sb.is_codeword(&word));
        assert_eq!(sb.decode_in_place(&mut word), RsDecodeOutcome::NoError);
        assert_eq!(&word[..84], &data[..]);
    }

    #[test]
    fn corrects_single_errors_everywhere() {
        let sb = ShortenedRs::cxl_subblock(83);
        let data: Vec<u8> = (0..83).map(|i| (i as u8).wrapping_mul(29)).collect();
        let clean = sb.encode(&data);
        for pos in 0..clean.len() {
            let mut word = clean.clone();
            word[pos] ^= 0x5A;
            assert_eq!(
                sb.decode_in_place(&mut word),
                RsDecodeOutcome::Corrected { symbols: 1 }
            );
            assert_eq!(word, clean);
        }
    }

    #[test]
    fn double_error_detection_rate_is_about_two_thirds() {
        let mut rng = StdRng::seed_from_u64(2024);
        let sb = ShortenedRs::cxl_subblock(83);
        let data: Vec<u8> = (0..83).map(|_| rng.random()).collect();
        let clean = sb.encode(&data);
        let trials = 4000;
        let mut detected = 0u32;
        let mut miscorrected = 0u32;
        for _ in 0..trials {
            let mut word = clean.clone();
            let p1 = rng.random_range(0..word.len());
            let mut p2 = rng.random_range(0..word.len());
            while p2 == p1 {
                p2 = rng.random_range(0..word.len());
            }
            word[p1] ^= rng.random_range(1..=255u8);
            word[p2] ^= rng.random_range(1..=255u8);
            match sb.decode_in_place(&mut word) {
                RsDecodeOutcome::DetectedUncorrectable => detected += 1,
                RsDecodeOutcome::Corrected { .. } => {
                    if word != clean {
                        miscorrected += 1;
                    }
                }
                RsDecodeOutcome::NoError => {}
            }
        }
        let frac = detected as f64 / trials as f64;
        assert!(
            (0.58..0.76).contains(&frac),
            "expected ≈2/3 detection, measured {frac:.3} (miscorrected {miscorrected})"
        );
    }

    #[test]
    fn general_path_also_respects_virtual_positions() {
        // Use a t = 2 mother code so the non-SSC path is exercised.
        let sb = ShortenedRs::new(RsCode::new(255, 251), 60);
        let data: Vec<u8> = (0..60).map(|i| (i + 1) as u8).collect();
        let clean = sb.encode(&data);
        // Single and double errors inside the word are corrected.
        let mut word = clean.clone();
        word[10] ^= 0x0F;
        word[40] ^= 0xF0;
        assert!(sb.decode_in_place(&mut word).is_corrected());
        assert_eq!(word, clean);
        // Triple errors are mostly detected; verify at least that the decode
        // never claims success while leaving wrong data silently *and*
        // reporting corrections into the padding (structural guarantee).
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..200 {
            let mut w = clean.clone();
            for _ in 0..3 {
                let p = rng.random_range(0..w.len());
                w[p] ^= rng.random_range(1..=255u8);
            }
            // Outcome may be Corrected (miscorrection) or Detected; both are
            // legal. What must never happen is a panic or a buffer of the
            // wrong length.
            let _ = sb.decode_in_place(&mut w);
            assert_eq!(w.len(), clean.len());
        }
    }

    #[test]
    #[should_panic]
    fn encode_rejects_wrong_length() {
        let sb = ShortenedRs::cxl_subblock(83);
        let _ = sb.encode(&[0u8; 10]);
    }

    #[test]
    #[should_panic]
    fn data_len_larger_than_k_is_rejected() {
        let _ = ShortenedRs::new(RsCode::new(15, 11), 12);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(48))]
            #[test]
            fn single_error_round_trip(
                data in proptest::collection::vec(any::<u8>(), 83),
                pos in 0usize..85,
                flip in 1u8..=255,
            ) {
                let sb = ShortenedRs::cxl_subblock(83);
                let clean = sb.encode(&data);
                let mut word = clean.clone();
                word[pos] ^= flip;
                prop_assert_eq!(sb.decode_in_place(&mut word), RsDecodeOutcome::Corrected { symbols: 1 });
                prop_assert_eq!(word, clean);
            }
        }
    }
}
