//! Fast single-symbol-correction (SSC) decoding for two-parity RS codes.
//!
//! The CXL flit FEC protects each interleaved sub-block with exactly two
//! Reed–Solomon parity symbols, i.e. `t = 1`. For that special case the full
//! Berlekamp–Massey machinery collapses to two syndromes:
//!
//! * `S0 = S1 = 0` — the word is clean,
//! * `S0 ≠ 0` and `S1 ≠ 0` — a single error of magnitude `S0` sits at degree
//!   `p = log_α(S1 / S0)`,
//! * anything else (exactly one zero syndrome, or `p` outside the word) — an
//!   uncorrectable pattern was detected.
//!
//! The "p outside the word" case is the shortened-code detection capability
//! the paper highlights in Section 2.5: positions that fall into the virtual
//! zero padding cannot legitimately be corrected, so the decoder reports the
//! pattern instead of silently miscorrecting.

use rxl_gf256::{ConstMul, Gf256};

use crate::decoder::RsDecodeOutcome;
use crate::rs::RsCode;

/// Nibble-split half-tables for the S1 Horner step's multiply-by-α, built
/// at compile time (α is a property of the field, not of any code).
const ALPHA_MUL: ConstMul = ConstMul::new(rxl_gf256::tables::GF256_GENERATOR);

/// Single-symbol-correct decoder for a (possibly shortened) two-parity code.
#[derive(Clone, Debug)]
pub struct SingleSymbolCorrector {
    code: RsCode,
}

impl SingleSymbolCorrector {
    /// Creates an SSC decoder. Panics unless the code has exactly two parity
    /// symbols.
    pub fn new(code: RsCode) -> Self {
        assert_eq!(
            code.parity_len(),
            2,
            "SSC requires exactly 2 parity symbols"
        );
        SingleSymbolCorrector { code }
    }

    /// The underlying mother code.
    pub fn code(&self) -> &RsCode {
        &self.code
    }

    /// Decodes a (possibly shortened) word of `word.len() ≤ n` symbols in
    /// place. The word is interpreted as the low-degree tail of the
    /// mother-code codeword, i.e. the omitted leading symbols are virtual
    /// zeros.
    ///
    /// Returns the outcome plus the corrected index (if any).
    pub fn decode_in_place(&self, word: &mut [u8]) -> (RsDecodeOutcome, Option<usize>) {
        let len = word.len();
        assert!(len <= self.code.n(), "word longer than the mother code");
        assert!(len > 2, "word must contain at least one data symbol");

        // Syndromes S0 = r(α^0), S1 = r(α^1), evaluated over the shortened
        // word only: virtual leading zeros contribute nothing. S0 is a plain
        // XOR of symbols (evaluation at α^0 = 1); the S1 Horner step
        // multiplies by α through the nibble-split half-tables.
        let mut s0_raw = 0u8;
        let mut s1_raw = 0u8;
        for &b in word.iter() {
            s0_raw ^= b;
            s1_raw = ALPHA_MUL.mul(s1_raw) ^ b;
        }
        let s0 = Gf256::new(s0_raw);
        let s1 = Gf256::new(s1_raw);

        if s0.is_zero() && s1.is_zero() {
            return (RsDecodeOutcome::NoError, None);
        }
        if s0.is_zero() || s1.is_zero() {
            return (RsDecodeOutcome::DetectedUncorrectable, None);
        }

        // Single error at degree p: S1/S0 = α^p.
        let ratio = s1 / s0;
        let p = ratio.log().expect("ratio of non-zero elements is non-zero") as usize;
        if p >= len {
            // The correction points into the virtual zero padding of the
            // shortened code: definitely more than one error. Detected.
            return (RsDecodeOutcome::DetectedUncorrectable, None);
        }
        let index = len - 1 - p;
        word[index] ^= s0.value();
        (RsDecodeOutcome::Corrected { symbols: 1 }, Some(index))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decoder::RsDecoder;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn encode_shortened(code: &RsCode, data: &[u8]) -> Vec<u8> {
        let mut word = data.to_vec();
        word.extend_from_slice(&code.parity_shortened(data));
        word
    }

    #[test]
    fn clean_words_pass() {
        let code = RsCode::rs_255_253();
        let ssc = SingleSymbolCorrector::new(code.clone());
        let data: Vec<u8> = (0..83).map(|i| (i * 3) as u8).collect();
        let mut word = encode_shortened(&code, &data);
        let (outcome, loc) = ssc.decode_in_place(&mut word);
        assert_eq!(outcome, RsDecodeOutcome::NoError);
        assert_eq!(loc, None);
    }

    #[test]
    fn corrects_any_single_symbol_error_in_a_shortened_word() {
        let code = RsCode::rs_255_253();
        let ssc = SingleSymbolCorrector::new(code.clone());
        let data: Vec<u8> = (0..83).map(|i| (i as u8).wrapping_mul(7)).collect();
        let clean = encode_shortened(&code, &data);
        for pos in 0..clean.len() {
            let mut word = clean.clone();
            word[pos] ^= 0xA5;
            let (outcome, loc) = ssc.decode_in_place(&mut word);
            assert_eq!(
                outcome,
                RsDecodeOutcome::Corrected { symbols: 1 },
                "pos {pos}"
            );
            assert_eq!(loc, Some(pos));
            assert_eq!(word, clean);
        }
    }

    #[test]
    fn matches_the_general_decoder_on_full_length_words() {
        let mut rng = StdRng::seed_from_u64(17);
        let code = RsCode::rs_255_253();
        let ssc = SingleSymbolCorrector::new(code.clone());
        let general = RsDecoder::new(code.clone());
        let data: Vec<u8> = (0..253).map(|_| rng.random()).collect();
        let clean = code.encode(&data);
        for _ in 0..50 {
            let pos = rng.random_range(0usize..255);
            let flip: u8 = rng.random_range(1..=255);
            let mut w1 = clean.clone();
            let mut w2 = clean.clone();
            w1[pos] ^= flip;
            w2[pos] ^= flip;
            let (o1, _) = ssc.decode_in_place(&mut w1);
            let o2 = general.decode_in_place(&mut w2);
            assert_eq!(o1, o2);
            assert_eq!(w1, w2);
        }
    }

    #[test]
    fn equal_magnitude_double_error_is_detected() {
        let code = RsCode::rs_255_253();
        let ssc = SingleSymbolCorrector::new(code.clone());
        let data: Vec<u8> = vec![0x11; 83];
        let clean = encode_shortened(&code, &data);
        let mut word = clean.clone();
        word[5] ^= 0x77;
        word[50] ^= 0x77;
        let (outcome, _) = ssc.decode_in_place(&mut word);
        assert_eq!(outcome, RsDecodeOutcome::DetectedUncorrectable);
        assert_eq!(
            word,
            clean
                .iter()
                .enumerate()
                .map(|(i, &b)| if i == 5 || i == 50 { b ^ 0x77 } else { b })
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn shortened_code_detects_out_of_range_corrections() {
        // Count, over random double errors, how many are flagged because the
        // implied correction lands in the virtual padding. For an 85-symbol
        // shortened word of a 255-symbol mother code roughly two thirds of
        // miscorrections point out of range (Section 2.5 of the paper).
        let mut rng = StdRng::seed_from_u64(7);
        let code = RsCode::rs_255_253();
        let ssc = SingleSymbolCorrector::new(code.clone());
        let data: Vec<u8> = (0..83).map(|_| rng.random()).collect();
        let clean = encode_shortened(&code, &data);

        let trials = 3000;
        let mut detected = 0u32;
        for _ in 0..trials {
            let mut word = clean.clone();
            let p1 = rng.random_range(0..word.len());
            let mut p2 = rng.random_range(0..word.len());
            while p2 == p1 {
                p2 = rng.random_range(0..word.len());
            }
            word[p1] ^= rng.random_range(1..=255u8);
            word[p2] ^= rng.random_range(1..=255u8);
            if ssc.decode_in_place(&mut word).0 == RsDecodeOutcome::DetectedUncorrectable {
                detected += 1;
            }
        }
        let fraction = detected as f64 / trials as f64;
        assert!(
            (0.58..0.76).contains(&fraction),
            "expected ≈2/3 detection of double errors, measured {fraction:.3}"
        );
    }

    #[test]
    #[should_panic]
    fn rejects_codes_with_more_parity() {
        let _ = SingleSymbolCorrector::new(RsCode::new(255, 239));
    }

    #[test]
    #[should_panic]
    fn rejects_oversized_words() {
        let code = RsCode::new(15, 13);
        let ssc = SingleSymbolCorrector::new(code);
        let mut word = vec![0u8; 20];
        let _ = ssc.decode_in_place(&mut word);
    }
}
