//! Monte-Carlo measurement of FEC correction / detection / miscorrection
//! behaviour versus burst length.
//!
//! Section 2.5 of the paper states that the CXL 3-way interleaved SSC FEC
//!
//! * corrects all bursts of up to 3 symbols,
//! * detects about 2/3 of 4-symbol bursts,
//! * detects about 8/9 of 5-symbol bursts,
//! * detects about 26/27 of bursts of 6 symbols or more,
//!
//! because a flit-level miscorrection requires *every* overloaded sub-block
//! to miscorrect, and each shortened sub-block miscorrects with probability
//! ≈ 1/3 (85 used positions out of 255). The harness here measures those
//! fractions directly against the real decoder; the corresponding closed-form
//! model lives in `rxl-analysis::fec_model`.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::interleaved::InterleavedFec;

/// Outcome counts of a burst-injection experiment.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BurstReport {
    /// Trials where the decoder accepted the block and the data was correct.
    pub corrected: u64,
    /// Trials where the decoder reported an uncorrectable pattern.
    pub detected: u64,
    /// Trials where the decoder accepted the block but the data was wrong.
    pub miscorrected: u64,
}

impl BurstReport {
    /// Total number of trials recorded.
    pub fn trials(&self) -> u64 {
        self.corrected + self.detected + self.miscorrected
    }

    /// Fraction of trials corrected to the right data.
    pub fn corrected_fraction(&self) -> f64 {
        self.corrected as f64 / self.trials().max(1) as f64
    }

    /// Fraction of trials where the erroneous block was detected (and would
    /// therefore be dropped / retried rather than consumed).
    pub fn detected_fraction(&self) -> f64 {
        self.detected as f64 / self.trials().max(1) as f64
    }

    /// Fraction of trials where the decoder silently produced wrong data.
    pub fn miscorrected_fraction(&self) -> f64 {
        self.miscorrected as f64 / self.trials().max(1) as f64
    }

    /// Of the trials the FEC could not genuinely repair (detected +
    /// miscorrected), the fraction it at least detected.
    pub fn detection_given_uncorrectable(&self) -> f64 {
        let unrepairable = self.detected + self.miscorrected;
        if unrepairable == 0 {
            return 1.0;
        }
        self.detected as f64 / unrepairable as f64
    }
}

/// Injects `trials` random bursts of exactly `burst_symbols` consecutive
/// bytes (each byte XORed with a uniformly random non-zero value) into freshly
/// encoded random blocks and classifies the decoder's behaviour.
pub fn burst_experiment(
    fec: &InterleavedFec,
    burst_symbols: usize,
    trials: u64,
    seed: u64,
) -> BurstReport {
    assert!(burst_symbols >= 1);
    assert!(burst_symbols <= fec.encoded_len());
    let mut rng = StdRng::seed_from_u64(seed);
    let mut report = BurstReport::default();
    for _ in 0..trials {
        let data: Vec<u8> = (0..fec.data_len()).map(|_| rng.random()).collect();
        let clean = fec.encode(&data);
        let mut block = clean.clone();
        let start = rng.random_range(0..=fec.encoded_len() - burst_symbols);
        for i in 0..burst_symbols {
            block[start + i] ^= rng.random_range(1..=255u8);
        }
        let res = fec.decode(&mut block);
        if !res.accepted() {
            report.detected += 1;
        } else if block == clean {
            report.corrected += 1;
        } else {
            report.miscorrected += 1;
        }
    }
    report
}

/// Injects `trials` blocks with each bit independently flipped with
/// probability `ber` and classifies the decoder's behaviour. Used to measure
/// the flit error rate decomposition (correctable vs. detected vs. silent)
/// under the random-error channel of Section 7.1.
pub fn random_ber_experiment(
    fec: &InterleavedFec,
    ber: f64,
    trials: u64,
    seed: u64,
) -> BurstReport {
    assert!((0.0..1.0).contains(&ber));
    let mut rng = StdRng::seed_from_u64(seed);
    let mut report = BurstReport::default();
    for _ in 0..trials {
        let data: Vec<u8> = (0..fec.data_len()).map(|_| rng.random()).collect();
        let clean = fec.encode(&data);
        let mut block = clean.clone();
        for byte in block.iter_mut() {
            for bit in 0..8 {
                if rng.random_bool(ber) {
                    *byte ^= 1 << bit;
                }
            }
        }
        let res = fec.decode(&mut block);
        if !res.accepted() {
            report.detected += 1;
        } else if block == clean {
            report.corrected += 1;
        } else {
            report.miscorrected += 1;
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_fraction_arithmetic() {
        let r = BurstReport {
            corrected: 50,
            detected: 40,
            miscorrected: 10,
        };
        assert_eq!(r.trials(), 100);
        assert!((r.corrected_fraction() - 0.5).abs() < 1e-12);
        assert!((r.detected_fraction() - 0.4).abs() < 1e-12);
        assert!((r.miscorrected_fraction() - 0.1).abs() < 1e-12);
        assert!((r.detection_given_uncorrectable() - 0.8).abs() < 1e-12);
        assert_eq!(BurstReport::default().detection_given_uncorrectable(), 1.0);
    }

    #[test]
    fn three_symbol_bursts_are_always_corrected() {
        let fec = InterleavedFec::cxl_flit();
        for burst in 1..=3usize {
            let r = burst_experiment(&fec, burst, 150, 10 + burst as u64);
            assert_eq!(
                r.detected, 0,
                "burst {burst} was detected instead of corrected"
            );
            assert_eq!(r.miscorrected, 0, "burst {burst} was miscorrected");
            assert_eq!(r.corrected, 150);
        }
    }

    #[test]
    fn four_symbol_bursts_are_detected_about_two_thirds_of_the_time() {
        let fec = InterleavedFec::cxl_flit();
        let r = burst_experiment(&fec, 4, 1200, 77);
        let frac = r.detection_given_uncorrectable();
        assert!(
            (0.58..0.76).contains(&frac),
            "4-symbol burst detection fraction {frac:.3}, expected ≈ 2/3"
        );
        // No 4-symbol burst can be genuinely corrected.
        assert_eq!(r.corrected, 0);
    }

    #[test]
    fn five_symbol_bursts_are_detected_about_eight_ninths_of_the_time() {
        let fec = InterleavedFec::cxl_flit();
        let r = burst_experiment(&fec, 5, 1200, 78);
        let frac = r.detection_given_uncorrectable();
        assert!(
            (0.83..0.95).contains(&frac),
            "5-symbol burst detection fraction {frac:.3}, expected ≈ 8/9"
        );
    }

    #[test]
    fn six_symbol_bursts_are_detected_about_26_of_27_times() {
        let fec = InterleavedFec::cxl_flit();
        let r = burst_experiment(&fec, 6, 1500, 79);
        let frac = r.detection_given_uncorrectable();
        assert!(
            frac > 0.92,
            "6-symbol burst detection fraction {frac:.3}, expected ≈ 26/27"
        );
    }

    #[test]
    fn random_ber_experiment_classifies_every_trial() {
        let fec = InterleavedFec::cxl_flit();
        let r = random_ber_experiment(&fec, 1e-3, 150, 99);
        assert_eq!(r.trials(), 150);
        // At BER 1e-3 a 2048-bit flit carries ~2 bit errors on average: most
        // flits are corrected outright, a minority is detected-uncorrectable,
        // and only a small tail is silently miscorrected (same-way collisions
        // that also land inside the used positions of the shortened code).
        assert!(r.corrected > 75, "corrected = {}", r.corrected);
        assert!(
            r.miscorrected < r.corrected,
            "miscorrection should be the rare outcome: {r:?}"
        );
    }
}
