//! Systematic Reed–Solomon encoding over GF(2^8).
//!
//! An `RS(n, k)` code over 8-bit symbols has codewords of `n ≤ 255` symbols,
//! of which `k` carry data and `n − k = 2t` carry parity; it corrects up to
//! `t` symbol errors. Codewords are laid out data-first:
//! `[d_0 … d_{k-1} | p_0 … p_{2t-1}]`.
//!
//! The generator polynomial is `g(x) = Π_{i=0}^{2t-1} (x − α^{fcr+i})` where
//! `fcr` is the first consecutive root exponent (0 in this crate).

use rxl_gf256::{ConstMul, Gf256, GfPoly};

/// First consecutive root exponent used throughout this crate.
pub const FIRST_CONSECUTIVE_ROOT: u32 = 0;

/// An `RS(n, k)` Reed–Solomon code description plus its generator polynomial.
#[derive(Clone, Debug)]
pub struct RsCode {
    n: usize,
    k: usize,
    generator: GfPoly,
    /// Nibble-split multipliers for the generator coefficients
    /// `g_0 … g_{2t-1}` (the parity LFSR taps), in ascending degree order.
    /// The monic leading coefficient needs no table.
    gen_mul: Vec<ConstMul>,
    /// Nibble-split multipliers for the syndrome evaluation points
    /// `α^{fcr+j}`, one per syndrome (the Horner step constants).
    syndrome_mul: Vec<ConstMul>,
}

impl RsCode {
    /// Creates an `RS(n, k)` code. Panics unless `k < n ≤ 255` and `n − k` is
    /// even and at least 2.
    pub fn new(n: usize, k: usize) -> Self {
        assert!(n <= 255, "RS over GF(2^8) requires n ≤ 255");
        assert!(k < n, "k must be smaller than n");
        let parity = n - k;
        assert!(
            parity >= 2 && parity.is_multiple_of(2),
            "n − k must be an even number ≥ 2"
        );
        let generator = Self::build_generator(parity);
        let gen_mul = generator.coeffs()[..parity]
            .iter()
            .map(|c| ConstMul::new(c.value()))
            .collect();
        let syndrome_mul = (0..parity)
            .map(|j| ConstMul::new(Gf256::alpha_pow(FIRST_CONSECUTIVE_ROOT + j as u32).value()))
            .collect();
        RsCode {
            n,
            k,
            generator,
            gen_mul,
            syndrome_mul,
        }
    }

    /// The CXL flit sub-block code: a shortened RS(255, 253) mother code with
    /// two parity symbols (single-symbol correction).
    pub fn rs_255_253() -> Self {
        Self::new(255, 253)
    }

    fn build_generator(parity: usize) -> GfPoly {
        // g(x) = Π (x − α^{fcr+i}); subtraction equals addition in GF(2^8).
        let mut g = GfPoly::one();
        for i in 0..parity {
            let root = Gf256::alpha_pow(FIRST_CONSECUTIVE_ROOT + i as u32);
            let factor = GfPoly::from_coeffs(vec![root, Gf256::ONE]);
            g = g.mul(&factor);
        }
        g
    }

    /// Codeword length in symbols.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Data length in symbols.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of parity symbols (`2t`).
    pub fn parity_len(&self) -> usize {
        self.n - self.k
    }

    /// Maximum number of correctable symbol errors `t`.
    pub fn t(&self) -> usize {
        (self.n - self.k) / 2
    }

    /// The generator polynomial (ascending degree order).
    pub fn generator(&self) -> &GfPoly {
        &self.generator
    }

    /// Computes the parity symbols for a full-length (`k`-symbol) data block.
    ///
    /// The parity is the remainder of `data(x) · x^{2t}` divided by the
    /// generator polynomial, returned most-significant-first so the codeword
    /// is simply `data ‖ parity`.
    pub fn parity(&self, data: &[u8]) -> Vec<u8> {
        assert_eq!(data.len(), self.k, "data must be exactly k symbols");
        self.parity_unchecked(data)
    }

    /// Computes parity for a data block of *at most* `k` symbols, treating the
    /// missing leading symbols as zeros (shortened-code encoding). The virtual
    /// zeros contribute nothing to the LFSR state, so they can be skipped.
    pub fn parity_shortened(&self, data: &[u8]) -> Vec<u8> {
        assert!(data.len() <= self.k, "data longer than k symbols");
        self.parity_unchecked(data)
    }

    fn parity_unchecked(&self, data: &[u8]) -> Vec<u8> {
        let parity_len = self.parity_len();
        // LFSR division: process data symbols most-significant-first.
        // `lfsr[0]` holds the coefficient that is about to shift out. The
        // generator is monic of degree parity_len, and each tap multiply
        // goes through its precomputed nibble-split half-tables.
        let mut lfsr = vec![0u8; parity_len];
        for &d in data {
            let feedback = d ^ lfsr[0];
            for i in 0..parity_len {
                let next = if i + 1 < parity_len { lfsr[i + 1] } else { 0 };
                lfsr[i] = next ^ self.gen_mul[parity_len - 1 - i].mul(feedback);
            }
        }
        lfsr
    }

    /// Encodes a full-length data block into an `n`-symbol codeword.
    pub fn encode(&self, data: &[u8]) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.n);
        out.extend_from_slice(data);
        out.extend_from_slice(&self.parity(data));
        out
    }

    /// Returns `true` if `codeword` (length `n`) is a valid codeword, i.e. all
    /// syndromes are zero.
    pub fn is_codeword(&self, codeword: &[u8]) -> bool {
        assert_eq!(codeword.len(), self.n);
        self.syndromes(codeword).iter().all(|s| s.is_zero())
    }

    /// Computes the `2t` syndromes `S_j = r(α^{fcr+j})` of a received word.
    /// The received word is interpreted with its **first** symbol as the
    /// highest-degree coefficient (matching the data-first codeword layout).
    pub fn syndromes(&self, received: &[u8]) -> Vec<Gf256> {
        let mut out = Vec::with_capacity(self.syndrome_mul.len());
        for xm in &self.syndrome_mul {
            // Horner evaluation with received[0] as the highest-degree term;
            // the per-symbol multiply by α^{fcr+j} runs branch-free through
            // the point's nibble-split half-tables.
            let mut acc = 0u8;
            for &r in received {
                acc = xm.mul(acc) ^ r;
            }
            out.push(Gf256::new(acc));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generator_has_expected_degree_and_roots() {
        let code = RsCode::new(255, 239); // t = 8
        let g = code.generator();
        assert_eq!(g.degree(), 16);
        for i in 0..16 {
            assert!(
                g.eval(Gf256::alpha_pow(i)).is_zero(),
                "α^{i} must be a root"
            );
        }
        // A non-root should not evaluate to zero.
        assert!(!g.eval(Gf256::alpha_pow(20)).is_zero());
    }

    #[test]
    fn encoded_words_have_zero_syndromes() {
        for (n, k) in [(255usize, 253usize), (255, 239), (15, 11), (10, 6)] {
            let code = RsCode::new(n, k);
            let data: Vec<u8> = (0..k).map(|i| (i * 13 + 7) as u8).collect();
            let cw = code.encode(&data);
            assert_eq!(cw.len(), n);
            assert!(
                code.is_codeword(&cw),
                "RS({n},{k}) produced invalid codeword"
            );
        }
    }

    #[test]
    fn corrupting_a_codeword_breaks_the_syndromes() {
        let code = RsCode::rs_255_253();
        let data: Vec<u8> = (0..253).map(|i| i as u8).collect();
        let mut cw = code.encode(&data);
        assert!(code.is_codeword(&cw));
        cw[100] ^= 0x40;
        assert!(!code.is_codeword(&cw));
    }

    #[test]
    fn shortened_parity_matches_zero_padded_full_encoding() {
        let code = RsCode::rs_255_253();
        let short_data: Vec<u8> = (0..83u32).map(|i| (i * 3 + 1) as u8).collect();
        let parity_short = code.parity_shortened(&short_data);

        let mut padded = vec![0u8; 253 - 83];
        padded.extend_from_slice(&short_data);
        let parity_full = code.parity(&padded);
        assert_eq!(parity_short, parity_full);
    }

    #[test]
    fn parameters_accessors() {
        let code = RsCode::new(255, 239);
        assert_eq!(code.n(), 255);
        assert_eq!(code.k(), 239);
        assert_eq!(code.parity_len(), 16);
        assert_eq!(code.t(), 8);
        assert_eq!(RsCode::rs_255_253().t(), 1);
    }

    #[test]
    #[should_panic]
    fn odd_parity_count_is_rejected() {
        let _ = RsCode::new(10, 7);
    }

    #[test]
    #[should_panic]
    fn oversized_codeword_is_rejected() {
        let _ = RsCode::new(300, 200);
    }

    #[test]
    #[should_panic]
    fn parity_requires_exact_length() {
        let code = RsCode::new(15, 11);
        let _ = code.parity(&[1, 2, 3]);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn every_encoded_word_is_a_codeword(data in proptest::collection::vec(any::<u8>(), 11)) {
                let code = RsCode::new(15, 11);
                prop_assert!(code.is_codeword(&code.encode(&data)));
            }

            #[test]
            fn linearity_of_the_code(a in proptest::collection::vec(any::<u8>(), 11),
                                     b in proptest::collection::vec(any::<u8>(), 11)) {
                // The XOR (sum in GF(2^8)) of two codewords is a codeword.
                let code = RsCode::new(15, 11);
                let ca = code.encode(&a);
                let cb = code.encode(&b);
                let sum: Vec<u8> = ca.iter().zip(&cb).map(|(x, y)| x ^ y).collect();
                prop_assert!(code.is_codeword(&sum));
            }
        }
    }
}
