//! Sharded Monte-Carlo execution of scenario trials.
//!
//! Identical reproducibility contract to `rxl_fabric::montecarlo`: trials
//! are partitioned across rayon workers, each trial derives its seed with
//! the workspace-wide SplitMix64 finalizer ([`rxl_sim::trial_seed`]), the
//! pristine routing table is computed once and shared read-only, and
//! aggregation folds the order-preserving collect in trial order — so for a
//! fixed base seed the aggregate report is bit-identical regardless of
//! worker-thread count, scenario or no scenario.

use rayon::prelude::*;

use rxl_fabric::{FabricConfig, FabricTopology, FabricWorkload, NullProbe, Probe, RoutingTable};
use rxl_sim::trial_seed;
use rxl_transport::FailureCounts;

use crate::runner::{run_scenario_probed, ChaosReport};
use crate::scenario::Scenario;

/// A scenario Monte-Carlo experiment: one topology, configuration and
/// scenario, many seeds.
#[derive(Clone, Debug)]
pub struct ChaosMonteCarlo {
    topology: FabricTopology,
    config: FabricConfig,
    scenario: Scenario,
    trials: u64,
}

/// Aggregate of one epoch across every trial.
#[derive(Clone, Debug, Default)]
pub struct EpochAggregate {
    /// The epoch's start boundary (slot).
    pub start_slot: u64,
    /// Labels of the events firing at this boundary.
    pub events: Vec<String>,
    /// Trials that simulated at least one slot of this epoch.
    pub trials_active: u64,
    /// Summed slots simulated within the epoch.
    pub slots: u64,
    /// Summed failure-count deltas (losses excluded — only attributed at
    /// trial finalization).
    pub failures: FailureCounts,
    /// Summed undetected-drop (`Fail_order`) events within the epoch.
    pub undetected_drop_events: u64,
    /// Summed silent payload drops within the epoch.
    pub payload_drops: u64,
    /// Summed fault-injection blackhole drops within the epoch.
    pub blackholed_flits: u64,
    /// Summed credit-stall slots within the epoch.
    pub credit_stalls: u64,
}

/// Aggregate results over every scenario trial.
#[derive(Clone, Debug, Default)]
pub struct ChaosMonteCarloReport {
    /// Number of trials executed.
    pub trials: u64,
    /// Per-epoch aggregates, aligned on the scenario's canonical boundaries.
    pub epochs: Vec<EpochAggregate>,
    /// Summed final failure counts (losses included).
    pub failures: FailureCounts,
    /// Summed undetected-drop events.
    pub undetected_drop_events: u64,
    /// Summed fault-injection blackhole drops.
    pub blackholed_flits: u64,
    /// Trials that drained before their slot limit.
    pub drained_trials: u64,
    /// Trials that ended in a classified credit deadlock.
    pub deadlocked_trials: u64,
    /// Trials that stalled only after delivering every message
    /// (control-plane replay wedge; counted as drained).
    pub post_delivery_wedge_trials: u64,
    /// Trials with at least one `Fail_order` event.
    pub fail_order_trials: u64,
    /// Earliest first-`Fail_order` slot across trials, if any trial had one.
    pub earliest_fail_order_slot: Option<u64>,
    /// Mean first-`Fail_order` slot over the trials that had one.
    pub mean_fail_order_slot: Option<f64>,
    /// Per-trial availability (clean deliveries / offered messages), in
    /// trial order.
    pub availabilities: Vec<f64>,
}

impl ChaosMonteCarloReport {
    /// Mean availability over all trials.
    pub fn availability_mean(&self) -> f64 {
        if self.availabilities.is_empty() {
            return 1.0;
        }
        self.availabilities.iter().sum::<f64>() / self.availabilities.len() as f64
    }

    /// Worst-trial availability.
    pub fn availability_min(&self) -> f64 {
        self.availabilities
            .iter()
            .copied()
            .fold(f64::INFINITY, f64::min)
            .min(1.0)
    }
}

impl ChaosMonteCarlo {
    /// Creates an experiment running `trials` independent scenario trials.
    pub fn new(
        topology: FabricTopology,
        config: FabricConfig,
        scenario: Scenario,
        trials: u64,
    ) -> Self {
        topology.validate();
        ChaosMonteCarlo {
            topology,
            config,
            scenario,
            trials,
        }
    }

    /// The topology under test.
    pub fn topology(&self) -> &FabricTopology {
        &self.topology
    }

    /// The scenario every trial runs.
    pub fn scenario(&self) -> &Scenario {
        &self.scenario
    }

    /// The per-trial configuration.
    pub fn config(&self) -> &FabricConfig {
        &self.config
    }

    /// Runs every trial (sharded across rayon workers) and aggregates in
    /// trial order. Bit-identical for any worker-thread count.
    pub fn run(&self, workload: &FabricWorkload) -> ChaosMonteCarloReport {
        self.run_probed(workload, |_| NullProbe).0
    }

    /// Like [`Self::run`], but each trial carries a lifecycle-event
    /// [`Probe`] built by `probe_for_trial` from the trial index. The probes
    /// come back in trial order alongside the aggregate report, so telemetry
    /// consumers can merge their per-trial state deterministically — the
    /// same thread-count-independence contract as the report itself (probes
    /// observe only their own trial, and aggregation order is fixed).
    pub fn run_probed<P, F>(
        &self,
        workload: &FabricWorkload,
        probe_for_trial: F,
    ) -> (ChaosMonteCarloReport, Vec<P>)
    where
        P: Probe + Send,
        F: Fn(u64) -> P + Sync,
    {
        let routing = RoutingTable::new(&self.topology);
        let base = self.config.seed;
        let (reports, probes): (Vec<ChaosReport>, Vec<P>) = (0..self.trials)
            .into_par_iter()
            .map(|trial| {
                let config = self.config.with_seed(trial_seed(base, trial));
                run_scenario_probed(
                    &self.topology,
                    &routing,
                    config,
                    workload,
                    &self.scenario,
                    probe_for_trial(trial),
                )
            })
            .collect::<Vec<_>>()
            .into_iter()
            .unzip();

        let boundaries = self.scenario.boundaries(self.config.max_slots);
        let mut agg = ChaosMonteCarloReport {
            trials: reports.len() as u64,
            epochs: boundaries[..boundaries.len() - 1]
                .iter()
                .map(|&start| EpochAggregate {
                    start_slot: start,
                    events: self.scenario.labels_at(start, &self.topology),
                    ..Default::default()
                })
                .collect(),
            ..Default::default()
        };
        let mut fail_order_slot_sum = 0u64;
        for r in reports {
            for e in &r.epochs {
                let slot = &mut agg.epochs[e.index];
                slot.trials_active += 1;
                slot.slots += e.delta.slots;
                slot.failures.merge(&e.delta.failures);
                slot.undetected_drop_events += e.delta.undetected_drop_events;
                slot.payload_drops += e.delta.payload_drops;
                slot.blackholed_flits += e.delta.blackholed_flits;
                slot.credit_stalls += e.delta.credit_stalls;
            }
            agg.failures.merge(&r.fabric.total_failures());
            agg.undetected_drop_events += r.fabric.undetected_drop_events;
            agg.blackholed_flits += r.fabric.blackholed_flits;
            if r.fabric.drained {
                agg.drained_trials += 1;
            }
            if r.fabric.deadlock {
                agg.deadlocked_trials += 1;
            }
            if r.fabric.post_delivery_wedge {
                agg.post_delivery_wedge_trials += 1;
            }
            if let Some(slot) = r.time_to_first_fail_order {
                agg.fail_order_trials += 1;
                fail_order_slot_sum += slot;
                agg.earliest_fail_order_slot = Some(match agg.earliest_fail_order_slot {
                    Some(existing) => existing.min(slot),
                    None => slot,
                });
            }
            agg.availabilities.push(r.availability);
        }
        if agg.fail_order_trials > 0 {
            agg.mean_fail_order_slot =
                Some(fail_order_slot_sum as f64 / agg.fail_order_trials as f64);
        }
        (agg, probes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rxl_link::{ChannelErrorModel, ProtocolVariant};

    #[test]
    fn clean_scenario_free_trials_are_fully_available() {
        let t = FabricTopology::leaf_spine(2, 1, 1);
        let mc = ChaosMonteCarlo::new(
            t,
            FabricConfig::new(ProtocolVariant::Rxl).with_channel(ChannelErrorModel::ideal()),
            Scenario::named("none"),
            3,
        );
        let workload = FabricWorkload::symmetric(2, 40, 8, 5);
        let report = mc.run(&workload);
        assert_eq!(report.trials, 3);
        assert_eq!(report.drained_trials, 3);
        assert_eq!(report.deadlocked_trials, 0);
        assert!(report.failures.is_clean());
        assert_eq!(report.availability_mean(), 1.0);
        assert_eq!(report.availability_min(), 1.0);
        assert_eq!(report.epochs.len(), 1);
        assert_eq!(report.epochs[0].trials_active, 3);
        assert_eq!(report.fail_order_trials, 0);
        assert_eq!(report.mean_fail_order_slot, None);
    }

    /// The same reproducibility contract as the fabric Monte-Carlo:
    /// identical aggregates for 1 and N worker threads at a fixed base seed,
    /// with a scenario active.
    #[test]
    fn scenario_reports_are_reproducible_across_thread_counts() {
        let t = FabricTopology::leaf_spine(2, 1, 2);
        let uplink = t.trunk_between(0, 2).unwrap();
        let scenario = Scenario::named("storm").ber_storm(50, 100, vec![uplink], 30.0);
        let mc = ChaosMonteCarlo::new(
            t,
            FabricConfig::new(ProtocolVariant::CxlPiggyback)
                .with_channel(ChannelErrorModel::random(1e-5))
                .with_seed(0xC4A0),
            scenario,
            4,
        );
        let workload = FabricWorkload::symmetric(4, 900, 8, 11);

        let run_with_threads = |threads: usize| {
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .expect("shim pool build is infallible");
            pool.install(|| mc.run(&workload))
        };

        let reference = run_with_threads(1);
        for threads in [2, 4] {
            let report = run_with_threads(threads);
            assert_eq!(
                format!("{report:?}"),
                format!("{reference:?}"),
                "{threads} threads"
            );
        }
    }

    /// The paired VC regression across every wrap-around topology: the same
    /// saturated workload that deadlocks every trial at `vc_count = 1`
    /// drains every trial — zero deadlocks — once the dateline escape VCs
    /// are installed.
    #[test]
    fn escape_vcs_eliminate_saturation_deadlocks_ring_and_torus() {
        for t in [
            FabricTopology::ring(6, 2, 2),
            FabricTopology::torus(4, 3, 2),
        ] {
            let workload = FabricWorkload::symmetric(t.session_count(), 1_500, 8, 2);
            let run = |vcs: usize| {
                let config = FabricConfig {
                    queue_capacity: 4,
                    ..FabricConfig::new(ProtocolVariant::Rxl)
                }
                .with_channel(ChannelErrorModel::ideal())
                .with_vc_count(vcs);
                ChaosMonteCarlo::new(t.clone(), config, Scenario::named("none"), 3).run(&workload)
            };
            let wedged = run(1);
            assert_eq!(
                wedged.deadlocked_trials, 3,
                "{}: every saturated vc=1 trial must deadlock",
                t.name
            );
            assert_eq!(wedged.drained_trials, 0, "{}", t.name);
            let fixed = run(2);
            assert_eq!(
                fixed.deadlocked_trials, 0,
                "{}: escape VCs must eliminate the deadlock",
                t.name
            );
            assert_eq!(fixed.drained_trials, 3, "{}", t.name);
            assert!(
                fixed.failures.is_clean(),
                "{}: {:?}",
                t.name,
                fixed.failures
            );
        }
    }
}
