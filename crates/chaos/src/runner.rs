//! Executes one scenario against one fabric trial.
//!
//! The runner compiles the scenario into epoch boundaries, and at each
//! boundary mutates the paused [`FabricSim`]: switch drains/failures first
//! (routing recomputes, surviving sessions reroute), then the effective
//! channel of every targeted link is rebuilt from the timeline and installed
//! (or reset to the static configuration). Between boundaries the engine
//! runs untouched, so a trial with an empty scenario is bit-identical to a
//! scenario-free `FabricSim::run`.

use rxl_fabric::{
    FabricConfig, FabricCounters, FabricReport, FabricSim, FabricTopology, FabricWorkload,
    NullProbe, Probe, RoutingTable, StepOutcome,
};
use rxl_transport::FailureCounts;

use crate::scenario::{ChannelSpec, Scenario};

/// What one epoch of a scenario run observed.
#[derive(Clone, Debug)]
pub struct EpochReport {
    /// Epoch index (position between consecutive boundaries).
    pub index: usize,
    /// First boundary of the epoch (events fire at this slot).
    pub start_slot: u64,
    /// Last slot actually simulated (< the next boundary if the trial
    /// drained or stalled mid-epoch).
    pub end_slot: u64,
    /// Labels of the events applied at the epoch's start boundary.
    pub events: Vec<String>,
    /// Counter deltas over the epoch (losses excluded: they are only
    /// attributed at trial finalization).
    pub delta: FabricCounters,
    /// Why the epoch ended.
    pub outcome: StepOutcome,
}

/// Full outcome of one scenario trial.
#[derive(Clone, Debug)]
pub struct ChaosReport {
    /// Scenario label.
    pub scenario: String,
    /// Topology label.
    pub topology: String,
    /// Per-epoch observations, in time order.
    pub epochs: Vec<EpochReport>,
    /// The underlying trial report (final counts, losses attributed).
    pub fabric: FabricReport,
    /// Messages offered by the workload (both directions).
    pub offered_messages: u64,
    /// Fraction of offered messages delivered exactly once, in order,
    /// intact — the availability figure of the scenario summaries.
    pub availability: f64,
    /// Slot of the first undetected-drop (`Fail_order`) event, if any.
    pub time_to_first_fail_order: Option<u64>,
}

fn sub_failures(after: &FailureCounts, before: &FailureCounts) -> FailureCounts {
    FailureCounts {
        data_failures: after.data_failures - before.data_failures,
        ordering_failures: after.ordering_failures - before.ordering_failures,
        duplicate_deliveries: after.duplicate_deliveries - before.duplicate_deliveries,
        lost_messages: after.lost_messages - before.lost_messages,
        clean_deliveries: after.clean_deliveries - before.clean_deliveries,
    }
}

fn sub_counters(after: &FabricCounters, before: &FabricCounters) -> FabricCounters {
    FabricCounters {
        slots: after.slots - before.slots,
        failures: sub_failures(&after.failures, &before.failures),
        undetected_drop_events: after.undetected_drop_events - before.undetected_drop_events,
        replay_leak_events: after.replay_leak_events - before.replay_leak_events,
        payload_drops: after.payload_drops - before.payload_drops,
        protocol_flit_drops: after.protocol_flit_drops - before.protocol_flit_drops,
        blackholed_flits: after.blackholed_flits - before.blackholed_flits,
        credit_stalls: after.credit_stalls - before.credit_stalls,
    }
}

/// Runs `scenario` over one trial of `config` on `topology` and reports
/// per-epoch deltas plus the final fabric report. `routing` is the pristine
/// table (shared read-only across Monte-Carlo trials); scenario-induced
/// recomputations happen inside the engine.
pub fn run_scenario(
    topology: &FabricTopology,
    routing: &RoutingTable,
    config: FabricConfig,
    workload: &FabricWorkload,
    scenario: &Scenario,
) -> ChaosReport {
    run_scenario_probed(topology, routing, config, workload, scenario, NullProbe).0
}

/// Like [`run_scenario`], with a lifecycle-event [`Probe`] observing the
/// trial. On top of the engine-emitted events, the runner fires
/// [`Probe::on_epoch`] at every epoch boundary (before the boundary's switch
/// events and channel installs), so probe consumers can attribute windows to
/// scenario epochs. The probe obeys the engine's observation contract —
/// the simulated trial is bit-identical to [`run_scenario`]'s.
pub fn run_scenario_probed<P: Probe>(
    topology: &FabricTopology,
    routing: &RoutingTable,
    config: FabricConfig,
    workload: &FabricWorkload,
    scenario: &Scenario,
    probe: P,
) -> (ChaosReport, P) {
    let flit_time_ns = config.link_config().flit_time_ns;
    let boundaries = scenario.boundaries(config.max_slots);
    let targeted = scenario.targeted_links();

    let mut sim = FabricSim::with_probe(topology, routing, config, probe);
    sim.begin(workload);
    let mut epochs: Vec<EpochReport> = Vec::with_capacity(boundaries.len() - 1);
    let mut prev = sim.counters();
    // The spec currently installed on each targeted link. A boundary only
    // replaces a link's channel object when its *effective spec* changed —
    // a stateful channel (Gilbert–Elliott mid-dwell) keeps its state across
    // boundaries created by unrelated events.
    let mut installed: Vec<Option<ChannelSpec>> = vec![None; targeted.len()];
    for w in boundaries.windows(2) {
        let (start, end) = (w[0], w[1]);
        if P::ENABLED {
            sim.probe_mut().on_epoch(start, epochs.len());
        }
        for (switch, fatal) in scenario.switch_events_at(start) {
            if fatal {
                sim.fail_switch(switch);
            } else {
                sim.drain_switch(switch);
            }
        }
        for (slot, &link) in installed.iter_mut().zip(&targeted) {
            let spec = scenario.effective_channel(link, start, config.channel, flit_time_ns);
            if spec != *slot {
                match &spec {
                    Some(s) => sim.set_link_channel(link, s.instantiate(flit_time_ns)),
                    None => sim.reset_link_channel(link),
                }
                *slot = spec;
            }
        }
        let mut outcome = sim.step(end - start);
        if outcome == StepOutcome::Budget && end == config.max_slots {
            // The budget of the final epoch *is* the slot limit.
            outcome = StepOutcome::SlotLimit;
        }
        let counters = sim.counters();
        epochs.push(EpochReport {
            index: epochs.len(),
            start_slot: start,
            end_slot: counters.slots,
            events: scenario.labels_at(start, topology),
            delta: sub_counters(&counters, &prev),
            outcome,
        });
        prev = counters;
        if outcome != StepOutcome::Budget {
            break;
        }
    }

    let offered_messages: u64 = workload
        .downstream
        .iter()
        .chain(&workload.upstream)
        .map(|m| m.len() as u64)
        .sum();
    let (fabric, probe) = sim.finish_with_probe();
    let clean = fabric.total_failures().clean_deliveries;
    let report = ChaosReport {
        scenario: scenario.name.clone(),
        topology: topology.name.clone(),
        epochs,
        offered_messages,
        availability: if offered_messages > 0 {
            clean as f64 / offered_messages as f64
        } else {
            1.0
        },
        time_to_first_fail_order: fabric.first_fail_order_slot,
        fabric,
    };
    (report, probe)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rxl_link::{ChannelErrorModel, ProtocolVariant};

    #[test]
    fn empty_scenario_is_bit_identical_to_a_plain_run() {
        let t = FabricTopology::ring(4, 1, 1);
        let routing = RoutingTable::new(&t);
        let config = FabricConfig::new(ProtocolVariant::CxlPiggyback)
            .with_channel(ChannelErrorModel::random(2e-4))
            .with_seed(0xABC);
        let workload = FabricWorkload::symmetric(t.session_count(), 300, 8, 7);
        let plain = FabricSim::new(&t, &routing, config).run(&workload);
        let chaos = run_scenario(&t, &routing, config, &workload, &Scenario::named("no-op"));
        assert_eq!(format!("{plain:?}"), format!("{:?}", chaos.fabric));
        assert_eq!(chaos.epochs.len(), 1);
        assert_eq!(chaos.epochs[0].delta.slots, plain.slots);
    }

    /// Epoch boundaries created by *unrelated* events must not disturb a
    /// stateful channel: a Gilbert–Elliott channel mid-dwell keeps its state
    /// across them, so adding a no-op boundary (a factor-1.0 storm on a
    /// different link) leaves the whole trial bit-identical.
    #[test]
    fn unrelated_boundaries_preserve_stateful_channel_state() {
        use crate::channels::GilbertElliott;
        use crate::scenario::ChannelSpec;
        let t = FabricTopology::leaf_spine(2, 1, 1);
        let uplink = t.trunk_between(0, 2).unwrap();
        let other = t.endpoint_link(0);
        let routing = RoutingTable::new(&t);
        let config = FabricConfig::new(ProtocolVariant::Rxl)
            .with_channel(ChannelErrorModel::ideal())
            .with_seed(0x6E);
        let workload = FabricWorkload::symmetric(t.session_count(), 1_500, 8, 5);
        let ge = ChannelSpec::GilbertElliott(GilbertElliott::new(
            ChannelErrorModel::ideal(),
            ChannelErrorModel::random(0.02),
            0.3,
            0.3,
        ));
        let plain = Scenario::named("ge").link_degrade(0, vec![uplink], ge.clone());
        // Same degrade plus two extra epoch boundaries (slots 50 and 150)
        // that change nothing about any link's effective channel.
        let marked = Scenario::named("ge+markers")
            .link_degrade(0, vec![uplink], ge)
            .ber_storm(50, 100, vec![other], 1.0);
        let a = run_scenario(&t, &routing, config, &workload, &plain);
        let b = run_scenario(&t, &routing, config, &workload, &marked);
        assert_eq!(b.epochs.len(), 3, "markers must create boundaries");
        assert_eq!(format!("{:?}", a.fabric), format!("{:?}", b.fabric));
    }

    #[test]
    fn epoch_deltas_sum_to_the_final_counters() {
        let t = FabricTopology::leaf_spine(2, 1, 2);
        let uplink = t.trunk_between(0, 2).unwrap();
        let routing = RoutingTable::new(&t);
        let config = FabricConfig::new(ProtocolVariant::Rxl)
            .with_channel(ChannelErrorModel::random(1e-5))
            .with_seed(3);
        let workload = FabricWorkload::symmetric(t.session_count(), 2_000, 8, 9);
        let scenario = Scenario::named("storm").ber_storm(40, 60, vec![uplink], 40.0);
        let report = run_scenario(&t, &routing, config, &workload, &scenario);
        let total_slots: u64 = report.epochs.iter().map(|e| e.delta.slots).sum();
        assert_eq!(total_slots, report.fabric.slots);
        let mut clean = 0;
        for e in &report.epochs {
            clean += e.delta.failures.clean_deliveries;
        }
        assert_eq!(clean, report.fabric.total_failures().clean_deliveries);
        assert!(report.availability > 0.99, "{}", report.availability);
        // Epoch 1 is the storm epoch and carries its label.
        assert_eq!(report.epochs[1].start_slot, 40);
        assert!(report.epochs[1].events[0].contains("BER storm"));
    }
}
