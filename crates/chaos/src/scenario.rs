//! Scenario timelines: deterministic sequences of epochal fault events.
//!
//! A [`Scenario`] is a list of [`TimedEvent`]s applied to named links and
//! switches of a `FabricTopology` at configured slot times. Scenarios carry
//! no RNG of their own — all randomness stays inside the trial's single
//! seeded RNG — so a scenario run is exactly as seed-reproducible as a
//! scenario-free one, and the sharded Monte-Carlo in [`crate::montecarlo`]
//! stays bit-identical across worker-thread counts.
//!
//! The timeline is compiled into **epochs**: the sorted set of slot
//! boundaries at which any event starts or expires. At each boundary the
//! scenario runner recomputes the effective channel of every targeted link
//! from scratch (degrade base → storm scaling → flap wrap), applies switch
//! drains/failures, and resumes the simulation until the next boundary —
//! which is where the per-epoch failure counts of the chaos reports come
//! from.

use rxl_fabric::{FabricTopology, LinkId};
use rxl_link::{Channel, ChannelErrorModel};

use crate::channels::{BerSchedule, FlapChannel, GilbertElliott};

/// A cloneable description of a channel, instantiated into a fresh
/// [`Channel`] trait object per trial (stateful channels like
/// [`GilbertElliott`] must not share state across trials). Specs compare
/// with `==` so the scenario runner can tell whether a link's effective
/// channel actually changed at an epoch boundary — an unchanged spec keeps
/// its live channel object (and any accumulated state) installed.
#[derive(Clone, Debug, PartialEq)]
pub enum ChannelSpec {
    /// The stationary independent-bit-error model.
    Static(ChannelErrorModel),
    /// A two-state bursty channel.
    GilbertElliott(GilbertElliott),
    /// A piecewise BER schedule. Inside a spec the segment starts are
    /// denominated in **slots** (like every other scenario time) and are
    /// converted to simulation nanoseconds by [`Self::instantiate`];
    /// a raw `BerSchedule` used directly as a `Channel` is in nanoseconds.
    Schedule(BerSchedule),
    /// A deterministic up/down flap.
    Flap(FlapChannel),
}

impl ChannelSpec {
    /// Builds a fresh channel object for one trial. `flit_time_ns` converts
    /// this spec's slot-denominated times (schedule segment starts) into
    /// simulation nanoseconds.
    pub fn instantiate(&self, flit_time_ns: f64) -> Box<dyn Channel> {
        match self {
            ChannelSpec::Static(m) => Box::new(*m),
            ChannelSpec::GilbertElliott(ge) => Box::new(*ge),
            ChannelSpec::Schedule(s) => Box::new(s.with_time_scale(flit_time_ns)),
            ChannelSpec::Flap(f) => Box::new(*f),
        }
    }

    /// The spec with its BER(s) scaled by `factor` — how BER storms compose
    /// over already-degraded links. Scaling clamps into `[0, 1)` via
    /// `ChannelErrorModel::scaled`.
    pub fn scaled(&self, factor: f64) -> ChannelSpec {
        match self {
            ChannelSpec::Static(m) => ChannelSpec::Static(m.scaled(factor)),
            ChannelSpec::GilbertElliott(ge) => ChannelSpec::GilbertElliott(ge.scaled(factor)),
            ChannelSpec::Schedule(s) => ChannelSpec::Schedule(s.scaled(factor)),
            ChannelSpec::Flap(f) => ChannelSpec::Flap(f.scaled(factor)),
        }
    }

    /// The static projection of this spec: the stationary model a flap's
    /// *up* phase runs when a flap is layered over it. Non-static bases have
    /// no single stationary model, so they project onto their dominant
    /// component (the good state / the first segment / the up model).
    fn static_projection(&self) -> ChannelErrorModel {
        match self {
            ChannelSpec::Static(m) => *m,
            ChannelSpec::GilbertElliott(ge) => ge.good,
            ChannelSpec::Schedule(s) => *s.model_at(f64::NEG_INFINITY),
            ChannelSpec::Flap(f) => f.up,
        }
    }
}

/// One fault-injection action.
#[derive(Clone, Debug)]
pub enum ChaosEvent {
    /// Multiplies the BER of `links` by `factor` for `duration` slots — a
    /// localized error-rate storm.
    BerStorm {
        /// Links the storm hits.
        links: Vec<LinkId>,
        /// Multiplicative BER acceleration (clamped into `[0, 1)`).
        factor: f64,
        /// Storm length in slots.
        duration: u64,
    },
    /// Permanently replaces the channel of `links` (until a later degrade
    /// replaces it again) — a cable gone marginal.
    LinkDegrade {
        /// Links degraded.
        links: Vec<LinkId>,
        /// Their new channel.
        channel: ChannelSpec,
    },
    /// Flaps `links` up and down for `duration` slots.
    LinkFlap {
        /// Links that flap.
        links: Vec<LinkId>,
        /// Flap period in slots.
        period_slots: u64,
        /// Fraction of each period spent down.
        down_fraction: f64,
        /// Flap length in slots.
        duration: u64,
    },
    /// Gracefully drains a switch: recomputed routes avoid it as a transit
    /// hop while its endpoints stay reachable and its queues keep
    /// forwarding.
    SwitchDrain {
        /// The switch drained.
        switch: usize,
    },
    /// Kills a switch outright: queues purged, ingress blackholed, routing
    /// recomputed so surviving sessions reroute.
    SwitchFail {
        /// The switch killed.
        switch: usize,
    },
}

impl ChaosEvent {
    /// Slots after its start slot the event stays active (`None` =
    /// permanent).
    fn duration(&self) -> Option<u64> {
        match self {
            ChaosEvent::BerStorm { duration, .. } | ChaosEvent::LinkFlap { duration, .. } => {
                Some(*duration)
            }
            _ => None,
        }
    }

    /// Short human-readable label for reports.
    pub fn label(&self, topology: &FabricTopology) -> String {
        match self {
            ChaosEvent::BerStorm {
                links,
                factor,
                duration,
            } => format!(
                "BER storm ×{factor} for {duration} slots on {}",
                describe_links(topology, links)
            ),
            ChaosEvent::LinkDegrade { links, .. } => {
                format!("degrade {}", describe_links(topology, links))
            }
            ChaosEvent::LinkFlap {
                links,
                period_slots,
                down_fraction,
                duration,
            } => format!(
                "flap (period {period_slots}, down {down_fraction}) for {duration} slots on {}",
                describe_links(topology, links)
            ),
            ChaosEvent::SwitchDrain { switch } => format!("drain switch {switch}"),
            ChaosEvent::SwitchFail { switch } => format!("fail switch {switch}"),
        }
    }
}

fn describe_links(topology: &FabricTopology, links: &[LinkId]) -> String {
    match links {
        [] => "no links".to_string(),
        [one] => topology.describe_link(*one),
        many => format!("{} links", many.len()),
    }
}

/// An event and the slot it fires at.
#[derive(Clone, Debug)]
pub struct TimedEvent {
    /// Slot the event takes effect (an epoch boundary).
    pub at_slot: u64,
    /// The action.
    pub event: ChaosEvent,
}

/// A deterministic fault-injection timeline.
#[derive(Clone, Debug, Default)]
pub struct Scenario {
    /// Scenario label for reports.
    pub name: String,
    /// The timeline, in insertion order (simultaneous events apply in this
    /// order).
    pub events: Vec<TimedEvent>,
}

impl Scenario {
    /// An empty scenario (runs the fabric unperturbed).
    pub fn named(name: impl Into<String>) -> Self {
        Scenario {
            name: name.into(),
            events: Vec::new(),
        }
    }

    fn push(mut self, at_slot: u64, event: ChaosEvent) -> Self {
        self.events.push(TimedEvent { at_slot, event });
        self
    }

    /// Adds a BER storm of `factor`× on `links`, slots `[at, at + duration)`.
    pub fn ber_storm(self, at: u64, duration: u64, links: Vec<LinkId>, factor: f64) -> Self {
        assert!(duration > 0, "a storm needs a positive duration");
        self.push(
            at,
            ChaosEvent::BerStorm {
                links,
                factor,
                duration,
            },
        )
    }

    /// Permanently degrades `links` to `channel` from slot `at`.
    pub fn link_degrade(self, at: u64, links: Vec<LinkId>, channel: ChannelSpec) -> Self {
        self.push(at, ChaosEvent::LinkDegrade { links, channel })
    }

    /// Flaps `links` for `duration` slots from slot `at`.
    pub fn link_flap(
        self,
        at: u64,
        duration: u64,
        links: Vec<LinkId>,
        period_slots: u64,
        down_fraction: f64,
    ) -> Self {
        assert!(duration > 0 && period_slots > 0);
        self.push(
            at,
            ChaosEvent::LinkFlap {
                links,
                period_slots,
                down_fraction,
                duration,
            },
        )
    }

    /// Drains `switch` at slot `at`.
    pub fn switch_drain(self, at: u64, switch: usize) -> Self {
        self.push(at, ChaosEvent::SwitchDrain { switch })
    }

    /// Kills `switch` at slot `at`.
    pub fn switch_fail(self, at: u64, switch: usize) -> Self {
        self.push(at, ChaosEvent::SwitchFail { switch })
    }

    /// The sorted, deduplicated epoch boundaries up to `horizon`: slot 0,
    /// every event start and expiry below the horizon, and the horizon
    /// itself. Epoch `i` covers slots `(boundaries[i], boundaries[i + 1]]`.
    pub fn boundaries(&self, horizon: u64) -> Vec<u64> {
        let mut b = vec![0, horizon];
        for te in &self.events {
            if te.at_slot < horizon {
                b.push(te.at_slot);
                if let Some(d) = te.event.duration() {
                    let end = te.at_slot.saturating_add(d);
                    if end < horizon {
                        b.push(end);
                    }
                }
            }
        }
        b.sort_unstable();
        b.dedup();
        b
    }

    /// Every link any event of this scenario targets, sorted by id.
    pub fn targeted_links(&self) -> Vec<LinkId> {
        let mut links: Vec<LinkId> = self
            .events
            .iter()
            .flat_map(|te| match &te.event {
                ChaosEvent::BerStorm { links, .. }
                | ChaosEvent::LinkDegrade { links, .. }
                | ChaosEvent::LinkFlap { links, .. } => links.clone(),
                _ => Vec::new(),
            })
            .collect();
        links.sort_unstable();
        links.dedup();
        links
    }

    /// The effective channel of `link` at slot `at_slot`, or `None` when the
    /// link is back on the fabric's static configuration. Composition order:
    /// the latest active [`ChaosEvent::LinkDegrade`] forms the base (default
    /// `static_channel`), active storms scale it multiplicatively, and an
    /// active flap wraps its static projection. `flit_time_ns` converts
    /// slot-denominated parameters into simulation time.
    pub fn effective_channel(
        &self,
        link: LinkId,
        at_slot: u64,
        static_channel: ChannelErrorModel,
        flit_time_ns: f64,
    ) -> Option<ChannelSpec> {
        let mut base: Option<ChannelSpec> = None;
        let mut base_at: Option<u64> = None;
        let mut storm_factor = 1.0f64;
        let mut flap: Option<(u64, u64, f64)> = None; // (start, period, down)
        for te in &self.events {
            if te.at_slot > at_slot {
                continue;
            }
            let active = |d: u64| at_slot < te.at_slot.saturating_add(d);
            match &te.event {
                // The degrade in force is the one with the greatest start
                // slot (timeline order, not insertion order); simultaneous
                // degrades resolve to the later insertion.
                ChaosEvent::LinkDegrade { links, channel }
                    if links.contains(&link) && base_at.is_none_or(|at| te.at_slot >= at) =>
                {
                    base = Some(channel.clone());
                    base_at = Some(te.at_slot);
                }
                ChaosEvent::BerStorm {
                    links,
                    factor,
                    duration,
                } if links.contains(&link) && active(*duration) => {
                    storm_factor *= factor;
                }
                ChaosEvent::LinkFlap {
                    links,
                    period_slots,
                    down_fraction,
                    duration,
                } if links.contains(&link) && active(*duration) => {
                    flap = Some((te.at_slot, *period_slots, *down_fraction));
                }
                _ => {}
            }
        }
        if base.is_none() && storm_factor == 1.0 && flap.is_none() {
            return None;
        }
        let mut spec = base.unwrap_or(ChannelSpec::Static(static_channel));
        if storm_factor != 1.0 {
            spec = spec.scaled(storm_factor);
        }
        if let Some((start, period, down)) = flap {
            let mut f =
                FlapChannel::loss(spec.static_projection(), period as f64 * flit_time_ns, down);
            // Slot s runs at simulation time (s + 1) · flit_time, so the
            // first down window opens exactly when the flap starts.
            f.phase_ns = (start + 1) as f64 * flit_time_ns;
            spec = ChannelSpec::Flap(f);
        }
        Some(spec)
    }

    /// Labels of the events firing exactly at `at_slot`, for epoch reports.
    pub fn labels_at(&self, at_slot: u64, topology: &FabricTopology) -> Vec<String> {
        let mut labels: Vec<String> = self
            .events
            .iter()
            .filter(|te| te.at_slot == at_slot)
            .map(|te| te.event.label(topology))
            .collect();
        labels.extend(
            self.events
                .iter()
                .filter(|te| {
                    te.event
                        .duration()
                        .is_some_and(|d| te.at_slot.saturating_add(d) == at_slot)
                })
                .map(|te| format!("end of: {}", te.event.label(topology))),
        );
        labels
    }

    /// The switch drains/failures firing exactly at `at_slot`, in timeline
    /// order: `(switch, fatal)`.
    pub fn switch_events_at(&self, at_slot: u64) -> Vec<(usize, bool)> {
        self.events
            .iter()
            .filter(|te| te.at_slot == at_slot)
            .filter_map(|te| match te.event {
                ChaosEvent::SwitchDrain { switch } => Some((switch, false)),
                ChaosEvent::SwitchFail { switch } => Some((switch, true)),
                _ => None,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn topo() -> FabricTopology {
        FabricTopology::leaf_spine(2, 2, 1)
    }

    #[test]
    fn boundaries_cover_starts_ends_and_horizon() {
        let t = topo();
        let uplink = t.trunk_between(0, 2).unwrap();
        let s = Scenario::named("demo")
            .ber_storm(100, 50, vec![uplink], 30.0)
            .switch_fail(400, 2);
        assert_eq!(s.boundaries(1_000), vec![0, 100, 150, 400, 1_000]);
        // Events at or past the horizon do not create boundaries.
        assert_eq!(s.boundaries(120), vec![0, 100, 120]);
        assert_eq!(s.boundaries(100), vec![0, 100]);
    }

    #[test]
    fn effective_channel_composes_degrade_storm_and_expiry() {
        let t = topo();
        let uplink = t.trunk_between(0, 2).unwrap();
        let base = ChannelErrorModel::random(1e-6);
        let s = Scenario::named("compose")
            .link_degrade(
                50,
                vec![uplink],
                ChannelSpec::Static(ChannelErrorModel::random(1e-5)),
            )
            .ber_storm(100, 100, vec![uplink], 10.0);
        // Untouched before anything fires.
        assert!(s.effective_channel(uplink, 0, base, 2.0).is_none());
        // Degrade only.
        match s.effective_channel(uplink, 60, base, 2.0) {
            Some(ChannelSpec::Static(m)) => assert!((m.ber - 1e-5).abs() < 1e-18),
            other => panic!("expected static degrade, got {other:?}"),
        }
        // Degrade × storm.
        match s.effective_channel(uplink, 150, base, 2.0) {
            Some(ChannelSpec::Static(m)) => assert!((m.ber - 1e-4).abs() < 1e-17),
            other => panic!("expected scaled degrade, got {other:?}"),
        }
        // Storm expired at 200: back to the degrade alone.
        match s.effective_channel(uplink, 200, base, 2.0) {
            Some(ChannelSpec::Static(m)) => assert!((m.ber - 1e-5).abs() < 1e-18),
            other => panic!("expected static degrade, got {other:?}"),
        }
        // Other links untouched throughout.
        let other = t.trunk_between(1, 3).unwrap();
        assert!(s.effective_channel(other, 150, base, 2.0).is_none());
    }

    #[test]
    fn storm_on_a_clean_link_scales_the_static_channel() {
        let t = topo();
        let uplink = t.trunk_between(0, 2).unwrap();
        let base = ChannelErrorModel::random(2e-5);
        let s = Scenario::named("storm").ber_storm(10, 20, vec![uplink], 50.0);
        match s.effective_channel(uplink, 10, base, 2.0) {
            Some(ChannelSpec::Static(m)) => assert!((m.ber - 1e-3).abs() < 1e-15),
            other => panic!("expected scaled static, got {other:?}"),
        }
        assert!(s.effective_channel(uplink, 30, base, 2.0).is_none());
    }

    #[test]
    fn degrades_resolve_by_timeline_order_not_insertion_order() {
        let t = topo();
        let uplink = t.trunk_between(0, 2).unwrap();
        let base = ChannelErrorModel::random(1e-6);
        let late = ChannelSpec::Static(ChannelErrorModel::random(1e-3));
        let early = ChannelSpec::Static(ChannelErrorModel::random(1e-5));
        // Inserted out of chronological order: the slot-500 degrade must
        // still win after slot 500.
        let s = Scenario::named("ooo")
            .link_degrade(500, vec![uplink], late.clone())
            .link_degrade(100, vec![uplink], early.clone());
        assert_eq!(s.effective_channel(uplink, 200, base, 2.0), Some(early));
        assert_eq!(
            s.effective_channel(uplink, 600, base, 2.0),
            Some(late.clone())
        );
        // Simultaneous degrades resolve to the later insertion.
        let s2 = Scenario::named("tie")
            .link_degrade(100, vec![uplink], ChannelSpec::Static(base))
            .link_degrade(100, vec![uplink], late.clone());
        assert_eq!(s2.effective_channel(uplink, 100, base, 2.0), Some(late));
    }

    #[test]
    fn schedule_specs_are_slot_denominated() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        // A spec schedule switching to a heavy-noise segment at *slot* 100
        // must corrupt from simulation time 100 × flit_time onwards.
        let spec = ChannelSpec::Schedule(
            BerSchedule::new(ChannelErrorModel::ideal())
                .then_at(100.0, ChannelErrorModel::random(0.25)),
        );
        let flit_time_ns = 2.0;
        let mut ch = spec.instantiate(flit_time_ns);
        let mut rng = StdRng::seed_from_u64(1);
        let mut data = [0u8; 64];
        // Slot 75 (150 ns): still ideal.
        assert_eq!(ch.corrupt(&mut data, 150.0, &mut rng), 0);
        // Slot 125 (250 ns): the noisy segment is active.
        assert!(ch.corrupt(&mut data, 250.0, &mut rng) > 0);
    }

    #[test]
    fn switch_events_and_labels() {
        let t = topo();
        let s = Scenario::named("ops")
            .switch_drain(10, 3)
            .switch_fail(10, 2);
        assert_eq!(s.switch_events_at(10), vec![(3, false), (2, true)]);
        assert_eq!(s.switch_events_at(11), vec![]);
        let labels = s.labels_at(10, &t);
        assert_eq!(labels.len(), 2);
        assert!(labels[0].contains("drain switch 3"));
        assert!(labels[1].contains("fail switch 2"));
    }
}
